#include "model/equations.hpp"

#include <stdexcept>

namespace sldf::model {

SwlessEquations SwlessEquations::balanced(int m_, int wafers_b) {
  if (m_ < 1) throw std::invalid_argument("balanced: m must be >= 1");
  SwlessEquations e;
  e.m = m_;
  e.n = 3 * m_;            // Eq.(3)
  const int ab = 2 * m_ * m_;  // Eq.(3)
  if (wafers_b > 0) {
    if (ab % wafers_b != 0)
      throw std::invalid_argument("balanced: b must divide 2*m^2");
    e.b = wafers_b;
    e.a = ab / wafers_b;
  } else {
    // Split ab into the most square (a, b) factorization.
    int best_a = 1;
    for (int a = 1; a * a <= ab; ++a)
      if (ab % a == 0) best_a = a;
    e.a = best_a;
    e.b = ab / best_a;
  }
  return e;
}

}  // namespace sldf::model
