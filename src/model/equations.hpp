// Closed-form models from paper §III-B: scalability Eq.(1), throughput
// Eqs.(2)(4)(5), balanced configuration Eq.(3), C-group bisection Eq.(6),
// and diameter Eq.(7). Symbols follow the paper:
//   n  interfaces per chiplet          m  chiplet-grid edge of a C-group
//   a  C-groups per wafer              b  wafers per W-group
//   h  global ports per C-group        g  number of W-groups
#pragma once

namespace sldf::model {

struct SwlessEquations {
  int a = 2, b = 4, m = 2, n = 6;

  [[nodiscard]] long ab() const { return static_cast<long>(a) * b; }
  [[nodiscard]] long k() const { return static_cast<long>(n) * m; }
  /// Global ports per C-group: h = k - ab + 1 (paper §III-A4).
  [[nodiscard]] long h() const { return k() - ab() + 1; }
  /// W-groups: g = ab*h + 1.
  [[nodiscard]] long g() const { return ab() * h() + 1; }
  /// Eq.(1): total chips N = a*b*m^2 * g.
  [[nodiscard]] long total_chips() const {
    return ab() * m * m * g();
  }
  /// Eq.(2): global saturation throughput bound, flits/cycle/chip.
  [[nodiscard]] double t_global() const {
    return static_cast<double>(k() - ab() + 1) / (m * m);
  }
  /// Eq.(4): intra-W-group (local) saturation bound, flits/cycle/chip.
  [[nodiscard]] double t_local() const {
    return static_cast<double>(ab()) / (m * m);
  }
  /// Eq.(5): intra-C-group saturation bound, flits/cycle/chip.
  [[nodiscard]] double t_cgroup() const {
    return static_cast<double>(n) / m;
  }
  /// Eq.(6): full-duplex bisection of the 2D-mesh C-group, flits/cycle.
  [[nodiscard]] double bisection_cgroup() const {
    return static_cast<double>(n) * m / 2.0;
  }

  /// Eq.(3): the balanced configuration for a given m: n = 3m, ab = 2m^2.
  static SwlessEquations balanced(int m_, int wafers_b = 0);
};

/// Eq.(7) hop-count terms of the switch-less Dragonfly diameter:
/// D = Hg + 2 Hl + (8m - 2) Hsr  (off-chip hops only).
struct SwlessDiameter {
  int global_hops = 1;
  int local_hops = 2;
  int short_reach_hops = 0;

  static SwlessDiameter of(int m) {
    return {1, 2, 8 * m - 2};
  }
  /// Traditional switch-based Dragonfly: Hg + 2 Hl + 2 H*l.
  static SwlessDiameter switch_based() { return {1, 2 + 2, 0}; }

  /// Latency estimate with Table II hop costs (ns), excluding time of
  /// flight.
  [[nodiscard]] double latency_ns(double hg_ns = 150, double hl_ns = 150,
                                  double hsr_ns = 5) const {
    return global_hops * hg_ns + local_hops * hl_ns +
           short_reach_hops * hsr_ns;
  }
};

/// Table II hop costs used across the energy/latency models.
struct HopCost {
  double latency_ns;
  double energy_pj_per_bit;
};
struct HopCostTable {
  HopCost global{150.0, 20.0};        // optical cable
  HopCost local{150.0, 20.0};         // copper/optical cable
  HopCost terminal{150.0, 20.0};      // H*l, similar to a local hop
  HopCost short_reach{5.0, 2.0};      // on-wafer RDL
  HopCost on_chip{1.0, 0.1};          // metal layer
  /// Wafer-on-wafer vertical bond: dense hybrid-bond/TSV column, far
  /// cheaper than a long-reach cable, pricier than an on-chip wire.
  HopCost vertical{2.0, 0.5};
  /// The paper simplifies the average intra-C-group hop to 1 pJ/bit.
  double intra_cgroup_avg_pj = 1.0;
};

}  // namespace sldf::model
