// Physical layout feasibility model of a C-group on the wafer
// (paper §V-A1, Fig 9): PHY placement, perimeter escape, off-wafer IO
// count, and the derived bisection / aggregate bandwidth figures.
#pragma once

#include <string>

namespace sldf::model {

struct LayoutParams {
  // Wafer / process (InFO-SoW [16,17]).
  double bump_pitch_um = 55.0;
  double line_space_um = 5.0;
  double wafer_diameter_mm = 300.0;

  // C-group floorplan (Fig 9).
  int chiplets_x = 4, chiplets_y = 4;
  double chiplet_mm = 12.0;          ///< Chiplet edge length.
  double conv_module_w_mm = 2.0;     ///< SR-LR conversion module width.
  double conv_module_h_mm = 3.0;
  double cgroup_edge_mm = 60.0;      ///< Placed C-group edge (~60 mm).

  // Interfaces.
  int channels_per_chiplet_edge = 6;
  int ucie_lanes_per_channel = 128;  ///< Two 64-lane UCIe PHYs.
  double ucie_lane_gbps = 32.0;      ///< 4096 Gb/s per on-wafer channel.
  double ucie_phy_w_mm = 0.8, ucie_phy_h_mm = 0.8;
  int serdes_lanes_per_port = 8;     ///< Long-reach 112G SerDes lanes.
  double serdes_lane_gbps = 112.0;   ///< 896 Gb/s per off-C-group port.
  int external_ports = 48;           ///< k.
  double io_pad_pitch_mm = 0.3;      ///< Off-wafer connector pitch.
  double encoding_efficiency = 0.85; ///< 64b/66b + FEC overhead.
};

struct LayoutReport {
  double onwafer_channel_gbps = 0;    ///< Per intra-C-group channel.
  double offwafer_port_gbps = 0;      ///< Per external port.
  double bisection_TBps = 0;          ///< Full-duplex on-wafer bisection.
  double aggregate_TBps = 0;          ///< Sum over perimeter channels.
  int differential_pairs = 0;         ///< Off-wafer signal pairs.
  int total_io_pads = 0;              ///< Including power/ground estimate.
  double phy_area_mm2 = 0;            ///< Total UCIe PHY silicon.
  double conv_area_mm2 = 0;           ///< Total SR-LR converter silicon.
  double cgroup_area_mm2 = 0;
  double perimeter_escape_mm = 0;     ///< Wiring width needed at the rim.
  double perimeter_available_mm = 0;
  bool fits_wafer = false;
  bool escape_feasible = false;
  bool io_pads_feasible = false;
};

LayoutReport evaluate_layout(const LayoutParams& p = {});
std::string format_layout(const LayoutReport& r);

}  // namespace sldf::model
