#include "model/cost.hpp"

#include <cmath>
#include "common/strfmt.hpp"

namespace sldf::model {

double avg_link_length_E(double area_fraction) {
  // E[|dx|+|dy|] for uniform points in a unit square is 2/3; a cluster
  // covering a fraction f of the floor has side sqrt(f).
  return (2.0 / 3.0) * std::sqrt(area_fraction);
}

CostRow row_dojo_mesh() {
  // Tesla DOJO (§II-A2, Table III row 1): 2D-mesh of wafers plus one
  // centralized edge switch. Numbers follow the published system: 25 dies
  // per wafer, 18 wafers (450 D1 dies in the training tile deployment),
  // edge links aggregated into a 60-port switch.
  CostRow r;
  r.name = "2D-Mesh & Switch (DOJO)";
  r.chip_radix = 8;     // 4 mesh neighbours x 2 links
  r.switch_radix = 60;
  r.switches = 1;
  r.cabinets = 2;
  r.processors = 450;
  r.cables = 0;  // backplane mesh; inter-cabinet cables negligible
  r.cable_length_E = 0;
  // Local: mesh bisection 2*sqrt(N)*2 / N for a square mesh of 450 chips.
  const double side = std::sqrt(450.0);
  r.t_local = 4.0 * side / 450.0 * 8.0;  // 8 links per edge direction
  r.t_global = 0.53;  // bounded by the centralized switch (paper value)
  r.diameter = "2H*l + 18Hsr";
  return r;
}

CostRow row_fat_tree(int ports_per_chip, bool tapered_3to1,
                     const DatacenterAssumptions& dc) {
  // Three-stage folded Clos with radix-64 switches: k^3/4 endpoints and
  // 5k^2/4 switches per plane; `ports_per_chip` parallel planes.
  CostRow r;
  const int k = 64;
  const long endpoints = static_cast<long>(k) * k * k / 4;  // 65536
  const long sw_per_plane = 5L * k * k / 4;                 // 5120
  const long edge_per_plane = static_cast<long>(k) * k / 2; // 2048 (edge tier)
  if (!tapered_3to1) {
    r.name = ports_per_chip == 1 ? "Three-Stage Fat-Tree 1"
                                 : "Three-Stage Fat-Tree 4";
    r.processors = endpoints;  // one chip per endpoint port bundle
    r.switches = sw_per_plane * ports_per_chip;
    r.cables = 3L * endpoints * ports_per_chip;  // one per tier per endpoint
    r.t_local = ports_per_chip;
    r.t_global = ports_per_chip;
  } else {
    // 3:1 taper at the edge tier: 48 down / 16 up per edge switch.
    r.name = "Three-Stage F-T (3:1 Taper)";
    const long hosts = edge_per_plane * 48;  // 98304 endpoint ports per plane
    r.processors = hosts;
    // Upper tiers shrink by the taper: approximately 5k^2/4 * (1+1/3)/2.
    r.switches = (edge_per_plane +
                  (sw_per_plane - edge_per_plane) / 3 * 2) *
                 ports_per_chip;
    r.cables = (hosts + hosts / 3 * 2) * static_cast<long>(ports_per_chip);
    r.t_local = ports_per_chip;
    r.t_global = ports_per_chip / 3.0;
  }
  const long chips = r.processors;
  r.chip_radix = ports_per_chip;
  r.switch_radix = k;
  r.cabinets = chips / dc.nodes_per_cabinet +
               r.switches / dc.core_switches_per_cabinet;
  r.cable_length_E =
      static_cast<double>(r.cables) * avg_link_length_E(1.0) * 0.5;
  r.diameter = "2Hg + 2Hl + 2H*l";
  return r;
}

CostRow row_hx4mesh(int planes, const DatacenterAssumptions& dc) {
  // HammingMesh [8]: 4x4 chip boards (local 2D mesh), global Fat-Tree
  // backbone; `planes` parallel rails.
  CostRow r;
  r.name = planes == 1 ? "1-Plane Hx4Mesh" : "4-Plane Hx4Mesh";
  const int k = 64;
  const long boards = 4096;           // 65536 chips / 16 per board
  const long chips = boards * 16;     // 65536
  r.processors = chips;
  r.chip_radix = 4.0 * planes;        // 4 mesh ports per plane
  r.switch_radix = k;
  r.switches = 5120L * planes;        // Fat-Tree backbone per plane
  r.cabinets = chips / (dc.boards_per_cabinet_hx * 16) +
               r.switches / dc.core_switches_per_cabinet;
  r.cables = 3L * chips * planes;     // board-edge + backbone tiers
  r.cable_length_E =
      static_cast<double>(r.cables) * avg_link_length_E(1.0) * 0.5;
  r.t_local = 2.0 * planes;           // board-local mesh bandwidth
  r.t_global = 0.5 * planes;          // tapered backbone (paper: 1/2, 2)
  r.diameter = "2Hg + 2Hl + 2H*l + 4Hsr";
  return r;
}

CostRow row_polarfly(const DatacenterAssumptions& dc) {
  // Co-packaged PolarFly, q = 63 (router degree 64): q^2+q+1 = 4033
  // routers, 32 processors per co-package (p = 32).
  CostRow r;
  r.name = "Co-Packaged PolarFly (p=32)";
  const int q = 63;
  const long routers = static_cast<long>(q) * q + q + 1;  // 4033
  r.chip_radix = 1;
  r.switch_radix = 64;
  r.switches = routers;
  r.processors = routers * 32;  // 129056
  r.cables = routers * 64 / 2;  // 129056 inter-router links
  r.cabinets = routers / dc.packages_per_cabinet_pf;
  r.cable_length_E =
      static_cast<double>(r.cables) * avg_link_length_E(1.0);
  r.t_local = 1;
  r.t_global = 1;
  r.diameter = "2Hg + 2Hsr";
  return r;
}

CostRow row_slingshot_dragonfly(const DatacenterAssumptions& dc) {
  // Slingshot Dragonfly (Fig 2): 32 switches/group (16:31:17 split of the
  // radix-64 switch), g = 32*17 + 1 = 545 groups.
  CostRow r;
  r.name = "Dragonfly (Slingshot)";
  const int S = 32, T = 16, H = 17;
  const long groups = static_cast<long>(S) * H + 1;      // 545
  const long switches = groups * S;                      // 17440
  const long chips = switches * T;                       // 279040
  const long local_links = groups * (S * (S - 1L) / 2);  // 270320
  const long global_links = groups * (groups - 1) / 2;   // 148240
  r.chip_radix = 1;
  r.switch_radix = 64;
  r.switches = switches;
  r.processors = chips;
  r.cables = chips + local_links + global_links;  // ~698K
  r.cabinets = chips / dc.nodes_per_cabinet;      // 2180 (8 ToR co-housed)
  // Locals stay within a ~4-cabinet group cluster; globals span the floor.
  const double group_frac =
      static_cast<double>(S) * T / dc.nodes_per_cabinet /
      static_cast<double>(r.cabinets);
  r.cable_length_E =
      static_cast<double>(global_links) * avg_link_length_E(1.0) +
      static_cast<double>(local_links) * avg_link_length_E(group_frac);
  r.t_local = 1;
  r.t_global = 1;
  r.diameter = "Hg + 2Hl + 2H*l";
  return r;
}

CostRow row_swless_dragonfly(const DatacenterAssumptions& dc) {
  // Switch-less Dragonfly case study (§III-C): n = 12, m = 4, a = 4, b = 8,
  // h = 17, g = 545, N = 279040 chips; one W-group (8 wafers) per cabinet.
  CostRow r;
  r.name = "Switch-less Dragonfly";
  const int m = 4, n = 12, a = 4, b = 8;
  const long ab = static_cast<long>(a) * b;          // 32
  const long k = static_cast<long>(n) * m;           // 48
  const long h = k - ab + 1;                         // 17
  const long groups = ab * h + 1;                    // 545
  const long chips = ab * m * m * groups;            // 279040
  const long local_links = groups * (ab * (ab - 1) / 2);  // 545*496
  const long global_links = groups * (groups - 1) / 2;    // 148240
  r.chip_radix = n;
  r.switch_radix = 0;  // switch-less
  r.switches = 0;
  r.processors = chips;
  r.cables = local_links + global_links;  // ~419K (terminal cables gone)
  r.cabinets = groups * b / dc.wafers_per_cabinet;  // 545
  // Locals are intra-cabinet (zero floor length); the floor itself shrinks
  // to 545/2180 of the Slingshot area, shortening every global cable.
  const double floor_frac = static_cast<double>(r.cabinets) / 2180.0;
  r.cable_length_E =
      static_cast<double>(global_links) * avg_link_length_E(floor_frac);
  r.t_local = 2;    // Eq.(4): ab/m^2 = 2 (paper reports 3 intra-C-group)
  r.t_global = 1;
  r.diameter = "Hg + 2Hl + 30Hsr";
  return r;
}

std::vector<CostRow> table3(const DatacenterAssumptions& dc) {
  return {
      row_dojo_mesh(),
      row_fat_tree(1, false, dc),
      row_fat_tree(4, false, dc),
      row_fat_tree(4, true, dc),
      row_hx4mesh(1, dc),
      row_hx4mesh(4, dc),
      row_polarfly(dc),
      row_slingshot_dragonfly(dc),
      row_swless_dragonfly(dc),
  };
}

std::string format_table3(const std::vector<CostRow>& rows) {
  std::string out = strf(
      "%-28s%11s%9s%9s%9s%11s%9s%12s%8s%8s  %s\n", "Network", "chip-radix",
      "sw-radix", "#switch", "#cabinet", "#proc", "cables", "cable-len",
      "Tlocal", "Tglobal", "diameter");
  for (const auto& r : rows) {
    out += strf("%-28s%11.0f%9d%9ld%9ld%11ld%8ldK%10.0fKE%8.2f%8.2f  %s\n",
                r.name.c_str(), r.chip_radix, r.switch_radix, r.switches,
                r.cabinets, r.processors, r.cables / 1000,
                r.cable_length_E / 1000.0, r.t_local, r.t_global,
                r.diameter.c_str());
  }
  return out;
}

}  // namespace sldf::model
