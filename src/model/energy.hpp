// Energy accounting (paper §V-C, Fig 15): average pJ/bit per delivered
// packet from per-hop-type counts collected by the simulator, priced with
// the Table II hop costs.
#pragma once

#include "common/types.hpp"
#include "model/equations.hpp"
#include "sim/simulator.hpp"

namespace sldf::model {

struct EnergyBreakdown {
  double inter_cgroup_pj = 0.0;  ///< Global + local + terminal hops.
  double intra_cgroup_pj = 0.0;  ///< Short-reach + on-chip hops.
  [[nodiscard]] double total_pj() const {
    return inter_cgroup_pj + intra_cgroup_pj;
  }
};

/// Prices one packet's (or an average packet's) hop counts.
/// `hops` is indexed by LinkType. When `use_intra_avg` is set, short-reach
/// and on-chip hops are both charged the paper's 1 pJ/bit intra-C-group
/// average; otherwise Table II per-type values apply.
EnergyBreakdown price_hops(const double hops[kNumLinkTypes],
                           const HopCostTable& costs = {},
                           bool use_intra_avg = true);

/// Convenience: price the average hop counts of a simulation result.
EnergyBreakdown price_result(const sim::SimResult& res,
                             const HopCostTable& costs = {},
                             bool use_intra_avg = true);

}  // namespace sldf::model
