// Cost / specification comparison model (paper Table III, §III-C): switch
// counts, cabinet counts, cable counts and lengths, and throughput bounds
// for the compared interconnects, under the paper's datacenter assumptions.
#pragma once

#include <string>
#include <vector>

namespace sldf::model {

/// Datacenter packaging assumptions (§III-C3).
struct DatacenterAssumptions {
  int nodes_per_cabinet = 128;     ///< 64 blades x 2 nodes (Frontier [56]).
  int tor_per_cabinet = 8;         ///< ToR switches co-housed with nodes.
  int core_switches_per_cabinet = 32;
  int boards_per_cabinet_hx = 16;  ///< Hx4Mesh boards per cabinet.
  int packages_per_cabinet_pf = 8; ///< PolarFly co-packages per cabinet.
  int wafers_per_cabinet = 8;      ///< Wafer-scale density (>= 4x denser).
};

struct CostRow {
  std::string name;
  double chip_radix = 0;     ///< Interconnect ports per processor chip.
  int switch_radix = 0;      ///< 0 = switch-less.
  long switches = 0;
  long cabinets = 0;
  long processors = 0;
  long cables = 0;           ///< Inter-node/inter-switch cable count.
  double cable_length_E = 0; ///< Total length in units of the baseline
                             ///< datacenter side E (0 = not modeled).
  double t_local = 0;        ///< Saturation throughput within a subset.
  double t_global = 0;       ///< Global saturation throughput.
  std::string diameter;      ///< Hop-type formula string.
};

/// Average Manhattan distance between two uniform points in a unit square
/// is 2/3; links within a cluster occupying `area_fraction` of the floor
/// scale by sqrt(area_fraction).
double avg_link_length_E(double area_fraction);

// --- one row per compared network (radix-64 switches throughout) ---
CostRow row_dojo_mesh();
CostRow row_fat_tree(int ports_per_chip, bool tapered_3to1,
                     const DatacenterAssumptions& dc = {});
CostRow row_hx4mesh(int planes, const DatacenterAssumptions& dc = {});
CostRow row_polarfly(const DatacenterAssumptions& dc = {});
CostRow row_slingshot_dragonfly(const DatacenterAssumptions& dc = {});
CostRow row_swless_dragonfly(const DatacenterAssumptions& dc = {});

/// The full Table III.
std::vector<CostRow> table3(const DatacenterAssumptions& dc = {});

/// Formats the table as aligned text.
std::string format_table3(const std::vector<CostRow>& rows);

}  // namespace sldf::model
