#include "model/layout.hpp"

#include <cmath>
#include "common/strfmt.hpp"

namespace sldf::model {

LayoutReport evaluate_layout(const LayoutParams& p) {
  LayoutReport r;
  r.onwafer_channel_gbps =
      p.ucie_lanes_per_channel * p.ucie_lane_gbps;  // 128 * 32 = 4096
  r.offwafer_port_gbps =
      p.serdes_lanes_per_port * p.serdes_lane_gbps;  // 8 * 112 = 896

  // Bisection: a vertical cut crosses chiplets_y chiplet edges, each with
  // channels_per_chiplet_edge physical channels (half per direction); the
  // full-duplex bisection counts every physical channel crossing the cut.
  const double cut_channels =
      static_cast<double>(p.chiplets_y) * p.channels_per_chiplet_edge;
  r.bisection_TBps = cut_channels * r.onwafer_channel_gbps / 8.0 / 1000.0;

  // Aggregate (per direction): perimeter chiplet edges times duplex pairs,
  // derated by encoding overhead.
  const double rim_edges = 2.0 * (p.chiplets_x + p.chiplets_y);
  r.aggregate_TBps = rim_edges * (p.channels_per_chiplet_edge / 2.0) *
                     r.onwafer_channel_gbps * p.encoding_efficiency / 8.0 /
                     1000.0;

  // Off-wafer IO: each port has serdes_lanes in each direction, one
  // differential pair per lane; P/G adds roughly 80%.
  r.differential_pairs = p.external_ports * p.serdes_lanes_per_port * 2 * 2;
  r.total_io_pads = static_cast<int>(r.differential_pairs * 2 * 1.8);

  // Silicon area.
  const int chiplets = p.chiplets_x * p.chiplets_y;
  const double phys_per_chiplet = 4.0 * p.channels_per_chiplet_edge * 2.0;
  r.phy_area_mm2 =
      chiplets * phys_per_chiplet * p.ucie_phy_w_mm * p.ucie_phy_h_mm;
  r.conv_area_mm2 =
      p.external_ports * p.conv_module_w_mm * p.conv_module_h_mm;
  r.cgroup_area_mm2 = p.cgroup_edge_mm * p.cgroup_edge_mm;

  // Does a C-group fit in the wafer's inscribed square region (several
  // C-groups per wafer fit a 300 mm circle when edge <= ~100 mm)?
  const double usable = p.wafer_diameter_mm / std::sqrt(2.0);
  r.fits_wafer = p.cgroup_edge_mm <= usable;

  // Escape: all boundary wires of one chiplet edge (UCIe is single-ended)
  // routed at a 2x line-space pitch must fit along that edge.
  const double wires_per_edge =
      static_cast<double>(p.channels_per_chiplet_edge) *
      p.ucie_lanes_per_channel;
  r.perimeter_escape_mm =
      wires_per_edge * 2.0 * p.line_space_um / 1000.0;
  r.perimeter_available_mm = p.chiplet_mm;
  r.escape_feasible = r.perimeter_escape_mm <= r.perimeter_available_mm;

  // Off-wafer connector pads are area-distributed on the support plate
  // (Fig 5): the pad field must fit under the C-group footprint.
  const double pad_area =
      static_cast<double>(r.total_io_pads) * p.io_pad_pitch_mm *
      p.io_pad_pitch_mm;
  r.io_pads_feasible = pad_area <= r.cgroup_area_mm2 * 0.5;
  return r;
}

std::string format_layout(const LayoutReport& r) {
  return strf(
      "on-wafer channel: %.0f Gb/s; off-wafer port: %.0f Gb/s\n"
      "C-group bisection: %.1f TB/s; aggregate: %.1f TB/s\n"
      "off-wafer: %d differential pairs, ~%d IOs incl. power/ground\n"
      "PHY area: %.0f mm^2; SR-LR converters: %.0f mm^2; C-group: "
      "%.0f mm^2\n"
      "fits wafer: %s; edge escape: %.1f/%.1f mm (%s); IO pads: %s\n",
      r.onwafer_channel_gbps, r.offwafer_port_gbps, r.bisection_TBps,
      r.aggregate_TBps, r.differential_pairs, r.total_io_pads, r.phy_area_mm2,
      r.conv_area_mm2, r.cgroup_area_mm2, r.fits_wafer ? "yes" : "NO",
      r.perimeter_escape_mm, r.perimeter_available_mm,
      r.escape_feasible ? "ok" : "OVERFLOW",
      r.io_pads_feasible ? "ok" : "OVERFLOW");
}

}  // namespace sldf::model
