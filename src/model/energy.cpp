#include "model/energy.hpp"

namespace sldf::model {

EnergyBreakdown price_hops(const double hops[kNumLinkTypes],
                           const HopCostTable& costs, bool use_intra_avg) {
  EnergyBreakdown e;
  e.inter_cgroup_pj =
      hops[static_cast<int>(LinkType::LongReachGlobal)] *
          costs.global.energy_pj_per_bit +
      hops[static_cast<int>(LinkType::LongReachLocal)] *
          costs.local.energy_pj_per_bit +
      hops[static_cast<int>(LinkType::Terminal)] *
          costs.terminal.energy_pj_per_bit;
  const double sr = hops[static_cast<int>(LinkType::ShortReach)];
  const double oc = hops[static_cast<int>(LinkType::OnChip)];
  // Vertical bonds are on-wafer-stack wiring: intra side of the split.
  const double vt = hops[static_cast<int>(LinkType::Vertical)] *
                    costs.vertical.energy_pj_per_bit;
  if (use_intra_avg) {
    e.intra_cgroup_pj = (sr + oc) * costs.intra_cgroup_avg_pj + vt;
  } else {
    e.intra_cgroup_pj = sr * costs.short_reach.energy_pj_per_bit +
                        oc * costs.on_chip.energy_pj_per_bit + vt;
  }
  return e;
}

EnergyBreakdown price_result(const sim::SimResult& res,
                             const HopCostTable& costs, bool use_intra_avg) {
  return price_hops(res.avg_hops, costs, use_intra_avg);
}

}  // namespace sldf::model
