// Tiny command-line flag parser shared by the bench/example binaries.
// Supports `--flag`, `--key=value`, and `--key value` forms. Numeric
// getters reject malformed values with std::invalid_argument instead of
// silently truncating (bare strtol/strtod would accept "12abc" as 12).
// Repeated keys keep the last value but warn once per key on stderr (a
// silent last-wins hid typos like `--seed=1 ... --seed=2`).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sldf {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def = "") const;
  /// Throw std::invalid_argument (naming the flag) on unparseable values.
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] long get_int(const std::string& key, long def) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }
  /// All parsed --key[=value] entries, in sorted key order.
  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return kv_;
  }
  /// Keys present on the command line but absent from `known` (for
  /// unknown-flag warnings in drivers).
  [[nodiscard]] std::vector<std::string> unknown_keys(
      const std::vector<std::string>& known) const;
  /// Keys that appeared more than once (each was warned about once on
  /// stderr at parse time; the last value wins), in first-duplicate order.
  [[nodiscard]] const std::vector<std::string>& duplicate_keys() const {
    return duplicates_;
  }

  /// Strict whole-string numeric parses (leading/trailing spaces allowed,
  /// trailing garbage rejected). Return false on failure.
  static bool parse_long(const std::string& s, long& out);
  static bool parse_double(const std::string& s, double& out);
  static bool parse_bool(const std::string& s, bool& out);
  /// Copy of `s` with leading/trailing whitespace removed.
  static std::string trim(const std::string& s);

 private:
  void set_kv(const std::string& key, std::string value);

  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
  std::vector<std::string> duplicates_;
};

}  // namespace sldf
