// Tiny command-line flag parser shared by the bench/example binaries.
// Supports `--flag`, `--key=value`, and `--key value` forms.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sldf {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def = "") const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] long get_int(const std::string& key, long def) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace sldf
