// A small fixed-size thread pool used to run independent simulation sweep
// points in parallel. Each task owns its Network/Rng, so runs stay
// deterministic regardless of scheduling. On single-core hosts the pool
// degrades to (almost) serial execution with no semantic change.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sldf {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task);
  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions inside tasks propagate out of parallel_for (first one wins).
  static void parallel_for(std::size_t n, std::size_t threads,
                           const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace sldf
