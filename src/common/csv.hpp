// CSV emission for benchmark results (one file per figure/table series).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace sldf {

/// Writes RFC-4180-ish CSV; numeric cells are formatted with %.6g.
class CsvWriter {
 public:
  CsvWriter() = default;
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  [[nodiscard]] bool is_open() const { return out_.is_open(); }

  void row(const std::vector<std::string>& cells);
  void row(const std::vector<double>& cells);

  static std::string escape(const std::string& cell);
  static std::string format_num(double v);

 private:
  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace sldf
