#include "common/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace sldf {

std::string Cli::trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

void Cli::set_kv(const std::string& key, std::string value) {
  const auto it = kv_.find(key);
  if (it == kv_.end()) {
    kv_.emplace(key, std::move(value));
    return;
  }
  // Last value wins, but never silently: warn once per duplicated key.
  if (std::find(duplicates_.begin(), duplicates_.end(), key) ==
      duplicates_.end()) {
    duplicates_.push_back(key);
    std::fprintf(stderr,
                 "%s: warning: flag --%s given more than once "
                 "(last value wins)\n",
                 program_.empty() ? "cli" : program_.c_str(), key.c_str());
  }
  it->second = std::move(value);
}

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set_kv(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      set_kv(arg, argv[++i]);
    } else {
      set_kv(arg, "");
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

double Cli::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  double v = 0.0;
  if (!parse_double(it->second, v))
    throw std::invalid_argument("--" + key + ": expected a number, got '" +
                                it->second + "'");
  return v;
}

long Cli::get_int(const std::string& key, long def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  long v = 0;
  if (!parse_long(it->second, v))
    throw std::invalid_argument("--" + key + ": expected an integer, got '" +
                                it->second + "'");
  return v;
}

std::vector<std::string> Cli::unknown_keys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : kv_) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end())
      unknown.push_back(key);
  }
  return unknown;
}

bool Cli::parse_long(const std::string& s, long& out) {
  const std::string t = trim(s);
  if (t.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(t.c_str(), &end, 10);
  if (errno != 0 || end != t.c_str() + t.size()) return false;
  out = v;
  return true;
}

bool Cli::parse_double(const std::string& s, double& out) {
  const std::string t = trim(s);
  if (t.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(t.c_str(), &end);
  if (errno != 0 || end != t.c_str() + t.size()) return false;
  out = v;
  return true;
}

bool Cli::parse_bool(const std::string& s, bool& out) {
  const std::string t = trim(s);
  if (t == "1" || t == "true" || t == "yes" || t == "on") {
    out = true;
    return true;
  }
  if (t == "0" || t == "false" || t == "no" || t == "off") {
    out = false;
    return true;
  }
  return false;
}

}  // namespace sldf
