#include "common/cli.hpp"

#include <cstdlib>

namespace sldf {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

double Cli::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

long Cli::get_int(const std::string& key, long def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return def;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

}  // namespace sldf
