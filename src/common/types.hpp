// Core identifier and enum types shared across the sldf library.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace sldf {

using Cycle = std::uint64_t;
using NodeId = std::int32_t;   ///< Index of a router node within a Network.
using ChanId = std::int32_t;   ///< Index of a unidirectional channel.
using ChipId = std::int32_t;   ///< Index of a chip (chiplet) endpoint.
using PortIx = std::int16_t;   ///< Port index local to one router.
using VcIx = std::int16_t;     ///< Virtual-channel index local to one port.
using PacketId = std::uint32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr ChanId kInvalidChan = -1;
inline constexpr ChipId kInvalidChip = -1;
inline constexpr PortIx kInvalidPort = -1;
inline constexpr VcIx kInvalidVc = -1;
inline constexpr PacketId kInvalidPacket = std::numeric_limits<PacketId>::max();

/// Physical medium class of a channel; drives latency defaults and the
/// energy model (paper Table II).
enum class LinkType : std::uint8_t {
  OnChip,       ///< NoC link inside one chiplet (~1 cycle, ~0.1 pJ/bit)
  ShortReach,   ///< On-wafer RDL link between chiplets or to an SR-LR
                ///< converter (~1 cycle, ~2 pJ/bit; paper uses 1 pJ/bit as
                ///< the intra-C-group average)
  LongReachLocal,   ///< Intra-W-group cable/optics (H_l: 8 cycles, 20 pJ/bit)
  LongReachGlobal,  ///< Inter-W-group cable/optics (H_g: 8 cycles, 20 pJ/bit)
  Terminal,     ///< Processor-to-switch link in switch-based networks (H*_l)
  Vertical,     ///< Inter-wafer bond in a wafer-on-wafer stack (TSV/hybrid
                ///< bond column between vertically adjacent chip twins).
  kCount
};
inline constexpr int kNumLinkTypes = static_cast<int>(LinkType::kCount);

std::string_view to_string(LinkType t);

/// Role of a node in the topology.
enum class NodeKind : std::uint8_t {
  Core,         ///< Chiplet NoC router with an attached terminal (endpoint).
  IoConverter,  ///< SR-LR conversion module: 2-port FIFO forwarder, no terminal.
  Switch,       ///< High-radix switch (switch-based baselines), no terminal.
};

std::string_view to_string(NodeKind k);

}  // namespace sldf
