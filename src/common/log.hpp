// Minimal leveled logging to stderr. Not hot-path; simulation loops never log.
#pragma once

#include <string_view>

#include "common/strfmt.hpp"

namespace sldf {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, std::string_view msg);

__attribute__((format(printf, 1, 2))) void log_debug(const char* fmt, ...);
__attribute__((format(printf, 1, 2))) void log_info(const char* fmt, ...);
__attribute__((format(printf, 1, 2))) void log_warn(const char* fmt, ...);
__attribute__((format(printf, 1, 2))) void log_error(const char* fmt, ...);

}  // namespace sldf
