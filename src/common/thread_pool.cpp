#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace sldf {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lk(mu_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t threads,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, n));
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error = nullptr;
  std::mutex err_mu;
  for (std::size_t w = 0; w < pool.size(); ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sldf
