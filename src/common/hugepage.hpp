// Hugepage-friendly STL allocator for the engine's large flat arenas.
//
// The cycle engine's working set is tens of MB accessed at random; with
// 4 KiB pages that is thousands of TLB entries. Allocations of 2 MiB or
// more are therefore mmap'd with 2 MiB alignment and marked
// MADV_HUGEPAGE, so kernels with transparent hugepages (madvise or always
// mode) back them with 2 MiB pages. Smaller allocations — and any
// platform without the needed syscalls — fall back to operator new.
#pragma once

#include <cstddef>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace sldf {

inline constexpr std::size_t kHugePageSize = 2u << 20;

inline void* huge_alloc(std::size_t bytes) {
#if defined(__linux__)
  if (bytes >= kHugePageSize) {
    // Over-allocate so the usable region can start on a 2 MiB boundary,
    // then trim; THP only maps aligned 2 MiB extents. huge_free frees by
    // size, so this branch must not fall back to operator new — an
    // anonymous mmap of this size only fails when the process is out of
    // address space anyway.
    const std::size_t len = bytes + kHugePageSize;
    void* raw = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw == MAP_FAILED) throw std::bad_alloc();
    const auto base = reinterpret_cast<std::uintptr_t>(raw);
    const std::uintptr_t aligned =
        (base + kHugePageSize - 1) & ~(kHugePageSize - 1);
    if (aligned > base) ::munmap(raw, aligned - base);
    // munmap needs a page-aligned address, so the tail trim starts at the
    // next page boundary past the usable region (an unaligned trim would
    // fail with EINVAL and leak the tail as a stray VMA per allocation).
    static const auto page =
        static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
    const std::uintptr_t trim_from = (aligned + bytes + page - 1) & ~(page - 1);
    if (base + len > trim_from)
      ::munmap(reinterpret_cast<void*>(trim_from), (base + len) - trim_from);
    ::madvise(reinterpret_cast<void*>(aligned), bytes, MADV_HUGEPAGE);
    return reinterpret_cast<void*>(aligned);
  }
#endif
  // Cache-line alignment for over-aligned element types (e.g. Packet).
  return ::operator new(bytes, std::align_val_t{64});
}

inline void huge_free(void* p, std::size_t bytes) noexcept {
#if defined(__linux__)
  if (bytes >= kHugePageSize) {
    ::munmap(p, bytes);
    return;
  }
#endif
  ::operator delete(p, std::align_val_t{64});
}

/// Minimal C++17 allocator over huge_alloc/huge_free for std::vector.
template <typename T>
struct HugePageAllocator {
  using value_type = T;

  HugePageAllocator() = default;
  template <typename U>
  constexpr HugePageAllocator(const HugePageAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(huge_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    huge_free(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const HugePageAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace sldf
