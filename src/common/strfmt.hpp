// printf-style std::string formatting (libstdc++ 12 has no <format>).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace sldf {

inline std::string vstrf(const char* fmt, va_list ap) {
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  std::string s(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(s.data(), s.size() + 1, fmt, ap2);
  va_end(ap2);
  return s;
}

__attribute__((format(printf, 1, 2))) inline std::string strf(const char* fmt,
                                                              ...) {
  va_list ap;
  va_start(ap, fmt);
  std::string s = vstrf(fmt, ap);
  va_end(ap);
  return s;
}

}  // namespace sldf
