#include "common/stats.hpp"

#include <cmath>

namespace sldf {

void OnlineStats::merge(const OnlineStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += o.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0) x = 0;
  const auto b = static_cast<std::size_t>(x / width_);
  if (b >= max_buckets_) {
    ++overflow_;
    return;
  }
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return std::nan("");
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) return (static_cast<double>(b) + 1.0) * width_;
  }
  return static_cast<double>(buckets_.size()) * width_;  // overflow bucket
}

}  // namespace sldf
