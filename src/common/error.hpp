// Structured error types shared across layers.
#pragma once

#include <stdexcept>
#include <string>

namespace sldf {

/// A scenario that cannot run as configured — e.g. a workload scoped to a
/// chip group that the active fault mask left empty, a tenant placement
/// that does not fit the live chips, or a trace replayed onto the wrong
/// placement size. Thrown before any simulation starts, so a bad
/// configuration is a catchable, self-describing error instead of an
/// engine assert mid-run.
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace sldf
