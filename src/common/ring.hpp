// Growable power-of-two ring queue. Unlike std::deque it never releases
// storage on pop/clear, so steady-state push/pop cycles are allocation-free
// — exactly what the simulator's per-terminal source queues need.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace sldf {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  void push_back(const T& v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = v;
    ++size_;
  }

  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  /// Peeks element `i` (0 == front, i < size()). Used by the simulator's
  /// fault sweep and checkpointing to scan a queue without draining it.
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  /// Drops all elements; keeps the storage.
  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i)
      next[i] = buf_[(head_ + i) & (buf_.size() - 1)];
    buf_.swap(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace sldf
