// Small, fast, deterministic PRNGs for simulation (no <random> in hot paths).
#pragma once

#include <array>
#include <cstdint>
#include <cmath>

namespace sldf {

/// SplitMix64: used for seeding and cheap one-shot hashes.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// xoshiro256** — the workhorse generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5d1f00d5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n) {
    if (n <= 1) return 0;
    const auto x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Checkpoint hooks: the full xoshiro256** state, so a restored
  /// simulation continues the exact stream it left off.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

  /// Number of failures before the next success of a Bernoulli(p) process.
  /// Used for geometric-skip injection scheduling: the next arrival is
  /// `geometric_skip(p) + 1` cycles away.
  std::uint64_t geometric_skip(double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return ~0ULL;
    const double u = uniform();
    const double g = std::floor(std::log1p(-u) / std::log1p(-p));
    return g >= 9e18 ? ~0ULL : static_cast<std::uint64_t>(g);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace sldf
