// Online statistics accumulators used by the simulator's measurement phase.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace sldf {

/// Welford online mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const OnlineStats& o);

  /// Checkpoint hooks: the raw accumulator tuple (n, mean, m2, min, max).
  struct State {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] State state() const { return {n_, mean_, m2_, min_, max_}; }
  void set_state(const State& s) {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact nearest-rank percentile (q in [0, 100]) of an unsorted sample.
/// Sorts its by-value copy; NaN on an empty sample. Used where the sample
/// is small enough to keep whole (per-tenant message latencies) — the
/// Histogram below is the streaming estimate for engine-scale counts.
inline double exact_percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(xs.begin(), xs.end());
  if (q <= 0.0) return xs.front();
  if (q >= 100.0) return xs.back();
  // Nearest-rank: smallest element with at least ceil(q/100 * n) of the
  // sample at or below it.
  const auto n = static_cast<double>(xs.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q / 100.0 * n));
  return xs[rank == 0 ? 0 : rank - 1];
}

/// Fixed-bucket histogram for latency distributions (percentile estimates).
class Histogram {
 public:
  explicit Histogram(double bucket_width = 1.0, std::size_t max_buckets = 65536)
      : width_(bucket_width), buckets_(), max_buckets_(max_buckets) {}

  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  /// q in [0,1]; returns an upper-edge estimate of the q-quantile.
  [[nodiscard]] double quantile(double q) const;

  /// Checkpoint hooks: bucket counts + totals (width/max are ctor-fixed).
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  void set_state(std::vector<std::uint64_t> buckets, std::uint64_t total,
                 std::uint64_t overflow) {
    buckets_ = std::move(buckets);
    total_ = total;
    overflow_ = overflow;
  }

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::size_t max_buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace sldf
