#include "common/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace sldf {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string r = "\"";
  for (char c : cell) {
    if (c == '"') r += '"';
    r += c;
  }
  r += '"';
  return r;
}

std::string CsvWriter::format_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (columns_ == 0) columns_ = cells.size();
  if (cells.size() != columns_)
    throw std::runtime_error("CsvWriter: ragged row");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(format_num(v));
  row(s);
}

}  // namespace sldf
