#include "common/log.hpp"

#include <atomic>
#include <cstdio>

#include "common/types.hpp"

namespace sldf {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};

constexpr const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, std::string_view msg) {
  std::fprintf(stderr, "[sldf %-5s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

#define SLDF_LOG_IMPL(fn, lvl)                        \
  void fn(const char* fmt, ...) {                     \
    if (log_level() > (lvl)) return;                  \
    va_list ap;                                       \
    va_start(ap, fmt);                                \
    log_message((lvl), vstrf(fmt, ap));               \
    va_end(ap);                                       \
  }

SLDF_LOG_IMPL(log_debug, LogLevel::Debug)
SLDF_LOG_IMPL(log_info, LogLevel::Info)
SLDF_LOG_IMPL(log_warn, LogLevel::Warn)
SLDF_LOG_IMPL(log_error, LogLevel::Error)
#undef SLDF_LOG_IMPL

std::string_view to_string(LinkType t) {
  switch (t) {
    case LinkType::OnChip: return "on-chip";
    case LinkType::ShortReach: return "short-reach";
    case LinkType::LongReachLocal: return "lr-local";
    case LinkType::LongReachGlobal: return "lr-global";
    case LinkType::Terminal: return "terminal";
    case LinkType::Vertical: return "vertical";
    default: return "?";
  }
}

std::string_view to_string(NodeKind k) {
  switch (k) {
    case NodeKind::Core: return "core";
    case NodeKind::IoConverter: return "io-converter";
    case NodeKind::Switch: return "switch";
  }
  return "?";
}

}  // namespace sldf
