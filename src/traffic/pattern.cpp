#include "traffic/pattern.hpp"

#include <stdexcept>

#include "common/cli.hpp"
#include "topo/hier.hpp"
#include "traffic/allreduce.hpp"

namespace sldf::traffic {

UniformTraffic::UniformTraffic(const sim::Network& net)
    : terms_(net.logical_terminals()) {}

NodeId UniformTraffic::dest(const sim::Network&, NodeId src, Rng& rng) {
  if (terms_.size() < 2) return kInvalidNode;
  for (;;) {
    const NodeId d = terms_[rng.below(terms_.size())];
    if (d != src) return d;
  }
}

PermutationTraffic::PermutationTraffic(const sim::Network& net,
                                       Permutation kind)
    : kind_(kind), terms_(net.logical_terminals()) {
  while ((std::size_t{1} << (bits_ + 1)) <= terms_.size()) ++bits_;
  term_index_.assign(net.num_routers(), -1);
  for (std::size_t i = 0; i < terms_.size(); ++i)
    term_index_[static_cast<std::size_t>(terms_[i])] =
        static_cast<std::int32_t>(i);
}

const char* PermutationTraffic::name() const {
  switch (kind_) {
    case Permutation::BitReverse: return "bit-reverse";
    case Permutation::BitShuffle: return "bit-shuffle";
    case Permutation::BitTranspose: return "bit-transpose";
  }
  return "?";
}

NodeId PermutationTraffic::dest(const sim::Network&, NodeId src, Rng& rng) {
  const auto i = static_cast<std::uint32_t>(
      term_index_[static_cast<std::size_t>(src)]);
  const std::uint32_t n_perm = 1u << bits_;
  if (i >= n_perm) {  // outside the permuted sub-cube: uniform fallback
    for (;;) {
      const NodeId d = terms_[rng.below(terms_.size())];
      if (d != src) return d;
    }
  }
  std::uint32_t j = 0;
  switch (kind_) {
    case Permutation::BitReverse:
      for (int b = 0; b < bits_; ++b)
        if (i & (1u << b)) j |= 1u << (bits_ - 1 - b);
      break;
    case Permutation::BitShuffle:
      j = ((i << 1) | (i >> (bits_ - 1))) & (n_perm - 1);
      break;
    case Permutation::BitTranspose: {
      const int half = bits_ / 2;
      const int rest = bits_ - half;
      j = (i >> half) | ((i & ((1u << half) - 1)) << rest);
      break;
    }
  }
  return terms_[j];
}

HotspotTraffic::HotspotTraffic(const sim::Network& net, int hot_groups) {
  const auto& hier = net.topo<topo::HierTopo>();
  const int limit = std::min<std::int32_t>(hot_groups, hier.num_wgroups);
  is_hot_.assign(net.num_routers(), false);
  std::vector<bool> chip_hot(net.num_chips(), false);
  for (ChipId c = 0; c < static_cast<ChipId>(net.num_chips()); ++c) {
    if (hier.chip_wgroup[static_cast<std::size_t>(c)] < limit) {
      chip_hot[static_cast<std::size_t>(c)] = true;
      ++active_chips_;
    }
  }
  for (NodeId n : net.logical_terminals()) {
    if (chip_hot[static_cast<std::size_t>(net.chip_of(n))]) {
      is_hot_[static_cast<std::size_t>(n)] = true;
      hot_terms_.push_back(n);
    }
  }
  if (hot_terms_.size() < 2)
    throw std::invalid_argument("HotspotTraffic: fewer than 2 hot terminals");
}

NodeId HotspotTraffic::dest(const sim::Network&, NodeId src, Rng& rng) {
  if (!is_hot_[static_cast<std::size_t>(src)]) return kInvalidNode;
  for (;;) {
    const NodeId d = hot_terms_[rng.below(hot_terms_.size())];
    if (d != src) return d;
  }
}

WorstCaseTraffic::WorstCaseTraffic(const sim::Network& net) {
  const auto& hier = net.topo<topo::HierTopo>();
  group_terms_.resize(static_cast<std::size_t>(hier.num_wgroups));
  node_group_.assign(net.num_routers(), -1);
  for (NodeId n : net.logical_terminals()) {
    const auto wg = hier.chip_wgroup[static_cast<std::size_t>(net.chip_of(n))];
    group_terms_[static_cast<std::size_t>(wg)].push_back(n);
    node_group_[static_cast<std::size_t>(n)] = wg;
  }
  if (group_terms_.size() < 2)
    throw std::invalid_argument("WorstCaseTraffic: needs >= 2 W-groups");
}

NodeId WorstCaseTraffic::dest(const sim::Network&, NodeId src, Rng& rng) {
  const auto wg = static_cast<std::size_t>(
      node_group_[static_cast<std::size_t>(src)]);
  const auto& peers = group_terms_[(wg + 1) % group_terms_.size()];
  if (peers.empty()) return kInvalidNode;
  return peers[rng.below(peers.size())];
}

namespace {

// Pattern option defaults, shared by each factory's reader and its doc
// entry so the generated reference cannot drift from the code.
constexpr int kHotGroups = 4;
constexpr const char* kRingScope = "wgroup";
constexpr bool kRingBidir = false;

TrafficRegistry::Factory permutation(const char* name, Permutation kind) {
  return [name, kind](const sim::Network& net, const core::KvMap& opts) {
    core::KvReader(opts, std::string("traffic '") + name + "'").finish();
    return std::make_unique<PermutationTraffic>(net, kind);
  };
}

}  // namespace

TrafficRegistry::TrafficRegistry() {
  add("uniform", "uniform random over all terminals",
      [](const sim::Network& net, const core::KvMap& opts) {
        core::KvReader(opts, "traffic 'uniform'").finish();
        return std::make_unique<UniformTraffic>(net);
      });
  add("bit-reverse", "bit-reversal permutation over terminal indices",
      permutation("bit-reverse", Permutation::BitReverse));
  add("bit-shuffle", "bit-shuffle permutation over terminal indices",
      permutation("bit-shuffle", Permutation::BitShuffle));
  add("bit-transpose", "bit-transpose permutation over terminal indices",
      permutation("bit-transpose", Permutation::BitTranspose));
  add("hotspot",
      core::RegistryDoc{
          "traffic confined to the first hot_groups W-groups",
          {{"hot_groups", "int", std::to_string(kHotGroups),
            "W-groups that exchange traffic"}}},
      [](const sim::Network& net, const core::KvMap& opts) {
        core::KvReader o(opts, "traffic 'hotspot'");
        const int hot_groups = o.get_int("hot_groups", kHotGroups);
        o.finish();
        return std::make_unique<HotspotTraffic>(net, hot_groups);
      });
  add("worst-case", "every W-group i sends to W-group (i+1) mod g",
      [](const sim::Network& net, const core::KvMap& opts) {
        core::KvReader(opts, "traffic 'worst-case'").finish();
        return std::make_unique<WorstCaseTraffic>(net);
      });
  add("ring-allreduce",
      core::RegistryDoc{
          "steady-state ring AllReduce streams (open-loop saturation "
          "probe; the `ring-allreduce` *workload* runs it closed-loop)",
          {{"scope", "cgroup|wgroup|system", kRingScope,
            "chips forming one ring"},
           {"bidir", "bool", kRingBidir ? "1" : "0",
            "stream to both ring neighbours"}}},
      [](const sim::Network& net, const core::KvMap& opts) {
        core::KvReader o(opts, "traffic 'ring-allreduce'");
        const std::string scope_s = o.get_str("scope", kRingScope);
        const bool bidir = o.get_bool("bidir", kRingBidir);
        o.finish();
        const RingScope scope =
            workload::parse_scope(scope_s, "traffic 'ring-allreduce'");
        return std::make_unique<RingAllReduceTraffic>(net, scope, bidir);
      });
}

TrafficRegistry& TrafficRegistry::instance() {
  static TrafficRegistry reg;
  return reg;
}

std::unique_ptr<sim::TrafficSource> make_pattern(const std::string& kind,
                                                 const sim::Network& net,
                                                 const core::KvMap& opts) {
  return TrafficRegistry::instance().make(kind, net, opts);
}

}  // namespace sldf::traffic
