// Traffic patterns (paper §V-A3): uniform, bit permutations (bit-reverse,
// bit-shuffle, bit-transpose), and the adversarial hotspot / worst-case
// patterns defined over the W-group hierarchy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "sim/simulator.hpp"

namespace sldf::traffic {

/// Uniform random over all terminals except the source node.
class UniformTraffic final : public sim::TrafficSource {
 public:
  explicit UniformTraffic(const sim::Network& net);
  NodeId dest(const sim::Network& net, NodeId src, Rng& rng) override;
  [[nodiscard]] const char* name() const override { return "uniform"; }

 private:
  std::vector<NodeId> terms_;
};

enum class Permutation : std::uint8_t { BitReverse, BitShuffle, BitTranspose };

/// Bit permutation over terminal indices. For non-power-of-two N the low
/// 2^floor(log2 N) endpoints are permuted and the rest fall back to uniform
/// (BookSim convention).
class PermutationTraffic final : public sim::TrafficSource {
 public:
  PermutationTraffic(const sim::Network& net, Permutation kind);
  NodeId dest(const sim::Network& net, NodeId src, Rng& rng) override;
  [[nodiscard]] const char* name() const override;

 private:
  Permutation kind_;
  int bits_ = 0;
  std::vector<NodeId> terms_;
  std::vector<std::int32_t> term_index_;  ///< node -> terminal index.
};

/// Hotspot (paper Fig 13a): traffic confined to `hot_groups` W-groups; all
/// terminals inside them send uniformly to each other, everyone else idles.
class HotspotTraffic final : public sim::TrafficSource {
 public:
  HotspotTraffic(const sim::Network& net, int hot_groups = 4);
  NodeId dest(const sim::Network& net, NodeId src, Rng& rng) override;
  [[nodiscard]] const char* name() const override { return "hotspot"; }
  /// Chips that actually inject (for throughput normalization).
  [[nodiscard]] int active_chips() const { return active_chips_; }

 private:
  std::vector<NodeId> hot_terms_;
  std::vector<bool> is_hot_;  ///< Indexed by node.
  int active_chips_ = 0;
};

/// Worst-case (paper Fig 13b): every node in W-group i sends to a random
/// node in W-group (i+1) mod g, saturating one global link per group pair.
class WorstCaseTraffic final : public sim::TrafficSource {
 public:
  explicit WorstCaseTraffic(const sim::Network& net);
  NodeId dest(const sim::Network& net, NodeId src, Rng& rng) override;
  [[nodiscard]] const char* name() const override { return "worst-case"; }

 private:
  std::vector<std::vector<NodeId>> group_terms_;
  std::vector<std::int32_t> node_group_;
};

/// Registry of named traffic patterns. Built-ins: "uniform", "bit-reverse",
/// "bit-shuffle", "bit-transpose", "hotspot" (option hot_groups),
/// "worst-case", and "ring-allreduce" (options scope=cgroup|wgroup|system,
/// bidir=0|1). Factories receive the pattern's option map; unknown options
/// or kinds throw std::invalid_argument.
class TrafficRegistry {
 public:
  using Factory = std::function<std::unique_ptr<sim::TrafficSource>(
      const sim::Network&, const core::KvMap&)>;

  /// The process-wide registry, with the built-in patterns registered.
  static TrafficRegistry& instance();

  void add(const std::string& name, std::string help, Factory make) {
    reg_.add(name, std::move(help), std::move(make));
  }
  void add(const std::string& name, core::RegistryDoc doc, Factory make) {
    reg_.add(name, std::move(doc), std::move(make));
  }
  [[nodiscard]] bool contains(const std::string& name) const {
    return reg_.contains(name);
  }
  [[nodiscard]] std::vector<std::string> names() const { return reg_.names(); }
  [[nodiscard]] const std::string& help(const std::string& name) const {
    return reg_.help(name);
  }
  [[nodiscard]] const core::RegistryDoc& doc(const std::string& name) const {
    return reg_.doc(name);
  }
  [[nodiscard]] std::unique_ptr<sim::TrafficSource> make(
      const std::string& kind, const sim::Network& net,
      const core::KvMap& opts = {}) const {
    return reg_.at(kind, "traffic pattern")(net, opts);
  }

 private:
  TrafficRegistry();
  core::NamedRegistry<Factory> reg_;
};

/// Registry lookup shorthand (kept as the factory entry point).
std::unique_ptr<sim::TrafficSource> make_pattern(const std::string& kind,
                                                 const sim::Network& net,
                                                 const core::KvMap& opts = {});

}  // namespace sldf::traffic
