#include "traffic/allreduce.hpp"

#include <stdexcept>

namespace sldf::traffic {

RingAllReduceTraffic::RingAllReduceTraffic(const sim::Network& net,
                                           RingScope scope,
                                           bool bidirectional)
    : bidirectional_(bidirectional) {
  const auto nchips = static_cast<ChipId>(net.num_chips());
  succ_.assign(static_cast<std::size_t>(nchips), kInvalidChip);
  pred_.assign(static_cast<std::size_t>(nchips), kInvalidChip);

  // One ring per scope group, in the shared (C-group, Hamiltonian ring
  // rank) order — the same schedule the ring-allreduce workload executes.
  for (const auto& chips : workload::chip_groups(net, scope)) {
    if (chips.size() < 2)
      throw std::invalid_argument("RingAllReduce: ring with < 2 chips");
    for (std::size_t i = 0; i < chips.size(); ++i) {
      succ_[static_cast<std::size_t>(chips[i])] =
          chips[(i + 1) % chips.size()];
      pred_[static_cast<std::size_t>(chips[i])] =
          chips[(i + chips.size() - 1) % chips.size()];
    }
  }

  node_slot_.assign(net.num_routers(), 0);
  for (ChipId c = 0; c < nchips; ++c) {
    const auto& nodes = net.chip_nodes(c);
    for (std::size_t j = 0; j < nodes.size(); ++j)
      node_slot_[static_cast<std::size_t>(nodes[j])] =
          static_cast<std::int32_t>(j);
  }
}

NodeId RingAllReduceTraffic::dest(const sim::Network& net, NodeId src,
                                  Rng& rng) {
  const ChipId chip = net.chip_of(src);
  const ChipId nbr =
      (bidirectional_ && rng.bernoulli(0.5))
          ? pred_[static_cast<std::size_t>(chip)]
          : succ_[static_cast<std::size_t>(chip)];
  // Destinations stay in the logical (plane-0) prefix of the neighbour
  // chip's node list; the engine remaps to the selected plane's twin at
  // injection. Sources are always logical, so their slot is already a
  // logical index.
  const auto& nodes = net.chip_nodes(nbr);
  const auto slot = static_cast<std::size_t>(
      node_slot_[static_cast<std::size_t>(src)]);
  return nodes[slot % net.logical_chip_size(nbr)];
}

}  // namespace sldf::traffic
