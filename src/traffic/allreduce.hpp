// Ring-based AllReduce steady-state traffic (paper §V-A3(c), Fig 14):
// each chip streams segments to its ring successor (unidirectional) or to
// both neighbours (bidirectional). Rings are formed per scope — within each
// C-group, within each W-group, or over the whole system — using the same
// workload::chip_groups() schedule the closed-loop ring-allreduce workload
// executes, so the open-loop saturation probe and the time-to-completion
// run stress identical link sequences. Node j of a chip pairs with node j
// of the neighbouring chip, exercising the parallel chip-boundary links of
// the wafer mesh.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "workload/collectives.hpp"

namespace sldf::traffic {

/// Ring scope, shared with the closed-loop collective generators.
using RingScope = workload::Scope;

class RingAllReduceTraffic final : public sim::TrafficSource {
 public:
  RingAllReduceTraffic(const sim::Network& net, RingScope scope,
                       bool bidirectional);
  NodeId dest(const sim::Network& net, NodeId src, Rng& rng) override;
  [[nodiscard]] const char* name() const override {
    return bidirectional_ ? "allreduce-bi" : "allreduce-uni";
  }

 private:
  bool bidirectional_;
  std::vector<ChipId> succ_;               ///< Ring successor per chip.
  std::vector<ChipId> pred_;               ///< Ring predecessor per chip.
  std::vector<std::int32_t> node_slot_;    ///< Index of a node in its chip.
};

}  // namespace sldf::traffic
