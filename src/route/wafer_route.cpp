#include "route/wafer_route.hpp"

#include <cassert>

#include "common/rng.hpp"

namespace sldf::route {

namespace {

/// Seed for the destination-leg re-initialization: packet state only, so
/// every engine mode derives the same stream (see header).
std::uint64_t dest_leg_seed(NodeId src, NodeId dst, Cycle t_gen) {
  SplitMix64 sm((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                 << 32) ^
                static_cast<std::uint32_t>(dst) ^ (t_gen * 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

}  // namespace

bool WaferRouting::column_usable(const sim::Network& net, int wa, int wb,
                                 std::int32_t col) const {
  const auto& T = *topo_;
  return net.chan_live(T.vertical(col, wa, wb)) &&
         net.node_live(T.portal(wa, col)) && net.node_live(T.portal(wb, col));
}

std::int32_t WaferRouting::exit_column(const sim::Network& net, int wr,
                                       int wd, std::int32_t pref) const {
  if (!net.has_faults() || column_usable(net, wr, wd, pref)) return pref;
  for (std::int32_t c = 0; c < topo_->chips_per_wafer; ++c)
    if (c != pref && column_usable(net, wr, wd, c)) return c;
  return pref;  // stack fully severed between wr and wd
}

void WaferRouting::init_packet(const sim::Network& net, sim::Packet& pkt,
                               Rng& rng) {
  if (topo_ == nullptr) topo_ = &net.topo<topo::WaferStackTopo>();
  const int ws = net.wafer_of_node(pkt.src);
  const int wd = net.wafer_of_node(pkt.dst);
  if (ws == wd) {
    children_[static_cast<std::size_t>(ws)]->init_packet(net, pkt, rng);
    return;
  }
  // Cross-wafer: plan the source leg toward the exit column's portal. The
  // true destination is restored afterwards; route() re-swaps per hop so a
  // fault detour to another column re-plans naturally.
  const NodeId saved_dst = pkt.dst;
  const std::int32_t col =
      exit_column(net, ws, wd,
                  static_cast<std::int32_t>(
                      static_cast<std::uint32_t>(net.chip_of(saved_dst)) %
                      static_cast<std::uint32_t>(topo_->chips_per_wafer)));
  pkt.dst = topo_->portal(ws, col);
  children_[static_cast<std::size_t>(ws)]->init_packet(net, pkt, rng);
  pkt.dst = saved_dst;
}

sim::RouteDecision WaferRouting::route(const sim::Network& net, NodeId router,
                                       PortIx in_port, sim::Packet& pkt) {
  if (topo_ == nullptr) topo_ = &net.topo<topo::WaferStackTopo>();
  const auto& T = *topo_;
  const int V = T.child_num_vcs;
  const int wr = net.wafer_of_node(router);
  const int wd = net.wafer_of_node(pkt.dst);
  auto& local = *children_[static_cast<std::size_t>(wr)];

  if (wr == wd) {
    if (net.wafer_of_node(pkt.src) == wd)
      return local.route(net, router, in_port, pkt);  // never leaves its wafer

    // Destination leg of a cross-wafer journey. On the arrival hop (the
    // packet just came over a vertical bond) re-initialize the child's
    // routing state for the remaining intra-wafer journey: the source-leg
    // plan targeted a portal, not pkt.dst. The child reads loc[pkt.src],
    // which does not cover foreign-wafer nodes — stand in the arrival
    // portal as the source for the re-init.
    if (in_port >= 0) {
      const ChanId ic =
          net.router(router).in[static_cast<std::size_t>(in_port)].in_chan;
      if (ic != kInvalidChan && net.chan(ic).type == LinkType::Vertical) {
        const NodeId saved_src = pkt.src;
        pkt.src = router;
        Rng lrng(dest_leg_seed(saved_src, pkt.dst, pkt.t_gen));
        local.init_packet(net, pkt, lrng);
        pkt.src = saved_src;
      }
    }
    sim::RouteDecision d = local.route(net, router, in_port, pkt);
    d.out_vc = static_cast<VcIx>(d.out_vc + V);  // shifted class ladder
    return d;
  }

  // Source leg: head for the exit column's portal in THIS wafer; cross the
  // vertical bond once we stand on it.
  const std::int32_t col = exit_column(
      net, wr, wd,
      static_cast<std::int32_t>(
          static_cast<std::uint32_t>(net.chip_of(pkt.dst)) %
          static_cast<std::uint32_t>(T.chips_per_wafer)));
  const NodeId portal = T.portal(wr, col);
  if (router == portal) {
    const ChanId vc = T.vertical(col, wr, wd);
    if (net.has_faults() && !net.chan_live(vc))
      pkt.stalled = 1;  // severed stack: stall on the dead bond (reported)
    return {net.out_port_of(vc), static_cast<VcIx>(2 * V)};
  }
  const NodeId saved_dst = pkt.dst;
  pkt.dst = portal;
  const sim::RouteDecision d = local.route(net, router, in_port, pkt);
  pkt.dst = saved_dst;
  return d;
}

}  // namespace sldf::route
