// Per-packet plane selection for multi-plane fabrics (topo/plane_set.hpp):
// the policy registry (scenario key `plane.policy`) and the dispatcher
// routing algorithm that forwards every per-packet/per-hop decision to the
// routing of the plane the node belongs to.
//
// Every policy is deterministic and RNG-free so plane selection never
// perturbs the shared RNG stream: a K=1 plane build makes bit-identical
// decisions to the equivalent single-fabric build, and repeat runs (serial
// or sharded) of a K>1 build are bit-identical to each other.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/network.hpp"
#include "sim/routing.hpp"

namespace sldf::route {

/// How a packet picks its plane at injection time.
enum class PlanePolicy : int {
  Hash = 0,        ///< Static mix of (src chip, dst chip) mod K.
  RoundRobin = 1,  ///< Per-source-terminal counter mod K.
  Adaptive = 2,    ///< Least-occupied injection queue among the K twins.
  Collective = 3,  ///< Workload rail hint (message phase) mod K; open-loop
                   ///< traffic has no phases and falls back to Hash.
};

/// Parses a `plane.policy` value; throws std::invalid_argument listing the
/// accepted names.
PlanePolicy parse_plane_policy(const std::string& s);
[[nodiscard]] const char* to_string(PlanePolicy p);
/// The accepted spelling list, for docs/usage text.
[[nodiscard]] const char* plane_policy_names();

/// Static hash: a multiplicative mix of the logical (src, dst) chip pair.
/// Chip-granular so a chip pair's whole flow stays on one plane (in-order
/// within the flow), yet distinct pairs spread across planes.
[[nodiscard]] inline int hash_plane(ChipId src_chip, ChipId dst_chip,
                                    int planes) {
  std::uint64_t h = (static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(src_chip))
                     << 32) |
                    static_cast<std::uint32_t>(dst_chip);
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<int>(h % static_cast<std::uint64_t>(planes));
}

/// Selects the plane for one packet. `rr_counter` is the caller-owned
/// per-source-terminal round-robin state (checkpointed by the Simulator);
/// `queue_depth(p)` probes the injection-queue occupancy of the source's
/// plane-p twin (generation is serial in both engine modes, so the read is
/// race-free and deterministic). `rail_hint` carries the workload message
/// phase (0 for open-loop traffic).
template <typename QueueDepthFn>
[[nodiscard]] int select_plane(PlanePolicy policy, int planes,
                               ChipId src_chip, ChipId dst_chip,
                               std::uint32_t rail_hint, bool has_rail_hint,
                               std::uint32_t& rr_counter,
                               QueueDepthFn&& queue_depth) {
  if (planes <= 1) return 0;
  switch (policy) {
    case PlanePolicy::Hash:
      return hash_plane(src_chip, dst_chip, planes);
    case PlanePolicy::RoundRobin:
      return static_cast<int>((rr_counter++) %
                              static_cast<std::uint32_t>(planes));
    case PlanePolicy::Adaptive: {
      int best = 0;
      std::size_t best_depth = queue_depth(0);
      for (int p = 1; p < planes; ++p) {
        const std::size_t d = queue_depth(p);
        if (d < best_depth) {  // ties keep the lowest plane: deterministic
          best = p;
          best_depth = d;
        }
      }
      return best;
    }
    case PlanePolicy::Collective:
      if (!has_rail_hint) return hash_plane(src_chip, dst_chip, planes);
      return static_cast<int>(rail_hint % static_cast<std::uint32_t>(planes));
  }
  return 0;
}

/// The dispatcher installed as the Network's routing under a multi-plane
/// build: planes are wired disjoint, so a packet injected on plane p only
/// ever visits plane-p routers, and every decision forwards to child p.
/// Each child is bound to its own plane's TopoInfo at construction
/// (bind_topo), since the network-level info is the aggregate PlaneSetTopo.
class PlaneRouting final : public sim::RoutingAlgorithm {
 public:
  explicit PlaneRouting(
      std::vector<std::unique_ptr<sim::RoutingAlgorithm>> children)
      : children_(std::move(children)) {}

  void init_packet(const sim::Network& net, sim::Packet& pkt,
                   Rng& rng) override {
    child_of(net, pkt.src).init_packet(net, pkt, rng);
  }
  sim::RouteDecision route(const sim::Network& net, NodeId router,
                           PortIx in_port, sim::Packet& pkt) override {
    return child_of(net, router).route(net, router, in_port, pkt);
  }
  [[nodiscard]] const char* name() const override { return "planes"; }

  [[nodiscard]] std::size_t num_children() const { return children_.size(); }
  [[nodiscard]] sim::RoutingAlgorithm& child(std::size_t p) {
    return *children_[p];
  }

 private:
  sim::RoutingAlgorithm& child_of(const sim::Network& net, NodeId n) {
    return *children_[static_cast<std::size_t>(net.plane_of_node(n))];
  }

  std::vector<std::unique_ptr<sim::RoutingAlgorithm>> children_;
};

}  // namespace sldf::route
