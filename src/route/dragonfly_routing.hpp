// Minimal and Valiant (non-minimal) routing for the switch-based Dragonfly
// baseline, with the classic VC assignment: the VC index increments on every
// global hop (2 VCs minimal, 3 VCs Valiant — Kim et al. [3]).
#pragma once

#include "route/routing_modes.hpp"
#include "sim/network.hpp"
#include "sim/routing.hpp"

namespace sldf::topo {
struct SwDfTopo;
}

namespace sldf::route {

class DragonflyRouting final : public sim::RoutingAlgorithm {
 public:
  explicit DragonflyRouting(RouteMode mode, int vcs_per_class = 1)
      : mode_(mode), vcs_per_class_(vcs_per_class) {}

  void bind_topo(const sim::TopoInfo& info, int num_vcs) override;
  void init_packet(const sim::Network& net, sim::Packet& pkt,
                   Rng& rng) override;
  sim::RouteDecision route(const sim::Network& net, NodeId router,
                           PortIx in_port, sim::Packet& pkt) override;
  [[nodiscard]] const char* name() const override {
    switch (mode_) {
      case RouteMode::Minimal: return "swdf-minimal";
      case RouteMode::Valiant: return "swdf-valiant";
      case RouteMode::Adaptive: return "swdf-adaptive";
    }
    return "swdf";
  }
  [[nodiscard]] RouteMode mode() const { return mode_; }

 private:
  RouteMode mode_;
  int vcs_per_class_;
  /// Topo-info downcast, set by bind_topo() at install time or cached on
  /// first use (per-flit dynamic_cast is too expensive); stable for the
  /// owning network's lifetime.
  const topo::SwDfTopo* topo_ = nullptr;
  /// VC budget sized for this fabric (bind_topo); 0 = use Network::num_vcs().
  int own_vcs_ = 0;
};

}  // namespace sldf::route
