// Cross-wafer routing for wafer-on-wafer stacks (topo/wafer_stack.hpp):
// dimension-ordered over the stack axis with AT MOST ONE vertical hop.
// A packet whose destination lives on another wafer routes within its
// source wafer (the wafer's own routing algorithm, unchanged) to the portal
// router of the destination's stack column, crosses the vertical bond, and
// finishes within the destination wafer. Verticals are wired all-pairs per
// column, so no journey ever visits a third wafer.
//
// Deadlock freedom by VC class tripling-in-spirit: the network is finalized
// with 2V+1 VCs where V is one wafer's budget. The source-wafer leg uses
// the child classes [0, V) unchanged, the vertical hop uses class 2V, and
// the destination-wafer leg uses the child classes shifted up to [V, 2V).
// Dependencies only ever flow source-leg -> vertical -> dest-leg (each leg
// internally acyclic by the child scheme; the legs of different wafers are
// router-disjoint), so the aggregate CDG is acyclic even when a fault
// detour crosses at an alternate column and the dest leg re-traverses
// local/global cables.
//
// Determinism: route() is RNG-free (fault detours scan columns lowest-index
// first), and the destination-leg re-initialization draws from a LOCAL
// generator seeded from (src, dst, t_gen) — packet state only — so serial,
// sharded, repeat, and checkpoint-resumed runs make bit-identical choices
// and the shared injection RNG stream is never perturbed.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/network.hpp"
#include "sim/routing.hpp"
#include "topo/wafer_stack.hpp"

namespace sldf::route {

class WaferRouting final : public sim::RoutingAlgorithm {
 public:
  explicit WaferRouting(
      std::vector<std::unique_ptr<sim::RoutingAlgorithm>> children)
      : children_(std::move(children)) {}

  void bind_topo(const sim::TopoInfo& info, int /*num_vcs*/) override {
    topo_ = dynamic_cast<const topo::WaferStackTopo*>(&info);
  }
  void init_packet(const sim::Network& net, sim::Packet& pkt,
                   Rng& rng) override;
  sim::RouteDecision route(const sim::Network& net, NodeId router,
                           PortIx in_port, sim::Packet& pkt) override;
  [[nodiscard]] const char* name() const override { return "wafers"; }

  [[nodiscard]] std::size_t num_children() const { return children_.size(); }

 private:
  /// The stack column a (router-wafer -> dst-wafer) packet should cross at:
  /// the destination's own column when its bond is usable, else the
  /// lowest-index column with a live bond and live portals (deterministic,
  /// RNG-free), else the destination's column again — the caller stalls on
  /// the dead bond and the fault audit reports the severed stack.
  [[nodiscard]] std::int32_t exit_column(const sim::Network& net, int wr,
                                         int wd, std::int32_t pref) const;
  [[nodiscard]] bool column_usable(const sim::Network& net, int wa, int wb,
                                   std::int32_t col) const;

  std::vector<std::unique_ptr<sim::RoutingAlgorithm>> children_;
  /// Bound at install time (build_wafer_stack); stable for the owning
  /// network's lifetime.
  const topo::WaferStackTopo* topo_ = nullptr;
};

}  // namespace sldf::route
