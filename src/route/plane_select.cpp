#include "route/plane_select.hpp"

#include <stdexcept>

namespace sldf::route {

PlanePolicy parse_plane_policy(const std::string& s) {
  if (s == "hash") return PlanePolicy::Hash;
  if (s == "rr" || s == "round-robin") return PlanePolicy::RoundRobin;
  if (s == "adaptive") return PlanePolicy::Adaptive;
  if (s == "collective") return PlanePolicy::Collective;
  throw std::invalid_argument("plane.policy: expected " +
                              std::string(plane_policy_names()) + ", got '" +
                              s + "'");
}

const char* to_string(PlanePolicy p) {
  switch (p) {
    case PlanePolicy::Hash: return "hash";
    case PlanePolicy::RoundRobin: return "rr";
    case PlanePolicy::Adaptive: return "adaptive";
    case PlanePolicy::Collective: return "collective";
  }
  return "?";
}

const char* plane_policy_names() { return "hash|rr|adaptive|collective"; }

}  // namespace sldf::route
