// Routing mode and virtual-channel scheme selectors (paper §IV).
#pragma once

#include <stdexcept>
#include <string>

namespace sldf::route {

enum class RouteMode {
  Minimal,   ///< Algorithm 1: up to 3 inter-C-group + 4 intra-C-group steps.
  Valiant,   ///< Non-minimal: bounce through a random intermediate W-group.
  Adaptive,  ///< UGAL-L style: per packet, take the Valiant path only when
             ///< the minimal path's gateway global channel looks congested
             ///< (credit occupancy), weighted by the 1-vs-2 global hop cost.
};

/// Virtual-channel numbering schemes for the switch-less Dragonfly.
enum class VcScheme {
  Baseline,     ///< One VC per C-group traversed: 4 (min) / 6 (non-min).
  Reduced,      ///< Paper §IV-B claim: 3 (min) / 4 (non-min). Destination
                ///< W-group merged via label-monotone up*/down* discipline;
                ///< see DESIGN.md §5 for the residual-cycle caveat.
  ReducedSafe,  ///< Provably acyclic variant: destination W-group split into
                ///< transit/final classes: 4 (min) / 5 (non-min).
};

constexpr const char* to_string(RouteMode m) {
  switch (m) {
    case RouteMode::Minimal: return "minimal";
    case RouteMode::Valiant: return "valiant";
    case RouteMode::Adaptive: return "adaptive";
  }
  return "?";
}
constexpr const char* to_string(VcScheme s) {
  switch (s) {
    case VcScheme::Baseline: return "baseline";
    case VcScheme::Reduced: return "reduced";
    case VcScheme::ReducedSafe: return "reduced-safe";
  }
  return "?";
}

/// String lookup used by the scenario layer. Throws std::invalid_argument
/// on unknown names; accepted names match to_string().
inline RouteMode parse_route_mode(const std::string& s) {
  if (s == "minimal") return RouteMode::Minimal;
  if (s == "valiant") return RouteMode::Valiant;
  if (s == "adaptive") return RouteMode::Adaptive;
  throw std::invalid_argument(
      "unknown route mode '" + s + "' (expected minimal|valiant|adaptive)");
}
inline VcScheme parse_vc_scheme(const std::string& s) {
  if (s == "baseline") return VcScheme::Baseline;
  if (s == "reduced") return VcScheme::Reduced;
  if (s == "reduced-safe") return VcScheme::ReducedSafe;
  throw std::invalid_argument(
      "unknown VC scheme '" + s +
      "' (expected baseline|reduced|reduced-safe)");
}

/// VCs required on every channel of a switch-less Dragonfly network.
/// Adaptive routing can take the Valiant path, so it needs the same VC
/// budget as Valiant.
constexpr int swless_num_vcs(VcScheme s, RouteMode m) {
  const bool min_only = m == RouteMode::Minimal;
  switch (s) {
    case VcScheme::Baseline: return min_only ? 4 : 6;
    case VcScheme::Reduced: return min_only ? 3 : 4;
    case VcScheme::ReducedSafe: return min_only ? 4 : 5;
  }
  return 4;
}

/// VCs for the switch-based Dragonfly baseline (Kim et al.).
constexpr int swdf_num_vcs(RouteMode m) {
  return m == RouteMode::Minimal ? 2 : 3;
}

/// VC budget for fault-tolerant switch-less builds. Fault detours can
/// upgrade a minimal path to a Valiant-style bounce (a dead global link is
/// routed around through an intermediate W-group), and each of the up to
/// three intra-W local legs may pay one extra C-group crossing to detour a
/// dead local link. The Baseline scheme burns one class per crossing, so it
/// needs +3 over its Valiant budget (5 crossings -> up to 8); the phase-
/// based Reduced/ReducedSafe schemes absorb detour legs in their existing
/// classes.
constexpr int swless_fault_num_vcs(VcScheme s, RouteMode m) {
  const RouteMode eff = m == RouteMode::Minimal ? RouteMode::Valiant : m;
  const int base = swless_num_vcs(s, eff);
  return s == VcScheme::Baseline ? base + 3 : base;
}

/// Fault-tolerant switch-based builds always need the Valiant budget: a
/// dead global link is detoured through an intermediate group (local-link
/// detours reuse the current class).
constexpr int swdf_fault_num_vcs(RouteMode) { return 3; }

}  // namespace sldf::route
