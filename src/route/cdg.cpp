#include "route/cdg.hpp"

#include "common/strfmt.hpp"
#include <unordered_map>
#include <unordered_set>

#include "route/dragonfly_routing.hpp"
#include "route/swless_routing.hpp"
#include "topo/hier.hpp"

namespace sldf::route {

namespace {

struct Walker {
  const sim::Network& net;
  const CdgOptions& opt;
  std::unordered_map<std::uint64_t, std::int32_t> res_id;
  std::vector<std::pair<ChanId, VcIx>> res_info;
  std::unordered_set<std::uint64_t> edge_keys;
  std::vector<std::vector<std::int32_t>> adj;
  std::size_t paths = 0;
  std::size_t max_hops_seen = 0;
  std::size_t undeliverable = 0;
  bool failed = false;

  std::int32_t resource(ChanId c, VcIx v) {
    const auto key = static_cast<std::uint64_t>(c) *
                         static_cast<std::uint64_t>(net.num_vcs()) +
                     static_cast<std::uint64_t>(v);
    const auto [it, fresh] =
        res_id.emplace(key, static_cast<std::int32_t>(res_info.size()));
    if (fresh) {
      res_info.emplace_back(c, v);
      adj.emplace_back();
    }
    return it->second;
  }

  void edge(std::int32_t a, std::int32_t b) {
    const auto key = (static_cast<std::uint64_t>(a) << 32) |
                     static_cast<std::uint32_t>(b);
    if (edge_keys.insert(key).second) adj[static_cast<std::size_t>(a)].push_back(b);
  }

  /// Walks one packet; returns false on a routing failure (non-delivery).
  bool walk(NodeId src, NodeId dst, std::int32_t mid_override, Rng& rng) {
    sim::Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.len = 1;
    net.routing()->init_packet(net, pkt, rng);
    if (mid_override >= -1) pkt.mid_wgroup = mid_override;

    NodeId cur = src;
    PortIx in_port = net.router(src).inj_port;
    std::int32_t prev = -1;
    std::size_t hops = 0;
    for (;;) {
      const auto& r = net.router(cur);
      const auto d = net.routing()->route(net, cur, in_port, pkt);
      if (d.out_port < 0 ||
          d.out_port >= static_cast<PortIx>(r.out.size()))
        return false;
      const ChanId c = r.out[static_cast<std::size_t>(d.out_port)].out_chan;
      if (c == kInvalidChan) {
        // Ejection: must be the destination.
        max_hops_seen = std::max(max_hops_seen, hops);
        return cur == dst;
      }
      const auto id = resource(c, d.out_vc);
      if (prev >= 0) edge(prev, id);
      prev = id;
      if (!net.chan_live(c)) {
        // Fault mask: the packet stalls requesting the dead channel. Its
        // resource chain so far is recorded (held forever); the pair is
        // counted unreachable rather than failing the audit.
        ++undeliverable;
        max_hops_seen = std::max(max_hops_seen, hops);
        return true;
      }
      const auto& ch = net.chan(c);
      cur = ch.dst;
      in_port = ch.dst_port;
      if (++hops > opt.max_hops) return false;
    }
  }
};

/// Iterative DFS cycle finder; fills `cycle` with a witness if one exists.
bool find_cycle(const std::vector<std::vector<std::int32_t>>& adj,
                std::vector<std::int32_t>& cycle) {
  const auto n = adj.size();
  std::vector<std::int8_t> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::int32_t> stack;
  std::vector<std::size_t> iter;
  for (std::size_t s = 0; s < n; ++s) {
    if (color[s] != 0) continue;
    stack.push_back(static_cast<std::int32_t>(s));
    iter.push_back(0);
    color[s] = 1;
    while (!stack.empty()) {
      const auto u = static_cast<std::size_t>(stack.back());
      if (iter.back() < adj[u].size()) {
        const auto v = static_cast<std::size_t>(adj[u][iter.back()++]);
        if (color[v] == 0) {
          color[v] = 1;
          stack.push_back(static_cast<std::int32_t>(v));
          iter.push_back(0);
        } else if (color[v] == 1) {
          // Found a back edge: extract the cycle from the stack.
          auto it = stack.begin();
          while (static_cast<std::size_t>(*it) != v) ++it;
          cycle.assign(it, stack.end());
          return true;
        }
      } else {
        color[u] = 2;
        stack.pop_back();
        iter.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

CdgReport audit_cdg(const sim::Network& net, const CdgOptions& opt) {
  CdgReport rep;
  Walker w{net, opt, {}, {}, {}, {}};
  Rng rng(42);

  // Determine whether routing is non-minimal and which groups exist.
  std::int32_t num_groups = 1;
  bool valiant = false;
  const auto* hier = dynamic_cast<const topo::HierTopo*>(net.topo_info());
  if (hier) num_groups = hier->num_wgroups;
  if (const auto* sw =
          dynamic_cast<const SwlessRouting*>(net.routing()))
    valiant = sw->mode() != RouteMode::Minimal;
  if (const auto* df =
          dynamic_cast<const DragonflyRouting*>(net.routing()))
    valiant = df->mode() != RouteMode::Minimal;

  const auto group_of = [&](NodeId n) -> std::int32_t {
    if (!hier) return 0;
    return hier->chip_wgroup[static_cast<std::size_t>(net.chip_of(n))];
  };

  // Faulted networks: dead terminals are skipped, and init_packet's own
  // (fault-aware, deterministically sampled) intermediate choice is
  // audited instead of enumerating/overriding intermediates — an override
  // would walk detours the fault-aware planner specifically avoids. An
  // armed-but-empty mask routes exactly like a pristine network and is
  // audited as one.
  const bool fault_aware = net.has_faults();
  bool all_ok = true;
  for (NodeId src : net.terminals()) {
    for (NodeId dst : net.terminals()) {
      if (src == dst) continue;
      if (fault_aware && (!net.node_live(src) || !net.node_live(dst)))
        continue;
      const auto gs = group_of(src);
      const auto gd = group_of(dst);
      if (valiant && opt.enumerate_intermediates && !fault_aware &&
          gs != gd && num_groups > 2) {
        for (std::int32_t mid = 0; mid < num_groups; ++mid) {
          if (mid == gs || mid == gd) continue;
          all_ok &= w.walk(src, dst, mid, rng);
          ++w.paths;
        }
      } else {
        all_ok &= w.walk(src, dst, fault_aware ? -2 : -1, rng);
        ++w.paths;
      }
    }
  }

  rep.paths_walked = w.paths;
  rep.resources = w.res_info.size();
  rep.max_path_hops = w.max_hops_seen;
  rep.edges = w.edge_keys.size();
  rep.undeliverable = w.undeliverable;
  std::vector<std::int32_t> cyc;
  const bool has_cycle = find_cycle(w.adj, cyc);
  rep.acyclic = all_ok && !has_cycle;
  for (auto id : cyc)
    rep.cycle.push_back(w.res_info[static_cast<std::size_t>(id)]);
  return rep;
}

std::string CdgReport::to_string(const sim::Network& net) const {
  std::string s =
      strf("CDG audit: %s | paths=%zu resources=%zu edges=%zu max-hops=%zu",
           acyclic ? "ACYCLIC (deadlock-free)" : "CYCLE FOUND", paths_walked,
           resources, edges, max_path_hops);
  if (undeliverable > 0)
    s += strf(" undeliverable=%zu (fault mask)", undeliverable);
  if (!cycle.empty()) {
    s += "\n  witness cycle:";
    for (const auto& [c, v] : cycle) {
      const auto& ch = net.chan(c);
      const auto tn = sldf::to_string(ch.type);
      s += strf(" [%d->%d vc%d %.*s]", ch.src, ch.dst, static_cast<int>(v),
                static_cast<int>(tn.size()), tn.data());
    }
  }
  return s;
}

}  // namespace sldf::route
