// Deadlock-free minimal / non-minimal routing for the switch-less Dragonfly
// (paper §IV, Algorithm 1 and Fig 7). A packet's journey is a sequence of
// intra-C-group legs; plan_leg() picks the external port for the next
// inter-C-group hop, and the VC class advances on every crossing according
// to the selected VcScheme:
//
//   Baseline     VC = number of C-groups entered (4 minimal / 6 non-minimal).
//   Reduced      paper claim: VC0 source C-group, VC1 source-W gateway,
//                VC2 whole destination W-group (+VC3 intermediate W-group);
//                destination-W transit legs use label-monotone mesh paths.
//   ReducedSafe  like Reduced but the destination W-group transit and final
//                legs use distinct classes (provably acyclic; see DESIGN.md).
#pragma once

#include "route/routing_modes.hpp"
#include "sim/network.hpp"
#include "sim/routing.hpp"
#include "topo/swless.hpp"

namespace sldf::route {

class SwlessRouting final : public sim::RoutingAlgorithm {
 public:
  SwlessRouting(VcScheme scheme, RouteMode mode)
      : scheme_(scheme), mode_(mode) {}

  void bind_topo(const sim::TopoInfo& info, int num_vcs) override {
    topo_ = dynamic_cast<const topo::SwlessTopo*>(&info);
    own_vcs_ = num_vcs;
  }
  void init_packet(const sim::Network& net, sim::Packet& pkt,
                   Rng& rng) override;
  sim::RouteDecision route(const sim::Network& net, NodeId router,
                           PortIx in_port, sim::Packet& pkt) override;
  [[nodiscard]] const char* name() const override { return "swless"; }

  [[nodiscard]] VcScheme scheme() const { return scheme_; }
  [[nodiscard]] RouteMode mode() const { return mode_; }

 private:
  [[nodiscard]] std::uint8_t class_for(sim::RoutePhase next_phase,
                                       std::uint8_t cur) const;
  void plan_leg(const sim::Network& net, const topo::SwlessTopo& T,
                NodeId router, sim::Packet& pkt) const;
  [[nodiscard]] int mesh_dir(const topo::SwlessTopo& T, const sim::Packet& pkt,
                             int cur_pos, int tgt_pos) const;
  /// Fault detour inside the C-group mesh: an alternate live direction when
  /// the chosen channel is dead (productive directions first, then any live
  /// direction except straight back). Returns the dead channel itself when
  /// the router is fully cut off (the packet stalls; reported by the fault
  /// audit, never a crash).
  [[nodiscard]] ChanId mesh_detour(const sim::Network& net,
                                   const topo::SwlessTopo& T, NodeId router,
                                   PortIx in_port, int cur_pos, int tgt_pos,
                                   ChanId dead) const;

  VcScheme scheme_;
  RouteMode mode_;
  /// Topo-info downcast, set by bind_topo() at install time or cached on
  /// first use (per-flit dynamic_cast is too expensive); stable for the
  /// owning network's lifetime.
  const topo::SwlessTopo* topo_ = nullptr;
  /// VC budget sized for this fabric (bind_topo); 0 = use Network::num_vcs().
  int own_vcs_ = 0;
};

}  // namespace sldf::route
