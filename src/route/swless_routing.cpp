#include "route/swless_routing.hpp"

#include <cassert>

namespace sldf::route {

using sim::RoutePhase;
using topo::SwlessTopo;

namespace {

/// The line channel of the global link leaving W-group `wg` toward `peer`.
ChanId gateway_line(const SwlessTopo& T, std::int32_t wg, std::int32_t peer) {
  const int link = SwlessTopo::global_link(wg, peer);
  const auto& gate = T.cgroup(wg, link / T.p.global_ports)
                         .globals[static_cast<std::size_t>(
                             link % T.p.global_ports)];
  return gate.line_out;
}

}  // namespace

void SwlessRouting::init_packet(const sim::Network& net, sim::Packet& pkt,
                                Rng& rng) {
  pkt.vc_class = 0;
  pkt.phase = RoutePhase::SrcCGroup;
  pkt.target = kInvalidNode;
  pkt.exit_chan = kInvalidChan;
  pkt.mid_wgroup = -1;
  if (topo_ == nullptr) topo_ = &net.topo<SwlessTopo>();
  const auto& T = *topo_;
  const auto& sloc = T.loc[static_cast<std::size_t>(pkt.src)];
  const auto& dloc = T.loc[static_cast<std::size_t>(pkt.dst)];
  const int G = T.p.effective_wgroups();
  if (mode_ == RouteMode::Minimal || sloc.wg == dloc.wg || G <= 2) return;

  std::int32_t mid;
  do {
    mid = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(G)));
  } while (mid == sloc.wg || mid == dloc.wg);

  if (mode_ == RouteMode::Valiant) {
    pkt.mid_wgroup = mid;
    return;
  }
  // Adaptive (UGAL-L): misroute via `mid` only when the minimal gateway is
  // at least twice as congested as the candidate's (the non-minimal path
  // pays two global hops), with a small threshold to prefer minimal.
  const int q_min = net.channel_occupancy(gateway_line(T, sloc.wg, dloc.wg));
  const int q_val = net.channel_occupancy(gateway_line(T, sloc.wg, mid));
  constexpr int kThreshold = 4;  // flits of slack granted to minimal
  if (q_min > 2 * q_val + kThreshold) pkt.mid_wgroup = mid;
}

std::uint8_t SwlessRouting::class_for(RoutePhase np, std::uint8_t cur) const {
  switch (scheme_) {
    case VcScheme::Baseline:
      return static_cast<std::uint8_t>(cur + 1);
    case VcScheme::Reduced:
      switch (np) {
        case RoutePhase::SrcWGroup: return 1;
        case RoutePhase::MidWEntry:
        case RoutePhase::MidWExit: return 3;
        case RoutePhase::DstWEntry:
        case RoutePhase::DstCGroup: return 2;
        default: return cur;
      }
    case VcScheme::ReducedSafe:
      if (mode_ == RouteMode::Minimal) {
        switch (np) {
          case RoutePhase::SrcWGroup: return 1;
          case RoutePhase::DstWEntry: return 2;
          case RoutePhase::DstCGroup: return 3;
          default: return cur;
        }
      }
      switch (np) {
        case RoutePhase::SrcWGroup: return 1;
        case RoutePhase::MidWEntry:
        case RoutePhase::MidWExit: return 2;
        case RoutePhase::DstWEntry: return 3;
        case RoutePhase::DstCGroup: return 4;
        default: return cur;
      }
  }
  return cur;
}

void SwlessRouting::plan_leg(const SwlessTopo& T, NodeId router,
                             sim::Packet& pkt) const {
  const auto& loc = T.loc[static_cast<std::size_t>(router)];
  const auto& dloc = T.loc[static_cast<std::size_t>(pkt.dst)];
  if (pkt.mid_wgroup == loc.wg) pkt.mid_wgroup = -1;  // bounce reached

  if (loc.wg == dloc.wg && loc.cg == dloc.cg) {
    // Final leg: route within this C-group to the destination core.
    pkt.target = pkt.dst;
    pkt.exit_chan = kInvalidChan;
    pkt.phase = RoutePhase::DstCGroup;
    return;
  }

  const auto& inst = T.cgroup(loc.wg, loc.cg);
  const topo::ExtPort* exit = nullptr;
  RoutePhase np;
  if (loc.wg == dloc.wg) {
    // One local hop to the destination C-group (Algorithm 1 steps 5-6,
    // or steps 1-2 for intra-W-group traffic).
    exit = &inst.locals[static_cast<std::size_t>(
        SwlessTopo::local_index(loc.cg, dloc.cg))];
    np = RoutePhase::DstCGroup;
  } else {
    const int H = T.p.global_ports;
    const std::int32_t wnext =
        pkt.mid_wgroup >= 0 ? pkt.mid_wgroup : dloc.wg;
    const int link = SwlessTopo::global_link(loc.wg, wnext);
    const int owner = link / H;
    if (owner == loc.cg) {
      exit = &inst.globals[static_cast<std::size_t>(link % H)];
      np = (wnext == dloc.wg) ? RoutePhase::DstWEntry
                              : RoutePhase::MidWEntry;
    } else {
      exit = &inst.locals[static_cast<std::size_t>(
          SwlessTopo::local_index(loc.cg, owner))];
      np = (pkt.phase == RoutePhase::MidWEntry) ? RoutePhase::MidWExit
                                                : RoutePhase::SrcWGroup;
    }
  }
  assert(exit->exit_chan != kInvalidChan && "unwired external port");
  pkt.target = exit->host;
  pkt.exit_chan = exit->exit_chan;
  pkt.next_phase = np;
  pkt.next_class = class_for(np, pkt.vc_class);
}

int SwlessRouting::mesh_dir(const SwlessTopo& T, const sim::Packet& pkt,
                            int cur_pos, int tgt_pos) const {
  bool mono = false;
  if (scheme_ == VcScheme::Reduced) {
    mono = pkt.phase == RoutePhase::MidWEntry ||
           pkt.phase == RoutePhase::MidWExit ||
           pkt.phase == RoutePhase::DstWEntry;
  } else if (scheme_ == VcScheme::ReducedSafe) {
    mono = pkt.phase == RoutePhase::MidWEntry ||
           pkt.phase == RoutePhase::MidWExit;
  }
  if (mono && !T.monotone.empty()) {
    const int d = T.monotone.dir(tgt_pos, cur_pos);
    if (d >= 0) return d;
    // Discipline hole (see DESIGN.md §5): fall back to dimension order.
  }
  return xy_dir(T.shape.mx(), cur_pos, tgt_pos);
}

sim::RouteDecision SwlessRouting::route(const sim::Network& net, NodeId router,
                                        PortIx in_port, sim::Packet& pkt) {
  // Cached across calls: the topo downcast (dynamic_cast) is far too
  // expensive for a per-head-flit path. The Network owns the topo info, so
  // the pointer is stable for this network's lifetime.
  if (topo_ == nullptr) topo_ = &net.topo<SwlessTopo>();
  const auto& T = *topo_;
  const auto vcix = [&] { return static_cast<VcIx>(pkt.vc_class); };

  if (net.kind_of(router) == NodeKind::IoConverter) {
    // Port layout: in/out 0 = attach (host side), in/out 1 = line.
    if (in_port == 0) {
      // Leaving the C-group: the crossing applies phase and VC class.
      pkt.phase = pkt.next_phase;
      pkt.vc_class = pkt.next_class;
      pkt.target = kInvalidNode;
      pkt.exit_chan = kInvalidChan;
      return {static_cast<PortIx>(1), vcix()};
    }
    return {static_cast<PortIx>(0), vcix()};
  }

  if (router == pkt.dst) return {net.eject_port_of(router), vcix()};
  if (pkt.target == kInvalidNode) plan_leg(T, router, pkt);

  if (router == pkt.target) {
    const PortIx out = net.out_port_of(pkt.exit_chan);
    if (!T.p.io_converters) {
      // No conversion modules (small-scale variant): the crossing happens
      // here and the line channel carries the next class.
      pkt.phase = pkt.next_phase;
      pkt.vc_class = pkt.next_class;
      pkt.target = kInvalidNode;
      pkt.exit_chan = kInvalidChan;
    }
    return {out, vcix()};
  }

  const auto& loc = T.loc[static_cast<std::size_t>(router)];
  const auto& tloc = T.loc[static_cast<std::size_t>(pkt.target)];
  assert(tloc.wg == loc.wg && tloc.cg == loc.cg && tloc.pos >= 0);
  const int d = mesh_dir(T, pkt, loc.pos, tloc.pos);
  assert(d >= 0);
  const auto& inst = T.cgroup(loc.wg, loc.cg);
  const ChanId c = inst.mesh_out[static_cast<std::size_t>(loc.pos)]
                                [static_cast<std::size_t>(d)];
  assert(c != kInvalidChan);
  return {net.out_port_of(c), vcix()};
}

}  // namespace sldf::route
