#include "route/swless_routing.hpp"

#include <algorithm>
#include <cassert>

#include "route/fault_detour.hpp"

namespace sldf::route {

using sim::RoutePhase;
using topo::SwlessTopo;

namespace {

/// The line channel of the global link leaving W-group `wg` toward `peer`.
ChanId gateway_line(const SwlessTopo& T, std::int32_t wg, std::int32_t peer) {
  const int link = SwlessTopo::global_link(wg, peer);
  const auto& gate = T.cgroup(wg, link / T.p.global_ports)
                         .globals[static_cast<std::size_t>(
                             link % T.p.global_ports)];
  return gate.line_out;
}

/// Liveness of one side of an external port: the host->converter attach
/// link (a dead host chip takes it down). Without converters the attach is
/// the line itself, covered by the line check.
bool attach_live(const sim::Network& net, const topo::ExtPort& ep) {
  return ep.io == kInvalidNode || net.chan_live(ep.exit_chan);
}

/// The local cable between C-groups `ca` and `cb` of W-group `wg` is
/// usable: line live plus both converter attaches (duplex halves die
/// together, so one direction each suffices).
bool local_usable(const sim::Network& net, const SwlessTopo& T, int wg,
                  int ca, int cb) {
  const auto& ea = T.cgroup(wg, ca).locals[static_cast<std::size_t>(
      SwlessTopo::local_index(ca, cb))];
  const auto& eb = T.cgroup(wg, cb).locals[static_cast<std::size_t>(
      SwlessTopo::local_index(cb, ca))];
  return net.chan_live(ea.line_out) && attach_live(net, ea) &&
         attach_live(net, eb);
}

/// The global cable between W-groups `wa` and `wb` is usable end to end.
bool global_usable(const sim::Network& net, const SwlessTopo& T, int wa,
                   int wb) {
  const int H = T.p.global_ports;
  const int la = SwlessTopo::global_link(wa, wb);
  const int lb = SwlessTopo::global_link(wb, wa);
  const auto& ea =
      T.cgroup(wa, la / H).globals[static_cast<std::size_t>(la % H)];
  const auto& eb =
      T.cgroup(wb, lb / H).globals[static_cast<std::size_t>(lb % H)];
  return net.chan_live(ea.line_out) && attach_live(net, ea) &&
         attach_live(net, eb);
}

/// A Valiant-style detour W-group for src -> dst whose two global legs are
/// both usable (shared policy: route/fault_detour.hpp).
std::int32_t pick_mid_wgroup(const sim::Network& net, const SwlessTopo& T,
                             std::int32_t swg, std::int32_t dwg, Rng& rng) {
  return pick_detour_group(T.p.effective_wgroups(), swg, dwg, rng,
                           [&](std::int32_t a, std::int32_t b) {
                             return global_usable(net, T, a, b);
                           });
}

/// Intermediate C-group detouring a dead local cable `from` -> `to` within
/// `wg` (both detour legs live); -1 when none exists.
int pick_local_via(const sim::Network& net, const SwlessTopo& T, int wg,
                   int from, int to) {
  return pick_detour_via(T.p.ab(), from, to, [&](int a, int b) {
    return local_usable(net, T, wg, a, b);
  });
}

}  // namespace

void SwlessRouting::init_packet(const sim::Network& net, sim::Packet& pkt,
                                Rng& rng) {
  pkt.vc_class = 0;
  pkt.phase = RoutePhase::SrcCGroup;
  pkt.target = kInvalidNode;
  pkt.exit_chan = kInvalidChan;
  pkt.mid_wgroup = -1;
  pkt.stalled = 0;
  if (topo_ == nullptr) topo_ = &net.topo<SwlessTopo>();
  const auto& T = *topo_;
  const auto& sloc = T.loc[static_cast<std::size_t>(pkt.src)];
  const auto& dloc = T.loc[static_cast<std::size_t>(pkt.dst)];
  const int G = T.p.effective_wgroups();

  if (net.has_faults() && sloc.wg != dloc.wg) {
    // Fault-aware leg planning: a dead global cable on the minimal path is
    // routed around through an intermediate W-group whose two global legs
    // are live (the path-diversity argument of the paper — the detour costs
    // one extra global hop, not connectivity). Local-link and mesh faults
    // are detoured per leg in plan_leg()/route().
    const bool direct_ok = global_usable(net, T, sloc.wg, dloc.wg);
    if (G <= 2) return;  // no intermediate exists; stall if direct is dead
    switch (mode_) {
      case RouteMode::Minimal:
        if (!direct_ok)
          pkt.mid_wgroup = pick_mid_wgroup(net, T, sloc.wg, dloc.wg, rng);
        return;
      case RouteMode::Valiant: {
        const std::int32_t mid =
            pick_mid_wgroup(net, T, sloc.wg, dloc.wg, rng);
        // No usable bounce: fall back to the minimal path when it is live.
        pkt.mid_wgroup = (mid < 0 && direct_ok) ? -1 : mid;
        return;
      }
      case RouteMode::Adaptive: {
        const std::int32_t mid =
            pick_mid_wgroup(net, T, sloc.wg, dloc.wg, rng);
        if (!direct_ok || mid < 0) {
          pkt.mid_wgroup = mid;  // forced detour (or stall when mid < 0)
          return;
        }
        const int q_min =
            net.channel_occupancy(gateway_line(T, sloc.wg, dloc.wg));
        const int q_val = net.channel_occupancy(gateway_line(T, sloc.wg, mid));
        constexpr int kThreshold = 4;
        if (q_min > 2 * q_val + kThreshold) pkt.mid_wgroup = mid;
        return;
      }
    }
    return;
  }

  if (mode_ == RouteMode::Minimal || sloc.wg == dloc.wg || G <= 2) return;

  std::int32_t mid;
  do {
    mid = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(G)));
  } while (mid == sloc.wg || mid == dloc.wg);

  if (mode_ == RouteMode::Valiant) {
    pkt.mid_wgroup = mid;
    return;
  }
  // Adaptive (UGAL-L): misroute via `mid` only when the minimal gateway is
  // at least twice as congested as the candidate's (the non-minimal path
  // pays two global hops), with a small threshold to prefer minimal.
  const int q_min = net.channel_occupancy(gateway_line(T, sloc.wg, dloc.wg));
  const int q_val = net.channel_occupancy(gateway_line(T, sloc.wg, mid));
  constexpr int kThreshold = 4;  // flits of slack granted to minimal
  if (q_min > 2 * q_val + kThreshold) pkt.mid_wgroup = mid;
}

std::uint8_t SwlessRouting::class_for(RoutePhase np, std::uint8_t cur) const {
  switch (scheme_) {
    case VcScheme::Baseline:
      return static_cast<std::uint8_t>(cur + 1);
    case VcScheme::Reduced:
      switch (np) {
        case RoutePhase::SrcWGroup: return 1;
        case RoutePhase::MidWEntry:
        case RoutePhase::MidWExit: return 3;
        case RoutePhase::DstWEntry:
        case RoutePhase::DstCGroup: return 2;
        default: return cur;
      }
    case VcScheme::ReducedSafe:
      if (mode_ == RouteMode::Minimal) {
        switch (np) {
          case RoutePhase::SrcWGroup: return 1;
          case RoutePhase::DstWEntry: return 2;
          case RoutePhase::DstCGroup: return 3;
          default: return cur;
        }
      }
      switch (np) {
        case RoutePhase::SrcWGroup: return 1;
        case RoutePhase::MidWEntry:
        case RoutePhase::MidWExit: return 2;
        case RoutePhase::DstWEntry: return 3;
        case RoutePhase::DstCGroup: return 4;
        default: return cur;
      }
  }
  return cur;
}

void SwlessRouting::plan_leg(const sim::Network& net, const SwlessTopo& T,
                             NodeId router, sim::Packet& pkt) const {
  const auto& loc = T.loc[static_cast<std::size_t>(router)];
  const auto& dloc = T.loc[static_cast<std::size_t>(pkt.dst)];
  if (pkt.mid_wgroup == loc.wg) pkt.mid_wgroup = -1;  // bounce reached

  if (loc.wg == dloc.wg && loc.cg == dloc.cg) {
    // Final leg: route within this C-group to the destination core.
    pkt.target = pkt.dst;
    pkt.exit_chan = kInvalidChan;
    pkt.phase = RoutePhase::DstCGroup;
    return;
  }

  const bool faulty = net.has_faults();
  const auto& inst = T.cgroup(loc.wg, loc.cg);
  const topo::ExtPort* exit = nullptr;
  RoutePhase np;
  pkt.stalled = 0;
  // A local leg to C-group `ncg` whose direct cable is dead detours through
  // an intermediate sibling (all-to-all local wiring gives a*b - 2 detour
  // candidates); the extra crossing keeps the leg's phase class, and the
  // next plan_leg() at the intermediate C-group finishes the leg.
  const auto local_leg = [&](int ncg) -> const topo::ExtPort* {
    if (faulty && !local_usable(net, T, loc.wg, loc.cg, ncg)) {
      const int via = pick_local_via(net, T, loc.wg, loc.cg, ncg);
      if (via >= 0)
        ncg = via;
      else
        pkt.stalled = 1;  // stall on the dead cable (reported)
    }
    return &inst.locals[static_cast<std::size_t>(
        SwlessTopo::local_index(loc.cg, ncg))];
  };
  if (loc.wg == dloc.wg) {
    // One local hop to the destination C-group (Algorithm 1 steps 5-6,
    // or steps 1-2 for intra-W-group traffic).
    exit = local_leg(dloc.cg);
    np = RoutePhase::DstCGroup;
  } else {
    const int H = T.p.global_ports;
    std::int32_t wnext = pkt.mid_wgroup >= 0 ? pkt.mid_wgroup : dloc.wg;
    if (faulty && !global_usable(net, T, loc.wg, wnext)) {
      // Online failure of the planned global leg (init_packet saw an older
      // mask, or a fault step hit mid-flight): re-bounce through the
      // lowest-index W-group with two live legs. No Rng here — route()
      // must stay deterministic and stream-neutral.
      const std::int32_t mid = pick_detour_group_det(
          T.p.effective_wgroups(), loc.wg, dloc.wg,
          [&](std::int32_t a, std::int32_t b) {
            return global_usable(net, T, a, b);
          });
      if (mid >= 0) {
        pkt.mid_wgroup = mid;
        wnext = mid;
      } else {
        pkt.stalled = 1;  // keep the dead gateway and stall (reported)
      }
    }
    const int link = SwlessTopo::global_link(loc.wg, wnext);
    const int owner = link / H;
    if (owner == loc.cg) {
      exit = &inst.globals[static_cast<std::size_t>(link % H)];
      np = (wnext == dloc.wg) ? RoutePhase::DstWEntry
                              : RoutePhase::MidWEntry;
    } else {
      exit = local_leg(owner);
      // A fault detour can land mid-transit (phase already MidWExit); keep
      // the transit class instead of falling back to SrcWGroup.
      np = (pkt.phase == RoutePhase::MidWEntry ||
            pkt.phase == RoutePhase::MidWExit)
               ? RoutePhase::MidWExit
               : RoutePhase::SrcWGroup;
    }
  }
  assert(exit->exit_chan != kInvalidChan && "unwired external port");
  pkt.target = exit->host;
  pkt.exit_chan = exit->exit_chan;
  pkt.next_phase = np;
  // Clamp to the installed budget: pathological fault sets can push the
  // Baseline class ladder past the fault-tolerant reserve; a clamped class
  // may cost deadlock freedom (the audit reports it) but never an OOB VC.
  pkt.next_class = static_cast<std::uint8_t>(std::min<int>(
      class_for(np, pkt.vc_class),
      (own_vcs_ > 0 ? own_vcs_ : net.num_vcs()) - 1));
}

int SwlessRouting::mesh_dir(const SwlessTopo& T, const sim::Packet& pkt,
                            int cur_pos, int tgt_pos) const {
  bool mono = false;
  if (scheme_ == VcScheme::Reduced) {
    mono = pkt.phase == RoutePhase::MidWEntry ||
           pkt.phase == RoutePhase::MidWExit ||
           pkt.phase == RoutePhase::DstWEntry;
  } else if (scheme_ == VcScheme::ReducedSafe) {
    mono = pkt.phase == RoutePhase::MidWEntry ||
           pkt.phase == RoutePhase::MidWExit;
  }
  if (mono && !T.monotone.empty()) {
    const int d = T.monotone.dir(tgt_pos, cur_pos);
    if (d >= 0) return d;
    // Discipline hole (see DESIGN.md §5): fall back to dimension order.
  }
  return xy_dir(T.shape.mx(), cur_pos, tgt_pos);
}

ChanId SwlessRouting::mesh_detour(const sim::Network& net,
                                  const SwlessTopo& T, NodeId router,
                                  PortIx in_port, int cur_pos, int tgt_pos,
                                  ChanId dead) const {
  const auto& loc = T.loc[static_cast<std::size_t>(router)];
  const auto& inst = T.cgroup(loc.wg, loc.cg);
  const auto& out = inst.mesh_out[static_cast<std::size_t>(cur_pos)];
  const int mx = T.shape.mx();
  const int cx = cur_pos % mx, cy = cur_pos / mx;
  const int tx = tgt_pos % mx, ty = tgt_pos / mx;

  // The direction we arrived from (never detour straight back unless it is
  // the only live option): derived from the upstream router's position.
  int back = -1;
  if (in_port >= 0) {
    const ChanId ic =
        net.router(router).in[static_cast<std::size_t>(in_port)].in_chan;
    if (ic != kInvalidChan) {
      const NodeId prev = net.chan(ic).src;
      const auto& ploc = T.loc[static_cast<std::size_t>(prev)];
      if (ploc.wg == loc.wg && ploc.cg == loc.cg && ploc.pos >= 0)
        back = xy_dir(mx, cur_pos, ploc.pos);
    }
  }

  const auto live = [&](int d) {
    const ChanId c = out[static_cast<std::size_t>(d)];
    return c != kInvalidChan && net.chan_live(c) ? c : kInvalidChan;
  };
  // Productive directions first (both dimensions toward the target) ...
  const int prod[2] = {tx > cx ? topo::kEast : (tx < cx ? topo::kWest : -1),
                       ty > cy ? topo::kSouth : (ty < cy ? topo::kNorth : -1)};
  for (const int d : prod) {
    if (d < 0 || out[static_cast<std::size_t>(d)] == dead) continue;
    if (const ChanId c = live(d); c != kInvalidChan) return c;
  }
  // ... then any live direction except straight back (misroute) ...
  for (int d = 0; d < topo::kNumDirs; ++d) {
    if (d == back || out[static_cast<std::size_t>(d)] == dead) continue;
    if (const ChanId c = live(d); c != kInvalidChan) return c;
  }
  // ... then even straight back; a fully cut-off router keeps the dead
  // channel and stalls (degraded operation is reported, not crashed).
  if (back >= 0)
    if (const ChanId c = live(back); c != kInvalidChan) return c;
  return dead;
}

sim::RouteDecision SwlessRouting::route(const sim::Network& net, NodeId router,
                                        PortIx in_port, sim::Packet& pkt) {
  // Cached across calls: the topo downcast (dynamic_cast) is far too
  // expensive for a per-head-flit path. The Network owns the topo info, so
  // the pointer is stable for this network's lifetime.
  if (topo_ == nullptr) topo_ = &net.topo<SwlessTopo>();
  const auto& T = *topo_;
  const auto vcix = [&] { return static_cast<VcIx>(pkt.vc_class); };

  if (net.kind_of(router) == NodeKind::IoConverter) {
    // Port layout: in/out 0 = attach (host side), in/out 1 = line.
    if (in_port == 0) {
      const ChanId line = net.router(router).out[1].out_chan;
      if (net.has_faults() && !net.chan_live(line) && !pkt.stalled) {
        // The line died after this packet committed to the converter:
        // bounce back to the host C-group with the plan cleared (phase and
        // class untouched — no crossing happened), so the next plan_leg()
        // re-plans against the updated mask. Packets whose plan *knowingly*
        // kept this dead cable (pkt.stalled: no live detour existed) are
        // not bounced — the re-plan would pick the same exit and the packet
        // would ping-pong host<->converter forever, a cycle in the CDG.
        // They stall on the dead line below, like any other dead channel.
        pkt.target = kInvalidNode;
        pkt.exit_chan = kInvalidChan;
        return {static_cast<PortIx>(0), vcix()};
      }
      // Leaving the C-group: the crossing applies phase and VC class.
      pkt.phase = pkt.next_phase;
      pkt.vc_class = pkt.next_class;
      pkt.target = kInvalidNode;
      pkt.exit_chan = kInvalidChan;
      return {static_cast<PortIx>(1), vcix()};
    }
    return {static_cast<PortIx>(0), vcix()};
  }

  if (router == pkt.dst) return {net.eject_port_of(router), vcix()};
  if (pkt.target == kInvalidNode ||
      (pkt.exit_chan == kInvalidChan && pkt.target != pkt.dst) ||
      (net.has_faults() && pkt.exit_chan != kInvalidChan &&
       (!net.chan_live(pkt.exit_chan) || !net.node_live(pkt.target)))) {
    // No plan yet, or a fault step invalidated the cached one (the planned
    // exit cable or its gateway host died under the packet). The middle
    // clause catches a stale *final-leg* plan: exit_chan == kInvalidChan
    // means "target IS the destination", which only holds while
    // target == dst — a wafer dispatcher re-aiming pkt.dst at a different
    // portal column (fault-driven exit rechoice) must force a re-plan, or
    // the router == target case below would dereference the invalid chan.
    plan_leg(net, T, router, pkt);
  }

  if (router == pkt.target) {
    const PortIx out = net.out_port_of(pkt.exit_chan);
    if (!T.p.io_converters) {
      // No conversion modules (small-scale variant): the crossing happens
      // here and the line channel carries the next class.
      pkt.phase = pkt.next_phase;
      pkt.vc_class = pkt.next_class;
      pkt.target = kInvalidNode;
      pkt.exit_chan = kInvalidChan;
    }
    return {out, vcix()};
  }

  const auto& loc = T.loc[static_cast<std::size_t>(router)];
  const auto& tloc = T.loc[static_cast<std::size_t>(pkt.target)];
  assert(tloc.wg == loc.wg && tloc.cg == loc.cg && tloc.pos >= 0);
  const int d = mesh_dir(T, pkt, loc.pos, tloc.pos);
  assert(d >= 0);
  const auto& inst = T.cgroup(loc.wg, loc.cg);
  ChanId c = inst.mesh_out[static_cast<std::size_t>(loc.pos)]
                          [static_cast<std::size_t>(d)];
  assert(c != kInvalidChan);
  if (net.has_faults() && !net.chan_live(c))
    c = mesh_detour(net, T, router, in_port, loc.pos, tloc.pos, c);
  return {net.out_port_of(c), vcix()};
}

}  // namespace sldf::route
