// Channel-dependency-graph (CDG) deadlock auditor. Walks the routing
// function over every source/destination pair (and, for non-minimal
// routing, every possible intermediate group), records the sequence of
// (channel, VC) resources each packet would hold, adds dependency edges
// between consecutive resources, and checks the resulting graph for cycles
// (Dally & Towles: acyclic CDG => deadlock-free routing).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/network.hpp"

namespace sldf::route {

struct CdgReport {
  bool acyclic = false;
  std::size_t resources = 0;  ///< Distinct (channel, VC) pairs used.
  std::size_t edges = 0;      ///< Distinct dependency edges.
  std::size_t paths_walked = 0;
  std::size_t max_path_hops = 0;
  /// Fault-masked networks only: walks that reached a dead channel. The
  /// stalled packet's resource chain up to the dead link is recorded (it
  /// holds those buffers forever), but an unreachable pair is a degraded-
  /// operation result, not a routing failure — it does not clear `acyclic`.
  std::size_t undeliverable = 0;
  /// One witness cycle as (channel, vc) pairs, empty when acyclic.
  std::vector<std::pair<ChanId, VcIx>> cycle;
  std::string to_string(const sim::Network& net) const;
};

struct CdgOptions {
  /// Enumerate all intermediate groups for non-minimal routing instead of
  /// sampling the RNG choice (exhaustive audit).
  bool enumerate_intermediates = true;
  /// Safety cap on per-path hops (a livelocked walk fails the audit).
  std::size_t max_hops = 4096;
};

/// Audits the network's installed routing algorithm. The network must be
/// finalized; dynamic state is not touched.
CdgReport audit_cdg(const sim::Network& net, const CdgOptions& opt = {});

}  // namespace sldf::route
