#include "route/mesh_routing.hpp"

#include <cassert>
#include <queue>

namespace sldf::route {

using topo::Dir;
using topo::kEast;
using topo::kNorth;
using topo::kNumDirs;
using topo::kSouth;
using topo::kWest;

int xy_dir(int mx, int cur, int dst) {
  const int cx = cur % mx;
  const int cy = cur / mx;
  const int dx = dst % mx;
  const int dy = dst / mx;
  if (dx > cx) return kEast;
  if (dx < cx) return kWest;
  if (dy > cy) return kSouth;
  if (dy < cy) return kNorth;
  return -1;
}

namespace {

/// Neighbor position in direction d, or -1 if off the mesh.
int neighbor(int mx, int my, int pos, int d) {
  const int x = pos % mx;
  const int y = pos / mx;
  switch (d) {
    case kEast: return x + 1 < mx ? pos + 1 : -1;
    case kWest: return x > 0 ? pos - 1 : -1;
    case kSouth: return y + 1 < my ? pos + mx : -1;
    case kNorth: return y > 0 ? pos - mx : -1;
    default: return -1;
  }
}

}  // namespace

MonotoneTables::MonotoneTables(int mx, int my,
                               const std::vector<std::int32_t>& labels)
    : n_(mx * my), labels_(labels) {
  const auto N = static_cast<std::size_t>(n_);
  up_.assign(N * N, -1);
  dn_.assign(N * N, -1);
  std::vector<int> dist(N);
  std::queue<int> q;

  // For each destination, backward BFS over the label DAG: a hop u->v is
  // valid when label strictly increases (up) / decreases (down); dir(u) is
  // the first hop of a shortest monotone path u -> dst.
  for (int pass = 0; pass < 2; ++pass) {
    auto& tab = pass == 0 ? up_ : dn_;
    const bool increasing = pass == 0;
    for (int dst = 0; dst < n_; ++dst) {
      std::fill(dist.begin(), dist.end(), -1);
      dist[static_cast<std::size_t>(dst)] = 0;
      q.push(dst);
      while (!q.empty()) {
        const int v = q.front();
        q.pop();
        for (int d = 0; d < kNumDirs; ++d) {
          const int u = neighbor(mx, my, v, d);
          if (u < 0 || dist[static_cast<std::size_t>(u)] >= 0) continue;
          const bool edge_ok =
              increasing
                  ? labels_[static_cast<std::size_t>(u)] <
                        labels_[static_cast<std::size_t>(v)]
                  : labels_[static_cast<std::size_t>(u)] >
                        labels_[static_cast<std::size_t>(v)];
          if (!edge_ok) continue;
          dist[static_cast<std::size_t>(u)] =
              dist[static_cast<std::size_t>(v)] + 1;
          // Direction from u toward v is the opposite of d (d goes v->u).
          static constexpr std::int8_t kOpp[kNumDirs] = {kWest, kEast, kNorth,
                                                         kSouth};
          tab[index(dst, u)] = kOpp[d];
          q.push(u);
        }
      }
    }
  }
}

void XyMeshRouting::bind_topo(const sim::TopoInfo& info, int /*num_vcs*/) {
  topo_ = dynamic_cast<const topo::MeshTopo*>(&info);
}

void XyMeshRouting::init_packet(const sim::Network&, sim::Packet& pkt, Rng&) {
  pkt.vc_class = 0;
}

sim::RouteDecision XyMeshRouting::route(const sim::Network& net, NodeId router,
                                        PortIx /*in_port*/, sim::Packet& pkt) {
  if (topo_ == nullptr) topo_ = &net.topo<topo::MeshTopo>();
  const auto& info = *topo_;
  if (router == pkt.dst)
    return {net.eject_port_of(router), static_cast<VcIx>(pkt.vc_class)};
  const int cur = info.node_pos[static_cast<std::size_t>(router)];
  const int dst = info.node_pos[static_cast<std::size_t>(pkt.dst)];
  const int d = xy_dir(info.shape.mx(), cur, dst);
  assert(d >= 0);
  const ChanId c = info.cg.mesh_out[static_cast<std::size_t>(cur)]
                                   [static_cast<std::size_t>(d)];
  assert(c != kInvalidChan);
  return {net.out_port_of(c), static_cast<VcIx>(pkt.vc_class)};
}

}  // namespace sldf::route
