#include "route/dragonfly_routing.hpp"

#include <cassert>

#include "topo/dragonfly.hpp"

namespace sldf::route {

using topo::SwDfTopo;

namespace {

/// Buffered-flit occupancy of the global channel leaving `group` toward
/// `peer` (UGAL-L congestion signal, read from upstream credits).
int gateway_occupancy(const sim::Network& net, const SwDfTopo& T,
                      std::int32_t group, std::int32_t peer) {
  const int H = T.p.globals_per_switch;
  const int link = SwDfTopo::global_link(group, peer);
  const ChanId c = T.global_chan[static_cast<std::size_t>(
      (group * T.p.switches_per_group + link / H) * H + link % H)];
  return net.channel_occupancy(c);
}

}  // namespace

void DragonflyRouting::init_packet(const sim::Network& net, sim::Packet& pkt,
                                   Rng& rng) {
  pkt.vc_class = 0;
  pkt.mid_wgroup = -1;
  if (topo_ == nullptr) topo_ = &net.topo<SwDfTopo>();
  const auto& T = *topo_;
  const auto& sloc = T.loc[static_cast<std::size_t>(pkt.src)];
  const auto& dloc = T.loc[static_cast<std::size_t>(pkt.dst)];
  const int G = T.p.effective_groups();
  if (mode_ == RouteMode::Minimal || sloc.group == dloc.group || G <= 2)
    return;
  // Random intermediate group distinct from source and destination.
  std::int32_t mid;
  do {
    mid = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(G)));
  } while (mid == sloc.group || mid == dloc.group);
  if (mode_ == RouteMode::Valiant) {
    pkt.mid_wgroup = mid;
    return;
  }
  // Adaptive (UGAL-L): minimal unless its gateway global channel is at
  // least twice as congested as the candidate's.
  const int q_min = gateway_occupancy(net, T, sloc.group, dloc.group);
  const int q_val = gateway_occupancy(net, T, sloc.group, mid);
  constexpr int kThreshold = 4;
  if (q_min > 2 * q_val + kThreshold) pkt.mid_wgroup = mid;
}

sim::RouteDecision DragonflyRouting::route(const sim::Network& net,
                                           NodeId router, PortIx /*in_port*/,
                                           sim::Packet& pkt) {
  if (topo_ == nullptr) topo_ = &net.topo<SwDfTopo>();
  const auto& T = *topo_;
  // VC = class * vcs_per_class + destination hash: spreads head-of-line
  // queues per destination (ideal-switch approximation).
  const auto vcix = [&] {
    return static_cast<VcIx>(pkt.vc_class * vcs_per_class_ +
                             static_cast<int>(pkt.dst) % vcs_per_class_);
  };

  if (net.kind_of(router) == NodeKind::Core) {
    // Terminal node: either the destination or the source injecting upward.
    if (router == pkt.dst) return {net.eject_port_of(router), vcix()};
    const ChanId up = T.up_chan[static_cast<std::size_t>(
        net.chip_of(router))];  // chip id == terminal index by construction
    return {net.out_port_of(up), vcix()};
  }

  // At a switch.
  const auto& loc = T.loc[static_cast<std::size_t>(router)];
  const auto& dloc = T.loc[static_cast<std::size_t>(pkt.dst)];
  const int S = T.p.switches_per_group;
  const int H = T.p.globals_per_switch;

  if (pkt.mid_wgroup == loc.group) pkt.mid_wgroup = -1;  // bounce reached

  if (loc.group == dloc.group && pkt.mid_wgroup < 0) {
    if (loc.sw == dloc.sw) {
      const ChanId down = T.down_chan[static_cast<std::size_t>(
          (loc.group * S + loc.sw) * T.p.terminals_per_switch + dloc.term)];
      return {net.out_port_of(down), vcix()};
    }
    const ChanId l = T.local_chan[static_cast<std::size_t>(
        (loc.group * S + loc.sw) * (S - 1) +
        SwDfTopo::local_index(loc.sw, dloc.sw))];
    return {net.out_port_of(l), vcix()};
  }

  // Heading to another group (the Valiant bounce group first, if any).
  const int gt = pkt.mid_wgroup >= 0 ? pkt.mid_wgroup : dloc.group;
  const int link = SwDfTopo::global_link(loc.group, gt);
  const int owner = link / H;
  if (owner == loc.sw) {
    const ChanId gchan = T.global_chan[static_cast<std::size_t>(
        (loc.group * S + loc.sw) * H + link % H)];
    assert(gchan != kInvalidChan);
    ++pkt.vc_class;  // new group => next VC class
    return {net.out_port_of(gchan), vcix()};
  }
  const ChanId l = T.local_chan[static_cast<std::size_t>(
      (loc.group * S + loc.sw) * (S - 1) +
      SwDfTopo::local_index(loc.sw, owner))];
  return {net.out_port_of(l), vcix()};
}

}  // namespace sldf::route
