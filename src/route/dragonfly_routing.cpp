#include "route/dragonfly_routing.hpp"

#include <algorithm>
#include <cassert>

#include "route/fault_detour.hpp"
#include "topo/dragonfly.hpp"

namespace sldf::route {

using topo::SwDfTopo;

namespace {

/// The global channel leaving `group` toward `peer`.
ChanId global_chan_of(const SwDfTopo& T, std::int32_t group,
                      std::int32_t peer) {
  const int H = T.p.globals_per_switch;
  const int link = SwDfTopo::global_link(group, peer);
  return T.global_chan[static_cast<std::size_t>(
      (group * T.p.switches_per_group + link / H) * H + link % H)];
}

/// The local channel from switch `sa` to switch `sb` within `group`.
ChanId local_chan_of(const SwDfTopo& T, std::int32_t group, int sa, int sb) {
  return T.local_chan[static_cast<std::size_t>(
      (group * T.p.switches_per_group + sa) * (T.p.switches_per_group - 1) +
      SwDfTopo::local_index(sa, sb))];
}

bool global_usable(const sim::Network& net, const SwDfTopo& T,
                   std::int32_t ga, std::int32_t gb) {
  return net.chan_live(global_chan_of(T, ga, gb));
}

/// A detour group for src -> dst whose two global legs are both live
/// (shared policy: route/fault_detour.hpp).
std::int32_t pick_mid_group(const sim::Network& net, const SwDfTopo& T,
                            std::int32_t sg, std::int32_t dg, Rng& rng) {
  return pick_detour_group(T.p.effective_groups(), sg, dg, rng,
                           [&](std::int32_t a, std::int32_t b) {
                             return global_usable(net, T, a, b);
                           });
}

/// Intermediate switch detouring a dead local link `from` -> `to` within
/// `group` (both detour legs live); -1 when none exists.
int pick_local_via(const sim::Network& net, const SwDfTopo& T,
                   std::int32_t group, int from, int to) {
  return pick_detour_via(T.p.switches_per_group, from, to, [&](int a, int b) {
    return net.chan_live(local_chan_of(T, group, a, b));
  });
}

/// Buffered-flit occupancy of the global channel leaving `group` toward
/// `peer` (UGAL-L congestion signal, read from upstream credits).
int gateway_occupancy(const sim::Network& net, const SwDfTopo& T,
                      std::int32_t group, std::int32_t peer) {
  return net.channel_occupancy(global_chan_of(T, group, peer));
}

}  // namespace

void DragonflyRouting::bind_topo(const sim::TopoInfo& info, int num_vcs) {
  topo_ = dynamic_cast<const SwDfTopo*>(&info);
  own_vcs_ = num_vcs;
}

void DragonflyRouting::init_packet(const sim::Network& net, sim::Packet& pkt,
                                   Rng& rng) {
  pkt.vc_class = 0;
  pkt.mid_wgroup = -1;
  if (topo_ == nullptr) topo_ = &net.topo<SwDfTopo>();
  const auto& T = *topo_;
  const auto& sloc = T.loc[static_cast<std::size_t>(pkt.src)];
  const auto& dloc = T.loc[static_cast<std::size_t>(pkt.dst)];
  const int G = T.p.effective_groups();

  if (net.has_faults() && sloc.group != dloc.group) {
    // Fault-aware planning: a dead global cable on the minimal path is
    // detoured through an intermediate group with two live global legs
    // (Valiant-style bounce); local-link faults detour per hop in route().
    const bool direct_ok = global_usable(net, T, sloc.group, dloc.group);
    if (G <= 2) return;  // no intermediate exists; stall if direct is dead
    switch (mode_) {
      case RouteMode::Minimal:
        if (!direct_ok)
          pkt.mid_wgroup = pick_mid_group(net, T, sloc.group, dloc.group, rng);
        return;
      case RouteMode::Valiant: {
        const std::int32_t mid =
            pick_mid_group(net, T, sloc.group, dloc.group, rng);
        pkt.mid_wgroup = (mid < 0 && direct_ok) ? -1 : mid;
        return;
      }
      case RouteMode::Adaptive: {
        const std::int32_t mid =
            pick_mid_group(net, T, sloc.group, dloc.group, rng);
        if (!direct_ok || mid < 0) {
          pkt.mid_wgroup = mid;  // forced detour (or stall when mid < 0)
          return;
        }
        const int q_min = gateway_occupancy(net, T, sloc.group, dloc.group);
        const int q_val = gateway_occupancy(net, T, sloc.group, mid);
        constexpr int kThreshold = 4;
        if (q_min > 2 * q_val + kThreshold) pkt.mid_wgroup = mid;
        return;
      }
    }
    return;
  }

  if (mode_ == RouteMode::Minimal || sloc.group == dloc.group || G <= 2)
    return;
  // Random intermediate group distinct from source and destination.
  std::int32_t mid;
  do {
    mid = static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(G)));
  } while (mid == sloc.group || mid == dloc.group);
  if (mode_ == RouteMode::Valiant) {
    pkt.mid_wgroup = mid;
    return;
  }
  // Adaptive (UGAL-L): minimal unless its gateway global channel is at
  // least twice as congested as the candidate's.
  const int q_min = gateway_occupancy(net, T, sloc.group, dloc.group);
  const int q_val = gateway_occupancy(net, T, sloc.group, mid);
  constexpr int kThreshold = 4;
  if (q_min > 2 * q_val + kThreshold) pkt.mid_wgroup = mid;
}

sim::RouteDecision DragonflyRouting::route(const sim::Network& net,
                                           NodeId router, PortIx /*in_port*/,
                                           sim::Packet& pkt) {
  if (topo_ == nullptr) topo_ = &net.topo<SwDfTopo>();
  const auto& T = *topo_;
  const bool faulty = net.has_faults();
  // VC = class * vcs_per_class + destination hash: spreads head-of-line
  // queues per destination (ideal-switch approximation). Clamped to the
  // installed budget: repeated online fault re-bounces can climb the class
  // ladder past the reserve — a clamped class may cost deadlock freedom
  // (the audit reports it) but never an out-of-range VC.
  const auto vcix = [&] {
    const int nv = own_vcs_ > 0 ? own_vcs_ : static_cast<int>(net.num_vcs());
    const int top = nv / vcs_per_class_ - 1;
    return static_cast<VcIx>(std::min<int>(pkt.vc_class, top) *
                                 vcs_per_class_ +
                             static_cast<int>(pkt.dst) % vcs_per_class_);
  };

  if (net.kind_of(router) == NodeKind::Core) {
    // Terminal node: either the destination or the source injecting upward.
    if (router == pkt.dst) return {net.eject_port_of(router), vcix()};
    const ChanId up = T.up_chan[static_cast<std::size_t>(
        net.chip_of(router))];  // chip id == terminal index by construction
    return {net.out_port_of(up), vcix()};
  }

  // At a switch.
  const auto& loc = T.loc[static_cast<std::size_t>(router)];
  const auto& dloc = T.loc[static_cast<std::size_t>(pkt.dst)];
  const int S = T.p.switches_per_group;
  const int H = T.p.globals_per_switch;

  if (pkt.mid_wgroup == loc.group) pkt.mid_wgroup = -1;  // bounce reached

  // One local hop to switch `sw`, detouring a dead link through an
  // intermediate switch (full local mesh; VC class unchanged). A switch
  // with no usable detour keeps the dead channel and stalls (reported by
  // the fault audit).
  const auto local_hop = [&](int sw) -> sim::RouteDecision {
    if (faulty && !net.chan_live(local_chan_of(T, loc.group, loc.sw, sw))) {
      const int via = pick_local_via(net, T, loc.group, loc.sw, sw);
      if (via >= 0) sw = via;
    }
    return {net.out_port_of(local_chan_of(T, loc.group, loc.sw, sw)),
            vcix()};
  };

  if (loc.group == dloc.group && pkt.mid_wgroup < 0) {
    if (loc.sw == dloc.sw) {
      const ChanId down = T.down_chan[static_cast<std::size_t>(
          (loc.group * S + loc.sw) * T.p.terminals_per_switch + dloc.term)];
      return {net.out_port_of(down), vcix()};
    }
    return local_hop(dloc.sw);
  }

  // Heading to another group (the Valiant bounce group first, if any).
  int gt = pkt.mid_wgroup >= 0 ? pkt.mid_wgroup : dloc.group;
  if (faulty && !global_usable(net, T, loc.group, gt)) {
    // The planned global leg died under the packet (online fault step):
    // re-bounce through the lowest-index group with two live legs —
    // deterministic, no Rng on the hot path (see fault_detour.hpp).
    const std::int32_t mid = pick_detour_group_det(
        T.p.effective_groups(), loc.group, dloc.group,
        [&](std::int32_t a, std::int32_t b) {
          return global_usable(net, T, a, b);
        });
    if (mid >= 0) {
      pkt.mid_wgroup = mid;
      gt = mid;
    }  // else: keep the dead gateway and stall (reported, not crashed)
  }
  const int link = SwDfTopo::global_link(loc.group, gt);
  const int owner = link / H;
  if (owner == loc.sw) {
    const ChanId gchan = T.global_chan[static_cast<std::size_t>(
        (loc.group * S + loc.sw) * H + link % H)];
    assert(gchan != kInvalidChan);
    ++pkt.vc_class;  // new group => next VC class
    return {net.out_port_of(gchan), vcix()};
  }
  return local_hop(owner);
}

}  // namespace sldf::route
