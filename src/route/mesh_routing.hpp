// Intra-C-group mesh routing: dimension-order (XY) plus label-monotone
// next-hop tables (up-only / down-only shortest paths over the label DAG)
// used by the reduced-VC schemes (paper §IV-B).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"
#include "sim/routing.hpp"
#include "topo/cgroup.hpp"

namespace sldf::route {

/// XY direction from `cur` toward `dst` (positions y*mx+x); -1 if cur==dst.
int xy_dir(int mx, int cur, int dst);

/// Per-shape monotone next-hop tables. `up_dir(dst, src)` gives the first
/// direction of a shortest strictly-label-increasing path src -> dst, or -1
/// if none exists (label[src] >= label[dst]). With snake labeling an up path
/// exists for every label[src] < label[dst].
class MonotoneTables {
 public:
  MonotoneTables() = default;
  MonotoneTables(int mx, int my, const std::vector<std::int32_t>& labels);

  [[nodiscard]] int up_dir(int dst_pos, int src_pos) const {
    return up_[index(dst_pos, src_pos)];
  }
  [[nodiscard]] int down_dir(int dst_pos, int src_pos) const {
    return dn_[index(dst_pos, src_pos)];
  }
  /// Monotone direction src -> dst following label order (up when the
  /// destination label is higher, down otherwise); -1 if unreachable.
  [[nodiscard]] int dir(int dst_pos, int src_pos) const {
    if (labels_[static_cast<std::size_t>(src_pos)] <
        labels_[static_cast<std::size_t>(dst_pos)])
      return up_dir(dst_pos, src_pos);
    return down_dir(dst_pos, src_pos);
  }
  [[nodiscard]] bool empty() const { return up_.empty(); }

 private:
  [[nodiscard]] std::size_t index(int dst, int src) const {
    return static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(src);
  }
  int n_ = 0;
  std::vector<std::int8_t> up_;
  std::vector<std::int8_t> dn_;
  std::vector<std::int32_t> labels_;
};

/// Dimension-order routing for a standalone single-C-group mesh network
/// (topology info: topo::MeshTopo). Deadlock-free on one VC.
class XyMeshRouting final : public sim::RoutingAlgorithm {
 public:
  void bind_topo(const sim::TopoInfo& info, int num_vcs) override;
  void init_packet(const sim::Network& net, sim::Packet& pkt,
                   Rng& rng) override;
  sim::RouteDecision route(const sim::Network& net, NodeId router,
                           PortIx in_port, sim::Packet& pkt) override;
  [[nodiscard]] const char* name() const override { return "mesh-xy"; }

 private:
  const topo::MeshTopo* topo_ = nullptr;  ///< Downcast cached on first use.
};

}  // namespace sldf::route
