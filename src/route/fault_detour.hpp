// Shared fault-detour selection used by both fabrics' routing algorithms
// (route/swless_routing.cpp, route/dragonfly_routing.cpp). The policies are
// deliberately identical — a fix to the selection applies to both — and
// only the "is the leg between a and b usable?" predicate differs.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace sldf::route {

/// A Valiant-style detour group for src -> dst among `groups` candidates
/// whose two legs `usable(src, mid)` and `usable(mid, dst)` both hold,
/// chosen uniformly (seeded rng) among the usable candidates; -1 when none
/// exists. Two passes (count, then rescan to the drawn index) so the draw
/// is one rng value regardless of the candidate pattern.
template <typename Usable>
std::int32_t pick_detour_group(int groups, std::int32_t src,
                               std::int32_t dst, Rng& rng, Usable&& usable) {
  int count = 0;
  for (int mid = 0; mid < groups; ++mid)
    if (mid != src && mid != dst && usable(src, mid) && usable(mid, dst))
      ++count;
  if (count == 0) return -1;
  auto pick = static_cast<int>(rng.below(static_cast<std::uint64_t>(count)));
  for (int mid = 0; mid < groups; ++mid)
    if (mid != src && mid != dst && usable(src, mid) && usable(mid, dst) &&
        pick-- == 0)
      return mid;
  return -1;
}

/// Deterministic (lowest-index) variant of pick_detour_group, for ONLINE
/// re-planning inside route(): the hot path carries no Rng, and a draw
/// there would desynchronize the stream between engine variants. Every
/// packet rerouted around the same dead cable takes the same detour — a
/// momentary hotspot is the documented cost of deterministic recovery.
template <typename Usable>
std::int32_t pick_detour_group_det(int groups, std::int32_t src,
                                   std::int32_t dst, Usable&& usable) {
  for (int mid = 0; mid < groups; ++mid)
    if (mid != src && mid != dst && usable(src, mid) && usable(mid, dst))
      return mid;
  return -1;
}

/// An intermediate member detouring a dead direct leg `from` -> `to` within
/// one fully-connected group of `members` (both detour legs usable); -1
/// when none exists. Deterministic lowest index, so the detour is stable
/// across packets and runs.
template <typename Usable>
int pick_detour_via(int members, int from, int to, Usable&& usable) {
  for (int m = 0; m < members; ++m)
    if (m != from && m != to && usable(from, m) && usable(m, to)) return m;
  return -1;
}

}  // namespace sldf::route
