#include "topo/faults.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <istream>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "common/strfmt.hpp"

namespace sldf::topo {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::Any: return "any";
    case FaultKind::Intra: return "intra";
    case FaultKind::Local: return "local";
    case FaultKind::Global: return "global";
    case FaultKind::Vertical: return "vertical";
  }
  return "?";
}

FaultKind parse_fault_kind(const std::string& s) {
  if (s == "any") return FaultKind::Any;
  if (s == "intra") return FaultKind::Intra;
  if (s == "local") return FaultKind::Local;
  if (s == "global") return FaultKind::Global;
  if (s == "vertical") return FaultKind::Vertical;
  throw std::invalid_argument("unknown fault kind '" + s +
                              "' (expected any|intra|local|global|vertical)");
}

namespace {

/// True when a channel of this type/endpoints belongs to the kind's
/// candidate class. Converter attach links and terminal links are never
/// random-fault candidates: they fail only as part of a chip fault.
bool is_candidate(const sim::Network& net, const sim::Channel& ch,
                  FaultKind kind) {
  const bool mesh =
      (ch.type == LinkType::OnChip || ch.type == LinkType::ShortReach) &&
      net.router(ch.src).kind == NodeKind::Core &&
      net.router(ch.dst).kind == NodeKind::Core;
  switch (kind) {
    case FaultKind::Intra: return mesh;
    case FaultKind::Local: return ch.type == LinkType::LongReachLocal;
    case FaultKind::Global: return ch.type == LinkType::LongReachGlobal;
    case FaultKind::Vertical: return ch.type == LinkType::Vertical;
    case FaultKind::Any:
      return mesh || ch.type == LinkType::LongReachLocal ||
             ch.type == LinkType::LongReachGlobal ||
             ch.type == LinkType::Vertical;
  }
  return false;
}

/// fault.plane filter: -1 admits every plane. Both the static injector and
/// the online-timeline candidate list (permuted_cables) apply the same
/// predicate in the same enumeration order, so the superset-prefix property
/// of the seeded shuffle holds per plane exactly as it does globally.
bool plane_admits(const sim::Network& net, const sim::Channel& ch,
                  int plane) {
  return plane < 0 || net.plane_of_node(ch.src) == plane;
}

}  // namespace

FaultReport inject_faults(sim::Network& net, const FaultSpec& spec) {
  if (!spec.active())
    throw std::invalid_argument("inject_faults: spec has no faults");
  if (spec.rate < 0.0 || spec.rate > 1.0)
    throw std::invalid_argument("inject_faults: rate must be in [0, 1]");
  net.enable_fault_mask();

  FaultReport rep;

  // Group directed channels into duplex cables (a failed cable takes both
  // directions down) keyed by the unordered endpoint pair.
  std::map<std::pair<NodeId, NodeId>, std::vector<ChanId>> cables;
  for (std::size_t i = 0; i < net.num_channels(); ++i) {
    const auto c = static_cast<ChanId>(i);
    const sim::Channel& ch = net.chan(c);
    if (!is_candidate(net, ch, spec.kind)) continue;
    if (!plane_admits(net, ch, spec.plane)) continue;
    cables[{std::min(ch.src, ch.dst), std::max(ch.src, ch.dst)}].push_back(c);
  }
  std::vector<const std::vector<ChanId>*> candidates;
  candidates.reserve(cables.size());
  for (const auto& [key, chans] : cables) candidates.push_back(&chans);
  rep.candidate_cables = candidates.size();

  // Seeded partial Fisher-Yates: the first n_fail slots of the permutation
  // are the failure set, so a higher rate's set contains a lower rate's.
  const auto n_fail = static_cast<std::size_t>(
      std::llround(spec.rate * static_cast<double>(candidates.size())));
  Rng rng(spec.seed);
  for (std::size_t i = 0; i < n_fail; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
    for (const ChanId c : *candidates[i]) net.disable_channel(c);
  }
  rep.failed_cables = n_fail;

  for (const ChipId chip : spec.chips) {
    if (chip < 0 || chip >= static_cast<ChipId>(net.num_chips()))
      throw std::invalid_argument(
          strf("inject_faults: chip %d out of range (network has %zu chips)",
               chip, net.num_chips()));
    for (const NodeId n : net.chip_nodes(chip)) net.disable_node(n);
  }
  rep.failed_chips = spec.chips.size();

  rep.dead_channels = net.num_dead_channels();
  rep.dead_nodes = net.num_dead_nodes();
  return rep;
}

std::string FaultReport::to_string() const {
  return strf(
      "faults: %zu/%zu cables failed, %zu chips failed "
      "(%zu channels, %zu nodes dead)",
      failed_cables, candidate_cables, failed_chips, dead_channels,
      dead_nodes);
}

FaultAudit audit_fault_routing(const sim::Network& net,
                               std::size_t max_hops) {
  FaultAudit audit;
  Rng rng(12345);  // Fixed: the audit itself is deterministic.
  for (const NodeId src : net.terminals()) {
    for (const NodeId dst : net.terminals()) {
      if (src == dst) continue;
      // Planes are disjoint rails: no route crosses planes, so only
      // same-plane pairs are meaningful walks (single-plane: always true).
      if (net.plane_of_node(src) != net.plane_of_node(dst)) continue;
      if (!net.node_live(src) || !net.node_live(dst)) {
        ++audit.skipped_dead;
        continue;
      }
      ++audit.pairs;
      sim::Packet pkt;
      pkt.src = src;
      pkt.dst = dst;
      pkt.len = 1;
      net.routing()->init_packet(net, pkt, rng);
      NodeId cur = src;
      PortIx in_port = net.router(src).inj_port;
      std::size_t hops = 0;
      for (;;) {
        const auto d = net.routing()->route(net, cur, in_port, pkt);
        const auto& r = net.router(cur);
        if (d.out_port < 0 ||
            d.out_port >= static_cast<PortIx>(r.out.size())) {
          ++audit.unreachable;
          break;
        }
        const ChanId c =
            r.out[static_cast<std::size_t>(d.out_port)].out_chan;
        if (c == kInvalidChan) {  // ejection
          if (cur != dst) ++audit.unreachable;
          audit.max_hops_seen = std::max(audit.max_hops_seen, hops);
          break;
        }
        if (!net.chan_live(c)) {
          ++audit.dead_link_uses;
          ++audit.unreachable;
          break;
        }
        const auto& ch = net.chan(c);
        cur = ch.dst;
        in_port = ch.dst_port;
        if (++hops > max_hops) {  // livelocked walk
          ++audit.unreachable;
          break;
        }
      }
    }
  }
  return audit;
}

std::string FaultAudit::to_string() const {
  return strf(
      "fault audit: %zu pairs walked, %zu unreachable "
      "(%zu dead-link uses), %zu pairs skipped (dead endpoint), "
      "max hops %zu",
      pairs, unreachable, dead_link_uses, skipped_dead, max_hops_seen);
}

// ---------------------------------------------------------------------------
// Fault event timeline: parsing.
// ---------------------------------------------------------------------------

namespace {

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool parse_verb(const std::string& v, bool& fail) {
  if (v == "fail") return fail = true, true;
  if (v == "repair") return fail = false, true;
  return false;
}

bool parse_cycle(const std::string& s, Cycle& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (~0ULL - static_cast<std::uint64_t>(c - '0')) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

bool parse_rate(const std::string& s, double& out) {
  if (s.empty()) return false;
  std::size_t consumed = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  if (consumed != s.size() || !(v >= 0.0 && v <= 1.0)) return false;
  out = v;
  return true;
}

/// Parses the `<what>` payload shared by both formats when it arrives as a
/// single token: `chip<N>` or `<kind>=<rate>`.
bool parse_what(const std::string& what, FaultEvent& ev) {
  if (what.rfind("chip", 0) == 0) {
    const std::string num = what.substr(4);
    Cycle id = 0;
    if (!parse_cycle(num, id) || id > 0x7fffffffULL) return false;
    ev.is_chip = true;
    ev.chip = static_cast<ChipId>(id);
    return true;
  }
  const auto eq = what.find('=');
  if (eq == std::string::npos) return false;
  try {
    ev.kind = parse_fault_kind(trimmed(what.substr(0, eq)));
  } catch (const std::invalid_argument&) {
    return false;
  }
  ev.is_chip = false;
  return parse_rate(trimmed(what.substr(eq + 1)), ev.rate);
}

void check_ordered(const FaultTimeline& tl, const std::string& where) {
  for (std::size_t i = 1; i < tl.events.size(); ++i) {
    if (tl.events[i].at < tl.events[i - 1].at)
      throw FaultError(
          strf("%s: events out of order (cycle %llu after %llu); the "
               "timeline must be non-decreasing in cycle",
               where.c_str(),
               static_cast<unsigned long long>(tl.events[i].at),
               static_cast<unsigned long long>(tl.events[i - 1].at)));
  }
}

}  // namespace

FaultTimeline parse_fault_events(const std::string& s) {
  FaultTimeline tl;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto semi = s.find(';', pos);
    const std::string tok = trimmed(
        s.substr(pos, semi == std::string::npos ? std::string::npos
                                                : semi - pos));
    pos = semi == std::string::npos ? s.size() + 1 : semi + 1;
    if (tok.empty()) continue;
    const auto bad = [&tok]() -> FaultError {
      return FaultError(strf(
          "fault.events: bad event '%s' (expected "
          "fail|repair@<cycle>:<kind>=<rate> or fail|repair@<cycle>:chip<N>)",
          tok.c_str()));
    };
    const auto at_pos = tok.find('@');
    if (at_pos == std::string::npos) throw bad();
    const auto colon = tok.find(':', at_pos + 1);
    if (colon == std::string::npos) throw bad();
    FaultEvent ev;
    if (!parse_verb(trimmed(tok.substr(0, at_pos)), ev.fail)) throw bad();
    if (!parse_cycle(trimmed(tok.substr(at_pos + 1, colon - at_pos - 1)),
                     ev.at))
      throw bad();
    if (!parse_what(trimmed(tok.substr(colon + 1)), ev)) throw bad();
    tl.events.push_back(ev);
  }
  check_ordered(tl, "fault.events");
  return tl;
}

FaultTimeline parse_fault_schedule(std::istream& in,
                                   const std::string& origin) {
  std::string line;
  std::size_t lineno = 0;
  const auto err = [&](const std::string& msg) -> FaultError {
    return FaultError(strf("%s:%zu: %s", origin.c_str(), lineno, msg.c_str()));
  };

  // Header.
  if (!std::getline(in, line)) throw err("empty fault schedule");
  ++lineno;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (trimmed(line) != "sldf-faults 1")
    throw err("bad header (expected 'sldf-faults 1')");

  FaultTimeline tl;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trimmed(line);
    if (line.empty()) continue;

    // Tokenize: verb cycle what [arg].
    std::vector<std::string> toks;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
      std::size_t j = i;
      while (j < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[j])))
        ++j;
      if (j > i) toks.push_back(line.substr(i, j - i));
      i = j;
    }
    if (toks.size() != 4)
      throw err(
          "expected 'fail|repair <cycle> chip <N>' or "
          "'fail|repair <cycle> <kind> <rate>'");
    FaultEvent ev;
    if (!parse_verb(toks[0], ev.fail))
      throw err("unknown verb '" + toks[0] + "' (expected fail|repair)");
    if (!parse_cycle(toks[1], ev.at))
      throw err("bad cycle '" + toks[1] + "'");
    if (toks[2] == "chip") {
      Cycle id = 0;
      if (!parse_cycle(toks[3], id) || id > 0x7fffffffULL)
        throw err("bad chip id '" + toks[3] + "'");
      ev.is_chip = true;
      ev.chip = static_cast<ChipId>(id);
    } else {
      try {
        ev.kind = parse_fault_kind(toks[2]);
      } catch (const std::invalid_argument&) {
        throw err("unknown fault kind '" + toks[2] +
                  "' (expected any|intra|local|global)");
      }
      if (!parse_rate(toks[3], ev.rate))
        throw err("bad rate '" + toks[3] + "' (expected a number in [0, 1])");
    }
    if (!tl.events.empty() && ev.at < tl.events.back().at)
      throw err(strf("cycle %llu precedes the previous event's cycle %llu; "
                     "the timeline must be non-decreasing in cycle",
                     static_cast<unsigned long long>(ev.at),
                     static_cast<unsigned long long>(tl.events.back().at)));
    tl.events.push_back(ev);
  }
  return tl;
}

FaultTimeline load_fault_schedule(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw FaultError("cannot open fault schedule file '" + path + "'");
  return parse_fault_schedule(in, path);
}

// ---------------------------------------------------------------------------
// Fault event timeline: resolution against a finalized network.
// ---------------------------------------------------------------------------

namespace {

/// The kind's duplex cables in full seeded-permutation order. The first n
/// entries are exactly the set a static inject_faults at level n fails:
/// inject's partial Fisher-Yates and this full shuffle share the RNG stream,
/// and position i is finalized at step i, so prefixes coincide.
std::vector<std::vector<ChanId>> permuted_cables(const sim::Network& net,
                                                 FaultKind kind,
                                                 std::uint64_t seed,
                                                 int plane) {
  std::map<std::pair<NodeId, NodeId>, std::vector<ChanId>> cables;
  for (std::size_t i = 0; i < net.num_channels(); ++i) {
    const auto c = static_cast<ChanId>(i);
    const sim::Channel& ch = net.chan(c);
    if (!is_candidate(net, ch, kind)) continue;
    if (!plane_admits(net, ch, plane)) continue;
    cables[{std::min(ch.src, ch.dst), std::max(ch.src, ch.dst)}].push_back(c);
  }
  std::vector<std::vector<ChanId>> out;
  out.reserve(cables.size());
  for (auto& [key, chans] : cables) out.push_back(std::move(chans));
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(out.size() - i));
    std::swap(out[i], out[j]);
  }
  return out;
}

struct KindState {
  std::vector<std::vector<ChanId>> cables;  ///< Permuted duplex cables.
  std::size_t level = 0;                    ///< Dead prefix length.
};

}  // namespace

sim::FaultSchedule resolve_timeline(const sim::Network& net,
                                    const FaultTimeline& timeline,
                                    const FaultSpec& base) {
  if (base.rate < 0.0 || base.rate > 1.0)
    throw FaultError("resolve_timeline: base rate must be in [0, 1]");
  check_ordered(timeline, "resolve_timeline");

  std::map<FaultKind, KindState> kinds;
  const auto kind_state = [&](FaultKind k) -> KindState& {
    auto it = kinds.find(k);
    if (it == kinds.end())
      it = kinds
               .emplace(k, KindState{permuted_cables(net, k, base.seed,
                                                     base.plane),
                                     0})
               .first;
    return it->second;
  };

  // Model: a directed channel is dead while any failed cable covers it or
  // either endpoint node is dead. Counted (not boolean) because FaultKind::Any
  // and a specific kind can fail the same cable independently.
  std::vector<std::uint32_t> cable_dead(net.num_channels(), 0);
  std::vector<std::uint8_t> node_dead(net.num_routers(), 0);
  std::vector<std::uint8_t> chip_dead(net.num_chips(), 0);
  const auto chan_dead = [&](ChanId c) {
    const sim::Channel& ch = net.chan(c);
    return cable_dead[static_cast<std::size_t>(c)] > 0 ||
           node_dead[static_cast<std::size_t>(ch.src)] != 0 ||
           node_dead[static_cast<std::size_t>(ch.dst)] != 0;
  };
  const auto set_level = [&](KindState& ks, std::size_t lvl) {
    while (ks.level < lvl) {
      for (const ChanId c : ks.cables[ks.level])
        ++cable_dead[static_cast<std::size_t>(c)];
      ++ks.level;
    }
    while (ks.level > lvl) {
      --ks.level;
      for (const ChanId c : ks.cables[ks.level])
        --cable_dead[static_cast<std::size_t>(c)];
    }
  };

  // Cycle-0 state: the static injection the network was built with.
  if (base.rate > 0.0) {
    KindState& ks = kind_state(base.kind);
    set_level(ks, static_cast<std::size_t>(std::llround(
                      base.rate * static_cast<double>(ks.cables.size()))));
  }
  for (const ChipId chip : base.chips) {
    if (chip < 0 || chip >= static_cast<ChipId>(net.num_chips()))
      throw FaultError(strf("resolve_timeline: base chip %d out of range",
                            chip));
    chip_dead[static_cast<std::size_t>(chip)] = 1;
    for (const NodeId n : net.chip_nodes(chip))
      node_dead[static_cast<std::size_t>(n)] = 1;
  }

  // The model's cycle-0 state must agree with the network's current mask;
  // a mismatched base spec would make every diff below nonsense.
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    if ((node_dead[i] != 0) != !net.node_live(static_cast<NodeId>(i)))
      throw FaultError(
          strf("resolve_timeline: base spec disagrees with the network's "
               "fault state at node %zu (wrong seed/rate/kind/chips?)",
               i));
  }
  for (std::size_t i = 0; i < net.num_channels(); ++i) {
    if (chan_dead(static_cast<ChanId>(i)) !=
        !net.chan_live(static_cast<ChanId>(i)))
      throw FaultError(
          strf("resolve_timeline: base spec disagrees with the network's "
               "fault state at channel %zu (wrong seed/rate/kind?)",
               i));
  }

  std::vector<std::uint8_t> prev_chan(net.num_channels());
  for (std::size_t i = 0; i < net.num_channels(); ++i)
    prev_chan[i] = chan_dead(static_cast<ChanId>(i)) ? 1 : 0;
  std::vector<std::uint8_t> prev_node = node_dead;

  sim::FaultSchedule sched;
  std::size_t ei = 0;
  const auto& evs = timeline.events;
  while (ei < evs.size()) {
    const Cycle at = evs[ei].at;
    for (; ei < evs.size() && evs[ei].at == at; ++ei) {
      const FaultEvent& e = evs[ei];
      if (e.is_chip) {
        if (e.chip < 0 || e.chip >= static_cast<ChipId>(net.num_chips()))
          throw FaultError(strf(
              "resolve_timeline: chip %d out of range at cycle %llu "
              "(network has %zu chips)",
              e.chip, static_cast<unsigned long long>(e.at),
              net.num_chips()));
        auto& dead = chip_dead[static_cast<std::size_t>(e.chip)];
        if (e.fail && dead)
          throw FaultError(strf(
              "resolve_timeline: fail of already-failed chip %d at cycle "
              "%llu",
              e.chip, static_cast<unsigned long long>(e.at)));
        if (!e.fail && !dead)
          throw FaultError(strf(
              "resolve_timeline: repair of live chip %d at cycle %llu",
              e.chip, static_cast<unsigned long long>(e.at)));
        dead = e.fail ? 1 : 0;
        for (const NodeId n : net.chip_nodes(e.chip))
          node_dead[static_cast<std::size_t>(n)] = dead;
      } else {
        KindState& ks = kind_state(e.kind);
        const auto lvl = static_cast<std::size_t>(std::llround(
            e.rate * static_cast<double>(ks.cables.size())));
        if (e.fail && lvl < ks.level)
          throw FaultError(strf(
              "resolve_timeline: fail event at cycle %llu lowers the %s "
              "level (%zu -> %zu cables); use repair to lower a rate",
              static_cast<unsigned long long>(e.at), to_string(e.kind),
              ks.level, lvl));
        if (!e.fail && lvl > ks.level)
          throw FaultError(strf(
              "resolve_timeline: repair event at cycle %llu raises the %s "
              "level (%zu -> %zu cables); use fail to raise a rate",
              static_cast<unsigned long long>(e.at), to_string(e.kind),
              ks.level, lvl));
        set_level(ks, lvl);
      }
    }

    sim::FaultStep step;
    step.at = at;
    for (std::size_t i = 0; i < net.num_routers(); ++i) {
      if (node_dead[i] == prev_node[i]) continue;
      (node_dead[i] ? step.fail_nodes : step.repair_nodes)
          .push_back(static_cast<NodeId>(i));
      prev_node[i] = node_dead[i];
    }
    for (std::size_t i = 0; i < net.num_channels(); ++i) {
      const std::uint8_t cur = chan_dead(static_cast<ChanId>(i)) ? 1 : 0;
      if (cur == prev_chan[i]) continue;
      (cur ? step.fail_chans : step.repair_chans)
          .push_back(static_cast<ChanId>(i));
      prev_chan[i] = cur;
    }
    if (!step.fail_nodes.empty() || !step.repair_nodes.empty() ||
        !step.fail_chans.empty() || !step.repair_chans.empty())
      sched.steps.push_back(std::move(step));
  }
  return sched;
}

// ---------------------------------------------------------------------------
// Fault event timeline: instant audits.
// ---------------------------------------------------------------------------

TimelineAudit audit_at(sim::Network& net, Cycle t, std::size_t max_hops) {
  const sim::FaultSchedule* sched = net.fault_schedule();
  if (sched == nullptr || !net.has_fault_baseline())
    throw FaultError(
        "audit_at: network has no attached fault schedule and captured "
        "baseline (built without a fault timeline?)");

  const auto apply = [&net](const sim::FaultStep& s) {
    for (const NodeId n : s.fail_nodes) net.set_node_alive(n, false);
    for (const ChanId c : s.fail_chans) net.disable_channel(c);
    for (const ChanId c : s.repair_chans) net.enable_channel(c, 0);
    for (const NodeId n : s.repair_nodes) net.set_node_alive(n, true);
  };

  TimelineAudit ta;
  ta.at = t;
  net.restore_fault_baseline();
  std::size_t i = 0;
  for (; i < sched->steps.size() && sched->steps[i].at <= t; ++i)
    apply(sched->steps[i]);
  ta.snapshot = audit_fault_routing(net, max_hops);
  for (; i < sched->steps.size(); ++i) apply(sched->steps[i]);
  ta.settled = audit_fault_routing(net, max_hops);
  net.restore_fault_baseline();
  return ta;
}

std::string TimelineAudit::to_string() const {
  return strf(
      "timeline audit @%llu: %zu unreachable now (%zu transient, heal by "
      "the end of the timeline; %zu permanent), settled audit: %s",
      static_cast<unsigned long long>(at), snapshot.unreachable,
      transient_unreachable(), settled.unreachable,
      settled.to_string().c_str());
}

}  // namespace sldf::topo
