#include "topo/faults.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "common/strfmt.hpp"

namespace sldf::topo {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::Any: return "any";
    case FaultKind::Intra: return "intra";
    case FaultKind::Local: return "local";
    case FaultKind::Global: return "global";
  }
  return "?";
}

FaultKind parse_fault_kind(const std::string& s) {
  if (s == "any") return FaultKind::Any;
  if (s == "intra") return FaultKind::Intra;
  if (s == "local") return FaultKind::Local;
  if (s == "global") return FaultKind::Global;
  throw std::invalid_argument("unknown fault kind '" + s +
                              "' (expected any|intra|local|global)");
}

namespace {

/// True when a channel of this type/endpoints belongs to the kind's
/// candidate class. Converter attach links and terminal links are never
/// random-fault candidates: they fail only as part of a chip fault.
bool is_candidate(const sim::Network& net, const sim::Channel& ch,
                  FaultKind kind) {
  const bool mesh =
      (ch.type == LinkType::OnChip || ch.type == LinkType::ShortReach) &&
      net.router(ch.src).kind == NodeKind::Core &&
      net.router(ch.dst).kind == NodeKind::Core;
  switch (kind) {
    case FaultKind::Intra: return mesh;
    case FaultKind::Local: return ch.type == LinkType::LongReachLocal;
    case FaultKind::Global: return ch.type == LinkType::LongReachGlobal;
    case FaultKind::Any:
      return mesh || ch.type == LinkType::LongReachLocal ||
             ch.type == LinkType::LongReachGlobal;
  }
  return false;
}

}  // namespace

FaultReport inject_faults(sim::Network& net, const FaultSpec& spec) {
  if (!spec.active())
    throw std::invalid_argument("inject_faults: spec has no faults");
  if (spec.rate < 0.0 || spec.rate > 1.0)
    throw std::invalid_argument("inject_faults: rate must be in [0, 1]");
  net.enable_fault_mask();

  FaultReport rep;

  // Group directed channels into duplex cables (a failed cable takes both
  // directions down) keyed by the unordered endpoint pair.
  std::map<std::pair<NodeId, NodeId>, std::vector<ChanId>> cables;
  for (std::size_t i = 0; i < net.num_channels(); ++i) {
    const auto c = static_cast<ChanId>(i);
    const sim::Channel& ch = net.chan(c);
    if (!is_candidate(net, ch, spec.kind)) continue;
    cables[{std::min(ch.src, ch.dst), std::max(ch.src, ch.dst)}].push_back(c);
  }
  std::vector<const std::vector<ChanId>*> candidates;
  candidates.reserve(cables.size());
  for (const auto& [key, chans] : cables) candidates.push_back(&chans);
  rep.candidate_cables = candidates.size();

  // Seeded partial Fisher-Yates: the first n_fail slots of the permutation
  // are the failure set, so a higher rate's set contains a lower rate's.
  const auto n_fail = static_cast<std::size_t>(
      std::llround(spec.rate * static_cast<double>(candidates.size())));
  Rng rng(spec.seed);
  for (std::size_t i = 0; i < n_fail; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
    for (const ChanId c : *candidates[i]) net.disable_channel(c);
  }
  rep.failed_cables = n_fail;

  for (const ChipId chip : spec.chips) {
    if (chip < 0 || chip >= static_cast<ChipId>(net.num_chips()))
      throw std::invalid_argument(
          strf("inject_faults: chip %d out of range (network has %zu chips)",
               chip, net.num_chips()));
    for (const NodeId n : net.chip_nodes(chip)) net.disable_node(n);
  }
  rep.failed_chips = spec.chips.size();

  rep.dead_channels = net.num_dead_channels();
  rep.dead_nodes = net.num_dead_nodes();
  return rep;
}

std::string FaultReport::to_string() const {
  return strf(
      "faults: %zu/%zu cables failed, %zu chips failed "
      "(%zu channels, %zu nodes dead)",
      failed_cables, candidate_cables, failed_chips, dead_channels,
      dead_nodes);
}

FaultAudit audit_fault_routing(const sim::Network& net,
                               std::size_t max_hops) {
  FaultAudit audit;
  Rng rng(12345);  // Fixed: the audit itself is deterministic.
  for (const NodeId src : net.terminals()) {
    for (const NodeId dst : net.terminals()) {
      if (src == dst) continue;
      if (!net.node_live(src) || !net.node_live(dst)) {
        ++audit.skipped_dead;
        continue;
      }
      ++audit.pairs;
      sim::Packet pkt;
      pkt.src = src;
      pkt.dst = dst;
      pkt.src_chip = net.chip_of(src);
      pkt.dst_chip = net.chip_of(dst);
      pkt.len = 1;
      net.routing()->init_packet(net, pkt, rng);
      NodeId cur = src;
      PortIx in_port = net.router(src).inj_port;
      std::size_t hops = 0;
      for (;;) {
        const auto d = net.routing()->route(net, cur, in_port, pkt);
        const auto& r = net.router(cur);
        if (d.out_port < 0 ||
            d.out_port >= static_cast<PortIx>(r.out.size())) {
          ++audit.unreachable;
          break;
        }
        const ChanId c =
            r.out[static_cast<std::size_t>(d.out_port)].out_chan;
        if (c == kInvalidChan) {  // ejection
          if (cur != dst) ++audit.unreachable;
          audit.max_hops_seen = std::max(audit.max_hops_seen, hops);
          break;
        }
        if (!net.chan_live(c)) {
          ++audit.dead_link_uses;
          ++audit.unreachable;
          break;
        }
        const auto& ch = net.chan(c);
        cur = ch.dst;
        in_port = ch.dst_port;
        if (++hops > max_hops) {  // livelocked walk
          ++audit.unreachable;
          break;
        }
      }
    }
  }
  return audit;
}

std::string FaultAudit::to_string() const {
  return strf(
      "fault audit: %zu pairs walked, %zu unreachable "
      "(%zu dead-link uses), %zu pairs skipped (dead endpoint), "
      "max hops %zu",
      pairs, unreachable, dead_link_uses, skipped_dead, max_hops_seen);
}

}  // namespace sldf::topo
