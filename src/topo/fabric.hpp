// A wired-but-not-finalized fabric: what a topology builder produces
// before the network is sealed. Splitting wiring from installation lets
// the multi-plane builder (topo/plane_set.hpp) wire K fabrics into one
// Network and finalize once, while the classic single-fabric path is
// wire + install_fabric().
#pragma once

#include <memory>
#include <utility>

#include "sim/network.hpp"

namespace sldf::topo {

/// The product of wiring one fabric into a Network: its topology metadata,
/// the routing algorithm to drive it, and the VC geometry finalize() needs.
/// Routers/channels/terminals are already added to the Network; nothing is
/// finalized and no routing/topo-info is installed yet.
struct WiredFabric {
  std::unique_ptr<sim::TopoInfo> info;
  std::unique_ptr<sim::RoutingAlgorithm> routing;
  int num_vcs = 0;
  int vc_buf = 0;
};

/// Installs a single wired fabric (the classic non-plane build path):
/// binds the routing to its topology info, hands both to the network, and
/// finalizes with the fabric's VC geometry.
inline void install_fabric(sim::Network& net, WiredFabric f) {
  f.routing->bind_topo(*f.info, f.num_vcs);
  net.set_topo_info(std::move(f.info));
  net.set_routing(std::move(f.routing));
  net.finalize(f.num_vcs, f.vc_buf);
}

}  // namespace sldf::topo
