#include "topo/dragonfly.hpp"

#include <memory>
#include <stdexcept>

#include "route/dragonfly_routing.hpp"

namespace sldf::topo {

void SwDragonflyParams::validate() const {
  if (switches_per_group < 1 || terminals_per_switch < 1 ||
      globals_per_switch < 0)
    throw std::invalid_argument("SwDragonflyParams: bad counts");
  if (effective_groups() > max_groups())
    throw std::invalid_argument("SwDragonflyParams: groups exceed S*h+1");
  if (effective_groups() > 1 && globals_per_switch < 1)
    throw std::invalid_argument(
        "SwDragonflyParams: multi-group network needs global ports");
}

WiredFabric wire_sw_dragonfly(sim::Network& net, const SwDragonflyParams& p) {
  p.validate();
  auto info = std::make_unique<SwDfTopo>();
  info->p = p;
  const int G = p.effective_groups();
  const int S = p.switches_per_group;
  const int T = p.terminals_per_switch;
  const int H = p.globals_per_switch;

  // Switches then terminals.
  for (int g = 0; g < G; ++g) {
    for (int s = 0; s < S; ++s) {
      const NodeId sw = net.add_router(NodeKind::Switch);
      info->switches.push_back(sw);
      for (int t = 0; t < T; ++t) {
        const NodeId term = net.add_router(NodeKind::Core);
        const ChipId chip = static_cast<ChipId>(((g * S) + s) * T + t);
        net.make_terminal(term, chip);
        info->terminals.push_back(term);
        const ChanId up = net.add_channel(term, sw, LinkType::Terminal,
                                          p.term_latency);
        const ChanId down = net.add_channel(sw, term, LinkType::Terminal,
                                            p.term_latency);
        info->up_chan.push_back(up);
        info->down_chan.push_back(down);
      }
    }
  }

  // Locals: full mesh within each group.
  info->local_chan.assign(
      static_cast<std::size_t>(G) * static_cast<std::size_t>(S) *
          static_cast<std::size_t>(std::max(S - 1, 0)),
      kInvalidChan);
  for (int g = 0; g < G; ++g) {
    for (int a = 0; a < S; ++a) {
      for (int b = a + 1; b < S; ++b) {
        const ChanId fwd =
            net.add_duplex(info->switch_at(g, a), info->switch_at(g, b),
                           LinkType::LongReachLocal, p.local_latency);
        const auto base_a = static_cast<std::size_t>((g * S + a) * (S - 1));
        const auto base_b = static_cast<std::size_t>((g * S + b) * (S - 1));
        info->local_chan[base_a +
                         static_cast<std::size_t>(SwDfTopo::local_index(a, b))] =
            fwd;
        info->local_chan[base_b +
                         static_cast<std::size_t>(SwDfTopo::local_index(b, a))] =
            fwd + 1;
      }
    }
  }

  // Globals: one link per group pair; link l within a group is owned by
  // switch l / H, port l % H (consecutive assignment).
  info->global_chan.assign(static_cast<std::size_t>(G) *
                               static_cast<std::size_t>(S) *
                               static_cast<std::size_t>(std::max(H, 1)),
                           kInvalidChan);
  for (int ga = 0; ga < G; ++ga) {
    for (int gb = ga + 1; gb < G; ++gb) {
      const int la = SwDfTopo::global_link(ga, gb);
      const int lb = SwDfTopo::global_link(gb, ga);
      const NodeId sa = info->switch_at(ga, la / H);
      const NodeId sb = info->switch_at(gb, lb / H);
      const ChanId fwd =
          net.add_duplex(sa, sb, LinkType::LongReachGlobal, p.global_latency);
      info->global_chan[static_cast<std::size_t>(
          (ga * S + la / H) * H + la % H)] = fwd;
      info->global_chan[static_cast<std::size_t>(
          (gb * S + lb / H) * H + lb % H)] = fwd + 1;
    }
  }

  // Locations + hierarchy tables.
  info->loc.assign(net.num_routers(), {});
  for (int g = 0; g < G; ++g) {
    for (int s = 0; s < S; ++s) {
      const NodeId sw = info->switch_at(g, s);
      info->loc[static_cast<std::size_t>(sw)] = {g, s, -1};
      for (int t = 0; t < T; ++t) {
        const NodeId term = info->terminals[static_cast<std::size_t>(
            (g * S + s) * T + t)];
        info->loc[static_cast<std::size_t>(term)] = {g, s, t};
      }
    }
  }
  info->num_cgroups = G * S;  // a "C-group" is a switch in this baseline
  info->num_wgroups = G;
  info->nodes_per_chip = 1;
  info->chip_cgroup.resize(net.num_chips());
  info->chip_wgroup.resize(net.num_chips());
  info->chip_ring_rank.resize(net.num_chips());
  for (ChipId c = 0; c < static_cast<ChipId>(net.num_chips()); ++c) {
    info->chip_cgroup[static_cast<std::size_t>(c)] = c / T;
    info->chip_wgroup[static_cast<std::size_t>(c)] = c / (S * T);
    info->chip_ring_rank[static_cast<std::size_t>(c)] = c % T;
  }

  const int vpc = std::max(1, p.vcs_per_class);
  WiredFabric f;
  f.info = std::move(info);
  f.routing = std::make_unique<route::DragonflyRouting>(p.mode, vpc);
  f.num_vcs = (p.fault_tolerant ? route::swdf_fault_num_vcs(p.mode)
                                : route::swdf_num_vcs(p.mode)) *
              vpc;
  f.vc_buf = p.vc_buf;
  return f;
}

void build_sw_dragonfly(sim::Network& net, const SwDragonflyParams& p) {
  install_fabric(net, wire_sw_dragonfly(net, p));
}

WiredFabric wire_crossbar(sim::Network& net, int terminals,
                          int term_latency) {
  SwDragonflyParams p;
  p.switches_per_group = 1;
  p.terminals_per_switch = terminals;
  p.globals_per_switch = 0;
  p.groups = 1;
  p.term_latency = term_latency;
  p.local_latency = term_latency;
  p.global_latency = term_latency;
  p.mode = route::RouteMode::Minimal;
  return wire_sw_dragonfly(net, p);
}

void build_crossbar(sim::Network& net, int terminals, int term_latency) {
  install_fabric(net, wire_crossbar(net, terminals, term_latency));
}

}  // namespace sldf::topo
