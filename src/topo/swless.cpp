#include "topo/swless.hpp"

#include <memory>
#include <stdexcept>

#include "route/swless_routing.hpp"

namespace sldf::topo {

CGroupShape SwlessParams::cgroup_shape() const {
  CGroupShape s;
  s.chip_gx = chip_gx;
  s.chip_gy = chip_gy;
  s.noc_x = noc_x;
  s.noc_y = noc_y;
  s.ports_per_chiplet = ports_per_chiplet;
  s.local_ports = local_ports;
  s.global_ports = global_ports;
  s.labeling = labeling;
  s.onchip_latency = onchip_latency;
  s.sr_latency = sr_latency;
  s.mesh_width = mesh_width;
  s.io_converters = io_converters;
  return s;
}

void SwlessParams::validate() const {
  cgroup_shape().validate();
  if (a < 1 || b < 1) throw std::invalid_argument("SwlessParams: a,b >= 1");
  if (ab() > 1 && local_ports != ab() - 1)
    throw std::invalid_argument(
        "SwlessParams: local_ports must be a*b-1 (full local connectivity)");
  if (ab() == 1 && local_ports != 0)
    throw std::invalid_argument(
        "SwlessParams: single C-group W-group needs local_ports == 0");
  if (effective_wgroups() > max_wgroups())
    throw std::invalid_argument("SwlessParams: g exceeds a*b*h + 1");
  if (effective_wgroups() > 1 && global_ports < 1)
    throw std::invalid_argument(
        "SwlessParams: multi-W-group network needs global ports");
}

WiredFabric wire_swless_dragonfly(sim::Network& net, const SwlessParams& p) {
  p.validate();
  auto info = std::make_unique<SwlessTopo>();
  info->p = p;
  info->shape = p.cgroup_shape();
  const int G = p.effective_wgroups();
  const int AB = p.ab();
  const int H = p.global_ports;
  const int cpc = p.chips_per_cgroup();

  // Build all C-groups.
  info->cgroups.reserve(static_cast<std::size_t>(G * AB));
  for (int wg = 0; wg < G; ++wg)
    for (int cg = 0; cg < AB; ++cg)
      info->cgroups.push_back(
          build_cgroup(net, info->shape, (wg * AB + cg) * cpc));

  const auto connect = [&](ExtPort& ea, ExtPort& eb, LinkType type) {
    if (p.io_converters) {
      const ChanId fwd = net.add_duplex(ea.io, eb.io, type, p.lr_latency);
      ea.line_out = fwd;
      ea.line_in = fwd + 1;
      eb.line_out = fwd + 1;
      eb.line_in = fwd;
    } else {
      // Small-scale variant: hosts wired directly (no conversion modules).
      const ChanId fwd = net.add_duplex(ea.host, eb.host, type, p.lr_latency);
      ea.line_out = ea.exit_chan = fwd;
      ea.line_in = fwd + 1;
      eb.line_out = eb.exit_chan = fwd + 1;
      eb.line_in = fwd;
    }
  };

  // Local links: all-to-all among the AB C-groups of each W-group.
  for (int wg = 0; wg < G; ++wg) {
    for (int ca = 0; ca < AB; ++ca) {
      for (int cb = ca + 1; cb < AB; ++cb) {
        auto& ea = info->cgroups[static_cast<std::size_t>(wg * AB + ca)]
                       .locals[static_cast<std::size_t>(
                           SwlessTopo::local_index(ca, cb))];
        auto& eb = info->cgroups[static_cast<std::size_t>(wg * AB + cb)]
                       .locals[static_cast<std::size_t>(
                           SwlessTopo::local_index(cb, ca))];
        connect(ea, eb, LinkType::LongReachLocal);
      }
    }
  }

  // Global links: one per W-group pair; link l within a W-group is owned by
  // C-group l / H, global port l % H (consecutive assignment, Fig 6b).
  for (int wa = 0; wa < G; ++wa) {
    for (int wb = wa + 1; wb < G; ++wb) {
      const int la = SwlessTopo::global_link(wa, wb);
      const int lb = SwlessTopo::global_link(wb, wa);
      auto& ea = info->cgroups[static_cast<std::size_t>(wa * AB + la / H)]
                     .globals[static_cast<std::size_t>(la % H)];
      auto& eb = info->cgroups[static_cast<std::size_t>(wb * AB + lb / H)]
                     .globals[static_cast<std::size_t>(lb % H)];
      connect(ea, eb, LinkType::LongReachGlobal);
    }
  }

  // Location table.
  info->loc.assign(net.num_routers(), {});
  for (int wg = 0; wg < G; ++wg) {
    for (int cg = 0; cg < AB; ++cg) {
      const auto& inst = info->cgroups[static_cast<std::size_t>(wg * AB + cg)];
      for (std::size_t pos = 0; pos < inst.cores.size(); ++pos)
        info->loc[static_cast<std::size_t>(inst.cores[pos])] = {
            wg, cg, static_cast<std::int32_t>(pos)};
      for (const auto& ep : inst.locals)
        if (ep.io != kInvalidNode)
          info->loc[static_cast<std::size_t>(ep.io)] = {wg, cg, -1};
      for (const auto& ep : inst.globals)
        if (ep.io != kInvalidNode)
          info->loc[static_cast<std::size_t>(ep.io)] = {wg, cg, -1};
    }
  }

  // Hierarchy tables for traffic generators.
  info->num_cgroups = G * AB;
  info->num_wgroups = G;
  info->nodes_per_chip = p.nodes_per_chip();
  info->chip_cgroup.resize(net.num_chips());
  info->chip_wgroup.resize(net.num_chips());
  info->chip_ring_rank.resize(net.num_chips());
  const auto ring = ring_order(p.chip_gx, p.chip_gy);
  std::vector<std::int32_t> rank_of(ring.size());
  for (std::size_t i = 0; i < ring.size(); ++i)
    rank_of[static_cast<std::size_t>(ring[i])] = static_cast<std::int32_t>(i);
  for (ChipId c = 0; c < static_cast<ChipId>(net.num_chips()); ++c) {
    info->chip_cgroup[static_cast<std::size_t>(c)] = c / cpc;
    info->chip_wgroup[static_cast<std::size_t>(c)] = c / (AB * cpc);
    info->chip_ring_rank[static_cast<std::size_t>(c)] =
        rank_of[static_cast<std::size_t>(c % cpc)];
  }

  // Monotone tables for the reduced-VC schemes (shared shape).
  if (p.scheme != route::VcScheme::Baseline) {
    const auto labels = make_labels(info->shape.mx(), info->shape.my(),
                                    p.labeling);
    info->monotone =
        route::MonotoneTables(info->shape.mx(), info->shape.my(), labels);
  }

  WiredFabric f;
  f.info = std::move(info);
  f.routing = std::make_unique<route::SwlessRouting>(p.scheme, p.mode);
  f.num_vcs = p.fault_tolerant ? route::swless_fault_num_vcs(p.scheme, p.mode)
                               : route::swless_num_vcs(p.scheme, p.mode);
  f.vc_buf = p.vc_buf;
  return f;
}

void build_swless_dragonfly(sim::Network& net, const SwlessParams& p) {
  install_fabric(net, wire_swless_dragonfly(net, p));
}

}  // namespace sldf::topo
