#include "topo/cgroup.hpp"

#include <numeric>
#include <stdexcept>

#include "route/mesh_routing.hpp"

namespace sldf::topo {

int CGroupShape::edge_links() const { return ports_per_chiplet; }

void CGroupShape::validate() const {
  if (chip_gx < 1 || chip_gy < 1 || noc_x < 1 || noc_y < 1)
    throw std::invalid_argument("CGroupShape: grid dims must be >= 1");
  if (ports_per_chiplet < 0 || local_ports < 0 || global_ports < 0)
    throw std::invalid_argument("CGroupShape: negative port counts");
  if (mesh_width < 1)
    throw std::invalid_argument("CGroupShape: mesh_width must be >= 1");
  if (ext_ports() > 0) {
    const auto rim = perimeter_positions(mx(), my());
    if (static_cast<std::size_t>(ext_ports()) > 2 * rim.size())
      throw std::invalid_argument(
          "CGroupShape: more external ports than 2x perimeter routers");
  }
}

namespace {

/// Reduced fraction num/den for the bandwidth of one boundary router pair:
/// (n/4 links per chiplet edge) / (routers along that edge) * mesh_width.
std::pair<int, int> boundary_width(int n_ports, int routers_on_edge,
                                   int mesh_width) {
  int num = n_ports * mesh_width;
  int den = 4 * routers_on_edge;
  const int g = std::gcd(num, den);
  num /= g;
  den /= g;
  if (num < 1) num = den;  // never fall below 1 flit/cycle aggregate... keep >=
  return {num, den};
}

}  // namespace

CGroupInstance build_cgroup(sim::Network& net, const CGroupShape& shape,
                            ChipId first_chip) {
  shape.validate();
  CGroupInstance cg;
  const int MX = shape.mx();
  const int MY = shape.my();
  const auto P = static_cast<std::size_t>(MX * MY);

  cg.labels = make_labels(MX, MY, shape.labeling);
  cg.cores.resize(P, kInvalidNode);
  cg.mesh_out.assign(P, {kInvalidChan, kInvalidChan, kInvalidChan,
                         kInvalidChan});

  // Chips (chiplets) in row-major chiplet-grid order.
  for (int cy = 0; cy < shape.chip_gy; ++cy)
    for (int cx = 0; cx < shape.chip_gx; ++cx)
      cg.chips.push_back(first_chip + cy * shape.chip_gx + cx);

  // Core routers with terminals.
  for (int y = 0; y < MY; ++y) {
    for (int x = 0; x < MX; ++x) {
      const auto pos = static_cast<std::size_t>(y * MX + x);
      const NodeId id = net.add_router(NodeKind::Core);
      net.router(id).label = cg.labels[pos];
      const int chip_ix = (y / shape.noc_y) * shape.chip_gx + (x / shape.noc_x);
      net.make_terminal(id, cg.chips[static_cast<std::size_t>(chip_ix)]);
      cg.cores[pos] = id;
    }
  }

  // Mesh channels. Same-chiplet links are OnChip at full width; chiplet
  // boundary links get the fractional n/4-derived width (paper Eq. 6).
  const auto [bw_num_x, bw_den_x] =
      boundary_width(shape.ports_per_chiplet, shape.noc_y, shape.mesh_width);
  const auto [bw_num_y, bw_den_y] =
      boundary_width(shape.ports_per_chiplet, shape.noc_x, shape.mesh_width);
  for (int y = 0; y < MY; ++y) {
    for (int x = 0; x < MX; ++x) {
      const auto pos = static_cast<std::size_t>(y * MX + x);
      if (x + 1 < MX) {
        const auto east = pos + 1;
        const bool same_chip = (x / shape.noc_x) == ((x + 1) / shape.noc_x);
        const ChanId fwd =
            same_chip
                ? net.add_duplex(cg.cores[pos], cg.cores[east],
                                 LinkType::OnChip, shape.onchip_latency,
                                 shape.mesh_width)
                : net.add_duplex(cg.cores[pos], cg.cores[east],
                                 LinkType::ShortReach, shape.sr_latency,
                                 bw_num_x, bw_den_x);
        cg.mesh_out[pos][kEast] = fwd;
        cg.mesh_out[east][kWest] = fwd + 1;
      }
      if (y + 1 < MY) {
        const auto south = pos + static_cast<std::size_t>(MX);
        const bool same_chip = (y / shape.noc_y) == ((y + 1) / shape.noc_y);
        const ChanId fwd =
            same_chip
                ? net.add_duplex(cg.cores[pos], cg.cores[south],
                                 LinkType::OnChip, shape.onchip_latency,
                                 shape.mesh_width)
                : net.add_duplex(cg.cores[pos], cg.cores[south],
                                 LinkType::ShortReach, shape.sr_latency,
                                 bw_num_y, bw_den_y);
        cg.mesh_out[pos][kSouth] = fwd;
        cg.mesh_out[south][kNorth] = fwd + 1;
      }
    }
  }

  // External ports: perimeter hosts by label band — globals on the lowest
  // labels, locals on the highest (Property 2 analogue). When ports exceed
  // perimeter routers, each band wraps within itself.
  if (shape.ext_ports() > 0) {
    const auto rim = perimeter_by_label(MX, MY, cg.labels);
    const int R = static_cast<int>(rim.size());
    const int L = shape.local_ports;
    const int G = shape.global_ports;
    int gband = (L > 0) ? std::max(1, R - L) : std::min(G, R);
    gband = std::min(gband, std::max(G, 1));
    const int lband = std::max(1, R - gband);

    auto attach = [&](int rim_rank) {
      ExtPort p;
      p.host = cg.cores[static_cast<std::size_t>(rim[static_cast<std::size_t>(
          rim_rank)])];
      if (shape.io_converters) {
        p.io = net.add_router(NodeKind::IoConverter);
        p.exit_chan = net.add_duplex(p.host, p.io, LinkType::ShortReach,
                                     shape.sr_latency, 1);
      }
      return p;
    };
    for (int i = 0; i < G; ++i) cg.globals.push_back(attach(i % gband));
    for (int j = 0; j < L; ++j)
      cg.locals.push_back(attach(R - 1 - (j % lband)));
  }

  return cg;
}

WiredFabric wire_mesh_network(sim::Network& net, const CGroupShape& shape,
                              int num_vcs, int vc_buf) {
  auto info = std::make_unique<MeshTopo>();
  info->shape = shape;
  info->cg = build_cgroup(net, shape, 0);
  info->node_pos.assign(net.num_routers(), -1);
  for (std::size_t p = 0; p < info->cg.cores.size(); ++p)
    info->node_pos[static_cast<std::size_t>(info->cg.cores[p])] =
        static_cast<std::int32_t>(p);
  info->num_cgroups = 1;
  info->num_wgroups = 1;
  info->nodes_per_chip = shape.noc_x * shape.noc_y;
  info->chip_cgroup.assign(net.num_chips(), 0);
  info->chip_wgroup.assign(net.num_chips(), 0);
  info->chip_ring_rank.resize(net.num_chips());
  const auto ring = ring_order(shape.chip_gx, shape.chip_gy);
  for (std::size_t i = 0; i < ring.size(); ++i)
    info->chip_ring_rank[static_cast<std::size_t>(ring[i])] =
        static_cast<std::int32_t>(i);
  WiredFabric f;
  f.info = std::move(info);
  f.routing = std::make_unique<route::XyMeshRouting>();
  f.num_vcs = num_vcs;
  f.vc_buf = vc_buf;
  return f;
}

void build_mesh_network(sim::Network& net, const CGroupShape& shape,
                        int num_vcs, int vc_buf) {
  install_fabric(net, wire_mesh_network(net, shape, num_vcs, vc_buf));
}

}  // namespace sldf::topo
