// Switch-less Dragonfly on wafers (paper §III): C-groups of chiplets meshed
// on-wafer replace Dragonfly switches; all C-groups in a W-group are fully
// connected by long-reach local links, and W-groups are all-to-all connected
// by long-reach global links owned by C-groups (consecutive assignment,
// Fig 6). External ports go through SR-LR converter nodes (Fig 5/9).
#pragma once

#include <cstdint>
#include <vector>

#include "route/mesh_routing.hpp"
#include "route/routing_modes.hpp"
#include "sim/network.hpp"
#include "topo/cgroup.hpp"
#include "topo/fabric.hpp"
#include "topo/hier.hpp"

namespace sldf::topo {

struct SwlessParams {
  // --- topology scale (paper symbols in comments) ---
  int a = 2;  ///< C-groups per wafer.
  int b = 4;  ///< Wafers per W-group (ab C-groups fully connected).
  int chip_gx = 2, chip_gy = 2;  ///< Chiplet grid per C-group (m x m).
  int noc_x = 2, noc_y = 2;      ///< Routers per chiplet.
  int ports_per_chiplet = 6;     ///< n (drives intra-C-group link widths).
  int local_ports = 7;           ///< Must equal a*b - 1 for full local mesh.
  int global_ports = 5;          ///< h.
  int g = 0;                     ///< W-groups; 0 selects max = a*b*h + 1.

  // --- physical parameters (Table IV defaults) ---
  int onchip_latency = 1;
  int sr_latency = 1;
  int lr_latency = 8;
  int mesh_width = 1;          ///< Intra-C-group bandwidth multiplier (2B/4B).
  bool io_converters = true;   ///< Small-scale variant (§III-D1) omits them.
  Labeling labeling = Labeling::Snake;

  // --- routing ---
  route::VcScheme scheme = route::VcScheme::Baseline;
  route::RouteMode mode = route::RouteMode::Minimal;
  int vc_buf = 32;
  /// Reserve the fault-detour VC budget (route::swless_fault_num_vcs) so
  /// topo::inject_faults() can be applied after the build. Off by default:
  /// pristine-fabric builds stay bit-identical to pre-fault-model ones.
  bool fault_tolerant = false;

  [[nodiscard]] int ab() const { return a * b; }
  [[nodiscard]] int max_wgroups() const { return ab() * global_ports + 1; }
  [[nodiscard]] int effective_wgroups() const {
    return g > 0 ? g : max_wgroups();
  }
  [[nodiscard]] int chips_per_cgroup() const { return chip_gx * chip_gy; }
  [[nodiscard]] int nodes_per_chip() const { return noc_x * noc_y; }
  [[nodiscard]] int num_chips() const {
    return effective_wgroups() * ab() * chips_per_cgroup();
  }
  [[nodiscard]] int k() const { return local_ports + global_ports; }
  [[nodiscard]] CGroupShape cgroup_shape() const;
  void validate() const;
};

struct SwlessTopo : HierTopo {
  SwlessParams p;
  CGroupShape shape;
  std::vector<CGroupInstance> cgroups;  ///< [wg * ab + cg].

  struct Loc {
    std::int32_t wg = -1;
    std::int32_t cg = -1;   ///< C-group index within the W-group.
    std::int32_t pos = -1;  ///< Mesh position (cores) or -1 (IO nodes).
  };
  std::vector<Loc> loc;  ///< Indexed by NodeId.

  route::MonotoneTables monotone;  ///< Shared by all C-groups (same shape).

  [[nodiscard]] const CGroupInstance& cgroup(int wg, int cg) const {
    return cgroups[static_cast<std::size_t>(wg * p.ab() + cg)];
  }
  /// Local port index at C-group `from` toward sibling `to`.
  [[nodiscard]] static int local_index(int from, int to) {
    return to < from ? to : to - 1;
  }
  /// Global link index (within a W-group) leading to W-group `peer`.
  [[nodiscard]] static int global_link(int wg, int peer) {
    return peer < wg ? peer : peer - 1;
  }
};

/// Wires C-groups plus local/global links into `net` and returns the
/// fabric's topology info / routing / VC geometry without installing or
/// finalizing — the multi-plane builder calls this once per rail.
WiredFabric wire_swless_dragonfly(sim::Network& net, const SwlessParams& p);

/// Builds the full network: C-groups, local/global wiring, topology info,
/// routing algorithm (per params.scheme/mode), finalize.
void build_swless_dragonfly(sim::Network& net, const SwlessParams& p);

}  // namespace sldf::topo
