#include "topo/plane_set.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "route/plane_select.hpp"

namespace sldf::topo {

void build_plane_set(sim::Network& net, int count, int policy,
                     const RailWirer& wire_rail) {
  if (count < 1)
    throw std::invalid_argument("plane.count must be >= 1, got " +
                                std::to_string(count));
  if (net.num_routers() != 0)
    throw std::invalid_argument(
        "build_plane_set: network already has routers");

  auto agg = std::make_unique<PlaneSetTopo>();
  std::vector<std::unique_ptr<sim::RoutingAlgorithm>> routings;
  routings.reserve(static_cast<std::size_t>(count));
  std::size_t chips_after_first = 0;
  int num_vcs = 0;
  int vc_buf = 0;

  for (int p = 0; p < count; ++p) {
    net.begin_plane();
    WiredFabric f = wire_rail(p, net);
    if (f.info == nullptr || f.routing == nullptr || f.num_vcs < 1 ||
        f.vc_buf < 1)
      throw std::invalid_argument("plane " + std::to_string(p) +
                                  ": rail wirer returned an empty fabric");
    if (p == 0) {
      chips_after_first = net.num_chips();
      vc_buf = f.vc_buf;
      const auto* hier = dynamic_cast<const HierTopo*>(f.info.get());
      if (hier == nullptr)
        throw std::invalid_argument(
            "plane 0 fabric has no hierarchy metadata (HierTopo); it cannot "
            "anchor a plane set");
      static_cast<HierTopo&>(*agg) = *hier;  // shared logical hierarchy
    } else {
      if (net.num_chips() != chips_after_first)
        throw std::invalid_argument(
            "plane " + std::to_string(p) + " spans " +
            std::to_string(net.num_chips()) + " chips, plane 0 spans " +
            std::to_string(chips_after_first) +
            " (all planes must cover the same logical chips)");
      if (f.vc_buf != vc_buf)
        throw std::invalid_argument(
            "plane " + std::to_string(p) + " wants vc_buf=" +
            std::to_string(f.vc_buf) + ", plane 0 wants vc_buf=" +
            std::to_string(vc_buf) +
            " (finalize() applies one depth network-wide)");
    }
    num_vcs = std::max(num_vcs, f.num_vcs);
    f.routing->bind_topo(*f.info, f.num_vcs);
    agg->plane_num_vcs.push_back(f.num_vcs);
    agg->planes.push_back(std::move(f.info));
    routings.push_back(std::move(f.routing));
  }

  net.set_topo_info(std::move(agg));
  net.set_routing(std::make_unique<route::PlaneRouting>(std::move(routings)));
  net.finalize(num_vcs, vc_buf);
  net.seal_planes(policy);
}

}  // namespace sldf::topo
