// Shared hierarchy metadata so traffic generators can address C-groups and
// W-groups uniformly across switch-less and switch-based topologies
// (for switch-based Dragonfly: C-group == switch, W-group == switch group).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"

namespace sldf::topo {

struct HierTopo : sim::TopoInfo {
  std::vector<std::int32_t> chip_cgroup;  ///< Global C-group index per chip.
  std::vector<std::int32_t> chip_wgroup;  ///< W-group index per chip.
  /// Ring position of a chip within its C-group (Hamiltonian over the
  /// chiplet grid); ring-AllReduce orders chips by (cgroup, ring_rank).
  std::vector<std::int32_t> chip_ring_rank;
  std::int32_t num_cgroups = 1;
  std::int32_t num_wgroups = 1;
  std::int32_t nodes_per_chip = 1;
};

}  // namespace sldf::topo
