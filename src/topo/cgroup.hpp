// C-group construction (paper §III-A2, Fig 3b, Fig 9): an m×m grid of
// chiplets, each chiplet an internal NoC mesh, seamlessly meshed across
// chiplet boundaries by on-wafer short-reach links whose multiplicity is
// derived from the chiplet's n/4 edge ports. External (local/global) ports
// are realized by SR-LR converter nodes attached to perimeter routers.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/network.hpp"
#include "topo/fabric.hpp"
#include "topo/hier.hpp"
#include "topo/labeling.hpp"

namespace sldf::topo {

/// Mesh direction encoding used by routing tables.
enum Dir : int { kEast = 0, kWest = 1, kSouth = 2, kNorth = 3, kNumDirs = 4 };

struct CGroupShape {
  int chip_gx = 2;  ///< Chiplet columns (paper's m, x-axis).
  int chip_gy = 2;  ///< Chiplet rows (paper's m, y-axis).
  int noc_x = 2;    ///< Routers per chiplet, x.
  int noc_y = 2;    ///< Routers per chiplet, y.
  int ports_per_chiplet = 6;  ///< Paper's n; n/4 links per chiplet edge.
  int local_ports = 0;   ///< External ports toward sibling C-groups.
  int global_ports = 0;  ///< External ports toward other W-groups.
  Labeling labeling = Labeling::Snake;
  int onchip_latency = 1;
  int sr_latency = 1;     ///< On-wafer short-reach latency (Table IV: 1).
  int mesh_width = 1;     ///< Intra-C-group bandwidth multiplier (2B/4B).
  bool io_converters = true;  ///< Model SR-LR conversion hops as nodes.

  [[nodiscard]] int mx() const { return chip_gx * noc_x; }
  [[nodiscard]] int my() const { return chip_gy * noc_y; }
  [[nodiscard]] int routers() const { return mx() * my(); }
  [[nodiscard]] int chips() const { return chip_gx * chip_gy; }
  [[nodiscard]] int ext_ports() const { return local_ports + global_ports; }
  /// Full-duplex links crossing one chiplet-to-chiplet boundary edge.
  [[nodiscard]] int edge_links() const;
  void validate() const;
};

/// One external port of a C-group.
struct ExtPort {
  NodeId io = kInvalidNode;    ///< SR-LR converter node (kInvalidNode if
                               ///< io_converters is off).
  NodeId host = kInvalidNode;  ///< Perimeter core hosting the port.
  ChanId exit_chan = kInvalidChan;   ///< host->io (or the line itself when
                                     ///< converters are off; set by parent).
  ChanId line_out = kInvalidChan;    ///< io->peer line channel (parent fills).
  ChanId line_in = kInvalidChan;     ///< peer->io line channel (parent fills).
};

/// A built C-group inside some Network.
struct CGroupInstance {
  std::vector<NodeId> cores;   ///< Router ids, index = y*mx + x.
  std::vector<ChipId> chips;   ///< Chip ids, chiplet-grid row-major.
  std::vector<std::array<ChanId, kNumDirs>> mesh_out;  ///< Per position.
  std::vector<std::int32_t> labels;  ///< Per position (shape labeling).
  std::vector<ExtPort> locals;
  std::vector<ExtPort> globals;

  [[nodiscard]] NodeId core_at(int mx, int x, int y) const {
    return cores[static_cast<std::size_t>(y * mx + x)];
  }
};

/// Builds the routers/channels of one C-group into `net`, creating chips
/// starting at `first_chip`. If `shape.io_converters`, each external port
/// gets an IoConverter node with an SR attach duplex; line channels are the
/// caller's responsibility (ExtPort::line_*).
CGroupInstance build_cgroup(sim::Network& net, const CGroupShape& shape,
                            ChipId first_chip);

/// Standalone C-group network (Fig 10a's "2D-Mesh"): topology info.
struct MeshTopo : HierTopo {
  CGroupShape shape;
  CGroupInstance cg;
  std::vector<std::int32_t> node_pos;  ///< Position (y*mx+x) per router id.
};

/// Wires a standalone single-C-group mesh into `net` (XY routing) and
/// returns its fabric without installing or finalizing.
WiredFabric wire_mesh_network(sim::Network& net, const CGroupShape& shape,
                              int num_vcs, int vc_buf);

/// Builds a standalone single-C-group mesh network with XY routing and
/// `num_vcs` VCs (1 is sufficient for deadlock freedom with XY).
void build_mesh_network(sim::Network& net, const CGroupShape& shape,
                        int num_vcs, int vc_buf);

}  // namespace sldf::topo
