#include "topo/wafer_stack.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "route/wafer_route.hpp"

namespace sldf::topo {

void build_wafer_stack(sim::Network& net, int count, int vertical_latency,
                       int vertical_width_num, int vertical_width_den,
                       const RailWirer& wire_rail) {
  if (count < 1)
    throw std::invalid_argument("wafer.count must be >= 1, got " +
                                std::to_string(count));
  if (net.num_routers() != 0)
    throw std::invalid_argument(
        "build_wafer_stack: network already has routers");

  if (count == 1) {
    // Degenerate stack: the classic single-fabric build, sealed as one
    // wafer. No verticals, no dispatcher, no extra VCs — bit-identical
    // engine behavior to a pre-wafer build.
    net.begin_wafer();
    install_fabric(net, wire_rail(0, net));
    net.seal_wafers();
    return;
  }

  auto agg = std::make_unique<WaferStackTopo>();
  std::vector<std::unique_ptr<sim::RoutingAlgorithm>> routings;
  routings.reserve(static_cast<std::size_t>(count));
  std::size_t chips_per_wafer = 0;
  int num_vcs = 0;
  int vc_buf = 0;

  for (int w = 0; w < count; ++w) {
    net.begin_wafer();
    WiredFabric f = wire_rail(w, net);
    if (f.info == nullptr || f.routing == nullptr || f.num_vcs < 1 ||
        f.vc_buf < 1)
      throw std::invalid_argument("wafer " + std::to_string(w) +
                                  ": rail wirer returned an empty fabric");
    if (w == 0) {
      chips_per_wafer = net.num_chips();
      num_vcs = f.num_vcs;
      vc_buf = f.vc_buf;
      const auto* hier = dynamic_cast<const HierTopo*>(f.info.get());
      if (hier == nullptr)
        throw std::invalid_argument(
            "wafer 0 fabric has no hierarchy metadata (HierTopo); it cannot "
            "anchor a wafer stack");
      static_cast<HierTopo&>(*agg) = *hier;  // template for concatenation
    } else {
      if (net.num_chips() != chips_per_wafer * static_cast<std::size_t>(w + 1))
        throw std::invalid_argument(
            "wafer " + std::to_string(w) + " spans " +
            std::to_string(net.num_chips() -
                           chips_per_wafer * static_cast<std::size_t>(w)) +
            " chips, wafer 0 spans " + std::to_string(chips_per_wafer) +
            " (all wafers of a stack must be identical)");
      if (f.num_vcs != num_vcs || f.vc_buf != vc_buf)
        throw std::invalid_argument(
            "wafer " + std::to_string(w) + " wants " +
            std::to_string(f.num_vcs) + " VCs x " + std::to_string(f.vc_buf) +
            " flits, wafer 0 wants " + std::to_string(num_vcs) + " x " +
            std::to_string(vc_buf) +
            " (all wafers of a stack must be identical)");
    }
    f.routing->bind_topo(*f.info, f.num_vcs);
    agg->wafers.push_back(std::move(f.info));
    routings.push_back(std::move(f.routing));
  }

  agg->count = count;
  agg->chips_per_wafer = static_cast<std::int32_t>(chips_per_wafer);
  agg->child_num_vcs = num_vcs;

  // Wafer-major concatenation of the hierarchy tables: wafer w's chip c
  // maps to wafer 0's chip (c % chips_per_wafer) with group indices offset
  // by w stacks' worth of groups.
  const HierTopo tmpl = static_cast<const HierTopo&>(*agg);
  const std::size_t total_chips = net.num_chips();
  agg->chip_cgroup.resize(total_chips);
  agg->chip_wgroup.resize(total_chips);
  agg->chip_ring_rank.resize(total_chips);
  for (std::size_t c = 0; c < total_chips; ++c) {
    const auto w = static_cast<std::int32_t>(c / chips_per_wafer);
    const std::size_t l = c % chips_per_wafer;
    agg->chip_cgroup[c] = w * tmpl.num_cgroups + tmpl.chip_cgroup[l];
    agg->chip_wgroup[c] = w * tmpl.num_wgroups + tmpl.chip_wgroup[l];
    agg->chip_ring_rank[c] = tmpl.chip_ring_rank[l];
  }
  agg->num_cgroups = tmpl.num_cgroups * count;
  agg->num_wgroups = tmpl.num_wgroups * count;

  // Vertical bond columns: every chip column gets all-pairs duplex cables
  // between the wafers' portal routers, so any wafer pair is one vertical
  // hop apart (and faults on one pair can detour through another column,
  // never through a third wafer).
  agg->portal_of_chip.resize(total_chips);
  for (std::size_t c = 0; c < total_chips; ++c)
    agg->portal_of_chip[c] = net.chip_nodes(static_cast<ChipId>(c)).front();
  const auto wn = static_cast<std::size_t>(count);
  agg->vert.assign(chips_per_wafer * wn * wn, kInvalidChan);
  for (std::size_t col = 0; col < chips_per_wafer; ++col) {
    for (int wa = 0; wa < count; ++wa) {
      for (int wb = wa + 1; wb < count; ++wb) {
        const ChanId fwd = net.add_duplex(
            agg->portal(wa, static_cast<std::int32_t>(col)),
            agg->portal(wb, static_cast<std::int32_t>(col)),
            LinkType::Vertical, vertical_latency, vertical_width_num,
            vertical_width_den);
        agg->vert[col * wn * wn + static_cast<std::size_t>(wa) * wn +
                  static_cast<std::size_t>(wb)] = fwd;
        agg->vert[col * wn * wn + static_cast<std::size_t>(wb) * wn +
                  static_cast<std::size_t>(wa)] = fwd + 1;
      }
    }
  }

  auto routing = std::make_unique<route::WaferRouting>(std::move(routings));
  routing->bind_topo(*agg, 2 * num_vcs + 1);
  net.set_topo_info(std::move(agg));
  net.set_routing(std::move(routing));
  net.finalize(2 * num_vcs + 1, vc_buf);
  net.seal_wafers();
}

}  // namespace sldf::topo
