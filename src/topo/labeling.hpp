// Intra-C-group node labeling (paper §IV-B, Fig 6/8). Labels are a software
// total order over the mesh routers of one C-group; the reduced-VC routing
// schemes route label-monotone segments over them. Port hosts are chosen by
// label band (globals low, locals high) — the Property-2 analogue.
#pragma once

#include <cstdint>
#include <vector>

namespace sldf::topo {

enum class Labeling : std::uint8_t {
  Snake,         ///< Boustrophedon: consecutive labels are mesh-adjacent, so
                 ///< an up-only path exists between any label pair (default).
  RowMajor,      ///< Plain row-major order (ablation).
  PerimeterArc,  ///< Polar-style (Fig 8c): interior low (snake), perimeter
                 ///< ring high, ordered around the rim (ablation).
};

const char* to_string(Labeling l);

/// Returns label per position (index y*mx + x) for an mx-by-my mesh.
/// Labels are a permutation of [0, mx*my).
std::vector<std::int32_t> make_labels(int mx, int my, Labeling kind);

/// Positions (y*mx + x) of the mesh perimeter in clockwise ring order
/// starting at (0,0). For mx==1 or my==1 this is simply all positions.
std::vector<std::int32_t> perimeter_positions(int mx, int my);

/// Perimeter positions sorted by ascending label.
std::vector<std::int32_t> perimeter_by_label(
    int mx, int my, const std::vector<std::int32_t>& labels);

/// Hamiltonian ring order over a gx-by-gy grid (row-major cell indices):
/// consecutive entries (cyclically) are grid-adjacent whenever gx*gy is
/// even and both dims >= 2; otherwise falls back to a snake path whose
/// closing edge is non-adjacent. Used for ring-AllReduce chip ordering.
std::vector<std::int32_t> ring_order(int gx, int gy);

}  // namespace sldf::topo
