// Wafer-on-wafer scale-out: W copies of one fabric stacked into ONE
// sim::Network. Unlike multi-plane builds (topo/plane_set.hpp), wafers do
// not share the logical chip space — each wafer owns its own chip range
// (wafer-major layout), so a W-stack of an N-chip fabric is a 2^0..W*N-chip
// machine. Vertically adjacent chip twins (same chip column across wafers)
// are bonded by dense vertical columns (LinkType::Vertical) between their
// portal routers, wired all-pairs per column so any cross-wafer packet
// crosses exactly ONE vertical hop: route within the source wafer to the
// destination's stack column, bond across, finish within the destination
// wafer (route/wafer_route.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/network.hpp"
#include "topo/fabric.hpp"
#include "topo/hier.hpp"
#include "topo/plane_set.hpp"  // RailWirer

namespace sldf::topo {

/// Aggregate topology info of a wafer stack. The HierTopo tables are the
/// wafer-major concatenation of W copies of wafer 0's hierarchy (every
/// wafer is wired from the same builder, so wafer 0's tables are the
/// template), giving hierarchical traffic patterns and placement a single
/// consistent C-group/W-group numbering across the whole stack. The child
/// infos stay alive here for their routings.
struct WaferStackTopo : HierTopo {
  std::vector<std::unique_ptr<sim::TopoInfo>> wafers;
  int count = 1;
  std::int32_t chips_per_wafer = 0;
  int child_num_vcs = 0;  ///< V of one wafer; the network carries 2V+1.

  /// Portal router per GLOBAL chip: the chip's first terminal node, where
  /// the chip's vertical bond column lands.
  std::vector<NodeId> portal_of_chip;
  /// Directed vertical channel portal(wa, col) -> portal(wb, col), indexed
  /// [col * count * count + wa * count + wb]; kInvalidChan on the diagonal.
  std::vector<ChanId> vert;

  [[nodiscard]] NodeId portal(int wafer, std::int32_t col) const {
    return portal_of_chip[static_cast<std::size_t>(wafer) *
                              static_cast<std::size_t>(chips_per_wafer) +
                          static_cast<std::size_t>(col)];
  }
  [[nodiscard]] ChanId vertical(std::int32_t col, int wa, int wb) const {
    const auto w = static_cast<std::size_t>(count);
    return vert[static_cast<std::size_t>(col) * w * w +
                static_cast<std::size_t>(wa) * w + static_cast<std::size_t>(wb)];
  }
};

/// Builds a W-wafer stack: wires each wafer between begin_wafer() marks
/// (the same RailWirer contract as build_plane_set — the scenario layer
/// passes a TopologyRegistry::wire call), validates the wafers are
/// identical (chip count, VC geometry), bonds every chip column all-pairs
/// with vertical duplex cables (latency/width below), assembles the
/// aggregate info + dispatcher routing, finalizes with 2V+1 VCs (source-leg
/// classes [0,V), destination-leg classes [V,2V), vertical class 2V — see
/// route/wafer_route.hpp for why), and seals the wafer partition.
///
/// count == 1 degenerates to the classic single-fabric build (install the
/// child fabric directly; no vertical cables, no dispatcher, V VCs) plus a
/// sealed one-wafer partition — bit-identical engine behavior to a build
/// that never heard of wafers. Throws std::invalid_argument on bad counts
/// or inconsistent wafers.
void build_wafer_stack(sim::Network& net, int count, int vertical_latency,
                       int vertical_width_num, int vertical_width_den,
                       const RailWirer& wire_rail);

}  // namespace sldf::topo
