// Switch-based Dragonfly baseline (Kim et al. [3], Slingshot-style):
// groups of fully-connected switches, groups all-to-all connected via
// per-switch global ports; terminals hang off switches. Switches are
// modeled as single ideal routers, as in the paper's evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "route/routing_modes.hpp"
#include "sim/network.hpp"
#include "topo/fabric.hpp"
#include "topo/hier.hpp"

namespace sldf::topo {

struct SwDragonflyParams {
  int switches_per_group = 8;     ///< S (paper a): radix-16 config uses 8.
  int terminals_per_switch = 4;   ///< T (paper t): 4 for radix-16.
  int globals_per_switch = 5;     ///< h: 5 for radix-16.
  int groups = 0;                 ///< g; 0 selects the maximum S*h + 1.
  int term_latency = 8;           ///< Terminal link delay (H*_l).
  int local_latency = 8;          ///< Intra-group link delay (H_l).
  int global_latency = 8;         ///< Inter-group link delay (H_g).
  route::RouteMode mode = route::RouteMode::Minimal;
  int vc_buf = 32;
  /// Reserve the fault-detour VC budget (route::swdf_fault_num_vcs) so
  /// topo::inject_faults() can be applied after the build.
  bool fault_tolerant = false;
  /// VCs per class, destination-hashed (VOQ-style) to approximate the
  /// paper's ideal non-blocking switches (input-queued switches with one
  /// VC per class cap near ~72% uniform throughput from HOL blocking).
  int vcs_per_class = 4;

  [[nodiscard]] int max_groups() const {
    return switches_per_group * globals_per_switch + 1;
  }
  [[nodiscard]] int effective_groups() const {
    return groups > 0 ? groups : max_groups();
  }
  [[nodiscard]] int num_chips() const {
    return effective_groups() * switches_per_group * terminals_per_switch;
  }
  void validate() const;
};

struct SwDfTopo : HierTopo {
  SwDragonflyParams p;
  /// Per-node location: switches have term < 0.
  struct Loc {
    std::int32_t group = -1;
    std::int32_t sw = -1;     ///< Switch index within the group.
    std::int32_t term = -1;   ///< Terminal index within the switch, or -1.
  };
  std::vector<Loc> loc;                 ///< Indexed by NodeId.
  std::vector<NodeId> switches;         ///< [group * S + sw].
  std::vector<NodeId> terminals;        ///< [(group*S + sw) * T + t].
  std::vector<ChanId> down_chan;        ///< switch->terminal, same indexing.
  std::vector<ChanId> up_chan;          ///< terminal->switch, same indexing.
  std::vector<ChanId> local_chan;       ///< [(group*S+sw)*(S-1) + i].
  std::vector<ChanId> global_chan;      ///< [(group*S+sw)*h + q].

  [[nodiscard]] NodeId switch_at(int group, int sw) const {
    return switches[static_cast<std::size_t>(group * p.switches_per_group +
                                             sw)];
  }
  /// Local port index at switch `from` toward switch `to` (consecutive,
  /// skipping self).
  [[nodiscard]] static int local_index(int from, int to) {
    return to < from ? to : to - 1;
  }
  /// Global link index (within a group) leading to `peer` group.
  [[nodiscard]] static int global_link(int group, int peer) {
    return peer < group ? peer : peer - 1;
  }
};

/// Wires switches/terminals/links into `net` and returns the fabric's
/// topology info / routing / VC geometry without installing or finalizing
/// — the multi-plane builder calls this once per rail.
WiredFabric wire_sw_dragonfly(sim::Network& net, const SwDragonflyParams& p);

/// Builds the network (topology info + routing + finalize).
void build_sw_dragonfly(sim::Network& net, const SwDragonflyParams& p);

/// Single ideal crossbar switch with `terminals` endpoints (Fig 10a
/// baseline): a Dragonfly degenerate case with one group and one switch.
WiredFabric wire_crossbar(sim::Network& net, int terminals, int term_latency);
void build_crossbar(sim::Network& net, int terminals, int term_latency);

}  // namespace sldf::topo
