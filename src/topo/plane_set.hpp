// Multi-plane fabrics (ROADMAP item 3, booksim-DragonTree-style): K
// independent rails wired into ONE sim::Network, sharing the logical chip
// id space. Every plane attaches its own terminal node(s) to the same
// logical chips, so chip-level consumers — accepted-traffic normalization,
// workload chip validation, tenant placement, hierarchy tables — see the
// pre-plane network unchanged. Packets pick a plane at injection
// (route/plane_select.hpp) and are remapped to the plane's twin terminals;
// wiring is plane-disjoint, so a packet never leaves its plane.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/network.hpp"
#include "topo/fabric.hpp"
#include "topo/hier.hpp"

namespace sldf::topo {

/// Aggregate topology info of a plane set. The HierTopo slice is copied
/// from plane 0 (all planes share the logical chip space; plane 0 defines
/// the hierarchy traffic generators and placement consult), and the
/// per-plane child infos are kept alive here for their routings.
struct PlaneSetTopo : HierTopo {
  std::vector<std::unique_ptr<sim::TopoInfo>> planes;
  std::vector<int> plane_num_vcs;  ///< Each rail's own VC budget.

  [[nodiscard]] int count() const { return static_cast<int>(planes.size()); }
};

/// Wires rail `p` into `net` and returns its fabric (the scenario layer
/// passes a TopologyRegistry::wire call; tests can hand-wire).
using RailWirer = std::function<WiredFabric(int plane, sim::Network& net)>;

/// Builds a K-plane network: wires each rail between begin_plane() marks,
/// validates that every rail spans the same logical chips and agrees on
/// vc_buf, assembles the aggregate info + dispatcher routing, finalizes
/// with the max per-rail VC budget, and seals the plane partition with
/// `policy` (an opaque route::PlanePolicy value). Throws
/// std::invalid_argument on inconsistent rails.
void build_plane_set(sim::Network& net, int count, int policy,
                     const RailWirer& wire_rail);

}  // namespace sldf::topo
