#include "topo/labeling.hpp"

#include <algorithm>
#include <stdexcept>

namespace sldf::topo {

const char* to_string(Labeling l) {
  switch (l) {
    case Labeling::Snake: return "snake";
    case Labeling::RowMajor: return "row-major";
    case Labeling::PerimeterArc: return "perimeter-arc";
  }
  return "?";
}

std::vector<std::int32_t> perimeter_positions(int mx, int my) {
  std::vector<std::int32_t> out;
  if (mx <= 0 || my <= 0) return out;
  if (mx == 1) {
    for (int y = 0; y < my; ++y) out.push_back(y * mx);
    return out;
  }
  if (my == 1) {
    for (int x = 0; x < mx; ++x) out.push_back(x);
    return out;
  }
  for (int x = 0; x < mx; ++x) out.push_back(x);                    // top
  for (int y = 1; y < my; ++y) out.push_back(y * mx + (mx - 1));    // right
  for (int x = mx - 2; x >= 0; --x) out.push_back((my - 1) * mx + x);  // bottom
  for (int y = my - 2; y >= 1; --y) out.push_back(y * mx);          // left
  return out;
}

std::vector<std::int32_t> make_labels(int mx, int my, Labeling kind) {
  if (mx <= 0 || my <= 0) throw std::invalid_argument("make_labels: bad dims");
  const auto n = static_cast<std::size_t>(mx) * static_cast<std::size_t>(my);
  std::vector<std::int32_t> labels(n, -1);
  switch (kind) {
    case Labeling::RowMajor:
      for (std::size_t i = 0; i < n; ++i)
        labels[i] = static_cast<std::int32_t>(i);
      break;
    case Labeling::Snake:
      for (int y = 0; y < my; ++y) {
        for (int x = 0; x < mx; ++x) {
          const int xi = (y % 2 == 0) ? x : (mx - 1 - x);
          labels[static_cast<std::size_t>(y) * static_cast<std::size_t>(mx) +
                 static_cast<std::size_t>(xi)] = y * mx + x;
        }
      }
      break;
    case Labeling::PerimeterArc: {
      const auto rim = perimeter_positions(mx, my);
      std::vector<bool> is_rim(n, false);
      for (auto p : rim) is_rim[static_cast<std::size_t>(p)] = true;
      // Interior first (snake over interior cells), then the rim in ring
      // order taking the top labels.
      std::int32_t next = 0;
      for (int y = 0; y < my; ++y) {
        for (int x = 0; x < mx; ++x) {
          const int xi = (y % 2 == 0) ? x : (mx - 1 - x);
          const auto pos = static_cast<std::size_t>(y * mx + xi);
          if (!is_rim[pos]) labels[pos] = next++;
        }
      }
      for (auto p : rim) labels[static_cast<std::size_t>(p)] = next++;
      break;
    }
  }
  return labels;
}

std::vector<std::int32_t> ring_order(int gx, int gy) {
  std::vector<std::int32_t> order;
  order.reserve(static_cast<std::size_t>(gx) * static_cast<std::size_t>(gy));
  const auto at = [gx](int x, int y) {
    return static_cast<std::int32_t>(y * gx + x);
  };
  if (gx < 2 || gy < 2) {
    for (int i = 0; i < gx * gy; ++i) order.push_back(i);
    return order;
  }
  if (gy % 2 == 0) {
    // Top row rightwards, snake down columns 1..gx-1, return up column 0.
    for (int x = 1; x < gx; ++x) order.push_back(at(x, 0));
    for (int x = gx - 1; x >= 1; --x) {
      if ((gx - 1 - x) % 2 == 0)
        for (int y = 1; y < gy; ++y) order.push_back(at(x, y));
      else
        for (int y = gy - 1; y >= 1; --y) order.push_back(at(x, y));
    }
    for (int y = gy - 1; y >= 0; --y) order.push_back(at(0, y));
    return order;
  }
  if (gx % 2 == 0) {
    const auto t = ring_order(gy, gx);  // transpose
    for (auto i : t) order.push_back(at(i / gy, i % gy));
    return order;
  }
  // Both dims odd: no Hamiltonian cycle exists; snake path fallback.
  for (int y = 0; y < gy; ++y) {
    if (y % 2 == 0)
      for (int x = 0; x < gx; ++x) order.push_back(at(x, y));
    else
      for (int x = gx - 1; x >= 0; --x) order.push_back(at(x, y));
  }
  return order;
}

std::vector<std::int32_t> perimeter_by_label(
    int mx, int my, const std::vector<std::int32_t>& labels) {
  auto rim = perimeter_positions(mx, my);
  std::sort(rim.begin(), rim.end(), [&](std::int32_t a, std::int32_t b) {
    return labels[static_cast<std::size_t>(a)] <
           labels[static_cast<std::size_t>(b)];
  });
  return rim;
}

}  // namespace sldf::topo
