// Fault model for degraded-operation studies (wafer-scale yield/defect
// tolerance): deterministically disables duplex cables by kind — on-wafer
// intra-C-group mesh links, long-reach local (intra-W-group) cables,
// long-reach global (inter-W-group) cables — and/or whole chips, rewriting
// the finalized Network's channel/port tables so dead links can never move
// flits. Fault-aware routing (route/swless_routing, route/dragonfly_routing)
// consults the resulting mask and detours around dead resources; the audit
// below re-validates all-pairs reachability after injection, reporting (not
// crashing on) unreachable pairs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/network.hpp"

namespace sldf::topo {

/// Typed error for malformed fault timelines (inline `fault.events` strings
/// and `fault.schedule` files). File-derived messages carry "origin:line".
class FaultError : public ScenarioError {
 public:
  explicit FaultError(const std::string& what) : ScenarioError(what) {}
};

/// Which candidate link class random faults are drawn from.
enum class FaultKind : std::uint8_t {
  Any,     ///< Union of the classes below.
  Intra,   ///< Intra-C-group mesh links (OnChip/ShortReach between cores).
  Local,   ///< Long-reach local cables (intra-W-group, C-group to C-group).
  Global,  ///< Long-reach global cables (W-group to W-group).
  Vertical,  ///< Inter-wafer vertical bonds (wafer-on-wafer stacks).
};

const char* to_string(FaultKind k);
/// Accepted names match to_string(): any|intra|local|global|vertical.
/// Throws std::invalid_argument on unknown names.
FaultKind parse_fault_kind(const std::string& s);

struct FaultSpec {
  double rate = 0.0;  ///< Fraction of candidate cables to fail, [0, 1].
  FaultKind kind = FaultKind::Any;
  std::uint64_t seed = 1;  ///< Fault-set RNG seed (independent of sim seed).
  std::vector<ChipId> chips;  ///< Chips to fail entirely (all their nodes).
  // --- online fault timeline (scenario keys fault.events / fault.schedule /
  // fault.rescue; at most one of the two sources may be set) ---
  std::string events;    ///< Inline timeline (parse_fault_events grammar).
  std::string schedule;  ///< Path of a `sldf-faults 1` schedule file.
  bool rescue = true;    ///< Retransmit torn packets (false: drop + count).
  /// Restrict CABLE failures to one plane of a multi-plane network
  /// (scenario key `fault.plane`; -1 = all planes). Whole-chip failures
  /// (`fault.chips`) always span every plane — a chip dies as a unit.
  int plane = -1;

  /// An inactive spec injects nothing and leaves the network untouched
  /// (bit-identical to a build that never heard of faults).
  [[nodiscard]] bool active() const { return rate > 0.0 || !chips.empty(); }
  /// A timeline arms the fault mask and attaches a FaultSchedule even when
  /// the cycle-0 state is fault-free (rate 0, no chips).
  [[nodiscard]] bool has_timeline() const {
    return !events.empty() || !schedule.empty();
  }
};

struct FaultReport {
  std::size_t candidate_cables = 0;  ///< Duplex pairs eligible under kind.
  std::size_t failed_cables = 0;
  std::size_t failed_chips = 0;
  std::size_t dead_channels = 0;  ///< Directed channels disabled in total.
  std::size_t dead_nodes = 0;
  [[nodiscard]] std::string to_string() const;
};

/// Injects the spec's faults into a finalized network: arms the fault mask,
/// disables round(rate * candidates) cables chosen by a seeded partial
/// shuffle, and kills every node of the listed chips. Deterministic: the
/// same seed always fails the same set, and for a fixed seed the set failed
/// at a higher rate is a superset of the set at any lower rate (shuffle
/// prefix) — resilience sweeps therefore degrade monotonically instead of
/// jumping between unrelated fault sets. Throws on an inactive spec, an
/// out-of-range rate, or bad chip ids.
FaultReport inject_faults(sim::Network& net, const FaultSpec& spec);

/// Post-injection reachability audit of the installed routing function.
struct FaultAudit {
  std::size_t pairs = 0;         ///< Live terminal pairs walked.
  std::size_t skipped_dead = 0;  ///< Pairs with a dead endpoint (not walked).
  std::size_t unreachable = 0;   ///< Walks that stalled, looped, or misdelivered.
  std::size_t dead_link_uses = 0;  ///< Walks that tried to cross a dead link.
  std::size_t max_hops_seen = 0;
  [[nodiscard]] bool all_reachable() const {
    return unreachable == 0 && dead_link_uses == 0;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Walks every live terminal pair through the routing algorithm (in
/// non-minimal modes the intermediate-group choice is the deterministic
/// seeded sample init_packet makes) and verifies delivery over live links
/// only. Unreachable pairs are counted in the report, never fatal: degraded
/// operation with a partitioned fabric is a result, not a crash.
FaultAudit audit_fault_routing(const sim::Network& net,
                               std::size_t max_hops = 4096);

// ---------------------------------------------------------------------------
// Online fault timeline: fail/repair events applied at cycle boundaries.
// ---------------------------------------------------------------------------

/// One timeline event. A rate event sets the failure LEVEL of a kind — the
/// first round(rate * candidates) cables of that kind's seeded permutation
/// are dead — so raising/lowering the rate fails/repairs a monotone prefix
/// and the nested-set property of static fault sweeps carries over to time.
/// A chip event fails or repairs one whole chip.
struct FaultEvent {
  Cycle at = 0;
  bool fail = true;     ///< fail vs repair (validated against the level).
  bool is_chip = false;
  ChipId chip = kInvalidChip;     ///< Chip events only.
  FaultKind kind = FaultKind::Any;  ///< Rate events only.
  double rate = 0.0;                ///< Rate events only, [0, 1].
};

/// Parsed, unresolved timeline (cycle-ordered events).
struct FaultTimeline {
  std::vector<FaultEvent> events;
  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// Parses the inline `fault.events` grammar: semicolon-separated
/// `<fail|repair>@<cycle>:<what>` where `<what>` is `chip<N>` or
/// `<kind>=<rate>`, e.g. `fail@2000:global=0.05;repair@5000:global=0`.
/// Events must be non-decreasing in cycle. Throws FaultError.
FaultTimeline parse_fault_events(const std::string& s);

/// Parses the `fault.schedule` file format: header line `sldf-faults 1`,
/// then one event per line — `fail|repair <cycle> chip <N>` or
/// `fail|repair <cycle> <kind> <rate>` — with `#` comments. Errors carry
/// `origin:line`. Throws FaultError.
FaultTimeline parse_fault_schedule(std::istream& in, const std::string& origin);

/// Opens `path` and parses it with parse_fault_schedule. Throws FaultError
/// when the file cannot be opened.
FaultTimeline load_fault_schedule(const std::string& path);

/// Resolves a timeline against a finalized network into the concrete
/// per-cycle channel/node transitions the Simulator applies. `base` is the
/// static spec already injected into `net` (seed + initial levels + chips);
/// every rate event reuses the base seed's per-kind permutation, so the
/// cycle-t fault set at rate r is bit-identical to a static injection at
/// rate r. Validates verbs (a fail event must not lower a level, a repair
/// must not raise one; chip events must flip state) and that the base spec
/// matches the network's current mask. Throws FaultError.
sim::FaultSchedule resolve_timeline(const sim::Network& net,
                                    const FaultTimeline& timeline,
                                    const FaultSpec& base);

/// Reachability audit of one instant of a fault timeline, with the end
/// state alongside so transient partitions (heal after later repairs) are
/// separated from permanent ones.
struct TimelineAudit {
  Cycle at = 0;
  FaultAudit snapshot;  ///< Audit with events at <= `at` applied.
  FaultAudit settled;   ///< Audit with the whole timeline applied.
  /// Pairs unreachable at `at` that are reachable once the timeline ends.
  [[nodiscard]] std::size_t transient_unreachable() const {
    return snapshot.unreachable > settled.unreachable
               ? snapshot.unreachable - settled.unreachable
               : 0;
  }
  [[nodiscard]] bool transiently_partitioned() const {
    return transient_unreachable() > 0;
  }
  [[nodiscard]] bool permanently_partitioned() const {
    return settled.unreachable > 0;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Audits the installed routing function against the fault mask as it
/// stands at cycle `t` of the network's attached fault schedule, and again
/// at the end of the timeline. The mask is rewound to the captured cycle-0
/// baseline afterwards, so the network is unchanged. Requires a network
/// with an attached schedule and captured baseline (build_network sets both
/// up for timeline scenarios). Throws FaultError otherwise.
TimelineAudit audit_at(sim::Network& net, Cycle t, std::size_t max_hops = 4096);

}  // namespace sldf::topo
