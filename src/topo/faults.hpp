// Fault model for degraded-operation studies (wafer-scale yield/defect
// tolerance): deterministically disables duplex cables by kind — on-wafer
// intra-C-group mesh links, long-reach local (intra-W-group) cables,
// long-reach global (inter-W-group) cables — and/or whole chips, rewriting
// the finalized Network's channel/port tables so dead links can never move
// flits. Fault-aware routing (route/swless_routing, route/dragonfly_routing)
// consults the resulting mask and detours around dead resources; the audit
// below re-validates all-pairs reachability after injection, reporting (not
// crashing on) unreachable pairs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace sldf::topo {

/// Which candidate link class random faults are drawn from.
enum class FaultKind : std::uint8_t {
  Any,     ///< Union of the three classes below.
  Intra,   ///< Intra-C-group mesh links (OnChip/ShortReach between cores).
  Local,   ///< Long-reach local cables (intra-W-group, C-group to C-group).
  Global,  ///< Long-reach global cables (W-group to W-group).
};

const char* to_string(FaultKind k);
/// Accepted names match to_string(): any|intra|local|global. Throws
/// std::invalid_argument on unknown names.
FaultKind parse_fault_kind(const std::string& s);

struct FaultSpec {
  double rate = 0.0;  ///< Fraction of candidate cables to fail, [0, 1].
  FaultKind kind = FaultKind::Any;
  std::uint64_t seed = 1;  ///< Fault-set RNG seed (independent of sim seed).
  std::vector<ChipId> chips;  ///< Chips to fail entirely (all their nodes).

  /// An inactive spec injects nothing and leaves the network untouched
  /// (bit-identical to a build that never heard of faults).
  [[nodiscard]] bool active() const { return rate > 0.0 || !chips.empty(); }
};

struct FaultReport {
  std::size_t candidate_cables = 0;  ///< Duplex pairs eligible under kind.
  std::size_t failed_cables = 0;
  std::size_t failed_chips = 0;
  std::size_t dead_channels = 0;  ///< Directed channels disabled in total.
  std::size_t dead_nodes = 0;
  [[nodiscard]] std::string to_string() const;
};

/// Injects the spec's faults into a finalized network: arms the fault mask,
/// disables round(rate * candidates) cables chosen by a seeded partial
/// shuffle, and kills every node of the listed chips. Deterministic: the
/// same seed always fails the same set, and for a fixed seed the set failed
/// at a higher rate is a superset of the set at any lower rate (shuffle
/// prefix) — resilience sweeps therefore degrade monotonically instead of
/// jumping between unrelated fault sets. Throws on an inactive spec, an
/// out-of-range rate, or bad chip ids.
FaultReport inject_faults(sim::Network& net, const FaultSpec& spec);

/// Post-injection reachability audit of the installed routing function.
struct FaultAudit {
  std::size_t pairs = 0;         ///< Live terminal pairs walked.
  std::size_t skipped_dead = 0;  ///< Pairs with a dead endpoint (not walked).
  std::size_t unreachable = 0;   ///< Walks that stalled, looped, or misdelivered.
  std::size_t dead_link_uses = 0;  ///< Walks that tried to cross a dead link.
  std::size_t max_hops_seen = 0;
  [[nodiscard]] bool all_reachable() const {
    return unreachable == 0 && dead_link_uses == 0;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Walks every live terminal pair through the routing algorithm (in
/// non-minimal modes the intermediate-group choice is the deterministic
/// seeded sample init_packet makes) and verifies delivery over live links
/// only. Unreachable pairs are counted in the report, never fatal: degraded
/// operation with a partitioned fabric is a result, not a crash.
FaultAudit audit_fault_routing(const sim::Network& net,
                               std::size_t max_hops = 4096);

}  // namespace sldf::topo
