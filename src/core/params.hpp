// Named configurations used throughout the paper's evaluation (§V-A4).
#pragma once

#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"

namespace sldf::core {

/// Radix-16-equivalent switch-less Dragonfly (paper §V-B1): C-group = 2x2
/// chiplets of 2x2 NoC routers (4x4 mesh), 12 external ports (7 local +
/// 5 global), 8 C-groups per W-group, g = 41 W-groups, 1312 chips
/// (5248 on-chip nodes).
topo::SwlessParams radix16_swless();

/// Radix-16 switch-based Dragonfly baseline: 4:7:5 terminal:local:global,
/// 8 switches/group, 41 groups, 1312 chips.
topo::SwDragonflyParams radix16_swdf();

/// Radix-32-equivalent switch-less Dragonfly (paper §V-B3): C-group = 4x2
/// chiplets (8 chips, 8x4 router mesh), 24 external ports (15 local +
/// 9 global), 16 C-groups per W-group, g = 145, 18560 chips.
topo::SwlessParams radix32_swless();

/// Radix-32 switch-based Dragonfly baseline: 8:15:9, 16 switches/group,
/// 145 groups, 18560 chips.
topo::SwDragonflyParams radix32_swdf();

/// The Slingshot-scale case study of Table III: n = 12, m = 4 (4x4 chiplets),
/// a = 4, b = 8, h = 17, g = 545, N = 279040 chips. Analytical use only —
/// do not build (it would be a ~1.2M-router simulation).
topo::SwlessParams case_study_swless();

}  // namespace sldf::core
