#include "core/registry.hpp"

#include <algorithm>

#include "common/cli.hpp"
#include "core/params.hpp"
#include "topo/cgroup.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"

namespace sldf::core {

KvReader::KvReader(const KvMap& kv, std::string context)
    : kv_(kv), context_(std::move(context)) {}

const std::string* KvReader::take(const char* key) {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return nullptr;
  used_.push_back(key);
  return &it->second;
}

void KvReader::apply_int(const char* key, int& field) {
  if (const std::string* v = take(key)) {
    long parsed = 0;
    if (!Cli::parse_long(*v, parsed))
      throw std::invalid_argument(context_ + ": option '" + std::string(key) +
                                  "' expects an integer, got '" + *v + "'");
    field = static_cast<int>(parsed);
  }
}

void KvReader::apply_bool(const char* key, bool& field) {
  if (const std::string* v = take(key)) {
    bool parsed = false;
    if (!Cli::parse_bool(*v, parsed))
      throw std::invalid_argument(context_ + ": option '" + std::string(key) +
                                  "' expects a boolean, got '" + *v + "'");
    field = parsed;
  }
}

int KvReader::get_int(const char* key, int def) {
  apply_int(key, def);
  return def;
}

bool KvReader::get_bool(const char* key, bool def) {
  apply_bool(key, def);
  return def;
}

double KvReader::get_double(const char* key, double def) {
  if (const std::string* v = take(key)) {
    double parsed = 0.0;
    if (!Cli::parse_double(*v, parsed))
      throw std::invalid_argument(context_ + ": option '" + std::string(key) +
                                  "' expects a number, got '" + *v + "'");
    return parsed;
  }
  return def;
}

std::string KvReader::get_str(const char* key, const char* def) {
  if (const std::string* v = take(key)) return *v;
  return def;
}

void KvReader::finish() const {
  for (const auto& [key, value] : kv_) {
    (void)value;
    if (std::find(used_.begin(), used_.end(), key) == used_.end())
      throw std::invalid_argument(context_ + ": unknown option '" + key +
                                  "'");
  }
}

namespace {

/// A builder that cannot honor a requested routing mode / VC scheme must
/// say so rather than silently running its default — otherwise a
/// comparison experiment quietly measures the wrong configuration.
void require_default_mode(const TopoConfig& cfg, const char* name) {
  if (cfg.mode != route::RouteMode::Minimal)
    throw std::invalid_argument(std::string("topology '") + name +
                                "' does not support mode '" +
                                route::to_string(cfg.mode) +
                                "' (only minimal)");
}
void require_default_scheme(const TopoConfig& cfg, const char* name,
                            const char* why) {
  if (cfg.scheme != route::VcScheme::Baseline)
    throw std::invalid_argument(std::string("topology '") + name +
                                "' does not support VC scheme '" +
                                route::to_string(cfg.scheme) + "' (" + why +
                                ")");
}
void require_no_faults(const TopoConfig& cfg, const char* name) {
  if (cfg.fault_tolerant)
    throw std::invalid_argument(
        std::string("topology '") + name +
        "' does not support fault injection (its routing is not "
        "fault-aware)");
}

void apply_labeling(KvReader& o, const char* key, topo::Labeling& field) {
  if (const std::string* v = o.take(key)) {
    if (*v == "snake")
      field = topo::Labeling::Snake;
    else if (*v == "row-major")
      field = topo::Labeling::RowMajor;
    else if (*v == "perimeter-arc")
      field = topo::Labeling::PerimeterArc;
    else
      throw std::invalid_argument(
          o.context() + ": option '" + std::string(key) +
          "' expects snake|row-major|perimeter-arc, got '" + *v + "'");
  }
}

void apply(topo::SwlessParams& p, const TopoConfig& cfg,
           const std::string& name) {
  KvReader o(cfg.params, "topology '" + name + "'");
  o.apply_int("a", p.a);
  o.apply_int("b", p.b);
  o.apply_int("chip_gx", p.chip_gx);
  o.apply_int("chip_gy", p.chip_gy);
  o.apply_int("noc_x", p.noc_x);
  o.apply_int("noc_y", p.noc_y);
  o.apply_int("ports_per_chiplet", p.ports_per_chiplet);
  o.apply_int("local_ports", p.local_ports);
  o.apply_int("global_ports", p.global_ports);
  o.apply_int("g", p.g);
  o.apply_int("onchip_latency", p.onchip_latency);
  o.apply_int("sr_latency", p.sr_latency);
  o.apply_int("lr_latency", p.lr_latency);
  o.apply_int("mesh_width", p.mesh_width);
  o.apply_bool("io_converters", p.io_converters);
  apply_labeling(o, "labeling", p.labeling);
  o.apply_int("vc_buf", p.vc_buf);
  // Explicit override so a zero-fault baseline can be built with the same
  // fault-detour VC budget as the faulted points of a resilience sweep
  // (the budget changes buffering, which would otherwise confound the
  // sweep's first step).
  o.apply_bool("fault_tolerant", p.fault_tolerant);
  o.finish();
  p.mode = cfg.mode;
  p.scheme = cfg.scheme;
  p.fault_tolerant = p.fault_tolerant || cfg.fault_tolerant;
}

void apply(topo::SwDragonflyParams& p, const TopoConfig& cfg,
           const std::string& name) {
  KvReader o(cfg.params, "topology '" + name + "'");
  o.apply_int("switches_per_group", p.switches_per_group);
  o.apply_int("terminals_per_switch", p.terminals_per_switch);
  o.apply_int("globals_per_switch", p.globals_per_switch);
  o.apply_int("groups", p.groups);
  o.apply_int("g", p.groups);  // alias, matching the switch-less spelling
  o.apply_int("term_latency", p.term_latency);
  o.apply_int("local_latency", p.local_latency);
  o.apply_int("global_latency", p.global_latency);
  o.apply_int("vc_buf", p.vc_buf);
  o.apply_int("vcs_per_class", p.vcs_per_class);
  o.apply_bool("fault_tolerant", p.fault_tolerant);
  o.finish();
  require_default_scheme(cfg, name.c_str(),
                         "switch-based Dragonfly uses its own VC classes");
  p.mode = cfg.mode;
  p.fault_tolerant = p.fault_tolerant || cfg.fault_tolerant;
}

TopologyBuilder swless_preset(topo::SwlessParams (*base)(),
                              const char* name) {
  return [base, name](sim::Network& net, const TopoConfig& cfg) {
    auto p = base();
    apply(p, cfg, name);
    return topo::wire_swless_dragonfly(net, p);
  };
}

TopologyBuilder swdf_preset(topo::SwDragonflyParams (*base)(),
                            const char* name) {
  return [base, name](sim::Network& net, const TopoConfig& cfg) {
    auto p = base();
    apply(p, cfg, name);
    return topo::wire_sw_dragonfly(net, p);
  };
}

// ---- option docs (defaults rendered from each preset's param struct or
// ---- the builder's shared constants, so the generated reference can
// ---- never drift from the code) -----------------------------------------

// Defaults shared by the cgroup-mesh / crossbar builders and their docs.
constexpr int kCgroupMeshNumVcs = 1;
constexpr int kCgroupMeshVcBuf = 32;
constexpr int kCrossbarTerminals = 4;
constexpr int kCrossbarTermLatency = 1;

std::string istr(int v) { return std::to_string(v); }
std::string bstr(bool v) { return v ? "1" : "0"; }

const char* labeling_str(topo::Labeling l) {
  switch (l) {
    case topo::Labeling::Snake: return "snake";
    case topo::Labeling::RowMajor: return "row-major";
    case topo::Labeling::PerimeterArc: return "perimeter-arc";
  }
  return "?";
}

std::vector<OptionDoc> swless_docs(const topo::SwlessParams& p) {
  return {
      {"a", "int", istr(p.a), "C-groups per wafer"},
      {"b", "int", istr(p.b),
       "wafers per W-group (a*b C-groups fully connected)"},
      {"chip_gx", "int", istr(p.chip_gx), "chiplet-grid columns per C-group"},
      {"chip_gy", "int", istr(p.chip_gy), "chiplet-grid rows per C-group"},
      {"noc_x", "int", istr(p.noc_x), "NoC routers per chiplet, x"},
      {"noc_y", "int", istr(p.noc_y), "NoC routers per chiplet, y"},
      {"ports_per_chiplet", "int", istr(p.ports_per_chiplet),
       "paper's n; n/4 links per chiplet edge"},
      {"local_ports", "int", istr(p.local_ports),
       "external ports toward sibling C-groups (a*b-1 for a full mesh)"},
      {"global_ports", "int", istr(p.global_ports),
       "paper's h: global ports per C-group"},
      {"g", "int", istr(p.g),
       "W-groups; 0 selects the maximum a*b*h+1"},
      {"onchip_latency", "int", istr(p.onchip_latency),
       "NoC link delay, cycles"},
      {"sr_latency", "int", istr(p.sr_latency),
       "on-wafer short-reach link delay, cycles"},
      {"lr_latency", "int", istr(p.lr_latency),
       "long-reach (cable/optics) link delay, cycles"},
      {"mesh_width", "int", istr(p.mesh_width),
       "intra-C-group bandwidth multiplier (2B/4B on-wafer links)"},
      {"io_converters", "bool", bstr(p.io_converters),
       "model SR-LR converters as forwarding nodes"},
      {"labeling", "snake|row-major|perimeter-arc",
       labeling_str(p.labeling),
       "chiplet-grid labeling scheme for the Hamiltonian ring"},
      {"vc_buf", "int", istr(p.vc_buf), "per-VC input buffer depth, flits"},
      {"fault_tolerant", "bool", bstr(p.fault_tolerant),
       "reserve the fault-detour VC budget even without faults (resilience "
       "baselines; implied by active fault.* keys)"},
  };
}

std::vector<OptionDoc> swdf_docs(const topo::SwDragonflyParams& p) {
  return {
      {"switches_per_group", "int", istr(p.switches_per_group),
       "switches per group (paper a)"},
      {"terminals_per_switch", "int", istr(p.terminals_per_switch),
       "terminals per switch (paper t)"},
      {"globals_per_switch", "int", istr(p.globals_per_switch),
       "global ports per switch (paper h)"},
      {"groups", "int", istr(p.groups),
       "groups; 0 selects the maximum S*h+1"},
      {"g", "int", istr(p.groups),
       "alias of groups, matching the switch-less spelling"},
      {"term_latency", "int", istr(p.term_latency),
       "processor-to-switch link delay, cycles"},
      {"local_latency", "int", istr(p.local_latency),
       "intra-group link delay, cycles"},
      {"global_latency", "int", istr(p.global_latency),
       "inter-group link delay, cycles"},
      {"vc_buf", "int", istr(p.vc_buf), "per-VC input buffer depth, flits"},
      {"vcs_per_class", "int", istr(p.vcs_per_class),
       "destination-hashed VCs per class (ideal-switch approximation)"},
      {"fault_tolerant", "bool", bstr(p.fault_tolerant),
       "reserve the fault-detour VC budget even without faults (resilience "
       "baselines; implied by active fault.* keys)"},
  };
}

std::vector<OptionDoc> cgroup_mesh_docs() {
  const topo::CGroupShape s;
  return {
      {"chip_gx", "int", istr(s.chip_gx), "chiplet columns"},
      {"chip_gy", "int", istr(s.chip_gy), "chiplet rows"},
      {"noc_x", "int", istr(s.noc_x), "NoC routers per chiplet, x"},
      {"noc_y", "int", istr(s.noc_y), "NoC routers per chiplet, y"},
      {"ports_per_chiplet", "int", istr(s.ports_per_chiplet),
       "paper's n; n/4 links per chiplet edge"},
      {"labeling", "snake|row-major|perimeter-arc",
       labeling_str(s.labeling), "chiplet-grid labeling scheme"},
      {"onchip_latency", "int", istr(s.onchip_latency),
       "NoC link delay, cycles"},
      {"sr_latency", "int", istr(s.sr_latency),
       "on-wafer short-reach link delay, cycles"},
      {"mesh_width", "int", istr(s.mesh_width),
       "bandwidth multiplier of the wafer mesh links"},
      {"io_converters", "bool", bstr(s.io_converters),
       "model SR-LR converters as forwarding nodes"},
      {"num_vcs", "int", istr(kCgroupMeshNumVcs),
       "virtual channels (XY routing needs one)"},
      {"vc_buf", "int", istr(kCgroupMeshVcBuf),
       "per-VC input buffer depth, flits"},
  };
}

std::vector<OptionDoc> crossbar_docs() {
  return {
      {"terminals", "int", istr(kCrossbarTerminals),
       "endpoints on the single switch"},
      {"term_latency", "int", istr(kCrossbarTermLatency),
       "terminal link delay, cycles"},
  };
}

topo::SwlessParams default_swless() { return topo::SwlessParams{}; }
topo::SwDragonflyParams default_swdf() { return topo::SwDragonflyParams{}; }

/// The small audit instance used by the deadlock examples/ablations:
/// a=1, b=3 C-groups of 2x2 single-router chiplets, h=2, g=5.
topo::SwlessParams tiny_swless() {
  topo::SwlessParams p;
  p.a = 1;
  p.b = 3;
  p.chip_gx = p.chip_gy = 2;
  p.noc_x = p.noc_y = 1;
  p.ports_per_chiplet = 4;
  p.local_ports = 2;
  p.global_ports = 2;
  p.g = 5;
  return p;
}

topo::WiredFabric build_cgroup_mesh(sim::Network& net, const TopoConfig& cfg) {
  topo::CGroupShape s;
  int num_vcs = kCgroupMeshNumVcs;
  int vc_buf = kCgroupMeshVcBuf;
  KvReader o(cfg.params, "topology 'cgroup-mesh'");
  o.apply_int("chip_gx", s.chip_gx);
  o.apply_int("chip_gy", s.chip_gy);
  o.apply_int("noc_x", s.noc_x);
  o.apply_int("noc_y", s.noc_y);
  o.apply_int("ports_per_chiplet", s.ports_per_chiplet);
  apply_labeling(o, "labeling", s.labeling);
  o.apply_int("onchip_latency", s.onchip_latency);
  o.apply_int("sr_latency", s.sr_latency);
  o.apply_int("mesh_width", s.mesh_width);
  o.apply_bool("io_converters", s.io_converters);
  o.apply_int("num_vcs", num_vcs);
  o.apply_int("vc_buf", vc_buf);
  o.finish();
  require_default_mode(cfg, "cgroup-mesh");
  require_default_scheme(cfg, "cgroup-mesh", "XY routing needs no scheme");
  require_no_faults(cfg, "cgroup-mesh");
  return topo::wire_mesh_network(net, s, num_vcs, vc_buf);
}

topo::WiredFabric build_crossbar_net(sim::Network& net,
                                     const TopoConfig& cfg) {
  int terminals = kCrossbarTerminals;
  int term_latency = kCrossbarTermLatency;
  KvReader o(cfg.params, "topology 'crossbar'");
  o.apply_int("terminals", terminals);
  o.apply_int("term_latency", term_latency);
  o.finish();
  require_default_mode(cfg, "crossbar");
  require_default_scheme(cfg, "crossbar", "a single switch has no scheme");
  require_no_faults(cfg, "crossbar");
  return topo::wire_crossbar(net, terminals, term_latency);
}

}  // namespace

TopologyRegistry::TopologyRegistry() {
  const auto swless = [this](const char* name, const char* summary,
                             topo::SwlessParams (*base)()) {
    add(name, RegistryDoc{summary, swless_docs(base())},
        swless_preset(base, name));
  };
  const auto swdf = [this](const char* name, const char* summary,
                           topo::SwDragonflyParams (*base)()) {
    add(name, RegistryDoc{summary, swdf_docs(base())},
        swdf_preset(base, name));
  };
  swless("radix16-swless",
         "paper SS V-B1: 2x2 chiplets of 2x2 NoC, 8 C-groups/W-group, g=41",
         &radix16_swless);
  swless("radix32-swless",
         "paper SS V-B3: 4x2 chiplets (8x4 mesh), 16 C-groups/W-group, g=145",
         &radix32_swless);
  swless("swless", "switch-less Dragonfly with raw SwlessParams defaults",
         &default_swless);
  swless("tiny-swless", "small deadlock-audit instance (a=1, b=3, h=2, g=5)",
         &tiny_swless);
  swdf("radix16-swdf", "switch-based baseline: 8 switches/group, 4:7:5, g=41",
       &radix16_swdf);
  swdf("radix32-swdf",
       "switch-based baseline: 16 switches/group, 8:15:9, g=145",
       &radix32_swdf);
  swdf("swdf", "switch-based Dragonfly with raw SwDragonflyParams defaults",
       &default_swdf);
  add("cgroup-mesh",
      RegistryDoc{"one standalone C-group wafer mesh with XY routing",
                  cgroup_mesh_docs()},
      &build_cgroup_mesh);
  add("crossbar",
      RegistryDoc{"ideal single-switch crossbar", crossbar_docs()},
      &build_crossbar_net);
}

TopologyRegistry& TopologyRegistry::instance() {
  static TopologyRegistry reg;
  return reg;
}

}  // namespace sldf::core
