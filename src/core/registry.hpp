// String-keyed registries behind the scenario layer (BookSim-style: every
// network and traffic pattern is a named entry, so new variants are a
// registration plus a config file instead of a new binary).
#pragma once

#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "route/routing_modes.hpp"
#include "topo/fabric.hpp"

namespace sldf::sim {
class Network;
}

namespace sldf::core {

/// String key/value map used for topology overrides and traffic options.
using KvMap = std::map<std::string, std::string>;

/// Documentation of one accepted option/override key of a registry entry.
struct OptionDoc {
  std::string key;   ///< Option name as written in configs, e.g. "g".
  std::string type;  ///< "int", "bool", "double", or an enum value list.
  std::string def;   ///< Rendered default value.
  std::string help;  ///< One-line meaning.
};

/// Per-entry documentation: the one-line summary plus every accepted
/// option with its default — the source the `sldf --list` output and the
/// README scenario reference (`sldf --doc-keys`) are generated from, so
/// registering an entry with its docs *is* documenting it.
struct RegistryDoc {
  std::string summary;
  std::vector<OptionDoc> options;
};

/// Generic string-keyed factory registry with per-entry docs. Lookup
/// failures throw std::invalid_argument listing the known names.
template <typename Factory>
class NamedRegistry {
 public:
  void add(const std::string& name, std::string help, Factory make) {
    entries_[name] = Entry{RegistryDoc{std::move(help), {}}, std::move(make)};
  }
  void add(const std::string& name, RegistryDoc doc, Factory make) {
    entries_[name] = Entry{std::move(doc), std::move(make)};
  }
  [[nodiscard]] bool contains(const std::string& name) const {
    return entries_.count(name) > 0;
  }
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) out.push_back(name);
    return out;
  }
  [[nodiscard]] const std::string& help(const std::string& name) const {
    return find(name, "registry entry").doc.summary;
  }
  [[nodiscard]] const RegistryDoc& doc(const std::string& name) const {
    return find(name, "registry entry").doc;
  }
  [[nodiscard]] const Factory& at(const std::string& name,
                                  const char* what) const {
    return find(name, what).make;
  }

 private:
  struct Entry {
    RegistryDoc doc;
    Factory make;
  };

  const Entry& find(const std::string& name, const char* what) const {
    const auto it = entries_.find(name);
    if (it != entries_.end()) return it->second;
    std::string known;
    for (const auto& [key, entry] : entries_) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw std::invalid_argument(std::string("unknown ") + what + " '" + name +
                                "' (known: " + known + ")");
  }

  std::map<std::string, Entry> entries_;
};

/// Typed consumption of a string option/override map. Every getter marks
/// its key consumed; finish() rejects leftovers so a misspelled key fails
/// loudly instead of silently running the defaults. Shared by the topology
/// override appliers and the traffic-pattern option readers.
class KvReader {
 public:
  /// `context` prefixes error messages, e.g. "topology 'radix16-swless'".
  KvReader(const KvMap& kv, std::string context);

  /// Overwrite `field` if `key` is present (throws on a malformed value).
  void apply_int(const char* key, int& field);
  void apply_bool(const char* key, bool& field);

  /// Value of `key`, or the default when absent.
  [[nodiscard]] int get_int(const char* key, int def);
  [[nodiscard]] bool get_bool(const char* key, bool def);
  [[nodiscard]] double get_double(const char* key, double def);
  [[nodiscard]] std::string get_str(const char* key, const char* def);

  /// Raw access (marks the key consumed); nullptr when absent.
  const std::string* take(const char* key);

  /// Throws std::invalid_argument naming any key no getter consumed.
  void finish() const;

  [[nodiscard]] const std::string& context() const { return context_; }

 private:
  const KvMap& kv_;
  std::string context_;
  std::vector<std::string> used_;
};

/// Everything a topology builder needs besides the Network itself.
struct TopoConfig {
  KvMap params;  ///< Preset overrides in string form, e.g. {"g", "15"}.
  route::RouteMode mode = route::RouteMode::Minimal;
  route::VcScheme scheme = route::VcScheme::Baseline;
  /// Faults will be injected after the build (scenario `fault.*` keys):
  /// builders reserve the fault-detour VC budget. Builders whose routing is
  /// not fault-aware must reject this instead of silently degrading.
  bool fault_tolerant = false;
};

/// A registered topology entry *wires* its routers/channels/terminals into
/// the Network and returns the fabric (info/routing/VC geometry) without
/// finalizing — so the plane builder can wire K entries into one Network.
/// The classic single-fabric path is build() = wire + install_fabric.
using TopologyBuilder =
    std::function<topo::WiredFabric(sim::Network&, const TopoConfig&)>;

/// Named topology presets: the paper's radix-16/radix-32 switch-less and
/// switch-based networks, the raw parameter structs, the standalone C-group
/// mesh, and the ideal crossbar. Unknown override keys throw.
class TopologyRegistry {
 public:
  /// The process-wide registry, with the built-in presets registered.
  static TopologyRegistry& instance();

  void add(const std::string& name, std::string help, TopologyBuilder make) {
    reg_.add(name, std::move(help), std::move(make));
  }
  void add(const std::string& name, RegistryDoc doc, TopologyBuilder make) {
    reg_.add(name, std::move(doc), std::move(make));
  }
  [[nodiscard]] bool contains(const std::string& name) const {
    return reg_.contains(name);
  }
  [[nodiscard]] std::vector<std::string> names() const { return reg_.names(); }
  [[nodiscard]] const std::string& help(const std::string& name) const {
    return reg_.help(name);
  }
  [[nodiscard]] const RegistryDoc& doc(const std::string& name) const {
    return reg_.doc(name);
  }
  /// Wires the named preset into `net` (applying overrides/mode/scheme)
  /// without installing or finalizing; the caller owns the returned fabric.
  [[nodiscard]] topo::WiredFabric wire(const std::string& name,
                                       sim::Network& net,
                                       const TopoConfig& cfg) const {
    return reg_.at(name, "topology")(net, cfg);
  }
  /// Builds the named preset into `net`, applying overrides/mode/scheme.
  void build(const std::string& name, sim::Network& net,
             const TopoConfig& cfg) const {
    topo::install_fabric(net, wire(name, net, cfg));
  }

 private:
  TopologyRegistry();
  NamedRegistry<TopologyBuilder> reg_;
};

}  // namespace sldf::core
