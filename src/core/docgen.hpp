// Generated scenario reference: renders the scenario-key table and the
// topology/traffic/workload registries (with every entry's option docs) as
// the Markdown fragment `sldf --doc-keys` prints and README.md embeds
// between the `<!-- BEGIN/END GENERATED: sldf --doc-keys -->` markers. The
// registries are the single source of truth — CI diffs the README block
// against this output, so a stale reference fails the build.
#pragma once

#include <string>

namespace sldf::core {

std::string render_scenario_reference();

}  // namespace sldf::core
