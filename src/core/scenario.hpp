// Declarative scenario layer: one ScenarioSpec names everything the paper's
// evaluation grid varies — topology preset (+ param overrides), routing
// mode, VC scheme, traffic pattern (+ options), and the sweep — and
// run_scenario() executes it through the registries. Specs parse from
// `--key=value` CLI flags and from a `key = value` config-file format with
// `[series NAME]` sections, so every figure is a config file instead of a
// hand-wired main().
#pragma once

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "core/experiment.hpp"
#include "core/registry.hpp"
#include "route/plane_select.hpp"
#include "route/routing_modes.hpp"
#include "topo/faults.hpp"
#include "workload/workload.hpp"

namespace sldf::core {

struct ScenarioSpec {
  std::string label = "scenario";  ///< Series label (CSV/table output).
  std::string topology = "radix16-swless";  ///< TopologyRegistry key.
  KvMap topo;  ///< Preset overrides, config keys `topo.<param>`.
  route::RouteMode mode = route::RouteMode::Minimal;
  route::VcScheme scheme = route::VcScheme::Baseline;
  std::string traffic = "uniform";  ///< TrafficRegistry key.
  KvMap traffic_opts;  ///< Pattern options, config keys `traffic.<opt>`.
  /// WorkloadRegistry key; non-empty switches the scenario from open-loop
  /// rate sweeps to one closed-loop message-level run (rates/max_rate/
  /// points/stop_factor/threads are then ignored).
  std::string workload;
  KvMap workload_opts;  ///< Generator + runner options, keys `workload.<opt>`.
  /// Fault injection (config keys `fault.rate` / `fault.kind` /
  /// `fault.seed` / `fault.chips`). When active(), the topology is built
  /// fault-tolerant and build_network() injects the faults after the build;
  /// an inactive spec leaves the network bit-identical to a fault-free one.
  topo::FaultSpec fault;

  /// Multi-plane fabric (config keys `plane.count` / `plane.mix` /
  /// `plane.policy`). plane_count = 0 is the unset sentinel: the network
  /// builds through the classic single-fabric path. An explicit
  /// `plane.count = 1` builds through the PlaneSet layer (bit-identical
  /// results, exercised by tests); >= 2 instantiates that many rails
  /// sharing the logical chip space, with per-packet plane selection.
  int plane_count = 0;
  /// `plane.mix`: comma-separated topology registry names, one per plane
  /// (empty = plane_count copies of `topology`). Length must equal
  /// plane.count when both are set.
  std::vector<std::string> plane_mix;
  /// `plane.policy`: per-packet plane selection (route::PlanePolicy).
  route::PlanePolicy plane_policy = route::PlanePolicy::Hash;

  /// Wafer-on-wafer stack (config keys `wafer.count` / `wafer.latency` /
  /// `wafer.width`). wafer_count = 0 is the unset sentinel (classic
  /// single-fabric build); an explicit `wafer.count = 1` builds through the
  /// WaferStack layer (bit-identical results, exercised by tests); >= 2
  /// stacks that many copies of `topology` bonded by vertical inter-wafer
  /// cables (see topo/wafer_stack.hpp). Mutually exclusive with plane.*.
  int wafer_count = 0;
  int wafer_latency = 2;     ///< `wafer.latency`: vertical-bond cycles.
  int wafer_width_num = 1;   ///< `wafer.width`: token fraction `num/den`
  int wafer_width_den = 1;   ///< (1 = a full flit per cycle).

  /// Per-tenant keys of the multi-tenant serving mode (`tenant<i>.*`).
  /// Free-form strings here; trace::tenant_specs() parses and validates
  /// them against the declared `tenants` count at run time.
  struct TenantKeys {
    std::string workload;   ///< `tenant<i>.workload` (required per tenant).
    std::string placement;  ///< `tenant<i>.placement` (empty = contiguous).
    std::string chips;      ///< `tenant<i>.chips`: count or id list.
    KvMap opts;             ///< Remaining `tenant<i>.<opt>` workload options.
  };
  /// Concurrent tenant jobs (`tenants`); > 0 switches the scenario to one
  /// shared multi-tenant serving run (see trace/tenants.hpp) where each
  /// tenant's workload/placement comes from its `tenant<i>.*` keys.
  int tenants = 0;
  /// `tenants.isolation`: also run each tenant alone on its placement to
  /// report interference-vs-isolation ratios.
  bool tenants_isolation = true;
  std::vector<TenantKeys> tenant;  ///< Indexed by i, grown by set().
  std::string trace_file;          ///< `trace.file` (trace-replay input).
  std::uint64_t trace_seed = 1;    ///< `trace.seed` (request-reply arrivals).

  /// Explicit offered loads; when empty, linspace(max_rate, points) is used.
  std::vector<double> rates;
  double max_rate = 1.0;
  int points = 6;
  double stop_latency_factor = 8.0;  ///< See SweepConfig.
  unsigned threads = 1;  ///< Sweep-point parallelism (0 = auto; see set()).
  sim::SimConfig sim;                ///< Cycle counts, packet length, seed.

  /// Applies one `key = value` setting (the config/CLI vocabulary: label,
  /// topology, traffic, workload, mode, scheme, rates, max_rate, points,
  /// stop_factor, threads, warmup, measure, drain, pkt_len, seed,
  /// max_src_queue, the fault.* / trace.* keys, tenants,
  /// tenants.isolation, plus prefixed topo.* / traffic.* / workload.* /
  /// tenant<i>.* entries). Throws std::invalid_argument on unknown keys
  /// or malformed values.
  void set(const std::string& key, const std::string& value);

  /// Serializes every setting back to the config vocabulary; a spec
  /// round-trips through from_kv(to_kv()).
  [[nodiscard]] KvMap to_kv() const;
  /// to_kv() rendered as `key = value` lines (valid scenario-file input).
  [[nodiscard]] std::string to_config() const;
  static ScenarioSpec from_kv(const KvMap& kv);

  [[nodiscard]] std::vector<double> effective_rates() const;
  [[nodiscard]] TopoConfig topo_config() const {
    // A timeline needs the fault-tolerant build even when cycle 0 is
    // fault-free: failures arrive while the simulation runs.
    return TopoConfig{topo, mode, scheme,
                      fault.active() || fault.has_timeline()};
  }
};

/// The non-prefixed keys ScenarioSpec::set understands (for flag warnings).
const std::vector<std::string>& scenario_keys();

/// Documentation row of one scenario key (or one prefix family like
/// `topo.<param>`), the source of the generated key reference. Defaults
/// are rendered from ScenarioSpec{}/SimConfig{} so the reference cannot
/// drift from the code.
struct ScenarioKeyDoc {
  std::string key;
  std::string meaning;
  std::string def;
};
const std::vector<ScenarioKeyDoc>& scenario_key_docs();

/// Builds a spec from parsed CLI flags. Keys that are not scenario keys are
/// appended to `unused` (when given) instead of throwing, so drivers can
/// consume their own flags and warn about the rest.
ScenarioSpec spec_from_cli(const Cli& cli, const ScenarioSpec& defaults = {},
                           std::vector<std::string>* unused = nullptr);

/// Parses the scenario-file format: `key = value` lines, blank lines and
/// full-line #/; comments ignored. Each optional `[series NAME]` section
/// starts a new series from the shared base (the keys above the FIRST
/// section); sections are independent of one another. With no sections the
/// file describes a single spec. Throws on syntax errors.
std::vector<ScenarioSpec> parse_scenario_text(
    const std::string& text, const ScenarioSpec& defaults = {});
std::vector<ScenarioSpec> load_scenario_file(
    const std::string& path, const ScenarioSpec& defaults = {});

/// One-shot build of the spec's network (registry lookup + overrides).
/// When spec.fault is active, the build is fault-tolerant and the faults
/// are injected (deterministically, spec.fault.seed) before returning.
void build_network(sim::Network& net, const ScenarioSpec& spec);
/// The spec's two factories, for composing with run_sweep directly.
NetFactory net_factory(const ScenarioSpec& spec);
TrafficFactory traffic_factory(const ScenarioSpec& spec);

/// Runs the spec's sweep through the registries (label, net, traffic,
/// rates, sim config all from the spec). Requires a rate-sweep spec
/// (workload empty).
SweepSeries run_scenario(const ScenarioSpec& spec);

/// One labelled closed-loop workload run (see workload::WorkloadResult).
struct WorkloadRun {
  std::string label;
  std::string workload;
  workload::WorkloadResult result;
};

/// Builds the runner config from spec.sim + the runner keys in
/// spec.workload_opts (`workload.flit_bytes` / `.freq_ghz` /
/// `.max_cycles`). When `gen_opts` is given it receives the remaining
/// generator options. Shared by the single-workload and multi-tenant run
/// paths.
workload::WorkloadRunConfig workload_run_config(const ScenarioSpec& spec,
                                                KvMap* gen_opts = nullptr);

/// Runs the spec's closed-loop workload (workload must be non-empty): the
/// generator is a WorkloadRegistry lookup on spec.workload; the runner
/// keys `workload.flit_bytes` / `workload.freq_ghz` / `workload.max_cycles`
/// are consumed here and the rest of workload_opts goes to the generator.
WorkloadRun run_workload_scenario(const ScenarioSpec& spec);

/// Prints a workload run (summary line + per-phase completion table) and
/// appends its CSV row ("series,workload,chips,messages,packets,flits,
/// cycles,gbps_per_chip,avg_msg_cycles,completed").
void print_workload(const WorkloadRun& run);
void append_workload_csv(CsvWriter& csv, const WorkloadRun& run);
const std::vector<std::string>& workload_csv_header();

/// Runs several specs as one experiment, `threads` series in flight at a
/// time on a thread pool (each series runs its own sweep serially, keeping
/// per-series early-stop semantics). Results are in spec order.
std::vector<SweepSeries> run_scenarios(const std::vector<ScenarioSpec>& specs,
                                       unsigned threads);

}  // namespace sldf::core
