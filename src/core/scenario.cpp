#include "core/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "sim/network.hpp"
#include "topo/plane_set.hpp"
#include "topo/wafer_stack.hpp"
#include "traffic/pattern.hpp"
#include "workload/registry.hpp"

namespace sldf::core {

namespace {

std::string format_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

long to_long(const std::string& key, const std::string& value) {
  long v = 0;
  if (!Cli::parse_long(value, v))
    throw std::invalid_argument("scenario key '" + key +
                                "' expects an integer, got '" + value + "'");
  return v;
}

double to_double(const std::string& key, const std::string& value) {
  double v = 0.0;
  if (!Cli::parse_double(value, v))
    throw std::invalid_argument("scenario key '" + key +
                                "' expects a number, got '" + value + "'");
  return v;
}

std::vector<double> to_rates(const std::string& value) {
  std::vector<double> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = Cli::trim(item);
    if (item.empty()) continue;
    out.push_back(to_double("rates", item));
  }
  return out;
}

std::vector<ChipId> to_chips(const std::string& value) {
  std::vector<ChipId> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = Cli::trim(item);
    if (item.empty()) continue;
    const long v = to_long("fault.chips", item);
    if (v < 0)
      throw std::invalid_argument(
          "scenario key 'fault.chips' expects non-negative chip ids");
    out.push_back(static_cast<ChipId>(v));
  }
  return out;
}

}  // namespace

void ScenarioSpec::set(const std::string& key, const std::string& value) {
  if (key.rfind("topo.", 0) == 0) {
    topo[key.substr(5)] = value;
    return;
  }
  if (key.rfind("traffic.", 0) == 0) {
    traffic_opts[key.substr(8)] = value;
    return;
  }
  if (key.rfind("workload.", 0) == 0) {
    workload_opts[key.substr(9)] = value;
    return;
  }
  // tenant<i>.<field>: auto-grows the tenant vector, so keys apply in any
  // order (KvMap iteration delivers tenant0.* before the `tenants` count).
  if (key.rfind("tenant", 0) == 0 && key.size() > 6 &&
      key[6] >= '0' && key[6] <= '9') {
    std::size_t pos = 6;
    while (pos < key.size() && key[pos] >= '0' && key[pos] <= '9') ++pos;
    if (pos >= key.size() || key[pos] != '.' || pos + 1 == key.size())
      throw std::invalid_argument("scenario key '" + key +
                                  "' expects tenant<i>.<field>");
    const auto idx =
        static_cast<std::size_t>(to_long(key, key.substr(6, pos - 6)));
    if (idx >= 64)
      throw std::invalid_argument("scenario key '" + key +
                                  "': tenant index must be < 64");
    const std::string field = key.substr(pos + 1);
    if (tenant.size() <= idx) tenant.resize(idx + 1);
    TenantKeys& t = tenant[idx];
    if (field == "workload") {
      t.workload = value;
    } else if (field == "placement") {
      t.placement = value;
    } else if (field == "chips") {
      t.chips = value;
    } else {
      t.opts[field] = value;
    }
    return;
  }
  // The fault.* family is typed here (not a pass-through map): the keys are
  // few and validation should fail at parse time, not at build time.
  if (key == "fault.rate") {
    const double r = to_double(key, value);
    if (r < 0.0 || r > 1.0)
      throw std::invalid_argument(
          "scenario key 'fault.rate' expects a fraction in [0, 1]");
    fault.rate = r;
    return;
  }
  if (key == "fault.kind") {
    fault.kind = topo::parse_fault_kind(value);
    return;
  }
  if (key == "fault.seed") {
    fault.seed = static_cast<std::uint64_t>(to_long(key, value));
    return;
  }
  if (key == "fault.chips") {
    fault.chips = to_chips(value);
    return;
  }
  if (key == "fault.events") {
    // Parse now so a malformed timeline fails at config-read time with the
    // typed FaultError message; the string is kept and re-resolved against
    // the finalized network in build_network().
    topo::parse_fault_events(value);
    fault.events = value;
    return;
  }
  if (key == "fault.schedule") {
    fault.schedule = value;  // file existence/contents checked at build time
    return;
  }
  if (key == "fault.rescue") {
    const long n = to_long(key, value);
    if (n != 0 && n != 1)
      throw std::invalid_argument(
          "scenario key 'fault.rescue' expects 0 or 1");
    fault.rescue = n != 0;
    return;
  }
  if (key == "fault.plane") {
    const long n = to_long(key, value);
    if (n < -1)
      throw std::invalid_argument(
          "scenario key 'fault.plane' expects a plane index >= 0, or -1 "
          "for all planes");
    fault.plane = static_cast<int>(n);
    return;
  }
  if (key == "plane.count") {
    const long n = to_long(key, value);
    if (n < 1)
      throw std::invalid_argument(
          "scenario key 'plane.count' expects a count >= 1");
    plane_count = static_cast<int>(n);
    return;
  }
  if (key == "plane.mix") {
    plane_mix.clear();
    std::stringstream ms(value);
    std::string item;
    while (std::getline(ms, item, ',')) {
      item = Cli::trim(item);
      if (item.empty())
        throw std::invalid_argument(
            "scenario key 'plane.mix' has an empty topology name");
      plane_mix.push_back(item);
    }
    if (plane_mix.empty())
      throw std::invalid_argument(
          "scenario key 'plane.mix' expects comma-separated topology names");
    return;
  }
  if (key == "plane.policy") {
    plane_policy = route::parse_plane_policy(value);
    return;
  }
  if (key == "wafer.count") {
    const long n = to_long(key, value);
    if (n < 1)
      throw std::invalid_argument(
          "scenario key 'wafer.count' expects a count >= 1");
    wafer_count = static_cast<int>(n);
    return;
  }
  if (key == "wafer.latency") {
    const long n = to_long(key, value);
    if (n < 1)
      throw std::invalid_argument(
          "scenario key 'wafer.latency' expects a cycle count >= 1");
    wafer_latency = static_cast<int>(n);
    return;
  }
  if (key == "wafer.width") {
    // A token fraction: `num/den` or a plain integer multiplier.
    long num = 0, den = 1;
    const auto slash = value.find('/');
    const bool ok =
        slash == std::string::npos
            ? Cli::parse_long(Cli::trim(value), num)
            : Cli::parse_long(Cli::trim(value.substr(0, slash)), num) &&
                  Cli::parse_long(Cli::trim(value.substr(slash + 1)), den);
    if (!ok || num < 1 || den < 1)
      throw std::invalid_argument(
          "scenario key 'wafer.width' expects a positive width `N` or "
          "fraction `N/D`, got '" + value + "'");
    wafer_width_num = static_cast<int>(num);
    wafer_width_den = static_cast<int>(den);
    return;
  }
  if (key == "trace.file") {
    trace_file = value;
    return;
  }
  if (key == "trace.seed") {
    trace_seed = static_cast<std::uint64_t>(to_long(key, value));
    return;
  }
  if (key == "tenants") {
    const long n = to_long(key, value);
    if (n < 0)
      throw std::invalid_argument(
          "scenario key 'tenants' expects a count >= 0");
    tenants = static_cast<int>(n);
    return;
  }
  if (key == "tenants.isolation") {
    const long n = to_long(key, value);
    if (n != 0 && n != 1)
      throw std::invalid_argument(
          "scenario key 'tenants.isolation' expects 0 or 1");
    tenants_isolation = n != 0;
    return;
  }
  if (key == "label") {
    label = value;
  } else if (key == "topology") {
    topology = value;
  } else if (key == "traffic") {
    traffic = value;
  } else if (key == "workload") {
    workload = value;
  } else if (key == "mode") {
    mode = route::parse_route_mode(value);
  } else if (key == "scheme") {
    scheme = route::parse_vc_scheme(value);
  } else if (key == "rates") {
    rates = to_rates(value);
  } else if (key == "max_rate") {
    max_rate = to_double(key, value);
  } else if (key == "points") {
    points = static_cast<int>(to_long(key, value));
  } else if (key == "stop_factor") {
    stop_latency_factor = to_double(key, value);
  } else if (key == "threads") {
    // Sweep-point parallelism: a count, or "auto"/0 for hardware concurrency.
    if (value == "auto") {
      threads = 0;
    } else {
      const long n = to_long(key, value);
      if (n < 0)
        throw std::invalid_argument(
            "scenario key 'threads' expects a count >= 0 or 'auto'");
      threads = static_cast<unsigned>(n);
    }
  } else if (key == "shards") {
    // Intra-simulation engine shards: a count, or "auto"/0 to defer to the
    // SLDF_SHARDS environment variable (sim::resolve_shards). Orthogonal
    // to `threads`: threads parallelizes across sweep points, shards
    // parallelizes inside each simulation — results are bit-identical
    // either way.
    if (value == "auto") {
      sim.shards = 0;
    } else {
      const long n = to_long(key, value);
      if (n < 0)
        throw std::invalid_argument(
            "scenario key 'shards' expects a count >= 0 or 'auto'");
      sim.shards = static_cast<int>(n);
    }
  } else if (key == "warmup") {
    sim.warmup = to_long(key, value);
  } else if (key == "measure") {
    sim.measure = to_long(key, value);
  } else if (key == "drain") {
    sim.drain = to_long(key, value);
  } else if (key == "pkt_len") {
    sim.pkt_len = static_cast<int>(to_long(key, value));
  } else if (key == "seed") {
    sim.seed = static_cast<std::uint64_t>(to_long(key, value));
  } else if (key == "max_src_queue") {
    sim.max_src_queue = static_cast<int>(to_long(key, value));
  } else {
    throw std::invalid_argument("unknown scenario key '" + key + "'");
  }
}

KvMap ScenarioSpec::to_kv() const {
  KvMap kv;
  kv["label"] = label;
  kv["topology"] = topology;
  kv["traffic"] = traffic;
  if (!workload.empty()) kv["workload"] = workload;
  kv["mode"] = route::to_string(mode);
  kv["scheme"] = route::to_string(scheme);
  if (!rates.empty()) {
    std::string joined;
    for (double r : rates) {
      if (!joined.empty()) joined += ",";
      joined += format_num(r);
    }
    kv["rates"] = joined;
  } else {
    kv["max_rate"] = format_num(max_rate);
    kv["points"] = std::to_string(points);
  }
  kv["stop_factor"] = format_num(stop_latency_factor);
  kv["threads"] = threads == 0 ? "auto" : std::to_string(threads);
  kv["shards"] = sim.shards == 0 ? "auto" : std::to_string(sim.shards);
  kv["warmup"] = std::to_string(sim.warmup);
  kv["measure"] = std::to_string(sim.measure);
  kv["drain"] = std::to_string(sim.drain);
  kv["pkt_len"] = std::to_string(sim.pkt_len);
  kv["seed"] = std::to_string(sim.seed);
  kv["max_src_queue"] = std::to_string(sim.max_src_queue);
  // Fault keys serialize only when set, so fault-free specs round-trip to
  // fault-free configs.
  if (fault.rate > 0.0) kv["fault.rate"] = format_num(fault.rate);
  if (fault.kind != topo::FaultKind::Any)
    kv["fault.kind"] = topo::to_string(fault.kind);
  if (fault.seed != topo::FaultSpec{}.seed)
    kv["fault.seed"] = std::to_string(fault.seed);
  if (!fault.chips.empty()) {
    std::string joined;
    for (const ChipId c : fault.chips) {
      if (!joined.empty()) joined += ",";
      joined += std::to_string(c);
    }
    kv["fault.chips"] = joined;
  }
  if (!fault.events.empty()) kv["fault.events"] = fault.events;
  if (!fault.schedule.empty()) kv["fault.schedule"] = fault.schedule;
  if (!fault.rescue) kv["fault.rescue"] = "0";
  if (fault.plane >= 0) kv["fault.plane"] = std::to_string(fault.plane);
  // Plane keys serialize only when engaged (count 0 = classic build path).
  if (plane_count > 0) {
    kv["plane.count"] = std::to_string(plane_count);
    kv["plane.policy"] = std::string(route::to_string(plane_policy));
    if (!plane_mix.empty()) {
      std::string joined;
      for (const std::string& t : plane_mix) {
        if (!joined.empty()) joined += ",";
        joined += t;
      }
      kv["plane.mix"] = joined;
    }
  }
  // Wafer keys serialize only when engaged (count 0 = classic build path).
  if (wafer_count > 0) {
    kv["wafer.count"] = std::to_string(wafer_count);
    const ScenarioSpec defaults;
    if (wafer_latency != defaults.wafer_latency)
      kv["wafer.latency"] = std::to_string(wafer_latency);
    if (wafer_width_num != defaults.wafer_width_num ||
        wafer_width_den != defaults.wafer_width_den)
      kv["wafer.width"] = wafer_width_den == 1
                              ? std::to_string(wafer_width_num)
                              : std::to_string(wafer_width_num) + "/" +
                                    std::to_string(wafer_width_den);
  }
  // Tenant/trace keys serialize only when set, mirroring the fault keys.
  if (tenants > 0) kv["tenants"] = std::to_string(tenants);
  if (!tenants_isolation) kv["tenants.isolation"] = "0";
  for (std::size_t i = 0; i < tenant.size(); ++i) {
    const std::string pfx = "tenant" + std::to_string(i) + ".";
    const TenantKeys& t = tenant[i];
    if (!t.workload.empty()) kv[pfx + "workload"] = t.workload;
    if (!t.placement.empty()) kv[pfx + "placement"] = t.placement;
    if (!t.chips.empty()) kv[pfx + "chips"] = t.chips;
    for (const auto& [k, v] : t.opts) kv[pfx + k] = v;
  }
  if (!trace_file.empty()) kv["trace.file"] = trace_file;
  if (trace_seed != ScenarioSpec{}.trace_seed)
    kv["trace.seed"] = std::to_string(trace_seed);
  for (const auto& [k, v] : topo) kv["topo." + k] = v;
  for (const auto& [k, v] : traffic_opts) kv["traffic." + k] = v;
  for (const auto& [k, v] : workload_opts) kv["workload." + k] = v;
  return kv;
}

std::string ScenarioSpec::to_config() const {
  std::string out;
  for (const auto& [k, v] : to_kv()) out += k + " = " + v + "\n";
  return out;
}

ScenarioSpec ScenarioSpec::from_kv(const KvMap& kv) {
  ScenarioSpec s;
  for (const auto& [k, v] : kv) s.set(k, v);
  return s;
}

std::vector<double> ScenarioSpec::effective_rates() const {
  if (!rates.empty()) return rates;
  return linspace_rates(max_rate, points);
}

const std::vector<ScenarioKeyDoc>& scenario_key_docs() {
  // The one table every rendering of the key vocabulary derives from:
  // scenario_keys() (flag recognition) and the generated README reference
  // (core::render_scenario_reference). Prefix families carry a '<' in the
  // key and are excluded from scenario_keys(). Defaults are rendered from
  // a default-constructed spec so they cannot drift from the code.
  static const std::vector<ScenarioKeyDoc> docs = [] {
    const ScenarioSpec d;
    const auto num = [](double v) { return format_num(v); };
    const auto integer = [](auto v) { return std::to_string(v); };
    return std::vector<ScenarioKeyDoc>{
        {"label", "Series label in tables/CSV", d.label},
        {"topology", "Topology registry name (see Topologies)", d.topology},
        {"topo.<param>",
         "Topology parameter override, e.g. `topo.g = 15` (see Topologies)",
         "preset values"},
        {"mode", "Routing: `minimal` \\| `valiant` \\| `adaptive`",
         std::string(route::to_string(d.mode))},
        {"scheme", "VC scheme: `baseline` \\| `reduced` \\| `reduced-safe`",
         std::string(route::to_string(d.scheme))},
        {"traffic", "Traffic registry name (see Traffic patterns)",
         d.traffic},
        {"traffic.<opt>",
         "Traffic pattern option, e.g. `traffic.scope = wgroup` (see "
         "Traffic patterns)",
         "pattern defaults"},
        {"workload",
         "Workload registry name; switches to one closed-loop "
         "message-level run (see Workloads)",
         "unset (rate sweep)"},
        {"workload.<opt>",
         "Workload generator/runner option, e.g. `workload.kib = 64` (see "
         "Workloads)",
         "workload defaults"},
        {"rates", "Explicit offered loads, comma-separated (rate sweeps)",
         "unset"},
        {"max_rate", "With `points`, linspace(0, max] when `rates` is unset",
         num(d.max_rate)},
        {"points", "Sweep points when `rates` is unset", integer(d.points)},
        {"stop_factor",
         "Early-stop when latency exceeds this x zero-load latency",
         num(d.stop_latency_factor)},
        {"threads",
         "Sweep-point parallelism within one series (`auto`/0 = hardware)",
         integer(d.threads)},
        {"shards",
         "Intra-simulation engine shards — N threads per simulation, "
         "bit-identical results for every N (`auto`/0 = `SLDF_SHARDS` env "
         "or 1)",
         "auto"},
        {"warmup", "Warmup cycles (Table IV: 5000)", integer(d.sim.warmup)},
        {"measure", "Measured cycles (Table IV: 10000)",
         integer(d.sim.measure)},
        {"drain", "Extra cycles to let measured packets land",
         integer(d.sim.drain)},
        {"pkt_len", "Flits per packet", integer(d.sim.pkt_len)},
        {"seed", "Base RNG seed", integer(d.sim.seed)},
        {"max_src_queue", "Per-node source-queue cap (packets)",
         integer(d.sim.max_src_queue)},
        {"fault.rate",
         "Fraction of candidate cables to fail (deterministic, seeded; see "
         "Resilience)",
         num(d.fault.rate)},
        {"fault.kind",
         "Failed-link class: `any` \\| `intra` \\| `local` \\| `global`",
         std::string(topo::to_string(d.fault.kind))},
        {"fault.seed", "Fault-set RNG seed (independent of `seed`)",
         integer(d.fault.seed)},
        {"fault.chips", "Chips to fail entirely, comma-separated ids",
         "unset"},
        {"fault.events",
         "Online fault timeline, `fail|repair@<cycle>:<kind>=<rate>` or "
         "`...:chip<N>`, `;`-separated (see Resilience)",
         "unset"},
        {"fault.schedule",
         "Fault-timeline file (`sldf-faults 1` format); exclusive with "
         "`fault.events`",
         "unset"},
        {"fault.rescue",
         "Retransmit packets torn by an online failure (`0`: drop and "
         "count them)",
         d.fault.rescue ? "1" : "0"},
        {"fault.plane",
         "Restrict cable failures to one plane of a multi-plane fabric "
         "(`-1` = all planes; `fault.chips` always spans planes)",
         "-1 (all planes)"},
        {"plane.count",
         "Independent fabric planes (rails) sharing the logical chips; "
         "packets pick a plane at injection (see Multi-plane fabrics)",
         "unset (classic single-fabric build)"},
        {"plane.mix",
         "Per-plane topology registry names, comma-separated (length = "
         "`plane.count`)",
         "`plane.count` copies of `topology`"},
        {"plane.policy",
         "Plane selection: `hash` \\| `rr` \\| `adaptive` \\| `collective`",
         std::string(route::to_string(d.plane_policy))},
        {"wafer.count",
         "Wafer-on-wafer stack depth: that many copies of `topology` bonded "
         "by vertical inter-wafer cables, one vertical hop max (see "
         "Wafer stacks)",
         "unset (classic single-fabric build)"},
        {"wafer.latency", "Vertical-bond channel latency, cycles",
         integer(d.wafer_latency)},
        {"wafer.width",
         "Vertical-bond token width, `N` or fraction `N/D` of a flit per "
         "cycle",
         integer(d.wafer_width_num)},
        {"tenants",
         "Concurrent tenant jobs; > 0 switches to one shared multi-tenant "
         "serving run (see Multi-tenancy)",
         "0 (single job)"},
        {"tenants.isolation",
         "Also run each tenant alone on its placement and report the "
         "interference ratio (`0` disables the baselines)",
         d.tenants_isolation ? "1" : "0"},
        {"tenant<i>.workload",
         "Tenant i's workload registry name (required for each tenant)",
         "unset"},
        {"tenant<i>.placement",
         "Tenant i's chip placement: `contiguous` \\| `scattered`",
         "contiguous"},
        {"tenant<i>.chips",
         "Tenant i's chips: a count to allocate, or explicit "
         "comma-separated ids",
         "unset"},
        {"tenant<i>.<opt>",
         "Workload option for tenant i, e.g. `tenant0.kib = 64` (see "
         "Workloads)",
         "workload defaults"},
        {"trace.file",
         "Trace file the `trace-replay` workload replays (see Multi-"
         "tenancy)",
         "unset"},
        {"trace.seed",
         "Seed for synthesized `request-reply` arrivals (independent of "
         "`seed`)",
         integer(d.trace_seed)},
    };
  }();
  return docs;
}

const std::vector<std::string>& scenario_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> out;
    for (const auto& d : scenario_key_docs())
      if (d.key.find('<') == std::string::npos) out.push_back(d.key);
    return out;
  }();
  return keys;
}

ScenarioSpec spec_from_cli(const Cli& cli, const ScenarioSpec& defaults,
                           std::vector<std::string>* unused) {
  ScenarioSpec s = defaults;
  for (const auto& [key, value] : cli.entries()) {
    const bool prefixed = key.rfind("topo.", 0) == 0 ||
                          key.rfind("traffic.", 0) == 0 ||
                          key.rfind("workload.", 0) == 0 ||
                          key.rfind("fault.", 0) == 0 ||
                          key.rfind("plane.", 0) == 0 ||
                          key.rfind("wafer.", 0) == 0 ||
                          key.rfind("trace.", 0) == 0 ||
                          key.rfind("tenant", 0) == 0;
    const auto& keys = scenario_keys();
    const bool known =
        prefixed || std::find(keys.begin(), keys.end(), key) != keys.end();
    if (!known) {
      if (unused) unused->push_back(key);
      continue;
    }
    s.set(key, value);
  }
  return s;
}

std::vector<ScenarioSpec> parse_scenario_text(const std::string& text,
                                              const ScenarioSpec& defaults) {
  ScenarioSpec base = defaults;
  std::vector<ScenarioSpec> series;
  ScenarioSpec* current = &base;
  // Keys already set in the current section (base or one [series]): a
  // repeat within one section is almost always a typo, so it warns (once
  // per key) instead of silently letting the last value win. A series key
  // overriding a base key is the intended layering and stays silent.
  std::set<std::string> seen;
  std::set<std::string> warned;

  std::stringstream ss(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(ss, raw)) {
    ++lineno;
    const std::string line = Cli::trim(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::invalid_argument("scenario file line " +
                                    std::to_string(lineno) +
                                    ": unterminated section header");
      std::string name = Cli::trim(line.substr(1, line.size() - 2));
      if (name.rfind("series", 0) == 0) name = Cli::trim(name.substr(6));
      if (name.empty())
        throw std::invalid_argument("scenario file line " +
                                    std::to_string(lineno) +
                                    ": empty series name");
      series.push_back(base);
      series.back().label = name;
      current = &series.back();
      seen.clear();
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("scenario file line " +
                                  std::to_string(lineno) +
                                  ": expected 'key = value', got '" + line +
                                  "'");
    const std::string key = Cli::trim(line.substr(0, eq));
    const std::string value = Cli::trim(line.substr(eq + 1));
    if (key.empty())
      throw std::invalid_argument("scenario file line " +
                                  std::to_string(lineno) + ": empty key");
    if (!seen.insert(key).second && warned.insert(key).second)
      log_warn("scenario file line %d: key '%s' repeated in this section "
               "(last value wins)",
               lineno, key.c_str());
    try {
      current->set(key, value);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("scenario file line " +
                                  std::to_string(lineno) + ": " + e.what());
    }
  }
  if (series.empty()) series.push_back(base);
  return series;
}

std::vector<ScenarioSpec> load_scenario_file(const std::string& path,
                                             const ScenarioSpec& defaults) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("cannot open scenario file: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return parse_scenario_text(ss.str(), defaults);
}

void build_network(sim::Network& net, const ScenarioSpec& spec) {
  if (spec.wafer_count > 0 && spec.plane_count > 0)
    throw std::invalid_argument(
        "scenario sets both wafer.count and plane.count; planes and wafers "
        "are mutually exclusive axes of one network");
  if (spec.wafer_count > 0) {
    // Wafer-on-wafer stack: every wafer wires its own copy of `topology`
    // through the registry, then the WaferStack layer bonds the stack
    // columns and seals the partition. wafer.count = 1 goes through here
    // too — the structural result is bit-identical to the classic path,
    // and tests hold it to that.
    const TopoConfig cfg = spec.topo_config();
    topo::build_wafer_stack(
        net, spec.wafer_count, spec.wafer_latency, spec.wafer_width_num,
        spec.wafer_width_den, [&](int /*wafer*/, sim::Network& n) {
          return TopologyRegistry::instance().wire(spec.topology, n, cfg);
        });
  } else if (spec.plane_count > 0) {
    // Multi-plane build: every plane wires its own rail through the same
    // registry path (plane.mix picks per-plane presets; default = K copies
    // of `topology`), then the PlaneSet layer validates, aggregates, and
    // seals the partition. plane.count = 1 goes through here too — the
    // structural result is bit-identical to the classic path, and tests
    // hold it to that.
    std::vector<std::string> names = spec.plane_mix;
    if (names.empty()) {
      names.assign(static_cast<std::size_t>(spec.plane_count),
                   spec.topology);
    } else if (static_cast<int>(names.size()) != spec.plane_count) {
      throw std::invalid_argument(
          "plane.mix names " + std::to_string(names.size()) +
          " topologies but plane.count is " +
          std::to_string(spec.plane_count));
    }
    const TopoConfig cfg = spec.topo_config();
    topo::build_plane_set(
        net, spec.plane_count, static_cast<int>(spec.plane_policy),
        [&](int plane, sim::Network& n) {
          return TopologyRegistry::instance().wire(
              names[static_cast<std::size_t>(plane)], n, cfg);
        });
  } else {
    TopologyRegistry::instance().build(spec.topology, net,
                                       spec.topo_config());
  }
  if (spec.fault.active()) {
    const topo::FaultReport rep = topo::inject_faults(net, spec.fault);
    log_debug("%s", rep.to_string().c_str());
  }
  if (spec.fault.has_timeline()) {
    if (!spec.fault.events.empty() && !spec.fault.schedule.empty())
      throw topo::FaultError(
          "scenario sets both fault.events and fault.schedule; give the "
          "timeline one way");
    // A timeline over a fault-free cycle-0 state still needs the mask
    // armed: fault steps rewrite live port records at runtime.
    if (!spec.fault.active()) net.enable_fault_mask();
    const topo::FaultTimeline tl =
        !spec.fault.events.empty()
            ? topo::parse_fault_events(spec.fault.events)
            : topo::load_fault_schedule(spec.fault.schedule);
    auto sched = std::make_shared<sim::FaultSchedule>(
        topo::resolve_timeline(net, tl, spec.fault));
    sched->rescue = spec.fault.rescue;
    net.set_fault_schedule(std::move(sched));
    net.capture_fault_baseline();
  }
}

NetFactory net_factory(const ScenarioSpec& spec) {
  return [spec](sim::Network& net) { build_network(net, spec); };
}

TrafficFactory traffic_factory(const ScenarioSpec& spec) {
  const std::string kind = spec.traffic;
  const KvMap opts = spec.traffic_opts;
  return [kind, opts](const sim::Network& net) {
    return traffic::make_pattern(kind, net, opts);
  };
}

SweepSeries run_scenario(const ScenarioSpec& spec) {
  if (!spec.workload.empty())
    throw std::invalid_argument(
        "run_scenario: spec selects workload '" + spec.workload +
        "' — use run_workload_scenario()");
  SweepConfig cfg;
  cfg.rates = spec.effective_rates();
  cfg.base = spec.sim;
  cfg.stop_latency_factor = spec.stop_latency_factor;
  cfg.threads = spec.threads;
  return run_sweep(spec.label, net_factory(spec), traffic_factory(spec), cfg);
}

workload::WorkloadRunConfig workload_run_config(const ScenarioSpec& spec,
                                                KvMap* gen_opts) {
  // Split the option map: runner/reporting keys are consumed here, the
  // rest goes to the generator (which rejects leftovers itself).
  const std::string ctx = spec.workload.empty()
                              ? std::string("workload runner")
                              : "workload '" + spec.workload + "'";
  workload::WorkloadRunConfig rc;
  rc.sim = spec.sim;
  if (gen_opts) *gen_opts = spec.workload_opts;
  KvReader o(spec.workload_opts, ctx);
  rc.flit_bytes = o.get_double("flit_bytes", rc.flit_bytes);
  if (!(rc.flit_bytes > 0.0))
    throw std::invalid_argument(ctx + ": flit_bytes must be > 0");
  rc.freq_ghz = o.get_double("freq_ghz", rc.freq_ghz);
  if (!(rc.freq_ghz > 0.0))
    throw std::invalid_argument(ctx + ": freq_ghz must be > 0");
  if (const std::string* v = o.take("max_cycles")) {
    long mc = 0;
    if (!Cli::parse_long(*v, mc) || mc <= 0)
      throw std::invalid_argument(ctx +
                                  ": option 'max_cycles' expects a "
                                  "positive cycle count, got '" +
                                  *v + "'");
    rc.max_cycles = static_cast<Cycle>(mc);
  }
  if (gen_opts)
    for (const auto& d : workload::runner_option_docs())
      gen_opts->erase(d.key);
  return rc;
}

WorkloadRun run_workload_scenario(const ScenarioSpec& spec) {
  if (spec.workload.empty())
    throw std::invalid_argument(
        "run_workload_scenario: spec has no workload key");

  KvMap gen_opts;
  const workload::WorkloadRunConfig rc = workload_run_config(spec, &gen_opts);

  sim::Network net;
  build_network(net, spec);
  workload::WorkloadEnv env;
  env.flit_bytes = rc.flit_bytes;
  env.trace_file = spec.trace_file;
  env.trace_seed = spec.trace_seed;
  const workload::WorkloadGraph graph =
      workload::make_workload(spec.workload, net, gen_opts, env);

  WorkloadRun run;
  run.label = spec.label;
  run.workload = spec.workload;
  run.result = workload::run_workload(net, graph, rc);
  return run;
}

void print_workload(const WorkloadRun& run) {
  const auto& r = run.result;
  std::printf("# %s (workload=%s)\n", run.label.c_str(),
              run.workload.c_str());
  std::printf("%-7s %-9s %-9s %-10s %-10s %-10s %-9s %-9s\n", "chips",
              "messages", "packets", "flits", "cycles", "GB/s/chip",
              "avg_msg", "completed");
  std::printf("%-7d %-9llu %-9llu %-10llu %-10llu %-10.4f %-9.1f %-9s\n",
              r.chips, static_cast<unsigned long long>(r.messages),
              static_cast<unsigned long long>(r.packets),
              static_cast<unsigned long long>(r.flits),
              static_cast<unsigned long long>(r.cycles), r.gbps_per_chip,
              r.avg_msg_cycles, r.completed ? "yes" : "no");
  // Phase table, elided in the middle when a collective has many steps.
  const std::size_t n = r.phases.size();
  if (n > 1) {
    std::printf("  %-7s %-10s %-9s %-10s\n", "phase", "complete", "msgs",
                "flits");
    constexpr std::size_t kHead = 6, kTail = 3;
    for (std::size_t i = 0; i < n; ++i) {
      if (n > kHead + kTail + 1 && i == kHead)
        std::printf("  ... %zu more phases ...\n", n - kHead - kTail);
      if (n > kHead + kTail + 1 && i >= kHead && i < n - kTail) continue;
      const auto& ph = r.phases[i];
      std::printf("  %-7zu %-10llu %-9llu %-10llu\n", i,
                  static_cast<unsigned long long>(ph.completed),
                  static_cast<unsigned long long>(ph.messages),
                  static_cast<unsigned long long>(ph.flits));
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

const std::vector<std::string>& workload_csv_header() {
  static const std::vector<std::string> header = {
      "series", "workload",      "chips",          "messages", "packets",
      "flits",  "cycles",        "gbps_per_chip",  "avg_msg_cycles",
      "completed"};
  return header;
}

void append_workload_csv(CsvWriter& csv, const WorkloadRun& run) {
  const auto& r = run.result;
  csv.row(std::vector<std::string>{
      run.label, run.workload, std::to_string(r.chips),
      std::to_string(r.messages), std::to_string(r.packets),
      std::to_string(r.flits), std::to_string(r.cycles),
      CsvWriter::format_num(r.gbps_per_chip),
      CsvWriter::format_num(r.avg_msg_cycles), r.completed ? "1" : "0"});
}

std::vector<SweepSeries> run_scenarios(const std::vector<ScenarioSpec>& specs,
                                       unsigned threads) {
  std::vector<SweepSeries> out(specs.size());
  ThreadPool::parallel_for(specs.size(), threads == 0 ? 1 : threads,
                           [&](std::size_t i) { out[i] = run_scenario(specs[i]); });
  return out;
}

}  // namespace sldf::core
