#include "core/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "sim/network.hpp"
#include "traffic/pattern.hpp"

namespace sldf::core {

namespace {

std::string format_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

long to_long(const std::string& key, const std::string& value) {
  long v = 0;
  if (!Cli::parse_long(value, v))
    throw std::invalid_argument("scenario key '" + key +
                                "' expects an integer, got '" + value + "'");
  return v;
}

double to_double(const std::string& key, const std::string& value) {
  double v = 0.0;
  if (!Cli::parse_double(value, v))
    throw std::invalid_argument("scenario key '" + key +
                                "' expects a number, got '" + value + "'");
  return v;
}

std::vector<double> to_rates(const std::string& value) {
  std::vector<double> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = Cli::trim(item);
    if (item.empty()) continue;
    out.push_back(to_double("rates", item));
  }
  return out;
}

}  // namespace

void ScenarioSpec::set(const std::string& key, const std::string& value) {
  if (key.rfind("topo.", 0) == 0) {
    topo[key.substr(5)] = value;
    return;
  }
  if (key.rfind("traffic.", 0) == 0) {
    traffic_opts[key.substr(8)] = value;
    return;
  }
  if (key == "label") {
    label = value;
  } else if (key == "topology") {
    topology = value;
  } else if (key == "traffic") {
    traffic = value;
  } else if (key == "mode") {
    mode = route::parse_route_mode(value);
  } else if (key == "scheme") {
    scheme = route::parse_vc_scheme(value);
  } else if (key == "rates") {
    rates = to_rates(value);
  } else if (key == "max_rate") {
    max_rate = to_double(key, value);
  } else if (key == "points") {
    points = static_cast<int>(to_long(key, value));
  } else if (key == "stop_factor") {
    stop_latency_factor = to_double(key, value);
  } else if (key == "threads") {
    // Sweep-point parallelism: a count, or "auto"/0 for hardware concurrency.
    if (value == "auto") {
      threads = 0;
    } else {
      const long n = to_long(key, value);
      if (n < 0)
        throw std::invalid_argument(
            "scenario key 'threads' expects a count >= 0 or 'auto'");
      threads = static_cast<unsigned>(n);
    }
  } else if (key == "warmup") {
    sim.warmup = to_long(key, value);
  } else if (key == "measure") {
    sim.measure = to_long(key, value);
  } else if (key == "drain") {
    sim.drain = to_long(key, value);
  } else if (key == "pkt_len") {
    sim.pkt_len = static_cast<int>(to_long(key, value));
  } else if (key == "seed") {
    sim.seed = static_cast<std::uint64_t>(to_long(key, value));
  } else if (key == "max_src_queue") {
    sim.max_src_queue = static_cast<int>(to_long(key, value));
  } else {
    throw std::invalid_argument("unknown scenario key '" + key + "'");
  }
}

KvMap ScenarioSpec::to_kv() const {
  KvMap kv;
  kv["label"] = label;
  kv["topology"] = topology;
  kv["traffic"] = traffic;
  kv["mode"] = route::to_string(mode);
  kv["scheme"] = route::to_string(scheme);
  if (!rates.empty()) {
    std::string joined;
    for (double r : rates) {
      if (!joined.empty()) joined += ",";
      joined += format_num(r);
    }
    kv["rates"] = joined;
  } else {
    kv["max_rate"] = format_num(max_rate);
    kv["points"] = std::to_string(points);
  }
  kv["stop_factor"] = format_num(stop_latency_factor);
  kv["threads"] = threads == 0 ? "auto" : std::to_string(threads);
  kv["warmup"] = std::to_string(sim.warmup);
  kv["measure"] = std::to_string(sim.measure);
  kv["drain"] = std::to_string(sim.drain);
  kv["pkt_len"] = std::to_string(sim.pkt_len);
  kv["seed"] = std::to_string(sim.seed);
  kv["max_src_queue"] = std::to_string(sim.max_src_queue);
  for (const auto& [k, v] : topo) kv["topo." + k] = v;
  for (const auto& [k, v] : traffic_opts) kv["traffic." + k] = v;
  return kv;
}

std::string ScenarioSpec::to_config() const {
  std::string out;
  for (const auto& [k, v] : to_kv()) out += k + " = " + v + "\n";
  return out;
}

ScenarioSpec ScenarioSpec::from_kv(const KvMap& kv) {
  ScenarioSpec s;
  for (const auto& [k, v] : kv) s.set(k, v);
  return s;
}

std::vector<double> ScenarioSpec::effective_rates() const {
  if (!rates.empty()) return rates;
  return linspace_rates(max_rate, points);
}

const std::vector<std::string>& scenario_keys() {
  static const std::vector<std::string> keys = {
      "label",   "topology", "traffic",     "mode",    "scheme",
      "rates",   "max_rate", "points",      "stop_factor", "threads",
      "warmup",  "measure",  "drain",       "pkt_len", "seed",
      "max_src_queue"};
  return keys;
}

ScenarioSpec spec_from_cli(const Cli& cli, const ScenarioSpec& defaults,
                           std::vector<std::string>* unused) {
  ScenarioSpec s = defaults;
  for (const auto& [key, value] : cli.entries()) {
    const bool prefixed =
        key.rfind("topo.", 0) == 0 || key.rfind("traffic.", 0) == 0;
    const auto& keys = scenario_keys();
    const bool known =
        prefixed || std::find(keys.begin(), keys.end(), key) != keys.end();
    if (!known) {
      if (unused) unused->push_back(key);
      continue;
    }
    s.set(key, value);
  }
  return s;
}

std::vector<ScenarioSpec> parse_scenario_text(const std::string& text,
                                              const ScenarioSpec& defaults) {
  ScenarioSpec base = defaults;
  std::vector<ScenarioSpec> series;
  ScenarioSpec* current = &base;

  std::stringstream ss(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(ss, raw)) {
    ++lineno;
    const std::string line = Cli::trim(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::invalid_argument("scenario file line " +
                                    std::to_string(lineno) +
                                    ": unterminated section header");
      std::string name = Cli::trim(line.substr(1, line.size() - 2));
      if (name.rfind("series", 0) == 0) name = Cli::trim(name.substr(6));
      if (name.empty())
        throw std::invalid_argument("scenario file line " +
                                    std::to_string(lineno) +
                                    ": empty series name");
      series.push_back(base);
      series.back().label = name;
      current = &series.back();
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("scenario file line " +
                                  std::to_string(lineno) +
                                  ": expected 'key = value', got '" + line +
                                  "'");
    const std::string key = Cli::trim(line.substr(0, eq));
    const std::string value = Cli::trim(line.substr(eq + 1));
    if (key.empty())
      throw std::invalid_argument("scenario file line " +
                                  std::to_string(lineno) + ": empty key");
    try {
      current->set(key, value);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("scenario file line " +
                                  std::to_string(lineno) + ": " + e.what());
    }
  }
  if (series.empty()) series.push_back(base);
  return series;
}

std::vector<ScenarioSpec> load_scenario_file(const std::string& path,
                                             const ScenarioSpec& defaults) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("cannot open scenario file: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return parse_scenario_text(ss.str(), defaults);
}

void build_network(sim::Network& net, const ScenarioSpec& spec) {
  TopologyRegistry::instance().build(spec.topology, net, spec.topo_config());
}

NetFactory net_factory(const ScenarioSpec& spec) {
  return [spec](sim::Network& net) { build_network(net, spec); };
}

TrafficFactory traffic_factory(const ScenarioSpec& spec) {
  const std::string kind = spec.traffic;
  const KvMap opts = spec.traffic_opts;
  return [kind, opts](const sim::Network& net) {
    return traffic::make_pattern(kind, net, opts);
  };
}

SweepSeries run_scenario(const ScenarioSpec& spec) {
  SweepConfig cfg;
  cfg.rates = spec.effective_rates();
  cfg.base = spec.sim;
  cfg.stop_latency_factor = spec.stop_latency_factor;
  cfg.threads = spec.threads;
  return run_sweep(spec.label, net_factory(spec), traffic_factory(spec), cfg);
}

std::vector<SweepSeries> run_scenarios(const std::vector<ScenarioSpec>& specs,
                                       unsigned threads) {
  std::vector<SweepSeries> out(specs.size());
  ThreadPool::parallel_for(specs.size(), threads == 0 ? 1 : threads,
                           [&](std::size_t i) { out[i] = run_scenario(specs[i]); });
  return out;
}

}  // namespace sldf::core
