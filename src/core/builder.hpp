// Convenience constructors and introspection for the evaluated networks.
#pragma once

#include <memory>
#include <string>

#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"

namespace sldf::core {

std::unique_ptr<sim::Network> make_network(const topo::SwlessParams& p);
std::unique_ptr<sim::Network> make_network(const topo::SwDragonflyParams& p);

struct NetworkCensus {
  std::size_t cores = 0;
  std::size_t io_converters = 0;
  std::size_t switches = 0;
  std::size_t chips = 0;
  std::size_t channels_by_type[kNumLinkTypes] = {};
  std::size_t channels_total = 0;
};

NetworkCensus census(const sim::Network& net);
std::string describe(const NetworkCensus& c);

}  // namespace sldf::core
