#include "core/builder.hpp"

#include "common/strfmt.hpp"

namespace sldf::core {

std::unique_ptr<sim::Network> make_network(const topo::SwlessParams& p) {
  auto net = std::make_unique<sim::Network>();
  topo::build_swless_dragonfly(*net, p);
  return net;
}

std::unique_ptr<sim::Network> make_network(const topo::SwDragonflyParams& p) {
  auto net = std::make_unique<sim::Network>();
  topo::build_sw_dragonfly(*net, p);
  return net;
}

NetworkCensus census(const sim::Network& net) {
  NetworkCensus c;
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    switch (net.router(static_cast<NodeId>(i)).kind) {
      case NodeKind::Core: ++c.cores; break;
      case NodeKind::IoConverter: ++c.io_converters; break;
      case NodeKind::Switch: ++c.switches; break;
    }
  }
  c.chips = net.num_chips();
  c.channels_total = net.num_channels();
  for (std::size_t i = 0; i < net.num_channels(); ++i)
    ++c.channels_by_type[static_cast<int>(
        net.chan(static_cast<ChanId>(i)).type)];
  return c;
}

std::string describe(const NetworkCensus& c) {
  std::string s = strf("cores=%zu io=%zu switches=%zu chips=%zu channels=%zu (",
                       c.cores, c.io_converters, c.switches, c.chips,
                       c.channels_total);
  for (int t = 0; t < kNumLinkTypes; ++t) {
    if (c.channels_by_type[t] == 0) continue;
    s += strf("%.*s:%zu ",
              static_cast<int>(to_string(static_cast<LinkType>(t)).size()),
              to_string(static_cast<LinkType>(t)).data(),
              c.channels_by_type[t]);
  }
  if (s.back() == ' ') s.pop_back();
  s += ")";
  return s;
}

}  // namespace sldf::core
