#include "core/docgen.hpp"

#include "core/registry.hpp"
#include "core/scenario.hpp"
#include "traffic/pattern.hpp"
#include "workload/registry.hpp"

namespace sldf::core {

namespace {

void render_options(std::string& out,
                    const std::vector<OptionDoc>& options) {
  for (const auto& o : options) {
    out += "  - `" + o.key + "` (" + o.type + ", default `" + o.def +
           "`) — " + o.help + "\n";
  }
}

template <typename Registry>
void render_registry(std::string& out, const Registry& reg) {
  for (const auto& name : reg.names()) {
    const RegistryDoc& doc = reg.doc(name);
    out += "- **`" + name + "`** — " + doc.summary + "\n";
    render_options(out, doc.options);
  }
}

}  // namespace

std::string render_scenario_reference() {
  std::string out;

  out += "### Scenario key reference\n\n";
  out += "| Key | Meaning | Default |\n| --- | --- | --- |\n";
  for (const auto& d : scenario_key_docs())
    out += "| `" + d.key + "` | " + d.meaning + " | `" + d.def + "` |\n";

  out += "\n### Topologies\n\n";
  out +=
      "Preset parameters are overridden per key with `topo.<param> = "
      "value`; defaults below are each preset's values.\n\n";
  render_registry(out, TopologyRegistry::instance());

  out += "\n### Traffic patterns\n\n";
  out += "Options are set with `traffic.<opt> = value`.\n\n";
  render_registry(out, traffic::TrafficRegistry::instance());

  out += "\n### Workloads\n\n";
  out +=
      "Closed-loop message-level workloads (`workload = <name>`); options "
      "are set with `workload.<opt> = value`. Every workload also accepts "
      "the runner keys:\n\n";
  render_options(out, workload::runner_option_docs());
  out += "\n";
  render_registry(out, workload::WorkloadRegistry::instance());

  return out;
}

}  // namespace sldf::core
