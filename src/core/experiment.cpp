#include "core/experiment.hpp"

#include <cstdio>
#include <thread>

#include "common/thread_pool.hpp"

namespace sldf::core {

unsigned resolve_threads(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<double> linspace_rates(double max, int n) {
  std::vector<double> r;
  r.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i)
    r.push_back(max * static_cast<double>(i) / static_cast<double>(n));
  return r;
}

SweepSeries run_sweep(const std::string& label, const NetFactory& make_net,
                      const TrafficFactory& make_traffic,
                      const SweepConfig& cfg) {
  SweepSeries series;
  series.label = label;
  const unsigned threads = resolve_threads(cfg.threads);

  if (threads <= 1) {
    // Serial: network, traffic, and engine context are built once and
    // reused across points, so later points allocate (almost) nothing.
    sim::Network net;
    make_net(net);
    auto traffic = make_traffic(net);
    sim::SimContext ctx;
    double zero_load = 0.0;
    for (std::size_t i = 0; i < cfg.rates.size(); ++i) {
      sim::SimConfig sc = cfg.base;
      sc.inj_rate_per_chip = cfg.rates[i];
      sc.seed = cfg.base.seed + i;
      SweepPoint pt;
      pt.rate = cfg.rates[i];
      pt.res = sim::run_sim(ctx, net, sc, *traffic);
      series.points.push_back(pt);
      if (i == 0) zero_load = pt.res.avg_latency;
      if (cfg.stop_latency_factor > 0 && zero_load > 0 &&
          pt.res.avg_latency > zero_load * cfg.stop_latency_factor)
        break;  // saturated: the paper's curves end here too
    }
    return series;
  }

  // Parallel: every point owns a freshly built network (deterministic).
  // Each task writes only its own series.points[i], so no locking is needed.
  series.points.resize(cfg.rates.size());
  ThreadPool::parallel_for(cfg.rates.size(), threads,
                           [&](std::size_t i) {
                             sim::Network net;
                             make_net(net);
                             auto traffic = make_traffic(net);
                             sim::SimConfig sc = cfg.base;
                             sc.inj_rate_per_chip = cfg.rates[i];
                             sc.seed = cfg.base.seed + i;
                             SweepPoint& pt = series.points[i];
                             pt.rate = cfg.rates[i];
                             pt.res = sim::run_sim(net, sc, *traffic);
                           });
  // Apply the early-stop rule post hoc for consistent output.
  if (cfg.stop_latency_factor > 0 && !series.points.empty()) {
    const double zero_load = series.points.front().res.avg_latency;
    std::size_t keep = series.points.size();
    for (std::size_t i = 0; i < series.points.size(); ++i) {
      if (zero_load > 0 &&
          series.points[i].res.avg_latency >
              zero_load * cfg.stop_latency_factor) {
        keep = i + 1;
        break;
      }
    }
    series.points.resize(keep);
  }
  return series;
}

void print_series(const SweepSeries& s) {
  std::printf("# %s\n", s.label.c_str());
  std::printf("%-10s %-12s %-12s %-10s %-8s\n", "offered", "avg_latency",
              "accepted", "p99", "drained");
  for (const auto& pt : s.points) {
    std::printf("%-10.4f %-12.2f %-12.4f %-10.1f %-8s\n", pt.rate,
                pt.res.avg_latency, pt.res.accepted, pt.res.p99_latency,
                pt.res.drained ? "yes" : "no");
  }
  std::printf("\n");
  std::fflush(stdout);
}

void append_series_csv(CsvWriter& csv, const SweepSeries& s) {
  for (const auto& pt : s.points) {
    csv.row(std::vector<std::string>{
        s.label, CsvWriter::format_num(pt.rate),
        CsvWriter::format_num(pt.res.avg_latency),
        CsvWriter::format_num(pt.res.accepted),
        CsvWriter::format_num(pt.res.p99_latency),
        CsvWriter::format_num(static_cast<double>(pt.res.delivered_measured)),
        pt.res.drained ? "1" : "0"});
  }
}

}  // namespace sldf::core
