// Latency-vs-injection sweep harness (the paper's figure methodology):
// for each offered load, run warmup + measurement and record average packet
// latency and accepted throughput. Sweeps stop early once the network is
// clearly saturated (latency blow-up) to save time — exactly where the
// paper's curves end.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "sim/simulator.hpp"

namespace sldf::core {

using NetFactory = std::function<void(sim::Network&)>;
using TrafficFactory =
    std::function<std::unique_ptr<sim::TrafficSource>(const sim::Network&)>;

struct SweepConfig {
  std::vector<double> rates;  ///< Offered loads, flits/cycle/chip.
  sim::SimConfig base;        ///< Cycle counts, packet length, seed.
  /// Stop the sweep once avg latency exceeds this multiple of the
  /// zero-load (first point) latency. 0 disables early stopping.
  double stop_latency_factor = 8.0;
  /// Number of worker threads; each builds its own network. 1 = serial
  /// (network + engine context built once and reused across points);
  /// 0 = auto (hardware concurrency).
  unsigned threads = 1;
};

struct SweepPoint {
  double rate = 0.0;
  sim::SimResult res;
};

struct SweepSeries {
  std::string label;
  std::vector<SweepPoint> points;
};

/// Runs one latency/throughput sweep.
SweepSeries run_sweep(const std::string& label, const NetFactory& make_net,
                      const TrafficFactory& make_traffic,
                      const SweepConfig& cfg);

/// Evenly spaced rates in (0, max]: {max/n, 2*max/n, ..., max}.
std::vector<double> linspace_rates(double max, int n);

/// Maps the thread-count convention (0 = auto) to a concrete count >= 1.
unsigned resolve_threads(unsigned threads);

/// Prints a series as an aligned table (offered, latency, accepted) and
/// optionally appends rows to a CSV ("series,offered,latency,accepted,...").
void print_series(const SweepSeries& s);
void append_series_csv(CsvWriter& csv, const SweepSeries& s);

}  // namespace sldf::core
