#include "core/params.hpp"

namespace sldf::core {

topo::SwlessParams radix16_swless() {
  topo::SwlessParams p;
  p.a = 2;
  p.b = 4;  // ab = 8 C-groups per W-group
  p.chip_gx = 2;
  p.chip_gy = 2;
  p.noc_x = 2;
  p.noc_y = 2;
  p.ports_per_chiplet = 6;  // n = 6 -> 1.5 links per chiplet edge
  p.local_ports = 7;
  p.global_ports = 5;  // h = 5 -> g = 8*5 + 1 = 41
  p.g = 0;
  return p;
}

topo::SwDragonflyParams radix16_swdf() {
  topo::SwDragonflyParams p;
  p.switches_per_group = 8;
  p.terminals_per_switch = 4;
  p.globals_per_switch = 5;  // 4 + 7 + 5 = radix 16
  p.groups = 0;              // 41
  return p;
}

topo::SwlessParams radix32_swless() {
  topo::SwlessParams p;
  p.a = 4;
  p.b = 4;  // ab = 16
  p.chip_gx = 4;
  p.chip_gy = 2;  // 8 chips per C-group, router mesh 8x4
  p.noc_x = 2;
  p.noc_y = 2;
  p.ports_per_chiplet = 8;  // 2 links per chiplet edge
  p.local_ports = 15;
  p.global_ports = 9;  // h = 9 -> g = 16*9 + 1 = 145
  p.g = 0;
  return p;
}

topo::SwDragonflyParams radix32_swdf() {
  topo::SwDragonflyParams p;
  p.switches_per_group = 16;
  p.terminals_per_switch = 8;
  p.globals_per_switch = 9;  // 8 + 15 + 9 = radix 32
  p.groups = 0;              // 145
  return p;
}

topo::SwlessParams case_study_swless() {
  topo::SwlessParams p;
  p.a = 4;
  p.b = 8;  // ab = 32
  p.chip_gx = 4;
  p.chip_gy = 4;  // m = 4 -> 16 chips per C-group
  p.noc_x = 2;
  p.noc_y = 2;
  p.ports_per_chiplet = 12;  // n = 12, k = 48
  p.local_ports = 31;
  p.global_ports = 17;  // h = 17 -> g = 32*17 + 1 = 545
  p.g = 0;
  return p;
}

}  // namespace sldf::core
