// Named closed-loop workload generators, mirroring the topology/traffic
// registries: a workload is selected from `sldf` as `workload = <name>`
// with `workload.<opt>` options, and a new workload is a registration plus
// a config file — not a new binary.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "workload/workload.hpp"

namespace sldf::workload {

/// Generator-independent context a factory needs to translate option
/// units into engine units (KiB -> flits). Packet chunking stays in the
/// runner (WorkloadRunConfig::sim.pkt_len); generators think in flits.
///
/// The tenant/trace fields thread scenario-level context into factories
/// without changing their signature: the multi-tenant runner sets `chips`
/// to the tenant's placement (generators restrict their chip_groups
/// partition to it), and the driver forwards the `trace.file` /
/// `trace.seed` scenario keys for the trace-backed workloads.
struct WorkloadEnv {
  double flit_bytes = 16.0;  ///< Payload bytes per flit.
  std::vector<ChipId> chips;  ///< Chips to span (empty = whole network).
  std::string trace_file;     ///< `trace.file`: trace-replay default input.
  std::uint64_t trace_seed = 1;  ///< `trace.seed`: request-reply arrivals.
};

/// Registry of named workload generators. Built-ins: "ring-allreduce",
/// "halving-doubling-allreduce", "tree-allreduce", "all-to-all",
/// "stencil-3d", plus the trace-backed "trace-replay" (replays a
/// `sldf-trace` file) and "request-reply" (seeded inference-style
/// client/server pairs with issue timestamps). Factories receive the
/// `workload.<opt>` map (runner keys already stripped); unknown options
/// throw std::invalid_argument.
class WorkloadRegistry {
 public:
  using Factory = std::function<WorkloadGraph(
      const sim::Network&, const core::KvMap&, const WorkloadEnv&)>;

  /// The process-wide registry, with the built-in generators registered.
  static WorkloadRegistry& instance();

  void add(const std::string& name, core::RegistryDoc doc, Factory make) {
    reg_.add(name, std::move(doc), std::move(make));
  }
  [[nodiscard]] bool contains(const std::string& name) const {
    return reg_.contains(name);
  }
  [[nodiscard]] std::vector<std::string> names() const { return reg_.names(); }
  [[nodiscard]] const std::string& help(const std::string& name) const {
    return reg_.help(name);
  }
  [[nodiscard]] const core::RegistryDoc& doc(const std::string& name) const {
    return reg_.doc(name);
  }
  [[nodiscard]] WorkloadGraph make(const std::string& kind,
                                   const sim::Network& net,
                                   const core::KvMap& opts,
                                   const WorkloadEnv& env) const {
    return reg_.at(kind, "workload")(net, opts, env);
  }

 private:
  WorkloadRegistry();
  core::NamedRegistry<Factory> reg_;
};

/// Registry lookup shorthand.
WorkloadGraph make_workload(const std::string& kind, const sim::Network& net,
                            const core::KvMap& opts, const WorkloadEnv& env);

/// The runner/reporting keys run_workload_scenario() consumes itself
/// (`flit_bytes`, `freq_ghz`, `max_cycles`) — documented alongside the
/// generator options in the generated reference.
const std::vector<core::OptionDoc>& runner_option_docs();

}  // namespace sldf::workload
