// Generator-built collective workloads (message dependency graphs) and the
// chip-grouping helpers they share with the open-loop traffic patterns.
//
// Every generator works on chip *groups* selected by Scope: the chips of
// each C-group, each W-group, or the whole system form one independent
// instance of the collective (one ring, one tree, one stencil grid, ...).
// Within a group, chips are ordered by (C-group, Hamiltonian ring rank) so
// that consecutive ranks are physically adjacent on the wafer — the same
// schedule the steady-state ring-AllReduce traffic pattern uses, so the
// open-loop and closed-loop experiments stress identical link sequences.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace sldf::workload {

/// Which chips form one collective instance.
enum class Scope : std::uint8_t { CGroup, WGroup, System };

/// Parses "cgroup" | "wgroup" | "system"; `context` prefixes the error.
Scope parse_scope(const std::string& s, const std::string& context);
const char* to_string(Scope s);

/// Chips partitioned by `scope`, each group ordered by (C-group,
/// Hamiltonian ring rank). Requires HierTopo topology info. A non-empty
/// `subset` restricts the partition to those chips (the tenant-placement
/// path: a tenant's collective spans only its placed chips); chips listed
/// twice throw std::invalid_argument.
std::vector<std::vector<ChipId>> chip_groups(
    const sim::Network& net, Scope scope,
    const std::vector<ChipId>& subset = {});

/// Narrows every message that leaves its source C-group to one terminal
/// slot (MessageSpec::stripe = 1): such transfers funnel into a single
/// narrow external port, and striping them over every injector only fills
/// the mesh rows behind the port (tree saturation) without adding
/// bandwidth. Every generator (and the trace replayer) applies this after
/// building its graph.
void narrow_external_messages(const sim::Network& net, WorkloadGraph& g);

/// Ring AllReduce (reduce-scatter + allgather): 2*(N-1) steps per group of
/// N chips; each step streams ceil(vector_flits/N) flits to the ring
/// successor, split into `chunks` pipelined chunk-messages (chunk j of step
/// s waits only on chunk j of step s-1 at the predecessor). `iters` chains
/// full collectives back to back.
WorkloadGraph ring_allreduce(const sim::Network& net, Scope scope,
                             std::uint64_t vector_flits, int chunks,
                             int iters,
                             const std::vector<ChipId>& subset = {});

/// Recursive halving-doubling AllReduce: log2 steps of halving (reduce-
/// scatter) then log2 steps of doubling (allgather) over the largest
/// power-of-two subset of each group; leftover chips fold in/out via a
/// pre/post full-vector exchange (the standard non-power-of-two fixup).
WorkloadGraph halving_doubling_allreduce(const sim::Network& net, Scope scope,
                                         std::uint64_t vector_flits,
                                         int iters,
                                         const std::vector<ChipId>& subset = {});

/// Binomial-tree AllReduce: reduce to rank 0 (full vector per hop), then
/// binomial broadcast back out. Latency-optimal message count, bandwidth-
/// poor — the contrast workload to the ring.
WorkloadGraph tree_allreduce(const sim::Network& net, Scope scope,
                             std::uint64_t vector_flits, int iters,
                             const std::vector<ChipId>& subset = {});

/// All-to-all personalized exchange: N-1 shifted rounds (round r: chip i ->
/// chip (i+r) mod N) of `pair_flits` each; at most `window` rounds are in
/// flight per chip (0 = unlimited).
WorkloadGraph all_to_all(const sim::Network& net, Scope scope,
                         std::uint64_t pair_flits, int window, int iters,
                         const std::vector<ChipId>& subset = {});

/// 3D nearest-neighbour halo exchange: each group's chips are arranged in
/// the most cubic exact factorization of the group size (every chip
/// participates; a prime size degenerates to a chain); every iteration
/// each chip sends `halo_flits` to its (up to 6) face neighbours, and the
/// next iteration's sends wait on all halos arriving — the classic
/// stencil dependency. `periodic` wraps the grid into a torus.
WorkloadGraph stencil3d(const sim::Network& net, Scope scope,
                        std::uint64_t halo_flits, int iters, bool periodic,
                        const std::vector<ChipId>& subset = {});

}  // namespace sldf::workload
