#include "workload/registry.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "workload/collectives.hpp"

namespace sldf::workload {

namespace {

std::uint64_t kib_to_flits(double kib, const WorkloadEnv& env,
                           const char* name) {
  if (!(kib > 0.0))
    throw std::invalid_argument(std::string("workload '") + name +
                                "': option 'kib' expects a size > 0");
  const double flits = std::ceil(kib * 1024.0 / env.flit_bytes);
  return flits < 1.0 ? 1 : static_cast<std::uint64_t>(flits);
}

Scope read_scope(core::KvReader& o, const char* name, const char* def) {
  return parse_scope(o.get_str("scope", def),
                     std::string("workload '") + name + "'");
}

// Per-generator option defaults, shared by each factory's reader and its
// doc entry so the generated reference cannot drift from the code.
constexpr double kAllreduceKib = 256.0;  ///< AllReduce vector per chip.
constexpr double kA2aKib = 16.0;         ///< All-to-all payload per pair.
constexpr double kStencilKib = 64.0;     ///< Halo per face neighbour.
constexpr const char* kAllreduceScope = "wgroup";
constexpr const char* kA2aScope = "wgroup";
constexpr const char* kStencilScope = "system";
constexpr int kDefaultIters = 1;
constexpr int kRingChunks = 1;
constexpr int kA2aWindow = 1;
constexpr bool kStencilPeriodic = true;

std::string num_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

core::OptionDoc scope_doc(const char* def) {
  return {"scope", "cgroup|wgroup|system", def,
          "chips forming one collective instance"};
}
core::OptionDoc iters_doc() {
  return {"iters", "int", std::to_string(kDefaultIters),
          "back-to-back repetitions of the collective"};
}
core::OptionDoc kib_doc(double def, const char* what) {
  return {"kib", "double", num_str(def), what};
}

}  // namespace

WorkloadRegistry::WorkloadRegistry() {
  add("ring-allreduce",
      core::RegistryDoc{
          "ring AllReduce: reduce-scatter + allgather, 2(N-1) pipelined "
          "steps around each scope ring",
          {kib_doc(kAllreduceKib, "AllReduce vector size per chip, KiB"),
           scope_doc(kAllreduceScope), iters_doc(),
           {"chunks", "int", std::to_string(kRingChunks),
            "pipelined chunk-messages per ring step"}}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'ring-allreduce'");
        const double kib = o.get_double("kib", kAllreduceKib);
        const Scope scope = read_scope(o, "ring-allreduce", kAllreduceScope);
        const int chunks = o.get_int("chunks", kRingChunks);
        const int iters = o.get_int("iters", kDefaultIters);
        o.finish();
        return ring_allreduce(net, scope,
                              kib_to_flits(kib, env, "ring-allreduce"),
                              chunks, iters);
      });
  add("halving-doubling-allreduce",
      core::RegistryDoc{
          "recursive halving-doubling AllReduce (2*log2 N steps, "
          "non-power-of-two ranks fold in/out)",
          {kib_doc(kAllreduceKib, "AllReduce vector size per chip, KiB"),
           scope_doc(kAllreduceScope), iters_doc()}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'halving-doubling-allreduce'");
        const double kib = o.get_double("kib", kAllreduceKib);
        const Scope scope =
            read_scope(o, "halving-doubling-allreduce", kAllreduceScope);
        const int iters = o.get_int("iters", kDefaultIters);
        o.finish();
        return halving_doubling_allreduce(
            net, scope,
            kib_to_flits(kib, env, "halving-doubling-allreduce"), iters);
      });
  add("tree-allreduce",
      core::RegistryDoc{
          "binomial-tree AllReduce: reduce to rank 0, broadcast back "
          "(full vector per hop)",
          {kib_doc(kAllreduceKib, "AllReduce vector size per chip, KiB"),
           scope_doc(kAllreduceScope), iters_doc()}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'tree-allreduce'");
        const double kib = o.get_double("kib", kAllreduceKib);
        const Scope scope = read_scope(o, "tree-allreduce", kAllreduceScope);
        const int iters = o.get_int("iters", kDefaultIters);
        o.finish();
        return tree_allreduce(net, scope,
                              kib_to_flits(kib, env, "tree-allreduce"),
                              iters);
      });
  add("all-to-all",
      core::RegistryDoc{
          "personalized all-to-all: N-1 shifted rounds per scope group",
          {kib_doc(kA2aKib, "payload per chip pair, KiB"), scope_doc(kA2aScope),
           iters_doc(),
           {"window", "int", std::to_string(kA2aWindow),
            "rounds in flight per chip (0 = unlimited)"}}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'all-to-all'");
        const double kib = o.get_double("kib", kA2aKib);
        const Scope scope = read_scope(o, "all-to-all", kA2aScope);
        const int window = o.get_int("window", kA2aWindow);
        const int iters = o.get_int("iters", kDefaultIters);
        o.finish();
        return all_to_all(net, scope, kib_to_flits(kib, env, "all-to-all"),
                          window, iters);
      });
  add("stencil-3d",
      core::RegistryDoc{
          "3D nearest-neighbour halo exchange on the most cubic grid of "
          "each scope group",
          {kib_doc(kStencilKib, "halo payload per face neighbour, KiB"),
           scope_doc(kStencilScope), iters_doc(),
           {"periodic", "bool", kStencilPeriodic ? "1" : "0",
            "wrap the grid into a torus"}}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'stencil-3d'");
        const double kib = o.get_double("kib", kStencilKib);
        const Scope scope = read_scope(o, "stencil-3d", kStencilScope);
        const int iters = o.get_int("iters", kDefaultIters);
        const bool periodic = o.get_bool("periodic", kStencilPeriodic);
        o.finish();
        return stencil3d(net, scope, kib_to_flits(kib, env, "stencil-3d"),
                         iters, periodic);
      });
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry reg;
  return reg;
}

WorkloadGraph make_workload(const std::string& kind, const sim::Network& net,
                            const core::KvMap& opts, const WorkloadEnv& env) {
  return WorkloadRegistry::instance().make(kind, net, opts, env);
}

const std::vector<core::OptionDoc>& runner_option_docs() {
  // Defaults rendered from WorkloadRunConfig{} so they cannot drift.
  static const std::vector<core::OptionDoc> docs = [] {
    const WorkloadRunConfig d;
    return std::vector<core::OptionDoc>{
        {"flit_bytes", "double", num_str(d.flit_bytes),
         "payload bytes per flit (sizes KiB -> flits; GB/s reporting)"},
        {"freq_ghz", "double", num_str(d.freq_ghz),
         "clock used to convert cycles to seconds"},
        {"max_cycles", "int", std::to_string(d.max_cycles),
         "abort horizon; hitting it reports completed = no"},
    };
  }();
  return docs;
}

}  // namespace sldf::workload
