#include "workload/registry.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/error.hpp"
#include "trace/trace.hpp"
#include "workload/collectives.hpp"

namespace sldf::workload {

namespace {

std::uint64_t kib_to_flits(double kib, const WorkloadEnv& env,
                           const char* name) {
  if (!(kib > 0.0))
    throw std::invalid_argument(std::string("workload '") + name +
                                "': option 'kib' expects a size > 0");
  const double flits = std::ceil(kib * 1024.0 / env.flit_bytes);
  return flits < 1.0 ? 1 : static_cast<std::uint64_t>(flits);
}

Scope read_scope(core::KvReader& o, const char* name, const char* def) {
  return parse_scope(o.get_str("scope", def),
                     std::string("workload '") + name + "'");
}

// Per-generator option defaults, shared by each factory's reader and its
// doc entry so the generated reference cannot drift from the code.
constexpr double kAllreduceKib = 256.0;  ///< AllReduce vector per chip.
constexpr double kA2aKib = 16.0;         ///< All-to-all payload per pair.
constexpr double kStencilKib = 64.0;     ///< Halo per face neighbour.
constexpr const char* kAllreduceScope = "wgroup";
constexpr const char* kA2aScope = "wgroup";
constexpr const char* kStencilScope = "system";
constexpr int kDefaultIters = 1;
constexpr int kRingChunks = 1;
constexpr int kA2aWindow = 1;
constexpr bool kStencilPeriodic = true;
constexpr int kRrRequests = 64;      ///< Request/reply pairs.
constexpr double kRrReqKib = 1.0;    ///< Request payload.
constexpr double kRrRepKib = 4.0;    ///< Reply payload.
constexpr int kRrGap = 200;          ///< Mean request inter-arrival cycles.

/// Chips a trace-backed workload spans: the tenant placement when set,
/// otherwise the first `want` live chips in chip-id order (all of them
/// when want < 0) — so a standalone replay lands on a deterministic
/// placement that composes with the fault mask.
std::vector<ChipId> replay_chips(const sim::Network& net,
                                 const WorkloadEnv& env, std::int32_t want) {
  if (!env.chips.empty()) return env.chips;
  std::vector<ChipId> chips;
  const auto nchips = static_cast<ChipId>(net.num_chips());
  for (ChipId c = 0; c < nchips; ++c) {
    if (!net.chip_live(c)) continue;
    chips.push_back(c);
    if (want >= 0 && static_cast<std::int32_t>(chips.size()) == want) break;
  }
  return chips;
}

std::string num_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

core::OptionDoc scope_doc(const char* def) {
  return {"scope", "cgroup|wgroup|system", def,
          "chips forming one collective instance"};
}
core::OptionDoc iters_doc() {
  return {"iters", "int", std::to_string(kDefaultIters),
          "back-to-back repetitions of the collective"};
}
core::OptionDoc kib_doc(double def, const char* what) {
  return {"kib", "double", num_str(def), what};
}

}  // namespace

WorkloadRegistry::WorkloadRegistry() {
  add("ring-allreduce",
      core::RegistryDoc{
          "ring AllReduce: reduce-scatter + allgather, 2(N-1) pipelined "
          "steps around each scope ring",
          {kib_doc(kAllreduceKib, "AllReduce vector size per chip, KiB"),
           scope_doc(kAllreduceScope), iters_doc(),
           {"chunks", "int", std::to_string(kRingChunks),
            "pipelined chunk-messages per ring step"}}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'ring-allreduce'");
        const double kib = o.get_double("kib", kAllreduceKib);
        const Scope scope = read_scope(o, "ring-allreduce", kAllreduceScope);
        const int chunks = o.get_int("chunks", kRingChunks);
        const int iters = o.get_int("iters", kDefaultIters);
        o.finish();
        return ring_allreduce(net, scope,
                              kib_to_flits(kib, env, "ring-allreduce"),
                              chunks, iters, env.chips);
      });
  add("halving-doubling-allreduce",
      core::RegistryDoc{
          "recursive halving-doubling AllReduce (2*log2 N steps, "
          "non-power-of-two ranks fold in/out)",
          {kib_doc(kAllreduceKib, "AllReduce vector size per chip, KiB"),
           scope_doc(kAllreduceScope), iters_doc()}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'halving-doubling-allreduce'");
        const double kib = o.get_double("kib", kAllreduceKib);
        const Scope scope =
            read_scope(o, "halving-doubling-allreduce", kAllreduceScope);
        const int iters = o.get_int("iters", kDefaultIters);
        o.finish();
        return halving_doubling_allreduce(
            net, scope,
            kib_to_flits(kib, env, "halving-doubling-allreduce"), iters,
            env.chips);
      });
  add("tree-allreduce",
      core::RegistryDoc{
          "binomial-tree AllReduce: reduce to rank 0, broadcast back "
          "(full vector per hop)",
          {kib_doc(kAllreduceKib, "AllReduce vector size per chip, KiB"),
           scope_doc(kAllreduceScope), iters_doc()}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'tree-allreduce'");
        const double kib = o.get_double("kib", kAllreduceKib);
        const Scope scope = read_scope(o, "tree-allreduce", kAllreduceScope);
        const int iters = o.get_int("iters", kDefaultIters);
        o.finish();
        return tree_allreduce(net, scope,
                              kib_to_flits(kib, env, "tree-allreduce"),
                              iters, env.chips);
      });
  add("all-to-all",
      core::RegistryDoc{
          "personalized all-to-all: N-1 shifted rounds per scope group",
          {kib_doc(kA2aKib, "payload per chip pair, KiB"), scope_doc(kA2aScope),
           iters_doc(),
           {"window", "int", std::to_string(kA2aWindow),
            "rounds in flight per chip (0 = unlimited)"}}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'all-to-all'");
        const double kib = o.get_double("kib", kA2aKib);
        const Scope scope = read_scope(o, "all-to-all", kA2aScope);
        const int window = o.get_int("window", kA2aWindow);
        const int iters = o.get_int("iters", kDefaultIters);
        o.finish();
        return all_to_all(net, scope, kib_to_flits(kib, env, "all-to-all"),
                          window, iters, env.chips);
      });
  add("stencil-3d",
      core::RegistryDoc{
          "3D nearest-neighbour halo exchange on the most cubic grid of "
          "each scope group",
          {kib_doc(kStencilKib, "halo payload per face neighbour, KiB"),
           scope_doc(kStencilScope), iters_doc(),
           {"periodic", "bool", kStencilPeriodic ? "1" : "0",
            "wrap the grid into a torus"}}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'stencil-3d'");
        const double kib = o.get_double("kib", kStencilKib);
        const Scope scope = read_scope(o, "stencil-3d", kStencilScope);
        const int iters = o.get_int("iters", kDefaultIters);
        const bool periodic = o.get_bool("periodic", kStencilPeriodic);
        o.finish();
        return stencil3d(net, scope, kib_to_flits(kib, env, "stencil-3d"),
                         iters, periodic, env.chips);
      });
  add("trace-replay",
      core::RegistryDoc{
          "replays an sldf-trace file: recorded issue timestamps + message "
          "deps onto the tenant placement (ranks -> chips)",
          {{"file", "path", "(trace.file)",
            "trace file to replay; defaults to the trace.file scenario "
            "key"}}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'trace-replay'");
        const std::string file = o.get_str("file", env.trace_file.c_str());
        o.finish();
        if (file.empty())
          throw ScenarioError(
              "workload 'trace-replay': no trace file (set trace.file or "
              "the workload option 'file')");
        const trace::Trace t = trace::load_trace(file);
        return trace::to_graph(t, net, replay_chips(net, env, t.chips),
                               "workload 'trace-replay' (" + file + ")");
      });
  add("request-reply",
      core::RegistryDoc{
          "seeded inference-serving mix: random client->server requests "
          "with issue timestamps, each reply gated on its request",
          {{"requests", "int", std::to_string(kRrRequests),
            "request/reply pairs"},
           {"req_kib", "double", num_str(kRrReqKib),
            "request payload, KiB"},
           {"rep_kib", "double", num_str(kRrRepKib), "reply payload, KiB"},
           {"gap", "int", std::to_string(kRrGap),
            "mean cycles between request arrivals"},
           {"seed", "int", "(trace.seed)",
            "arrival/pairing seed; defaults to the trace.seed scenario "
            "key"}}},
      [](const sim::Network& net, const core::KvMap& opts,
         const WorkloadEnv& env) {
        core::KvReader o(opts, "workload 'request-reply'");
        const int requests = o.get_int("requests", kRrRequests);
        const double req_kib = o.get_double("req_kib", kRrReqKib);
        const double rep_kib = o.get_double("rep_kib", kRrRepKib);
        const int gap = o.get_int("gap", kRrGap);
        const auto seed = static_cast<std::uint64_t>(
            o.get_int("seed", static_cast<int>(env.trace_seed)));
        o.finish();
        if (gap < 0)
          throw std::invalid_argument(
              "workload 'request-reply': gap must be >= 0");
        const auto chips = replay_chips(net, env, -1);
        const trace::Trace t = trace::request_reply_trace(
            static_cast<std::int32_t>(chips.size()), requests,
            kib_to_flits(req_kib, env, "request-reply"),
            kib_to_flits(rep_kib, env, "request-reply"),
            static_cast<Cycle>(gap), seed);
        auto g = trace::to_graph(t, net, chips, "workload 'request-reply'");
        g.name = "request-reply";
        return g;
      });
}

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry reg;
  return reg;
}

WorkloadGraph make_workload(const std::string& kind, const sim::Network& net,
                            const core::KvMap& opts, const WorkloadEnv& env) {
  return WorkloadRegistry::instance().make(kind, net, opts, env);
}

const std::vector<core::OptionDoc>& runner_option_docs() {
  // Defaults rendered from WorkloadRunConfig{} so they cannot drift.
  static const std::vector<core::OptionDoc> docs = [] {
    const WorkloadRunConfig d;
    return std::vector<core::OptionDoc>{
        {"flit_bytes", "double", num_str(d.flit_bytes),
         "payload bytes per flit (sizes KiB -> flits; GB/s reporting)"},
        {"freq_ghz", "double", num_str(d.freq_ghz),
         "clock used to convert cycles to seconds"},
        {"max_cycles", "int", std::to_string(d.max_cycles),
         "abort horizon; hitting it reports completed = no"},
    };
  }();
  return docs;
}

}  // namespace sldf::workload
