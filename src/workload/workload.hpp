// Message-level closed-loop workload engine.
//
// A workload is a dependency graph of *messages*: "chip S sends F flits to
// chip D once messages {deps} have completed". run_workload() executes the
// graph on the flit engine — messages whose dependencies are satisfied are
// chunked into packets, striped over the source chip's terminal nodes, and
// pushed through Simulator::inject_packet(); Simulator's packet-completion
// callback (PacketListener) marks messages complete when their last tail
// flit ejects at the destination, which in turn releases dependents. The
// run reports time-to-completion, per-phase completion cycles, and achieved
// GB/s per chip — the paper's Fig 14 story — instead of offered-rate
// sweeps.
//
// Graphs come from the generators in collectives.hpp (ring/halving-doubling
// /tree AllReduce, all-to-all, 3D stencil), selected by name through the
// WorkloadRegistry (registry.hpp) and from `sldf` via `workload = <name>`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sldf::workload {

using MsgId = std::uint32_t;
inline constexpr MsgId kInvalidMsg = 0xffffffffu;

/// One node of the dependency graph: a chip-to-chip transfer that becomes
/// eligible once every message in `deps` has completed (i.e. fully arrived
/// at its destination).
struct MessageSpec {
  ChipId src = kInvalidChip;
  ChipId dst = kInvalidChip;
  std::uint64_t flits = 0;   ///< Payload size in flits (>= 1).
  std::int32_t phase = 0;    ///< Reporting bucket (collective step index).
  /// Terminal slots of the chip pair to stripe packets over: 0 = all slots
  /// (parallel chip-boundary links), k > 0 = only the first k. Generators
  /// set 1 on messages that leave the C-group so a transfer funnelling
  /// into one narrow external port does not clog every mesh row behind it
  /// (4 injectors racing a width-1 exit is wormhole tree saturation, not a
  /// faster collective).
  std::int32_t stripe = 0;
  /// Earliest cycle the message may issue. It becomes ready at
  /// max(issue, all deps complete) — trace-replayed jobs carry their
  /// recorded issue timestamps here; generated collectives leave 0.
  Cycle issue = 0;
  std::vector<MsgId> deps;   ///< Messages that must complete first.
};

struct WorkloadGraph {
  std::string name;          ///< Generator name (reporting).
  std::int32_t num_phases = 0;
  std::vector<MessageSpec> messages;

  /// Appends a message and returns its id (deps filled by the caller).
  MsgId add(ChipId src, ChipId dst, std::uint64_t flits, std::int32_t phase) {
    messages.push_back(MessageSpec{src, dst, flits, phase, 0, 0, {}});
    if (phase >= num_phases) num_phases = phase + 1;
    return static_cast<MsgId>(messages.size() - 1);
  }
};

/// Execution + reporting knobs (generator-independent; set from scenario
/// keys `pkt_len`, `seed`, `max_src_queue` and `workload.flit_bytes`,
/// `workload.freq_ghz`, `workload.max_cycles`).
struct WorkloadRunConfig {
  sim::SimConfig sim;           ///< pkt_len, seed, max_src_queue are used.
  Cycle max_cycles = 50'000'000;  ///< Abort horizon (completed = false).
  double flit_bytes = 16.0;     ///< Payload bytes per flit (GB/s reporting).
  double freq_ghz = 1.0;        ///< Clock for cycles -> seconds conversion.
  /// Record per-message ready/done cycles in WorkloadResult::msgs (the
  /// multi-tenant runner needs them for per-tenant latency percentiles).
  bool record_msgs = false;
};

struct PhaseResult {
  Cycle completed = 0;          ///< Cycle the phase's last message completed.
  std::uint64_t messages = 0;
  std::uint64_t flits = 0;
};

/// Per-message timing, recorded when WorkloadRunConfig::record_msgs is set
/// (indexed by MsgId, aligned with WorkloadGraph::messages).
struct MsgRecord {
  Cycle ready = 0;      ///< max(issue, last dependency complete).
  Cycle done = 0;       ///< Last packet's tail ejection (0 if incomplete).
  bool completed = false;
};

struct WorkloadResult {
  std::string workload;
  /// All messages delivered. False when max_cycles was hit OR when a fault
  /// timeline failed/orphaned messages (see the counters below).
  bool completed = false;
  Cycle cycles = 0;             ///< Time to completion (last tail ejection).
  int chips = 0;                ///< Chips participating (src or dst).
  std::uint64_t messages = 0;
  std::uint64_t packets = 0;           ///< Packets injected.
  std::uint64_t packets_delivered = 0; ///< Packets fully ejected (== packets
                                       ///< when completed).
  std::uint64_t flits = 0;      ///< Payload flits summed over messages.
  std::uint64_t flit_hops = 0;  ///< Engine channel traversals for the run.
  // --- fault-timeline outcomes (all zero on a fault-free run) ---
  /// Messages that lost >= 1 packet to a fault drop (can never complete).
  std::uint64_t failed_messages = 0;
  /// Messages that can never issue: a dependency failed/orphaned, or their
  /// chip died before they started. Counted transitively, so the run
  /// terminates instead of waiting on an unreachable dependency chain.
  std::uint64_t orphaned_messages = 0;
  std::uint64_t dropped_packets = 0;   ///< Engine drops (lost, accounted).
  std::uint64_t rescued_packets = 0;   ///< Engine source-retransmissions.
  double avg_msg_cycles = 0.0;  ///< Mean ready -> complete message latency.
  double max_msg_cycles = 0.0;
  /// Payload GB/s per participating chip:
  /// flits * flit_bytes * freq_ghz / (cycles * chips).
  double gbps_per_chip = 0.0;
  std::vector<PhaseResult> phases;
  std::vector<MsgRecord> msgs;  ///< Empty unless record_msgs was set.
};

/// Validates `graph` (src != dst, flits >= 1, dep ids in range) — throws
/// std::invalid_argument on malformed graphs, and ScenarioError when a
/// message touches a chip the active fault mask killed (such a graph would
/// stall or assert mid-run; the structured error fires before any
/// simulation starts).
void validate(const WorkloadGraph& graph, const sim::Network& net);

/// Runs `graph` closed-loop on `net`. Deterministic for a fixed config
/// (repeat runs are bit-identical). Throws std::runtime_error when the
/// graph stalls with nothing in flight (a dependency cycle).
WorkloadResult run_workload(sim::Network& net, const WorkloadGraph& graph,
                            const WorkloadRunConfig& cfg);

}  // namespace sldf::workload
