#include "workload/collectives.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/error.hpp"
#include "topo/hier.hpp"

namespace sldf::workload {

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

void check_sizes(const char* name, std::uint64_t flits, int iters) {
  if (flits == 0)
    throw std::invalid_argument(std::string("workload '") + name +
                                "': message size must be >= 1 flit");
  if (iters < 1)
    throw std::invalid_argument(std::string("workload '") + name +
                                "': iters must be >= 1");
}

/// Groups partitioned by scope, each required to hold >= 2 chips.
/// Chips the active fault mask killed are dropped from their group — the
/// collective reforms over the survivors, the same way a job scheduler
/// would skip a dead board. A group that *structurally* has < 2 chips is a
/// configuration bug (std::invalid_argument); one that the fault mask
/// emptied or reduced below 2 is a runtime condition of this scenario
/// (ScenarioError).
std::vector<std::vector<ChipId>> groups_of_two(
    const sim::Network& net, Scope scope, const char* name,
    const std::vector<ChipId>& subset) {
  auto groups = chip_groups(net, scope, subset);
  for (auto& g : groups) {
    if (g.size() < 2)
      throw std::invalid_argument(std::string("workload '") + name +
                                  "': a " + to_string(scope) +
                                  " scope group has < 2 chips");
    if (!net.has_faults()) continue;
    const std::size_t structural = g.size();
    g.erase(std::remove_if(
                g.begin(), g.end(),
                [&](ChipId c) { return !net.chip_live(c); }),
            g.end());
    if (g.size() < 2)
      throw ScenarioError(
          std::string("workload '") + name + "': a " + to_string(scope) +
          " scope group of " + std::to_string(structural) +
          " chips has " + std::to_string(g.size()) +
          " live chips under the active fault mask (>= 2 required)");
  }
  return groups;
}

}  // namespace

const char* to_string(Scope s) {
  switch (s) {
    case Scope::CGroup: return "cgroup";
    case Scope::WGroup: return "wgroup";
    case Scope::System: return "system";
  }
  return "?";
}

Scope parse_scope(const std::string& s, const std::string& context) {
  if (s == "cgroup") return Scope::CGroup;
  if (s == "wgroup") return Scope::WGroup;
  if (s == "system") return Scope::System;
  throw std::invalid_argument(context +
                              ": option 'scope' expects "
                              "cgroup|wgroup|system, got '" +
                              s + "'");
}

void narrow_external_messages(const sim::Network& net, WorkloadGraph& g) {
  const auto& hier = net.topo<topo::HierTopo>();
  for (auto& m : g.messages)
    if (hier.chip_cgroup[static_cast<std::size_t>(m.src)] !=
        hier.chip_cgroup[static_cast<std::size_t>(m.dst)])
      m.stripe = 1;
}

std::vector<std::vector<ChipId>> chip_groups(
    const sim::Network& net, Scope scope,
    const std::vector<ChipId>& subset) {
  const auto& hier = net.topo<topo::HierTopo>();
  const auto nchips = static_cast<ChipId>(net.num_chips());
  std::vector<ChipId> pool;
  if (subset.empty()) {
    pool.resize(static_cast<std::size_t>(nchips));
    for (ChipId c = 0; c < nchips; ++c)
      pool[static_cast<std::size_t>(c)] = c;
  } else {
    pool = subset;
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(nchips), 0);
    for (const ChipId c : pool) {
      if (c < 0 || c >= nchips)
        throw std::invalid_argument("chip_groups: chip " + std::to_string(c) +
                                    " out of range (network has " +
                                    std::to_string(nchips) + " chips)");
      if (seen[static_cast<std::size_t>(c)]++)
        throw std::invalid_argument("chip_groups: chip " + std::to_string(c) +
                                    " listed twice");
    }
  }
  std::map<std::int32_t, std::vector<ChipId>> groups;
  for (const ChipId c : pool) {
    std::int32_t key = 0;
    switch (scope) {
      case Scope::CGroup:
        key = hier.chip_cgroup[static_cast<std::size_t>(c)];
        break;
      case Scope::WGroup:
        key = hier.chip_wgroup[static_cast<std::size_t>(c)];
        break;
      case Scope::System: key = 0; break;
    }
    groups[key].push_back(c);
  }
  std::vector<std::vector<ChipId>> out;
  out.reserve(groups.size());
  for (auto& [key, chips] : groups) {
    (void)key;
    std::sort(chips.begin(), chips.end(), [&](ChipId a, ChipId b) {
      const auto ca = hier.chip_cgroup[static_cast<std::size_t>(a)];
      const auto cb = hier.chip_cgroup[static_cast<std::size_t>(b)];
      if (ca != cb) return ca < cb;
      return hier.chip_ring_rank[static_cast<std::size_t>(a)] <
             hier.chip_ring_rank[static_cast<std::size_t>(b)];
    });
    out.push_back(std::move(chips));
  }
  return out;
}

WorkloadGraph ring_allreduce(const sim::Network& net, Scope scope,
                             std::uint64_t vector_flits, int chunks,
                             int iters, const std::vector<ChipId>& subset) {
  check_sizes("ring-allreduce", vector_flits, iters);
  if (chunks < 1)
    throw std::invalid_argument(
        "workload 'ring-allreduce': chunks must be >= 1");
  const auto groups = groups_of_two(net, scope, "ring-allreduce", subset);
  WorkloadGraph g;
  g.name = "ring-allreduce";
  std::size_t max_steps = 0;
  for (const auto& chips : groups)
    max_steps = std::max(max_steps, 2 * (chips.size() - 1));

  for (const auto& chips : groups) {
    const std::size_t n = chips.size();
    const std::size_t steps = 2 * (n - 1);
    const std::uint64_t seg = ceil_div(vector_flits, n);
    const auto nchunks = static_cast<std::size_t>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(chunks), seg));
    const std::uint64_t base = seg / nchunks;
    const std::uint64_t rem = seg % nchunks;
    // prev[pos][j]: the chunk-j message chip `pos` sent in the previous
    // step (its arrival at the successor gates the successor's next send).
    std::vector<std::vector<MsgId>> prev(n), cur(n);
    for (auto& v : prev) v.resize(nchunks, kInvalidMsg);
    for (auto& v : cur) v.resize(nchunks, kInvalidMsg);
    for (int iter = 0; iter < iters; ++iter) {
      for (std::size_t s = 0; s < steps; ++s) {
        const auto phase =
            static_cast<std::int32_t>(iter * max_steps + s);
        for (std::size_t pos = 0; pos < n; ++pos) {
          const std::size_t pred = (pos + n - 1) % n;
          for (std::size_t j = 0; j < nchunks; ++j) {
            const std::uint64_t flits = base + (j < rem ? 1 : 0);
            const MsgId id =
                g.add(chips[pos], chips[(pos + 1) % n], flits, phase);
            if (s > 0 || iter > 0)
              g.messages[id].deps.push_back(prev[pred][j]);
            cur[pos][j] = id;
          }
        }
        std::swap(prev, cur);
      }
    }
  }
  g.num_phases = static_cast<std::int32_t>(
      static_cast<std::size_t>(iters) * max_steps);
  narrow_external_messages(net, g);
  return g;
}

WorkloadGraph halving_doubling_allreduce(const sim::Network& net, Scope scope,
                                         std::uint64_t vector_flits,
                                         int iters,
                                         const std::vector<ChipId>& subset) {
  check_sizes("halving-doubling-allreduce", vector_flits, iters);
  const auto groups =
      groups_of_two(net, scope, "halving-doubling-allreduce", subset);
  WorkloadGraph g;
  g.name = "halving-doubling-allreduce";
  std::size_t m_max = 0;
  for (const auto& chips : groups) {
    std::size_t m = 0;
    while ((std::size_t{2} << m) <= chips.size()) ++m;
    m_max = std::max(m_max, m);
  }
  // Phase layout per iteration: pre-fold (0), m_max halving steps,
  // m_max doubling steps, post-fold (last).
  const std::size_t phases_per_iter = 2 * m_max + 2;

  for (const auto& chips : groups) {
    const std::size_t n = chips.size();
    std::size_t m = 0;
    while ((std::size_t{2} << m) <= n) ++m;
    const std::size_t pow = std::size_t{1} << m;
    const std::size_t extras = n - pow;
    // Last message delivered INTO each rank in the previous iteration
    // (gates the next iteration's first sends).
    std::vector<MsgId> prev_final_in(n, kInvalidMsg);
    for (int iter = 0; iter < iters; ++iter) {
      const auto base =
          static_cast<std::int32_t>(static_cast<std::size_t>(iter) *
                                    phases_per_iter);
      // Pre-fold: extra rank pow+i contributes its vector to core rank i.
      std::vector<MsgId> pre_in(pow, kInvalidMsg);
      for (std::size_t i = 0; i < extras; ++i) {
        const MsgId id = g.add(chips[pow + i], chips[i], vector_flits, base);
        if (prev_final_in[pow + i] != kInvalidMsg)
          g.messages[id].deps.push_back(prev_final_in[pow + i]);
        pre_in[i] = id;
      }
      // Halving (reduce-scatter): step k exchanges vector/2^(k+1) with the
      // partner at distance pow/2^(k+1).
      std::vector<MsgId> in_prev(pow, kInvalidMsg), in_cur(pow, kInvalidMsg);
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t d = pow >> (k + 1);
        const std::uint64_t flits =
            ceil_div(vector_flits, std::uint64_t{1} << (k + 1));
        const auto phase = static_cast<std::int32_t>(base + 1 + k);
        for (std::size_t r = 0; r < pow; ++r) {
          const std::size_t partner = r ^ d;
          const MsgId id = g.add(chips[r], chips[partner], flits, phase);
          auto& deps = g.messages[id].deps;
          if (k == 0) {
            if (pre_in[r] != kInvalidMsg) deps.push_back(pre_in[r]);
            if (prev_final_in[r] != kInvalidMsg)
              deps.push_back(prev_final_in[r]);
          } else {
            deps.push_back(in_prev[r]);
          }
          in_cur[partner] = id;
        }
        std::swap(in_prev, in_cur);
      }
      // Doubling (allgather): shards double back up.
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t d = std::size_t{1} << k;
        const std::uint64_t flits =
            ceil_div(vector_flits << k, static_cast<std::uint64_t>(pow));
        const auto phase = static_cast<std::int32_t>(base + 1 + m + k);
        for (std::size_t r = 0; r < pow; ++r) {
          const std::size_t partner = r ^ d;
          const MsgId id = g.add(chips[r], chips[partner], flits, phase);
          g.messages[id].deps.push_back(in_prev[r]);
          in_cur[partner] = id;
        }
        std::swap(in_prev, in_cur);
      }
      // Post-fold: core rank i returns the result to extra rank pow+i.
      for (std::size_t r = 0; r < pow; ++r) prev_final_in[r] = in_prev[r];
      const auto post = static_cast<std::int32_t>(base + 1 + 2 * m);
      for (std::size_t i = 0; i < extras; ++i) {
        const MsgId id = g.add(chips[i], chips[pow + i], vector_flits, post);
        g.messages[id].deps.push_back(in_prev[i]);
        prev_final_in[pow + i] = id;
      }
    }
  }
  g.num_phases = static_cast<std::int32_t>(
      static_cast<std::size_t>(iters) * phases_per_iter);
  narrow_external_messages(net, g);
  return g;
}

WorkloadGraph tree_allreduce(const sim::Network& net, Scope scope,
                             std::uint64_t vector_flits, int iters,
                             const std::vector<ChipId>& subset) {
  check_sizes("tree-allreduce", vector_flits, iters);
  const auto groups = groups_of_two(net, scope, "tree-allreduce", subset);
  WorkloadGraph g;
  g.name = "tree-allreduce";
  std::size_t m_max = 0;
  for (const auto& chips : groups) {
    std::size_t m = 0;
    while ((std::size_t{1} << m) < chips.size()) ++m;
    m_max = std::max(m_max, m);
  }
  const std::size_t phases_per_iter = 2 * m_max;

  for (const auto& chips : groups) {
    const std::size_t n = chips.size();
    std::size_t m = 0;
    while ((std::size_t{1} << m) < n) ++m;
    // Broadcast message delivered into each rank last iteration.
    std::vector<MsgId> prev_bcast_in(n, kInvalidMsg);
    for (int iter = 0; iter < iters; ++iter) {
      const auto base =
          static_cast<std::int32_t>(static_cast<std::size_t>(iter) *
                                    phases_per_iter);
      // Binomial reduce toward rank 0: at step k, rank r (r mod 2^(k+1)
      // == 2^k) sends its partial sum to r - 2^k. Each non-root sends
      // exactly once, after all of its own children have arrived.
      std::vector<std::vector<MsgId>> reduce_in(n);
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t bit = std::size_t{1} << k;
        const auto phase = static_cast<std::int32_t>(base + k);
        for (std::size_t r = bit; r < n; r += bit << 1) {
          const MsgId id = g.add(chips[r], chips[r - bit], vector_flits,
                                 phase);
          auto& deps = g.messages[id].deps;
          for (const MsgId child : reduce_in[r]) deps.push_back(child);
          if (prev_bcast_in[r] != kInvalidMsg)
            deps.push_back(prev_bcast_in[r]);
          reduce_in[r - bit].push_back(id);
        }
      }
      // Binomial broadcast back out of rank 0 (mirrored step order).
      std::vector<MsgId> bcast_in(n, kInvalidMsg);
      for (std::size_t k = m; k-- > 0;) {
        const std::size_t bit = std::size_t{1} << k;
        const auto phase =
            static_cast<std::int32_t>(base + m + (m - 1 - k));
        for (std::size_t r = 0; r + bit < n; r += bit << 1) {
          const MsgId id =
              g.add(chips[r], chips[r + bit], vector_flits, phase);
          auto& deps = g.messages[id].deps;
          if (r == 0) {
            for (const MsgId child : reduce_in[0]) deps.push_back(child);
          } else {
            deps.push_back(bcast_in[r]);
          }
          bcast_in[r + bit] = id;
        }
      }
      prev_bcast_in = bcast_in;
    }
  }
  g.num_phases = static_cast<std::int32_t>(
      static_cast<std::size_t>(iters) * phases_per_iter);
  narrow_external_messages(net, g);
  return g;
}

WorkloadGraph all_to_all(const sim::Network& net, Scope scope,
                         std::uint64_t pair_flits, int window, int iters,
                         const std::vector<ChipId>& subset) {
  check_sizes("all-to-all", pair_flits, iters);
  if (window < 0)
    throw std::invalid_argument("workload 'all-to-all': window must be >= 0");
  const auto groups = groups_of_two(net, scope, "all-to-all", subset);
  WorkloadGraph g;
  g.name = "all-to-all";
  std::size_t rounds_max = 0;
  for (const auto& chips : groups)
    rounds_max = std::max(rounds_max, chips.size() - 1);

  for (const auto& chips : groups) {
    const std::size_t n = chips.size();
    const std::size_t rounds = n - 1;
    const auto w = static_cast<std::size_t>(window);
    // by_round[r][i]: message chip i sent in round r+1 of this iteration.
    std::vector<std::vector<MsgId>> by_round(
        rounds, std::vector<MsgId>(n, kInvalidMsg));
    std::vector<MsgId> prev_last(n, kInvalidMsg);
    for (int iter = 0; iter < iters; ++iter) {
      for (std::size_t r = 1; r <= rounds; ++r) {
        const auto phase = static_cast<std::int32_t>(
            static_cast<std::size_t>(iter) * rounds_max + (r - 1));
        for (std::size_t i = 0; i < n; ++i) {
          const MsgId id =
              g.add(chips[i], chips[(i + r) % n], pair_flits, phase);
          if (w > 0) {
            // Sender window: round r waits for the sender's own round
            // r - window to be fully delivered.
            if (r > w)
              g.messages[id].deps.push_back(by_round[r - w - 1][i]);
            else if (prev_last[i] != kInvalidMsg)
              g.messages[id].deps.push_back(prev_last[i]);
          }
          by_round[r - 1][i] = id;
        }
      }
      prev_last = by_round[rounds - 1];
    }
  }
  g.num_phases = static_cast<std::int32_t>(
      static_cast<std::size_t>(iters) * rounds_max);
  narrow_external_messages(net, g);
  return g;
}

WorkloadGraph stencil3d(const sim::Network& net, Scope scope,
                        std::uint64_t halo_flits, int iters, bool periodic,
                        const std::vector<ChipId>& subset) {
  check_sizes("stencil-3d", halo_flits, iters);
  const auto groups = groups_of_two(net, scope, "stencil-3d", subset);
  WorkloadGraph g;
  g.name = "stencil-3d";

  for (const auto& chips : groups) {
    const std::size_t n = chips.size();
    // Most cubic exact factorization x <= y <= z of n (MPI_Dims_create
    // style): every chip participates, so a prime group size degenerates
    // to a 1x1xn chain rather than idling chips.
    std::size_t bx = 1, by = 1, bz = n;
    for (std::size_t x = 1; x * x * x <= n; ++x) {
      if (n % x != 0) continue;
      const std::size_t rest = n / x;
      for (std::size_t y = x; y * y <= rest; ++y) {
        if (rest % y != 0) continue;
        const std::size_t z = rest / y;
        if (z - x < bz - bx) {
          bx = x;
          by = y;
          bz = z;
        }
      }
    }
    const std::size_t dims[3] = {bx, by, bz};
    // Face-neighbour cell indices of each grid cell, deduplicated (a
    // periodic dimension of size 2 reaches the same cell both ways).
    const std::size_t cells = dims[0] * dims[1] * dims[2];
    std::vector<std::vector<std::size_t>> nbrs(cells);
    for (std::size_t iz = 0; iz < dims[2]; ++iz)
      for (std::size_t iy = 0; iy < dims[1]; ++iy)
        for (std::size_t ix = 0; ix < dims[0]; ++ix) {
          const std::size_t cell = ix + dims[0] * (iy + dims[1] * iz);
          const std::size_t c[3] = {ix, iy, iz};
          for (int d = 0; d < 3; ++d) {
            for (int dir = -1; dir <= 1; dir += 2) {
              std::size_t v[3] = {c[0], c[1], c[2]};
              if (dir < 0 && v[d] == 0) {
                if (!periodic) continue;
                v[d] = dims[d] - 1;
              } else if (dir > 0 && v[d] + 1 == dims[d]) {
                if (!periodic) continue;
                v[d] = 0;
              } else {
                v[d] += static_cast<std::size_t>(dir);
              }
              const std::size_t nb = v[0] + dims[0] * (v[1] + dims[1] * v[2]);
              if (nb == cell) continue;  // size-1 wrap
              auto& list = nbrs[cell];
              if (std::find(list.begin(), list.end(), nb) == list.end())
                list.push_back(nb);
            }
          }
        }
    // Iterations: every halo send of iteration t waits on all halos that
    // arrived at its chip in iteration t-1.
    std::vector<std::vector<MsgId>> in_prev(cells), in_cur(cells);
    for (int t = 0; t < iters; ++t) {
      for (auto& v : in_cur) v.clear();
      for (std::size_t cell = 0; cell < cells; ++cell) {
        for (const std::size_t nb : nbrs[cell]) {
          const MsgId id = g.add(chips[cell], chips[nb], halo_flits, t);
          for (const MsgId dep : in_prev[cell])
            g.messages[id].deps.push_back(dep);
          in_cur[nb].push_back(id);
        }
      }
      std::swap(in_prev, in_cur);
    }
  }
  g.num_phases = iters;
  narrow_external_messages(net, g);
  return g;
}

}  // namespace sldf::workload
