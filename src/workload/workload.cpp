#include "workload/workload.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace sldf::workload {

namespace {

/// Closed-loop runs generate nothing by rate; the engine still requires a
/// TrafficSource, so hand it one that is never consulted.
class NullTraffic final : public sim::TrafficSource {
 public:
  NodeId dest(const sim::Network&, NodeId, Rng&) override {
    return kInvalidNode;
  }
  [[nodiscard]] const char* name() const override { return "closed-loop"; }
};

struct MsgState {
  std::uint32_t pkts_total = 0;
  std::uint32_t pkts_sent = 0;
  std::uint32_t pkts_done = 0;
  std::uint32_t deps_left = 0;
  Cycle t_ready = 0;
  Cycle t_done = 0;
  /// 0 = pending/running, 1 = completed, 2 = failed (lost a packet to a
  /// fault drop), 3 = orphaned (a dependency failed, or its chip died
  /// before it issued). 2/3 are terminal without ever completing.
  std::uint8_t status = 0;
};

/// Per-chip issue queue: ready messages are pumped into the source
/// terminals strictly in ready order (head-of-line), which models one send
/// queue per chip and keeps packet issue — and therefore the routing RNG
/// stream — deterministic.
struct ChipQueue {
  std::vector<MsgId> q;
  std::size_t head = 0;
  bool active = false;

  [[nodiscard]] bool empty() const { return head >= q.size(); }
  void compact() {
    if (empty()) {
      q.clear();
      head = 0;
    }
  }
};

class Runner final : public sim::PacketListener {
 public:
  Runner(sim::Network& net, const WorkloadGraph& graph,
         const WorkloadRunConfig& cfg)
      : net_(net), graph_(graph), cfg_(cfg) {
    state_.resize(graph.messages.size());
    chip_q_.resize(net.num_chips());
    // Dependent adjacency (CSR) + initial dependency counts.
    dep_base_.assign(graph.messages.size() + 1, 0);
    for (const auto& m : graph.messages)
      for (const MsgId d : m.deps) ++dep_base_[d + 1];
    for (std::size_t i = 1; i < dep_base_.size(); ++i)
      dep_base_[i] += dep_base_[i - 1];
    dep_list_.resize(dep_base_.back());
    std::vector<std::uint32_t> fill(dep_base_.begin(), dep_base_.end() - 1);
    for (MsgId m = 0; m < graph.messages.size(); ++m) {
      const auto& spec = graph_.messages[m];
      for (const MsgId d : spec.deps) dep_list_[fill[d]++] = m;
      MsgState& st = state_[m];
      st.deps_left = static_cast<std::uint32_t>(spec.deps.size());
      const auto plen = static_cast<std::uint64_t>(cfg.sim.pkt_len);
      st.pkts_total =
          static_cast<std::uint32_t>((spec.flits + plen - 1) / plen);
    }
  }

  WorkloadResult run() {
    net_.reset_dynamic_state();
    sim::SimConfig sc = cfg_.sim;
    sc.inj_rate_per_chip = 0.0;  // purely closed-loop
    NullTraffic none;
    sim::Simulator sim(net_, sc, none);
    sim.set_listener(this);
    sim_ = &sim;

    // Roots (no dependencies) become ready at cycle 0, in id order; roots
    // with a future issue timestamp park in the timed queue instead.
    for (MsgId m = 0; m < graph_.messages.size(); ++m)
      if (state_[m].deps_left == 0) make_ready(m, 0);

    const auto total = static_cast<std::uint64_t>(graph_.messages.size());
    bool hit_horizon = false;
    // Terminal = completed + failed + orphaned: a lossy fault timeline
    // surfaces its failed messages and the run ends, instead of hanging
    // on deliveries that can never happen.
    while (done_ + failed_msgs_ + orphaned_msgs_ < total) {
      // Idle-cycle elision: when no chip has anything to issue this cycle,
      // let the engine jump ahead — bounded by the next timed release (the
      // only future work the engine cannot see) and the horizon. A stalled
      // graph (nothing in flight, nothing timed) must NOT skip, so the
      // dependency-cycle diagnostic below still fires instead of silently
      // running to the horizon.
      if (active_.empty() && (in_flight_ > 0 || !timed_.empty()))
        sim.try_skip_idle(timed_.empty()
                              ? cfg_.max_cycles
                              : std::min<Cycle>(cfg_.max_cycles,
                                                timed_.top().first));
      if (sim.now() >= cfg_.max_cycles) {
        hit_horizon = true;
        break;
      }
      release_timed(sim.now());
      pump_all();
      if (in_flight_ == 0 && active_.empty() && timed_.empty())
        throw std::runtime_error(
            "workload '" + graph_.name +
            "' stalled with nothing in flight (dependency cycle?)");
      sim.step();
    }
    return summarize(sim, !hit_horizon && done_ == total);
  }

  void on_packet_delivered(const sim::Packet& p, Cycle now) override {
    if (p.tag == sim::kNoTag) return;
    const MsgId m = p.tag;
    MsgState& st = state_[m];
    --in_flight_;
    ++packets_delivered_;
    flits_delivered_ += p.len;
    if (++st.pkts_done < st.pkts_total) return;
    // Message complete: record, then release dependents.
    st.status = 1;
    st.t_done = now;
    end_cycle_ = now;
    ++done_;
    for (std::uint32_t i = dep_base_[m]; i < dep_base_[m + 1]; ++i) {
      const MsgId d = dep_list_[i];
      if (--state_[d].deps_left == 0 && state_[d].status == 0)
        make_ready(d, now);
    }
  }

  void on_packet_dropped(const sim::Packet& p, Cycle /*now*/) override {
    if (p.tag == sim::kNoTag) return;
    --in_flight_;
    fail_message(p.tag, 2);
  }

 private:
  /// Marks `m` failed (kind 2) or orphaned (kind 3) and transitively
  /// orphans every dependent — none of them can ever become ready, and
  /// without this the run loop would wait on them forever. Iterative
  /// worklist: dependency chains (e.g. ring collectives) can be thousands
  /// of messages deep.
  void fail_message(MsgId m, std::uint8_t kind) {
    if (state_[m].status != 0) return;
    state_[m].status = kind;
    kind == 2 ? ++failed_msgs_ : ++orphaned_msgs_;
    std::vector<MsgId> work{m};
    while (!work.empty()) {
      const MsgId cur = work.back();
      work.pop_back();
      for (std::uint32_t i = dep_base_[cur]; i < dep_base_[cur + 1]; ++i) {
        const MsgId d = dep_list_[i];
        if (state_[d].status != 0) continue;
        state_[d].status = 3;
        ++orphaned_msgs_;
        work.push_back(d);
      }
    }
  }
  /// Dependencies satisfied: enqueue now, or park until the message's
  /// issue timestamp when that is still in the future.
  void make_ready(MsgId m, Cycle now) {
    const Cycle at = graph_.messages[m].issue;
    if (at > now) {
      timed_.push({at, m});
      return;
    }
    enqueue(m, now);
  }

  /// Moves every parked message whose issue time has arrived into its chip
  /// queue, in (issue, id) order — deterministic regardless of how the
  /// heap was filled.
  void release_timed(Cycle now) {
    while (!timed_.empty() && timed_.top().first <= now) {
      const MsgId m = timed_.top().second;
      timed_.pop();
      enqueue(m, now);
    }
  }

  void enqueue(MsgId m, Cycle now) {
    state_[m].t_ready = now;
    const ChipId c = graph_.messages[m].src;
    ChipQueue& cq = chip_q_[static_cast<std::size_t>(c)];
    cq.q.push_back(m);
    if (!cq.active) {
      cq.active = true;
      active_.push_back(c);
    }
  }

  /// Pushes packets of `cq`'s ready messages until the queue drains or a
  /// terminal refuses (backpressure). Returns true when drained.
  bool pump_chip(ChipQueue& cq) {
    while (!cq.empty()) {
      const MsgId m = cq.q[cq.head];
      const MessageSpec& spec = graph_.messages[m];
      MsgState& st = state_[m];
      if (st.status != 0) {  // failed mid-transfer: stop sending its packets
        ++cq.head;
        continue;
      }
      if (!net_.chip_live(spec.src) || !net_.chip_live(spec.dst)) {
        // A fault step killed an endpoint chip under this queued message.
        // Never started -> orphaned; partially sent -> failed (its landed
        // packets are half a transfer that can no longer finish).
        fail_message(m, st.pkts_sent == 0 ? std::uint8_t{3} : std::uint8_t{2});
        ++cq.head;
        continue;
      }
      // Striping runs over the LOGICAL terminal slots of the chip pair
      // (the plane-0 prefix of chip_nodes); on a multi-plane network the
      // engine remaps each packet to its selected plane's twins, and the
      // collective phase index rides along as the rail hint for the
      // collective-aware plane policy.
      const auto& snodes = net_.chip_nodes(spec.src);
      const auto& dnodes = net_.chip_nodes(spec.dst);
      const std::size_t ssz = net_.logical_chip_size(spec.src);
      const std::size_t dsz = net_.logical_chip_size(spec.dst);
      const std::size_t lanes =
          spec.stripe > 0
              ? std::min<std::size_t>(static_cast<std::size_t>(spec.stripe),
                                      std::min(ssz, dsz))
              : std::max(ssz, dsz);
      const auto plen = static_cast<std::uint64_t>(cfg_.sim.pkt_len);
      while (st.pkts_sent < st.pkts_total) {
        const std::uint32_t q = st.pkts_sent;
        // Stripe packets across the chip's terminal slots, slot j -> slot
        // j, exercising the parallel chip-boundary links of the wafer mesh
        // (or only the first `stripe` slots when the generator narrowed
        // the message to match an external port).
        const std::size_t slot = q % lanes;
        const NodeId sn = snodes[slot % ssz];
        const NodeId dn = dnodes[slot % dsz];
        int len = static_cast<int>(plen);
        if (q + 1 == st.pkts_total)
          len = static_cast<int>(spec.flits - static_cast<std::uint64_t>(q) *
                                                  plen);
        if (!sim_->inject_packet(sn, dn, len, m,
                                 static_cast<std::uint32_t>(spec.phase)))
          return false;
        ++st.pkts_sent;
        ++in_flight_;
        ++packets_;
      }
      ++cq.head;
    }
    cq.compact();
    return true;
  }

  void pump_all() {
    std::size_t i = 0;
    while (i < active_.size()) {
      const ChipId c = active_[i];
      ChipQueue& cq = chip_q_[static_cast<std::size_t>(c)];
      if (pump_chip(cq)) {
        cq.active = false;
        active_[i] = active_.back();  // deterministic swap-remove
        active_.pop_back();
      } else {
        ++i;  // blocked on a full terminal queue: retry next cycle
      }
    }
  }

  WorkloadResult summarize(const sim::Simulator& sim, bool completed) const {
    WorkloadResult r;
    r.workload = graph_.name;
    r.completed = completed;
    r.cycles = completed ? end_cycle_ : sim.now();
    r.messages = graph_.messages.size();
    r.packets = packets_;
    r.packets_delivered = packets_delivered_;
    r.flit_hops = sim.flit_hops();
    r.failed_messages = failed_msgs_;
    r.orphaned_messages = orphaned_msgs_;
    r.dropped_packets = sim.dropped_packets();
    r.rescued_packets = sim.rescued_packets();
    r.phases.resize(static_cast<std::size_t>(graph_.num_phases));
    if (cfg_.record_msgs) r.msgs.resize(graph_.messages.size());
    std::vector<bool> part(net_.num_chips(), false);
    double lat_sum = 0.0;
    for (MsgId m = 0; m < graph_.messages.size(); ++m) {
      const auto& spec = graph_.messages[m];
      const MsgState& st = state_[m];
      r.flits += spec.flits;
      part[static_cast<std::size_t>(spec.src)] = true;
      part[static_cast<std::size_t>(spec.dst)] = true;
      PhaseResult& ph = r.phases[static_cast<std::size_t>(spec.phase)];
      ++ph.messages;
      ph.flits += spec.flits;
      const bool msg_done = st.pkts_done == st.pkts_total;
      if (msg_done) {
        const auto lat = static_cast<double>(st.t_done - st.t_ready);
        lat_sum += lat;
        r.max_msg_cycles = std::max(r.max_msg_cycles, lat);
        ph.completed = std::max(ph.completed, st.t_done);
      }
      if (cfg_.record_msgs)
        r.msgs[m] = MsgRecord{st.t_ready, msg_done ? st.t_done : 0, msg_done};
    }
    r.chips = static_cast<int>(std::count(part.begin(), part.end(), true));
    if (done_ > 0) r.avg_msg_cycles = lat_sum / static_cast<double>(done_);
    // Achieved bandwidth counts *delivered* payload, so a run aborted at
    // max_cycles reports its true sustained rate, not the graph total.
    if (r.cycles > 0 && r.chips > 0)
      r.gbps_per_chip = static_cast<double>(flits_delivered_) *
                        cfg_.flit_bytes * cfg_.freq_ghz /
                        (static_cast<double>(r.cycles) *
                         static_cast<double>(r.chips));
    return r;
  }

  sim::Network& net_;
  const WorkloadGraph& graph_;
  const WorkloadRunConfig& cfg_;
  sim::Simulator* sim_ = nullptr;

  std::vector<MsgState> state_;
  std::vector<std::uint32_t> dep_base_;  ///< CSR offsets: msg -> dependents.
  std::vector<MsgId> dep_list_;
  std::vector<ChipQueue> chip_q_;
  std::vector<ChipId> active_;  ///< Chips with a non-empty issue queue.
  /// Messages whose dependencies are met but whose issue timestamp is
  /// still in the future, keyed (issue, id); empty for untimed graphs.
  std::priority_queue<std::pair<Cycle, MsgId>,
                      std::vector<std::pair<Cycle, MsgId>>,
                      std::greater<>>
      timed_;

  std::uint64_t in_flight_ = 0;  ///< Packets injected but not yet delivered.
  std::uint64_t done_ = 0;       ///< Messages fully delivered.
  std::uint64_t failed_msgs_ = 0;
  std::uint64_t orphaned_msgs_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t flits_delivered_ = 0;  ///< Payload flits fully delivered.
  Cycle end_cycle_ = 0;          ///< Cycle of the latest message completion.
};

}  // namespace

void validate(const WorkloadGraph& graph, const sim::Network& net) {
  const auto nchips = static_cast<ChipId>(net.num_chips());
  const auto n = static_cast<MsgId>(graph.messages.size());
  if (n == 0)
    throw std::invalid_argument("workload '" + graph.name +
                                "': empty message graph");
  for (MsgId m = 0; m < n; ++m) {
    const auto& spec = graph.messages[m];
    const std::string at =
        "workload '" + graph.name + "' message " + std::to_string(m);
    if (spec.src < 0 || spec.src >= nchips || spec.dst < 0 ||
        spec.dst >= nchips)
      throw std::invalid_argument(at + ": chip id out of range");
    if (spec.src == spec.dst)
      throw std::invalid_argument(at + ": src == dst");
    // A message on a fault-killed chip could never inject or eject: the
    // run would stall (or trip engine asserts) mid-simulation. Reject the
    // placement up front as a structured scenario error instead.
    if (!net.chip_live(spec.src) || !net.chip_live(spec.dst))
      throw ScenarioError(
          at + ": chip " +
          std::to_string(net.chip_live(spec.src) ? spec.dst : spec.src) +
          " is dead under the active fault mask");
    if (spec.flits == 0)
      throw std::invalid_argument(at + ": zero-flit message");
    if (spec.stripe < 0)
      throw std::invalid_argument(at + ": negative stripe");
    if (spec.phase < 0 || spec.phase >= graph.num_phases)
      throw std::invalid_argument(at + ": phase out of range");
    for (const MsgId d : spec.deps)
      if (d >= n)
        throw std::invalid_argument(at + ": dependency id out of range");
  }
}

WorkloadResult run_workload(sim::Network& net, const WorkloadGraph& graph,
                            const WorkloadRunConfig& cfg) {
  validate(graph, net);
  if (cfg.sim.pkt_len < 1)
    throw std::invalid_argument("run_workload: pkt_len must be >= 1");
  Runner runner(net, graph, cfg);
  return runner.run();
}

}  // namespace sldf::workload
