// Multi-tenant serving runs: N jobs, one wafer, one simulation.
//
// Each tenant is a (workload, placement) pair. The runner places every
// tenant on disjoint live chips through the PlacementAllocator, builds
// each tenant's message graph restricted to its placement (WorkloadEnv::
// chips), merges the graphs into one DAG with phase = tenant index, and
// executes the merged graph as ONE closed-loop run — tenants share links,
// external ports, and VC buffers exactly the way co-scheduled jobs share
// the wafer. Per-tenant reporting comes from the per-message records:
// TTC (the tenant's last completion cycle), exact p50/p99 message
// latency, and achieved GB/s per chip.
//
// With isolation baselines enabled, each tenant's graph is additionally
// run ALONE on the same network and placement; the ratio
// shared-TTC / isolated-TTC is the tenant's interference — 1.0 means the
// co-tenants cost it nothing, 2.0 means they doubled its runtime. The
// contiguous-vs-scattered placement gap in this ratio is the headline
// number of the serving experiments.
//
// Everything is deterministic: placements depend only on the network and
// spec order, the merged graph on the per-tenant graphs, and the run on
// the engine's fixed-seed execution — repeat runs and SLDF_SHARDS=1 vs 2
// are bit-identical (minimal/valiant routing; see docs/THREADING.md for
// the adaptive closed-loop caveat).
#pragma once

#include <string>
#include <vector>

#include "common/csv.hpp"
#include "core/scenario.hpp"
#include "trace/placement.hpp"
#include "workload/registry.hpp"

namespace sldf::trace {

/// One tenant job, parsed from the `tenant<i>.*` scenario keys.
struct TenantSpec {
  std::string name;        ///< "tenant<i>" (error context + reporting).
  std::string workload;    ///< WorkloadRegistry name.
  core::KvMap opts;        ///< Generator options for this tenant.
  PlacementPolicy placement = PlacementPolicy::Contiguous;
  int count = 0;           ///< Chips to allocate (`tenant<i>.chips = 8`).
  /// Explicit chip ids (`tenant<i>.chips = 0,1,2`); overrides `count`.
  std::vector<ChipId> explicit_chips;
};

struct TenantResult {
  std::string name;
  std::string workload;
  std::string placement;   ///< Policy name, or "explicit".
  std::vector<ChipId> chips;
  bool completed = false;  ///< All of the tenant's messages finished.
  Cycle ttc = 0;           ///< Tenant's last completion cycle, shared run.
  std::uint64_t messages = 0;
  std::uint64_t flits = 0;
  double avg_msg_cycles = 0.0;  ///< Mean ready -> complete latency.
  double p50_msg_cycles = 0.0;  ///< Exact nearest-rank percentiles.
  double p99_msg_cycles = 0.0;
  double gbps_per_chip = 0.0;
  Cycle isolated_ttc = 0;       ///< 0 when baselines are disabled.
  /// shared TTC / isolated TTC (0 when baselines are disabled).
  double interference = 0.0;
};

struct MultiTenantResult {
  std::string label;
  bool completed = false;  ///< Every tenant completed in the shared run.
  Cycle cycles = 0;        ///< Shared-run makespan.
  std::uint64_t flit_hops = 0;
  std::uint64_t packets_delivered = 0;  ///< Shared-run total deliveries.
  std::vector<TenantResult> tenants;
};

/// Parses and validates the spec's tenant keys: `tenants` must match the
/// configured `tenant<i>.*` entries, each tenant needs a workload and a
/// chips value. Throws ScenarioError on inconsistencies.
std::vector<TenantSpec> tenant_specs(const core::ScenarioSpec& spec);

/// Places the tenants on disjoint chips of `net` and runs them as one
/// shared simulation (plus per-tenant isolation baselines when
/// `isolation`). `env.chips` is overwritten per tenant; the other env
/// fields are shared.
MultiTenantResult run_tenants(sim::Network& net,
                              const std::vector<TenantSpec>& tenants,
                              const workload::WorkloadRunConfig& cfg,
                              const workload::WorkloadEnv& env,
                              bool isolation);

/// The scenario entry point `sldf` dispatches to when `tenants > 0`:
/// builds the network (faults included), parses the tenant keys, and runs.
MultiTenantResult run_tenant_scenario(const core::ScenarioSpec& spec);

/// Prints the per-tenant table; appends one CSV row per tenant
/// (tenants_csv_header() order).
void print_tenants(const MultiTenantResult& r);
void append_tenants_csv(CsvWriter& csv, const MultiTenantResult& r);
const std::vector<std::string>& tenants_csv_header();

}  // namespace sldf::trace
