#include "trace/placement.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "topo/hier.hpp"

namespace sldf::trace {

const char* to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::Contiguous: return "contiguous";
    case PlacementPolicy::Scattered: return "scattered";
  }
  return "?";
}

PlacementPolicy parse_placement(const std::string& s,
                                const std::string& context) {
  if (s == "contiguous") return PlacementPolicy::Contiguous;
  if (s == "scattered") return PlacementPolicy::Scattered;
  throw ScenarioError(context +
                      ": placement expects contiguous|scattered, got '" + s +
                      "'");
}

PlacementAllocator::PlacementAllocator(const sim::Network& net)
    : net_(&net), epoch_(net.fault_epoch()) {
  const auto& hier = net.topo<topo::HierTopo>();
  const auto nchips = static_cast<ChipId>(net.num_chips());
  taken_.assign(static_cast<std::size_t>(nchips), 0);
  order_.reserve(static_cast<std::size_t>(nchips));
  for (ChipId c = 0; c < nchips; ++c)
    if (net.chip_live(c)) order_.push_back(c);
  std::sort(order_.begin(), order_.end(), [&](ChipId a, ChipId b) {
    const auto ca = hier.chip_cgroup[static_cast<std::size_t>(a)];
    const auto cb = hier.chip_cgroup[static_cast<std::size_t>(b)];
    if (ca != cb) return ca < cb;
    return hier.chip_ring_rank[static_cast<std::size_t>(a)] <
           hier.chip_ring_rank[static_cast<std::size_t>(b)];
  });
  cgroup_of_.reserve(order_.size());
  for (const ChipId c : order_)
    cgroup_of_.push_back(hier.chip_cgroup[static_cast<std::size_t>(c)]);
}

void PlacementAllocator::check_epoch(const std::string& tenant) const {
  if (net_->fault_epoch() != epoch_)
    throw ScenarioError(
        tenant +
        ": placement free list is stale — the network's fault mask changed "
        "(epoch " +
        std::to_string(epoch_) + " -> " +
        std::to_string(net_->fault_epoch()) +
        ", an online failure or repair was applied) since this allocator "
        "was built; construct a new PlacementAllocator against the current "
        "mask");
}

int PlacementAllocator::free_chips() const {
  int n = 0;
  for (const ChipId c : order_)
    if (!taken_[static_cast<std::size_t>(c)]) ++n;
  return n;
}

std::vector<ChipId> PlacementAllocator::allocate(int count,
                                                 PlacementPolicy policy,
                                                 const std::string& tenant) {
  check_epoch(tenant);
  if (count < 1)
    throw ScenarioError(tenant + ": chip count must be >= 1, got " +
                        std::to_string(count));
  std::vector<ChipId> out;
  out.reserve(static_cast<std::size_t>(count));
  // Chips are marked taken as they are claimed (and rolled back on
  // failure) so the scattered scan advances deeper into each C-group pass
  // by pass.
  if (policy == PlacementPolicy::Contiguous) {
    for (const ChipId c : order_) {
      if (taken_[static_cast<std::size_t>(c)]) continue;
      taken_[static_cast<std::size_t>(c)] = 1;
      out.push_back(c);
      if (static_cast<int>(out.size()) == count) break;
    }
  } else {
    // One free chip per C-group per pass, C-groups in ascending order;
    // repeat until filled or the pool is dry.
    while (static_cast<int>(out.size()) < count) {
      const std::size_t before = out.size();
      std::int32_t served = -1;  // last C-group claimed from this pass
      for (std::size_t i = 0;
           i < order_.size() && static_cast<int>(out.size()) < count; ++i) {
        const ChipId c = order_[i];
        if (cgroup_of_[i] == served) continue;
        if (taken_[static_cast<std::size_t>(c)]) continue;
        taken_[static_cast<std::size_t>(c)] = 1;
        out.push_back(c);
        served = cgroup_of_[i];
      }
      if (out.size() == before) break;  // pool dry
    }
  }
  if (static_cast<int>(out.size()) < count) {
    for (const ChipId c : out) taken_[static_cast<std::size_t>(c)] = 0;
    throw ScenarioError(tenant + ": needs " + std::to_string(count) +
                        " chips but only " + std::to_string(free_chips()) +
                        " live chips remain unclaimed");
  }
  std::sort(out.begin(), out.end());
  return out;
}

void PlacementAllocator::reserve(const std::vector<ChipId>& chips,
                                 const std::string& tenant) {
  check_epoch(tenant);
  const auto nchips = static_cast<ChipId>(net_->num_chips());
  for (const ChipId c : chips) {
    if (c < 0 || c >= nchips)
      throw ScenarioError(tenant + ": chip " + std::to_string(c) +
                          " out of range (network has " +
                          std::to_string(nchips) + " chips)");
    if (!net_->chip_live(c))
      throw ScenarioError(tenant + ": chip " + std::to_string(c) +
                          " is dead under the active fault mask");
    if (taken_[static_cast<std::size_t>(c)])
      throw ScenarioError(tenant + ": chip " + std::to_string(c) +
                          " is already claimed by another tenant");
    taken_[static_cast<std::size_t>(c)] = 1;
  }
}

}  // namespace sldf::trace
