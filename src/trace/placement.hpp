// Tenant placement: carving disjoint chip groups out of the live wafer.
//
// The allocator hands each tenant a set of chips no other tenant holds,
// skipping chips the active fault mask killed (PR 4): placement composes
// with fault injection the way a real scheduler drains dead boards from
// its free pool. Two policies bound the interference spectrum:
//
//   contiguous — consecutive chips in (C-group, Hamiltonian ring rank)
//                order, the same physical-adjacency order the collectives
//                use. Tenants occupy compact wafer regions and mostly
//                keep their traffic on their own links.
//   scattered  — round-robin across C-groups, one chip per group per
//                pass. Tenants interleave across the wafer and share
//                external ports and mesh rows, the worst-case packing.
//
// The contiguous-vs-scattered TTC gap under a shared run is exactly the
// per-tenant interference the serving layer reports.
#pragma once

#include <string>
#include <vector>

#include "sim/network.hpp"

namespace sldf::trace {

enum class PlacementPolicy : std::uint8_t { Contiguous, Scattered };

/// Parses "contiguous" | "scattered"; `context` prefixes the error.
PlacementPolicy parse_placement(const std::string& s,
                                const std::string& context);
const char* to_string(PlacementPolicy p);

/// Stateful free-list over the live chips of `net`. allocate()/reserve()
/// permanently claim chips, so successive calls place tenants on disjoint
/// groups; exhaustion throws ScenarioError naming the tenant.
///
/// The free list is a snapshot of the fault mask at construction time: a
/// fault-timeline step (failure OR repair) that lands between construction
/// and a later allocate()/reserve() invalidates it — a repair would leave
/// revived chips invisible, a failure would hand out dead ones. Both claim
/// paths therefore check the network's fault epoch and throw ScenarioError
/// on mismatch; construct a fresh allocator against the settled mask.
class PlacementAllocator {
 public:
  explicit PlacementAllocator(const sim::Network& net);

  /// Claims `count` free chips under `policy` for `tenant` (error context).
  std::vector<ChipId> allocate(int count, PlacementPolicy policy,
                               const std::string& tenant);

  /// Claims an explicit chip list; throws ScenarioError on out-of-range,
  /// dead, or already-claimed chips.
  void reserve(const std::vector<ChipId>& chips, const std::string& tenant);

  /// Live chips still unclaimed.
  [[nodiscard]] int free_chips() const;

 private:
  /// Throws ScenarioError when the network's fault epoch moved past the
  /// snapshot this allocator was built from.
  void check_epoch(const std::string& tenant) const;

  const sim::Network* net_;
  std::uint64_t epoch_ = 0;  ///< net_->fault_epoch() at construction.
  /// All live chips in (C-group, ring rank) order; the contiguous scan
  /// order and the per-C-group segments the scattered policy cycles over.
  std::vector<ChipId> order_;
  std::vector<std::int32_t> cgroup_of_;  ///< C-group of order_[i].
  std::vector<std::uint8_t> taken_;      ///< Indexed by ChipId.
};

}  // namespace sldf::trace
