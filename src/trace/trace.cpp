#include "trace/trace.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>

#include "common/rng.hpp"
#include "workload/collectives.hpp"

namespace sldf::trace {

namespace {

[[noreturn]] void fail(const std::string& origin, std::size_t line,
                       const std::string& what) {
  throw TraceError(origin + ":" + std::to_string(line) + ": " + what);
}

/// Strict unsigned parse (the format has no negative fields; a '-' is as
/// malformed as a letter).
bool parse_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  std::uint64_t v = 0;
  for (const char ch : tok) {
    if (ch < '0' || ch > '9') return false;
    const auto d = static_cast<std::uint64_t>(ch - '0');
    if (v > (~0ULL - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

}  // namespace

Trace parse_trace(std::istream& in, const std::string& origin) {
  Trace t;
  std::string raw;
  std::size_t lineno = 0;
  bool saw_header = false;
  bool saw_chips = false;
  Cycle prev_issue = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // blank / comment-only line
    if (!saw_header) {
      std::string version;
      if (tok != "sldf-trace" || !(ls >> version))
        fail(origin, lineno, "expected header 'sldf-trace 1'");
      if (version != "1")
        fail(origin, lineno,
             "unsupported trace version '" + version + "' (have 1)");
      saw_header = true;
      continue;
    }
    if (tok == "chips") {
      if (saw_chips) fail(origin, lineno, "duplicate 'chips' line");
      std::uint64_t n = 0;
      std::string cnt;
      if (!(ls >> cnt) || !parse_u64(cnt, n) || n == 0 || n > 0x7fffffffULL)
        fail(origin, lineno, "'chips' expects a positive chip count");
      t.chips = static_cast<std::int32_t>(n);
      saw_chips = true;
      continue;
    }
    if (tok != "m")
      fail(origin, lineno, "unknown directive '" + tok + "'");
    if (!saw_chips) fail(origin, lineno, "'m' before 'chips'");
    std::string f_issue, f_src, f_dst, f_flits;
    if (!(ls >> f_issue >> f_src >> f_dst >> f_flits))
      fail(origin, lineno, "'m' expects: m <issue> <src> <dst> <flits> [deps]");
    TraceMsg m;
    std::uint64_t v = 0;
    if (!parse_u64(f_issue, v))
      fail(origin, lineno, "malformed issue timestamp '" + f_issue + "'");
    m.issue = v;
    if (!parse_u64(f_src, v) || v >= static_cast<std::uint64_t>(t.chips))
      fail(origin, lineno, "unknown chip id '" + f_src + "' (trace has " +
                               std::to_string(t.chips) + " chips)");
    m.src = static_cast<std::int32_t>(v);
    if (!parse_u64(f_dst, v) || v >= static_cast<std::uint64_t>(t.chips))
      fail(origin, lineno, "unknown chip id '" + f_dst + "' (trace has " +
                               std::to_string(t.chips) + " chips)");
    m.dst = static_cast<std::int32_t>(v);
    if (m.src == m.dst)
      fail(origin, lineno, "message src == dst (rank " + f_src + ")");
    if (!parse_u64(f_flits, v) || v == 0)
      fail(origin, lineno, "malformed flit count '" + f_flits + "'");
    m.flits = v;
    if (!t.msgs.empty() && m.issue < prev_issue)
      fail(origin, lineno,
           "non-monotone issue timestamp " + f_issue + " (previous was " +
               std::to_string(prev_issue) + ")");
    prev_issue = m.issue;
    const auto id = static_cast<std::uint64_t>(t.msgs.size());
    std::string deps;
    if (ls >> deps) {
      std::string extra;
      if (ls >> extra)
        fail(origin, lineno, "trailing token '" + extra + "' after deps");
      std::size_t pos = 0;
      while (pos <= deps.size()) {
        const auto comma = deps.find(',', pos);
        const std::string d = deps.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!parse_u64(d, v) || v >= id)
          fail(origin, lineno,
               "dep '" + d + "' does not name an earlier message");
        m.deps.push_back(static_cast<std::uint32_t>(v));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
    t.msgs.push_back(std::move(m));
  }
  if (!saw_header) fail(origin, lineno + 1, "empty trace (no header)");
  if (!saw_chips) fail(origin, lineno + 1, "missing 'chips' line");
  return t;
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TraceError(path + ": cannot open trace file");
  return parse_trace(in, path);
}

void write_trace(std::ostream& out, const Trace& t) {
  out << "sldf-trace 1\n";
  out << "chips " << t.chips << "\n";
  for (const auto& m : t.msgs) {
    out << "m " << m.issue << " " << m.src << " " << m.dst << " " << m.flits;
    for (std::size_t i = 0; i < m.deps.size(); ++i)
      out << (i == 0 ? " " : ",") << m.deps[i];
    out << "\n";
  }
}

Trace from_graph(const workload::WorkloadGraph& g) {
  Trace t;
  // Participating chips -> dense logical ranks, ascending chip-id order.
  std::vector<ChipId> chips;
  for (const auto& m : g.messages) {
    chips.push_back(m.src);
    chips.push_back(m.dst);
  }
  std::sort(chips.begin(), chips.end());
  chips.erase(std::unique(chips.begin(), chips.end()), chips.end());
  std::vector<std::int32_t> rank;
  if (!chips.empty())
    rank.resize(static_cast<std::size_t>(chips.back()) + 1, -1);
  for (std::size_t r = 0; r < chips.size(); ++r)
    rank[static_cast<std::size_t>(chips[r])] = static_cast<std::int32_t>(r);
  t.chips = static_cast<std::int32_t>(chips.size());

  // Effective issue = max(own issue, deps' effective issue): sorting by it
  // (stably, so dep order survives ties) yields a monotone file where every
  // dep still precedes its dependent.
  const std::size_t n = g.messages.size();
  std::vector<Cycle> eff(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    Cycle e = g.messages[i].issue;
    for (const auto d : g.messages[i].deps)
      e = std::max(e, eff[static_cast<std::size_t>(d)]);
    eff[i] = e;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return eff[a] < eff[b]; });
  std::vector<std::uint32_t> new_id(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    new_id[order[i]] = static_cast<std::uint32_t>(i);

  t.msgs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& src = g.messages[order[i]];
    TraceMsg m;
    m.issue = eff[order[i]];
    m.src = rank[static_cast<std::size_t>(src.src)];
    m.dst = rank[static_cast<std::size_t>(src.dst)];
    m.flits = src.flits;
    for (const auto d : src.deps)
      m.deps.push_back(new_id[static_cast<std::size_t>(d)]);
    std::sort(m.deps.begin(), m.deps.end());
    t.msgs.push_back(std::move(m));
  }
  return t;
}

Trace request_reply_trace(std::int32_t chips, int requests,
                          std::uint64_t req_flits, std::uint64_t rep_flits,
                          Cycle mean_gap, std::uint64_t seed) {
  if (chips < 2)
    throw ScenarioError("request-reply trace needs >= 2 chips, got " +
                        std::to_string(chips));
  if (requests < 1)
    throw ScenarioError("request-reply trace needs >= 1 requests");
  if (req_flits == 0 || rep_flits == 0)
    throw ScenarioError("request-reply trace flit sizes must be >= 1");
  Trace t;
  t.chips = chips;
  Rng rng(SplitMix64(seed ^ 0x7265712d72657031ULL).next());
  const auto n = static_cast<std::uint64_t>(chips);
  Cycle at = 0;
  for (int r = 0; r < requests; ++r) {
    at += rng.below(2 * mean_gap + 1);
    const auto client = static_cast<std::int32_t>(rng.below(n));
    // Distinct server, uniform over the other chips.
    const auto server = static_cast<std::int32_t>(
        (static_cast<std::uint64_t>(client) + 1 + rng.below(n - 1)) % n);
    TraceMsg req;
    req.issue = at;
    req.src = client;
    req.dst = server;
    req.flits = req_flits;
    const auto req_id = static_cast<std::uint32_t>(t.msgs.size());
    t.msgs.push_back(std::move(req));
    TraceMsg rep;
    rep.issue = at;  // gated by the request via deps, not the timestamp
    rep.src = server;
    rep.dst = client;
    rep.flits = rep_flits;
    rep.deps.push_back(req_id);
    t.msgs.push_back(std::move(rep));
  }
  return t;
}

workload::WorkloadGraph to_graph(const Trace& t, const sim::Network& net,
                                 const std::vector<ChipId>& chip_map,
                                 const std::string& context) {
  if (static_cast<std::int32_t>(chip_map.size()) != t.chips)
    throw ScenarioError(context + ": trace spans " + std::to_string(t.chips) +
                        " ranks but the placement has " +
                        std::to_string(chip_map.size()) + " chips");
  const auto nchips = static_cast<ChipId>(net.num_chips());
  for (std::size_t r = 0; r < chip_map.size(); ++r) {
    const ChipId c = chip_map[r];
    if (c < 0 || c >= nchips)
      throw ScenarioError(context + ": rank " + std::to_string(r) +
                          " maps to chip " + std::to_string(c) +
                          ", out of range (network has " +
                          std::to_string(nchips) + " chips)");
    if (!net.chip_live(c))
      throw ScenarioError(context + ": rank " + std::to_string(r) +
                          " maps to chip " + std::to_string(c) +
                          ", dead under the active fault mask");
  }
  workload::WorkloadGraph g;
  g.name = "trace-replay";
  g.num_phases = 1;
  g.messages.reserve(t.msgs.size());
  for (const auto& m : t.msgs) {
    const auto id = g.add(chip_map[static_cast<std::size_t>(m.src)],
                          chip_map[static_cast<std::size_t>(m.dst)],
                          m.flits, 0);
    g.messages[id].issue = m.issue;
    g.messages[id].deps.assign(m.deps.begin(), m.deps.end());
  }
  workload::narrow_external_messages(net, g);
  return g;
}

}  // namespace sldf::trace
