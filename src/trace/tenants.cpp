#include "trace/tenants.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace sldf::trace {

namespace {

/// `tenant<i>.chips` value: a comma means an explicit id list, otherwise
/// a count to allocate.
void parse_chips(const std::string& value, TenantSpec& t) {
  if (value.find(',') != std::string::npos) {
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
      item = Cli::trim(item);
      if (item.empty()) continue;
      long v = 0;
      if (!Cli::parse_long(item, v) || v < 0)
        throw ScenarioError(t.name + ".chips: expected a chip id, got '" +
                            item + "'");
      t.explicit_chips.push_back(static_cast<ChipId>(v));
    }
    if (t.explicit_chips.empty())
      throw ScenarioError(t.name + ".chips: empty chip list");
    return;
  }
  long v = 0;
  if (!Cli::parse_long(value, v) || v < 1)
    throw ScenarioError(t.name +
                        ".chips: expected a chip count >= 1 or a "
                        "comma-separated id list, got '" +
                        value + "'");
  t.count = static_cast<int>(v);
}

}  // namespace

std::vector<TenantSpec> tenant_specs(const core::ScenarioSpec& spec) {
  if (spec.tenants < 1)
    throw ScenarioError("tenant run: 'tenants' must be >= 1");
  if (static_cast<int>(spec.tenant.size()) > spec.tenants)
    throw ScenarioError(
        "tenant run: tenant" + std::to_string(spec.tenant.size() - 1) +
        ".* keys are configured but tenants = " +
        std::to_string(spec.tenants));
  std::vector<TenantSpec> out;
  out.reserve(static_cast<std::size_t>(spec.tenants));
  for (int i = 0; i < spec.tenants; ++i) {
    TenantSpec t;
    t.name = "tenant" + std::to_string(i);
    const bool have = i < static_cast<int>(spec.tenant.size());
    if (!have || spec.tenant[static_cast<std::size_t>(i)].workload.empty())
      throw ScenarioError("tenant run: " + t.name +
                          ".workload is required (tenants = " +
                          std::to_string(spec.tenants) + ")");
    const auto& keys = spec.tenant[static_cast<std::size_t>(i)];
    t.workload = keys.workload;
    t.opts = keys.opts;
    if (!keys.placement.empty())
      t.placement = parse_placement(keys.placement, t.name + ".placement");
    if (keys.chips.empty())
      throw ScenarioError("tenant run: " + t.name + ".chips is required");
    parse_chips(keys.chips, t);
    out.push_back(std::move(t));
  }
  return out;
}

MultiTenantResult run_tenants(sim::Network& net,
                              const std::vector<TenantSpec>& tenants,
                              const workload::WorkloadRunConfig& cfg,
                              const workload::WorkloadEnv& env,
                              bool isolation) {
  if (tenants.empty())
    throw ScenarioError("tenant run: no tenants configured");

  // Place every tenant, then build its graph restricted to its placement.
  struct Built {
    std::vector<ChipId> chips;
    std::string placement;
    workload::WorkloadGraph graph;
  };
  PlacementAllocator alloc(net);
  std::vector<Built> built;
  built.reserve(tenants.size());
  for (const auto& t : tenants) {
    Built b;
    if (!t.explicit_chips.empty()) {
      alloc.reserve(t.explicit_chips, t.name);
      b.chips = t.explicit_chips;
      std::sort(b.chips.begin(), b.chips.end());
      b.placement = "explicit";
    } else {
      b.chips = alloc.allocate(t.count, t.placement, t.name);
      b.placement = to_string(t.placement);
    }
    workload::WorkloadEnv te = env;
    te.chips = b.chips;
    b.graph = workload::make_workload(t.workload, net, t.opts, te);
    if (b.graph.messages.empty())
      throw ScenarioError(t.name + ": workload '" + t.workload +
                          "' produced no messages");
    built.push_back(std::move(b));
  }

  // One shared DAG, phase = tenant index (per-tenant completion falls out
  // of the runner's phase accounting; messages keep their deps + issue
  // timestamps, shifted by each tenant's id offset).
  workload::WorkloadGraph merged;
  merged.name = "tenants";
  std::vector<std::size_t> begin(built.size() + 1, 0);
  for (std::size_t i = 0; i < built.size(); ++i) {
    const auto off = static_cast<workload::MsgId>(merged.messages.size());
    begin[i] = merged.messages.size();
    for (const auto& m : built[i].graph.messages) {
      merged.messages.push_back(m);
      auto& mm = merged.messages.back();
      mm.phase = static_cast<std::int32_t>(i);
      for (auto& d : mm.deps) d += off;
    }
  }
  begin[built.size()] = merged.messages.size();
  merged.num_phases = static_cast<std::int32_t>(built.size());

  workload::WorkloadRunConfig rc = cfg;
  rc.record_msgs = true;
  const workload::WorkloadResult shared =
      workload::run_workload(net, merged, rc);

  MultiTenantResult out;
  out.completed = shared.completed;
  out.cycles = shared.cycles;
  out.flit_hops = shared.flit_hops;
  out.packets_delivered = shared.packets_delivered;
  out.tenants.reserve(built.size());
  for (std::size_t i = 0; i < built.size(); ++i) {
    TenantResult tr;
    tr.name = tenants[i].name;
    tr.workload = tenants[i].workload;
    tr.placement = built[i].placement;
    tr.chips = built[i].chips;
    tr.messages = begin[i + 1] - begin[i];
    bool all = true;
    std::vector<double> lats;
    lats.reserve(tr.messages);
    for (std::size_t m = begin[i]; m < begin[i + 1]; ++m) {
      tr.flits += merged.messages[m].flits;
      const auto& rec = shared.msgs[m];
      if (!rec.completed) {
        all = false;
        continue;
      }
      tr.ttc = std::max(tr.ttc, rec.done);
      lats.push_back(static_cast<double>(rec.done - rec.ready));
    }
    tr.completed = all;
    if (!lats.empty()) {
      double sum = 0.0;
      for (const double v : lats) sum += v;
      tr.avg_msg_cycles = sum / static_cast<double>(lats.size());
      tr.p50_msg_cycles = exact_percentile(lats, 50.0);
      tr.p99_msg_cycles = exact_percentile(lats, 99.0);
    }
    if (tr.completed && tr.ttc > 0)
      tr.gbps_per_chip = static_cast<double>(tr.flits) * cfg.flit_bytes *
                         cfg.freq_ghz /
                         (static_cast<double>(tr.ttc) *
                          static_cast<double>(tr.chips.size()));
    out.tenants.push_back(std::move(tr));
  }

  // Isolation baselines: the same graph, network, and placement — minus
  // the co-tenants. The shared/isolated TTC ratio is the interference.
  if (isolation) {
    for (std::size_t i = 0; i < built.size(); ++i) {
      const workload::WorkloadResult iso =
          workload::run_workload(net, built[i].graph, cfg);
      TenantResult& tr = out.tenants[i];
      tr.isolated_ttc = iso.cycles;
      if (iso.completed && tr.completed && iso.cycles > 0)
        tr.interference = static_cast<double>(tr.ttc) /
                          static_cast<double>(iso.cycles);
    }
  }
  return out;
}

MultiTenantResult run_tenant_scenario(const core::ScenarioSpec& spec) {
  if (!spec.workload.empty())
    throw ScenarioError(
        "tenant run: the top-level 'workload' key conflicts with tenants "
        "mode — each job is named by its tenant<i>.workload key");
  const std::vector<TenantSpec> tenants = tenant_specs(spec);
  core::KvMap gen_opts;
  const workload::WorkloadRunConfig rc =
      core::workload_run_config(spec, &gen_opts);
  if (!gen_opts.empty())
    throw ScenarioError("tenant run: 'workload." + gen_opts.begin()->first +
                        "' has no effect — set 'tenant<i>." +
                        gen_opts.begin()->first + "' instead");

  sim::Network net;
  core::build_network(net, spec);
  workload::WorkloadEnv env;
  env.flit_bytes = rc.flit_bytes;
  env.trace_file = spec.trace_file;
  env.trace_seed = spec.trace_seed;
  MultiTenantResult r =
      run_tenants(net, tenants, rc, env, spec.tenants_isolation);
  r.label = spec.label;
  return r;
}

void print_tenants(const MultiTenantResult& r) {
  std::printf("# %s (tenants=%zu, makespan=%llu cycles, completed=%s)\n",
              r.label.c_str(), r.tenants.size(),
              static_cast<unsigned long long>(r.cycles),
              r.completed ? "yes" : "no");
  std::printf("%-9s %-26s %-11s %-6s %-8s %-10s %-9s %-9s %-10s %-10s %-7s\n",
              "tenant", "workload", "placement", "chips", "msgs", "ttc",
              "p50_msg", "p99_msg", "GB/s/chip", "iso_ttc", "interf");
  for (const auto& t : r.tenants) {
    char iso[32] = "-";
    char ratio[32] = "-";
    if (t.isolated_ttc > 0) {
      std::snprintf(iso, sizeof(iso), "%llu",
                    static_cast<unsigned long long>(t.isolated_ttc));
      if (t.interference > 0.0)
        std::snprintf(ratio, sizeof(ratio), "%.3f", t.interference);
    }
    std::printf(
        "%-9s %-26s %-11s %-6zu %-8llu %-10llu %-9.0f %-9.0f %-10.4f "
        "%-10s %-7s\n",
        t.name.c_str(), t.workload.c_str(), t.placement.c_str(),
        t.chips.size(), static_cast<unsigned long long>(t.messages),
        static_cast<unsigned long long>(t.ttc), t.p50_msg_cycles,
        t.p99_msg_cycles, t.gbps_per_chip, iso, ratio);
  }
  std::printf("\n");
  std::fflush(stdout);
}

const std::vector<std::string>& tenants_csv_header() {
  static const std::vector<std::string> header = {
      "series",         "tenant",         "workload",
      "placement",      "chips",          "messages",
      "flits",          "ttc_cycles",     "avg_msg_cycles",
      "p50_msg_cycles", "p99_msg_cycles", "gbps_per_chip",
      "isolated_ttc",   "interference",   "completed"};
  return header;
}

void append_tenants_csv(CsvWriter& csv, const MultiTenantResult& r) {
  for (const auto& t : r.tenants) {
    csv.row(std::vector<std::string>{
        r.label, t.name, t.workload, t.placement,
        std::to_string(t.chips.size()), std::to_string(t.messages),
        std::to_string(t.flits), std::to_string(t.ttc),
        CsvWriter::format_num(t.avg_msg_cycles),
        CsvWriter::format_num(t.p50_msg_cycles),
        CsvWriter::format_num(t.p99_msg_cycles),
        CsvWriter::format_num(t.gbps_per_chip),
        std::to_string(t.isolated_ttc),
        CsvWriter::format_num(t.interference), t.completed ? "1" : "0"});
  }
}

}  // namespace sldf::trace
