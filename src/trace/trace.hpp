// Deterministic job traces: a serialized message DAG with issue timestamps.
//
// A trace is the unit of workload portability in the multi-tenant serving
// layer. It records one job as logical-rank messages — "rank S sends F
// flits to rank D no earlier than cycle T, after messages {deps}" — with
// ranks in [0, chips) instead of physical chip ids, so the same trace file
// replays onto any placement of `chips` live chips the tenant allocator
// hands out. Traces are produced two ways: captured from any registered
// workload generator (from_graph / `sldf --emit-trace`), or synthesized by
// the seeded request/reply inference generator (request_reply_trace).
//
// File format (line-oriented, '#' comments, canonical writer):
//
//   sldf-trace 1
//   chips <N>
//   m <issue> <src> <dst> <flits> [<d0>,<d1>,...]
//
// Message ids are implicit file order (0-based); deps refer to earlier
// ids only and issue timestamps are non-decreasing down the file, so a
// valid trace is a topologically sorted DAG by construction. Violations —
// and every other malformed line — throw TraceError with the offending
// file:line, a structured error the driver reports instead of aborting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "workload/workload.hpp"

namespace sldf::trace {

/// A malformed or inconsistent trace file (parse errors carry file:line).
class TraceError : public ScenarioError {
 public:
  explicit TraceError(const std::string& what) : ScenarioError(what) {}
};

/// One traced message. `src`/`dst` are logical ranks in [0, chips);
/// `deps` are indices of earlier messages in Trace::msgs.
struct TraceMsg {
  Cycle issue = 0;           ///< Earliest issue cycle (non-decreasing).
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::uint64_t flits = 0;
  std::vector<std::uint32_t> deps;
};

struct Trace {
  std::int32_t chips = 0;    ///< Logical ranks the trace spans.
  std::vector<TraceMsg> msgs;
};

/// Parses a trace from `in`; `origin` (e.g. the file path) prefixes
/// TraceError messages as "origin:line".
Trace parse_trace(std::istream& in, const std::string& origin);

/// Opens and parses `path`; missing/unreadable files throw TraceError.
Trace load_trace(const std::string& path);

/// Writes `t` in canonical form (round-trips through parse_trace).
void write_trace(std::ostream& out, const Trace& t);

/// Captures a workload graph as a trace: participating chips become
/// logical ranks 0..k-1 in ascending chip-id order, messages are ordered
/// by (effective issue, original id) where effective issue is
/// max(own issue, deps' effective issues) — so the emitted file satisfies
/// the monotone-timestamp invariant for any valid graph.
Trace from_graph(const workload::WorkloadGraph& g);

/// Synthesized inference-serving trace: `requests` request/reply pairs
/// between seeded-random client/server rank pairs. Request r issues at a
/// seeded-random gap after request r-1 (uniform in [0, 2*mean_gap]); the
/// reply depends on its request. Deterministic for a fixed seed.
Trace request_reply_trace(std::int32_t chips, int requests,
                          std::uint64_t req_flits, std::uint64_t rep_flits,
                          Cycle mean_gap, std::uint64_t seed);

/// Instantiates `t` onto physical chips: rank r -> chip_map[r]. Throws
/// ScenarioError when chip_map.size() != t.chips or a mapped chip is out
/// of range / dead under the active fault mask. The returned graph has one
/// phase per trace (phase 0); callers overlay tenant phases themselves.
workload::WorkloadGraph to_graph(const Trace& t, const sim::Network& net,
                                 const std::vector<ChipId>& chip_map,
                                 const std::string& context);

}  // namespace sldf::trace
