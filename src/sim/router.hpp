// Input-queued virtual-channel router. The per-cycle pipeline
// (RC -> VA -> SA/ST) is executed by the Simulator.
//
// Per-VC state (FSM, route choice, FIFOs, output credits) does NOT live
// here: it is stored in flat per-network arrays owned by the Network,
// indexed by `(port_base + port) * num_vcs + vc` offsets computed once in
// Network::finalize(). The Router keeps only the static wiring (per-port
// channel ids) and the small per-output-port switch-allocation state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace sldf::sim {

/// State machine of one input virtual channel (stored SoA in the Network).
enum class IvcState : std::uint8_t {
  Idle,    ///< No packet in progress; next head flit triggers RC.
  Routed,  ///< Route computed, waiting for an output VC (VA).
  Active,  ///< Output VC held; flits flow through SA/ST until the tail.
};

struct InputPort {
  ChanId in_chan = kInvalidChan;  ///< kInvalidChan for the injection port.
};

struct OutputPort {
  ChanId out_chan = kInvalidChan;  ///< kInvalidChan for the ejection port.
};

struct Router {
  NodeKind kind = NodeKind::Core;
  std::int32_t label = -1;  ///< Intra-C-group label (routing schemes; -1 unset).
  std::vector<InputPort> in;
  std::vector<OutputPort> out;
  PortIx inj_port = kInvalidPort;    ///< Injection input port (terminals only).
  PortIx eject_port = kInvalidPort;  ///< Ejection output port (terminals only).

  [[nodiscard]] bool has_terminal() const { return inj_port != kInvalidPort; }
};

}  // namespace sldf::sim
