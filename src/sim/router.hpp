// Input-queued virtual-channel router state. The per-cycle pipeline
// (RC -> VA -> SA/ST) is executed by the Simulator over these structures.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/buffer.hpp"

namespace sldf::sim {

/// State machine of one input virtual channel.
enum class IvcState : std::uint8_t {
  Idle,    ///< No packet in progress; next head flit triggers RC.
  Routed,  ///< Route computed, waiting for an output VC (VA).
  Active,  ///< Output VC held; flits flow through SA/ST until the tail.
};

struct InputVc {
  IvcState state = IvcState::Idle;
  PortIx out_port = kInvalidPort;
  VcIx out_vc = kInvalidVc;
  VcFifo fifo;
};

struct InputPort {
  ChanId in_chan = kInvalidChan;  ///< kInvalidChan for the injection port.
  std::vector<InputVc> vcs;
  std::uint32_t buffered = 0;  ///< Total flits across this port's VC FIFOs.
};

struct OutputVc {
  bool busy = false;           ///< Held by an in-flight packet.
  PortIx owner_port = kInvalidPort;
  VcIx owner_vc = kInvalidVc;
  std::int32_t credits = 0;    ///< Free slots in the downstream input FIFO.
};

struct OutputPort {
  ChanId out_chan = kInvalidChan;  ///< kInvalidChan for the ejection port.
  std::vector<OutputVc> vcs;
  /// Input VCs currently holding one of this port's output VCs, encoded as
  /// (in_port << 8) | in_vc. Kept small; round-robin scanned by SA.
  std::vector<std::uint16_t> requesters;
  std::uint16_t rr = 0;  ///< Round-robin pointer into `requesters`.
};

struct Router {
  NodeKind kind = NodeKind::Core;
  std::int32_t label = -1;  ///< Intra-C-group label (routing schemes; -1 unset).
  std::vector<InputPort> in;
  std::vector<OutputPort> out;
  PortIx inj_port = kInvalidPort;    ///< Injection input port (terminals only).
  PortIx eject_port = kInvalidPort;  ///< Ejection output port (terminals only).
  std::uint32_t buffered = 0;  ///< Total flits buffered across input ports.
  bool in_active_list = false;

  [[nodiscard]] bool has_terminal() const { return inj_port != kInvalidPort; }
};

}  // namespace sldf::sim
