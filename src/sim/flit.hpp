// Flits and packets. Flits are 8-byte handles into a central packet pool so
// that VC buffers and channel pipelines stay compact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hugepage.hpp"
#include "common/types.hpp"

namespace sldf::sim {

/// Packet::tag value meaning "not labelled" (rate-driven traffic).
inline constexpr std::uint32_t kNoTag = 0xffffffffu;

struct Flit {
  PacketId pkt = kInvalidPacket;
  std::uint16_t idx = 0;  ///< Position within the packet (0 == head).
  std::uint8_t head = 0;
  std::uint8_t tail = 0;
};
static_assert(sizeof(Flit) == 8);

/// Routing FSM phase for hierarchical (switch-less Dragonfly) routing.
/// Stored per packet; interpreted by the active RoutingAlgorithm.
enum class RoutePhase : std::uint8_t {
  SrcCGroup = 0,    ///< In the source C-group (Cs).
  SrcWGroup = 1,    ///< In the source W-group's gateway C-group (Cb).
  MidWEntry = 2,    ///< Non-minimal: entry C-group of the intermediate W (Ce).
  MidWExit = 3,     ///< Non-minimal: exit C-group of the intermediate W (Cf).
  DstWEntry = 4,    ///< In the destination W-group's entry C-group (Cc).
  DstCGroup = 5,    ///< In the destination C-group (Cd).
};

struct alignas(64) Packet {
  // Field order is deliberate: the per-hop routing path (route(),
  // plan_leg()) reads dst + the routing-state block, so they share the
  // packet's first cache line — and the whole struct is one aligned line,
  // so any pool access costs exactly one cache line.
  NodeId dst = kInvalidNode;      ///< Destination router (terminal host).
  NodeId target = kInvalidNode;   ///< Intra-C-group target router.
  std::int32_t exit_chan = kInvalidChan;  ///< Channel to take when at target.
  std::int32_t mid_wgroup = -1;   ///< Valiant intermediate W/group (-1: minimal).
  RoutePhase phase = RoutePhase::SrcCGroup;
  RoutePhase next_phase = RoutePhase::SrcCGroup;  ///< Applied on the next
                                                  ///< inter-C-group crossing.
  std::uint8_t vc_class = 0;      ///< Current VC class (maps to a VC index).
  std::uint8_t next_class = 0;    ///< VC class after the crossing.
  std::uint16_t len = 0;          ///< Total flits.
  std::uint16_t flits_ejected = 0;
  NodeId src = kInvalidNode;      ///< Source router (terminal host).
  ChipId src_chip = kInvalidChip;
  ChipId dst_chip = kInvalidChip;
  /// Caller-owned label carried end to end (fills the alignment hole before
  /// t_gen). The closed-loop workload engine stores the message id here so
  /// tail-flit ejection can be mapped back to the owning message; rate-driven
  /// traffic leaves it at kNoTag.
  std::uint32_t tag = kNoTag;

  // --- measurement ---
  Cycle t_gen = 0;     ///< Cycle the packet was created (enters source queue).
  Cycle t_eject = 0;   ///< Cycle the tail flit was consumed at the destination.
  /// Head-flit hops per link type (u8: a path never remotely approaches
  /// 255 hops of one type; keeps the packet inside one cache line).
  std::uint8_t hops[kNumLinkTypes] = {};
  std::uint8_t measured = 0;  ///< 1 if generated inside the measurement window.
  /// 1 if the current leg plan knowingly keeps a dead exit cable (no live
  /// detour existed at plan time). Converters must not bounce such packets
  /// back for a re-plan — it would ping-pong forever (a CDG cycle); they
  /// stall on the dead line instead and move again only after a repair.
  std::uint8_t stalled = 0;

  [[nodiscard]] Cycle latency() const { return t_eject - t_gen; }
};
static_assert(sizeof(Packet) == 64);

/// Free-list pool of packets. PacketIds are stable until release().
class PacketPool {
 public:
  PacketId acquire() {
    if (!free_.empty()) {
      const PacketId id = free_.back();
      free_.pop_back();
      slots_[id] = Packet{};
      return id;
    }
    slots_.emplace_back();
    return static_cast<PacketId>(slots_.size() - 1);
  }

  void release(PacketId id) { free_.push_back(id); }

  /// Forgets every packet but keeps both vectors' storage, so a pool reused
  /// across runs (see SimContext) reaches zero steady-state allocation.
  void reset() {
    slots_.clear();
    free_.clear();
  }

  Packet& operator[](PacketId id) { return slots_[id]; }
  const Packet& operator[](PacketId id) const { return slots_[id]; }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t live() const { return slots_.size() - free_.size(); }

  /// Checkpoint hooks: raw slot storage + the free list. restore_slots()
  /// sizes the slot array for a subsequent raw read into slots_data().
  [[nodiscard]] const Packet* slots_data() const { return slots_.data(); }
  [[nodiscard]] Packet* slots_data() { return slots_.data(); }
  [[nodiscard]] const std::vector<PacketId>& free_list() const { return free_; }
  void restore_slots(std::size_t n) { slots_.resize(n); }
  void restore_free_list(std::vector<PacketId> f) { free_ = std::move(f); }

 private:
  std::vector<Packet, HugePageAllocator<Packet>> slots_;
  std::vector<PacketId> free_;
};

}  // namespace sldf::sim
