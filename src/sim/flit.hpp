// Flits and packets. Flits are 4-byte handles into a central packet pool so
// that VC buffers and channel pipelines stay compact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/hugepage.hpp"
#include "common/types.hpp"

namespace sldf::sim {

/// Packet::tag value meaning "not labelled" (rate-driven traffic).
inline constexpr std::uint32_t kNoTag = 0xffffffffu;

/// A flit is one packed word: the owning packet id in the low 30 bits plus
/// head/tail marker bits. The flit's position within its packet is not
/// stored — FIFO rings receive each packet's flits contiguously and in
/// order (wormhole: an upstream output VC is held by one packet until its
/// tail passes), so head/tail carry everything the pipeline consumes.
/// A default-constructed Flit carries no packet (credit events on the
/// timing wheel, empty arena slots).
struct Flit {
  static constexpr std::uint32_t kPktBits = 30;
  /// Max representable packet id; the all-ones pattern doubles as the
  /// "no packet" marker, so the pool never hands it out.
  static constexpr std::uint32_t kPktMask = (1u << kPktBits) - 1;

  std::uint32_t w = kPktMask;

  Flit() = default;
  Flit(PacketId pkt, bool head, bool tail)
      : w(pkt | (static_cast<std::uint32_t>(head) << 30) |
          (static_cast<std::uint32_t>(tail) << 31)) {}

  /// Owning packet id (kPktMask when this is a credit event / empty slot).
  [[nodiscard]] PacketId pkt() const { return w & kPktMask; }
  [[nodiscard]] bool head() const { return (w >> 30) & 1u; }
  [[nodiscard]] bool tail() const { return (w >> 31) != 0; }
  /// False for credit events and empty slots.
  [[nodiscard]] bool carries_packet() const {
    return (w & kPktMask) != kPktMask;
  }
};
static_assert(sizeof(Flit) == 4);

/// Routing FSM phase for hierarchical (switch-less Dragonfly) routing.
/// Stored per packet; interpreted by the active RoutingAlgorithm.
enum class RoutePhase : std::uint8_t {
  SrcCGroup = 0,    ///< In the source C-group (Cs).
  SrcWGroup = 1,    ///< In the source W-group's gateway C-group (Cb).
  MidWEntry = 2,    ///< Non-minimal: entry C-group of the intermediate W (Ce).
  MidWExit = 3,     ///< Non-minimal: exit C-group of the intermediate W (Cf).
  DstWEntry = 4,    ///< In the destination W-group's entry C-group (Cc).
  DstCGroup = 5,    ///< In the destination C-group (Cd).
};

struct alignas(16) Packet {
  // Field order is deliberate: the per-hop routing path (route(),
  // plan_leg()) reads dst + the routing-state block, so they share the
  // packet's first 32 bytes, which never straddle more than one cache-line
  // boundary at this alignment. The struct is kept at 48 bytes on purpose:
  // at saturation the pool's queued packets dominate peak RSS, so derivable
  // fields (src/dst chip — one chip_of() load away) and
  // consumed-on-the-spot fields (the ejection cycle) are not stored.
  NodeId dst = kInvalidNode;      ///< Destination router (terminal host).
  NodeId target = kInvalidNode;   ///< Intra-C-group target router.
  std::int32_t exit_chan = kInvalidChan;  ///< Channel to take when at target.
  std::int32_t mid_wgroup = -1;   ///< Valiant intermediate W/group (-1: minimal).
  RoutePhase phase = RoutePhase::SrcCGroup;
  RoutePhase next_phase = RoutePhase::SrcCGroup;  ///< Applied on the next
                                                  ///< inter-C-group crossing.
  std::uint8_t vc_class = 0;      ///< Current VC class (maps to a VC index).
  std::uint8_t next_class = 0;    ///< VC class after the crossing.
  std::uint16_t len = 0;          ///< Total flits.
  std::uint16_t flits_ejected = 0;
  NodeId src = kInvalidNode;      ///< Source router (terminal host).
  /// Caller-owned label carried end to end. The closed-loop workload engine
  /// stores the message id here so tail-flit ejection can be mapped back to
  /// the owning message; rate-driven traffic leaves it at kNoTag.
  std::uint32_t tag = kNoTag;

  // --- measurement ---
  Cycle t_gen = 0;  ///< Cycle the packet was created (enters source queue).
  /// Head-flit hops per link type (u8: a path never remotely approaches
  /// 255 hops of one type). Latency needs no stored ejection cycle: the
  /// tail flit's delivery is committed at the cycle it happens, so the
  /// engine computes `now - t_gen` on the spot.
  std::uint8_t hops[kNumLinkTypes] = {};
  std::uint8_t measured = 0;  ///< 1 if generated inside the measurement window.
  /// 1 if the current leg plan knowingly keeps a dead exit cable (no live
  /// detour existed at plan time). Converters must not bounce such packets
  /// back for a re-plan — it would ping-pong forever (a CDG cycle); they
  /// stall on the dead line instead and move again only after a repair.
  std::uint8_t stalled = 0;
};
static_assert(sizeof(Packet) == 48);

/// Free-list pool of packets. PacketIds are stable until release().
///
/// Slot storage is a chunk table instead of one contiguous vector: growing
/// the pool materializes one fixed-size chunk at a time, so peak memory
/// tracks the live-packet high-water mark exactly — no doubling overshoot
/// and no transient old+new copy during a reallocation, which at saturation
/// (millions of queued packets) used to dominate peak RSS.
class PacketPool {
 public:
  /// 64k packets (3 MiB at 48 B/packet) per chunk: over one hugepage, so
  /// every chunk takes HugePageAllocator's mmap path (THP-backed, returned
  /// to the OS on free) while the chunk table stays tiny and hot.
  static constexpr std::uint32_t kChunkShift = 16;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  PacketId acquire() {
    if (!free_.empty()) {
      const PacketId id = free_.back();
      free_.pop_back();
      (*this)[id] = Packet{};
      return id;
    }
    if (size_ >= Flit::kPktMask)
      throw std::runtime_error(
          "PacketPool: exceeded 2^30 - 1 live packets (packed flit id)");
    if ((size_ >> kChunkShift) == chunks_.size()) add_chunk();
    const auto id = static_cast<PacketId>(size_++);
    (*this)[id] = Packet{};
    return id;
  }

  void release(PacketId id) { free_.push_back(id); }

  /// Forgets every packet but keeps the chunk storage, so a pool reused
  /// across runs (see SimContext) reaches zero steady-state allocation.
  void reset() {
    size_ = 0;
    free_.clear();
  }

  Packet& operator[](PacketId id) {
    return chunk_ptr_[id >> kChunkShift][id & kChunkMask];
  }
  const Packet& operator[](PacketId id) const {
    return chunk_ptr_[id >> kChunkShift][id & kChunkMask];
  }

  [[nodiscard]] std::size_t capacity() const { return size_; }
  [[nodiscard]] std::size_t live() const { return size_ - free_.size(); }

  // Checkpoint hooks: chunked slot storage + the free list. restore_slots()
  // sizes the slot store for a subsequent chunk-wise raw read; chunk(i)
  // exposes each chunk's span so serialization streams the same bytes a
  // contiguous layout would.
  [[nodiscard]] std::pair<const Packet*, std::size_t> chunk(
      std::size_t i) const {
    const std::size_t base = i << kChunkShift;
    return {chunk_ptr_[i], std::min<std::size_t>(kChunkSize, size_ - base)};
  }
  [[nodiscard]] std::pair<Packet*, std::size_t> chunk(std::size_t i) {
    const std::size_t base = i << kChunkShift;
    return {chunk_ptr_[i], std::min<std::size_t>(kChunkSize, size_ - base)};
  }
  [[nodiscard]] std::size_t num_chunks() const {
    return (size_ + kChunkSize - 1) >> kChunkShift;
  }
  [[nodiscard]] const std::vector<PacketId>& free_list() const { return free_; }
  void restore_slots(std::size_t n) {
    while ((chunks_.size() << kChunkShift) < n) add_chunk();
    size_ = n;
  }
  void restore_free_list(std::vector<PacketId> f) { free_ = std::move(f); }

 private:
  void add_chunk() {
    chunks_.emplace_back(kChunkSize);
    chunk_ptr_.push_back(chunks_.back().data());
  }

  std::vector<std::vector<Packet, HugePageAllocator<Packet>>> chunks_;
  /// Flat mirror of each chunk's data pointer (one hot array, so
  /// operator[] is two dependent loads with the first in L1).
  std::vector<Packet*> chunk_ptr_;
  std::size_t size_ = 0;  ///< Slots handed out so far (high-water mark).
  std::vector<PacketId> free_;
};

}  // namespace sldf::sim
