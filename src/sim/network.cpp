#include "sim/network.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "common/error.hpp"

namespace sldf::sim {

namespace {

template <typename T>
void put_raw(std::ostream& out, const T* data, std::size_t n) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
void get_raw(std::istream& in, T* data, std::size_t n) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw std::runtime_error("load_dynamic_state: truncated stream");
}

void put_u64(std::ostream& out, std::uint64_t v) { put_raw(out, &v, 1); }

std::uint64_t get_u64(std::istream& in) {
  std::uint64_t v = 0;
  get_raw(in, &v, 1);
  return v;
}

void check_size(std::uint64_t got, std::uint64_t want, const char* what) {
  if (got != want)
    throw std::runtime_error(std::string("load_dynamic_state: ") + what +
                             " size mismatch (checkpoint from a different "
                             "network build?)");
}

}  // namespace

NodeId Network::add_router(NodeKind kind) {
  Router r;
  r.kind = kind;
  routers_.push_back(std::move(r));
  node_chip_.push_back(kInvalidChip);
  return static_cast<NodeId>(routers_.size() - 1);
}

ChanId Network::add_channel(NodeId src, NodeId dst, LinkType type, int latency,
                            int width_num, int width_den) {
  if (latency < 1) throw std::invalid_argument("channel latency must be >= 1");
  if (width_num < 1 || width_den < 1)
    throw std::invalid_argument("channel width must be positive");
  Channel c;
  c.src = src;
  c.dst = dst;
  c.type = type;
  c.latency = static_cast<std::uint8_t>(latency);
  c.width_num = static_cast<std::uint16_t>(width_num);
  c.width_den = static_cast<std::uint16_t>(width_den);
  c.reset_tokens();

  Router& rs = router(src);
  Router& rd = router(dst);
  c.src_port = static_cast<PortIx>(rs.out.size());
  c.dst_port = static_cast<PortIx>(rd.in.size());

  const ChanId id = static_cast<ChanId>(channels_.size());
  OutputPort op;
  op.out_chan = id;
  rs.out.push_back(std::move(op));
  InputPort ip;
  ip.in_chan = id;
  rd.in.push_back(std::move(ip));

  channels_.push_back(std::move(c));
  return id;
}

ChanId Network::add_duplex(NodeId a, NodeId b, LinkType type, int latency,
                           int width_num, int width_den) {
  const ChanId fwd = add_channel(a, b, type, latency, width_num, width_den);
  add_channel(b, a, type, latency, width_num, width_den);
  return fwd;
}

void Network::make_terminal(NodeId core, ChipId chip) {
  chip += chip_offset_;  // wafer stacks: builder-local chip -> global chip
  Router& r = router(core);
  if (r.has_terminal()) throw std::logic_error("terminal already attached");
  // Injection input port.
  InputPort ip;
  ip.in_chan = kInvalidChan;
  r.inj_port = static_cast<PortIx>(r.in.size());
  r.in.push_back(std::move(ip));
  // Ejection output port.
  OutputPort op;
  op.out_chan = kInvalidChan;
  r.eject_port = static_cast<PortIx>(r.out.size());
  r.out.push_back(std::move(op));

  if (chip >= static_cast<ChipId>(chip_nodes_.size()))
    chip_nodes_.resize(static_cast<std::size_t>(chip) + 1);
  chip_nodes_[static_cast<std::size_t>(chip)].push_back(core);
  node_chip_[static_cast<std::size_t>(core)] = chip;
  terminal_nodes_.push_back(core);
}

void Network::finalize(int num_vcs, int vc_buf_flits) {
  if (num_vcs < 1 || vc_buf_flits < 1)
    throw std::invalid_argument("finalize: bad vc configuration");
  num_vcs_ = num_vcs;
  vc_buf_ = vc_buf_flits;

  // Per-router flat port offsets (prefix sums over port counts, plus a
  // sentinel so per-router counts are base[r+1] - base[r]).
  in_port_base_.resize(routers_.size() + 1);
  out_port_base_.resize(routers_.size() + 1);
  std::uint64_t in_ports = 0;
  std::uint64_t out_ports = 0;
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    in_port_base_[i] = static_cast<std::uint32_t>(in_ports);
    out_port_base_[i] = static_cast<std::uint32_t>(out_ports);
    in_ports += routers_[i].in.size();
    out_ports += routers_[i].out.size();
  }
  in_port_base_[routers_.size()] = static_cast<std::uint32_t>(in_ports);
  out_port_base_[routers_.size()] = static_cast<std::uint32_t>(out_ports);
  const std::uint64_t n_ivc = in_ports * static_cast<std::uint64_t>(num_vcs);
  const std::uint64_t n_ovc = out_ports * static_cast<std::uint64_t>(num_vcs);
  if (n_ivc > std::numeric_limits<std::uint32_t>::max() ||
      n_ovc > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("finalize: network exceeds 2^32 VCs");
  num_in_ports_ = static_cast<std::uint32_t>(in_ports);
  num_out_ports_ = static_cast<std::uint32_t>(out_ports);
  node_meta_.resize(routers_.size());
  for (std::size_t i = 0; i < routers_.size(); ++i)
    node_meta_[i] =
        (static_cast<std::uint32_t>(
             static_cast<std::uint16_t>(routers_[i].eject_port))
         << 8) |
        static_cast<std::uint32_t>(routers_[i].kind);

  // Packed-width capacity checks: every quantity narrowed by the packed
  // port record is validated here, so an oversized build fails loudly at
  // finalize instead of silently truncating counters mid-run.
  if (vc_buf_flits > 0x7fff)
    throw ScenarioError(
        "finalize: vc_buf " + std::to_string(vc_buf_flits) +
        " exceeds the packed credit width (max 32767)");
  if (num_vcs > 0xff)
    throw ScenarioError("finalize: num_vcs " + std::to_string(num_vcs) +
                        " exceeds the packed VC width (max 255)");
  if (out_ports >= (1u << 23))
    throw ScenarioError(
        "finalize: " + std::to_string(out_ports) +
        " output ports exceed the packed credit-event width (max 8388607)");
  for (std::size_t i = 0; i < routers_.size(); ++i)
    if (routers_[i].in.size() > 0xff)
      throw ScenarioError(
          "finalize: router " + std::to_string(i) + " has " +
          std::to_string(routers_[i].in.size()) +
          " input ports, exceeding the packed requester width (max 255)");

  // Flat VC state + one FIFO arena for every input VC.
  fifos_.init(static_cast<std::size_t>(n_ivc),
              static_cast<std::uint32_t>(vc_buf_flits),
              pack_ivc(kInvalidPort, kInvalidVc, IvcState::Idle));

  // Cache each channel's destination offset for the delivery hot path and
  // the compact chan -> src_port table for the routing hot path.
  src_port_by_chan_.resize(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    channels_[i].dst_vc_base =
        in_vc_index(channels_[i].dst, channels_[i].dst_port, 0);
    src_port_by_chan_[i] = channels_[i].src_port;
  }

  // Lay out the per-output-port records: five fixed words + one u32 word
  // per VC holding the two u16 lanes (credit word + requester slot). The
  // stride is exact — no power-of-two rounding — so nvc=4 costs 36 bytes
  // per port instead of the former 64.
  port_stride_ = kOvc0 + static_cast<std::uint32_t>(num_vcs);
  port_state_.assign(
      static_cast<std::size_t>(num_out_ports_) * port_stride_, 0);
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    const Router& r = routers_[i];
    for (std::size_t p = 0; p < r.out.size(); ++p) {
      std::uint32_t* rec =
          port_rec(static_cast<std::uint32_t>(out_port_base_[i] + p));
      if (r.out[p].out_chan != kInvalidChan) {
        const Channel& c = chan(r.out[p].out_chan);
        rec[kDstVcBase] = c.dst_vc_base;
        rec[kDstNode] = static_cast<std::uint32_t>(c.dst);
        rec[kLinkMeta] =
            static_cast<std::uint32_t>(c.latency) |
            (static_cast<std::uint32_t>(c.type) << 8) |
            (static_cast<std::uint32_t>(c.width_num) << 16) |
            (static_cast<std::uint32_t>(c.width_den) << 24);
        if (c.width_num > 0xff || c.width_den > 0xff)
          throw std::invalid_argument(
              "finalize: channel width terms must be <= 255");
      } else {
        rec[kDstNode] = static_cast<std::uint32_t>(kInvalidNode);
      }
    }
  }

  // Credit-return wiring per input port.
  credit_return_by_port_.assign(num_in_ports_, CreditReturn{});
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    const Router& r = routers_[i];
    for (std::size_t p = 0; p < r.in.size(); ++p) {
      CreditReturn& cr = credit_return_by_port_[in_port_base_[i] + p];
      if (r.in[p].in_chan != kInvalidChan) {
        const Channel& c = chan(r.in[p].in_chan);
        // Low 24 bits: the flat upstream output port (fits — finalize
        // already rejected builds with >= 2^23 output ports).
        cr.meta = out_port_index(c.src, c.src_port) |
                  (static_cast<std::uint32_t>(c.latency) << 24);
        cr.src = c.src;
      }
    }
  }

  init_port_dynamic_state();
}

void Network::init_port_dynamic_state() {
  for (std::uint32_t p = 0; p < num_out_ports_; ++p) {
    std::uint32_t* rec = port_rec(p);
    const std::uint32_t meta = rec[kLinkMeta];
    const std::uint32_t wnum = (meta >> 16) & 0xff;
    const std::uint32_t wden = meta >> 24;
    // SA count = 0, rr = 0, and a full token bucket (token_cap) in the
    // high half; 0 for ejection ports and disabled channels (wnum == 0:
    // the bucket must stay empty across resets).
    rec[0] = wnum == 0 ? 0 : (wnum + wden) << 16;
    rec[kTokenCycle] = 0;
    std::uint16_t* ov = ovc16(rec);
    for (int v = 0; v < num_vcs_; ++v)
      ov[v] = static_cast<std::uint16_t>(vc_buf_ << 1);
    for (int v = 0; v < num_vcs_; ++v)
      ov[num_vcs_ + v] = 0;
  }
}

void Network::restore_fault_baseline() {
  if (!has_fault_baseline()) return;
  bool changed = false;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (chan_alive_[i] == baseline_chan_alive_[i]) continue;
    changed = true;
    const Channel& ch = channels_[i];
    std::uint32_t* rec = port_rec(out_port_index(ch.src, ch.src_port));
    if (baseline_chan_alive_[i]) {
      chan_alive_[i] = 1;
      --dead_channels_;
      rec[kLinkMeta] |= static_cast<std::uint32_t>(ch.width_num) << 16;
      rec[0] = (rec[0] & 0xffffu) |
               ((static_cast<std::uint32_t>(ch.width_num) +
                 static_cast<std::uint32_t>(ch.width_den))
                << 16);
      rec[kTokenCycle] = 0;
    } else {
      chan_alive_[i] = 0;
      ++dead_channels_;
      rec[kLinkMeta] &= ~(0xffu << 16);
      rec[0] &= 0xffffu;  // bucket -> 0; count/rr untouched
    }
  }
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    if (node_alive_[i] == baseline_node_alive_[i]) continue;
    changed = true;
    node_alive_[i] = baseline_node_alive_[i];
    dead_nodes_ += baseline_node_alive_[i] ? -1 : 1;
  }
  if (changed) ++fault_epoch_;
}

void Network::reset_dynamic_state() {
  // Rewind any online fail/repair transitions to the captured cycle-0
  // baseline BEFORE re-deriving port state: init_port_dynamic_state()
  // computes token buckets from the kLinkMeta width bytes, which the
  // restore flips. Without a captured baseline the mask is left untouched
  // (static faults survive resets, as before).
  restore_fault_baseline();
  fifos_.reset(pack_ivc(kInvalidPort, kInvalidVc, IvcState::Idle));
  init_port_dynamic_state();
  for (auto& c : channels_) c.reset_tokens();
}

void Network::enable_fault_mask() {
  if (!finalized())
    throw std::logic_error("enable_fault_mask: network not finalized");
  if (chan_alive_.empty()) chan_alive_.assign(channels_.size(), 1);
  if (node_alive_.empty()) node_alive_.assign(routers_.size(), 1);
}

void Network::disable_channel(ChanId c) {
  if (!has_fault_mask())
    throw std::logic_error("disable_channel: fault mask not enabled");
  auto& alive = chan_alive_[static_cast<std::size_t>(c)];
  if (alive == 0) return;
  alive = 0;
  ++dead_channels_;
  // Rewrite the source output-port record: token width -> 0, bucket -> 0.
  // The bucket never refills (refresh adds elapsed * 0), so even a routing
  // decision that targets this port can never move a flit over the link.
  const Channel& ch = chan(c);
  std::uint32_t* rec = port_rec(out_port_index(ch.src, ch.src_port));
  rec[kLinkMeta] &= ~(0xffu << 16);  // width_num = 0
  rec[0] &= 0xffffu;                 // bucket = 0; count/rr untouched
}

void Network::disable_node(NodeId n) {
  if (!has_fault_mask())
    throw std::logic_error("disable_node: fault mask not enabled");
  auto& alive = node_alive_[static_cast<std::size_t>(n)];
  if (alive != 0) {
    alive = 0;
    ++dead_nodes_;
  }
  for (std::size_t i = 0; i < channels_.size(); ++i)
    if (channels_[i].src == n || channels_[i].dst == n)
      disable_channel(static_cast<ChanId>(i));
}

void Network::enable_channel(ChanId c, Cycle now) {
  if (!has_fault_mask())
    throw std::logic_error("enable_channel: fault mask not enabled");
  auto& alive = chan_alive_[static_cast<std::size_t>(c)];
  if (alive != 0) return;
  alive = 1;
  --dead_channels_;
  // Undo the disable_channel() record rewrite: width back from the
  // immutable Channel, bucket full (matching init_port_dynamic_state),
  // refresh clock re-based at `now` so the dead period refills nothing.
  const Channel& ch = chan(c);
  std::uint32_t* rec = port_rec(out_port_index(ch.src, ch.src_port));
  rec[kLinkMeta] |= static_cast<std::uint32_t>(ch.width_num) << 16;
  rec[0] = (rec[0] & 0xffffu) |
           ((static_cast<std::uint32_t>(ch.width_num) +
             static_cast<std::uint32_t>(ch.width_den))
            << 16);
  rec[kTokenCycle] = static_cast<std::uint32_t>(now);
}

void Network::set_node_alive(NodeId n, bool alive) {
  if (!has_fault_mask())
    throw std::logic_error("set_node_alive: fault mask not enabled");
  auto& a = node_alive_[static_cast<std::size_t>(n)];
  if ((a != 0) == alive) return;
  a = alive ? 1 : 0;
  dead_nodes_ += alive ? -1 : 1;
}

void Network::capture_fault_baseline() {
  if (!has_fault_mask())
    throw std::logic_error("capture_fault_baseline: fault mask not enabled");
  baseline_chan_alive_ = chan_alive_;
  baseline_node_alive_ = node_alive_;
}

void Network::save_dynamic_state(std::ostream& out) const {
  const FlitFifoArena& f = fifos_;
  put_u64(out, f.num_fifos());
  put_raw(out, f.hm_data(), f.num_fifos());
  put_u64(out, f.slots_size());
  put_raw(out, f.slots_data(), f.slots_size());
  put_u64(out, port_state_.size());
  put_raw(out, port_state_.data(), port_state_.size());
  put_u64(out, channels_.size());
  for (const Channel& c : channels_) {
    put_raw(out, &c.tokens, 1);
    put_u64(out, c.token_cycle);
  }
  put_u64(out, chan_alive_.size());
  put_raw(out, chan_alive_.data(), chan_alive_.size());
  put_u64(out, node_alive_.size());
  put_raw(out, node_alive_.data(), node_alive_.size());
  put_u64(out, dead_channels_);
  put_u64(out, dead_nodes_);
  put_u64(out, fault_epoch_);
}

void Network::load_dynamic_state(std::istream& in) {
  FlitFifoArena& f = fifos_;
  check_size(get_u64(in), f.num_fifos(), "fifo control");
  get_raw(in, f.hm_data(), f.num_fifos());
  check_size(get_u64(in), f.slots_size(), "fifo slot");
  get_raw(in, f.slots_data(), f.slots_size());
  check_size(get_u64(in), port_state_.size(), "port record");
  get_raw(in, port_state_.data(), port_state_.size());
  check_size(get_u64(in), channels_.size(), "channel");
  for (Channel& c : channels_) {
    get_raw(in, &c.tokens, 1);
    c.token_cycle = get_u64(in);
  }
  // The mask arrays may legitimately be empty on both sides (no faults).
  check_size(get_u64(in), chan_alive_.size(), "channel mask");
  get_raw(in, chan_alive_.data(), chan_alive_.size());
  check_size(get_u64(in), node_alive_.size(), "node mask");
  get_raw(in, node_alive_.data(), node_alive_.size());
  dead_channels_ = get_u64(in);
  dead_nodes_ = get_u64(in);
  fault_epoch_ = get_u64(in);
}

std::vector<std::uint32_t> Network::shard_bounds(int shards) const {
  if (!finalized())
    throw std::logic_error("shard_bounds: network not finalized");
  if (shards < 1) throw std::invalid_argument("shard_bounds: shards < 1");
  const auto n = static_cast<std::uint32_t>(routers_.size());
  std::vector<std::uint32_t> bounds(static_cast<std::size_t>(shards) + 1);
  bounds[0] = 0;
  bounds[static_cast<std::size_t>(shards)] = n;
  for (int k = 1; k < shards; ++k) {
    // Ideal cut: the router whose flat output-port offset first reaches an
    // equal share of the total port count (ports ~ per-router work).
    const std::uint64_t target = static_cast<std::uint64_t>(num_out_ports_) *
                                 static_cast<std::uint64_t>(k) /
                                 static_cast<std::uint64_t>(shards);
    std::uint32_t b = static_cast<std::uint32_t>(
        std::lower_bound(out_port_base_.begin(),
                         out_port_base_.begin() + n,
                         static_cast<std::uint32_t>(target)) -
        out_port_base_.begin());
    // Snap forward to the next chip boundary so no chip is split. Nodes
    // without a chip (converters) are valid boundaries as-is.
    while (b > 0 && b < n &&
           node_chip_[b] != kInvalidChip &&
           node_chip_[b] == node_chip_[b - 1])
      ++b;
    bounds[static_cast<std::size_t>(k)] =
        std::max(b, bounds[static_cast<std::size_t>(k) - 1]);
  }
  return bounds;
}

void Network::begin_plane() {
  if (planes_sealed_)
    throw std::logic_error("begin_plane: planes already sealed");
  if (!wafer_node_base_.empty())
    throw std::logic_error(
        "begin_plane: planes and wafers are mutually exclusive axes");
  plane_node_base_.push_back(static_cast<std::uint32_t>(routers_.size()));
  plane_term_base_.push_back(
      static_cast<std::uint32_t>(terminal_nodes_.size()));
}

void Network::seal_planes(int policy) {
  if (planes_sealed_) throw std::logic_error("seal_planes: already sealed");
  if (plane_node_base_.empty())
    throw std::logic_error("seal_planes: no begin_plane() marks");
  if (!finalized())
    throw std::logic_error("seal_planes: network not finalized");
  plane_node_base_.push_back(static_cast<std::uint32_t>(routers_.size()));
  plane_term_base_.push_back(
      static_cast<std::uint32_t>(terminal_nodes_.size()));
  planes_sealed_ = true;  // arms plane_of_node for the scans below
  plane_policy_ = policy;
  const int K = num_planes();

  logical_terminals_.assign(
      terminal_nodes_.begin(),
      terminal_nodes_.begin() + static_cast<std::ptrdiff_t>(
                                    plane_term_base_[1]));

  // Per-chip plane segments: chip_nodes entries arrive in plane build
  // order, so each plane's nodes form one contiguous run per chip.
  chip_plane_off_.assign(
      num_chips() * (static_cast<std::size_t>(K) + 1), 0);
  node_plane_slot_.assign(routers_.size(), 0);
  std::vector<std::uint32_t> seen(static_cast<std::size_t>(K));
  for (std::size_t c = 0; c < num_chips(); ++c) {
    std::uint32_t* off =
        &chip_plane_off_[c * (static_cast<std::size_t>(K) + 1)];
    std::fill(seen.begin(), seen.end(), 0u);
    int prev = 0;
    for (const NodeId n : chip_nodes_[c]) {
      const int p = plane_of_node(n);
      if (p < prev) {
        planes_sealed_ = false;
        throw std::logic_error(
            "seal_planes: chip node list is not plane-contiguous");
      }
      prev = p;
      node_plane_slot_[static_cast<std::size_t>(n)] =
          seen[static_cast<std::size_t>(p)]++;
      ++off[p + 1];
    }
    for (int p = 0; p < K; ++p) {
      off[p + 1] += off[p];
      if (off[p + 1] == off[p]) {
        planes_sealed_ = false;
        throw std::invalid_argument(
            "seal_planes: plane " + std::to_string(p) +
            " has no terminal node on chip " + std::to_string(c) +
            " (every plane must cover every logical chip)");
      }
    }
  }
}

void Network::begin_wafer() {
  if (wafers_sealed_)
    throw std::logic_error("begin_wafer: wafers already sealed");
  if (!plane_node_base_.empty())
    throw std::logic_error(
        "begin_wafer: planes and wafers are mutually exclusive axes");
  wafer_node_base_.push_back(static_cast<std::uint32_t>(routers_.size()));
  wafer_chip_base_.push_back(static_cast<std::uint32_t>(num_chips()));
  chip_offset_ = static_cast<ChipId>(num_chips());
}

void Network::seal_wafers() {
  if (wafers_sealed_) throw std::logic_error("seal_wafers: already sealed");
  if (wafer_node_base_.empty())
    throw std::logic_error("seal_wafers: no begin_wafer() marks");
  if (!finalized())
    throw std::logic_error("seal_wafers: network not finalized");
  wafer_node_base_.push_back(static_cast<std::uint32_t>(routers_.size()));
  wafer_chip_base_.push_back(static_cast<std::uint32_t>(num_chips()));
  // Every wafer must span the same chip count: wafer_of_chip divides by it,
  // and the cross-wafer twin-column mapping (dst chip % chips_per_wafer)
  // relies on the wafer-major layout being uniform.
  const std::uint32_t cpw = wafer_chip_base_[1] - wafer_chip_base_[0];
  for (std::size_t w = 1; w + 1 < wafer_chip_base_.size(); ++w) {
    if (wafer_chip_base_[w + 1] - wafer_chip_base_[w] != cpw)
      throw std::logic_error(
          "seal_wafers: wafer " + std::to_string(w) + " spans " +
          std::to_string(wafer_chip_base_[w + 1] - wafer_chip_base_[w]) +
          " chips, expected " + std::to_string(cpw));
  }
  if (cpw == 0) throw std::logic_error("seal_wafers: empty wafer");
  wafers_sealed_ = true;
}

std::size_t Network::num_dead_channels() const { return dead_channels_; }

std::size_t Network::num_dead_nodes() const { return dead_nodes_; }

}  // namespace sldf::sim
