#include "sim/network.hpp"

#include <stdexcept>

namespace sldf::sim {

NodeId Network::add_router(NodeKind kind) {
  Router r;
  r.kind = kind;
  routers_.push_back(std::move(r));
  node_chip_.push_back(kInvalidChip);
  return static_cast<NodeId>(routers_.size() - 1);
}

ChanId Network::add_channel(NodeId src, NodeId dst, LinkType type, int latency,
                            int width_num, int width_den) {
  if (latency < 1) throw std::invalid_argument("channel latency must be >= 1");
  if (width_num < 1 || width_den < 1)
    throw std::invalid_argument("channel width must be positive");
  Channel c;
  c.src = src;
  c.dst = dst;
  c.type = type;
  c.latency = static_cast<std::uint8_t>(latency);
  c.width_num = static_cast<std::uint16_t>(width_num);
  c.width_den = static_cast<std::uint16_t>(width_den);
  c.reset_tokens();

  Router& rs = router(src);
  Router& rd = router(dst);
  c.src_port = static_cast<PortIx>(rs.out.size());
  c.dst_port = static_cast<PortIx>(rd.in.size());

  const ChanId id = static_cast<ChanId>(channels_.size());
  OutputPort op;
  op.out_chan = id;
  rs.out.push_back(std::move(op));
  InputPort ip;
  ip.in_chan = id;
  rd.in.push_back(std::move(ip));

  channels_.push_back(std::move(c));
  return id;
}

ChanId Network::add_duplex(NodeId a, NodeId b, LinkType type, int latency,
                           int width_num, int width_den) {
  const ChanId fwd = add_channel(a, b, type, latency, width_num, width_den);
  add_channel(b, a, type, latency, width_num, width_den);
  return fwd;
}

void Network::make_terminal(NodeId core, ChipId chip) {
  Router& r = router(core);
  if (r.has_terminal()) throw std::logic_error("terminal already attached");
  // Injection input port.
  InputPort ip;
  ip.in_chan = kInvalidChan;
  r.inj_port = static_cast<PortIx>(r.in.size());
  r.in.push_back(std::move(ip));
  // Ejection output port.
  OutputPort op;
  op.out_chan = kInvalidChan;
  r.eject_port = static_cast<PortIx>(r.out.size());
  r.out.push_back(std::move(op));

  if (chip >= static_cast<ChipId>(chip_nodes_.size()))
    chip_nodes_.resize(static_cast<std::size_t>(chip) + 1);
  chip_nodes_[static_cast<std::size_t>(chip)].push_back(core);
  node_chip_[static_cast<std::size_t>(core)] = chip;
  terminal_nodes_.push_back(core);
}

void Network::finalize(int num_vcs, int vc_buf_flits) {
  if (num_vcs < 1 || vc_buf_flits < 1)
    throw std::invalid_argument("finalize: bad vc configuration");
  num_vcs_ = num_vcs;
  vc_buf_ = vc_buf_flits;
  for (auto& r : routers_) {
    for (auto& ip : r.in) {
      ip.vcs.clear();
      ip.vcs.resize(static_cast<std::size_t>(num_vcs));
      for (auto& vc : ip.vcs)
        vc.fifo.set_capacity(static_cast<std::uint32_t>(vc_buf_flits));
    }
    for (auto& op : r.out) {
      op.vcs.assign(static_cast<std::size_t>(num_vcs), OutputVc{});
      for (auto& vc : op.vcs) vc.credits = vc_buf_flits;
      op.requesters.clear();
      op.rr = 0;
    }
  }
}

void Network::reset_dynamic_state() {
  for (auto& r : routers_) {
    r.in_active_list = false;
    r.buffered = 0;
    for (auto& ip : r.in) {
      ip.buffered = 0;
      for (auto& vc : ip.vcs) {
        vc.state = IvcState::Idle;
        vc.out_port = kInvalidPort;
        vc.out_vc = kInvalidVc;
        while (!vc.fifo.empty()) vc.fifo.pop();
      }
    }
    for (auto& op : r.out) {
      for (auto& vc : op.vcs) {
        vc.busy = false;
        vc.owner_port = kInvalidPort;
        vc.owner_vc = kInvalidVc;
        vc.credits = vc_buf_;
      }
      op.requesters.clear();
      op.rr = 0;
    }
  }
  for (auto& c : channels_) c.reset_tokens();
}

}  // namespace sldf::sim
