// The cycle-driven simulation engine: traffic generation, injection,
// channel delivery, router pipeline (RC/VA/SA/ST), ejection, measurement.
//
// Methodology follows the paper's Table IV defaults: 4-flit packets,
// 32-flit per-VC input buffers, 1 flit/cycle base links, 1-cycle short-reach
// and 8-cycle long-reach delays, 5000 warmup + 10000 measured cycles.
//
// Hot-path layout: all per-VC state lives in the Network's flat arrays
// (see network.hpp); in-flight flits and credits share one timing-wheel
// event record; and every growable container the engine touches per cycle
// (wheel slots, active lists, source queues, packet pool) lives in a
// SimContext that can be reused across runs, so steady-state simulation
// performs no heap allocation.
#pragma once

#include <memory>
#include <vector>

#include "common/ring.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"

namespace sldf::sim {

/// Supplies a destination node for each generated packet.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  /// Returns the destination *node* for a packet injected at `src`, or
  /// kInvalidNode to suppress generation at this source this time.
  virtual NodeId dest(const Network& net, NodeId src, Rng& rng) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Packet-completion hook for closed-loop (message-level) traffic. The
/// callback fires when the tail flit of a packet is consumed at its
/// destination, before the packet returns to the pool — `p` is only valid
/// for the duration of the call. Callbacks fire in deterministic engine
/// order (ejection processing order within the cycle).
class PacketListener {
 public:
  virtual ~PacketListener() = default;
  virtual void on_packet_delivered(const Packet& p, Cycle now) = 0;
};

struct SimConfig {
  double inj_rate_per_chip = 0.1;  ///< Offered load, flits/cycle/chip.
  int pkt_len = 4;                 ///< Flits per packet (Table IV).
  Cycle warmup = 5000;
  Cycle measure = 10000;
  Cycle drain = 5000;          ///< Extra cycles to let measured packets land.
  std::uint64_t seed = 1;
  int max_src_queue = 256;     ///< Per-node source-queue cap (packets).
};

struct SimResult {
  double offered = 0.0;        ///< Configured rate (flits/cycle/chip).
  double accepted = 0.0;       ///< Ejected flits/cycle/chip in the window.
  double avg_latency = 0.0;    ///< Generation -> tail ejection, cycles.
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double min_latency = 0.0;
  double max_latency = 0.0;
  std::uint64_t generated_measured = 0;
  std::uint64_t delivered_measured = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t suppressed = 0;  ///< Packets dropped by the source-queue cap.
  bool drained = false;          ///< All measured packets delivered by the end.
  double avg_hops[kNumLinkTypes] = {};  ///< Per delivered measured packet.
  double avg_hops_total = 0.0;
  Cycle cycles_run = 0;
  /// Flits forwarded onto channels over the whole run (excludes ejection):
  /// the engine-throughput numerator reported by sldf-bench.
  std::uint64_t flit_hops = 0;
};

/// One timing-wheel record: a flit arriving at an input VC, or (when
/// `flit.pkt == kInvalidPacket`) a credit returning to an output VC.
/// `vc_flat` indexes the corresponding flat VC array; `node` is the router
/// to re-activate.
struct WheelEvent {
  std::uint32_t vc_flat = 0;
  NodeId node = kInvalidNode;
  Flit flit;
};

struct TerminalState {
  NodeId node = kInvalidNode;
  Cycle next_gen = 0;
  RingQueue<PacketId> queue;  ///< Packets waiting to enter the network.
  std::uint32_t inj_base = 0;  ///< Flat index of the injection port's VC 0.
  VcIx inj_vc = 0;            ///< VC fifo the current head packet uses.
  std::uint16_t pushed = 0;   ///< Flits of the head packet already pushed.
};

/// Reusable engine storage. A context handed to consecutive runs (e.g. the
/// points of a sweep) keeps its high-water-mark capacities, so later runs
/// allocate nothing. A default-constructed context works for any network;
/// the Simulator (re)sizes it on construction.
struct SimContext {
  PacketPool pool;
  std::vector<TerminalState> terms;
  std::vector<NodeId> active;      ///< Routers to process next cycle.
  std::vector<NodeId> scratch;     ///< Ping-pong partner of `active`.
  /// Per router, one word: buffered-flit count << 2 | has-pending-work
  /// flag (bit 1) | in-active-list flag (bit 0). The work flag is a
  /// superset of "any pending bit set for this router": events set it,
  /// process_router() clears it when it leaves no pending bits behind.
  std::vector<std::uint32_t> ract;
  std::vector<std::vector<WheelEvent>> wheel;  ///< Timing-wheel slots.
  /// One bit per input VC: non-empty and not yet Active, i.e. needs RC/VA.
  /// Scanned in ascending index order, so arbitration matches a full scan.
  std::vector<std::uint64_t> ivc_pending;
  /// One bit per output port: `requesters` non-empty, i.e. SA has work.
  std::vector<std::uint64_t> port_pending;
  /// VA waiter chains: a Routed input VC blocked on a busy output VC parks
  /// here instead of re-polling every cycle. ovc_waiters[out-VC] heads an
  /// intrusive list linked through ivc_wait_next[input-VC]; the tail flit
  /// releasing the VC re-arms every waiter's pending bit, which the next
  /// cycle scans in ascending order — exactly when and how a poll loop
  /// would have succeeded. kNoWaiter marks an empty link.
  std::vector<std::uint32_t> ovc_waiters;
  std::vector<std::uint32_t> ivc_wait_next;
  /// Node -> index into `terms` (-1 for non-terminal nodes); the lookup
  /// behind the closed-loop inject_packet() path.
  std::vector<std::int32_t> term_of_node;
};

inline constexpr std::uint32_t kNoWaiter = 0xffffffffu;

class Simulator {
 public:
  /// Owns a private SimContext (one-shot runs, tests).
  Simulator(Network& net, const SimConfig& cfg, TrafficSource& traffic);
  /// Reuses `ctx` (sweeps); the context is reset for this run.
  Simulator(Network& net, const SimConfig& cfg, TrafficSource& traffic,
            SimContext& ctx);

  /// Runs warmup + measurement + drain and returns the aggregated result.
  SimResult run();

  /// Advances exactly one cycle (exposed for white-box tests and for
  /// closed-loop drivers, which interleave inject_packet() with step()).
  void step();
  [[nodiscard]] Cycle now() const { return now_; }

  // ---- closed-loop (message-level) interface ----
  /// Registers the packet-completion hook (nullptr disables it).
  void set_listener(PacketListener* listener) { listener_ = listener; }

  /// Creates a `len`-flit packet src -> dst carrying `tag` and appends it to
  /// the source terminal's queue, bypassing rate-driven generation (use
  /// inj_rate_per_chip = 0 for purely closed-loop runs). Returns false —
  /// and creates nothing — when the queue is at max_src_queue, so callers
  /// can retry next cycle; the refusal is the closed-loop backpressure
  /// signal, not an error. `src` must be a terminal node.
  bool inject_packet(NodeId src, NodeId dst, int len, std::uint32_t tag);

  /// Running engine counters (valid mid-run; run() also reports them).
  [[nodiscard]] std::uint64_t flit_hops() const { return flit_hops_; }
  [[nodiscard]] std::uint64_t delivered_total() const {
    return delivered_total_;
  }

 private:
  void init();
  void generate_and_inject();
  void deliver_channels();
  void process_router(NodeId rid);
  void handle_eject(const Flit& f);

  void activate_router(NodeId id) {
    std::uint32_t& a = ctx_->ract[static_cast<std::size_t>(id)];
    if (!(a & 1)) {
      a |= 1;
      ctx_->active.push_back(id);
    }
  }

  /// Activate + count one more buffered flit in a single word update.
  void activate_router_buffered(NodeId id) {
    std::uint32_t& a = ctx_->ract[static_cast<std::size_t>(id)];
    const bool was = a & 1;
    a = (a + 4) | 1;
    if (!was) ctx_->active.push_back(id);
  }

  /// Marks `id` as having pending RC/VA or SA work (call alongside any
  /// pending-bit set from outside process_router()).
  void mark_work(NodeId id) {
    ctx_->ract[static_cast<std::size_t>(id)] |= 2;
  }

  Network& net_;
  SimConfig cfg_;
  TrafficSource& traffic_;
  PacketListener* listener_ = nullptr;
  Rng rng_;
  std::unique_ptr<SimContext> owned_ctx_;
  SimContext* ctx_ = nullptr;

  Cycle now_ = 0;
  double per_node_pkt_rate_ = 0.0;
  std::size_t wheel_mask_ = 0;

  // measurement accumulators
  OnlineStats lat_;
  Histogram lat_hist_{1.0};
  std::uint64_t accepted_flits_ = 0;
  std::uint64_t generated_measured_ = 0;
  std::uint64_t delivered_measured_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t flit_hops_ = 0;
  double hop_sum_[kNumLinkTypes] = {};
};

/// Convenience wrapper: reset + simulate (one-shot context).
SimResult run_sim(Network& net, const SimConfig& cfg, TrafficSource& traffic);
/// Same, reusing `ctx` across calls (allocation-free after the first run).
SimResult run_sim(SimContext& ctx, Network& net, const SimConfig& cfg,
                  TrafficSource& traffic);

}  // namespace sldf::sim
