// The cycle-driven simulation engine: traffic generation, injection,
// channel delivery, router pipeline (RC/VA/SA/ST), ejection, measurement.
//
// Methodology follows the paper's Table IV defaults: 4-flit packets,
// 32-flit per-VC input buffers, 1 flit/cycle base links, 1-cycle short-reach
// and 8-cycle long-reach delays, 5000 warmup + 10000 measured cycles.
#pragma once

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"

namespace sldf::sim {

/// Supplies a destination node for each generated packet.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  /// Returns the destination *node* for a packet injected at `src`, or
  /// kInvalidNode to suppress generation at this source this time.
  virtual NodeId dest(const Network& net, NodeId src, Rng& rng) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

struct SimConfig {
  double inj_rate_per_chip = 0.1;  ///< Offered load, flits/cycle/chip.
  int pkt_len = 4;                 ///< Flits per packet (Table IV).
  Cycle warmup = 5000;
  Cycle measure = 10000;
  Cycle drain = 5000;          ///< Extra cycles to let measured packets land.
  std::uint64_t seed = 1;
  int max_src_queue = 256;     ///< Per-node source-queue cap (packets).
};

struct SimResult {
  double offered = 0.0;        ///< Configured rate (flits/cycle/chip).
  double accepted = 0.0;       ///< Ejected flits/cycle/chip in the window.
  double avg_latency = 0.0;    ///< Generation -> tail ejection, cycles.
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double min_latency = 0.0;
  double max_latency = 0.0;
  std::uint64_t generated_measured = 0;
  std::uint64_t delivered_measured = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t suppressed = 0;  ///< Packets dropped by the source-queue cap.
  bool drained = false;          ///< All measured packets delivered by the end.
  double avg_hops[kNumLinkTypes] = {};  ///< Per delivered measured packet.
  double avg_hops_total = 0.0;
  Cycle cycles_run = 0;
};

class Simulator {
 public:
  Simulator(Network& net, const SimConfig& cfg, TrafficSource& traffic);

  /// Runs warmup + measurement + drain and returns the aggregated result.
  SimResult run();

  /// Advances exactly one cycle (exposed for white-box tests).
  void step();
  [[nodiscard]] Cycle now() const { return now_; }

 private:
  struct TerminalState {
    NodeId node = kInvalidNode;
    Cycle next_gen = 0;
    std::deque<PacketId> queue;  ///< Packets waiting to enter the network.
    VcIx inj_vc = 0;             ///< VC fifo the current head packet uses.
    std::uint16_t pushed = 0;    ///< Flits of the head packet already pushed.
  };

  struct FlitDelivery {
    NodeId dst;
    PortIx dst_port;
    VcIx vc;
    Flit flit;
  };
  struct CreditDelivery {
    NodeId src;
    PortIx src_port;
    VcIx vc;
  };

  void generate_and_inject();
  void deliver_channels();
  void process_router(NodeId rid);
  void handle_eject(const Flit& f);

  void activate_router(NodeId id) {
    Router& r = net_.router(id);
    if (!r.in_active_list) {
      r.in_active_list = true;
      active_routers_.push_back(id);
    }
  }

  Network& net_;
  SimConfig cfg_;
  TrafficSource& traffic_;
  Rng rng_;
  PacketPool pool_;

  Cycle now_ = 0;
  double per_node_pkt_rate_ = 0.0;
  std::vector<TerminalState> terms_;
  std::vector<NodeId> active_routers_;
  // Timing wheel: slot (cycle % wheel size) holds the deliveries due then.
  std::size_t wheel_mask_ = 0;
  std::vector<std::vector<FlitDelivery>> wheel_flits_;
  std::vector<std::vector<CreditDelivery>> wheel_credits_;

  // measurement accumulators
  OnlineStats lat_;
  Histogram lat_hist_{1.0};
  std::uint64_t accepted_flits_ = 0;
  std::uint64_t generated_measured_ = 0;
  std::uint64_t delivered_measured_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t suppressed_ = 0;
  double hop_sum_[kNumLinkTypes] = {};
};

/// Convenience wrapper: reset + simulate.
SimResult run_sim(Network& net, const SimConfig& cfg, TrafficSource& traffic);

}  // namespace sldf::sim
