// The cycle-driven simulation engine: traffic generation, injection,
// channel delivery, router pipeline (RC/VA/SA/ST), ejection, measurement.
//
// Methodology follows the paper's Table IV defaults: 4-flit packets,
// 32-flit per-VC input buffers, 1 flit/cycle base links, 1-cycle short-reach
// and 8-cycle long-reach delays, 5000 warmup + 10000 measured cycles.
//
// Hot-path layout: all per-VC state lives in the Network's flat arrays
// (see network.hpp); in-flight flits and credits share one timing-wheel
// event record; and every growable container the engine touches per cycle
// (wheel slots, active lists, source queues, packet pool) lives in a
// SimContext that can be reused across runs, so steady-state simulation
// performs no heap allocation.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "common/ring.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"

namespace sldf::sim {

/// Supplies a destination node for each generated packet.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  /// Returns the destination *node* for a packet injected at `src`, or
  /// kInvalidNode to suppress generation at this source this time.
  virtual NodeId dest(const Network& net, NodeId src, Rng& rng) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Packet-completion hook for closed-loop (message-level) traffic. The
/// callback fires when the tail flit of a packet is consumed at its
/// destination, before the packet returns to the pool — `p` is only valid
/// for the duration of the call. Callbacks fire in deterministic engine
/// order (ejection processing order within the cycle).
class PacketListener {
 public:
  virtual ~PacketListener() = default;
  virtual void on_packet_delivered(const Packet& p, Cycle now) = 0;
  /// Fires when a fault event destroys a packet that cannot (or may not)
  /// be rescued: dead source/destination, rescue disabled, or a full
  /// source queue. `p` is only valid for the duration of the call. The
  /// default is a no-op so open-loop listeners stay oblivious.
  virtual void on_packet_dropped(const Packet& p, Cycle now) {
    (void)p;
    (void)now;
  }
};

struct SimConfig {
  double inj_rate_per_chip = 0.1;  ///< Offered load, flits/cycle/chip.
  int pkt_len = 4;                 ///< Flits per packet (Table IV).
  Cycle warmup = 5000;
  Cycle measure = 10000;
  Cycle drain = 5000;          ///< Extra cycles to let measured packets land.
  std::uint64_t seed = 1;
  int max_src_queue = 256;     ///< Per-node source-queue cap (packets).
  /// Event-driven fast paths: generation driven by a `next_gen` min-heap
  /// (instead of a full terminal scan every cycle) and idle-cycle elision
  /// (run()/try_skip_idle() jump over provably empty cycles). Results are
  /// bit-identical either way — the switch exists so tests can A/B the
  /// fast paths against the reference cycle-by-cycle scan engine.
  bool idle_skip = true;
  /// Intra-simulation engine shards: N > 1 partitions one network's routers
  /// into N chip-aligned shards (Network::shard_bounds) processed by N
  /// threads per cycle under a two-phase compute/commit protocol; 1 runs
  /// the serial engine; 0 = auto (the `SLDF_SHARDS` environment variable,
  /// or 1 when unset — see resolve_shards()). Fixed-seed SimResults are
  /// bit-identical across every shard count; see docs/ARCHITECTURE.md,
  /// "Threading & determinism model".
  int shards = 0;
};

struct SimResult {
  double offered = 0.0;        ///< Configured rate (flits/cycle/chip).
  double accepted = 0.0;       ///< Ejected flits/cycle/chip in the window.
  double avg_latency = 0.0;    ///< Generation -> tail ejection, cycles.
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double min_latency = 0.0;
  double max_latency = 0.0;
  std::uint64_t generated_measured = 0;
  std::uint64_t delivered_measured = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t suppressed = 0;  ///< Packets dropped by the source-queue cap.
  bool drained = false;          ///< All measured packets delivered by the end.
  double avg_hops[kNumLinkTypes] = {};  ///< Per delivered measured packet.
  double avg_hops_total = 0.0;
  Cycle cycles_run = 0;
  /// Flits forwarded onto channels over the whole run (excludes ejection):
  /// the engine-throughput numerator reported by sldf-bench.
  std::uint64_t flit_hops = 0;
  // --- online-resilience accounting (fault event timelines only) ---
  std::uint64_t dropped_packets = 0;  ///< Destroyed by fault events, unrescued.
  std::uint64_t dropped_flits = 0;    ///< Flits those packets carried.
  std::uint64_t rescued_packets = 0;  ///< Re-queued at their source instead.
  // --- conservation ledger (tests/test_fixtures.hpp audits it) ---
  // Invariants at any cycle boundary, so at the end of a run:
  //   generated_packets == delivered_total + dropped_packets
  //                        + inflight_packets
  //   generated_flits   == ejected_flits + lost_flits + inflight_flits
  // (a rescue re-credits the already-ejected flits it retransmits into
  // generated_flits, so the flit ledger stays balanced).
  std::uint64_t generated_packets = 0;  ///< Pool acquisitions (all traffic).
  std::uint64_t inflight_packets = 0;   ///< Live pool packets at run end.
  std::uint64_t generated_flits = 0;    ///< Flits owed to the network.
  std::uint64_t ejected_flits = 0;      ///< Flits consumed at destinations.
  std::uint64_t lost_flits = 0;         ///< Unejected flits of dropped pkts.
  std::uint64_t inflight_flits = 0;     ///< Unejected flits of live pkts.
  // --- per-plane accounting (size num_planes(); one entry single-plane) ---
  std::vector<std::uint64_t> plane_generated;
  std::vector<std::uint64_t> plane_delivered;
  std::vector<std::uint64_t> plane_dropped;
  std::vector<std::uint64_t> plane_inflight;
  // --- per-wafer accounting (size num_wafers(); one entry single-wafer).
  // Packets are attributed to their SOURCE wafer, like the plane split, so
  // summing any vector over wafers reproduces the global counter. ---
  std::vector<std::uint64_t> wafer_generated;
  std::vector<std::uint64_t> wafer_delivered;
  std::vector<std::uint64_t> wafer_dropped;
  std::vector<std::uint64_t> wafer_inflight;
};

/// One timing-wheel record: a flit arriving at an input VC, or (when
/// `!flit.carries_packet()`) a credit returning to an output VC. For flit
/// arrivals `vc_flat` is the destination input VC's flat index; for
/// credits it is `(upstream pflat << kPortLaneBits) | u16 credit lane`.
/// `node` is the router to re-activate.
struct WheelEvent {
  std::uint32_t vc_flat = 0;
  NodeId node = kInvalidNode;
  Flit flit;
};

struct TerminalState {
  NodeId node = kInvalidNode;
  Cycle next_gen = 0;
  RingQueue<PacketId> queue;  ///< Packets waiting to enter the network.
  std::uint32_t inj_base = 0;  ///< Flat index of the injection port's VC 0.
  VcIx inj_vc = 0;            ///< VC fifo the current head packet uses.
  std::uint16_t pushed = 0;   ///< Flits of the head packet already pushed.
};

/// Advances a terminal generation clock: the arrival after `when` with
/// `skip` failure cycles in between is `when + 1 + skip`, saturating at
/// ~0ULL ("never") when that sum would wrap. The guard threshold is
/// deliberately conservative by one (`skip == ~0ULL - when - 1`, whose sum
/// would be exactly ~0ULL, already saturates) so that the sentinel value
/// can never be produced by a legitimate arrival time.
constexpr Cycle advance_next_gen(Cycle when, std::uint64_t skip) {
  return (skip >= ~0ULL - when - 1) ? ~0ULL : when + 1 + skip;
}

/// One pending generation arrival in SimContext::gen_heap: terminal
/// `term`'s clock fires at cycle `when`. Entries are lazily invalidated —
/// an entry is live only while `terms[term].next_gen == when` still holds
/// (fault deaths and re-arms leave stale entries to be discarded on pop).
struct GenEvent {
  Cycle when = 0;
  std::uint32_t term = 0;
};

/// One wheel event whose commit the sharded engine deferred to the serial
/// commit pass, tagged with its target slot (already cycle-masked).
struct PendingEvent {
  std::uint32_t slot = 0;
  WheelEvent ev;
};

/// Commit-replay bookkeeping for one router processed by a shard during
/// one cycle: how many wheel events and delivered tail packets it
/// produced. The commit pass walks the *global* snapshot in order and
/// consumes each router's run, which reconstructs the serial engine's
/// exact wheel-push / ejection / listener / pool-release interleaving.
struct ShardRun {
  NodeId rid = kInvalidNode;
  std::uint32_t num_events = 0;
  std::uint32_t num_tails = 0;
};

/// Per-shard compute-phase scratch (sharded engine only). Cache-line
/// aligned so shards never false-share their cursors; all vectors keep
/// their high-water capacities across cycles and runs.
struct alignas(64) ShardScratch {
  std::vector<NodeId> snap;          ///< This shard's slice of the snapshot.
  std::vector<PendingEvent> events;  ///< Deferred wheel pushes, in order.
  std::vector<PacketId> tails;       ///< Delivered tail packets, in order.
  std::vector<ShardRun> runs;        ///< Per processed router, in order.
  std::uint64_t flit_hops = 0;       ///< Order-insensitive counters, summed
  std::uint64_t accepted_flits = 0;  ///< into the globals at commit.
  std::uint64_t ejected_flits = 0;   ///< Same (conservation ledger).
  // Commit-pass consumption cursors (only the committing thread moves them).
  std::size_t run_cur = 0;
  std::size_t ev_cur = 0;
  std::size_t tail_cur = 0;
};

/// Reusable engine storage. A context handed to consecutive runs (e.g. the
/// points of a sweep) keeps its high-water-mark capacities, so later runs
/// allocate nothing. A default-constructed context works for any network;
/// the Simulator (re)sizes it on construction.
struct SimContext {
  PacketPool pool;
  std::vector<TerminalState> terms;
  std::vector<NodeId> active;      ///< Routers to process next cycle.
  std::vector<NodeId> scratch;     ///< Ping-pong partner of `active`.
  /// Per router, one word: buffered-flit count << 2 | has-pending-work
  /// flag (bit 1) | in-active-list flag (bit 0). The work flag is a
  /// superset of "any pending bit set for this router": events set it,
  /// process_router() clears it when it leaves no pending bits behind.
  std::vector<std::uint32_t> ract;
  std::vector<std::vector<WheelEvent>> wheel;  ///< Timing-wheel slots.
  /// One bit per input VC: non-empty and not yet Active, i.e. needs RC/VA.
  /// Scanned in ascending index order, so arbitration matches a full scan.
  std::vector<std::uint64_t> ivc_pending;
  /// One bit per output port: `requesters` non-empty, i.e. SA has work.
  std::vector<std::uint64_t> port_pending;
  /// VA waiter chains: a Routed input VC blocked on a busy output VC parks
  /// here instead of re-polling every cycle. ovc_waiters[out-VC] heads an
  /// intrusive list linked through ivc_wait_next[input-VC]; the tail flit
  /// releasing the VC re-arms every waiter's pending bit, which the next
  /// cycle scans in ascending order — exactly when and how a poll loop
  /// would have succeeded. kNoWaiter marks an empty link.
  std::vector<std::uint32_t> ovc_waiters;
  std::vector<std::uint32_t> ivc_wait_next;
  /// Packet owning each non-Idle input VC (kInvalidPacket otherwise).
  /// Written at RC, cleared when the tail flit pops. The fault sweep uses
  /// it to identify the packet behind an Active VC whose FIFO has drained
  /// (its flits are in flight downstream), and checkpoints carry it.
  std::vector<PacketId> ivc_pkt;
  /// Node -> index into `terms` (-1 for non-terminal nodes); the lookup
  /// behind the closed-loop inject_packet() path.
  std::vector<std::int32_t> term_of_node;
  // ---- event-driven generation (SimConfig::idle_skip only) ----
  /// Min-heap (std::push_heap/pop_heap, earliest `when` first) of pending
  /// generation arrivals, lazily invalidated (see GenEvent). Derived state:
  /// never checkpointed, rebuilt from `terms` on restore.
  std::vector<GenEvent> gen_heap;
  /// One bit per terminal index: source queue non-empty (injection has
  /// work). Derived state, rebuilt on restore.
  std::vector<std::uint64_t> inj_pending;
  /// Scratch bitmask of terminals whose generation clock fires this cycle
  /// (always zero between cycles).
  std::vector<std::uint64_t> gen_due;
  // ---- sharded engine (shards > 1 only; empty otherwise) ----
  std::vector<ShardScratch> shard_scratch;  ///< One per shard.
  std::vector<std::uint16_t> shard_of;      ///< Router -> owning shard.
};

inline constexpr std::uint32_t kNoWaiter = 0xffffffffu;

/// Maps the shard-count convention to a concrete count >= 1: an explicit
/// `requested >= 1` is returned as-is; `requested == 0` (auto) reads the
/// `SLDF_SHARDS` environment variable (a positive integer; anything else
/// is ignored) and falls back to 1. The env hook lets an unmodified test
/// or tool suite be re-run entirely on the sharded engine
/// (`SLDF_SHARDS=2 ctest ...` — the CI does exactly this), which is only
/// sound because fixed-seed results are shard-count-invariant.
int resolve_shards(int requested);

/// The cycle engine. Every cycle runs three phases in a fixed order:
///
///   1. deliver_channels() — drain the current timing-wheel slot: flit
///      arrivals into input-VC FIFOs, then credit returns to output ports.
///   2. generate_and_inject() — rate-driven packet generation (one global
///      RNG, terminals in index order) and one-flit-per-cycle injection.
///   3. router pipeline — RC/VA/SA/ST for every router with pending work,
///      in active-list order (exact event-driven subset of a full scan).
///
/// With cfg.shards > 1 phase 3 is executed by a shard team under a
/// two-phase compute/commit protocol that reproduces the serial engine's
/// observable orderings exactly (see step_sharded() in simulator.cpp and
/// docs/ARCHITECTURE.md, "Threading & determinism model"); phases 1 and 2
/// stay serial. Fixed-seed results are bit-identical for every shard
/// count, so `shards` is purely a wall-clock knob.
class Simulator {
 public:
  /// Owns a private SimContext (one-shot runs, tests).
  Simulator(Network& net, const SimConfig& cfg, TrafficSource& traffic);
  /// Reuses `ctx` (sweeps); the context is reset for this run.
  Simulator(Network& net, const SimConfig& cfg, TrafficSource& traffic,
            SimContext& ctx);
  /// Joins the shard team (sharded runs only).
  ~Simulator();

  /// Runs warmup + measurement + drain and returns the aggregated result.
  SimResult run();

  /// Advances exactly one cycle (exposed for white-box tests and for
  /// closed-loop drivers, which interleave inject_packet() with step()).
  void step();
  [[nodiscard]] Cycle now() const { return now_; }

  /// Idle-cycle elision: when the active-router list, the injection-pending
  /// bitmask, the terminal `next_gen` heap, the timing wheel, and the fault
  /// timeline all agree that nothing can happen before some cycle T > now,
  /// jumps simulation time directly to min(T, `limit`) and returns the new
  /// now(). Otherwise (work pending this cycle, or cfg.idle_skip is off)
  /// returns now() unchanged. The skipped cycles are provably no-ops, so a
  /// skipping run is bit-identical to a stepping run; run() calls this
  /// between step()s, and closed-loop drivers may call it with the next
  /// cycle they themselves have work at (e.g. a timed release) as `limit`.
  Cycle try_skip_idle(Cycle limit);

  // ---- closed-loop (message-level) interface ----
  /// Registers the packet-completion hook (nullptr disables it).
  void set_listener(PacketListener* listener) { listener_ = listener; }

  /// Creates a `len`-flit packet src -> dst carrying `tag` and appends it to
  /// the source terminal's queue, bypassing rate-driven generation (use
  /// inj_rate_per_chip = 0 for purely closed-loop runs). Returns false —
  /// and creates nothing — when the queue is at max_src_queue, so callers
  /// can retry next cycle; the refusal is the closed-loop backpressure
  /// signal, not an error. `src` must be a terminal node. On a multi-plane
  /// network `src`/`dst` are logical (plane-0) nodes; the packet is remapped
  /// to its selected plane's twin terminals before queueing. `rail_hint`
  /// feeds the collective-aware plane policy (callers pass a phase or rail
  /// index; ignored by the other policies and on single-plane networks).
  bool inject_packet(NodeId src, NodeId dst, int len, std::uint32_t tag,
                     std::uint32_t rail_hint = 0);

  /// Running engine counters (valid mid-run; run() also reports them).
  /// Sharded runs update them at each cycle's commit, so mid-cycle
  /// observers (PacketListener callbacks fire during the commit) see the
  /// cycle's full counts rather than the serial engine's partial ones —
  /// the one documented observability difference between the two paths.
  [[nodiscard]] std::uint64_t flit_hops() const { return flit_hops_; }
  [[nodiscard]] std::uint64_t delivered_total() const {
    return delivered_total_;
  }
  [[nodiscard]] std::uint64_t accepted_flits() const {
    return accepted_flits_;
  }
  [[nodiscard]] std::uint64_t dropped_packets() const {
    return dropped_packets_;
  }
  [[nodiscard]] std::uint64_t rescued_packets() const {
    return rescued_packets_;
  }

  // ---- checkpoint / resume ----
  /// Serializes the complete dynamic simulation state (engine counters,
  /// RNG stream, stats accumulators, context, and the network's dynamic
  /// state) at the current cycle boundary. Call between step()s — never
  /// mid-cycle. A Simulator constructed over the same network and config
  /// can restore_checkpoint() and continue bit-identically to a run that
  /// was never interrupted (including a later run()).
  void save_checkpoint(std::ostream& out) const;
  /// Inverse of save_checkpoint(). Throws std::runtime_error when the
  /// stream is truncated/corrupt or was saved against a different
  /// network/config shape.
  void restore_checkpoint(std::istream& in);

  /// Resolved shard count this engine runs with (>= 1; clamped to the
  /// network's chip count).
  [[nodiscard]] int shards() const { return shards_; }

 private:
  class ShardTeam;

  void init();
  void generate_and_inject();
  /// Reference generation/injection path: full terminal scan every cycle
  /// (cfg.idle_skip == false). The event-driven path must match it bit for
  /// bit; tests A/B the two.
  void generate_and_inject_scan();
  /// Event-driven path: visits only terminals whose generation clock fires
  /// this cycle (gen_heap) or whose source queue is non-empty
  /// (inj_pending), in ascending terminal order — the exact subset of
  /// terminals the full scan would have done anything at.
  void generate_and_inject_sparse();
  /// Generation + one-flit injection for terminal `ti` (the shared
  /// per-terminal body of the two paths above).
  void gen_and_inject_terminal(std::size_t ti);
  void deliver_channels();
  /// Applies every due FaultStep of the network's fault schedule (called
  /// at the top of step(), before any engine phase — always serial).
  void apply_fault_steps();
  void apply_fault_step(const FaultStep& fs);
  /// Drops or rescues one fault-affected packet (see apply_fault_step).
  void drop_packet(PacketId pid);
  /// The router pipeline (RC/VA/SA/ST) for one router. `Sharded`
  /// instantiations buffer every cross-router effect (wheel pushes, tail
  /// deliveries, order-sensitive stats) into `ss` and use atomic bit ops
  /// on the pending masks (shards sharing a 64-bit boundary word);
  /// the serial instantiation is the original in-place hot path.
  template <bool Sharded>
  void process_router_impl(NodeId rid, ShardScratch* ss);
  void process_router(NodeId rid) { process_router_impl<false>(rid, nullptr); }
  void handle_eject(const Flit& f);
  /// Compute phase of one sharded cycle for shard `k` (runs concurrently
  /// with the other shards' phases; touches only shard-local state).
  void run_shard_phase(int k);
  /// Two-stage lookahead prefetch for position `i` of a snapshot walk
  /// (far = per-router offset entries, near = the state lines those
  /// offsets point at), shared by the serial and sharded snapshot loops.
  void prefetch_snapshot(const std::vector<NodeId>& snap, std::size_t i);
  /// Commit + stats for one delivered tail packet (shared by the serial
  /// handle_eject path and the sharded commit pass; `p` == pool[pid]).
  void commit_tail(PacketId pid);
  void step_sharded();

  void activate_router(NodeId id) {
    std::uint32_t& a = ctx_->ract[static_cast<std::size_t>(id)];
    if (!(a & 1)) {
      a |= 1;
      ctx_->active.push_back(id);
    }
  }

  /// Activate + count one more buffered flit in a single word update.
  void activate_router_buffered(NodeId id) {
    std::uint32_t& a = ctx_->ract[static_cast<std::size_t>(id)];
    const bool was = a & 1;
    a = (a + 4) | 1;
    if (!was) ctx_->active.push_back(id);
  }

  /// Marks `id` as having pending RC/VA or SA work (call alongside any
  /// pending-bit set from outside process_router()).
  void mark_work(NodeId id) {
    ctx_->ract[static_cast<std::size_t>(id)] |= 2;
  }

  // ---- event-driven generation bookkeeping (cfg.idle_skip only) ----
  /// Records terminal `ti`'s (re-)armed generation clock in the heap.
  void gen_heap_push(Cycle when, std::size_t ti);
  /// Call after pushing to terminal `ti`'s queue / after popping from it:
  /// maintains the injection-pending bitmask and its population count.
  void inj_mark(std::size_t ti);
  void inj_unmark(std::size_t ti);
  /// Rebuilds gen_heap/inj_pending/inj_terms_ from `terms` (init and
  /// checkpoint restore — the derived state is never serialized).
  void rebuild_gen_state();
  /// Earliest cycle >= now() at which anything can happen, clamped to
  /// `limit`; returns now() when this cycle already has work.
  Cycle next_event_cycle(Cycle limit);

  Network& net_;
  SimConfig cfg_;
  TrafficSource& traffic_;
  PacketListener* listener_ = nullptr;
  Rng rng_;
  std::unique_ptr<SimContext> owned_ctx_;
  SimContext* ctx_ = nullptr;

  Cycle now_ = 0;
  double per_node_pkt_rate_ = 0.0;
  std::size_t wheel_mask_ = 0;
  std::size_t inj_terms_ = 0;  ///< Terminals with a non-empty source queue.
  /// Run the bitmask-directed exact-prefetch stages of the snapshot walk.
  /// Set in init(): true only when the SoA arenas outsize the last-level
  /// cache (large fabrics); on small ones every line is resident and the
  /// extra reads/prefetches are measured pure overhead (~10%).
  bool deep_prefetch_ = false;
  int shards_ = 1;                    ///< Resolved count (see shards()).
  std::unique_ptr<ShardTeam> team_;   ///< Worker threads (shards_ > 1).

  // Online fault timeline (nullptr when the network has none). Steps are
  // consumed in order as now_ reaches them; next_fault_ is checkpointed.
  const FaultSchedule* fault_sched_ = nullptr;
  std::size_t next_fault_ = 0;

  // measurement accumulators
  OnlineStats lat_;
  Histogram lat_hist_{1.0};
  std::uint64_t accepted_flits_ = 0;
  std::uint64_t generated_measured_ = 0;
  std::uint64_t delivered_measured_ = 0;
  std::uint64_t delivered_total_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t flit_hops_ = 0;
  std::uint64_t dropped_packets_ = 0;
  std::uint64_t dropped_flits_ = 0;
  std::uint64_t dropped_measured_ = 0;  ///< Measured packets among the drops.
  std::uint64_t rescued_packets_ = 0;
  // Conservation ledger (see SimResult field docs for the invariants).
  std::uint64_t generated_packets_ = 0;
  std::uint64_t generated_flits_ = 0;
  std::uint64_t ejected_flits_ = 0;
  std::uint64_t lost_flits_ = 0;
  // Plane bookkeeping (sized num_planes(); single entry without planes).
  std::vector<std::uint64_t> plane_generated_;
  std::vector<std::uint64_t> plane_delivered_;
  std::vector<std::uint64_t> plane_dropped_;
  /// Per-terminal round-robin plane cursor (indexed by terminal index;
  /// only logical terminals advance theirs). Checkpointed.
  std::vector<std::uint32_t> rr_plane_;
  int num_planes_ = 1;    ///< Cached net_.num_planes() (init()).
  int plane_policy_ = 0;  ///< Cached net_.plane_policy() (init()).
  // Wafer bookkeeping (sized num_wafers(); single entry without wafers).
  std::vector<std::uint64_t> wafer_generated_;
  std::vector<std::uint64_t> wafer_delivered_;
  std::vector<std::uint64_t> wafer_dropped_;
  int num_wafers_ = 1;  ///< Cached net_.num_wafers() (init()).
  double hop_sum_[kNumLinkTypes] = {};
};

/// Convenience wrapper: reset + simulate (one-shot context).
SimResult run_sim(Network& net, const SimConfig& cfg, TrafficSource& traffic);
/// Same, reusing `ctx` across calls (allocation-free after the first run).
SimResult run_sim(SimContext& ctx, Network& net, const SimConfig& cfg,
                  TrafficSource& traffic);

}  // namespace sldf::sim
