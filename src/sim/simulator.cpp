#include "sim/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "route/plane_select.hpp"

namespace sldf::sim {

namespace {

/// Pending-bitmask ops. Shard compute phases touch only their own
/// routers' bits, but two shards' VC/port index ranges can share one
/// 64-bit boundary word, so the `Atomic` instantiations use relaxed RMW
/// (distinct-bit ORs/ANDs commute — the final word value is independent
/// of interleaving, keeping the engine deterministic). The serial engine
/// and the serial phases of a sharded cycle use the plain instantiations.
template <bool Atomic = false>
inline void set_bit(std::vector<std::uint64_t>& w, std::uint32_t i) {
  if constexpr (Atomic) {
    std::atomic_ref<std::uint64_t>(w[i >> 6])
        .fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  } else {
    w[i >> 6] |= 1ULL << (i & 63);
  }
}
template <bool Atomic = false>
inline void clear_bit(std::vector<std::uint64_t>& w, std::uint32_t i) {
  if constexpr (Atomic) {
    std::atomic_ref<std::uint64_t>(w[i >> 6])
        .fetch_and(~(1ULL << (i & 63)), std::memory_order_relaxed);
  } else {
    w[i >> 6] &= ~(1ULL << (i & 63));
  }
}

/// Extracts the bits of word `w` of `words` that fall inside [begin, end).
/// `Atomic` loads tolerate a neighbour shard concurrently flipping *its*
/// bits of a shared boundary word; the masking below discards them.
template <bool Atomic = false>
inline std::uint64_t masked_word(const std::vector<std::uint64_t>& words,
                                 std::uint32_t w, std::uint32_t begin,
                                 std::uint32_t end) {
  std::uint64_t bits;
  if constexpr (Atomic) {
    bits = std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(words[w]))
               .load(std::memory_order_relaxed);
  } else {
    bits = words[w];
  }
  if (w == (begin >> 6)) bits &= ~0ULL << (begin & 63);
  if (w == ((end - 1) >> 6)) bits &= ~0ULL >> (63 - ((end - 1) & 63));
  return bits;
}

/// Sizes/resets `ctx` for `net` and returns the wheel mask. The wheel must
/// hold at least max-channel-latency + 1 slots; any power of two above that
/// behaves identically (slot index = cycle & mask uniquely maps every
/// in-flight event to its target cycle), so a larger recycled wheel is fine.
std::size_t prepare_context(SimContext& ctx, Network& net) {
  std::size_t max_lat = 1;
  for (std::size_t i = 0; i < net.num_channels(); ++i)
    max_lat = std::max<std::size_t>(max_lat,
                                    net.chan(static_cast<ChanId>(i)).latency);
  std::size_t w = 1;
  while (w <= max_lat) w <<= 1;
  if (ctx.wheel.size() < w)
    ctx.wheel.resize(w);
  else
    w = ctx.wheel.size();  // already a power of two (only sized here)
  for (auto& slot : ctx.wheel) slot.clear();  // keeps slot capacity

  ctx.pool.reset();
  ctx.active.clear();
  ctx.scratch.clear();
  ctx.ract.assign(net.num_routers(), 0);
  ctx.ivc_pending.assign((net.fifos().num_fifos() + 63) / 64, 0);
  ctx.port_pending.assign((net.num_out_ports() + 63) / 64, 0);
  ctx.ovc_waiters.assign(static_cast<std::size_t>(net.num_out_ports()) *
                             static_cast<std::size_t>(net.num_vcs()),
                         kNoWaiter);
  ctx.ivc_wait_next.assign(net.fifos().num_fifos(), kNoWaiter);
  ctx.ivc_pkt.assign(net.fifos().num_fifos(), kInvalidPacket);
  return w - 1;
}

// Binary checkpoint-stream helpers (little-endian host assumed, as the
// checkpoint is a same-machine resume format, not an interchange format).
void ck_put(std::ostream& out, const void* p, std::size_t n) {
  out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}
void ck_get(std::istream& in, void* p, std::size_t n) {
  in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (!in) throw std::runtime_error("checkpoint: truncated stream");
}
template <typename T>
void ck_put_v(std::ostream& out, const T& v) {
  ck_put(out, &v, sizeof(T));
}
template <typename T>
T ck_get_v(std::istream& in) {
  T v{};
  ck_get(in, &v, sizeof(T));
  return v;
}
template <typename T>
void ck_put_vec(std::ostream& out, const T& vec) {
  ck_put_v(out, static_cast<std::uint64_t>(vec.size()));
  if (!vec.empty())
    ck_put(out, vec.data(), vec.size() * sizeof(typename T::value_type));
}
template <typename T>
void ck_get_vec(std::istream& in, T& vec) {
  const auto n = ck_get_v<std::uint64_t>(in);
  if (n > (1ULL << 40))
    throw std::runtime_error("checkpoint: implausible vector size");
  vec.resize(static_cast<std::size_t>(n));
  if (n)
    ck_get(in, vec.data(),
           static_cast<std::size_t>(n) * sizeof(typename T::value_type));
}
/// Rejects implausible element counts before a resize+raw-read would try
/// to allocate them (corrupt or truncated-then-misaligned streams).
void check_ck_size(std::uint64_t n, std::size_t elem_size) {
  if (n > (1ULL << 40) / elem_size)
    throw std::runtime_error("checkpoint: implausible size field");
}
void ck_expect(std::istream& in, std::uint64_t want, const char* what) {
  const auto got = ck_get_v<std::uint64_t>(in);
  if (got != want)
    throw std::runtime_error(std::string("checkpoint: ") + what +
                             " mismatch (saved against a different "
                             "network/config shape)");
}

/// Heap ordering for SimContext::gen_heap: std::push_heap and friends build
/// a max-heap, so comparing with "fires later" keeps the EARLIEST pending
/// generation arrival at front().
inline bool gen_event_after(const GenEvent& a, const GenEvent& b) {
  return a.when > b.when;
}

}  // namespace

int resolve_shards(int requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("SLDF_SHARDS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 0xffff)
      return static_cast<int>(v);
  }
  return 1;
}

/// The per-cycle worker team of a sharded engine. One thread per shard
/// beyond shard 0 (which the driving thread runs itself). Workers park on
/// a C++20 atomic wait after a short spin, so an oversubscribed host (or
/// the serial phases of every cycle) is not burned by busy-waiting, while
/// a multi-core host pays only the spin on the hot hand-off.
class Simulator::ShardTeam {
 public:
  ShardTeam(Simulator& sim, int nshards) : sim_(sim) {
    workers_.reserve(static_cast<std::size_t>(nshards - 1));
    for (int k = 1; k < nshards; ++k)
      workers_.emplace_back([this, k] { worker(k); });
  }

  ~ShardTeam() {
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (auto& t : workers_) t.join();
  }

  /// Runs one compute phase across all shards and returns when every
  /// shard is done. The epoch release publishes the serial phases'
  /// writes to the workers; the done-count acquire publishes the shards'
  /// writes back to the committing thread.
  void run_phase() {
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    sim_.run_shard_phase(0);
    const auto need = static_cast<int>(workers_.size());
    int spins = 0;
    while (done_.load(std::memory_order_acquire) != need) {
      if (++spins > 1024) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

 private:
  void worker(int k) {
    // The team is constructed at epoch 0, so that is the last epoch this
    // worker has (vacuously) processed — reading the counter here instead
    // would drop a phase signalled before the thread got scheduled.
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t e;
      int spins = 0;
      while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
        if (++spins > 4096) {
          epoch_.wait(seen, std::memory_order_acquire);
          spins = 0;
        }
      }
      seen = e;
      if (stop_.load(std::memory_order_relaxed)) return;
      sim_.run_shard_phase(k);
      done_.fetch_add(1, std::memory_order_release);
    }
  }

  Simulator& sim_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> stop_{false};
};

Simulator::Simulator(Network& net, const SimConfig& cfg, TrafficSource& traffic)
    : net_(net), cfg_(cfg), traffic_(traffic), rng_(cfg.seed),
      owned_ctx_(std::make_unique<SimContext>()), ctx_(owned_ctx_.get()) {
  init();
}

Simulator::Simulator(Network& net, const SimConfig& cfg, TrafficSource& traffic,
                     SimContext& ctx)
    : net_(net), cfg_(cfg), traffic_(traffic), rng_(cfg.seed), ctx_(&ctx) {
  init();
}

Simulator::~Simulator() = default;

void Simulator::init() {
  if (!net_.finalized())
    throw std::logic_error("Simulator: network not finalized");
  if (!net_.routing())
    throw std::logic_error("Simulator: network has no routing algorithm");
  if (net_.num_chips() == 0)
    throw std::logic_error("Simulator: network has no chips");

  // Offered load is defined over the LOGICAL chip space: on a multi-plane
  // network only the plane-0 terminals draw generation clocks (packets fan
  // out to other planes at injection), so the per-node rate divides by the
  // logical terminal count — using terminals().size() here would silently
  // cut offered load by the plane count.
  const double nodes_per_chip =
      static_cast<double>(net_.logical_terminals().size()) /
      static_cast<double>(net_.num_chips());
  per_node_pkt_rate_ = cfg_.inj_rate_per_chip / nodes_per_chip /
                       static_cast<double>(cfg_.pkt_len);

  num_planes_ = net_.num_planes();
  plane_policy_ = net_.plane_policy();
  plane_generated_.assign(static_cast<std::size_t>(num_planes_), 0);
  plane_delivered_.assign(static_cast<std::size_t>(num_planes_), 0);
  plane_dropped_.assign(static_cast<std::size_t>(num_planes_), 0);
  num_wafers_ = net_.num_wafers();
  wafer_generated_.assign(static_cast<std::size_t>(num_wafers_), 0);
  wafer_delivered_.assign(static_cast<std::size_t>(num_wafers_), 0);
  wafer_dropped_.assign(static_cast<std::size_t>(num_wafers_), 0);

  wheel_mask_ = prepare_context(*ctx_, net_);

  ctx_->terms.resize(net_.terminals().size());
  ctx_->term_of_node.assign(net_.num_routers(), -1);
  for (std::size_t i = 0; i < ctx_->terms.size(); ++i) {
    TerminalState& t = ctx_->terms[i];
    t.node = net_.terminals()[i];
    ctx_->term_of_node[static_cast<std::size_t>(t.node)] =
        static_cast<std::int32_t>(i);
    // Only logical (plane-0) terminals carry generation clocks; plane>0
    // twins receive remapped packets at injection and must NOT draw from
    // the RNG, so the plane-0 stream matches a single-fabric run bit for
    // bit.
    const bool generates = net_.plane_of_node(t.node) == 0;
    t.next_gen = (generates && per_node_pkt_rate_ > 0.0)
                     ? rng_.geometric_skip(per_node_pkt_rate_)
                     : ~0ULL;
    // Dead terminals (fault mask) never generate. The skip above still
    // draws from the RNG so live terminals see the same stream whether or
    // not faults are present elsewhere.
    if (!net_.node_live(t.node)) t.next_gen = ~0ULL;
    t.queue.clear();
    t.inj_base = net_.in_vc_index(t.node, net_.router(t.node).inj_port, 0);
    t.inj_vc = 0;
    t.pushed = 0;
  }
  rr_plane_.assign(ctx_->terms.size(), 0);
  rebuild_gen_state();
  // ~3 hot lines per input VC (control word, port record, flit ring)
  // against a conservative LLC guess; see the member doc.
  deep_prefetch_ = net_.fifos().num_fifos() >= 32768;

  // Online fault timeline: steps are applied at the top of step() as now_
  // reaches them. A schedule without a captured baseline would leak online
  // transitions into the next run's reset, so insist on the pairing.
  fault_sched_ = net_.fault_schedule();
  next_fault_ = 0;
  if (fault_sched_ != nullptr && !net_.has_fault_baseline())
    throw std::logic_error(
        "Simulator: network has a fault schedule but no captured fault "
        "baseline (call capture_fault_baseline() after static injection)");

  // Sharded engine setup. More shards than chips cannot be chip-aligned
  // and would only add empty phases, so the resolved count is clamped.
  shards_ = std::min<int>(resolve_shards(cfg_.shards),
                          static_cast<int>(net_.num_chips()));
  if (shards_ > 1) {
    const std::vector<std::uint32_t> bounds = net_.shard_bounds(shards_);
    ctx_->shard_of.assign(net_.num_routers(), 0);
    for (int k = 0; k < shards_; ++k)
      for (std::uint32_t r = bounds[static_cast<std::size_t>(k)];
           r < bounds[static_cast<std::size_t>(k) + 1]; ++r)
        ctx_->shard_of[r] = static_cast<std::uint16_t>(k);
    if (ctx_->shard_scratch.size() < static_cast<std::size_t>(shards_))
      ctx_->shard_scratch.resize(static_cast<std::size_t>(shards_));
    for (auto& sc : ctx_->shard_scratch) {
      sc.snap.clear();
      sc.events.clear();
      sc.tails.clear();
      sc.runs.clear();
      sc.flit_hops = 0;
      sc.accepted_flits = 0;
      sc.ejected_flits = 0;
    }
    team_ = std::make_unique<ShardTeam>(*this, shards_);
  }
}

void Simulator::gen_and_inject_terminal(std::size_t ti) {
  const Cycle gen_end = cfg_.warmup + cfg_.measure;
  PacketPool& pool = ctx_->pool;
  FlitFifoArena& fifos = net_.fifos();
  TerminalState& t = ctx_->terms[ti];
  // --- generation (geometric-skip Bernoulli source) ---
  while (t.next_gen <= now_) {
    const Cycle when = t.next_gen;
    const auto skip = rng_.geometric_skip(per_node_pkt_rate_);
    t.next_gen = advance_next_gen(when, skip);
    if (cfg_.idle_skip && t.next_gen != ~0ULL) gen_heap_push(t.next_gen, ti);
    if (when >= gen_end + cfg_.drain) break;  // past simulation horizon
    if (static_cast<int>(t.queue.size()) >= cfg_.max_src_queue) {
      ++suppressed_;
      continue;
    }
    const NodeId dst = traffic_.dest(net_, t.node, rng_);
    // Dead destinations (fault mask) suppress generation like a pattern
    // returning kInvalidNode; traffic sources stay fault-oblivious.
    if (dst == kInvalidNode || !net_.node_live(dst)) continue;
    // Plane selection: open-loop traffic carries no rail hint, so the
    // collective policy degrades to hash inside select_plane(). The
    // packet is remapped to the chosen plane's twin terminals and the
    // TWIN's source queue takes the backpressure check (the logical
    // queue was already checked above, which keeps the K=1 path
    // bit-identical).
    NodeId src = t.node;
    NodeId pdst = dst;
    TerminalState* tq = &t;
    int plane = 0;
    if (num_planes_ > 1) {
      plane = route::select_plane(
          static_cast<route::PlanePolicy>(plane_policy_), num_planes_,
          net_.chip_of(t.node), net_.chip_of(dst), 0, false, rr_plane_[ti],
          [&](int pl) {
            const NodeId tw = net_.plane_twin(t.node, pl);
            return ctx_->terms[static_cast<std::size_t>(
                                   ctx_->term_of_node[static_cast<
                                       std::size_t>(tw)])]
                .queue.size();
          });
      if (plane != 0) {
        src = net_.plane_twin(t.node, plane);
        pdst = net_.plane_twin(dst, plane);
        tq = &ctx_->terms[static_cast<std::size_t>(
            ctx_->term_of_node[static_cast<std::size_t>(src)])];
        if (static_cast<int>(tq->queue.size()) >= cfg_.max_src_queue) {
          ++suppressed_;
          continue;
        }
        if (!net_.node_live(src) || !net_.node_live(pdst)) continue;
      }
    }
    const PacketId pid = pool.acquire();
    Packet& p = pool[pid];
    p.src = src;
    p.dst = pdst;
    p.len = static_cast<std::uint16_t>(cfg_.pkt_len);
    p.t_gen = when;
    p.measured = (when >= cfg_.warmup && when < gen_end) ? 1 : 0;
    if (p.measured) ++generated_measured_;
    ++generated_packets_;
    generated_flits_ += p.len;
    ++plane_generated_[static_cast<std::size_t>(plane)];
    ++wafer_generated_[static_cast<std::size_t>(net_.wafer_of_node(src))];
    net_.routing()->init_packet(net_, p, rng_);
    tq->queue.push_back(pid);
    if (tq->queue.size() == 1)
      inj_mark(static_cast<std::size_t>(tq - ctx_->terms.data()));
  }
  // --- injection: one flit per cycle into the injection port ---
  if (t.queue.empty()) return;
  const PacketId pid = t.queue.front();
  Packet& p = pool[pid];
  if (t.pushed == 0) t.inj_vc = static_cast<VcIx>(p.vc_class);
  const std::uint32_t ix = t.inj_base + static_cast<std::uint32_t>(t.inj_vc);
  if (!fifos.full(ix)) {
    const Flit f(pid, t.pushed == 0, t.pushed + 1 == p.len);
    fifos.push(ix, f);
    if (fifos.size(ix) == 1) {
      const std::uint32_t meta = fifos.meta(ix);
      if (Network::ivc_state_of(meta) == IvcState::Idle)
        set_bit(ctx_->ivc_pending, ix);  // fresh head flit: needs RC/VA
      else  // refilled a streaming VC: wake its output port for SA
        set_bit(ctx_->port_pending,
                net_.out_port_index(t.node, static_cast<PortIx>(
                                                Network::ivc_port_of(meta))));
      mark_work(t.node);
    }
    activate_router_buffered(t.node);
    if (++t.pushed == p.len) {
      t.queue.pop_front();
      t.pushed = 0;
      if (t.queue.empty()) inj_unmark(ti);
    }
  }
}

void Simulator::generate_and_inject_scan() {
  const std::size_t n = ctx_->terms.size();
  for (std::size_t ti = 0; ti < n; ++ti) gen_and_inject_terminal(ti);
}

void Simulator::generate_and_inject_sparse() {
  // Pop every generation arrival due this cycle into the gen_due scratch
  // bitmask (stale heap entries — fault deaths, re-arms — are discarded
  // here; see GenEvent).
  auto& heap = ctx_->gen_heap;
  while (!heap.empty() && heap.front().when <= now_) {
    std::pop_heap(heap.begin(), heap.end(), gen_event_after);
    const GenEvent e = heap.back();
    heap.pop_back();
    if (ctx_->terms[e.term].next_gen == e.when)
      set_bit(ctx_->gen_due, e.term);
  }
  // Walk the union of due-generation and injection-pending terminals in
  // ascending index order — exactly the subset of terminals the full scan
  // does anything at. The word is re-read after every processed terminal:
  // generation can queue a packet onto a plane twin at a HIGHER index
  // (which the full scan would reach later this same cycle, so it must be
  // visited), while a twin at a LOWER index stays masked out by `done`
  // (the full scan already passed it).
  const std::size_t nw = ctx_->inj_pending.size();
  for (std::size_t w = 0; w < nw; ++w) {
    if ((ctx_->inj_pending[w] | ctx_->gen_due[w]) == 0) continue;
    std::uint64_t done = 0;
    for (;;) {
      const std::uint64_t bits =
          (ctx_->inj_pending[w] | ctx_->gen_due[w]) & ~done;
      if (!bits) break;
      const auto b = static_cast<std::uint32_t>(std::countr_zero(bits));
      done |= b >= 63 ? ~0ULL : (1ULL << (b + 1)) - 1;
      ctx_->gen_due[w] &= ~(1ULL << b);
      gen_and_inject_terminal(w * 64 + b);
    }
  }
}

void Simulator::generate_and_inject() {
  if (cfg_.idle_skip)
    generate_and_inject_sparse();
  else
    generate_and_inject_scan();
}

void Simulator::gen_heap_push(Cycle when, std::size_t ti) {
  ctx_->gen_heap.push_back(GenEvent{when, static_cast<std::uint32_t>(ti)});
  std::push_heap(ctx_->gen_heap.begin(), ctx_->gen_heap.end(),
                 gen_event_after);
}

void Simulator::inj_mark(std::size_t ti) {
  set_bit(ctx_->inj_pending, static_cast<std::uint32_t>(ti));
  ++inj_terms_;
}

void Simulator::inj_unmark(std::size_t ti) {
  clear_bit(ctx_->inj_pending, static_cast<std::uint32_t>(ti));
  --inj_terms_;
}

void Simulator::rebuild_gen_state() {
  const std::size_t n = ctx_->terms.size();
  ctx_->inj_pending.assign((n + 63) / 64, 0);
  ctx_->gen_due.assign(ctx_->inj_pending.size(), 0);
  ctx_->gen_heap.clear();
  inj_terms_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TerminalState& t = ctx_->terms[i];
    if (!t.queue.empty()) inj_mark(i);
    if (cfg_.idle_skip && t.next_gen != ~0ULL)
      ctx_->gen_heap.push_back(
          GenEvent{t.next_gen, static_cast<std::uint32_t>(i)});
  }
  std::make_heap(ctx_->gen_heap.begin(), ctx_->gen_heap.end(),
                 gen_event_after);
}

Cycle Simulator::next_event_cycle(Cycle limit) {
  // Anything already scheduled for this cycle pins time in place: routers
  // with buffered/pending work keep themselves on the active list, and a
  // non-empty source queue injects a flit every cycle.
  if (!ctx_->active.empty() || inj_terms_ != 0) return now_;
  Cycle next = limit;
  // Earliest live generation arrival (stale entries are discarded as they
  // surface, so this also garbage-collects the heap while idling).
  auto& heap = ctx_->gen_heap;
  while (!heap.empty()) {
    const GenEvent& e = heap.front();
    if (ctx_->terms[e.term].next_gen == e.when) {
      next = std::min(next, e.when);
      break;
    }
    std::pop_heap(heap.begin(), heap.end(), gen_event_after);
    heap.pop_back();
  }
  // Next fault-timeline transition.
  if (fault_sched_ != nullptr && next_fault_ < fault_sched_->steps.size())
    next = std::min(next, fault_sched_->steps[next_fault_].at);
  // First non-empty timing-wheel slot. Every in-flight event lands within
  // one wheel revolution of now (slot = cycle & mask is injective there),
  // so the scan can stop at the first occupied slot.
  const std::size_t nslots = wheel_mask_ + 1;
  for (std::size_t k = 0; k < nslots; ++k) {
    if (!ctx_->wheel[(now_ + k) & wheel_mask_].empty()) {
      next = std::min(next, now_ + k);
      break;
    }
  }
  return next < now_ ? now_ : next;
}

Cycle Simulator::try_skip_idle(Cycle limit) {
  if (!cfg_.idle_skip || limit <= now_) return now_;
  now_ = next_event_cycle(limit);
  return now_;
}

bool Simulator::inject_packet(NodeId src, NodeId dst, int len,
                              std::uint32_t tag, std::uint32_t rail_hint) {
  const std::int32_t ti = ctx_->term_of_node[static_cast<std::size_t>(src)];
  if (ti < 0)
    throw std::invalid_argument("inject_packet: source is not a terminal");
  int plane = 0;
  if (num_planes_ > 1) {
    plane = route::select_plane(
        static_cast<route::PlanePolicy>(plane_policy_), num_planes_,
        net_.chip_of(src), net_.chip_of(dst), rail_hint, true,
        rr_plane_[static_cast<std::size_t>(ti)], [&](int pl) {
          const NodeId tw = net_.plane_twin(src, pl);
          return ctx_
              ->terms[static_cast<std::size_t>(
                  ctx_->term_of_node[static_cast<std::size_t>(tw)])]
              .queue.size();
        });
    if (plane != 0) {
      src = net_.plane_twin(src, plane);
      dst = net_.plane_twin(dst, plane);
    }
  }
  TerminalState& t = ctx_->terms[static_cast<std::size_t>(
      ctx_->term_of_node[static_cast<std::size_t>(src)])];
  if (static_cast<int>(t.queue.size()) >= cfg_.max_src_queue) return false;
  const PacketId pid = ctx_->pool.acquire();
  Packet& p = ctx_->pool[pid];
  p.src = src;
  p.dst = dst;
  p.len = static_cast<std::uint16_t>(len);
  p.t_gen = now_;
  p.tag = tag;
  p.measured = 1;
  ++generated_measured_;
  ++generated_packets_;
  generated_flits_ += p.len;
  ++plane_generated_[static_cast<std::size_t>(plane)];
  ++wafer_generated_[static_cast<std::size_t>(net_.wafer_of_node(src))];
  net_.routing()->init_packet(net_, p, rng_);
  t.queue.push_back(pid);
  if (t.queue.size() == 1)
    inj_mark(static_cast<std::size_t>(&t - ctx_->terms.data()));
  return true;
}

void Simulator::deliver_channels() {
  auto& slot = ctx_->wheel[now_ & wheel_mask_];
  FlitFifoArena& fifos = net_.fifos();
  const std::size_t n = slot.size();
  constexpr std::size_t kPf = 8;  // prefetch distance (events are 16 bytes)
  // Pass 1: flit arrivals (before credits, matching router-activation order).
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPf < n) {
      const auto& pe = slot[i + kPf];
      if (pe.flit.carries_packet())  // vc_flat indexes the VC arrays
        __builtin_prefetch(fifos.word_addr(pe.vc_flat));
    }
    const auto& ev = slot[i];
    if (!ev.flit.carries_packet()) continue;
    assert(!fifos.full(ev.vc_flat) && "credit protocol violated");
    fifos.push(ev.vc_flat, ev.flit);
    if (fifos.size(ev.vc_flat) == 1) {
      const std::uint32_t meta = fifos.meta(ev.vc_flat);
      if (Network::ivc_state_of(meta) == IvcState::Idle) {
        set_bit(ctx_->ivc_pending, ev.vc_flat);  // fresh head: needs RC/VA
        // RC will read this packet next cycle — pull its line in now.
        __builtin_prefetch(&ctx_->pool[ev.flit.pkt()]);
        mark_work(ev.node);
      } else {
        // Refilled an Active VC: its output port may have been parked on
        // an empty FIFO — wake it for SA.
        assert(Network::ivc_state_of(meta) == IvcState::Active);
        set_bit(ctx_->port_pending,
                net_.out_port_index(
                    ev.node,
                    static_cast<PortIx>(Network::ivc_port_of(meta))));
        mark_work(ev.node);
      }
    }
    activate_router_buffered(ev.node);
  }
  // Pass 2: credit returns. A credit can unblock the output port that owns
  // the VC, so wake it if it has requesters. A credit event's `vc_flat` is
  // `(pflat << kPortLaneBits) | u16-lane`; the whole port record shares one
  // cache line, so the count check is free after the credit bump.
  auto& ps = net_.port_state();
  const std::uint32_t stride = net_.port_stride();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPf < n) {
      const auto& pe = slot[i + kPf];
      if (!pe.flit.carries_packet())  // vc_flat addresses a port record
        __builtin_prefetch(
            &ps[static_cast<std::size_t>(pe.vc_flat >>
                                         Network::kPortLaneBits) *
                stride]);
    }
    const auto& ev = slot[i];
    if (ev.flit.carries_packet()) continue;
    const std::uint32_t pflat = ev.vc_flat >> Network::kPortLaneBits;
    std::uint32_t* rec = &ps[static_cast<std::size_t>(pflat) * stride];
    reinterpret_cast<std::uint16_t*>(rec)[ev.vc_flat & Network::kLaneMask] +=
        2;  // ++credits (bit 0 of the lane is the busy flag)
    if ((rec[0] & 0xff) != 0) {
      set_bit(ctx_->port_pending, pflat);
      mark_work(ev.node);
    }
    activate_router(ev.node);
  }
  slot.clear();
}

void Simulator::commit_tail(PacketId pid) {
  Packet& p = ctx_->pool[pid];
  ++delivered_total_;
  ++plane_delivered_[static_cast<std::size_t>(net_.plane_of_node(p.src))];
  ++wafer_delivered_[static_cast<std::size_t>(net_.wafer_of_node(p.src))];
  if (p.measured) {
    ++delivered_measured_;
    // Tail delivery is committed at the cycle it happened (the sharded
    // commit pass runs before now_ advances), so the latency is now - t_gen
    // without a stored ejection stamp.
    const auto lat = static_cast<double>(now_ - p.t_gen);
    lat_.add(lat);
    lat_hist_.add(lat);
    for (int h = 0; h < kNumLinkTypes; ++h)
      hop_sum_[h] += static_cast<double>(p.hops[h]);
  }
  // The listener may inject (pool.acquire) — don't touch `p` after it.
  if (listener_) listener_->on_packet_delivered(p, now_);
  ctx_->pool.release(pid);
}

void Simulator::handle_eject(const Flit& f) {
  Packet& p = ctx_->pool[f.pkt()];
  ++p.flits_ejected;
  ++ejected_flits_;
  const bool in_window =
      now_ >= cfg_.warmup && now_ < cfg_.warmup + cfg_.measure;
  if (in_window) ++accepted_flits_;
  if (f.tail()) commit_tail(f.pkt());
}

void Simulator::apply_fault_steps() {
  while (next_fault_ < fault_sched_->steps.size() &&
         fault_sched_->steps[next_fault_].at <= now_)
    apply_fault_step(fault_sched_->steps[next_fault_++]);
}

void Simulator::drop_packet(PacketId pid) {
  Packet& p = ctx_->pool[pid];
  ++dropped_packets_;
  dropped_flits_ += p.len;
  // Conservation: only the not-yet-ejected flits are lost; the ejected
  // prefix was already counted into ejected_flits_.
  lost_flits_ += static_cast<std::uint64_t>(p.len) - p.flits_ejected;
  ++plane_dropped_[static_cast<std::size_t>(net_.plane_of_node(p.src))];
  ++wafer_dropped_[static_cast<std::size_t>(net_.wafer_of_node(p.src))];
  if (p.measured) ++dropped_measured_;
  // The listener may inject (pool.acquire) — don't touch `p` after it.
  if (listener_) listener_->on_packet_dropped(p, now_);
  ctx_->pool.release(pid);
}

// Applies one fault-timeline transition at a cycle boundary. The dying
// links physically stop moving flits (port-record rewrite via
// disable_channel); every packet the transition tears apart — flits in
// flight on a dying channel, buffered in a dying router, or wormholing
// across a dying link — is surgically removed from the engine (FIFOs,
// wheel, VC/arbitration state, with credits returned upstream so the flow
// control invariant survives into a later repair) and then either rescued
// (re-queued at its source with a fresh fault-aware route) or dropped
// (counted + reported to the listener). Runs serially on every engine
// path, so results stay bit-identical across shard counts.
void Simulator::apply_fault_step(const FaultStep& fs) {
  FlitFifoArena& fifos = net_.fifos();
  auto& ps = net_.port_state();
  const auto nvc = static_cast<std::uint32_t>(net_.num_vcs());
  const std::uint32_t stride = net_.port_stride();

  // --- (1) mark node deaths first, so liveness predicates below see them.
  for (const NodeId n : fs.fail_nodes) {
    net_.set_node_alive(n, false);
    const std::int32_t ti = ctx_->term_of_node[static_cast<std::size_t>(n)];
    if (ti >= 0) ctx_->terms[static_cast<std::size_t>(ti)].next_gen = ~0ULL;
  }
  std::vector<std::uint8_t> chan_dying(net_.num_channels(), 0);
  std::vector<std::uint8_t> port_dying(net_.num_out_ports(), 0);
  for (const ChanId c : fs.fail_chans) {
    chan_dying[static_cast<std::size_t>(c)] = 1;
    const Channel& ch = net_.chan(c);
    port_dying[net_.out_port_index(ch.src, ch.src_port)] = 1;
  }

  // --- (2) collect the affected packet set R.
  std::vector<std::uint8_t> affected(ctx_->pool.capacity(), 0);
  std::vector<PacketId> rlist;
  const auto add_r = [&](PacketId pid) {
    if (!affected[pid]) {
      affected[pid] = 1;
      rlist.push_back(pid);
    }
  };
  const auto dst_dead = [&](PacketId pid) {
    return !net_.node_live(ctx_->pool[pid].dst);
  };
  // 2a. in flight on a dying channel, or bound for a dead destination.
  for (const auto& slot : ctx_->wheel) {
    for (const WheelEvent& ev : slot) {
      if (!ev.flit.carries_packet()) continue;  // credits keep flowing
      const std::uint32_t p =
          (ev.vc_flat - net_.in_vc_index(ev.node, 0, 0)) / nvc;
      const ChanId c =
          net_.router(ev.node).in[static_cast<std::size_t>(p)].in_chan;
      if ((c != kInvalidChan && chan_dying[static_cast<std::size_t>(c)]) ||
          dst_dead(ev.flit.pkt()))
        add_r(ev.flit.pkt());
    }
  }
  // 2b. buffered in a dying router; owning a VC there; or torn across a
  // dying link (part of the packet already left over it).
  for (std::size_t r = 0; r < net_.num_routers(); ++r) {
    const auto rid = static_cast<NodeId>(r);
    const bool rdead = !net_.node_live(rid);
    const std::uint32_t ibase = net_.in_vc_index(rid, 0, 0);
    const std::uint32_t vend = ibase + net_.num_in_ports_of(rid) * nvc;
    const std::uint32_t pbegin = net_.out_port_index(rid, 0);
    for (std::uint32_t ix = ibase; ix < vend; ++ix) {
      const auto sz = static_cast<std::uint32_t>(fifos.size(ix));
      for (std::uint32_t k = 0; k < sz; ++k) {
        const Flit& f = fifos.at(ix, k);
        if (rdead || dst_dead(f.pkt())) add_r(f.pkt());
      }
      const std::uint32_t meta = fifos.meta(ix);
      if (Network::ivc_state_of(meta) == IvcState::Idle) continue;
      const PacketId owner = ctx_->ivc_pkt[ix];
      assert(owner != kInvalidPacket && "non-Idle VC without an owner");
      if (rdead || dst_dead(owner)) {
        add_r(owner);
        continue;
      }
      if (Network::ivc_state_of(meta) == IvcState::Active &&
          port_dying[pbegin + Network::ivc_port_of(meta)]) {
        // Untorn = the whole remaining packet is still buffered here (its
        // first flit never crossed, so the head flit is still at the
        // front); those are re-routed in place below.
        const bool untorn = !fifos.empty(ix) && fifos.front(ix).head();
        if (!untorn) add_r(owner);
      }
    }
  }
  // 2c. still queued at a now-dead source, or bound for a dead node.
  for (const TerminalState& t : ctx_->terms) {
    for (std::size_t q = 0; q < t.queue.size(); ++q) {
      const PacketId pid = t.queue.at(q);
      if (!net_.node_live(t.node) || dst_dead(pid)) add_r(pid);
    }
  }

  // --- (3) removal sweep + VC/arbitration teardown (deterministic order:
  // wheel slots ascending, then routers/ports/VCs ascending).
  for (auto& slot : ctx_->wheel) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < slot.size(); ++i) {
      const WheelEvent& ev = slot[i];
      if (!ev.flit.carries_packet() || !affected[ev.flit.pkt()]) {
        slot[w++] = slot[i];
        continue;
      }
      // Return the in-flight flit's credit to the upstream output VC so
      // the channel regains full capacity on repair.
      const std::uint32_t p =
          (ev.vc_flat - net_.in_vc_index(ev.node, 0, 0)) / nvc;
      const ChanId c =
          net_.router(ev.node).in[static_cast<std::size_t>(p)].in_chan;
      const Channel& ch = net_.chan(c);
      const std::uint32_t up = net_.out_port_index(ch.src, ch.src_port);
      std::uint32_t* rec = net_.port_rec(up);
      Network::ovc16(rec)[ev.vc_flat - rec[Network::kDstVcBase]] += 2;
      if ((rec[0] & 0xff) != 0) {
        set_bit(ctx_->port_pending, up);
        mark_work(ch.src);
        activate_router(ch.src);
      }
    }
    slot.resize(w);
  }

  const auto unlink_waiter = [&](std::uint32_t ovcflat, std::uint32_t ix) {
    std::uint32_t cur = ctx_->ovc_waiters[ovcflat];
    if (cur == ix) {
      ctx_->ovc_waiters[ovcflat] = ctx_->ivc_wait_next[ix];
      return;
    }
    while (cur != kNoWaiter) {
      const std::uint32_t nx = ctx_->ivc_wait_next[cur];
      if (nx == ix) {
        ctx_->ivc_wait_next[cur] = ctx_->ivc_wait_next[ix];
        return;
      }
      cur = nx;
    }
  };
  const auto remove_requester = [&](std::uint32_t* rec, std::uint32_t p,
                                    std::uint32_t v) {
    std::uint16_t* reqs = Network::ovc16(rec) + nvc;
    const std::uint32_t nreq = rec[0] & 0xff;
    std::uint32_t rr = (rec[0] >> 8) & 0xff;
    const auto enc = static_cast<std::uint16_t>((p << 8) | v);
    std::uint32_t k = 0;
    while (k < nreq && reqs[k] != enc) ++k;
    assert(k < nreq && "Active VC missing from its port's requesters");
    for (std::uint32_t j = k; j + 1 < nreq; ++j) reqs[j] = reqs[j + 1];
    const std::uint32_t left = nreq - 1;
    if (left == 0) {
      rec[0] &= 0xffff0000u;  // count/rr = 0, token bucket untouched
      return;
    }
    if (rr > k) --rr;
    if (rr >= left) rr = 0;
    rec[0] = (rec[0] & 0xffff0000u) | left | (rr << 8);
  };

  std::vector<Flit> keep;
  for (std::size_t r = 0; r < net_.num_routers(); ++r) {
    const auto rid = static_cast<NodeId>(r);
    const std::uint32_t ibase = net_.in_vc_index(rid, 0, 0);
    const std::uint32_t nin = net_.num_in_ports_of(rid);
    const std::uint32_t pbegin = net_.out_port_index(rid, 0);
    for (std::uint32_t p = 0; p < nin; ++p) {
      const Network::CreditReturn cr = net_.credit_return_by_port()
          [net_.in_port_index(rid, static_cast<PortIx>(p))];
      for (std::uint32_t v = 0; v < nvc; ++v) {
        const std::uint32_t ix = ibase + p * nvc + v;
        // Remove this VC's flits of affected packets, returning their
        // buffer credits upstream (none for injection ports).
        const auto sz = static_cast<std::uint32_t>(fifos.size(ix));
        bool removed_any = false;
        keep.clear();
        for (std::uint32_t k = 0; k < sz; ++k) {
          const Flit f = fifos.at(ix, k);
          if (!affected[f.pkt()]) {
            keep.push_back(f);
            continue;
          }
          removed_any = true;
          ctx_->ract[r] -= 4;  // one fewer buffered flit
          if (cr.src != kInvalidNode) {
            const std::uint32_t up = cr.credit_port();
            std::uint32_t* urec =
                &ps[static_cast<std::size_t>(up) * stride];
            Network::ovc16(urec)[v] += 2;
            if ((urec[0] & 0xff) != 0) {
              set_bit(ctx_->port_pending, up);
              mark_work(cr.src);
              activate_router(cr.src);
            }
          }
        }
        if (removed_any) {
          fifos.clear_ring(ix);
          for (const Flit& f : keep) fifos.push(ix, f);
        }
        const std::uint32_t meta = fifos.meta(ix);
        const IvcState st = Network::ivc_state_of(meta);
        if (st == IvcState::Idle) {
          // Only the pending bit can be stale: the owning head flit of a
          // waiting VC may just have been removed.
          if (removed_any && fifos.empty(ix))
            clear_bit(ctx_->ivc_pending, ix);
          continue;
        }
        const PacketId owner = ctx_->ivc_pkt[ix];
        const std::uint32_t pflat = pbegin + Network::ivc_port_of(meta);
        const std::uint32_t ovc = Network::ivc_vc_of(meta);
        const bool dying_port = port_dying[pflat] != 0;
        if (!affected[owner] && !dying_port) continue;
        // Tear down this VC's claim: it is either owned by a destroyed
        // packet, or (untorn case) must re-route away from a dying port.
        std::uint32_t* rec = net_.port_rec(pflat);
        if (st == IvcState::Active) {
          Network::ovc16(rec)[ovc] &= 0xfffe;  // release the output VC
          if (!dying_port) {
            remove_requester(rec, p, v);
            // Wake parked waiters so one of them can claim the freed VC.
            std::uint32_t wix = ctx_->ovc_waiters[pflat * nvc + ovc];
            if (wix != kNoWaiter) {
              ctx_->ovc_waiters[pflat * nvc + ovc] = kNoWaiter;
              while (wix != kNoWaiter) {
                set_bit(ctx_->ivc_pending, wix);
                const std::uint32_t nx = ctx_->ivc_wait_next[wix];
                ctx_->ivc_wait_next[wix] = kNoWaiter;
                wix = nx;
              }
              mark_work(rid);
              activate_router(rid);
            }
            if ((rec[0] & 0xff) == 0)
              clear_bit(ctx_->port_pending, pflat);
          }
        } else {  // Routed: parked on a waiter chain, or pending re-scan
          if (!dying_port) unlink_waiter(pflat * nvc + ovc, ix);
          ctx_->ivc_wait_next[ix] = kNoWaiter;
        }
        fifos.set_meta(
            ix, Network::pack_ivc(kInvalidPort, kInvalidVc, IvcState::Idle));
        ctx_->ivc_pkt[ix] = kInvalidPacket;
        if (!fifos.empty(ix)) {
          set_bit(ctx_->ivc_pending, ix);  // re-route survivors next cycle
          mark_work(rid);
          activate_router(rid);
        } else {
          clear_bit(ctx_->ivc_pending, ix);
        }
      }
    }
  }
  // Dying output ports: every requester/waiter pointing at them was reset
  // above, so zero the arbitration state and unpark them.
  for (const ChanId c : fs.fail_chans) {
    const Channel& ch = net_.chan(c);
    const std::uint32_t pflat = net_.out_port_index(ch.src, ch.src_port);
    std::uint32_t* rec = net_.port_rec(pflat);
    rec[0] &= 0xffff0000u;  // count/rr = 0 (disable_channel clears tokens)
    for (std::uint32_t v = 0; v < nvc; ++v) {
      Network::ovc16(rec)[v] &= 0xfffe;
      ctx_->ovc_waiters[pflat * nvc + v] = kNoWaiter;
    }
    clear_bit(ctx_->port_pending, pflat);
  }
  for (const NodeId n : fs.fail_nodes)
    ctx_->ract[static_cast<std::size_t>(n)] &= 1u;  // keep only the list flag

  // --- (4) kill the links (port records stop moving flits).
  for (const ChanId c : fs.fail_chans) net_.disable_channel(c);

  // --- (5) rescue or drop the affected packets, in PacketId order.
  std::sort(rlist.begin(), rlist.end());
  const bool rescue = fault_sched_->rescue;
  for (const PacketId pid : rlist) {
    Packet& pk = ctx_->pool[pid];
    const std::int32_t ti =
        ctx_->term_of_node[static_cast<std::size_t>(pk.src)];
    assert(ti >= 0 && "packet source is not a terminal");
    TerminalState& t = ctx_->terms[static_cast<std::size_t>(ti)];
    std::ptrdiff_t pos = -1;
    for (std::size_t q = 0; q < t.queue.size(); ++q) {
      if (t.queue.at(q) == pid) {
        pos = static_cast<std::ptrdiff_t>(q);
        break;
      }
    }
    const bool can_rescue =
        rescue && net_.node_live(pk.src) && net_.node_live(pk.dst) &&
        (pos >= 0 ||
         static_cast<int>(t.queue.size()) < cfg_.max_src_queue);
    if (can_rescue) {
      // Source retransmission: reset the routing state, re-plan against
      // the updated mask, and (re)start injection from flit 0. t_gen is
      // kept, so the rescue delay shows up in the packet's latency.
      ++rescued_packets_;
      pk.target = kInvalidNode;
      pk.exit_chan = kInvalidChan;
      pk.mid_wgroup = -1;
      pk.phase = pk.next_phase = RoutePhase::SrcCGroup;
      pk.vc_class = pk.next_class = 0;
      // Conservation: the retransmission re-sends the already-ejected
      // prefix, so those flits are owed to the network a second time.
      generated_flits_ += pk.flits_ejected;
      pk.flits_ejected = 0;
      net_.routing()->init_packet(net_, pk, rng_);
      if (pos == 0) {
        t.pushed = 0;
      } else if (pos < 0) {
        t.queue.push_back(pid);
        if (t.queue.size() == 1) inj_mark(static_cast<std::size_t>(ti));
      }
    } else {
      if (pos >= 0) {
        const std::size_t qsz = t.queue.size();
        for (std::size_t q = 0; q < qsz; ++q) {
          const PacketId qp = t.queue.front();
          t.queue.pop_front();
          if (qp != pid) t.queue.push_back(qp);
        }
        if (pos == 0) t.pushed = 0;
        if (t.queue.empty()) inj_unmark(static_cast<std::size_t>(ti));
      }
      drop_packet(pid);
    }
  }

  // --- (6) repairs: restore token width, revive terminals.
  for (const NodeId n : fs.repair_nodes) {
    net_.set_node_alive(n, true);
    const std::int32_t ti = ctx_->term_of_node[static_cast<std::size_t>(n)];
    if (ti >= 0) {
      TerminalState& t = ctx_->terms[static_cast<std::size_t>(ti)];
      t.pushed = 0;
      t.inj_vc = 0;
      // Generation re-arms only on logical (plane-0) terminals; a revived
      // plane>0 twin just resumes forwarding remapped packets. The RNG is
      // not drawn for twins, matching the init()-time convention.
      if (per_node_pkt_rate_ > 0.0 && net_.plane_of_node(n) == 0) {
        const auto skip = rng_.geometric_skip(per_node_pkt_rate_);
        t.next_gen = advance_next_gen(now_, skip);
        if (cfg_.idle_skip && t.next_gen != ~0ULL)
          gen_heap_push(t.next_gen, static_cast<std::size_t>(ti));
      } else {
        t.next_gen = ~0ULL;
      }
    }
  }
  for (const ChanId c : fs.repair_chans) net_.enable_channel(c, now_);

  net_.bump_fault_epoch();
}

template <bool Sharded>
void Simulator::process_router_impl(NodeId rid, ShardScratch* ss) {
  (void)ss;  // unused by the serial instantiation
  // True when this call leaves any pending bit set for this router (so the
  // work flag must stay armed for next cycle).
  bool leftover = false;
  const auto nvc = static_cast<std::uint32_t>(net_.num_vcs());
  FlitFifoArena& fifos = net_.fifos();
  const std::uint32_t ibase = net_.in_vc_index(rid, 0, 0);
  const std::uint32_t pbegin = net_.out_port_index(rid, 0);

  // --- RC + VA over pending input VCs (non-empty, not yet Active) ---
  // The bitmask scan visits VCs in ascending (port, vc) order — exactly the
  // order of a full nested scan — so VA arbitration is unchanged.
  const std::uint32_t vend = ibase + net_.num_in_ports_of(rid) * nvc;
  if (vend > ibase) {
    for (std::uint32_t w = ibase >> 6; w <= (vend - 1) >> 6; ++w) {
      std::uint64_t bits =
          masked_word<Sharded>(ctx_->ivc_pending, w, ibase, vend);
      while (bits) {
        const std::uint32_t ix =
            (w << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        assert(!fifos.empty(ix));
        const std::uint32_t pi = (ix - ibase) / nvc;
        const std::uint32_t vi = (ix - ibase) % nvc;
        std::uint32_t meta = fifos.meta(ix);
        if (Network::ivc_state_of(meta) == IvcState::Idle) {
          const Flit& f = fifos.front(ix);
          assert(f.head() && "non-head flit at idle VC");
          Packet& pkt = ctx_->pool[f.pkt()];
          const RouteDecision d = net_.routing()->route(
              net_, rid, static_cast<PortIx>(pi), pkt);
          assert(d.out_port >= 0 &&
                 d.out_port < static_cast<PortIx>(net_.num_out_ports_of(rid)));
          assert(d.out_vc >= 0 && d.out_vc < static_cast<VcIx>(nvc));
          meta = Network::pack_ivc(d.out_port, d.out_vc, IvcState::Routed);
          fifos.set_meta(ix, meta);
          ctx_->ivc_pkt[ix] = f.pkt();  // VC ownership, for the fault sweep
        }
        // Routed: try VA (claim the chosen output VC).
        const std::uint32_t pflat = pbegin + Network::ivc_port_of(meta);
        std::uint32_t* rec = net_.port_rec(pflat);
        std::uint16_t& ow = Network::ovc16(rec)[Network::ivc_vc_of(meta)];
        if (!(ow & 1)) {
          ow |= 1;  // busy
          // Always wake the port: a parked (stalled) port may be grantable
          // through this new requester even while the others are blocked.
          set_bit<Sharded>(ctx_->port_pending, pflat);
          std::uint16_t* reqs = Network::ovc16(rec) + nvc;
          reqs[rec[0] & 0xff] = static_cast<std::uint16_t>((pi << 8) | vi);
          ++rec[0];  // ++count (u8, max nvc requesters — never carries)
          fifos.set_meta(ix, (meta & ~0xffu) |
                                 static_cast<std::uint32_t>(IvcState::Active));
          clear_bit<Sharded>(ctx_->ivc_pending, ix);
        } else {
          // Busy: park on the output VC's waiter chain instead of
          // re-polling every cycle. The tail flit that frees the VC
          // re-arms the pending bit, and the next cycle's ascending scan
          // retries — the first cycle a poll loop could have succeeded.
          const std::uint32_t ovcflat =
              pflat * nvc + Network::ivc_vc_of(meta);
          ctx_->ivc_wait_next[ix] = ctx_->ovc_waiters[ovcflat];
          ctx_->ovc_waiters[ovcflat] = ix;
          clear_bit<Sharded>(ctx_->ivc_pending, ix);
        }
      }
    }
  }

  // --- SA + ST over output ports with requesters ---
  const std::uint32_t pend = pbegin + net_.num_out_ports_of(rid);
  for (std::uint32_t w = pbegin >> 6;
       pend > pbegin && w <= (pend - 1) >> 6; ++w) {
    std::uint64_t pbits =
        masked_word<Sharded>(ctx_->port_pending, w, pbegin, pend);
    while (pbits) {
      const std::uint32_t pflat =
          (w << 6) + static_cast<std::uint32_t>(std::countr_zero(pbits));
      pbits &= pbits - 1;
      bool port_left = true;  // bit still set when the grant loop ends?
      std::uint32_t* rec = net_.port_rec(pflat);
      std::uint16_t* ov = Network::ovc16(rec);
      std::uint16_t* reqs = ov + nvc;
      assert((rec[0] & 0xff) > 0);
      const std::uint32_t link_meta = rec[Network::kLinkMeta];
      const auto dst = static_cast<NodeId>(rec[Network::kDstNode]);
      const bool is_eject = (dst == kInvalidNode);
      int budget = 1;  // ejection: one flit per cycle per node
      if (!is_eject) {
        // Token-bucket refresh, on the bucket half of word 0.
        const std::uint32_t wnum = (link_meta >> 16) & 0xff;
        const std::uint32_t wden = link_meta >> 24;
        const auto now32 = static_cast<std::uint32_t>(now_);
        const std::uint32_t elapsed = now32 - rec[Network::kTokenCycle];
        if (elapsed > 0) {
          const std::uint64_t add =
              static_cast<std::uint64_t>(elapsed) * wnum + (rec[0] >> 16);
          const std::uint32_t cap = wnum + wden;
          rec[0] = (rec[0] & 0xffffu) |
                   (static_cast<std::uint32_t>(add > cap ? cap : add) << 16);
          rec[Network::kTokenCycle] = now32;
        }
        budget = static_cast<int>((rec[0] >> 16) / (link_meta >> 24));
      }
      for (int grant = 0; grant < budget; ++grant) {
        const std::uint32_t nreq = rec[0] & 0xff;
        const std::uint32_t rr = (rec[0] >> 8) & 0xff;
        std::uint32_t chosen = nreq;
        std::uint32_t ix = 0;
        std::uint32_t out_vc = 0;
        for (std::uint32_t k = 0; k < nreq; ++k) {
          std::uint32_t idx = rr + k;
          if (idx >= nreq) idx -= nreq;  // rr < nreq, so one wrap suffices
          const std::uint16_t enc = reqs[idx];
          const std::uint32_t cand =
              ibase + static_cast<std::uint32_t>(enc >> 8) * nvc +
              static_cast<std::uint32_t>(enc & 0xff);
          if (fifos.empty(cand)) continue;
          const std::uint32_t cand_vc = Network::ivc_vc_of(fifos.meta(cand));
          if (!is_eject && (ov[cand_vc] >> 1) == 0) continue;
          chosen = idx;
          ix = cand;
          out_vc = cand_vc;
          // The grant below needs this requester's credit-return entry.
          __builtin_prefetch(
              &net_.credit_return_by_port()[net_.in_port_index(rid, 0) +
                                            (enc >> 8)]);
          break;
        }
        if (chosen == nreq) {
          // Fruitless scan: nothing observable happened, so the port can be
          // parked until an event (credit return, FIFO refill, new
          // requester) makes a grant possible again. Sub-flit/cycle
          // channels (width < 1) stay live: time alone refills their
          // token bucket.
          if (is_eject || ((link_meta >> 16) & 0xff) >= (link_meta >> 24)) {
            clear_bit<Sharded>(ctx_->port_pending, pflat);
            port_left = false;
          }
          break;
        }
        const std::uint16_t enc = reqs[chosen];
        const std::uint32_t pi = enc >> 8;
        const std::uint32_t vi = enc & 0xff;

        const Flit f = fifos.pop(ix);
        ctx_->ract[static_cast<std::size_t>(rid)] -= 4;  // --buffered
        const Network::CreditReturn cr =
            net_.credit_return_by_port()[net_.in_port_index(rid, 0) + pi];
        if (cr.src != kInvalidNode) {
          // A default Flit (no packet) marks a credit event; vc_flat is
          // the upstream port's u16 credit lane (see kPortLaneBits).
          const auto slot =
              static_cast<std::uint32_t>((now_ + cr.latency()) & wheel_mask_);
          const WheelEvent ev{
              (cr.credit_port() << Network::kPortLaneBits) |
                  (Network::kOvcLane0 + vi),
              cr.src, Flit{}};
          if constexpr (Sharded)
            ss->events.push_back(PendingEvent{slot, ev});
          else
            ctx_->wheel[slot].push_back(ev);
        }
        if (is_eject) {
          if constexpr (Sharded) {
            // Packet-local and order-insensitive parts happen here; the
            // order-sensitive rest (fp stats, listener, pool release) is
            // deferred so the commit pass replays it in snapshot order.
            Packet& p = ctx_->pool[f.pkt()];
            ++p.flits_ejected;
            ++ss->ejected_flits;
            if (now_ >= cfg_.warmup && now_ < cfg_.warmup + cfg_.measure)
              ++ss->accepted_flits;
            if (f.tail()) ss->tails.push_back(f.pkt());
          } else {
            handle_eject(f);
          }
        } else {
          if constexpr (Sharded)
            ++ss->flit_hops;
          else
            ++flit_hops_;
          ov[out_vc] -= 2;                     // --credits
          rec[0] -= (link_meta >> 24) << 16;   // consume width_den tokens
          if (f.head()) {
            Packet& pkt = ctx_->pool[f.pkt()];
            ++pkt.hops[static_cast<int>((link_meta >> 8) & 0xff)];
          }
          const auto slot = static_cast<std::uint32_t>(
              (now_ + (link_meta & 0xff)) & wheel_mask_);
          const WheelEvent ev{rec[Network::kDstVcBase] + out_vc, dst, f};
          if constexpr (Sharded)
            ss->events.push_back(PendingEvent{slot, ev});
          else
            ctx_->wheel[slot].push_back(ev);
        }
        if (f.tail()) {
          ov[out_vc] &= 0xfffe;  // release the output VC
          // Wake every VC parked on this output VC (see the VA else-branch).
          std::uint32_t wix = ctx_->ovc_waiters[pflat * nvc + out_vc];
          if (wix != kNoWaiter) {
            ctx_->ovc_waiters[pflat * nvc + out_vc] = kNoWaiter;
            leftover = true;
            do {
              set_bit<Sharded>(ctx_->ivc_pending, wix);
              const std::uint32_t nx = ctx_->ivc_wait_next[wix];
              ctx_->ivc_wait_next[wix] = kNoWaiter;
              wix = nx;
            } while (wix != kNoWaiter);
          }
          fifos.set_meta(
              ix, Network::pack_ivc(kInvalidPort, kInvalidVc, IvcState::Idle));
          ctx_->ivc_pkt[ix] = kInvalidPacket;
          if (!fifos.empty(ix)) {
            set_bit<Sharded>(ctx_->ivc_pending, ix);  // next head is waiting
            __builtin_prefetch(&ctx_->pool[fifos.front(ix).pkt()]);  // RC
            leftover = true;
          }
          const std::uint32_t left = nreq - 1;
          for (std::uint32_t k = chosen; k < left; ++k)
            reqs[k] = reqs[k + 1];
          if (left > 0) {
            rec[0] = (rec[0] & 0xffff0000u) | left |
                     ((chosen == left ? 0 : chosen) << 8);
          } else {
            rec[0] &= 0xffff0000u;
            clear_bit<Sharded>(ctx_->port_pending, pflat);
            port_left = false;
            break;  // no requesters left for the remaining budget
          }
        } else {
          const std::uint32_t nrr = chosen + 1 == nreq ? 0 : chosen + 1;
          rec[0] = (rec[0] & 0xffff0000u) | nreq | (nrr << 8);
        }
      }
      if (port_left && (rec[0] & 0xff) != 0) leftover = true;
    }
  }
  if (!leftover) ctx_->ract[static_cast<std::size_t>(rid)] &= ~2u;
}

void Simulator::prefetch_snapshot(const std::vector<NodeId>& snap,
                                  std::size_t i) {
  const std::size_t n = snap.size();
  // Far stage: the per-router offset entries every address computation
  // below (and the processing itself) goes through.
  if (i + 8 < n) {
    const NodeId r8 = snap[i + 8];
    __builtin_prefetch(&ctx_->ract[static_cast<std::size_t>(r8)]);
    __builtin_prefetch(net_.in_port_base_addr(r8));
    __builtin_prefetch(net_.out_port_base_addr(r8));
  }
  // Mid stage: the router's pending-bitmask words, so the near stage can
  // *read* them without stalling.
  if (i + 5 < n) {
    const NodeId r5 = snap[i + 5];
    __builtin_prefetch(&ctx_->ivc_pending[net_.in_vc_index(r5, 0, 0) >> 6]);
    __builtin_prefetch(&ctx_->port_pending[net_.out_port_index(r5, 0) >> 6]);
  }
  // Near stage: the pending bitmasks predict exactly which FIFO control
  // words (RC/VA scan) and output-port records (SA/ST scan) the router
  // will touch — issue those prefetches now, in straight-line batches, so
  // the walk's dependent DRAM misses resolve in parallel instead of
  // serially. The words are stable this far ahead: during the router walk
  // every cross-router effect travels through the timing wheel, so only a
  // router's OWN processing mutates its bits. Relaxed atomic loads because
  // a neighbouring *shard* may still be flipping its bits of a shared
  // boundary word; the values only steer prefetches, so a stale view is
  // harmless.
  if (!deep_prefetch_) return;
  if (i + 2 < n && (ctx_->ract[static_cast<std::size_t>(snap[i + 2])] & 2)) {
    const NodeId r2 = snap[i + 2];
    const FlitFifoArena& fifos = net_.fifos();
    const auto nvc = static_cast<std::uint32_t>(net_.num_vcs());
    const auto word = [](const std::vector<std::uint64_t>& v,
                         std::uint32_t w) {
      return std::atomic_ref<std::uint64_t>(
                 const_cast<std::uint64_t&>(v[w]))
          .load(std::memory_order_relaxed);
    };
    const std::uint32_t ib = net_.in_vc_index(r2, 0, 0);
    const std::uint32_t vend = ib + net_.num_in_ports_of(r2) * nvc;
    int left = 16;  // cap per stage: don't flood the load/fill buffers
    for (std::uint32_t w = ib >> 6; vend > ib && w <= (vend - 1) >> 6; ++w) {
      std::uint64_t bits = word(ctx_->ivc_pending, w);
      if (w == (ib >> 6)) bits &= ~0ULL << (ib & 63);
      if (w == ((vend - 1) >> 6)) bits &= ~0ULL >> (63 - ((vend - 1) & 63));
      while (bits && left-- > 0) {
        const std::uint32_t ix =
            (w << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        __builtin_prefetch(fifos.word_addr(ix));
      }
    }
    const std::uint32_t pb = net_.out_port_index(r2, 0);
    const std::uint32_t pend = pb + net_.num_out_ports_of(r2);
    left = 16;
    for (std::uint32_t w = pb >> 6; pend > pb && w <= (pend - 1) >> 6; ++w) {
      std::uint64_t bits = word(ctx_->port_pending, w);
      if (w == (pb >> 6)) bits &= ~0ULL << (pb & 63);
      if (w == ((pend - 1) >> 6)) bits &= ~0ULL >> (63 - ((pend - 1) & 63));
      while (bits && left-- > 0) {
        const std::uint32_t pflat =
            (w << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        __builtin_prefetch(net_.port_rec(pflat));
      }
    }
  }
  // Nearest stage: SA candidates. The previous entry's port-record
  // prefetches have usually landed by now, so the requester lists are
  // cheap to *read* — prefetch each candidate's FIFO control word, the
  // grant loop's remaining serial misses. Port records are per-router
  // (never shard-shared), so plain reads are race-free here.
  if (i + 1 < n && (ctx_->ract[static_cast<std::size_t>(snap[i + 1])] & 2)) {
    const NodeId r1 = snap[i + 1];
    const FlitFifoArena& fifos = net_.fifos();
    const auto nvc = static_cast<std::uint32_t>(net_.num_vcs());
    const std::uint32_t ibase = net_.in_vc_index(r1, 0, 0);
    const std::uint32_t pb = net_.out_port_index(r1, 0);
    const std::uint32_t pend = pb + net_.num_out_ports_of(r1);
    int left = 12;
    for (std::uint32_t w = pb >> 6; pend > pb && w <= (pend - 1) >> 6; ++w) {
      std::uint64_t bits =
          std::atomic_ref<std::uint64_t>(
              const_cast<std::uint64_t&>(ctx_->port_pending[w]))
              .load(std::memory_order_relaxed);
      if (w == (pb >> 6)) bits &= ~0ULL << (pb & 63);
      if (w == ((pend - 1) >> 6)) bits &= ~0ULL >> (63 - ((pend - 1) & 63));
      while (bits && left > 0) {
        const std::uint32_t pflat =
            (w << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint32_t* rec = net_.port_rec(pflat);
        const std::uint16_t* reqs = Network::ovc16(rec) + nvc;
        const std::uint32_t nreq = rec[0] & 0xff;
        for (std::uint32_t k = 0; k < nreq && left > 0; ++k, --left)
          __builtin_prefetch(fifos.word_addr(
              ibase + (static_cast<std::uint32_t>(reqs[k]) >> 8) * nvc +
              (reqs[k] & 0xffu)));
      }
    }
  }
}

void Simulator::run_shard_phase(int k) {
  ShardScratch& sc = ctx_->shard_scratch[static_cast<std::size_t>(k)];
  const auto& snap = sc.snap;
  const std::size_t n = snap.size();
  for (std::size_t i = 0; i < n; ++i) {
    prefetch_snapshot(snap, i);
    const NodeId rid = snap[i];
    if (ctx_->ract[static_cast<std::size_t>(rid)] & 2) {
      const std::size_t ev0 = sc.events.size();
      const std::size_t tl0 = sc.tails.size();
      process_router_impl<true>(rid, &sc);
      sc.runs.push_back(
          ShardRun{rid, static_cast<std::uint32_t>(sc.events.size() - ev0),
                   static_cast<std::uint32_t>(sc.tails.size() - tl0)});
    }
  }
}

// One sharded cycle. Serial and sharded execution differ only in *where*
// the router phase's effects are applied, never in what they are:
//
//   1. deliver + generate run serially, exactly as in step() — so the RNG
//      stream, injection decisions, and (adaptive) injection-time
//      occupancy reads observe the identical engine state.
//   2. The snapshot is split by the chip-aligned shard map and every shard
//      runs the router pipeline over its slice concurrently. Per-router
//      work is provably shard-local (routing reads only immutable topology
//      + the packet + the router's own SoA slices); the only cross-shard
//      effects — wheel pushes, tail deliveries — are buffered per shard.
//   3. The commit pass walks the *global* snapshot in its original order
//      and drains each router's buffered run, which reconstructs the
//      serial engine's exact wheel-slot event order, ejection-stat
//      accumulation order (fp sums are order-sensitive), listener-callback
//      order, and packet-pool free-list order. Keep-alive re-activation
//      happens here too, in the same per-router position as in step().
//
// Hence fixed-seed results are bit-identical for every shard count.
void Simulator::step_sharded() {
  deliver_channels();
  generate_and_inject();

  ctx_->scratch.clear();
  ctx_->scratch.swap(ctx_->active);
  for (auto& sc : ctx_->shard_scratch) {
    sc.snap.clear();
    sc.events.clear();
    sc.tails.clear();
    sc.runs.clear();
    sc.flit_hops = 0;
    sc.accepted_flits = 0;
    sc.ejected_flits = 0;
    sc.run_cur = sc.ev_cur = sc.tail_cur = 0;
  }
  for (NodeId rid : ctx_->scratch) {
    ctx_->ract[static_cast<std::size_t>(rid)] &= ~1u;
    ctx_->shard_scratch[ctx_->shard_of[static_cast<std::size_t>(rid)]]
        .snap.push_back(rid);
  }

  if (!ctx_->scratch.empty()) team_->run_phase();

  // Integer tallies first, so a PacketListener fired from commit_tail()
  // below observes the cycle's full counts (the documented sharded-engine
  // observability; the sums are order-insensitive).
  for (const auto& sc : ctx_->shard_scratch) {
    flit_hops_ += sc.flit_hops;
    accepted_flits_ += sc.accepted_flits;
    ejected_flits_ += sc.ejected_flits;
  }
  // Cheap-commit fast paths. The full replay below exists only to
  // interleave the shards' buffered effects back into global snapshot
  // order; when at most one shard buffered anything there is nothing to
  // interleave, so drain in one merged pass and keep only the keep-alive
  // re-activation walk. Both paths are order-equivalent to the replay:
  // commit_tail() touches stats / the listener / the packet pool but never
  // `ract` or the active list, and the re-activation walk touches only
  // those — so "drain everything, then walk" commutes with the
  // interleaved walk as long as the per-tail and per-event order is
  // preserved (it is: a single shard's buffer order IS the global order).
  std::size_t traffic_shards = 0;
  ShardScratch* only = nullptr;
  for (auto& sc : ctx_->shard_scratch)
    if (!sc.events.empty() || !sc.tails.empty()) {
      ++traffic_shards;
      only = &sc;
    }
  if (traffic_shards <= 1) {
    if (only != nullptr) {
      for (const PendingEvent& pe : only->events)
        ctx_->wheel[pe.slot].push_back(pe.ev);
      for (PacketId pid : only->tails) commit_tail(pid);
    }
    for (NodeId rid : ctx_->scratch)
      if (ctx_->ract[static_cast<std::size_t>(rid)] > 3) activate_router(rid);
    ++now_;
    return;
  }
  for (NodeId rid : ctx_->scratch) {
    ShardScratch& sc =
        ctx_->shard_scratch[ctx_->shard_of[static_cast<std::size_t>(rid)]];
    if (sc.run_cur < sc.runs.size() && sc.runs[sc.run_cur].rid == rid) {
      const ShardRun& run = sc.runs[sc.run_cur++];
      for (std::uint32_t e = 0; e < run.num_events; ++e) {
        const PendingEvent& pe = sc.events[sc.ev_cur++];
        ctx_->wheel[pe.slot].push_back(pe.ev);
      }
      for (std::uint32_t t = 0; t < run.num_tails; ++t)
        commit_tail(sc.tails[sc.tail_cur++]);
    }
    if (ctx_->ract[static_cast<std::size_t>(rid)] > 3) activate_router(rid);
  }
  ++now_;
}

void Simulator::step() {
  // Fault timeline transitions happen at the cycle boundary, before any
  // engine phase — and always serially, even on the sharded path, so every
  // shard count observes the identical post-event state.
  if (fault_sched_ != nullptr && next_fault_ < fault_sched_->steps.size() &&
      fault_sched_->steps[next_fault_].at <= now_)
    apply_fault_steps();
  if (shards_ > 1) {
    step_sharded();
    return;
  }
  deliver_channels();
  generate_and_inject();

  // Snapshot: routers activated during this pass run next cycle. The two
  // lists ping-pong so neither ever re-allocates in steady state.
  ctx_->scratch.clear();
  ctx_->scratch.swap(ctx_->active);
  for (NodeId rid : ctx_->scratch)
    ctx_->ract[static_cast<std::size_t>(rid)] &= ~1u;
  // The active list gives exact lookahead, so the per-router state lines
  // (scattered in L3) are prefetched in two stages (prefetch_snapshot).
  const auto& snap = ctx_->scratch;
  const std::size_t nsnap = snap.size();
  for (std::size_t i = 0; i < nsnap; ++i) {
    prefetch_snapshot(snap, i);
    const NodeId rid = snap[i];
    // Process only routers with pending RC/VA or SA work (the work flag is
    // a superset of the pending bits, so a skipped call would have been a
    // pure no-op; the active list itself is maintained exactly as before).
    if (ctx_->ract[static_cast<std::size_t>(rid)] & 2) process_router(rid);
    // Keep the router live while any input VC holds flits.
    if (ctx_->ract[static_cast<std::size_t>(rid)] > 3) activate_router(rid);
  }
  ++now_;
}

SimResult Simulator::run() {
  const Cycle horizon = cfg_.warmup + cfg_.measure;
  // Skipped cycles are provably no-ops (see try_skip_idle), so a skipping
  // run reaches the horizon with bit-identical state and the same now_.
  while (now_ < horizon) {
    if (cfg_.idle_skip) {
      try_skip_idle(horizon);
      if (now_ >= horizon) break;
    }
    step();
  }
  // Drain: let measured packets land (background traffic keeps flowing).
  // Fault-dropped measured packets are accounted as terminal, so a lossy
  // timeline never spins the drain loop waiting for packets that no
  // longer exist.
  Cycle drained_cycles = 0;
  while (drained_cycles < cfg_.drain &&
         delivered_measured_ + dropped_measured_ < generated_measured_) {
    if (cfg_.idle_skip) {
      // Idle stretches count against the drain budget exactly as if they
      // had been stepped through one cycle at a time.
      const Cycle before = now_;
      try_skip_idle(before + (cfg_.drain - drained_cycles));
      drained_cycles += now_ - before;
      if (drained_cycles >= cfg_.drain) break;
    }
    step();
    ++drained_cycles;
  }

  SimResult res;
  res.offered = cfg_.inj_rate_per_chip;
  res.accepted = static_cast<double>(accepted_flits_) /
                 static_cast<double>(cfg_.measure) /
                 static_cast<double>(net_.num_chips());
  res.avg_latency = lat_.mean();
  res.p50_latency = lat_hist_.quantile(0.5);
  res.p99_latency = lat_hist_.quantile(0.99);
  res.min_latency = lat_.count() ? lat_.min() : 0.0;
  res.max_latency = lat_.count() ? lat_.max() : 0.0;
  res.generated_measured = generated_measured_;
  res.delivered_measured = delivered_measured_;
  res.delivered_total = delivered_total_;
  res.suppressed = suppressed_;
  res.drained =
      delivered_measured_ + dropped_measured_ == generated_measured_;
  res.cycles_run = now_;
  res.flit_hops = flit_hops_;
  res.dropped_packets = dropped_packets_;
  res.dropped_flits = dropped_flits_;
  res.rescued_packets = rescued_packets_;
  // Conservation ledger + per-plane split. Live packets are found by
  // scanning the pool (free-list ids marked, the rest are in flight).
  res.generated_packets = generated_packets_;
  res.generated_flits = generated_flits_;
  res.ejected_flits = ejected_flits_;
  res.lost_flits = lost_flits_;
  res.plane_generated = plane_generated_;
  res.plane_delivered = plane_delivered_;
  res.plane_dropped = plane_dropped_;
  res.plane_inflight.assign(static_cast<std::size_t>(num_planes_), 0);
  res.wafer_generated = wafer_generated_;
  res.wafer_delivered = wafer_delivered_;
  res.wafer_dropped = wafer_dropped_;
  res.wafer_inflight.assign(static_cast<std::size_t>(num_wafers_), 0);
  {
    const PacketPool& pool = ctx_->pool;
    std::vector<char> is_free(pool.capacity(), 0);
    for (const PacketId id : pool.free_list())
      is_free[static_cast<std::size_t>(id)] = 1;
    for (std::size_t i = 0; i < pool.capacity(); ++i) {
      if (is_free[i]) continue;
      const Packet& p = pool[static_cast<PacketId>(i)];
      ++res.inflight_packets;
      res.inflight_flits +=
          static_cast<std::uint64_t>(p.len) - p.flits_ejected;
      ++res.plane_inflight[static_cast<std::size_t>(
          net_.plane_of_node(p.src))];
      ++res.wafer_inflight[static_cast<std::size_t>(
          net_.wafer_of_node(p.src))];
    }
  }
  double total = 0.0;
  if (delivered_measured_ > 0) {
    for (int h = 0; h < kNumLinkTypes; ++h) {
      res.avg_hops[h] =
          hop_sum_[h] / static_cast<double>(delivered_measured_);
      total += res.avg_hops[h];
    }
  }
  res.avg_hops_total = total;
  return res;
}

namespace {
/// Checkpoint stream magic ("sldfckp1" little-endian).
constexpr std::uint64_t kCkMagic = 0x736c6466636b7031ULL;
}  // namespace

void Simulator::save_checkpoint(std::ostream& out) const {
  ck_put_v(out, kCkMagic);
  // Shape fingerprint: a restore against a different network/config shape
  // must fail loudly instead of corrupting state.
  ck_put_v(out, static_cast<std::uint64_t>(net_.num_routers()));
  ck_put_v(out, static_cast<std::uint64_t>(net_.num_channels()));
  ck_put_v(out, static_cast<std::uint64_t>(net_.fifos().num_fifos()));
  ck_put_v(out, static_cast<std::uint64_t>(net_.num_out_ports()));
  ck_put_v(out, static_cast<std::uint64_t>(ctx_->terms.size()));
  ck_put_v(out, cfg_.seed);
  ck_put_v(out, static_cast<std::uint64_t>(cfg_.warmup));
  ck_put_v(out, static_cast<std::uint64_t>(cfg_.measure));
  ck_put_v(out, static_cast<std::uint64_t>(cfg_.drain));
  ck_put_v(out, static_cast<std::int64_t>(cfg_.pkt_len));
  ck_put_v(out, cfg_.inj_rate_per_chip);

  ck_put_v(out, now_);
  const auto rs = rng_.state();
  ck_put(out, rs.data(), sizeof(rs[0]) * rs.size());
  const OnlineStats::State ls = lat_.state();
  ck_put(out, &ls, sizeof(ls));
  ck_put_vec(out, lat_hist_.buckets());
  ck_put_v(out, lat_hist_.count());
  ck_put_v(out, lat_hist_.overflow());
  ck_put_v(out, accepted_flits_);
  ck_put_v(out, generated_measured_);
  ck_put_v(out, delivered_measured_);
  ck_put_v(out, delivered_total_);
  ck_put_v(out, suppressed_);
  ck_put_v(out, flit_hops_);
  ck_put_v(out, dropped_packets_);
  ck_put_v(out, dropped_flits_);
  ck_put_v(out, dropped_measured_);
  ck_put_v(out, rescued_packets_);
  ck_put_v(out, generated_packets_);
  ck_put_v(out, generated_flits_);
  ck_put_v(out, ejected_flits_);
  ck_put_v(out, lost_flits_);
  ck_put_vec(out, plane_generated_);
  ck_put_vec(out, plane_delivered_);
  ck_put_vec(out, plane_dropped_);
  ck_put_vec(out, wafer_generated_);
  ck_put_vec(out, wafer_delivered_);
  ck_put_vec(out, wafer_dropped_);
  ck_put_vec(out, rr_plane_);
  ck_put_v(out, static_cast<std::uint64_t>(next_fault_));
  ck_put(out, hop_sum_, sizeof(hop_sum_));

  // Packet pool: raw slots (POD, streamed chunk-wise — the byte stream is
  // identical to a contiguous layout's) + the free list.
  ck_put_v(out, static_cast<std::uint64_t>(ctx_->pool.capacity()));
  for (std::size_t c = 0; c < ctx_->pool.num_chunks(); ++c) {
    const auto [ptr, cn] = ctx_->pool.chunk(c);
    ck_put(out, ptr, cn * sizeof(Packet));
  }
  ck_put_vec(out, ctx_->pool.free_list());

  for (const TerminalState& t : ctx_->terms) {
    ck_put_v(out, t.next_gen);
    ck_put_v(out, static_cast<std::uint64_t>(t.queue.size()));
    for (std::size_t q = 0; q < t.queue.size(); ++q)
      ck_put_v(out, t.queue.at(q));
    ck_put_v(out, t.inj_vc);
    ck_put_v(out, t.pushed);
  }

  ck_put_vec(out, ctx_->active);
  ck_put_vec(out, ctx_->ract);
  ck_put_v(out, static_cast<std::uint64_t>(ctx_->wheel.size()));
  for (const auto& slot : ctx_->wheel) ck_put_vec(out, slot);
  ck_put_vec(out, ctx_->ivc_pending);
  ck_put_vec(out, ctx_->port_pending);
  ck_put_vec(out, ctx_->ovc_waiters);
  ck_put_vec(out, ctx_->ivc_wait_next);
  ck_put_vec(out, ctx_->ivc_pkt);

  net_.save_dynamic_state(out);
  if (!out) throw std::runtime_error("checkpoint: write failed");
}

void Simulator::restore_checkpoint(std::istream& in) {
  if (ck_get_v<std::uint64_t>(in) != kCkMagic)
    throw std::runtime_error("checkpoint: bad magic (not a checkpoint?)");
  ck_expect(in, static_cast<std::uint64_t>(net_.num_routers()),
            "router count");
  ck_expect(in, static_cast<std::uint64_t>(net_.num_channels()),
            "channel count");
  ck_expect(in, static_cast<std::uint64_t>(net_.fifos().num_fifos()),
            "fifo count");
  ck_expect(in, static_cast<std::uint64_t>(net_.num_out_ports()),
            "port count");
  ck_expect(in, static_cast<std::uint64_t>(ctx_->terms.size()),
            "terminal count");
  ck_expect(in, cfg_.seed, "seed");
  ck_expect(in, static_cast<std::uint64_t>(cfg_.warmup), "warmup");
  ck_expect(in, static_cast<std::uint64_t>(cfg_.measure), "measure");
  ck_expect(in, static_cast<std::uint64_t>(cfg_.drain), "drain");
  if (ck_get_v<std::int64_t>(in) != static_cast<std::int64_t>(cfg_.pkt_len))
    throw std::runtime_error("checkpoint: pkt_len mismatch");
  const double rate = ck_get_v<double>(in);
  if (std::memcmp(&rate, &cfg_.inj_rate_per_chip, sizeof(double)) != 0)
    throw std::runtime_error("checkpoint: inj_rate mismatch");

  now_ = ck_get_v<Cycle>(in);
  std::array<std::uint64_t, 4> rs{};
  ck_get(in, rs.data(), sizeof(rs[0]) * rs.size());
  rng_.set_state(rs);
  OnlineStats::State ls{};
  ck_get(in, &ls, sizeof(ls));
  lat_.set_state(ls);
  std::vector<std::uint64_t> hbuckets;
  ck_get_vec(in, hbuckets);
  const auto htotal = ck_get_v<std::uint64_t>(in);
  const auto hover = ck_get_v<std::uint64_t>(in);
  lat_hist_.set_state(std::move(hbuckets), htotal, hover);
  accepted_flits_ = ck_get_v<std::uint64_t>(in);
  generated_measured_ = ck_get_v<std::uint64_t>(in);
  delivered_measured_ = ck_get_v<std::uint64_t>(in);
  delivered_total_ = ck_get_v<std::uint64_t>(in);
  suppressed_ = ck_get_v<std::uint64_t>(in);
  flit_hops_ = ck_get_v<std::uint64_t>(in);
  dropped_packets_ = ck_get_v<std::uint64_t>(in);
  dropped_flits_ = ck_get_v<std::uint64_t>(in);
  dropped_measured_ = ck_get_v<std::uint64_t>(in);
  rescued_packets_ = ck_get_v<std::uint64_t>(in);
  generated_packets_ = ck_get_v<std::uint64_t>(in);
  generated_flits_ = ck_get_v<std::uint64_t>(in);
  ejected_flits_ = ck_get_v<std::uint64_t>(in);
  lost_flits_ = ck_get_v<std::uint64_t>(in);
  ck_get_vec(in, plane_generated_);
  ck_get_vec(in, plane_delivered_);
  ck_get_vec(in, plane_dropped_);
  ck_get_vec(in, wafer_generated_);
  ck_get_vec(in, wafer_delivered_);
  ck_get_vec(in, wafer_dropped_);
  ck_get_vec(in, rr_plane_);
  next_fault_ = static_cast<std::size_t>(ck_get_v<std::uint64_t>(in));
  ck_get(in, hop_sum_, sizeof(hop_sum_));

  const auto nslots = ck_get_v<std::uint64_t>(in);
  check_ck_size(nslots, sizeof(Packet));
  ctx_->pool.restore_slots(static_cast<std::size_t>(nslots));
  for (std::size_t c = 0; c < ctx_->pool.num_chunks(); ++c) {
    const auto [ptr, cn] = ctx_->pool.chunk(c);
    ck_get(in, ptr, cn * sizeof(Packet));
  }
  std::vector<PacketId> free_list;
  ck_get_vec(in, free_list);
  ctx_->pool.restore_free_list(std::move(free_list));

  for (TerminalState& t : ctx_->terms) {
    t.next_gen = ck_get_v<Cycle>(in);
    const auto qn = ck_get_v<std::uint64_t>(in);
    check_ck_size(qn, sizeof(PacketId));
    t.queue.clear();
    for (std::uint64_t q = 0; q < qn; ++q)
      t.queue.push_back(ck_get_v<PacketId>(in));
    t.inj_vc = ck_get_v<VcIx>(in);
    t.pushed = ck_get_v<std::uint16_t>(in);
  }

  ck_get_vec(in, ctx_->active);
  ck_get_vec(in, ctx_->ract);
  const auto saved_wheel = ck_get_v<std::uint64_t>(in);
  // The saved wheel is at least as large as this engine's minimum (same
  // network → same max latency), so adopting its size is always legal.
  check_ck_size(saved_wheel, sizeof(std::vector<WheelEvent>));
  ctx_->wheel.resize(static_cast<std::size_t>(saved_wheel));
  wheel_mask_ = static_cast<std::size_t>(saved_wheel) - 1;
  for (auto& slot : ctx_->wheel) ck_get_vec(in, slot);
  ck_get_vec(in, ctx_->ivc_pending);
  ck_get_vec(in, ctx_->port_pending);
  ck_get_vec(in, ctx_->ovc_waiters);
  ck_get_vec(in, ctx_->ivc_wait_next);
  ck_get_vec(in, ctx_->ivc_pkt);

  net_.load_dynamic_state(in);
  // The event-driven generation structures are derived state: never
  // serialized, always reconstructed from the restored terminals.
  rebuild_gen_state();
}

SimResult run_sim(Network& net, const SimConfig& cfg, TrafficSource& traffic) {
  SimContext ctx;
  return run_sim(ctx, net, cfg, traffic);
}

SimResult run_sim(SimContext& ctx, Network& net, const SimConfig& cfg,
                  TrafficSource& traffic) {
  net.reset_dynamic_state();
  Simulator sim(net, cfg, traffic, ctx);
  return sim.run();
}

}  // namespace sldf::sim
