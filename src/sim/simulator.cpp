#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>

namespace sldf::sim {

Simulator::Simulator(Network& net, const SimConfig& cfg, TrafficSource& traffic)
    : net_(net), cfg_(cfg), traffic_(traffic), rng_(cfg.seed) {
  if (!net_.finalized())
    throw std::logic_error("Simulator: network not finalized");
  if (!net_.routing())
    throw std::logic_error("Simulator: network has no routing algorithm");
  if (net_.num_chips() == 0)
    throw std::logic_error("Simulator: network has no chips");

  const double nodes_per_chip =
      static_cast<double>(net_.terminals().size()) /
      static_cast<double>(net_.num_chips());
  per_node_pkt_rate_ = cfg_.inj_rate_per_chip / nodes_per_chip /
                       static_cast<double>(cfg_.pkt_len);

  // Wheel size: next power of two above the maximum channel latency.
  std::size_t max_lat = 1;
  for (std::size_t i = 0; i < net_.num_channels(); ++i)
    max_lat = std::max<std::size_t>(
        max_lat, net_.chan(static_cast<ChanId>(i)).latency);
  std::size_t w = 1;
  while (w <= max_lat) w <<= 1;
  wheel_mask_ = w - 1;
  wheel_flits_.resize(w);
  wheel_credits_.resize(w);

  terms_.reserve(net_.terminals().size());
  for (NodeId n : net_.terminals()) {
    TerminalState t;
    t.node = n;
    t.next_gen = per_node_pkt_rate_ > 0.0
                     ? rng_.geometric_skip(per_node_pkt_rate_)
                     : ~0ULL;
    terms_.push_back(std::move(t));
  }
}

void Simulator::generate_and_inject() {
  const Cycle gen_end = cfg_.warmup + cfg_.measure;
  for (auto& t : terms_) {
    // --- generation (geometric-skip Bernoulli source) ---
    while (t.next_gen <= now_) {
      const Cycle when = t.next_gen;
      const auto skip = rng_.geometric_skip(per_node_pkt_rate_);
      t.next_gen = (skip >= ~0ULL - when - 1) ? ~0ULL : when + 1 + skip;
      if (when >= gen_end + cfg_.drain) break;  // past simulation horizon
      if (static_cast<int>(t.queue.size()) >= cfg_.max_src_queue) {
        ++suppressed_;
        continue;
      }
      const NodeId dst = traffic_.dest(net_, t.node, rng_);
      if (dst == kInvalidNode) continue;
      const PacketId pid = pool_.acquire();
      Packet& p = pool_[pid];
      p.src = t.node;
      p.dst = dst;
      p.src_chip = net_.chip_of(t.node);
      p.dst_chip = net_.chip_of(dst);
      p.len = static_cast<std::uint16_t>(cfg_.pkt_len);
      p.t_gen = when;
      p.measured = (when >= cfg_.warmup && when < gen_end) ? 1 : 0;
      if (p.measured) ++generated_measured_;
      net_.routing()->init_packet(net_, p, rng_);
      t.queue.push_back(pid);
    }
    // --- injection: one flit per cycle into the injection port ---
    if (t.queue.empty()) continue;
    Router& r = net_.router(t.node);
    InputPort& ip = r.in[static_cast<std::size_t>(r.inj_port)];
    const PacketId pid = t.queue.front();
    Packet& p = pool_[pid];
    if (t.pushed == 0) t.inj_vc = static_cast<VcIx>(p.vc_class);
    InputVc& ivc = ip.vcs[static_cast<std::size_t>(t.inj_vc)];
    if (!ivc.fifo.full()) {
      Flit f;
      f.pkt = pid;
      f.idx = t.pushed;
      f.head = (t.pushed == 0);
      f.tail = (t.pushed + 1 == p.len);
      ivc.fifo.push(f);
      ++ip.buffered;
      ++r.buffered;
      activate_router(t.node);
      if (++t.pushed == p.len) {
        t.queue.pop_front();
        t.pushed = 0;
      }
    }
  }
}

void Simulator::deliver_channels() {
  auto& flits = wheel_flits_[now_ & wheel_mask_];
  for (const auto& ev : flits) {
    Router& rd = net_.router(ev.dst);
    InputPort& dip = rd.in[static_cast<std::size_t>(ev.dst_port)];
    InputVc& ivc = dip.vcs[static_cast<std::size_t>(ev.vc)];
    assert(!ivc.fifo.full() && "credit protocol violated");
    ivc.fifo.push(ev.flit);
    ++dip.buffered;
    ++rd.buffered;
    activate_router(ev.dst);
  }
  flits.clear();
  auto& credits = wheel_credits_[now_ & wheel_mask_];
  for (const auto& ev : credits) {
    Router& rs = net_.router(ev.src);
    OutputVc& ov = rs.out[static_cast<std::size_t>(ev.src_port)]
                       .vcs[static_cast<std::size_t>(ev.vc)];
    ++ov.credits;
    activate_router(ev.src);
  }
  credits.clear();
}

void Simulator::handle_eject(const Flit& f) {
  Packet& p = pool_[f.pkt];
  ++p.flits_ejected;
  const bool in_window =
      now_ >= cfg_.warmup && now_ < cfg_.warmup + cfg_.measure;
  if (in_window) ++accepted_flits_;
  if (f.tail) {
    p.t_eject = now_;
    ++delivered_total_;
    if (p.measured) {
      ++delivered_measured_;
      const auto lat = static_cast<double>(p.latency());
      lat_.add(lat);
      lat_hist_.add(lat);
      for (int h = 0; h < kNumLinkTypes; ++h)
        hop_sum_[h] += static_cast<double>(p.hops[h]);
    }
    pool_.release(f.pkt);
  }
}

void Simulator::process_router(NodeId rid) {
  Router& r = net_.router(rid);
  const auto nvc = static_cast<std::size_t>(net_.num_vcs());

  // --- RC + VA over input VCs ---
  for (std::size_t pi = 0; pi < r.in.size(); ++pi) {
    InputPort& ip = r.in[pi];
    if (ip.buffered == 0) continue;
    for (std::size_t vi = 0; vi < nvc; ++vi) {
      InputVc& ivc = ip.vcs[vi];
      if (ivc.fifo.empty()) continue;
      if (ivc.state == IvcState::Idle) {
        const Flit& f = ivc.fifo.front();
        assert(f.head && "non-head flit at idle VC");
        Packet& pkt = pool_[f.pkt];
        const RouteDecision d = net_.routing()->route(
            net_, rid, static_cast<PortIx>(pi), pkt);
        assert(d.out_port >= 0 &&
               d.out_port < static_cast<PortIx>(r.out.size()));
        assert(d.out_vc >= 0 && d.out_vc < static_cast<VcIx>(nvc));
        ivc.out_port = d.out_port;
        ivc.out_vc = d.out_vc;
        ivc.state = IvcState::Routed;
      }
      if (ivc.state == IvcState::Routed) {
        OutputPort& op = r.out[static_cast<std::size_t>(ivc.out_port)];
        OutputVc& ov = op.vcs[static_cast<std::size_t>(ivc.out_vc)];
        if (!ov.busy) {
          ov.busy = true;
          ov.owner_port = static_cast<PortIx>(pi);
          ov.owner_vc = static_cast<VcIx>(vi);
          op.requesters.push_back(
              static_cast<std::uint16_t>((pi << 8) | vi));
          ivc.state = IvcState::Active;
        }
      }
    }
  }

  // --- SA + ST per output port ---
  for (auto& op : r.out) {
    if (op.requesters.empty()) continue;
    const bool is_eject = (op.out_chan == kInvalidChan);
    int budget = 1;  // ejection: one flit per cycle per node
    if (!is_eject) {
      Channel& oc = net_.chan(op.out_chan);
      oc.refresh_tokens(now_);
      budget = oc.flit_allowance();
    }
    for (int grant = 0; grant < budget; ++grant) {
      const auto nreq = op.requesters.size();
      std::size_t chosen = nreq;
      for (std::size_t k = 0; k < nreq; ++k) {
        const std::size_t idx = (op.rr + k) % nreq;
        const std::uint16_t enc = op.requesters[idx];
        InputVc& ivc = r.in[enc >> 8].vcs[enc & 0xff];
        if (ivc.fifo.empty()) continue;
        if (!is_eject &&
            op.vcs[static_cast<std::size_t>(ivc.out_vc)].credits <= 0)
          continue;
        chosen = idx;
        break;
      }
      if (chosen == nreq) break;
      const std::uint16_t enc = op.requesters[chosen];
      const std::size_t pi = enc >> 8;
      const std::size_t vi = enc & 0xff;
      InputPort& ip = r.in[pi];
      InputVc& ivc = ip.vcs[vi];
      OutputVc& ov = op.vcs[static_cast<std::size_t>(ivc.out_vc)];

      const Flit f = ivc.fifo.pop();
      --ip.buffered;
      --r.buffered;
      if (ip.in_chan != kInvalidChan) {
        const Channel& icv = net_.chan(ip.in_chan);
        wheel_credits_[(now_ + icv.latency) & wheel_mask_].push_back(
            CreditDelivery{icv.src, icv.src_port, static_cast<VcIx>(vi)});
      }
      if (is_eject) {
        handle_eject(f);
      } else {
        Channel& oc = net_.chan(op.out_chan);
        --ov.credits;
        oc.consume_token();
        if (f.head) {
          Packet& pkt = pool_[f.pkt];
          ++pkt.hops[static_cast<int>(oc.type)];
        }
        wheel_flits_[(now_ + oc.latency) & wheel_mask_].push_back(
            FlitDelivery{oc.dst, oc.dst_port, ivc.out_vc, f});
      }
      if (f.tail) {
        ov.busy = false;
        ov.owner_port = kInvalidPort;
        ov.owner_vc = kInvalidVc;
        ivc.state = IvcState::Idle;
        ivc.out_port = kInvalidPort;
        ivc.out_vc = kInvalidVc;
        op.requesters.erase(op.requesters.begin() +
                            static_cast<std::ptrdiff_t>(chosen));
        if (!op.requesters.empty())
          op.rr = static_cast<std::uint16_t>(chosen % op.requesters.size());
        else
          op.rr = 0;
      } else {
        op.rr = static_cast<std::uint16_t>((chosen + 1) % nreq);
      }
    }
  }
}

void Simulator::step() {
  deliver_channels();
  generate_and_inject();

  // Snapshot: routers activated during this pass run next cycle.
  std::vector<NodeId> snapshot;
  snapshot.swap(active_routers_);
  for (NodeId rid : snapshot) net_.router(rid).in_active_list = false;
  for (NodeId rid : snapshot) {
    process_router(rid);
    // Keep the router live while any input VC holds flits.
    if (net_.router(rid).buffered > 0) activate_router(rid);
  }
  ++now_;
}

SimResult Simulator::run() {
  const Cycle horizon = cfg_.warmup + cfg_.measure;
  while (now_ < horizon) step();
  // Drain: let measured packets land (background traffic keeps flowing).
  Cycle drained_cycles = 0;
  while (drained_cycles < cfg_.drain &&
         delivered_measured_ < generated_measured_) {
    step();
    ++drained_cycles;
  }

  SimResult res;
  res.offered = cfg_.inj_rate_per_chip;
  res.accepted = static_cast<double>(accepted_flits_) /
                 static_cast<double>(cfg_.measure) /
                 static_cast<double>(net_.num_chips());
  res.avg_latency = lat_.mean();
  res.p50_latency = lat_hist_.quantile(0.5);
  res.p99_latency = lat_hist_.quantile(0.99);
  res.min_latency = lat_.count() ? lat_.min() : 0.0;
  res.max_latency = lat_.count() ? lat_.max() : 0.0;
  res.generated_measured = generated_measured_;
  res.delivered_measured = delivered_measured_;
  res.delivered_total = delivered_total_;
  res.suppressed = suppressed_;
  res.drained = delivered_measured_ == generated_measured_;
  res.cycles_run = now_;
  double total = 0.0;
  if (delivered_measured_ > 0) {
    for (int h = 0; h < kNumLinkTypes; ++h) {
      res.avg_hops[h] =
          hop_sum_[h] / static_cast<double>(delivered_measured_);
      total += res.avg_hops[h];
    }
  }
  res.avg_hops_total = total;
  return res;
}

SimResult run_sim(Network& net, const SimConfig& cfg, TrafficSource& traffic) {
  net.reset_dynamic_state();
  Simulator sim(net, cfg, traffic);
  return sim.run();
}

}  // namespace sldf::sim
