// Unidirectional channel: static wiring plus a token bucket modeling the
// (possibly fractional) bandwidth. In-flight flits and credits live in the
// Simulator's timing wheel, which preserves per-channel FIFO order because
// latency is constant per channel.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sim/flit.hpp"

namespace sldf::sim {

struct Channel {
  // --- static wiring (set by the topology builder) ---
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PortIx src_port = kInvalidPort;  ///< Output-port index at src.
  PortIx dst_port = kInvalidPort;  ///< Input-port index at dst.
  std::uint8_t latency = 1;        ///< Pipeline depth in cycles (>= 1).
  /// Bandwidth is width_num/width_den flits per cycle. Fractional widths
  /// model chiplet-boundary edges carrying n/4 links spread over the
  /// boundary routers (e.g. 3/4 flit/cycle per router pair for n=6).
  std::uint16_t width_num = 1;
  std::uint16_t width_den = 1;
  LinkType type = LinkType::OnChip;

  // Flat offset precomputed by Network::finalize(): VC v of the input port
  // this channel feeds is `dst_vc_base + v` in the network's input-VC
  // arrays (FIFO arena / ivc_meta). Deliveries use it directly instead of
  // re-deriving router/port offsets.
  std::uint32_t dst_vc_base = 0;

  // Token bucket (micro-tokens scaled by width_den): each cycle adds
  // width_num tokens, capped at width_num + width_den so idle periods do
  // not accumulate unbounded burst; sending one flit costs width_den.
  // The bucket starts full.
  std::uint32_t tokens = 0;
  Cycle token_cycle = 0;

  [[nodiscard]] std::uint32_t token_cap() const {
    return static_cast<std::uint32_t>(width_num) +
           static_cast<std::uint32_t>(width_den);
  }
  void reset_tokens() {
    tokens = token_cap();
    token_cycle = 0;
  }
  void refresh_tokens(Cycle now) {
    if (now > token_cycle) {
      const std::uint64_t add =
          static_cast<std::uint64_t>(now - token_cycle) * width_num + tokens;
      const std::uint32_t cap = token_cap();
      tokens = static_cast<std::uint32_t>(add > cap ? cap : add);
      token_cycle = now;
    }
  }
  [[nodiscard]] int flit_allowance() const { return tokens / width_den; }
  void consume_token() { tokens -= width_den; }
};

}  // namespace sldf::sim
