// The Network: routers + channels + chip/terminal registry + routing.
// Builders in src/topo construct it; the Simulator animates it.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/channel.hpp"
#include "sim/router.hpp"
#include "sim/routing.hpp"

namespace sldf::sim {

/// Base class for topology-specific metadata attached to a Network.
/// Concrete builders derive from this; routing algorithms downcast.
struct TopoInfo {
  virtual ~TopoInfo() = default;
};

class Network {
 public:
  // ---- construction (topology builders) ----
  NodeId add_router(NodeKind kind);

  /// Adds a unidirectional channel and the corresponding output/input ports.
  /// Bandwidth is width_num/width_den flits per cycle.
  ChanId add_channel(NodeId src, NodeId dst, LinkType type, int latency,
                     int width_num = 1, int width_den = 1);

  /// Adds a channel pair (src->dst and dst->src) with identical parameters.
  /// Returns the id of the src->dst channel (the reverse is id+1).
  ChanId add_duplex(NodeId a, NodeId b, LinkType type, int latency,
                    int width_num = 1, int width_den = 1);

  /// Registers `core` as a terminal belonging to `chip` (creates the
  /// injection input port and ejection output port).
  void make_terminal(NodeId core, ChipId chip);

  /// Sizes all VC arrays and initializes credits. Call once after wiring.
  void finalize(int num_vcs, int vc_buf_flits);

  void set_routing(std::unique_ptr<RoutingAlgorithm> routing) {
    routing_ = std::move(routing);
  }
  void set_topo_info(std::unique_ptr<TopoInfo> info) {
    topo_ = std::move(info);
  }

  /// Clears all dynamic state (buffers, pipelines, allocations) so a network
  /// can be re-simulated without rebuilding the topology.
  void reset_dynamic_state();

  // ---- accessors ----
  [[nodiscard]] std::size_t num_routers() const { return routers_.size(); }
  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }
  [[nodiscard]] std::size_t num_chips() const { return chip_nodes_.size(); }
  [[nodiscard]] int num_vcs() const { return num_vcs_; }
  [[nodiscard]] int vc_buf() const { return vc_buf_; }
  [[nodiscard]] bool finalized() const { return num_vcs_ > 0; }

  Router& router(NodeId id) { return routers_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Router& router(NodeId id) const {
    return routers_[static_cast<std::size_t>(id)];
  }
  Channel& chan(ChanId id) { return channels_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Channel& chan(ChanId id) const {
    return channels_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] const std::vector<NodeId>& chip_nodes(ChipId chip) const {
    return chip_nodes_[static_cast<std::size_t>(chip)];
  }
  [[nodiscard]] ChipId chip_of(NodeId node) const {
    return node_chip_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] const std::vector<NodeId>& terminals() const {
    return terminal_nodes_;
  }

  [[nodiscard]] RoutingAlgorithm* routing() const { return routing_.get(); }
  [[nodiscard]] const TopoInfo* topo_info() const { return topo_.get(); }
  template <typename T>
  [[nodiscard]] const T& topo() const {
    const auto* t = dynamic_cast<const T*>(topo_.get());
    assert(t && "topology info type mismatch");
    return *t;
  }

  /// Convenience: output-port index at chan's source router.
  [[nodiscard]] PortIx out_port_of(ChanId c) const {
    return chan(c).src_port;
  }

  std::vector<Router>& routers() { return routers_; }
  std::vector<Channel>& channels() { return channels_; }

 private:
  std::vector<Router> routers_;
  std::vector<Channel> channels_;
  std::vector<std::vector<NodeId>> chip_nodes_;
  std::vector<ChipId> node_chip_;
  std::vector<NodeId> terminal_nodes_;
  std::unique_ptr<RoutingAlgorithm> routing_;
  std::unique_ptr<TopoInfo> topo_;
  int num_vcs_ = 0;
  int vc_buf_ = 0;
};

}  // namespace sldf::sim
