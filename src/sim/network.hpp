// The Network: routers + channels + chip/terminal registry + routing.
// Builders in src/topo construct it; the Simulator animates it.
//
// Dynamic per-VC state is stored structure-of-arrays at network scope
// (cache-friendly for the cycle engine): input-VC FSM/route arrays and the
// flit FIFO arena are indexed by `in_vc_index()`, output-VC busy/credit
// arrays by `out_vc_index()`. The flat offsets are computed once in
// finalize() and cached per channel (Channel::{dst,src}_vc_base).
#pragma once

#include <bit>
#include <cassert>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/hugepage.hpp"
#include "common/types.hpp"
#include "sim/buffer.hpp"
#include "sim/channel.hpp"
#include "sim/router.hpp"
#include "sim/routing.hpp"

namespace sldf::sim {

/// Base class for topology-specific metadata attached to a Network.
/// Concrete builders derive from this; routing algorithms downcast.
struct TopoInfo {
  virtual ~TopoInfo() = default;
};

/// One resolved fault-timeline transition, applied at the start of cycle
/// `at`. The lists are fully concrete (directed channels, individual
/// nodes) and mutually consistent: a repaired channel is listed only when
/// both its endpoints are live after this step, a channel failed by both a
/// cable event and a chip event appears once, etc. — all cross-event
/// interaction is worked out at resolve time (topo::resolve_timeline), so
/// applying a step is a plain sequence of disable/enable calls.
struct FaultStep {
  Cycle at = 0;
  std::vector<NodeId> fail_nodes;
  std::vector<NodeId> repair_nodes;
  std::vector<ChanId> fail_chans;
  std::vector<ChanId> repair_chans;
};

/// A resolved fault event timeline (see topo/faults.hpp for the source
/// formats). Steps are strictly increasing in `at`. Stored on the Network
/// (set_fault_schedule) so serving-mode network caching carries it and the
/// Simulator picks it up without config plumbing.
struct FaultSchedule {
  std::vector<FaultStep> steps;
  /// True: in-flight packets cut by a dying link are re-routed (re-queued
  /// at their source injector with a fresh fault-aware route). False: they
  /// are dropped and counted (SimResult::dropped_packets).
  bool rescue = true;
};

class Network {
 public:
  // ---- construction (topology builders) ----
  NodeId add_router(NodeKind kind);

  /// Adds a unidirectional channel and the corresponding output/input ports.
  /// Bandwidth is width_num/width_den flits per cycle.
  ChanId add_channel(NodeId src, NodeId dst, LinkType type, int latency,
                     int width_num = 1, int width_den = 1);

  /// Adds a channel pair (src->dst and dst->src) with identical parameters.
  /// Returns the id of the src->dst channel (the reverse is id+1).
  ChanId add_duplex(NodeId a, NodeId b, LinkType type, int latency,
                    int width_num = 1, int width_den = 1);

  /// Registers `core` as a terminal belonging to `chip` (creates the
  /// injection input port and ejection output port).
  void make_terminal(NodeId core, ChipId chip);

  /// Sizes all flat VC arrays, computes the per-router/per-channel offsets,
  /// and initializes credits. Call once after wiring.
  ///
  /// `vc_buf_flits` is the *logical* per-VC buffer depth: it is what
  /// credits enforce and may be any value >= 1. FIFO *storage* is rounded
  /// up to the next power of two internally so ring indexing is mask-based;
  /// this changes memory footprint only, never simulation results.
  void finalize(int num_vcs, int vc_buf_flits);

  void set_routing(std::unique_ptr<RoutingAlgorithm> routing) {
    routing_ = std::move(routing);
  }
  void set_topo_info(std::unique_ptr<TopoInfo> info) {
    topo_ = std::move(info);
  }

  /// Clears all dynamic state (buffers, pipelines, allocations) so a network
  /// can be re-simulated without rebuilding the topology. Allocation-free.
  /// Disabled channels/nodes (fault mask) survive the reset.
  void reset_dynamic_state();

  // ---- fault mask (degraded operation; see topo/faults.hpp) --------------
  /// Arms the per-channel/per-node liveness masks (all live). Must be
  /// called after finalize(); idempotent. Networks without an armed mask
  /// pay nothing: the accessors below short-circuit on the empty vectors.
  void enable_fault_mask();
  [[nodiscard]] bool has_fault_mask() const { return !chan_alive_.empty(); }
  /// True when anything is actually dead. Routing gates its detour
  /// planning on this, not on has_fault_mask(), so an armed-but-empty mask
  /// (e.g. a fault rate that rounds to zero failures) makes bit-identical
  /// decisions to an unfaulted network of the same build.
  [[nodiscard]] bool has_faults() const { return dead_channels_ != 0; }
  [[nodiscard]] bool chan_live(ChanId c) const {
    return chan_alive_.empty() ||
           chan_alive_[static_cast<std::size_t>(c)] != 0;
  }
  [[nodiscard]] bool node_live(NodeId n) const {
    return node_alive_.empty() ||
           node_alive_[static_cast<std::size_t>(n)] != 0;
  }
  /// A chip is live while any of its terminal nodes is; fault.chips kills
  /// every node of a chip, so a dead chip can neither source nor sink
  /// workload traffic (placement and workload validation consult this).
  [[nodiscard]] bool chip_live(ChipId chip) const {
    if (node_alive_.empty()) return true;
    for (const NodeId n : chip_nodes_[static_cast<std::size_t>(chip)])
      if (node_alive_[static_cast<std::size_t>(n)] != 0) return true;
    return false;
  }
  /// Marks channel `c` dead and rewrites its source output-port record so
  /// the engine cannot move flits over it (token width zeroed: the bucket
  /// never refills), independent of what routing decides.
  void disable_channel(ChanId c);
  /// Marks node `n` dead and disables every channel incident to it (a
  /// failed chip takes its links down with it). Terminals of dead nodes
  /// neither generate nor accept traffic (see Simulator).
  void disable_node(NodeId n);
  /// Online repair: re-marks channel `c` live and restores its source
  /// output-port record — the token width comes back from the immutable
  /// Channel struct, the bucket refills to capacity, and the refresh clock
  /// is re-based at `now` so the elapsed dead time does not grant a burst.
  /// No-op on an already-live channel. Callers (the Simulator applying a
  /// FaultStep, audits) are responsible for endpoint liveness consistency:
  /// resolve_timeline never lists a channel with a dead endpoint.
  void enable_channel(ChanId c, Cycle now);
  /// Online node fail/repair: flips only the node's liveness flag (and the
  /// dead-node count). Incident channels are NOT touched — a resolved
  /// FaultStep lists them explicitly in fail_chans/repair_chans.
  void set_node_alive(NodeId n, bool alive);
  [[nodiscard]] std::size_t num_dead_channels() const;
  [[nodiscard]] std::size_t num_dead_nodes() const;

  // ---- fault event timeline (online resilience) --------------------------
  /// Attaches a resolved fail/repair timeline. The Simulator applies due
  /// steps at cycle boundaries; reset_dynamic_state() rewinds the mask to
  /// the captured baseline so the same network object can run the timeline
  /// again (sweeps, serving mode). Pass nullptr to detach.
  void set_fault_schedule(std::shared_ptr<const FaultSchedule> s) {
    fault_schedule_ = std::move(s);
  }
  [[nodiscard]] const FaultSchedule* fault_schedule() const {
    return fault_schedule_.get();
  }
  /// Snapshots the current mask (typically right after static injection)
  /// as the cycle-0 baseline that reset_dynamic_state() restores. Without
  /// a captured baseline, resets leave the mask untouched (the pre-online
  /// behaviour manual disable_channel() users rely on).
  void capture_fault_baseline();
  [[nodiscard]] bool has_fault_baseline() const {
    return !baseline_chan_alive_.empty();
  }
  /// Rewinds the mask (and the affected port records) to the captured
  /// baseline without touching FIFO/pipeline state; bumps the fault epoch
  /// if anything changed. No-op without a captured baseline. Used by
  /// reset_dynamic_state() and by timeline audits (topo::audit_at).
  void restore_fault_baseline();
  /// Monotone counter bumped on every online mask transition (each applied
  /// FaultStep, each baseline restore). Placement snapshots taken against
  /// one epoch (trace::PlacementAllocator) refuse to allocate under
  /// another: a chip repaired mid-run must not be handed to a new tenant
  /// while an old placement still references the pre-repair liveness.
  [[nodiscard]] std::uint64_t fault_epoch() const { return fault_epoch_; }
  void bump_fault_epoch() { ++fault_epoch_; }

  // ---- checkpointing -----------------------------------------------------
  /// Serializes every mutable word of the network (FIFO arena, port
  /// records, channel token mirrors, fault mask + epoch) to `out`.
  /// Topology and static wiring are NOT written: a checkpoint restores
  /// only onto an identically-built network (the Simulator's checkpoint
  /// header fingerprints the shape).
  void save_dynamic_state(std::ostream& out) const;
  /// Inverse of save_dynamic_state(); throws std::runtime_error when the
  /// stream's array sizes do not match this network.
  void load_dynamic_state(std::istream& in);

  // ---- shard partition map (intra-simulation parallelism) ----------------
  /// Partitions the router id space into `shards` contiguous ranges for the
  /// sharded cycle engine (see docs/ARCHITECTURE.md, "Threading &
  /// determinism model"). Returns `shards + 1` ascending boundaries with
  /// `bounds[0] == 0` and `bounds[shards] == num_routers()`; shard `k` owns
  /// routers `[bounds[k], bounds[k+1])`.
  ///
  /// Invariants the engine relies on:
  /// - **Chip-aligned**: a boundary never splits a chip, so every terminal
  ///   and its C-group mesh neighbourhood stay shard-local (converter
  ///   nodes, which belong to no chip, may land on either side). Since
  ///   builders lay out each C-group's routers contiguously, shards are
  ///   C-group-aligned in practice and mesh-local traffic never crosses a
  ///   shard except through the timing wheel.
  /// - **Load-balanced by output ports** (the closest static proxy for
  ///   per-router engine work), via the flat port prefix sums computed in
  ///   finalize().
  /// - **Deterministic**: a pure function of the topology and `shards` —
  ///   never of thread scheduling.
  ///
  /// Ranges may be empty when `shards` exceeds the number of chips.
  /// Requires finalize().
  [[nodiscard]] std::vector<std::uint32_t> shard_bounds(int shards) const;

  // ---- multi-plane partition (topo/plane_set.hpp builds it) --------------
  // K independent rails wired into this one network, sharing the logical
  // chip id space: every plane attaches its own terminal(s) to every chip,
  // appended to chip_nodes() in plane order. "Logical" accessors expose the
  // plane-0 view, which is what chip-level consumers (traffic patterns,
  // workload striping, placement) operate on; the Simulator remaps each
  // packet onto its selected plane's twin terminals at injection.

  /// Marks the start of the next plane: routers/channels/terminals added
  /// after this call belong to it. Call once per rail, before wiring it.
  void begin_plane();
  /// Seals the plane partition after the last rail is wired and the network
  /// is finalized: freezes the per-plane id ranges, the per-chip plane
  /// segments, and the selection policy (an opaque route::PlanePolicy
  /// value). Validates that every plane owns at least one terminal node on
  /// every chip and that each chip's node list is plane-contiguous.
  void seal_planes(int policy);
  [[nodiscard]] bool has_planes() const { return planes_sealed_; }
  /// Number of planes (1 for classic single-fabric builds).
  [[nodiscard]] int num_planes() const {
    return planes_sealed_
               ? static_cast<int>(plane_node_base_.size()) - 1
               : 1;
  }
  /// The sealed plane-selection policy (route::PlanePolicy as int).
  [[nodiscard]] int plane_policy() const { return plane_policy_; }
  /// Plane owning node `n` (0 for single-fabric builds). K is tiny, so a
  /// linear scan over the prefix bases beats a branchy binary search.
  [[nodiscard]] int plane_of_node(NodeId n) const {
    if (!planes_sealed_) return 0;
    const auto u = static_cast<std::uint32_t>(n);
    int p = 0;
    while (p + 2 < static_cast<int>(plane_node_base_.size()) &&
           u >= plane_node_base_[static_cast<std::size_t>(p) + 1])
      ++p;
    return p;
  }
  /// Plane owning channel `c` (channels never cross planes).
  [[nodiscard]] int plane_of_chan(ChanId c) const {
    return plane_of_node(chan(c).src);
  }
  /// The logical (plane-0) terminal list: what traffic patterns draw
  /// sources/destinations from. Identical to terminals() when single-plane.
  [[nodiscard]] const std::vector<NodeId>& logical_terminals() const {
    return planes_sealed_ ? logical_terminals_ : terminal_nodes_;
  }
  /// Number of logical (plane-0) nodes of `chip` — they are the first
  /// entries of chip_nodes(chip), so indexing [0, logical_chip_size) of
  /// that list addresses the logical view in place.
  [[nodiscard]] std::size_t logical_chip_size(ChipId chip) const {
    if (!planes_sealed_) return chip_nodes(chip).size();
    const auto base =
        static_cast<std::size_t>(chip) *
        (static_cast<std::size_t>(num_planes()) + 1);
    return chip_plane_off_[base + 1] - chip_plane_off_[base];
  }
  /// The plane-`plane` twin of terminal `n`: the node at the same slot
  /// (mod the plane's per-chip node count) of the same logical chip.
  /// Identity for plane 0 and for single-fabric builds.
  [[nodiscard]] NodeId plane_twin(NodeId n, int plane) const {
    if (!planes_sealed_ || plane == 0) return n;
    const auto chip = static_cast<std::size_t>(chip_of(n));
    const auto base = chip * (static_cast<std::size_t>(num_planes()) + 1) +
                      static_cast<std::size_t>(plane);
    const std::uint32_t off = chip_plane_off_[base];
    const std::uint32_t cnt = chip_plane_off_[base + 1] - off;
    const std::uint32_t slot =
        node_plane_slot_[static_cast<std::size_t>(n)] % cnt;
    return chip_nodes_[chip][off + slot];
  }

  // ---- wafer-on-wafer stack (topo/wafer_stack.hpp builds it) -------------
  // W copies of one fabric stacked in this network. Unlike planes (redundant
  // rails over SHARED logical chips), wafers scale OUT: each wafer owns its
  // own chip range (chips are laid out wafer-major: wafer w covers
  // [w * chips_per_wafer, (w+1) * chips_per_wafer)), terminals of every
  // wafer are ordinary traffic endpoints, and cross-wafer packets cross
  // exactly one vertical inter-wafer cable (LinkType::Vertical). Planes and
  // wafers are mutually exclusive axes of one network.

  /// Marks the start of the next wafer: routers/chips/terminals added after
  /// this call belong to it, and builder-local chip ids are offset by the
  /// chips already present so every wafer's chips are globally distinct.
  void begin_wafer();
  /// Seals the wafer partition after the last wafer (and the vertical
  /// cables) are wired and the network is finalized: freezes the per-wafer
  /// node/chip ranges. Validates that every wafer spans the same number of
  /// chips.
  void seal_wafers();
  [[nodiscard]] bool has_wafers() const { return wafers_sealed_; }
  /// Number of stacked wafers (1 for classic single-fabric builds).
  [[nodiscard]] int num_wafers() const {
    return wafers_sealed_
               ? static_cast<int>(wafer_node_base_.size()) - 1
               : 1;
  }
  [[nodiscard]] std::size_t chips_per_wafer() const {
    return wafers_sealed_ ? wafer_chip_base_[1] : num_chips();
  }
  /// Wafer owning node `n` (0 for single-fabric builds). Vertical cables
  /// belong to no wafer leg; their endpoint nodes resolve per wafer.
  [[nodiscard]] int wafer_of_node(NodeId n) const {
    if (!wafers_sealed_) return 0;
    const auto u = static_cast<std::uint32_t>(n);
    int w = 0;
    while (w + 2 < static_cast<int>(wafer_node_base_.size()) &&
           u >= wafer_node_base_[static_cast<std::size_t>(w) + 1])
      ++w;
    return w;
  }
  [[nodiscard]] int wafer_of_chip(ChipId c) const {
    return wafers_sealed_
               ? static_cast<int>(static_cast<std::uint32_t>(c) /
                                  wafer_chip_base_[1])
               : 0;
  }

 private:
  /// (Re)initializes the dynamic words of every per-port record.
  void init_port_dynamic_state();

 public:

  // ---- accessors ----
  [[nodiscard]] std::size_t num_routers() const { return routers_.size(); }
  [[nodiscard]] std::size_t num_channels() const { return channels_.size(); }
  [[nodiscard]] std::size_t num_chips() const { return chip_nodes_.size(); }
  /// Virtual channels per port (uniform network-wide; set by finalize()).
  [[nodiscard]] int num_vcs() const { return num_vcs_; }
  /// Logical per-VC input-buffer depth in flits (what credits enforce).
  [[nodiscard]] int vc_buf() const { return vc_buf_; }
  [[nodiscard]] bool finalized() const { return num_vcs_ > 0; }

  Router& router(NodeId id) { return routers_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Router& router(NodeId id) const {
    return routers_[static_cast<std::size_t>(id)];
  }
  Channel& chan(ChanId id) { return channels_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Channel& chan(ChanId id) const {
    return channels_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] const std::vector<NodeId>& chip_nodes(ChipId chip) const {
    return chip_nodes_[static_cast<std::size_t>(chip)];
  }
  [[nodiscard]] ChipId chip_of(NodeId node) const {
    return node_chip_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] const std::vector<NodeId>& terminals() const {
    return terminal_nodes_;
  }

  [[nodiscard]] RoutingAlgorithm* routing() const { return routing_.get(); }
  [[nodiscard]] const TopoInfo* topo_info() const { return topo_.get(); }
  template <typename T>
  [[nodiscard]] const T& topo() const {
    const auto* t = dynamic_cast<const T*>(topo_.get());
    assert(t && "topology info type mismatch");
    return *t;
  }

  /// Convenience: output-port index at chan's source router.
  /// Backed by a compact array (finalized networks) so routing algorithms
  /// don't pull a whole Channel cache line for one port number.
  [[nodiscard]] PortIx out_port_of(ChanId c) const {
    return finalized() ? src_port_by_chan_[static_cast<std::size_t>(c)]
                       : chan(c).src_port;
  }

  std::vector<Router>& routers() { return routers_; }
  std::vector<Channel>& channels() { return channels_; }

  // ---- flat VC state (valid once finalized) ----
  /// Flat index of input port `p` at router `r` (network-wide).
  [[nodiscard]] std::uint32_t in_port_index(NodeId r, PortIx p) const {
    return in_port_base_[static_cast<std::size_t>(r)] +
           static_cast<std::uint32_t>(p);
  }
  /// Flat index of output port `p` at router `r` (network-wide).
  [[nodiscard]] std::uint32_t out_port_index(NodeId r, PortIx p) const {
    return out_port_base_[static_cast<std::size_t>(r)] +
           static_cast<std::uint32_t>(p);
  }
  [[nodiscard]] std::uint32_t num_in_ports() const { return num_in_ports_; }
  [[nodiscard]] std::uint32_t num_out_ports() const { return num_out_ports_; }
  /// Flat per-node mirrors of Router::kind / Router::eject_port, so routing
  /// algorithms stay off the AoS Router objects in their per-flit path.
  [[nodiscard]] NodeKind kind_of(NodeId r) const {
    return static_cast<NodeKind>(node_meta_[static_cast<std::size_t>(r)] &
                                 0xff);
  }
  [[nodiscard]] PortIx eject_port_of(NodeId r) const {
    return static_cast<PortIx>(node_meta_[static_cast<std::size_t>(r)] >> 8);
  }

  /// Prefetch hooks: addresses of the per-router offset entries.
  [[nodiscard]] const std::uint32_t* in_port_base_addr(NodeId r) const {
    return &in_port_base_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const std::uint32_t* out_port_base_addr(NodeId r) const {
    return &out_port_base_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] std::uint32_t num_in_ports_of(NodeId r) const {
    return in_port_base_[static_cast<std::size_t>(r) + 1] -
           in_port_base_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] std::uint32_t num_out_ports_of(NodeId r) const {
    return out_port_base_[static_cast<std::size_t>(r) + 1] -
           out_port_base_[static_cast<std::size_t>(r)];
  }

  /// Flat index of input VC `v` of input port `p` at router `r`.
  [[nodiscard]] std::uint32_t in_vc_index(NodeId r, PortIx p, VcIx v) const {
    return (in_port_base_[static_cast<std::size_t>(r)] +
            static_cast<std::uint32_t>(p)) *
               static_cast<std::uint32_t>(num_vcs_) +
           static_cast<std::uint32_t>(v);
  }
  /// Flat index of output VC `v` of output port `p` at router `r`.
  [[nodiscard]] std::uint32_t out_vc_index(NodeId r, PortIx p, VcIx v) const {
    return (out_port_base_[static_cast<std::size_t>(r)] +
            static_cast<std::uint32_t>(p)) *
               static_cast<std::uint32_t>(num_vcs_) +
           static_cast<std::uint32_t>(v);
  }

  /// The input-VC FIFO arena: one power-of-two-stride ring per input VC,
  /// indexed by in_vc_index(). Each VC's 64-bit control word pairs its
  /// ring head/size with the packed pipeline metadata below.
  FlitFifoArena& fifos() { return fifos_; }
  [[nodiscard]] const FlitFifoArena& fifos() const { return fifos_; }

  // ---- packed input-VC metadata word -------------------------------------
  // The router-pipeline state of one input VC, packed into the high 32 bits
  // of its FIFO control word (FlitFifoArena::meta/set_meta) so one load
  // covers the whole RC/VA/SA metadata:
  //
  //   bits 16..31: granted output *port* (RC decision)
  //   bits  8..15: granted output *VC*   (RC decision)
  //   bits  0..7 : IvcState — Idle (head flit needs RC/VA), Routed (RC done,
  //                waiting for VA to claim the output VC), Active (output VC
  //                held; SA streams the packet until the tail flit resets
  //                the word to Idle).

  /// Packs an input-VC metadata word (see the layout above).
  static constexpr std::uint32_t pack_ivc(PortIx port, VcIx vc,
                                          IvcState st) {
    return (static_cast<std::uint32_t>(static_cast<std::uint16_t>(port))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<std::uint8_t>(vc)) << 8) |
           static_cast<std::uint32_t>(st);
  }
  /// Pipeline FSM state of a packed metadata word.
  static constexpr IvcState ivc_state_of(std::uint32_t meta) {
    return static_cast<IvcState>(meta & 0xff);
  }
  /// Granted output VC of a packed metadata word (valid unless Idle).
  static constexpr std::uint32_t ivc_vc_of(std::uint32_t meta) {
    return (meta >> 8) & 0xff;
  }
  /// Granted output port of a packed metadata word (valid unless Idle).
  static constexpr std::uint32_t ivc_port_of(std::uint32_t meta) {
    return meta >> 16;
  }

  // ---- per-output-port record -------------------------------------------
  // Everything SA/VA/credit handling touches for one output port lives in
  // one compact record (`port_stride()` u32 words, `5 + num_vcs`) in
  // port_state_. Word 0 packs the three per-grant counters; the tail is a
  // u16 lane region holding the per-VC credit words and the SA requester
  // list:
  //
  //   word 0          : SA requester count (u8) | round-robin cursor
  //                     (u8, bits 8..15) | channel token bucket (u16,
  //                     bits 16..31; micro-tokens — a grant costs
  //                     width_den tokens, a cycle refills width_num, so
  //                     fractional-bandwidth links meter exactly; the cap
  //                     width_num + width_den is <= 510, far inside u16)
  //   word kTokenCycle: cycle of the last token refresh (truncated u32)
  //   word kDstVcBase : flat input-VC base of the downstream port
  //   word kDstNode   : downstream router (kInvalidNode for ejection ports)
  //   word kLinkMeta  : latency | link type | width_num | width_den (u8 each)
  //   words kOvc0..   : u16 lanes, addressed via ovc16(rec):
  //                       lanes [0, nvc)     one per output VC:
  //                                          credits << 1 | busy bit
  //                                          (busy = some input VC holds
  //                                          this output VC, wormhole
  //                                          exclusivity; credits = free
  //                                          downstream buffer flits)
  //                       lanes [nvc, 2*nvc) SA requesters, encoded
  //                                          (in_port << 8) | vc
  //
  // A port never has more than num_vcs requesters (each output VC is held
  // by at most one input VC), so both the record size and the u8 count are
  // static-safe. finalize() rejects (ScenarioError) any build whose
  // vc_buf, per-router input-port count, or flat output-port count would
  // overflow the packed widths. In the sharded engine a record is written
  // only by its owning router's shard.
  static constexpr std::uint32_t kTokenCycle = 1;
  static constexpr std::uint32_t kDstVcBase = 2;
  static constexpr std::uint32_t kDstNode = 3;
  static constexpr std::uint32_t kLinkMeta = 4;
  static constexpr std::uint32_t kOvc0 = 5;
  /// First u16 lane of the output-VC region (lane units: 2 * kOvc0).
  static constexpr std::uint32_t kOvcLane0 = 2 * kOvc0;
  /// Credit wheel events address a u16 lane directly: the event's vc_flat
  /// is `(pflat << kPortLaneBits) | (kOvcLane0 + vc)`. 9 bits covers
  /// kOvcLane0 + 255 < 512 lanes; finalize() checks pflat fits the rest.
  static constexpr std::uint32_t kPortLaneBits = 9;
  static constexpr std::uint32_t kLaneMask = (1u << kPortLaneBits) - 1;

  /// Per-port record stride in u32 words (5 + num_vcs; NOT a power of two).
  [[nodiscard]] std::uint32_t port_stride() const { return port_stride_; }
  /// The record of flat output port `pflat` (see the layout above).
  std::uint32_t* port_rec(std::uint32_t pflat) {
    return &port_state_[static_cast<std::size_t>(pflat) * port_stride_];
  }
  [[nodiscard]] const std::uint32_t* port_rec(std::uint32_t pflat) const {
    return &port_state_[static_cast<std::size_t>(pflat) * port_stride_];
  }
  /// u16 view of a record's output-VC + requester lane region.
  static std::uint16_t* ovc16(std::uint32_t* rec) {
    return reinterpret_cast<std::uint16_t*>(rec + kOvc0);
  }
  static const std::uint16_t* ovc16(const std::uint32_t* rec) {
    return reinterpret_cast<const std::uint16_t*>(rec + kOvc0);
  }
  std::vector<std::uint32_t, HugePageAllocator<std::uint32_t>>&
  port_state() {
    return port_state_;
  }

  /// Credit-return wiring of one input port (src == kInvalidNode for
  /// injection ports, which return no credits). Packed to 8 bytes so the
  /// per-grant load is one naturally-aligned access: `meta` holds the
  /// channel latency in the top 8 bits and the flat index of the upstream
  /// output port in the low 24 (finalize() checks it fits).
  struct CreditReturn {
    std::uint32_t meta = 0;
    NodeId src = kInvalidNode;

    [[nodiscard]] std::uint32_t credit_port() const {
      return meta & 0xffffff;
    }
    [[nodiscard]] std::uint32_t latency() const { return meta >> 24; }
  };
  static_assert(sizeof(CreditReturn) == 8);
  std::vector<CreditReturn>& credit_return_by_port() {
    return credit_return_by_port_;
  }

  /// Buffered-flit occupancy of the downstream input port fed by channel
  /// `c`, read from the upstream output port's credit counters (the UGAL-L
  /// congestion signal used by the adaptive routing schemes).
  [[nodiscard]] int channel_occupancy(ChanId c) const {
    if (c == kInvalidChan) return 0;
    const Channel& ch = chan(c);
    const std::uint16_t* ov =
        ovc16(port_rec(out_port_index(ch.src, ch.src_port)));
    int used = 0;
    for (int v = 0; v < num_vcs_; ++v)
      used += vc_buf_ - static_cast<int>(ov[v] >> 1);
    return used;
  }

 private:
  std::vector<Router> routers_;
  std::vector<Channel> channels_;
  std::vector<std::vector<NodeId>> chip_nodes_;
  std::vector<ChipId> node_chip_;
  std::vector<NodeId> terminal_nodes_;
  std::unique_ptr<RoutingAlgorithm> routing_;
  std::unique_ptr<TopoInfo> topo_;
  int num_vcs_ = 0;
  int vc_buf_ = 0;

  // Flat per-network VC state (finalize() sizes everything).
  std::vector<std::uint32_t> in_port_base_;   ///< Per router: first input port.
  std::vector<std::uint32_t> out_port_base_;  ///< Per router: first output port.
  std::uint32_t num_in_ports_ = 0;
  std::uint32_t num_out_ports_ = 0;
  std::vector<std::uint32_t> node_meta_;  ///< eject_port << 8 | kind.
  FlitFifoArena fifos_;  ///< FIFO rings + per-VC meta words (pack_ivc()).
  /// Per-output-port records (see the offset constants above).
  std::vector<std::uint32_t, HugePageAllocator<std::uint32_t>> port_state_;
  std::uint32_t port_stride_ = 0;  ///< Record stride in u32 words (5 + nvc).
  std::vector<CreditReturn> credit_return_by_port_;
  std::vector<PortIx> src_port_by_chan_;  ///< Compact chan -> src_port.
  // Fault mask (empty = all live; see enable_fault_mask()).
  std::vector<std::uint8_t> chan_alive_;
  std::vector<std::uint8_t> node_alive_;
  std::size_t dead_channels_ = 0;
  std::size_t dead_nodes_ = 0;
  // Online-resilience state (see the fault-event-timeline section above).
  std::shared_ptr<const FaultSchedule> fault_schedule_;
  std::vector<std::uint8_t> baseline_chan_alive_;
  std::vector<std::uint8_t> baseline_node_alive_;
  std::uint64_t fault_epoch_ = 0;
  // Multi-plane partition (static topology metadata; see seal_planes()).
  std::vector<std::uint32_t> plane_node_base_;  ///< Starts; +sentinel sealed.
  std::vector<std::uint32_t> plane_term_base_;  ///< Into terminal_nodes_.
  std::vector<NodeId> logical_terminals_;       ///< Plane-0 terminal list.
  /// Per chip: K+1 offsets into chip_nodes(chip) bounding each plane's
  /// segment (flattened [chip * (K+1) + plane]).
  std::vector<std::uint32_t> chip_plane_off_;
  /// Per node: its slot within its chip's plane segment (terminals only).
  std::vector<std::uint32_t> node_plane_slot_;
  bool planes_sealed_ = false;
  int plane_policy_ = 0;
  // Wafer-stack partition (static topology metadata; see seal_wafers()).
  std::vector<std::uint32_t> wafer_node_base_;  ///< Starts; +sentinel sealed.
  std::vector<std::uint32_t> wafer_chip_base_;  ///< Per-wafer first chip id.
  ChipId chip_offset_ = 0;  ///< Added to make_terminal chip ids (wafers).
  bool wafers_sealed_ = false;
};

}  // namespace sldf::sim
