// Arena-backed flit FIFO storage + per-VC state words for every virtual
// channel in a network.
//
// Instead of one lazily-allocated ring buffer per VC (pointer chase + a `%`
// on every push/pop), all FIFO rings live in a single contiguous arena.
// Each VC owns a power-of-two slice (`stride` flits), so ring indexing is a
// shift + mask and neighbouring VCs of a port share cache lines. The
// *logical* capacity (what `full()` enforces and what the credit protocol
// sees) stays exactly the configured `vc_buf_flits`; only the storage
// stride is rounded up, so non-power-of-two buffer depths behave
// bit-identically to per-VC rings — just without the division.
//
// Every VC also has one 64-bit control word holding the ring head/size
// (low half) and the router-pipeline metadata word (high half, see
// Network::pack_ivc). The engine touches head/size and metadata together
// on almost every access, so pairing them costs one cache line instead of
// two.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/hugepage.hpp"
#include "sim/flit.hpp"

namespace sldf::sim {

class FlitFifoArena {
 public:
  /// Sizes the arena for `num_fifos` rings of logical capacity `capacity`
  /// flits each (capacity <= 65535 so head and size pack into one half
  /// word), with every metadata half initialized to `meta_init`. Existing
  /// contents are discarded.
  void init(std::size_t num_fifos, std::uint32_t capacity,
            std::uint32_t meta_init) {
    assert(capacity >= 1 && capacity <= 0xffff);
    cap_ = capacity;
    const std::uint32_t stride = std::bit_ceil(capacity);
    mask_ = stride - 1;
    shift_ = static_cast<std::uint32_t>(std::countr_zero(stride));
    slots_.assign(num_fifos << shift_, Flit{});
    hm_.assign(num_fifos,
               static_cast<std::uint64_t>(meta_init) << 32);
  }

  /// Empties every ring and resets every metadata word; keeps the storage.
  void reset(std::uint32_t meta_init) {
    std::fill(hm_.begin(), hm_.end(),
              static_cast<std::uint64_t>(meta_init) << 32);
  }

  [[nodiscard]] std::size_t num_fifos() const { return hm_.size(); }
  [[nodiscard]] std::uint32_t capacity() const { return cap_; }
  [[nodiscard]] std::uint32_t stride() const { return mask_ + 1; }

  [[nodiscard]] std::uint32_t size(std::size_t i) const {
    return static_cast<std::uint32_t>(hm_[i]) >> 16;
  }
  [[nodiscard]] bool empty(std::size_t i) const {
    return (hm_[i] & 0xffff0000u) == 0;
  }
  [[nodiscard]] bool full(std::size_t i) const { return size(i) == cap_; }

  void push(std::size_t i, Flit f) {
    const std::uint64_t w = hm_[i];
    const auto hs = static_cast<std::uint32_t>(w);
    assert((hs >> 16) < cap_);
    slots_[(i << shift_) + (((hs & 0xffff) + (hs >> 16)) & mask_)] = f;
    hm_[i] = w + 0x10000;
  }

  [[nodiscard]] const Flit& front(std::size_t i) const {
    assert(!empty(i));
    return slots_[(i << shift_) +
                  (static_cast<std::uint32_t>(hm_[i]) & 0xffff)];
  }

  Flit pop(std::size_t i) {
    const std::uint64_t w = hm_[i];
    const auto hs = static_cast<std::uint32_t>(w);
    assert((hs >> 16) > 0);
    const Flit f = slots_[(i << shift_) + (hs & 0xffff)];
    hm_[i] = (w & 0xffffffff00000000ull) |
             ((((hs & 0xffff) + 1) & mask_)) |
             ((hs - 0x10000) & 0xffff0000u);
    return f;
  }

  /// Router-pipeline metadata half-word (see Network::pack_ivc).
  [[nodiscard]] std::uint32_t meta(std::size_t i) const {
    return static_cast<std::uint32_t>(hm_[i] >> 32);
  }
  void set_meta(std::size_t i, std::uint32_t m) {
    hm_[i] = (hm_[i] & 0xffffffffull) | (static_cast<std::uint64_t>(m) << 32);
  }

  /// Address of the control word (engine prefetch hook).
  [[nodiscard]] const std::uint64_t* word_addr(std::size_t i) const {
    return &hm_[i];
  }

  /// Peeks the `k`-th buffered flit of ring `i` (0 == front, k < size(i)).
  /// Used by the fault-timeline extraction sweep to scan a ring without
  /// disturbing it.
  [[nodiscard]] const Flit& at(std::size_t i, std::uint32_t k) const {
    assert(k < size(i));
    const auto hs = static_cast<std::uint32_t>(hm_[i]);
    return slots_[(i << shift_) + (((hs & 0xffff) + k) & mask_)];
  }

  /// Empties ring `i` (head and size -> 0) without touching its metadata
  /// half. The extraction sweep clears and re-pushes survivors through
  /// push(), so a rebuilt ring is in a canonical head-0 layout.
  void clear_ring(std::size_t i) { hm_[i] &= 0xffffffff00000000ull; }

  // Checkpoint hooks: raw access to the control words and flit slots so
  // Network::{save,load}_dynamic_state can serialize the arena verbatim.
  [[nodiscard]] const std::uint64_t* hm_data() const { return hm_.data(); }
  std::uint64_t* hm_data() { return hm_.data(); }
  [[nodiscard]] const Flit* slots_data() const { return slots_.data(); }
  Flit* slots_data() { return slots_.data(); }
  [[nodiscard]] std::size_t slots_size() const { return slots_.size(); }

 private:
  std::vector<Flit, HugePageAllocator<Flit>> slots_;
  /// Per FIFO: ring head (bits 0..15), size (16..31), metadata (32..63).
  std::vector<std::uint64_t, HugePageAllocator<std::uint64_t>> hm_;
  std::uint32_t cap_ = 0;
  std::uint32_t mask_ = 0;
  std::uint32_t shift_ = 0;
};

}  // namespace sldf::sim
