// Fixed-capacity ring buffer for one virtual channel's input FIFO.
// Storage is allocated lazily on first push so that huge idle networks stay
// memory-cheap.
#pragma once

#include <cassert>
#include <memory>

#include "sim/flit.hpp"

namespace sldf::sim {

class VcFifo {
 public:
  VcFifo() = default;
  explicit VcFifo(std::uint32_t capacity) : cap_(capacity) {}

  void set_capacity(std::uint32_t capacity) {
    assert(size_ == 0);
    cap_ = capacity;
    buf_.reset();
  }

  [[nodiscard]] std::uint32_t capacity() const { return cap_; }
  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == cap_; }

  void push(Flit f) {
    assert(size_ < cap_);
    if (!buf_) buf_ = std::make_unique<Flit[]>(cap_);
    buf_[(head_ + size_) % cap_] = f;
    ++size_;
  }

  [[nodiscard]] const Flit& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  Flit pop() {
    assert(size_ > 0);
    const Flit f = buf_[head_];
    head_ = (head_ + 1) % cap_;
    --size_;
    return f;
  }

 private:
  std::unique_ptr<Flit[]> buf_;
  std::uint32_t cap_ = 0;
  std::uint32_t head_ = 0;
  std::uint32_t size_ = 0;
};

}  // namespace sldf::sim
