// Routing algorithm interface. Route computation runs once per packet per
// router (when the head flit reaches the front of an Idle input VC).
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/flit.hpp"

namespace sldf::sim {

class Network;
struct TopoInfo;

struct RouteDecision {
  PortIx out_port = kInvalidPort;
  VcIx out_vc = kInvalidVc;
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  /// Binds the topology metadata this algorithm routes over, plus the VC
  /// budget that was sized for it. Called once at install time (before
  /// finalize). Algorithms that cache a TopoInfo downcast override this:
  /// under multi-plane builds `net.topo<T>()` holds the *aggregate* info,
  /// so lazy first-use downcasting would fail — the plane dispatcher hands
  /// each child its own info here instead. `num_vcs` is the budget computed
  /// for this fabric; the finalized network may carry more VCs (mixed
  /// planes finalize with the max), so per-fabric VC clamps should use it
  /// rather than Network::num_vcs(). Default: no-op.
  virtual void bind_topo(const TopoInfo& /*info*/, int /*num_vcs*/) {}

  /// Called at packet creation so the algorithm can seed per-packet routing
  /// state (initial VC class, Valiant intermediate group, ...).
  virtual void init_packet(const Network& net, Packet& pkt, Rng& rng) = 0;

  /// Computes the next hop for `pkt` whose head flit sits at `router`,
  /// having arrived through input port `in_port` (the injection port for
  /// freshly injected packets). May mutate the packet's routing state
  /// (phase, target, vc_class). Returning the router's eject port delivers
  /// the packet.
  virtual RouteDecision route(const Network& net, NodeId router,
                              PortIx in_port, Packet& pkt) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace sldf::sim
