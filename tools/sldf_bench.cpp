// sldf-bench — cycle-engine throughput benchmark.
//
// Runs the perf preset suite (bench/perf_engine.*) and writes
// BENCH_sim.json with simulated cycles/sec, flit-hops/sec, and peak RSS
// per preset. Use it to record the simulator's perf trajectory and to
// guard against engine regressions:
//
//   sldf-bench                  # full suite (radix-16/32 + fig11a sweep)
//   sldf-bench --quick          # radix-16 point presets only (CI smoke)
//   sldf-bench --list           # Markdown preset table (docs/PERFORMANCE.md)
//   sldf-bench --out results/BENCH_sim.json --seed 7
#include <cstdio>
#include <exception>

#include "bench/perf_engine.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "topo/faults.hpp"
#include "trace/trace.hpp"

using namespace sldf;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    if (cli.has("help")) {
      std::printf(
          "usage: sldf-bench [--quick] [--list] [--out FILE] [--seed N]\n"
          "\n"
          "  --quick     radix-16 point presets with short windows (CI)\n"
          "  --list      print the Markdown preset table (the GENERATED\n"
          "              block embedded in docs/PERFORMANCE.md) and exit\n"
          "  --out FILE  output path (default BENCH_sim.json)\n"
          "  --seed N    RNG seed for every preset (default 1)\n");
      return 0;
    }
    if (cli.has("list")) {
      std::fputs(bench::render_preset_table().c_str(), stdout);
      return 0;
    }
    const bool quick = cli.has("quick");
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const std::string out = cli.get("out", "BENCH_sim.json");

    const auto results = bench::run_perf_suite(quick, seed);

    std::printf("%-14s %7s %12s %14s %16s %10s\n", "preset", "points",
                "cycles", "cycles/sec", "flit-hops/sec", "rss(MB)");
    for (const auto& r : results) {
      std::printf("%-14s %7d %12llu %14.0f %16.0f %10.1f\n",
                  r.preset.c_str(), r.points,
                  static_cast<unsigned long long>(r.cycles),
                  r.cycles_per_sec, r.flit_hops_per_sec, r.peak_rss_mb);
    }

    bench::write_bench_json(out, results, quick);
    std::printf("wrote %s\n", out.c_str());
    return 0;
  } catch (const topo::FaultError& e) {
    std::fprintf(stderr, "sldf-bench: error: fault timeline: %s\n", e.what());
    return 1;
  } catch (const trace::TraceError& e) {
    std::fprintf(stderr, "sldf-bench: error: trace: %s\n", e.what());
    return 1;
  } catch (const ScenarioError& e) {
    std::fprintf(stderr, "sldf-bench: error: scenario: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sldf-bench: error: %s\n", e.what());
    return 1;
  }
}
