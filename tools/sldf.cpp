// sldf — the unified scenario driver. Runs any ScenarioSpec: topology
// preset, routing mode, VC scheme, and traffic pattern or closed-loop
// workload are registry lookups, so every experiment in the paper's
// evaluation grid is a config file (or a handful of flags) instead of a
// dedicated binary.
//
//   sldf --topology=radix16-swless --traffic=uniform --max_rate=0.8
//   sldf --config configs/fig11a.conf --out results/fig11a.csv
//   sldf --workload=ring-allreduce --workload.kib=64 --topo.g=1
//
// A config file uses `key = value` lines; `[series NAME]` sections run
// several labelled series as one experiment, each starting from the shared
// base keys above the first section (sections are independent of one
// another). CLI scenario keys override the file for every series.
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/thread_pool.hpp"
#include "core/docgen.hpp"
#include "core/scenario.hpp"
#include "trace/tenants.hpp"
#include "trace/trace.hpp"
#include "traffic/pattern.hpp"
#include "workload/registry.hpp"

using namespace sldf;

namespace {

const std::vector<std::string> kDriverFlags = {
    "config",   "out",   "series-threads", "list", "doc-keys",
    "print",    "serve", "emit-trace",     "help"};

void print_usage() {
  std::printf(
      "usage: sldf [--config FILE] [--key=value ...]\n"
      "\n"
      "driver flags:\n"
      "  --config FILE        load a scenario file (supports [series NAME]\n"
      "                       sections; CLI keys override every series)\n"
      "  --out FILE.csv       append all series to a CSV file\n"
      "  --series-threads N   run N series concurrently (default 1)\n"
      "  --list               list topologies/patterns/workloads with their\n"
      "                       options and defaults, then exit\n"
      "  --doc-keys           print the generated Markdown scenario\n"
      "                       reference (the README embeds it verbatim)\n"
      "  --print              print the resolved spec(s) and exit\n"
      "  --serve              batch mode: read one request per stdin line\n"
      "                       (whitespace-separated key=value scenario keys,\n"
      "                       CLI keys as the base); finalized networks are\n"
      "                       cached across requests that share topology/\n"
      "                       mode/scheme/topo.*/fault.* keys. An empty\n"
      "                       line or 'quit' exits; request errors are\n"
      "                       reported per request, not fatal\n"
      "  --emit-trace FILE    write the (single) series' workload graph as\n"
      "                       an sldf-trace file instead of running it\n"
      "  --help               this text\n"
      "\n"
      "scenario keys (also valid in config files):\n"
      "  label topology traffic workload mode scheme rates max_rate points\n"
      "  stop_factor threads shards warmup measure drain pkt_len seed\n"
      "  max_src_queue fault.rate fault.kind fault.seed fault.chips\n"
      "  plane.count plane.mix plane.policy wafer.count wafer.latency\n"
      "  wafer.width tenants tenants.isolation trace.file trace.seed\n"
      "  topo.<param> traffic.<option> workload.<option> tenant<i>.<field>\n"
      "\n"
      "  fault.rate=F deterministically fails F of the fault.kind\n"
      "  (any|intra|local|global|vertical) cables (seeded by fault.seed)\n"
      "  and routes around them; fault.chips=I,J,... fails whole chips.\n"
      "\n"
      "  wafer.count=W stacks W copies of the topology bonded by vertical\n"
      "  inter-wafer cables (one vertical hop max); mutually exclusive\n"
      "  with plane.count.\n"
      "\n"
      "  --threads=N runs N sweep points of every series concurrently\n"
      "  (N=auto or 0 picks the hardware thread count); it overrides the\n"
      "  config file's threads key, like any scenario key.\n"
      "\n"
      "  --shards=N shards each simulation across N threads (deterministic\n"
      "  two-phase engine; results are bit-identical for every N). auto/0\n"
      "  defers to the SLDF_SHARDS environment variable. Use shards for one\n"
      "  big point, threads for many points.\n"
      "\n"
      "  workload=NAME switches a series from open-loop rate sweeps to one\n"
      "  closed-loop message-level run reporting completion cycles and\n"
      "  GB/s/chip (see --list for workloads and their options).\n"
      "\n"
      "  tenants=N switches to one shared multi-tenant serving run: each\n"
      "  tenant<i>.workload/.placement/.chips names a job placed on its own\n"
      "  disjoint chips (contiguous|scattered, fault-dead chips skipped).\n"
      "  All jobs execute in ONE simulation; the report is per-tenant TTC,\n"
      "  p50/p99 message latency, GB/s/chip, and (with tenants.isolation=1,\n"
      "  the default) the interference ratio vs running alone.\n");
}

void print_entry_options(const std::vector<core::OptionDoc>& options) {
  for (const auto& o : options)
    std::printf("        %-18s %-28s default %s\n", o.key.c_str(),
                o.type.c_str(), o.def.c_str());
}

template <typename Registry>
void print_registry(const Registry& reg) {
  for (const auto& name : reg.names()) {
    const core::RegistryDoc& doc = reg.doc(name);
    std::printf("  %-28s %s\n", name.c_str(), doc.summary.c_str());
    print_entry_options(doc.options);
  }
}

void print_registries() {
  std::printf("topologies (override with topo.<param>=value):\n");
  print_registry(core::TopologyRegistry::instance());
  std::printf("\ntraffic patterns (options: traffic.<opt>=value):\n");
  print_registry(traffic::TrafficRegistry::instance());
  std::printf(
      "\nworkloads (closed-loop; options: workload.<opt>=value,\n"
      "plus runner keys accepted by every workload):\n");
  print_entry_options(workload::runner_option_docs());
  print_registry(workload::WorkloadRegistry::instance());
  std::printf(
      "\nroute modes:  minimal | valiant | adaptive\n"
      "VC schemes:   baseline | reduced | reduced-safe\n");
}

/// The scenario keys that shape the finalized network (everything
/// build_network consumes). Requests sharing this canonical subset reuse
/// one cached Network in serve mode; per-run keys (traffic, rates, seed,
/// workload, ...) deliberately do not key the cache.
std::string network_cache_key(const core::ScenarioSpec& spec) {
  std::string key;
  for (const auto& [k, v] : spec.to_kv()) {
    if (k == "topology" || k == "mode" || k == "scheme" ||
        k.rfind("topo.", 0) == 0 || k.rfind("fault.", 0) == 0 ||
        k.rfind("plane.", 0) == 0 || k.rfind("wafer.", 0) == 0)
      key += k + "=" + v + ";";
  }
  return key;
}

/// `sldf --serve`: one request per stdin line, each a whitespace-separated
/// list of key=value scenario settings applied over the CLI base spec.
/// Finalized networks are cached across requests (a fault timeline is
/// cache-safe: runs restore the captured cycle-0 baseline on reset).
int run_serve(const Cli& cli) {
  const core::ScenarioSpec base = core::spec_from_cli(cli, {}, nullptr);
  std::map<std::string, std::unique_ptr<sim::Network>> cache;
  std::printf(
      "sldf: serve mode (one key=value request per line; empty line or "
      "'quit' exits)\n");
  std::string line;
  std::size_t reqno = 0;
  while (std::getline(std::cin, line)) {
    const std::string req = Cli::trim(line);
    if (req.empty() || req == "quit") break;
    ++reqno;
    try {
      core::ScenarioSpec spec = base;
      std::stringstream ss(req);
      std::string tok;
      while (ss >> tok) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
          throw std::invalid_argument("serve request token '" + tok +
                                      "' expects key=value");
        spec.set(tok.substr(0, eq), tok.substr(eq + 1));
      }
      if (spec.tenants > 0)
        throw std::invalid_argument(
            "serve mode does not run multi-tenant series; use a config "
            "file");
      const std::string key = network_cache_key(spec);
      auto it = cache.find(key);
      if (it == cache.end()) {
        auto net = std::make_unique<sim::Network>();
        core::build_network(*net, spec);
        it = cache.emplace(key, std::move(net)).first;
        std::printf("request %zu [%s]: network-cache miss (%zu cached)\n",
                    reqno, spec.label.c_str(), cache.size());
      } else {
        std::printf("request %zu [%s]: network-cache hit\n", reqno,
                    spec.label.c_str());
      }
      sim::Network& net = *it->second;
      if (!spec.workload.empty()) {
        core::KvMap gen_opts;
        const workload::WorkloadRunConfig rc =
            core::workload_run_config(spec, &gen_opts);
        workload::WorkloadEnv env;
        env.flit_bytes = rc.flit_bytes;
        env.trace_file = spec.trace_file;
        env.trace_seed = spec.trace_seed;
        const workload::WorkloadGraph graph =
            workload::make_workload(spec.workload, net, gen_opts, env);
        core::print_workload(
            {spec.label, spec.workload,
             workload::run_workload(net, graph, rc)});
      } else {
        const auto pattern =
            traffic::make_pattern(spec.traffic, net, spec.traffic_opts);
        for (const double rate : spec.effective_rates()) {
          sim::SimConfig sc = spec.sim;
          sc.inj_rate_per_chip = rate;
          const sim::SimResult res = sim::run_sim(net, sc, *pattern);
          std::printf(
              "  rate=%.4f accepted=%.4f avg_latency=%.2f p99=%.2f "
              "delivered=%llu dropped=%llu drained=%d\n",
              res.offered, res.accepted, res.avg_latency, res.p99_latency,
              static_cast<unsigned long long>(res.delivered_measured),
              static_cast<unsigned long long>(res.dropped_packets),
              res.drained ? 1 : 0);
        }
      }
      std::fflush(stdout);
    } catch (const std::exception& e) {
      // Per-request isolation: report and keep serving.
      std::fprintf(stderr, "sldf: error: %s\n", e.what());
      std::fflush(stderr);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    if (cli.has("help")) {
      print_usage();
      return 0;
    }
    if (cli.has("list")) {
      print_registries();
      return 0;
    }
    if (cli.has("doc-keys")) {
      std::fputs(core::render_scenario_reference().c_str(), stdout);
      return 0;
    }
    if (cli.has("serve")) return run_serve(cli);

    // Warn about flags that are neither driver flags nor scenario keys.
    std::vector<std::string> known = kDriverFlags;
    for (const auto& key : core::scenario_keys()) known.push_back(key);
    for (const auto& key : cli.unknown_keys(known)) {
      if (key.rfind("topo.", 0) == 0 || key.rfind("traffic.", 0) == 0 ||
          key.rfind("workload.", 0) == 0 || key.rfind("trace.", 0) == 0 ||
          key.rfind("tenant", 0) == 0)
        continue;
      std::fprintf(stderr, "sldf: warning: unknown flag --%s (ignored)\n",
                   key.c_str());
    }

    // Resolve the series: config file first, CLI keys override each series.
    std::vector<core::ScenarioSpec> series;
    if (cli.has("config")) {
      series = core::load_scenario_file(cli.get("config"));
      for (auto& spec : series)
        spec = core::spec_from_cli(cli, spec, nullptr);
    } else {
      series.push_back(core::spec_from_cli(cli, {}, nullptr));
    }

    // Validate registry names up front so a misspelled topology/traffic/
    // workload fails before any series starts running. Option-key typos
    // inside topo.*/traffic.*/workload.* surface when their series starts;
    // series are isolated below, so one failure never discards the others'
    // results.
    std::size_t workload_series = 0;
    std::size_t tenant_series = 0;
    for (const auto& spec : series) {
      if (!core::TopologyRegistry::instance().contains(spec.topology))
        throw std::invalid_argument("unknown topology '" + spec.topology +
                                    "' (see sldf --list)");
      if (spec.tenants > 0) {
        ++tenant_series;
        for (const auto& t : spec.tenant)
          if (!t.workload.empty() &&
              !workload::WorkloadRegistry::instance().contains(t.workload))
            throw std::invalid_argument("unknown workload '" + t.workload +
                                        "' (see sldf --list)");
      } else if (!spec.workload.empty()) {
        ++workload_series;
        if (!workload::WorkloadRegistry::instance().contains(spec.workload))
          throw std::invalid_argument("unknown workload '" + spec.workload +
                                      "' (see sldf --list)");
      } else if (!traffic::TrafficRegistry::instance().contains(
                     spec.traffic)) {
        throw std::invalid_argument("unknown traffic pattern '" +
                                    spec.traffic + "' (see sldf --list)");
      }
    }
    // The execution modes report different columns; one experiment mixes
    // them only without CSV output.
    const bool mixed =
        (workload_series != 0 && workload_series != series.size()) ||
        (tenant_series != 0 && tenant_series != series.size());
    if (mixed && cli.has("out"))
      throw std::invalid_argument(
          "--out cannot mix rate-sweep, workload, and tenant series in one "
          "CSV; split the config");

    if (cli.has("emit-trace")) {
      if (series.size() != 1 || series[0].workload.empty())
        throw std::invalid_argument(
            "--emit-trace needs exactly one series with a workload key");
      const core::ScenarioSpec& spec = series[0];
      core::KvMap gen_opts;
      const workload::WorkloadRunConfig rc =
          core::workload_run_config(spec, &gen_opts);
      sim::Network net;
      core::build_network(net, spec);
      workload::WorkloadEnv env;
      env.flit_bytes = rc.flit_bytes;
      env.trace_file = spec.trace_file;
      env.trace_seed = spec.trace_seed;
      const workload::WorkloadGraph graph =
          workload::make_workload(spec.workload, net, gen_opts, env);
      const trace::Trace t = trace::from_graph(graph);
      const std::string path = cli.get("emit-trace");
      std::ofstream out(path);
      if (!out)
        throw std::runtime_error("cannot open trace output file: " + path);
      out << "# " << spec.workload << " on " << spec.topology << " ("
          << t.chips << " chips)\n";
      trace::write_trace(out, t);
      std::printf("wrote %s (%zu messages, %d ranks)\n", path.c_str(),
                  t.msgs.size(), t.chips);
      return 0;
    }

    if (cli.has("print")) {
      for (const auto& spec : series) {
        std::printf("[series %s]\n%s\n", spec.label.c_str(),
                    spec.to_config().c_str());
      }
      return 0;
    }

    const auto threads =
        static_cast<unsigned>(cli.get_int("series-threads", 1));
    std::printf("sldf: running %zu series (%u in flight)\n\n", series.size(),
                threads);

    // Run with per-series isolation: a failure (e.g. an option typo that
    // only surfaces at build time) is reported but never discards the
    // results of series that completed.
    struct Outcome {
      core::SweepSeries result;           ///< Rate-sweep series.
      core::WorkloadRun workload;         ///< Closed-loop series.
      trace::MultiTenantResult tenants;   ///< Multi-tenant serving series.
      bool is_workload = false;
      bool is_tenants = false;
      std::string label;
      std::string error;
    };
    std::vector<Outcome> outcomes(series.size());
    ThreadPool::parallel_for(series.size(), threads == 0 ? 1 : threads,
                             [&](std::size_t i) {
                               Outcome& o = outcomes[i];
                               o.label = series[i].label;
                               o.is_tenants = series[i].tenants > 0;
                               o.is_workload = !o.is_tenants &&
                                               !series[i].workload.empty();
                               try {
                                 if (o.is_tenants)
                                   o.tenants =
                                       trace::run_tenant_scenario(series[i]);
                                 else if (o.is_workload)
                                   o.workload =
                                       core::run_workload_scenario(series[i]);
                                 else
                                   o.result = core::run_scenario(series[i]);
                               } catch (const std::exception& e) {
                                 o.error = e.what();
                               }
                             });

    int failures = 0;
    for (const auto& o : outcomes) {
      if (!o.error.empty()) {
        ++failures;
        std::fprintf(stderr, "sldf: series '%s' failed: %s\n",
                     o.label.c_str(), o.error.c_str());
      } else if (o.is_tenants) {
        trace::print_tenants(o.tenants);
      } else if (o.is_workload) {
        core::print_workload(o.workload);
      } else {
        core::print_series(o.result);
      }
    }
    if (cli.has("out")) {
      const bool tenants_csv = tenant_series == series.size();
      const bool workload_csv = workload_series == series.size();
      CsvWriter csv(cli.get("out"),
                    tenants_csv ? trace::tenants_csv_header()
                    : workload_csv
                        ? core::workload_csv_header()
                        : std::vector<std::string>{
                              "series", "offered", "avg_latency", "accepted",
                              "p99", "delivered", "drained"});
      for (const auto& o : outcomes) {
        if (!o.error.empty()) continue;
        if (o.is_tenants)
          trace::append_tenants_csv(csv, o.tenants);
        else if (o.is_workload)
          core::append_workload_csv(csv, o.workload);
        else
          core::append_series_csv(csv, o.result);
      }
      std::printf("wrote %s\n", cli.get("out").c_str());
    }
    return failures > 0 ? 1 : 0;
  } catch (const topo::FaultError& e) {
    std::fprintf(stderr, "sldf: error: fault timeline: %s\n", e.what());
    return 1;
  } catch (const trace::TraceError& e) {
    std::fprintf(stderr, "sldf: error: trace: %s\n", e.what());
    return 1;
  } catch (const ScenarioError& e) {
    std::fprintf(stderr, "sldf: error: scenario: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sldf: error: %s\n", e.what());
    return 1;
  }
}
