// sldf — the unified scenario driver. Runs any ScenarioSpec: topology
// preset, routing mode, VC scheme, and traffic pattern are registry
// lookups, so every experiment in the paper's evaluation grid is a config
// file (or a handful of flags) instead of a dedicated binary.
//
//   sldf --topology=radix16-swless --traffic=uniform --max_rate=0.8
//   sldf --config configs/fig11a.conf --out results/fig11a.csv
//
// A config file uses `key = value` lines; `[series NAME]` sections run
// several labelled series as one experiment, each starting from the shared
// base keys above the first section (sections are independent of one
// another). CLI scenario keys override the file for every series.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/thread_pool.hpp"
#include "core/scenario.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;

namespace {

const std::vector<std::string> kDriverFlags = {"config", "out",
                                               "series-threads", "list",
                                               "print", "help"};

void print_usage() {
  std::printf(
      "usage: sldf [--config FILE] [--key=value ...]\n"
      "\n"
      "driver flags:\n"
      "  --config FILE        load a scenario file (supports [series NAME]\n"
      "                       sections; CLI keys override every series)\n"
      "  --out FILE.csv       append all series to a CSV file\n"
      "  --series-threads N   run N series concurrently (default 1)\n"
      "  --list               list registered topologies/patterns and exit\n"
      "  --print              print the resolved spec(s) and exit\n"
      "  --help               this text\n"
      "\n"
      "scenario keys (also valid in config files):\n"
      "  label topology traffic mode scheme rates max_rate points\n"
      "  stop_factor threads warmup measure drain pkt_len seed\n"
      "  max_src_queue topo.<param> traffic.<option>\n"
      "\n"
      "  --threads=N runs N sweep points of every series concurrently\n"
      "  (N=auto or 0 picks the hardware thread count); it overrides the\n"
      "  config file's threads key, like any scenario key.\n");
}

void print_registries() {
  std::printf("topologies:\n");
  const auto& topos = core::TopologyRegistry::instance();
  for (const auto& name : topos.names())
    std::printf("  %-16s %s\n", name.c_str(), topos.help(name).c_str());
  std::printf("\ntraffic patterns:\n");
  const auto& patterns = traffic::TrafficRegistry::instance();
  for (const auto& name : patterns.names())
    std::printf("  %-16s %s\n", name.c_str(), patterns.help(name).c_str());
  std::printf(
      "\nroute modes:  minimal | valiant | adaptive\n"
      "VC schemes:   baseline | reduced | reduced-safe\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    if (cli.has("help")) {
      print_usage();
      return 0;
    }
    if (cli.has("list")) {
      print_registries();
      return 0;
    }

    // Warn about flags that are neither driver flags nor scenario keys.
    std::vector<std::string> known = kDriverFlags;
    for (const auto& key : core::scenario_keys()) known.push_back(key);
    for (const auto& key : cli.unknown_keys(known)) {
      if (key.rfind("topo.", 0) == 0 || key.rfind("traffic.", 0) == 0)
        continue;
      std::fprintf(stderr, "sldf: warning: unknown flag --%s (ignored)\n",
                   key.c_str());
    }

    // Resolve the series: config file first, CLI keys override each series.
    std::vector<core::ScenarioSpec> series;
    if (cli.has("config")) {
      series = core::load_scenario_file(cli.get("config"));
      for (auto& spec : series)
        spec = core::spec_from_cli(cli, spec, nullptr);
    } else {
      series.push_back(core::spec_from_cli(cli, {}, nullptr));
    }

    // Validate registry names up front so a misspelled topology/traffic
    // fails before any series starts running. Option-key typos inside
    // topo.*/traffic.* surface when their series starts; series are
    // isolated below, so one failure never discards the others' results.
    for (const auto& spec : series) {
      if (!core::TopologyRegistry::instance().contains(spec.topology))
        throw std::invalid_argument("unknown topology '" + spec.topology +
                                    "' (see sldf --list)");
      if (!traffic::TrafficRegistry::instance().contains(spec.traffic))
        throw std::invalid_argument("unknown traffic pattern '" +
                                    spec.traffic + "' (see sldf --list)");
    }

    if (cli.has("print")) {
      for (const auto& spec : series) {
        std::printf("[series %s]\n%s\n", spec.label.c_str(),
                    spec.to_config().c_str());
      }
      return 0;
    }

    const auto threads =
        static_cast<unsigned>(cli.get_int("series-threads", 1));
    std::printf("sldf: running %zu series (%u in flight)\n\n", series.size(),
                threads);

    // Run with per-series isolation: a failure (e.g. an option typo that
    // only surfaces at build time) is reported but never discards the
    // results of series that completed.
    struct Outcome {
      core::SweepSeries result;
      std::string error;
    };
    std::vector<Outcome> outcomes(series.size());
    ThreadPool::parallel_for(series.size(), threads == 0 ? 1 : threads,
                             [&](std::size_t i) {
                               try {
                                 outcomes[i].result =
                                     core::run_scenario(series[i]);
                               } catch (const std::exception& e) {
                                 outcomes[i].result.label = series[i].label;
                                 outcomes[i].error = e.what();
                               }
                             });

    int failures = 0;
    for (const auto& o : outcomes) {
      if (o.error.empty()) {
        core::print_series(o.result);
      } else {
        ++failures;
        std::fprintf(stderr, "sldf: series '%s' failed: %s\n",
                     o.result.label.c_str(), o.error.c_str());
      }
    }
    if (cli.has("out")) {
      CsvWriter csv(cli.get("out"),
                    {"series", "offered", "avg_latency", "accepted", "p99",
                     "delivered", "drained"});
      for (const auto& o : outcomes)
        if (o.error.empty()) core::append_series_csv(csv, o.result);
      std::printf("wrote %s\n", cli.get("out").c_str());
    }
    return failures > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sldf: error: %s\n", e.what());
    return 1;
  }
}
