// Deadlock audit: build a switch-less Dragonfly with a chosen VC scheme and
// routing mode, enumerate every routed path, and check the induced channel
// dependency graph for cycles (Dally-Towles criterion).
//
//   ./deadlock_audit [--scheme baseline|reduced|reduced-safe]
//                    [--mode minimal|valiant] [--g 5]
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "core/scenario.hpp"
#include "route/cdg.hpp"
#include "sim/network.hpp"

using namespace sldf;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  core::ScenarioSpec spec;
  sim::Network net;
  try {
    spec.topology = "tiny-swless";  // a=1,b=3 audit instance (registry)
    spec.topo["g"] = std::to_string(cli.get_int("g", 5));
    spec.scheme = route::parse_vc_scheme(cli.get("scheme", "reduced"));
    spec.mode = route::parse_route_mode(cli.get("mode", "minimal"));
    core::build_network(net, spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "deadlock_audit: %s\n", e.what());
    return 1;
  }
  std::printf("scheme=%s mode=%s VCs=%d | %zu routers, %zu channels, "
              "%zu chips\n",
              to_string(spec.scheme), to_string(spec.mode), net.num_vcs(),
              net.num_routers(), net.num_channels(), net.num_chips());

  const auto rep = route::audit_cdg(net);
  std::printf("%s\n", rep.to_string(net).c_str());
  if (!rep.acyclic) {
    std::printf(
        "\nNote: for scheme=reduced this is the residual-cycle finding\n"
        "documented in DESIGN.md section 5 — the paper's 3-VC merge of the\n"
        "destination W-group shares mesh channels between transit and final\n"
        "legs. Use --scheme reduced-safe for the provably acyclic variant\n"
        "(one extra on-wafer mesh VC, same long-reach VC count).\n");
  }
  return rep.acyclic ? 0 : 2;
}
