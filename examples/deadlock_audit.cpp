// Deadlock audit: build a switch-less Dragonfly with a chosen VC scheme and
// routing mode, enumerate every routed path, and check the induced channel
// dependency graph for cycles (Dally-Towles criterion).
//
//   ./deadlock_audit [--scheme baseline|reduced|reduced-safe]
//                    [--mode minimal|valiant] [--g 5]
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "route/cdg.hpp"
#include "topo/swless.hpp"

using namespace sldf;
using route::RouteMode;
using route::VcScheme;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string scheme_s = cli.get("scheme", "reduced");
  const std::string mode_s = cli.get("mode", "minimal");

  topo::SwlessParams p;
  p.a = 1;
  p.b = 3;
  p.chip_gx = p.chip_gy = 2;
  p.noc_x = p.noc_y = 1;
  p.ports_per_chiplet = 4;
  p.local_ports = 2;
  p.global_ports = 2;
  p.g = static_cast<int>(cli.get_int("g", 5));
  p.scheme = scheme_s == "baseline"       ? VcScheme::Baseline
             : scheme_s == "reduced-safe" ? VcScheme::ReducedSafe
                                          : VcScheme::Reduced;
  p.mode = mode_s == "valiant" ? RouteMode::Valiant : RouteMode::Minimal;

  sim::Network net;
  topo::build_swless_dragonfly(net, p);
  std::printf("scheme=%s mode=%s VCs=%d | %zu routers, %zu channels, "
              "%zu chips\n",
              to_string(p.scheme), to_string(p.mode), net.num_vcs(),
              net.num_routers(), net.num_channels(), net.num_chips());

  const auto rep = route::audit_cdg(net);
  std::printf("%s\n", rep.to_string(net).c_str());
  if (!rep.acyclic) {
    std::printf(
        "\nNote: for scheme=reduced this is the residual-cycle finding\n"
        "documented in DESIGN.md section 5 — the paper's 3-VC merge of the\n"
        "destination W-group shares mesh channels between transit and final\n"
        "legs. Use --scheme reduced-safe for the provably acyclic variant\n"
        "(one extra on-wafer mesh VC, same long-reach VC count).\n");
  }
  return rep.acyclic ? 0 : 2;
}
