// Quickstart: describe an experiment as a ScenarioSpec, run it through the
// registries, and print latency/throughput — the 60-second tour of the
// library.
//
//   ./quickstart [--rate 0.5] [--scheme baseline|reduced|reduced-safe]
#include <cstdio>

#include "common/cli.hpp"
#include "core/builder.hpp"
#include "core/scenario.hpp"
#include "sim/network.hpp"

int main(int argc, char** argv) try {
  using namespace sldf;
  const Cli cli(argc, argv);

  // Radix-16-equivalent configuration from the paper's evaluation:
  // C-groups of 2x2 chiplets (each a 2x2 NoC), 8 C-groups per W-group,
  // 41 W-groups, 1312 chips. Everything is a registry name: swap the
  // topology, traffic, mode, or scheme without touching build code.
  core::ScenarioSpec spec;
  spec.label = "quickstart";
  spec.topology = "radix16-swless";
  spec.traffic = "uniform";
  spec.scheme = route::parse_vc_scheme(cli.get("scheme", "baseline"));
  spec.rates = {0.1, 0.3, cli.get_double("rate", 0.5)};
  spec.sim.warmup = 1000;
  spec.sim.measure = 2000;
  spec.sim.drain = 1000;

  sim::Network net;
  core::build_network(net, spec);
  std::printf("Switch-less Dragonfly (radix-16 equivalent, scheme=%s)\n%s\n\n",
              to_string(spec.scheme),
              core::describe(core::census(net)).c_str());

  const auto series = core::run_scenario(spec);
  core::print_series(series);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "quickstart: error: %s\n", e.what());
  return 1;
}
