// Quickstart: build a small switch-less Dragonfly, run uniform traffic at a
// few offered loads, and print latency/throughput — the 60-second tour of
// the library.
//
//   ./quickstart [--rate 0.4] [--scheme baseline|reduced|reduced-safe]
#include <cstdio>

#include "common/cli.hpp"
#include "core/builder.hpp"
#include "core/experiment.hpp"
#include "core/params.hpp"
#include "traffic/pattern.hpp"

int main(int argc, char** argv) {
  using namespace sldf;
  Cli cli(argc, argv);

  // Radix-16-equivalent configuration from the paper's evaluation:
  // C-groups of 2x2 chiplets (each a 2x2 NoC), 8 C-groups per W-group,
  // 41 W-groups, 1312 chips.
  topo::SwlessParams p = core::radix16_swless();
  const auto scheme = cli.get("scheme", "baseline");
  if (scheme == "reduced") p.scheme = route::VcScheme::Reduced;
  if (scheme == "reduced-safe") p.scheme = route::VcScheme::ReducedSafe;

  auto net = core::make_network(p);
  std::printf("Switch-less Dragonfly (radix-16 equivalent, scheme=%s)\n%s\n\n",
              scheme.c_str(), core::describe(core::census(*net)).c_str());

  sim::SimConfig sc;
  sc.warmup = 1000;
  sc.measure = 2000;
  sc.drain = 1000;

  auto traffic = traffic::make_pattern("uniform", *net);
  std::printf("%-10s %-12s %-12s %-8s\n", "offered", "avg_latency",
              "accepted", "drained");
  for (double rate : {0.1, 0.3, static_cast<double>(cli.get_double("rate", 0.5))}) {
    sc.inj_rate_per_chip = rate;
    const auto res = sim::run_sim(*net, sc, *traffic);
    std::printf("%-10.2f %-12.2f %-12.4f %-8s\n", rate, res.avg_latency,
                res.accepted, res.drained ? "yes" : "no");
  }
  return 0;
}
