// AI-training scenario (the workload motivating the paper's introduction):
// estimate sustained ring-AllReduce bandwidth per accelerator chip on
// (a) a switch-attached pod and (b) a wafer-scale C-group / W-group, then
// translate flits/cycle into GB/s for a given link bandwidth.
//
//   ./ai_training_allreduce [--link-gbps 512] [--bidir]
#include <cstdio>

#include "common/cli.hpp"
#include "core/params.hpp"
#include "sim/simulator.hpp"
#include "topo/cgroup.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"
#include "traffic/allreduce.hpp"

using namespace sldf;

namespace {

double saturation(sim::Network& net, traffic::RingAllReduceTraffic& tr) {
  sim::SimConfig cfg;
  cfg.inj_rate_per_chip = 5.0;  // well beyond saturation
  cfg.warmup = 800;
  cfg.measure = 2000;
  cfg.drain = 0;
  return sim::run_sim(net, cfg, tr).accepted;
}

}  // namespace

int main(int argc, char** argv) {
  using traffic::RingAllReduceTraffic;
  using traffic::RingScope;
  const Cli cli(argc, argv);
  const double link_GBps = cli.get_double("link-gbps", 512.0) / 8.0;
  const bool bidir = cli.has("bidir");

  std::printf("Ring AllReduce sustained bandwidth per chip (%s rings)\n",
              bidir ? "bidirectional" : "unidirectional");
  std::printf("link budget: %.0f Gb/s per flit-channel\n\n",
              link_GBps * 8.0);
  std::printf("%-34s %14s %12s\n", "fabric", "flits/cyc/chip", "GB/s/chip");

  struct Row {
    const char* name;
    double sat;
  };
  std::vector<Row> rows;

  {  // 4 accelerators behind one switch (NVLink-style pod)
    sim::Network net;
    topo::build_crossbar(net, 4, 1);
    RingAllReduceTraffic tr(net, RingScope::CGroup, bidir);
    rows.push_back({"4 chips on an ideal switch", saturation(net, tr)});
  }
  {  // 4 chips on one wafer C-group (2x2 chiplets of 2x2 NoC)
    sim::Network net;
    topo::CGroupShape s;
    s.chip_gx = s.chip_gy = 2;
    s.noc_x = s.noc_y = 2;
    s.ports_per_chiplet = 6;
    topo::build_mesh_network(net, s, 1, 32);
    RingAllReduceTraffic tr(net, RingScope::CGroup, bidir);
    rows.push_back({"4 chips, wafer C-group mesh", saturation(net, tr)});
  }
  {  // 32 chips: switch-based Dragonfly group
    sim::Network net;
    auto p = core::radix16_swdf();
    p.groups = 1;
    topo::build_sw_dragonfly(net, p);
    RingAllReduceTraffic tr(net, RingScope::WGroup, bidir);
    rows.push_back({"32 chips, switch group ring", saturation(net, tr)});
  }
  {  // 32 chips: switch-less W-group
    sim::Network net;
    auto p = core::radix16_swless();
    p.g = 1;
    topo::build_swless_dragonfly(net, p);
    RingAllReduceTraffic tr(net, RingScope::WGroup, bidir);
    rows.push_back({"32 chips, switch-less W-group", saturation(net, tr)});
  }
  {  // 32 chips: switch-less W-group with 2x on-wafer bandwidth
    sim::Network net;
    auto p = core::radix16_swless();
    p.g = 1;
    p.mesh_width = 2;
    topo::build_swless_dragonfly(net, p);
    RingAllReduceTraffic tr(net, RingScope::WGroup, bidir);
    rows.push_back({"32 chips, switch-less W-group 2B", saturation(net, tr)});
  }

  for (const auto& r : rows)
    std::printf("%-34s %14.2f %12.0f\n", r.name, r.sat, r.sat * link_GBps);

  std::printf(
      "\nTakeaway (paper Fig 14): wafer-scale chips inject through several\n"
      "on-wafer links instead of one switch port, so ring collectives scale\n"
      "past the 1 flit/cycle/chip switch ceiling.\n");
  return 0;
}
