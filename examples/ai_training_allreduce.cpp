// AI-training scenario (the workload motivating the paper's introduction):
// estimate sustained ring-AllReduce bandwidth per accelerator chip on
// (a) a switch-attached pod and (b) a wafer-scale C-group / W-group, then
// translate flits/cycle into GB/s for a given link bandwidth. Each fabric
// is a ScenarioSpec probed at one far-past-saturation offered load.
//
//   ./ai_training_allreduce [--link-gbps 512] [--bidir]
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/scenario.hpp"

using namespace sldf;

namespace {

/// Accepted flits/cycle/chip at an offered load well beyond saturation.
double saturation(core::ScenarioSpec spec) {
  spec.rates = {5.0};
  spec.sim.warmup = 800;
  spec.sim.measure = 2000;
  spec.sim.drain = 0;
  return core::run_scenario(spec).points.front().res.accepted;
}

}  // namespace

int main(int argc, char** argv) try {
  const Cli cli(argc, argv);
  const double link_GBps = cli.get_double("link-gbps", 512.0) / 8.0;
  const bool bidir = cli.has("bidir");

  std::printf("Ring AllReduce sustained bandwidth per chip (%s rings)\n",
              bidir ? "bidirectional" : "unidirectional");
  std::printf("link budget: %.0f Gb/s per flit-channel\n\n",
              link_GBps * 8.0);
  std::printf("%-34s %14s %12s\n", "fabric", "flits/cyc/chip", "GB/s/chip");

  struct Fabric {
    const char* name;
    const char* topology;
    const char* scope;
    int mesh_width;  ///< 0 = not a swless W-group spec.
  };
  const Fabric fabrics[] = {
      {"4 chips on an ideal switch", "crossbar", "cgroup", 0},
      {"4 chips, wafer C-group mesh", "cgroup-mesh", "cgroup", 0},
      {"32 chips, switch group ring", "radix16-swdf", "wgroup", 0},
      {"32 chips, switch-less W-group", "radix16-swless", "wgroup", 1},
      {"32 chips, switch-less W-group 2B", "radix16-swless", "wgroup", 2}};

  for (const auto& f : fabrics) {
    core::ScenarioSpec spec;
    spec.label = f.name;
    spec.topology = f.topology;
    spec.traffic = "ring-allreduce";
    spec.traffic_opts["scope"] = f.scope;
    if (bidir) spec.traffic_opts["bidir"] = "1";
    if (std::string(f.scope) == "wgroup") spec.topo["g"] = "1";
    if (f.mesh_width > 1)
      spec.topo["mesh_width"] = std::to_string(f.mesh_width);
    const double sat = saturation(spec);
    std::printf("%-34s %14.2f %12.0f\n", f.name, sat, sat * link_GBps);
  }

  std::printf(
      "\nTakeaway (paper Fig 14): wafer-scale chips inject through several\n"
      "on-wafer links instead of one switch port, so ring collectives scale\n"
      "past the 1 flit/cycle/chip switch ceiling.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "ai_training_allreduce: error: %s\n", e.what());
  return 1;
}
