// Topology planner: explore balanced switch-less Dragonfly configurations
// (paper Eq. 3: n = 3m, ab = 2m^2) for a target system size, reporting the
// paper's analytical metrics — scale Eq.(1), throughput Eqs.(2)(4)(5),
// diameter Eq.(7) — plus the Fig 9 layout feasibility of the C-group.
//
//   ./topology_planner [--target-chips 100000]
#include <cstdio>

#include "common/cli.hpp"
#include "model/equations.hpp"
#include "model/layout.hpp"

using namespace sldf;
using namespace sldf::model;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  for (const auto& key : cli.unknown_keys({"target-chips"}))
    std::fprintf(stderr, "topology_planner: warning: unknown flag --%s\n",
                 key.c_str());
  long target = 100000;
  try {
    target = cli.get_int("target-chips", 100000);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "topology_planner: %s\n", e.what());
    return 1;
  }

  std::printf("Balanced switch-less Dragonfly configurations (Eq. 3)\n");
  std::printf("target: >= %ld chips\n\n", target);
  std::printf("%2s %3s %5s %4s %5s %9s %8s %8s %8s %10s\n", "m", "n", "ab",
              "h", "g", "chips", "Tglobal", "Tlocal", "Tcgroup",
              "diameter");

  for (int m = 2; m <= 8; ++m) {
    const auto e = SwlessEquations::balanced(m);
    const auto d = SwlessDiameter::of(m);
    std::printf("%2d %3d %5ld %4ld %5ld %9ld %8.3f %8.1f %8.1f %7dHsr%s\n",
                e.m, e.n, e.ab(), e.h(), e.g(), e.total_chips(),
                e.t_global(), e.t_local(), e.t_cgroup(),
                d.short_reach_hops,
                e.total_chips() >= target ? "  <-- meets target" : "");
  }

  std::printf("\nSmallest balanced m meeting the target:\n");
  for (int m = 2; m <= 12; ++m) {
    const auto e = SwlessEquations::balanced(m);
    if (e.total_chips() >= target) {
      std::printf("  m=%d: %ld chips across %ld W-groups "
                  "(%ld C-groups of %d chips each)\n",
                  m, e.total_chips(), e.g(), e.g() * e.ab(), m * m);
      std::printf("  Eq.(7) diameter: %d global + %d local + %d "
                  "short-reach hops (~%.0f ns, Table II costs)\n",
                  SwlessDiameter::of(m).global_hops,
                  SwlessDiameter::of(m).local_hops,
                  SwlessDiameter::of(m).short_reach_hops,
                  SwlessDiameter::of(m).latency_ns());
      break;
    }
  }

  std::printf("\nC-group wafer layout feasibility (Fig 9 parameters):\n%s",
              format_layout(evaluate_layout()).c_str());
  return 0;
}
