// Multi-tenant serving walkthrough: carve one wafer into three disjoint
// jobs — a training AllReduce, a windowed all-to-all (expert-parallel
// shuffle), and a trace-style request/reply inference service — then run
// them as ONE shared simulation and ask what each tenant paid for its
// neighbours. The isolation baselines re-run each job alone on the exact
// same placement, so `interference` = shared TTC / isolated TTC is a pure
// co-location cost: 1.00 means the tenant never noticed the others.
//
// The same scenario runs through the driver as configs/tenants.conf; this
// program builds it via the C++ API, contrasts contiguous vs scattered
// placement for the shuffle tenant, and writes one CSV row per tenant.
//
//   ./multi_tenant_serving [--topology tiny-swless] [--chips 8]
//                          [--out results] [--seed 1]
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "core/scenario.hpp"
#include "trace/tenants.hpp"

using namespace sldf;

namespace {

core::ScenarioSpec mix(const std::string& topology, int chips,
                       std::uint64_t seed, const char* shuffle_placement) {
  core::ScenarioSpec s;
  s.label = std::string("shuffle-") + shuffle_placement;
  s.topology = topology;
  s.sim.seed = seed;
  s.set("tenants", "3");
  const std::string n = std::to_string(chips);
  // Tenant 0: a training job's ring AllReduce over its data-parallel group.
  s.set("tenant0.workload", "ring-allreduce");
  s.set("tenant0.chips", n);
  s.set("tenant0.scope", "system");
  s.set("tenant0.kib", "16");
  // Tenant 1: an expert-parallel all-to-all shuffle, 2 rounds in flight.
  // Its placement is the experiment variable.
  s.set("tenant1.workload", "all-to-all");
  s.set("tenant1.chips", n);
  s.set("tenant1.scope", "system");
  s.set("tenant1.kib", "4");
  s.set("tenant1.window", "2");
  s.set("tenant1.placement", shuffle_placement);
  // Tenant 2: an inference service — seeded random client->server requests
  // with timestamps, each reply gated on its request (a generated
  // sldf-trace; point trace.file at a recorded one to replay production).
  s.set("tenant2.workload", "request-reply");
  s.set("tenant2.chips", n);
  s.set("tenant2.requests", "32");
  return s;
}

}  // namespace

int main(int argc, char** argv) try {
  const Cli cli(argc, argv);
  const std::string topology = cli.get("topology", "tiny-swless");
  const int chips = static_cast<int>(cli.get_int("chips", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string out = cli.get("out", "results");
  std::filesystem::create_directories(out);

  std::printf("Three tenants on one %s wafer, %d chips each\n\n",
              topology.c_str(), chips);

  CsvWriter csv(out + "/multi_tenant_serving.csv",
                trace::tenants_csv_header());
  double inference_interf[2] = {0.0, 0.0};
  int run = 0;
  for (const char* placement : {"contiguous", "scattered"}) {
    const auto r =
        trace::run_tenant_scenario(mix(topology, chips, seed, placement));
    trace::print_tenants(r);
    trace::append_tenants_csv(csv, r);
    inference_interf[run++] = r.tenants[2].interference;
  }

  std::printf(
      "Takeaway: placement is a noisy-neighbour policy. With every tenant\n"
      "contiguous the inference service runs at %.2fx its isolated speed;\n"
      "scattering just the shuffle tenant across C-groups drags it to\n"
      "%.2fx, because the shuffle's flows now cross everyone's global\n"
      "cables. (fig17_tenants sweeps this tradeoff across tenant sizes.)\n",
      inference_interf[0], inference_interf[1]);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "multi_tenant_serving: error: %s\n", e.what());
  return 1;
}
