// Fig 12(a-b): scalability at radix-32 (paper: g = 145, 18560 chips).
// (a) local (single W-group, 128 chips) and (b) global uniform traffic.
// Paper result: at large scale the uniform-bandwidth switch-less network
// is clearly constrained by the C-group mesh bisection; 2B/4B on-wafer
// bandwidth restores and then improves the global throughput.
//
// The full 18560-chip system is a ~130k-router simulation; the default
// trims g (override with --g or run --paper for the full 145 W-groups).
#include "bench_common.hpp"
#include "core/params.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Fig 12(a-b): radix-32 scalability (local + global uniform)");

  // Scaling down for the single-core default: trimming g alone starves
  // global-link capacity (only g-1 of 144 ports wired) and trimming h
  // drops the global:terminal ratio below 1 -- either way the C-group
  // mesh-bisection effect this figure demonstrates gets masked. The
  // default instead shrinks ab (C-groups per W-group) with h = 9 kept and
  // the system FULL (g = ab*h + 1), preserving both the balanced global
  // capacity and the exact radix-32 C-group mesh. --paper restores
  // ab = 16, g = 145 (18560 chips).
  const int ab = env.paper
                     ? 16
                     : static_cast<int>(cli.get_int("ab", env.quick ? 4 : 8));

  // --- (a) local: one W-group of 16 C-groups (128 chips) ---
  {
    auto csv = env.csv("fig12a.csv");
    const auto rates = core::linspace_rates(1.5, env.points(6));
    const auto traffic_factory = [](const sim::Network& n) {
      return traffic::make_pattern("uniform", n);
    };
    std::printf("--- fig12a (local, radix-32 W-group) ---\n");
    run_series(env, csv, "SW-based",
               [](sim::Network& n) {
                 auto p = core::radix32_swdf();
                 p.groups = 1;
                 topo::build_sw_dragonfly(n, p);
               },
               traffic_factory, rates);
    for (int width : {1, 2}) {
      run_series(env, csv, width == 1 ? "SW-less" : "SW-less-2B",
                 [width](sim::Network& n) {
                   auto p = core::radix32_swless();
                   p.g = 1;
                   p.mesh_width = width;
                   topo::build_swless_dragonfly(n, p);
                 },
                 traffic_factory, rates);
    }
  }

  // --- (b) global ---
  {
    auto csv = env.csv("fig12b.csv");
    const auto rates = core::linspace_rates(0.8, env.points(5));
    const auto traffic_factory = [](const sim::Network& n) {
      return traffic::make_pattern("uniform", n);
    };
    std::printf("--- fig12b (global, radix-32 C-groups, ab=%d, g=%d) ---\n",
                ab, ab * 9 + 1);
    run_series(env, csv, "SW-based",
               [ab](sim::Network& n) {
                 auto p = core::radix32_swdf();
                 p.switches_per_group = ab;
                 p.groups = 0;  // full: ab*h + 1 groups
                 topo::build_sw_dragonfly(n, p);
               },
               traffic_factory, rates);
    for (int width : {1, 2, 4}) {
      const char* label = width == 1   ? "SW-less"
                          : width == 2 ? "SW-less-2B"
                                       : "SW-less-4B";
      run_series(env, csv, label,
                 [ab, width](sim::Network& n) {
                   auto p = core::radix32_swless();
                   p.a = 2;
                   p.b = ab / 2;
                   p.local_ports = ab - 1;
                   p.g = 0;  // full
                   p.mesh_width = width;
                   topo::build_swless_dragonfly(n, p);
                 },
                 traffic_factory, rates);
    }
  }
  return 0;
}
