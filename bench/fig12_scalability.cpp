// Fig 12(a-b): scalability at radix-32 (paper: g = 145, 18560 chips).
// (a) local (single W-group, 128 chips) and (b) global uniform traffic.
// Paper result: at large scale the uniform-bandwidth switch-less network
// is clearly constrained by the C-group mesh bisection; 2B/4B on-wafer
// bandwidth restores and then improves the global throughput.
//
// The full 18560-chip system is a ~130k-router simulation; the default
// trims g (override with --g or run --paper for the full 145 W-groups).
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Fig 12(a-b): radix-32 scalability (local + global uniform)");

  // Scaling down for the single-core default: trimming g alone starves
  // global-link capacity (only g-1 of 144 ports wired) and trimming h
  // drops the global:terminal ratio below 1 -- either way the C-group
  // mesh-bisection effect this figure demonstrates gets masked. The
  // default instead shrinks ab (C-groups per W-group) with h = 9 kept and
  // the system FULL (g = ab*h + 1), preserving both the balanced global
  // capacity and the exact radix-32 C-group mesh. --paper restores
  // ab = 16, g = 145 (18560 chips).
  const int ab = env.paper
                     ? 16
                     : static_cast<int>(cli.get_int("ab", env.quick ? 4 : 8));

  // --- (a) local: one W-group of 16 C-groups (128 chips) ---
  {
    auto csv = env.csv("fig12a.csv");
    std::printf("--- fig12a (local, radix-32 W-group) ---\n");
    auto sw = env.spec("SW-based", "radix32-swdf", "uniform");
    sw.topo["groups"] = "1";
    sw.max_rate = 1.5;
    sw.points = env.points(6);
    run_spec(csv, sw);
    for (int width : {1, 2}) {
      auto s = env.spec(width == 1 ? "SW-less" : "SW-less-2B",
                        "radix32-swless", "uniform");
      s.topo["g"] = "1";
      s.topo["mesh_width"] = std::to_string(width);
      s.max_rate = 1.5;
      s.points = env.points(6);
      run_spec(csv, s);
    }
  }

  // --- (b) global ---
  {
    auto csv = env.csv("fig12b.csv");
    std::printf("--- fig12b (global, radix-32 C-groups, ab=%d, g=%d) ---\n",
                ab, ab * 9 + 1);
    auto sw = env.spec("SW-based", "radix32-swdf", "uniform");
    sw.topo["switches_per_group"] = std::to_string(ab);
    sw.topo["groups"] = "0";  // full: ab*h + 1 groups
    sw.max_rate = 0.8;
    sw.points = env.points(5);
    run_spec(csv, sw);
    for (int width : {1, 2, 4}) {
      const char* label = width == 1   ? "SW-less"
                          : width == 2 ? "SW-less-2B"
                                       : "SW-less-4B";
      auto s = env.spec(label, "radix32-swless", "uniform");
      s.topo["a"] = "2";
      s.topo["b"] = std::to_string(ab / 2);
      s.topo["local_ports"] = std::to_string(ab - 1);
      s.topo["g"] = "0";  // full
      s.topo["mesh_width"] = std::to_string(width);
      s.max_rate = 0.8;
      s.points = env.points(5);
      run_spec(csv, s);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig12_scalability", [&] { return bench_main(argc, argv); });
}
