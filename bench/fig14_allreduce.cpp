// Fig 14(a-b): ring-based AllReduce traffic. (a) within a C-group: the
// wafer mesh has multiple injection points per chip, so unidirectional /
// bidirectional rings reach ~2 / ~4 flits/cycle/chip versus the switch's
// 1.0 cap. (b) within a W-group: inter-C-group links bound both networks
// at ~1 for unidirectional rings; bidirectional rings + 2B on-wafer
// bandwidth push the switch-less group to ~2x.
#include "bench_common.hpp"
#include "core/params.hpp"
#include "topo/cgroup.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"
#include "traffic/allreduce.hpp"

using namespace sldf;
using namespace sldf::bench;
using traffic::RingAllReduceTraffic;
using traffic::RingScope;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 14(a-b): ring AllReduce within C-group and W-group");

  const auto ring = [](RingScope scope, bool bidir) {
    return [scope, bidir](const sim::Network& n) {
      return std::make_unique<RingAllReduceTraffic>(n, scope, bidir);
    };
  };

  // --- (a) intra-C-group ---
  {
    auto csv = env.csv("fig14a.csv");
    const auto rates = core::linspace_rates(4.2, env.points(7));
    const auto mesh = [](sim::Network& n) {
      topo::CGroupShape s;
      s.chip_gx = s.chip_gy = 2;
      s.noc_x = s.noc_y = 2;
      s.ports_per_chiplet = 6;
      topo::build_mesh_network(n, s, 1, 32);
    };
    const auto xbar = [](sim::Network& n) {
      topo::build_crossbar(n, 4, 1);
    };
    std::printf("--- fig14a (intra-C-group AllReduce) ---\n");
    run_series(env, csv, "SW-based-Uni", xbar,
               ring(RingScope::CGroup, false), rates);
    run_series(env, csv, "SW-less-Uni", mesh, ring(RingScope::CGroup, false),
               rates);
    run_series(env, csv, "SW-based-Bi", xbar, ring(RingScope::CGroup, true),
               rates);
    run_series(env, csv, "SW-less-Bi", mesh, ring(RingScope::CGroup, true),
               rates);
  }

  // --- (b) intra-W-group ---
  {
    auto csv = env.csv("fig14b.csv");
    const auto rates = core::linspace_rates(2.2, env.points(7));
    const auto swless = [](int width) {
      return [width](sim::Network& n) {
        auto p = core::radix16_swless();
        p.g = 1;
        p.mesh_width = width;
        topo::build_swless_dragonfly(n, p);
      };
    };
    const auto swbased = [](sim::Network& n) {
      auto p = core::radix16_swdf();
      p.groups = 1;
      topo::build_sw_dragonfly(n, p);
    };
    std::printf("--- fig14b (intra-W-group AllReduce) ---\n");
    run_series(env, csv, "SW-based-Uni", swbased,
               ring(RingScope::WGroup, false), rates);
    run_series(env, csv, "SW-less-Uni", swless(1),
               ring(RingScope::WGroup, false), rates);
    run_series(env, csv, "SW-based-Bi", swbased,
               ring(RingScope::WGroup, true), rates);
    run_series(env, csv, "SW-less-Bi", swless(1),
               ring(RingScope::WGroup, true), rates);
    run_series(env, csv, "SW-less-Bi-2B", swless(2),
               ring(RingScope::WGroup, true), rates);
  }
  return 0;
}
