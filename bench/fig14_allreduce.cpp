// Fig 14(a-b): ring-based AllReduce traffic. (a) within a C-group: the
// wafer mesh has multiple injection points per chip, so unidirectional /
// bidirectional rings reach ~2 / ~4 flits/cycle/chip versus the switch's
// 1.0 cap. (b) within a W-group: inter-C-group links bound both networks
// at ~1 for unidirectional rings; bidirectional rings + 2B on-wafer
// bandwidth push the switch-less group to ~2x.
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

core::ScenarioSpec ring_spec(const BenchEnv& env, const char* label,
                             const char* topology, const char* scope,
                             bool bidir) {
  auto s = env.spec(label, topology, "ring-allreduce");
  s.traffic_opts["scope"] = scope;
  if (bidir) s.traffic_opts["bidir"] = "1";
  return s;
}

}  // namespace

namespace {

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 14(a-b): ring AllReduce within C-group and W-group");

  // --- (a) intra-C-group ---
  {
    auto csv = env.csv("fig14a.csv");
    std::printf("--- fig14a (intra-C-group AllReduce) ---\n");
    struct Series {
      const char* label;
      const char* topology;
      bool bidir;
    };
    const Series series[] = {{"SW-based-Uni", "crossbar", false},
                             {"SW-less-Uni", "cgroup-mesh", false},
                             {"SW-based-Bi", "crossbar", true},
                             {"SW-less-Bi", "cgroup-mesh", true}};
    for (const auto& ser : series) {
      auto s = ring_spec(env, ser.label, ser.topology, "cgroup", ser.bidir);
      s.max_rate = 4.2;
      s.points = env.points(7);
      run_spec(csv, s);
    }
  }

  // --- (b) intra-W-group ---
  {
    auto csv = env.csv("fig14b.csv");
    std::printf("--- fig14b (intra-W-group AllReduce) ---\n");
    struct Series {
      const char* label;
      const char* topology;
      bool bidir;
      int mesh_width;
    };
    const Series series[] = {
        {"SW-based-Uni", "radix16-swdf", false, 0},
        {"SW-less-Uni", "radix16-swless", false, 1},
        {"SW-based-Bi", "radix16-swdf", true, 0},
        {"SW-less-Bi", "radix16-swless", true, 1},
        {"SW-less-Bi-2B", "radix16-swless", true, 2}};
    for (const auto& ser : series) {
      auto s = ring_spec(env, ser.label, ser.topology, "wgroup", ser.bidir);
      s.topo["g"] = "1";
      if (ser.mesh_width > 1)
        s.topo["mesh_width"] = std::to_string(ser.mesh_width);
      s.max_rate = 2.2;
      s.points = env.points(7);
      run_spec(csv, s);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig14_allreduce", [&] { return bench_main(argc, argv); });
}
