// Fig 14(a-b), closed-loop: ring-AllReduce time-to-completion. The
// message-level workload engine executes the actual 2(N-1)-step dependency
// graph (reduce-scatter + allgather) and reports completion cycles and
// achieved GB/s per chip — the paper's time-to-completion story — instead
// of the open-loop saturation sweep (which lives on as the
// `traffic = ring-allreduce` pattern).
//
// (a) intra-C-group: the wafer mesh's parallel injection points let the
//     switch-less C-group finish well ahead of the ideal single switch.
// (b) intra-W-group: unidirectional rings are bound by the width-1
//     long-reach links in both fabrics; the switch-based network's direct
//     switch-to-switch hops give it the edge until the 2B on-wafer
//     variant narrows the gap.
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

core::ScenarioSpec ring_spec(const BenchEnv& env, const char* label,
                             const char* topology, const char* scope,
                             double kib) {
  auto s = env.spec(label, topology, "uniform");
  s.workload = "ring-allreduce";
  s.workload_opts["scope"] = scope;
  s.workload_opts["kib"] = CsvWriter::format_num(kib);
  s.workload_opts["chunks"] = "4";
  return s;
}

void run_ttc(CsvWriter& csv, const core::ScenarioSpec& spec, double kib) {
  const core::WorkloadRun run = core::run_workload_scenario(spec);
  core::print_workload(run);
  const auto& r = run.result;
  csv.row(std::vector<std::string>{
      run.label, CsvWriter::format_num(kib), std::to_string(r.chips),
      std::to_string(r.messages), std::to_string(r.cycles),
      CsvWriter::format_num(r.gbps_per_chip),
      CsvWriter::format_num(r.avg_msg_cycles), r.completed ? "1" : "0"});
}

CsvWriter ttc_csv(const BenchEnv& env, const std::string& name) {
  return CsvWriter(env.out_dir + "/" + name,
                   {"series", "kib", "chips", "messages", "cycles",
                    "gbps_per_chip", "avg_msg_cycles", "completed"});
}

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 14(a-b): ring-AllReduce time-to-completion (closed loop)");

  const std::vector<double> sizes =
      env.quick ? std::vector<double>{16} : std::vector<double>{16, 64, 256};

  // --- (a) intra-C-group: ideal switch vs wafer mesh ---
  {
    auto csv = ttc_csv(env, "fig14a_ttc.csv");
    std::printf("--- fig14a (intra-C-group AllReduce, completion time) ---\n");
    for (const double kib : sizes) {
      run_ttc(csv, ring_spec(env, "SW-based", "crossbar", "cgroup", kib),
              kib);
      run_ttc(csv, ring_spec(env, "SW-less", "cgroup-mesh", "cgroup", kib),
              kib);
    }
  }

  // --- (b) intra-W-group: both radix-16 fabrics, one W-group ---
  {
    auto csv = ttc_csv(env, "fig14b_ttc.csv");
    std::printf("--- fig14b (intra-W-group AllReduce, completion time) ---\n");
    struct Series {
      const char* label;
      const char* topology;
      int mesh_width;
    };
    const Series series[] = {{"SW-based", "radix16-swdf", 0},
                             {"SW-less", "radix16-swless", 1},
                             {"SW-less-2B", "radix16-swless", 2}};
    for (const double kib : sizes) {
      for (const auto& ser : series) {
        auto s = ring_spec(env, ser.label, ser.topology, "wgroup", kib);
        s.topo["g"] = "1";
        if (ser.mesh_width > 1)
          s.topo["mesh_width"] = std::to_string(ser.mesh_width);
        run_ttc(csv, s, kib);
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig14_allreduce", [&] { return bench_main(argc, argv); });
}
