// google-benchmark micro-kernels for the simulator substrate: end-to-end
// cycle throughput, topology construction (through the scenario registry),
// routing-table builds, and RNG.
#include <benchmark/benchmark.h>

#include "core/scenario.hpp"
#include "route/mesh_routing.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topo/labeling.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;

namespace {

core::ScenarioSpec wgroup_spec() {
  core::ScenarioSpec s;
  s.topology = "radix16-swless";
  s.topo["g"] = "1";
  return s;
}

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngGeometricSkip(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.geometric_skip(0.01));
}
BENCHMARK(BM_RngGeometricSkip);

void BM_MonotoneTableBuild(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto labels = topo::make_labels(m, m, topo::Labeling::Snake);
  for (auto _ : state) {
    route::MonotoneTables t(m, m, labels);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_MonotoneTableBuild)->Arg(4)->Arg(8);

void BM_BuildRadix16WGroup(benchmark::State& state) {
  const auto spec = wgroup_spec();
  for (auto _ : state) {
    sim::Network net;
    core::build_network(net, spec);
    benchmark::DoNotOptimize(net.num_routers());
  }
}
BENCHMARK(BM_BuildRadix16WGroup);

/// Simulated router-cycles per second on a loaded W-group (the simulator's
/// core metric; the figure benches are bound by this).
void BM_SimulateWGroupCycles(benchmark::State& state) {
  sim::Network net;
  core::build_network(net, wgroup_spec());
  auto tr = traffic::make_pattern("uniform", net);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    state.PauseTiming();
    net.reset_dynamic_state();
    sim::SimConfig cfg;
    cfg.inj_rate_per_chip = 1.0;
    cfg.warmup = 0;
    cfg.measure = 200;
    cfg.drain = 0;
    sim::Simulator sim(net, cfg, *tr);
    state.ResumeTiming();
    for (int i = 0; i < 200; ++i) sim.step();
    cycles += 200;
  }
  state.counters["router_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles) * static_cast<double>(net.num_routers()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateWGroupCycles)->Unit(benchmark::kMillisecond);

void BM_MeshXySweepPoint(benchmark::State& state) {
  sim::Network net;
  core::ScenarioSpec mesh;
  mesh.topology = "cgroup-mesh";
  core::build_network(net, mesh);
  auto tr = traffic::make_pattern("uniform", net);
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.inj_rate_per_chip = 2.0;
    cfg.warmup = 100;
    cfg.measure = 400;
    cfg.drain = 0;
    benchmark::DoNotOptimize(sim::run_sim(net, cfg, *tr).accepted);
  }
}
BENCHMARK(BM_MeshXySweepPoint)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
