// Fig 18 (online resilience, beyond the paper's static fault sweeps):
// reroute convergence after a *live* fault event, radix-16 switch-less vs
// switch-based Dragonfly, per routing mode.
//
// The run starts on a pristine fabric under steady uniform load; at a known
// cycle a `fail@t:global=<rate>` timeline event kills a batch of global
// cables while packets are in flight. Torn packets are rescued (re-queued at
// their sources) and fault-aware routing detours around the dead cables, so
// accepted throughput dips and then recovers. The bench drives
// Simulator::step() directly and samples accepted flits in fixed windows,
// reporting, per (fabric, routing mode):
//
//   pre    — mean accepted flits/cycle/chip over the settled pre-fault
//            windows (the recovery target),
//   dip    — the worst post-fault window, and dip depth 1 - dip/pre,
//   recover— cycles from the fault event until a window first sustains
//            >= 95% of `pre` again (-1: never within the horizon).
//
// The fault set is the same seeded permutation prefix the static fig16
// sweep fails, so the settled post-recovery fabric is bit-identical to a
// static injection at the same rate.
// Equivalent driver invocation: sldf --fault.events=fail@N:global=R ...
#include <algorithm>
#include <memory>

#include "bench_common.hpp"
#include "sim/simulator.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

constexpr std::uint64_t kFaultSeed = 7;
constexpr double kRecoverFrac = 0.95;  ///< Recovery threshold vs pre-fault.

struct Convergence {
  double pre = 0.0;          ///< Settled pre-fault accepted (per cycle/chip).
  double dip = 0.0;          ///< Worst post-fault window.
  double dip_depth = 0.0;    ///< 1 - dip/pre.
  std::int64_t recover_cycles = -1;  ///< Fault -> first recovered window.
  std::uint64_t dropped = 0;
  std::uint64_t rescued = 0;
};

/// Steps one simulator across the horizon, sampling accepted flits per
/// window. `fault_at` must be window-aligned so the dip is attributed to
/// whole windows.
Convergence measure_convergence(sim::Network& net, const sim::SimConfig& cfg,
                                sim::TrafficSource& traffic, Cycle fault_at,
                                Cycle horizon, Cycle window) {
  sim::Simulator sim(net, cfg, traffic);
  const double chips = static_cast<double>(net.num_chips());
  std::vector<double> rate;  // accepted flits/cycle/chip per window
  std::uint64_t prev = 0;
  for (Cycle t = 0; t < horizon; ++t) {
    sim.step();
    if (sim.now() % window == 0) {
      const std::uint64_t acc = sim.accepted_flits();
      rate.push_back(static_cast<double>(acc - prev) /
                     (static_cast<double>(window) * chips));
      prev = acc;
    }
  }

  Convergence c;
  c.dropped = sim.dropped_packets();
  c.rescued = sim.rescued_packets();
  const std::size_t fault_w = static_cast<std::size_t>(fault_at / window);
  // Settled pre-fault mean: skip the first half of the pre-fault windows
  // (injection ramp-up) and average the rest.
  const std::size_t skip = fault_w / 2;
  double sum = 0.0;
  for (std::size_t w = skip; w < fault_w; ++w) sum += rate[w];
  c.pre = fault_w > skip ? sum / static_cast<double>(fault_w - skip) : 0.0;

  c.dip = c.pre;
  for (std::size_t w = fault_w; w < rate.size(); ++w)
    c.dip = std::min(c.dip, rate[w]);
  c.dip_depth = c.pre > 0.0 ? 1.0 - c.dip / c.pre : 0.0;
  for (std::size_t w = fault_w; w < rate.size(); ++w) {
    if (rate[w] >= kRecoverFrac * c.pre) {
      c.recover_cycles = static_cast<std::int64_t>((w + 1) * window - fault_at);
      break;
    }
  }
  return c;
}

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 18: reroute convergence after an online global-cable fault");

  const Cycle window = 100;
  const Cycle fault_at = env.quick ? 800 : 1600;
  const Cycle horizon = env.quick ? 2400 : 4800;
  const double fail_rate = 0.10;
  // Below the *degraded* fabric's saturation point: accepted throughput can
  // return to the offered rate once rerouting converges, so the recovery
  // metric measures the transient, not a permanent capacity loss.
  // (0.05 also clears Valiant's halved capacity on the degraded fabric.)
  const double offered = 0.05;
  const int g = env.quick ? 5 : static_cast<int>(cli.get_int("g", 11));

  struct Fabric {
    const char* label;
    const char* topology;
  };
  const Fabric fabrics[] = {{"SW-based", "radix16-swdf"},
                            {"SW-less", "radix16-swless"}};
  const route::RouteMode modes[] = {route::RouteMode::Minimal,
                                    route::RouteMode::Valiant,
                                    route::RouteMode::Adaptive};

  CsvWriter csv(env.out_dir + "/fig18_online_resilience.csv",
                {"series", "mode", "fail_at", "fail_frac", "pre_accepted",
                 "dip_accepted", "dip_depth", "recover_cycles", "dropped",
                 "rescued"});
  std::printf("%-10s %-9s %9s %9s %9s %10s %8s %8s\n", "fabric", "mode",
              "pre", "dip", "depth", "recover", "dropped", "rescued");
  for (const auto& fab : fabrics) {
    for (const auto mode : modes) {
      auto s = env.spec(fab.label, fab.topology, "uniform");
      s.topo["g"] = std::to_string(g);
      s.topo["fault_tolerant"] = "1";
      s.mode = mode;
      s.fault.seed = kFaultSeed;
      s.fault.events = "fail@" + std::to_string(fault_at) +
                       ":global=" + CsvWriter::format_num(fail_rate);
      // The bench samples every cycle itself: warmup 0 and measure =
      // horizon make accepted_flits() a whole-run running counter.
      s.sim.warmup = 0;
      s.sim.measure = horizon;
      s.sim.drain = 0;
      s.sim.inj_rate_per_chip = offered;

      sim::Network net;
      core::build_network(net, s);
      const auto traffic = core::traffic_factory(s)(net);
      const Convergence c = measure_convergence(net, s.sim, *traffic,
                                                fault_at, horizon, window);

      std::printf("%-10s %-9s %9.4f %9.4f %8.1f%% %10lld %8llu %8llu\n",
                  fab.label, route::to_string(mode), c.pre, c.dip,
                  100.0 * c.dip_depth,
                  static_cast<long long>(c.recover_cycles),
                  static_cast<unsigned long long>(c.dropped),
                  static_cast<unsigned long long>(c.rescued));
      csv.row(std::vector<std::string>{
          fab.label, route::to_string(mode), std::to_string(fault_at),
          CsvWriter::format_num(fail_rate), CsvWriter::format_num(c.pre),
          CsvWriter::format_num(c.dip), CsvWriter::format_num(c.dip_depth),
          std::to_string(c.recover_cycles), std::to_string(c.dropped),
          std::to_string(c.rescued)});
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig18_online_resilience",
                              [&] { return bench_main(argc, argv); });
}
