// Table II: hop cost comparison (latency / energy per physical medium)
// plus the Fig 9 layout feasibility report (§V-A1) that derives the
// on-wafer bandwidth the architecture relies on.
#include <cstdio>
#include <filesystem>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "model/equations.hpp"
#include "model/layout.hpp"

using namespace sldf;
using namespace sldf::model;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const HopCostTable t;
  std::printf("Table II: hop cost comparison\n\n");
  std::printf("%-12s %-16s %12s %14s\n", "hop", "medium", "latency(ns)",
              "energy(pJ/bit)");
  std::printf("%-12s %-16s %12.0f %14.1f\n", "Hg", "optical cable",
              t.global.latency_ns, t.global.energy_pj_per_bit);
  std::printf("%-12s %-16s %12.0f %14.1f\n", "Hl", "copper cable",
              t.local.latency_ns, t.local.energy_pj_per_bit);
  std::printf("%-12s %-16s %12.0f %14.1f\n", "H*l", "terminal link",
              t.terminal.latency_ns, t.terminal.energy_pj_per_bit);
  std::printf("%-12s %-16s %12.0f %14.1f\n", "Hsr", "on-wafer RDL",
              t.short_reach.latency_ns, t.short_reach.energy_pj_per_bit);
  std::printf("%-12s %-16s %12.0f %14.1f\n", "Hon-chip", "metal layer",
              t.on_chip.latency_ns, t.on_chip.energy_pj_per_bit);
  std::printf("(intra-C-group average used by Fig 15: %.1f pJ/bit)\n\n",
              t.intra_cgroup_avg_pj);

  std::printf("Fig 9 layout feasibility (C-group on InFO-SoW wafer):\n%s\n",
              format_layout(evaluate_layout()).c_str());

  const std::string out = cli.get("out", "results");
  std::filesystem::create_directories(out);
  CsvWriter csv(out + "/table2.csv",
                {"hop", "latency_ns", "energy_pj_per_bit"});
  csv.row(std::vector<std::string>{"Hg", "150", "20"});
  csv.row(std::vector<std::string>{"Hl", "150", "20"});
  csv.row(std::vector<std::string>{"H*l", "150", "20"});
  csv.row(std::vector<std::string>{"Hsr", "5", "2"});
  csv.row(std::vector<std::string>{"Hon-chip", "1", "0.1"});
  return 0;
}
