// Table III: comparison of key specifications between the switch-less
// Dragonfly and other interconnects (analytical model; §III-C). Alongside
// each computed row the paper's published value is shown where it differs
// in derivation.
#include <cstdio>
#include <filesystem>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "model/cost.hpp"
#include "model/equations.hpp"

using namespace sldf;
using namespace sldf::model;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  std::printf("Table III: key specifications (radix-64 switch building "
              "blocks, Slingshot scale)\n\n");
  const auto rows = table3();
  std::printf("%s\n", format_table3(rows).c_str());

  std::printf("Paper reference points:\n");
  std::printf("  Dragonfly (Slingshot): 17440 switches, 2180 cabinets, "
              "279040 chips, 698K cables / 154K*E\n");
  std::printf("  Switch-less Dragonfly: 0 switches, 545 cabinets, "
              "279040 chips, 419K cables / 73K*E\n");
  std::printf("  Diameters: Hg+2Hl+2H*l (switch-based) vs Hg+2Hl+30Hsr "
              "(switch-less, m=4)\n\n");

  // Eq.(7) latency estimate with Table II costs.
  const auto sl = SwlessDiameter::of(4);
  const auto sb = SwlessDiameter::switch_based();
  std::printf("Eq.(7) worst-case diameter latency estimate (Table II "
              "costs, no ToF):\n");
  std::printf("  switch-based: %d long hops             -> %6.0f ns\n",
              sb.global_hops + sb.local_hops, sb.latency_ns());
  std::printf("  switch-less:  %d long + %d short hops  -> %6.0f ns\n",
              sl.global_hops + sl.local_hops, sl.short_reach_hops,
              sl.latency_ns());

  const std::string out = cli.get("out", "results");
  std::filesystem::create_directories(out);
  CsvWriter csv(out + "/table3.csv",
                {"network", "chip_radix", "sw_radix", "switches", "cabinets",
                 "processors", "cables", "cable_length_E", "t_local",
                 "t_global", "diameter"});
  for (const auto& r : rows) {
    csv.row(std::vector<std::string>{
        r.name, CsvWriter::format_num(r.chip_radix),
        CsvWriter::format_num(r.switch_radix),
        CsvWriter::format_num(static_cast<double>(r.switches)),
        CsvWriter::format_num(static_cast<double>(r.cabinets)),
        CsvWriter::format_num(static_cast<double>(r.processors)),
        CsvWriter::format_num(static_cast<double>(r.cables)),
        CsvWriter::format_num(r.cable_length_E),
        CsvWriter::format_num(r.t_local), CsvWriter::format_num(r.t_global),
        r.diameter});
  }
  return 0;
}
