// Fig 19 (multi-plane fabrics, beyond the paper's single fabric): K = 2
// switch-less planes sharing the logical chip space vs one fabric of the
// same diameter and vs a "fat" single fabric (doubled on-wafer mesh width
// and VC buffering — more bandwidth where it is cheap, none where it is
// not).
//
// (a) uniform-traffic throughput sweep: the plane pair splits every
//     source's load across two disjoint rails, so saturation moves out by
//     ~2x while the fat fabric only widens the intra-C-group section of
//     the path.
// (b) ring-AllReduce time-to-completion (closed loop): the collective
//     plane policy pins each phase to one rail, so neighbouring phases
//     stream over disjoint cables.
// (c) per-plane fault resilience: fail 40% of the *global* cables of plane
//     0 only (fault.plane = 0, rescue off) and compare drop/delivery
//     counts against the same fault fraction on the single fabrics — the
//     untouched plane keeps carrying its share, so the plane set loses
//     packets at roughly half the single-fabric rate.
//
// Equivalent driver invocations use plane.count / plane.mix / plane.policy
// (see the scenario-key reference in the README).
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

constexpr std::uint64_t kFaultSeed = 7;

struct Series {
  const char* label;
  int planes;      ///< 0 = classic single-fabric build path.
  bool fat;        ///< Widen the single fabric (mesh_width, vc_buf x2).
};

core::ScenarioSpec series_spec(const BenchEnv& env, const Series& ser,
                               const char* traffic) {
  auto s = env.spec(ser.label, "tiny-swless", traffic);
  if (ser.planes > 0) {
    s.plane_count = ser.planes;
    s.plane_policy = route::PlanePolicy::Hash;
  }
  if (ser.fat) {
    s.topo["mesh_width"] = "2";
    s.topo["vc_buf"] = "64";
  }
  return s;
}

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 19(a-c): two fabric planes vs one (fat) single fabric");

  const Series series[] = {{"single", 0, false},
                           {"fat-single", 0, true},
                           {"planes-k2", 2, false}};

  // --- (a) uniform throughput sweep ---
  {
    CsvWriter csv = env.csv("fig19a_planes_throughput.csv");
    std::printf("--- fig19a (uniform throughput, 2 planes vs 1) ---\n");
    for (const auto& ser : series) {
      auto s = series_spec(env, ser, "uniform");
      s.max_rate = 1.0;
      s.points = env.points(6);
      run_spec(csv, s);
    }
  }

  // --- (b) ring-AllReduce time-to-completion ---
  {
    CsvWriter csv(env.out_dir + "/fig19b_planes_ttc.csv",
                  {"series", "chips", "messages", "cycles", "gbps_per_chip",
                   "completed"});
    std::printf("--- fig19b (ring-AllReduce TTC, 2 planes vs 1) ---\n");
    for (const auto& ser : series) {
      auto s = series_spec(env, ser, "uniform");
      if (ser.planes > 0) s.plane_policy = route::PlanePolicy::Collective;
      s.workload = "ring-allreduce";
      s.workload_opts["scope"] = "system";
      s.workload_opts["kib"] = env.quick ? "4" : "16";
      const core::WorkloadRun run = core::run_workload_scenario(s);
      core::print_workload(run);
      const auto& r = run.result;
      csv.row(std::vector<std::string>{
          ser.label, std::to_string(r.chips), std::to_string(r.messages),
          std::to_string(r.cycles), CsvWriter::format_num(r.gbps_per_chip),
          r.completed ? "1" : "0"});
    }
  }

  // --- (c) resilience: 40% of global cables die at one fault step ---
  {
    CsvWriter csv(env.out_dir + "/fig19c_planes_resilience.csv",
                  {"series", "accepted", "delivered", "dropped",
                   "plane0_dropped", "plane1_dropped", "drained"});
    std::printf("--- fig19c (40%% dead globals: one plane vs the fabric) "
                "---\n");
    for (const auto& ser : series) {
      auto s = series_spec(env, ser, "uniform");
      s.topo["fault_tolerant"] = "1";
      s.rates = {0.5};
      s.fault.seed = kFaultSeed;
      s.fault.rescue = false;
      s.fault.events =
          "fail@" + std::to_string(s.sim.warmup) + ":global=0.4";
      // The plane set localizes the failure wave to rail 0; the single
      // fabrics have no second rail to keep clean.
      if (ser.planes > 0) s.fault.plane = 0;
      const auto run = core::run_scenario(s);
      core::print_series(run);
      for (const auto& pt : run.points) {
        const auto& r = pt.res;
        const auto pd = [&](std::size_t p) {
          return p < r.plane_dropped.size()
                     ? std::to_string(r.plane_dropped[p])
                     : std::string("0");
        };
        csv.row(std::vector<std::string>{
            ser.label, CsvWriter::format_num(r.accepted),
            std::to_string(r.delivered_total),
            std::to_string(r.dropped_packets), pd(0), pd(1),
            r.drained ? "1" : "0"});
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig19_planes",
                              [&] { return bench_main(argc, argv); });
}
