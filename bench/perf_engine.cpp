#include "bench/perf_engine.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/scenario.hpp"
#include "trace/tenants.hpp"

namespace sldf::bench {

namespace {

/// Process-lifetime high-water mark: /proc/self/status VmHWM on Linux,
/// getrusage elsewhere. Only meaningful per preset after RssTracker::reset().
double vm_hwm_mb() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    double kb = -1.0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %lf kB", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb >= 0.0) return kb / 1024.0;
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss in KiB
#endif
  }
#endif
  return 0.0;
}

/// Per-preset peak-RSS measurement. The kernel's high-water mark is
/// process-lifetime, so reading it after each preset made every row after
/// the largest run silently inherit that run's peak (the pre-fix
/// BENCH_sim.json reported ~1.29 GB for every preset after radix32-sat).
/// reset() clears the mark by writing "5" to /proc/self/clear_refs, after
/// which VmHWM tracks only memory touched since — peak_mb() then reports a
/// true per-preset peak. When clear_refs is unavailable (non-Linux, locked-
/// down kernels) it falls back to the VmHWM *delta* since the last reset:
/// exact whenever the preset sets a new process peak, and 0 ("did not grow
/// the peak") instead of an inherited earlier peak when it does not.
class RssTracker {
 public:
  void reset() {
    reset_ok_ = false;
#if defined(__linux__)
    if (std::FILE* f = std::fopen("/proc/self/clear_refs", "w")) {
      reset_ok_ = std::fwrite("5", 1, 1, f) == 1;
      if (std::fclose(f) != 0) reset_ok_ = false;
    }
#endif
    base_mb_ = vm_hwm_mb();
  }

  [[nodiscard]] double peak_mb() const {
    const double hwm = vm_hwm_mb();
    if (reset_ok_) return hwm;
    return hwm > base_mb_ ? hwm - base_mb_ : 0.0;
  }

 private:
  bool reset_ok_ = false;
  double base_mb_ = 0.0;
};

RssTracker& rss_tracker() {
  static RssTracker t;
  return t;
}

core::ScenarioSpec point_spec(const std::string& topology, double rate,
                              bool quick, std::uint64_t seed) {
  core::ScenarioSpec s;
  s.topology = topology;
  s.traffic = "uniform";
  s.rates = {rate};
  s.sim.seed = seed;
  // Presets pin shards so the serial/sharded pairs measure exactly what
  // their names say, independent of a stray SLDF_SHARDS in the env.
  s.sim.shards = 1;
  if (quick) {
    s.sim.warmup = 200;
    s.sim.measure = 500;
    s.sim.drain = 300;
  } else {
    s.sim.warmup = 500;
    s.sim.measure = 1200;
    s.sim.drain = 600;
  }
  return s;
}

/// The fig11a experiment (three radix-16 series, uniform traffic) with the
/// measurement window of configs/fig11a.conf, embedded so the bench does
/// not depend on the working directory.
std::vector<core::ScenarioSpec> fig11a_specs(std::uint64_t seed) {
  core::ScenarioSpec base;
  base.traffic = "uniform";
  base.max_rate = 1.0;
  base.points = 6;
  base.sim.warmup = 1000;
  base.sim.measure = 2200;
  base.sim.drain = 1200;
  base.sim.seed = seed;
  base.sim.shards = 1;

  std::vector<core::ScenarioSpec> specs;
  core::ScenarioSpec s = base;
  s.label = "SW-based";
  s.topology = "radix16-swdf";
  specs.push_back(s);
  s = base;
  s.label = "SW-less";
  s.topology = "radix16-swless";
  specs.push_back(s);
  s = base;
  s.label = "SW-less-2B";
  s.topology = "radix16-swless";
  s.topo["mesh_width"] = "2";
  specs.push_back(s);
  return specs;
}

/// Closed-loop workload preset: the fig14 ring-AllReduce TTC run on the
/// radix-16 switch-less W-group (configs/fig14.conf's SW-less series).
/// `cycles` is the completion time, so the preset records the workload
/// engine's trajectory alongside the rate-sweep presets.
core::ScenarioSpec allreduce_spec(bool quick, std::uint64_t seed) {
  core::ScenarioSpec s;
  s.topology = "radix16-swless";
  s.topo["g"] = "1";
  s.workload = "ring-allreduce";
  s.workload_opts["scope"] = "wgroup";
  s.workload_opts["kib"] = quick ? "16" : "64";
  s.workload_opts["chunks"] = "4";
  s.sim.seed = seed;
  s.sim.shards = 1;
  return s;
}

/// Resilience preset: the fig16a throughput point on the radix-16
/// switch-less network with 10% of the global cables failed (fault-aware
/// minimal routing, nested seeded fault set — see configs/fig16.conf), so
/// the degraded-operation engine path is tracked run over run too.
core::ScenarioSpec resilience_spec(bool quick, std::uint64_t seed) {
  core::ScenarioSpec s = point_spec("radix16-swless", 0.9, quick, seed);
  s.topo["g"] = quick ? "5" : "11";
  s.fault.rate = 0.1;
  s.fault.kind = topo::FaultKind::Global;
  s.fault.seed = 7;
  return s;
}

/// Online-resilience preset: the same fig16a point but with the faults
/// arriving as a *timeline* mid-run (fail 10% of globals at the end of
/// warmup, repair half of them mid-measurement) — tracks the fault-step
/// sweep, packet rescue, and online-reroute engine paths.
core::ScenarioSpec resilience_online_spec(bool quick, std::uint64_t seed) {
  core::ScenarioSpec s = point_spec("radix16-swless", 0.9, quick, seed);
  s.topo["g"] = quick ? "5" : "11";
  s.fault.seed = 7;
  const Cycle fail_at = s.sim.warmup;
  const Cycle repair_at = s.sim.warmup + s.sim.measure / 2;
  s.fault.events = "fail@" + std::to_string(fail_at) +
                   ":global=0.1;repair@" + std::to_string(repair_at) +
                   ":global=0.05";
  return s;
}

/// Multi-tenant serving preset: the acceptance-mix 3-tenant scenario
/// (ring-AllReduce + windowed all-to-all + seeded request/reply on
/// disjoint placements, one shared simulation plus per-tenant isolation
/// baselines) — tracks the merged-DAG runner and interference accounting.
core::ScenarioSpec tenants_spec(bool quick, std::uint64_t seed) {
  core::ScenarioSpec s;
  s.label = "tenants-mix3";
  s.topology = "tiny-swless";
  s.sim.seed = seed;
  s.sim.shards = 1;
  s.set("tenants", "3");
  const char* chips = quick ? "8" : "16";
  s.set("tenant0.workload", "ring-allreduce");
  s.set("tenant0.chips", chips);
  s.set("tenant0.scope", "system");
  s.set("tenant0.kib", quick ? "16" : "64");
  s.set("tenant1.workload", "all-to-all");
  s.set("tenant1.chips", chips);
  s.set("tenant1.scope", "system");
  s.set("tenant1.kib", quick ? "4" : "16");
  s.set("tenant1.window", "2");
  s.set("tenant1.placement", "scattered");
  s.set("tenant2.workload", "request-reply");
  s.set("tenant2.chips", chips);
  s.set("tenant2.requests", quick ? "32" : "128");
  return s;
}

/// Multi-plane preset: the tiny switch-less fabric instantiated twice as
/// independent planes (hash plane selection), uniform traffic at 0.5 —
/// tracks the PlaneSet build path, twin remapping, and the per-plane
/// counter plumbing run over run.
core::ScenarioSpec planes_spec(bool quick, std::uint64_t seed) {
  core::ScenarioSpec s = point_spec("tiny-swless", 0.5, quick, seed);
  s.label = "planes-k2";
  s.plane_count = 2;
  s.plane_policy = route::PlanePolicy::Hash;
  return s;
}

/// Wafer-stack preset: two radix-16 switch-less wafers bonded into one
/// stack (all-pairs vertical columns, doubled VC space, one-vertical-hop
/// routing), uniform traffic at 0.5 — tracks the wafer dispatcher, the
/// vertical-bond engine path, and the per-wafer counter plumbing.
core::ScenarioSpec wafer_stack_spec(bool quick, std::uint64_t seed) {
  core::ScenarioSpec s = point_spec("radix16-swless", 0.5, quick, seed);
  s.label = "wafer2-radix16";
  s.wafer_count = 2;
  return s;
}

/// Folds one per-point RSS sample into the result's min/max/aggregate.
void fold_rss(PerfResult& r, double rss, bool first) {
  if (first || rss < r.rss_min_mb) r.rss_min_mb = rss;
  if (first || rss > r.rss_max_mb) r.rss_max_mb = rss;
  r.peak_rss_mb = r.rss_max_mb;
}

PerfResult run_tenants_preset(const std::string& preset,
                              const core::ScenarioSpec& spec) {
  PerfResult r;
  r.preset = preset;
  rss_tracker().reset();
  const auto t0 = std::chrono::steady_clock::now();
  const trace::MultiTenantResult run = trace::run_tenant_scenario(spec);
  const auto t1 = std::chrono::steady_clock::now();
  r.points = 1;
  // Total simulated work: the shared run's makespan plus every isolation
  // baseline (the interference denominators are real simulations too).
  r.cycles = run.cycles;
  for (const auto& t : run.tenants) r.cycles += t.isolated_ttc;
  r.flit_hops = run.flit_hops;
  r.delivered = run.packets_delivered;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  if (r.wall_s > 0.0) {
    r.cycles_per_sec = static_cast<double>(r.cycles) / r.wall_s;
    r.flit_hops_per_sec = static_cast<double>(r.flit_hops) / r.wall_s;
  }
  fold_rss(r, rss_tracker().peak_mb(), true);
  return r;
}

PerfResult run_workload_preset(const std::string& preset,
                               const core::ScenarioSpec& spec) {
  PerfResult r;
  r.preset = preset;
  rss_tracker().reset();
  const auto t0 = std::chrono::steady_clock::now();
  const core::WorkloadRun run = core::run_workload_scenario(spec);
  const auto t1 = std::chrono::steady_clock::now();
  r.points = 1;
  r.cycles = run.result.cycles;
  r.flit_hops = run.result.flit_hops;
  r.delivered = run.result.packets_delivered;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  if (r.wall_s > 0.0) {
    r.cycles_per_sec = static_cast<double>(r.cycles) / r.wall_s;
    r.flit_hops_per_sec = static_cast<double>(r.flit_hops) / r.wall_s;
  }
  fold_rss(r, rss_tracker().peak_mb(), true);
  return r;
}

PerfResult run_specs(const std::string& preset,
                     const std::vector<core::ScenarioSpec>& specs) {
  PerfResult r;
  r.preset = preset;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& spec : specs) {
    // Sweep points run one spec each so the RSS tracker can be reset
    // around every point. The split replicates run_scenario's own sweep
    // semantics exactly — per-point seed = base seed + point index, and
    // the early-stop rule against the series' zero-load latency — so the
    // per-point SimResults (and hence all the counters below) are
    // bit-identical to handing run_scenario the whole series.
    const std::vector<double> rates = spec.effective_rates();
    double zero_load = 0.0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      core::ScenarioSpec pt_spec = spec;
      pt_spec.rates = {rates[i]};
      pt_spec.sim.seed = spec.sim.seed + i;
      rss_tracker().reset();
      const core::SweepSeries series = core::run_scenario(pt_spec);
      fold_rss(r, rss_tracker().peak_mb(), r.points == 0);
      const sim::SimResult& res = series.points.at(0).res;
      ++r.points;
      r.cycles += res.cycles_run;
      r.flit_hops += res.flit_hops;
      r.delivered += res.delivered_total;
      if (i == 0) zero_load = res.avg_latency;
      if (spec.stop_latency_factor > 0 && zero_load > 0 &&
          res.avg_latency > zero_load * spec.stop_latency_factor)
        break;  // saturated: run_scenario's series would end here too
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  if (r.wall_s > 0.0) {
    r.cycles_per_sec = static_cast<double>(r.cycles) / r.wall_s;
    r.flit_hops_per_sec = static_cast<double>(r.flit_hops) / r.wall_s;
  }
  return r;
}

/// One preset: its docs row, whether --quick includes it, and its runner.
/// The execution order of run_perf_suite is the order of this table, and
/// the docs table renders from it — one definition, no drift.
struct PresetDef {
  PresetInfo info;
  bool in_quick;
  std::function<PerfResult(bool quick, std::uint64_t seed)> run;
};

const std::vector<PresetDef>& preset_defs() {
  static const std::vector<PresetDef> defs = [] {
    std::vector<PresetDef> d;
    const auto point = [](const char* name, const char* topology,
                          double rate, int shards) {
      return [name, topology, rate, shards](bool quick, std::uint64_t seed) {
        core::ScenarioSpec s = point_spec(topology, rate, quick, seed);
        s.sim.shards = shards;
        return run_specs(name, {s});
      };
    };
    d.push_back({{"radix16-low", "quick+full",
                  "latency-regime engine throughput: radix-16 switch-less, "
                  "uniform, offered load 0.1, serial engine"},
                 true,
                 point("radix16-low", "radix16-swless", 0.1, 1)});
    d.push_back({{"radix16-trickle", "quick+full",
                  "idle-dominated engine path: radix-16 switch-less at "
                  "trace-trickle load (offered 1e-5) over a long window — "
                  "cycles/sec is dominated by idle-cycle elision jumping "
                  "between isolated packets"},
                 true,
                 [](bool quick, std::uint64_t seed) {
                   core::ScenarioSpec s =
                       point_spec("radix16-swless", 1e-5, quick, seed);
                   // Long, almost-empty window: the full scan engine pays
                   // every cycle, the event-driven engine only the ~0.3%
                   // with work in flight.
                   s.sim.warmup = quick ? 500 : 2000;
                   s.sim.measure = quick ? 4000 : 40000;
                   s.sim.drain = quick ? 1000 : 3000;
                   return run_specs("radix16-trickle", {s});
                 }});
    d.push_back({{"radix16-sat", "quick+full",
                  "saturation-regime engine throughput: radix-16 "
                  "switch-less, uniform, offered load 0.9, serial engine"},
                 true,
                 point("radix16-sat", "radix16-swless", 0.9, 1)});
    d.push_back({{"radix16-sat-sh2", "quick+full",
                  "the radix16-sat point on the sharded engine (shards=2): "
                  "same simulation bit-for-bit, two-thread two-phase "
                  "execution — cycles/sec vs radix16-sat is the intra-sim "
                  "speedup"},
                 true,
                 point("radix16-sat-sh2", "radix16-swless", 0.9, 2)});
    d.push_back({{"allreduce-ttc", "quick+full",
                  "closed-loop workload engine: fig14 ring-AllReduce "
                  "time-to-completion on one radix-16 W-group (`cycles` is "
                  "the completion time)"},
                 true,
                 [](bool quick, std::uint64_t seed) {
                   return run_workload_preset("allreduce-ttc",
                                              allreduce_spec(quick, seed));
                 }});
    d.push_back({{"resilience-f10", "quick+full",
                  "degraded-fabric engine path: fig16a saturation point "
                  "with 10% of global cables failed, fault-aware routing"},
                 true,
                 [](bool quick, std::uint64_t seed) {
                   return run_specs("resilience-f10",
                                    {resilience_spec(quick, seed)});
                 }});
    d.push_back({{"resilience-online", "quick+full",
                  "online-fault engine path: the resilience-f10 point with "
                  "the faults arriving as a mid-run timeline (fail 10% of "
                  "globals, repair half later) — fault-step sweep, packet "
                  "rescue, and live rerouting"},
                 true,
                 [](bool quick, std::uint64_t seed) {
                   return run_specs("resilience-online",
                                    {resilience_online_spec(quick, seed)});
                 }});
    d.push_back({{"tenants-mix3", "quick+full",
                  "multi-tenant serving path: 3 co-located jobs "
                  "(ring-AllReduce + all-to-all + request/reply) as one "
                  "merged-DAG run plus isolation baselines (`cycles` sums "
                  "the shared makespan and the baselines)"},
                 true,
                 [](bool quick, std::uint64_t seed) {
                   return run_tenants_preset("tenants-mix3",
                                             tenants_spec(quick, seed));
                 }});
    d.push_back({{"planes-k2", "quick+full",
                  "multi-plane engine path: the tiny switch-less fabric as "
                  "two independent planes with hash per-packet plane "
                  "selection, uniform traffic at offered load 0.5"},
                 true,
                 [](bool quick, std::uint64_t seed) {
                   return run_specs("planes-k2", {planes_spec(quick, seed)});
                 }});
    d.push_back({{"wafer2-radix16", "quick+full",
                  "wafer-stack engine path: two radix-16 switch-less "
                  "wafers bonded by vertical columns (2V+1 VC classes, one "
                  "vertical hop per cross-wafer packet), uniform traffic "
                  "at offered load 0.5"},
                 true,
                 [](bool quick, std::uint64_t seed) {
                   return run_specs("wafer2-radix16",
                                    {wafer_stack_spec(quick, seed)});
                 }});
    d.push_back({{"radix32-low", "full",
                  "latency-regime throughput at the paper's radix-32 scale, "
                  "serial engine"},
                 false,
                 point("radix32-low", "radix32-swless", 0.1, 1)});
    d.push_back({{"radix32-sat", "full",
                  "saturation-regime throughput at the radix-32 scale, "
                  "serial engine"},
                 false,
                 point("radix32-sat", "radix32-swless", 0.9, 1)});
    d.push_back({{"radix32-sat-sh4", "full",
                  "the radix32-sat point on the sharded engine (shards=4): "
                  "the single-large-point scaling lever at the paper's "
                  "full-wafer scale"},
                 false,
                 point("radix32-sat-sh4", "radix32-swless", 0.9, 4)});
    d.push_back({{"fig11a-sweep", "full",
                  "end-to-end figure reproduction: the three-series "
                  "radix-16 fig11a sweep (the repo's headline perf number)"},
                 false,
                 [](bool, std::uint64_t seed) {
                   return run_specs("fig11a-sweep", fig11a_specs(seed));
                 }});
    return d;
  }();
  return defs;
}

}  // namespace

const std::vector<PresetInfo>& preset_infos() {
  static const std::vector<PresetInfo> infos = [] {
    std::vector<PresetInfo> out;
    for (const auto& d : preset_defs()) out.push_back(d.info);
    return out;
  }();
  return infos;
}

std::string render_preset_table() {
  std::string out;
  out += "| Preset | Modes | Measures |\n| --- | --- | --- |\n";
  for (const auto& p : preset_infos())
    out += "| `" + p.name + "` | " + p.modes + " | " + p.what + " |\n";
  return out;
}

std::vector<PerfResult> run_perf_suite(bool quick, std::uint64_t seed) {
  std::vector<PerfResult> out;
  for (const auto& d : preset_defs()) {
    if (quick && !d.in_quick) continue;
    std::fprintf(stderr, "sldf-bench: running %s ...\n",
                 d.info.name.c_str());
    out.push_back(d.run(quick, seed));
  }
  return out;
}

void write_bench_json(const std::string& path,
                      const std::vector<PerfResult>& results, bool quick) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << "{\n  \"bench\": \"sldf-bench\",\n  \"schema\": 1,\n";
  f << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n";
  f << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PerfResult& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"preset\": \"%s\", \"points\": %d, "
                  "\"cycles\": %llu, \"flit_hops\": %llu, "
                  "\"delivered_packets\": %llu, \"wall_s\": %.3f, "
                  "\"cycles_per_sec\": %.0f, \"flit_hops_per_sec\": %.0f, "
                  "\"peak_rss_mb\": %.1f, \"rss_min_mb\": %.1f, "
                  "\"rss_max_mb\": %.1f}%s\n",
                  r.preset.c_str(), r.points,
                  static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(r.flit_hops),
                  static_cast<unsigned long long>(r.delivered), r.wall_s,
                  r.cycles_per_sec, r.flit_hops_per_sec, r.peak_rss_mb,
                  r.rss_min_mb, r.rss_max_mb,
                  i + 1 < results.size() ? "," : "");
    f << buf;
  }
  f << "  ]\n}\n";
}

}  // namespace sldf::bench
