// Fig 15(a-b): average energy per transmitted bit, split into
// inter-C-group (long-reach: 20 pJ/bit per hop) and intra-C-group
// (on-wafer: 1 pJ/bit average) components, for minimal and non-minimal
// routing at small scale (4x4-router C-groups, radix-16) and large scale
// (8x4-router C-groups, radix-32). Paper result: eliminating switches
// reduces total pJ/bit even though the wafer mesh adds short-reach hops;
// non-minimal routing on large C-groups shows the biggest on-wafer
// overhead.
#include "bench_common.hpp"
#include "model/energy.hpp"

using namespace sldf;
using namespace sldf::bench;
using route::RouteMode;

namespace {

struct EnergyRow {
  std::string net;
  std::string scale;
  double inter_pj;
  double intra_pj;
  double avg_hops;
};

EnergyRow measure(core::ScenarioSpec spec, const std::string& scale,
                  double rate) {
  spec.rates = {rate};  // single-point "sweep" at the probe rate
  const auto series = core::run_scenario(spec);
  const auto& res = series.points.front().res;
  const auto e = model::price_result(res);
  return {spec.label, scale, e.inter_cgroup_pj, e.intra_cgroup_pj,
          res.avg_hops_total};
}

}  // namespace

namespace {

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 15(a-b): average energy per bit (pJ/bit), inter vs intra C-group");

  const int g16 = env.quick ? 7 : 11;
  const int g32 = env.quick ? 5 : 11;
  const double rate = cli.get_double("rate", 0.2);

  struct Series {
    const char* label;
    bool swless;
    RouteMode mode;
  };
  const Series series[] = {
      {"SW-based", false, RouteMode::Minimal},
      {"SW-less", true, RouteMode::Minimal},
      {"SW-based-Misrouting", false, RouteMode::Valiant},
      {"SW-less-Misrouting", true, RouteMode::Valiant}};

  std::vector<EnergyRow> rows;
  // (a) small scale: 4x4-router C-groups (radix-16 equivalents);
  // (b) large scale: 8x4-router C-groups (radix-32 equivalents; the paper
  // uses 7x7 C-group meshes — same regime: more short-reach hops).
  struct Scale {
    const char* name;
    const char* swless_topo;
    const char* swdf_topo;
    int g;
  };
  const Scale scales[] = {{"small(4x4)", "radix16-swless", "radix16-swdf", g16},
                          {"large(8x4)", "radix32-swless", "radix32-swdf", g32}};
  for (const auto& scale : scales) {
    for (const auto& ser : series) {
      auto s = env.spec(ser.label,
                        ser.swless ? scale.swless_topo : scale.swdf_topo,
                        "uniform");
      s.mode = ser.mode;
      s.topo["g"] = std::to_string(scale.g);
      rows.push_back(measure(s, scale.name, rate));
    }
  }

  CsvWriter csv(env.out_dir + "/fig15.csv",
                {"network", "scale", "inter_cgroup_pj", "intra_cgroup_pj",
                 "total_pj", "avg_hops"});
  std::printf("%-24s %-12s %10s %10s %10s %9s\n", "network", "scale",
              "inter(pJ)", "intra(pJ)", "total(pJ)", "hops");
  for (const auto& r : rows) {
    std::printf("%-24s %-12s %10.1f %10.1f %10.1f %9.2f\n", r.net.c_str(),
                r.scale.c_str(), r.inter_pj, r.intra_pj,
                r.inter_pj + r.intra_pj, r.avg_hops);
    csv.row(std::vector<std::string>{
        r.net, r.scale, CsvWriter::format_num(r.inter_pj),
        CsvWriter::format_num(r.intra_pj),
        CsvWriter::format_num(r.inter_pj + r.intra_pj),
        CsvWriter::format_num(r.avg_hops)});
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig15_energy", [&] { return bench_main(argc, argv); });
}
