// Fig 15(a-b): average energy per transmitted bit, split into
// inter-C-group (long-reach: 20 pJ/bit per hop) and intra-C-group
// (on-wafer: 1 pJ/bit average) components, for minimal and non-minimal
// routing at small scale (4x4-router C-groups, radix-16) and large scale
// (8x4-router C-groups, radix-32). Paper result: eliminating switches
// reduces total pJ/bit even though the wafer mesh adds short-reach hops;
// non-minimal routing on large C-groups shows the biggest on-wafer
// overhead.
#include "bench_common.hpp"
#include "core/params.hpp"
#include "model/energy.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::bench;
using route::RouteMode;

namespace {

struct EnergyRow {
  std::string net;
  std::string scale;
  double inter_pj;
  double intra_pj;
  double avg_hops;
};

EnergyRow measure(const BenchEnv& env, const std::string& label,
                  const std::string& scale, const core::NetFactory& factory,
                  double rate) {
  sim::Network net;
  factory(net);
  auto tr = traffic::make_pattern("uniform", net);
  sim::SimConfig cfg = env.base;
  cfg.inj_rate_per_chip = rate;
  const auto res = sim::run_sim(net, cfg, *tr);
  const auto e = model::price_result(res);
  return {label, scale, e.inter_cgroup_pj, e.intra_cgroup_pj,
          res.avg_hops_total};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 15(a-b): average energy per bit (pJ/bit), inter vs intra C-group");

  const int g16 = env.quick ? 7 : 11;
  const int g32 = env.quick ? 5 : 11;
  const double rate = cli.get_double("rate", 0.2);

  std::vector<EnergyRow> rows;
  const auto swless16 = [g16](RouteMode m) {
    return [g16, m](sim::Network& n) {
      auto p = core::radix16_swless();
      p.g = g16;
      p.mode = m;
      topo::build_swless_dragonfly(n, p);
    };
  };
  const auto swdf16 = [g16](RouteMode m) {
    return [g16, m](sim::Network& n) {
      auto p = core::radix16_swdf();
      p.groups = g16;
      p.mode = m;
      topo::build_sw_dragonfly(n, p);
    };
  };
  const auto swless32 = [g32](RouteMode m) {
    return [g32, m](sim::Network& n) {
      auto p = core::radix32_swless();
      p.g = g32;
      p.mode = m;
      topo::build_swless_dragonfly(n, p);
    };
  };
  const auto swdf32 = [g32](RouteMode m) {
    return [g32, m](sim::Network& n) {
      auto p = core::radix32_swdf();
      p.groups = g32;
      p.mode = m;
      topo::build_sw_dragonfly(n, p);
    };
  };

  // (a) small scale: 4x4-router C-groups (radix-16 equivalents).
  rows.push_back(measure(env, "SW-based", "small(4x4)",
                         swdf16(RouteMode::Minimal), rate));
  rows.push_back(measure(env, "SW-less", "small(4x4)",
                         swless16(RouteMode::Minimal), rate));
  rows.push_back(measure(env, "SW-based-Misrouting", "small(4x4)",
                         swdf16(RouteMode::Valiant), rate));
  rows.push_back(measure(env, "SW-less-Misrouting", "small(4x4)",
                         swless16(RouteMode::Valiant), rate));
  // (b) large scale: 8x4-router C-groups (radix-32 equivalents; the paper
  // uses 7x7 C-group meshes — same regime: more short-reach hops).
  rows.push_back(measure(env, "SW-based", "large(8x4)",
                         swdf32(RouteMode::Minimal), rate));
  rows.push_back(measure(env, "SW-less", "large(8x4)",
                         swless32(RouteMode::Minimal), rate));
  rows.push_back(measure(env, "SW-based-Misrouting", "large(8x4)",
                         swdf32(RouteMode::Valiant), rate));
  rows.push_back(measure(env, "SW-less-Misrouting", "large(8x4)",
                         swless32(RouteMode::Valiant), rate));

  CsvWriter csv(env.out_dir + "/fig15.csv",
                {"network", "scale", "inter_cgroup_pj", "intra_cgroup_pj",
                 "total_pj", "avg_hops"});
  std::printf("%-24s %-12s %10s %10s %10s %9s\n", "network", "scale",
              "inter(pJ)", "intra(pJ)", "total(pJ)", "hops");
  for (const auto& r : rows) {
    std::printf("%-24s %-12s %10.1f %10.1f %10.1f %9.2f\n", r.net.c_str(),
                r.scale.c_str(), r.inter_pj, r.intra_pj,
                r.inter_pj + r.intra_pj, r.avg_hops);
    csv.row(std::vector<std::string>{
        r.net, r.scale, CsvWriter::format_num(r.inter_pj),
        CsvWriter::format_num(r.intra_pj),
        CsvWriter::format_num(r.inter_pj + r.intra_pj),
        CsvWriter::format_num(r.avg_hops)});
  }
  return 0;
}
