// Ablation (ours, extending §V-B4): UGAL-L adaptive routing versus always-
// minimal and always-Valiant on the radix-16 network. Adaptive should track
// minimal under benign (uniform) traffic — avoiding Valiant's two-global
// path tax — and divert like Valiant under the adversarial worst-case
// pattern, giving the best of both with no configuration change.
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;
using route::RouteMode;

namespace {

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Ablation: UGAL-L adaptive vs minimal vs Valiant (radix-16)");

  const int g = env.quick ? 9 : static_cast<int>(cli.get_int("g", 0));

  struct Panel {
    const char* name;
    const char* pattern;
    double max_rate;
  };
  const Panel panels[] = {{"uniform", "uniform", 0.6},
                          {"worst-case", "worst-case", 0.48}};

  auto csv = env.csv("ablation_adaptive.csv");
  for (const auto& p : panels) {
    std::printf("--- %s ---\n", p.name);
    for (auto mode :
         {RouteMode::Minimal, RouteMode::Valiant, RouteMode::Adaptive}) {
      auto s = env.spec(std::string(p.name) + "/" + to_string(mode),
                        "radix16-swless", p.pattern);
      s.topo["g"] = std::to_string(g);
      s.mode = mode;
      s.max_rate = p.max_rate;
      s.points = env.points(4);
      run_spec(csv, s);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("ablation_adaptive", [&] { return bench_main(argc, argv); });
}
