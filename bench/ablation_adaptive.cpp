// Ablation (ours, extending §V-B4): UGAL-L adaptive routing versus always-
// minimal and always-Valiant on the radix-16 network. Adaptive should track
// minimal under benign (uniform) traffic — avoiding Valiant's two-global
// path tax — and divert like Valiant under the adversarial worst-case
// pattern, giving the best of both with no configuration change.
#include "bench_common.hpp"
#include "core/params.hpp"
#include "topo/swless.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::bench;
using route::RouteMode;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Ablation: UGAL-L adaptive vs minimal vs Valiant (radix-16)");

  const int g = env.quick ? 9 : static_cast<int>(cli.get_int("g", 0));
  const auto swless = [g](RouteMode mode) {
    return [g, mode](sim::Network& n) {
      auto p = core::radix16_swless();
      p.g = g;
      p.mode = mode;
      topo::build_swless_dragonfly(n, p);
    };
  };

  struct Panel {
    const char* name;
    const char* pattern;
    double max_rate;
  };
  const Panel panels[] = {{"uniform", "uniform", 0.6},
                          {"worst-case", "worst-case", 0.48}};

  auto csv = env.csv("ablation_adaptive.csv");
  for (const auto& p : panels) {
    const auto rates = core::linspace_rates(p.max_rate, env.points(4));
    const auto traffic_factory = [&](const sim::Network& n) {
      return traffic::make_pattern(p.pattern, n);
    };
    std::printf("--- %s ---\n", p.name);
    for (auto mode :
         {RouteMode::Minimal, RouteMode::Valiant, RouteMode::Adaptive}) {
      run_series(env, csv,
                 std::string(p.name) + "/" + to_string(mode),
                 swless(mode), traffic_factory, rates);
    }
  }
  return 0;
}
