// Fig 16 (resilience, beyond the paper's pristine fabrics): degraded
// operation under injected link faults, radix-16 switch-less vs switch-based
// Dragonfly with fault-aware routing.
//
// (a) accepted throughput at saturation load (uniform, offered 0.9) vs the
//     fraction of failed *global* cables — the switch-less fabric's story:
//     path diversity turns a dead inter-W-group cable into one extra global
//     hop, so throughput degrades gracefully instead of partitioning.
// (b) ring-AllReduce time-to-completion (closed loop, one W-group) vs the
//     fraction of failed *local* cables — dead C-group-to-C-group links are
//     detoured through intermediate C-groups, stretching the ring.
//
// Fault sets are nested across fractions (one fault.seed: a higher rate
// fails a superset of a lower rate's cables), so both curves degrade
// monotonically by construction rather than hopping between unrelated
// fault sets. Same seed => bit-identical results.
// Equivalent driver invocation: sldf --config configs/fig16.conf
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

constexpr std::uint64_t kFaultSeed = 7;

std::string frac_label(const char* base, double frac) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "-f%02d",
                static_cast<int>(100.0 * frac + 0.5));
  return std::string(base) + buf;
}

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 16(a-b): resilience under injected link faults");

  const std::vector<double> fracs =
      env.quick ? std::vector<double>{0.0, 0.1, 0.2}
                : std::vector<double>{0.0, 0.05, 0.1, 0.15, 0.2};
  const int g = env.quick ? 5 : static_cast<int>(cli.get_int("g", 11));

  struct Series {
    const char* label;
    const char* topology;
  };
  const Series series[] = {{"SW-based", "radix16-swdf"},
                           {"SW-less", "radix16-swless"}};

  // --- (a) saturation throughput vs failed global-cable fraction ---
  {
    CsvWriter csv(env.out_dir + "/fig16a_throughput.csv",
                  {"series", "fail_frac", "offered", "accepted",
                   "avg_latency", "p99", "drained"});
    std::printf("--- fig16a (accepted throughput vs failed globals) ---\n");
    for (const auto& ser : series) {
      for (const double frac : fracs) {
        auto s = env.spec(frac_label(ser.label, frac), ser.topology,
                          "uniform");
        s.topo["g"] = std::to_string(g);
        // Every point — including the pristine frac = 0 baseline — builds
        // with the fault-detour VC budget, so the curves vary only in the
        // injected faults, never in buffering.
        s.topo["fault_tolerant"] = "1";
        s.rates = {0.9};
        s.fault.rate = frac;
        s.fault.kind = topo::FaultKind::Global;
        s.fault.seed = kFaultSeed;
        const auto run = core::run_scenario(s);
        core::print_series(run);
        for (const auto& pt : run.points) {
          csv.row(std::vector<std::string>{
              ser.label, CsvWriter::format_num(frac),
              CsvWriter::format_num(pt.rate),
              CsvWriter::format_num(pt.res.accepted),
              CsvWriter::format_num(pt.res.avg_latency),
              CsvWriter::format_num(pt.res.p99_latency),
              pt.res.drained ? "1" : "0"});
        }
      }
    }
  }

  // --- (b) ring-AllReduce TTC vs failed local-cable fraction (g = 1) ---
  {
    CsvWriter csv(env.out_dir + "/fig16b_ttc.csv",
                  {"series", "fail_frac", "chips", "messages", "cycles",
                   "gbps_per_chip", "completed"});
    std::printf("--- fig16b (AllReduce completion vs failed locals) ---\n");
    for (const auto& ser : series) {
      for (const double frac : fracs) {
        auto s = env.spec(frac_label(ser.label, frac), ser.topology,
                          "uniform");
        s.topo["g"] = "1";
        s.topo["fault_tolerant"] = "1";  // same budget at frac = 0 too
        s.workload = "ring-allreduce";
        s.workload_opts["scope"] = "wgroup";
        s.workload_opts["kib"] = env.quick ? "4" : "16";
        s.workload_opts["chunks"] = "4";
        s.fault.rate = frac;
        s.fault.kind = topo::FaultKind::Local;
        s.fault.seed = kFaultSeed;
        const core::WorkloadRun run = core::run_workload_scenario(s);
        core::print_workload(run);
        const auto& r = run.result;
        csv.row(std::vector<std::string>{
            ser.label, CsvWriter::format_num(frac), std::to_string(r.chips),
            std::to_string(r.messages), std::to_string(r.cycles),
            CsvWriter::format_num(r.gbps_per_chip),
            r.completed ? "1" : "0"});
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig16_resilience",
                              [&] { return bench_main(argc, argv); });
}
