// Fig 10(c-f): local (intra-W-group / intra-Dragonfly-group) performance.
// One radix-16 W-group: 8 C-groups (32 chips) fully connected, versus the
// switch-based group (8 switches x 4 terminals). Patterns: uniform,
// bit-reverse, bit-shuffle, bit-transpose. Paper result: the switch-less
// group reaches 1.2-2x the switch-based saturation except under
// bit-shuffle (inter-C-group links are the bottleneck there), and the 2B
// on-wafer bandwidth widens the gap further.
#include "bench_common.hpp"
#include "core/params.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 10(c-f): intra-W-group latency vs injection rate");

  const auto swless = [](int width) {
    return [width](sim::Network& n) {
      auto p = core::radix16_swless();
      p.g = 1;  // a single fully-connected W-group
      p.mesh_width = width;
      topo::build_swless_dragonfly(n, p);
    };
  };
  const auto swbased = [](sim::Network& n) {
    auto p = core::radix16_swdf();
    p.groups = 1;
    topo::build_sw_dragonfly(n, p);
  };

  struct Panel {
    const char* fig;
    const char* pattern;
    double max_rate;
  };
  const Panel panels[] = {{"fig10c", "uniform", 2.0},
                          {"fig10d", "bit-reverse", 1.6},
                          {"fig10e", "bit-shuffle", 0.5},
                          {"fig10f", "bit-transpose", 1.8}};

  for (const auto& p : panels) {
    auto csv = env.csv(std::string(p.fig) + ".csv");
    const auto rates = core::linspace_rates(p.max_rate, env.points(8));
    const auto traffic_factory = [&](const sim::Network& n) {
      return traffic::make_pattern(p.pattern, n);
    };
    std::printf("--- %s (%s) ---\n", p.fig, p.pattern);
    run_series(env, csv, "SW-based", swbased, traffic_factory, rates);
    run_series(env, csv, "SW-less", swless(1), traffic_factory, rates);
    run_series(env, csv, "SW-less-2B", swless(2), traffic_factory, rates);
  }
  return 0;
}
