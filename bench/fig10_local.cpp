// Fig 10(c-f): local (intra-W-group / intra-Dragonfly-group) performance.
// One radix-16 W-group: 8 C-groups (32 chips) fully connected, versus the
// switch-based group (8 switches x 4 terminals). Patterns: uniform,
// bit-reverse, bit-shuffle, bit-transpose. Paper result: the switch-less
// group reaches 1.2-2x the switch-based saturation except under
// bit-shuffle (inter-C-group links are the bottleneck there), and the 2B
// on-wafer bandwidth widens the gap further.
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 10(c-f): intra-W-group latency vs injection rate");

  struct Panel {
    const char* fig;
    const char* pattern;
    double max_rate;
  };
  const Panel panels[] = {{"fig10c", "uniform", 2.0},
                          {"fig10d", "bit-reverse", 1.6},
                          {"fig10e", "bit-shuffle", 0.5},
                          {"fig10f", "bit-transpose", 1.8}};

  struct Series {
    const char* label;
    const char* topology;
    int mesh_width;
  };
  const Series series[] = {{"SW-based", "radix16-swdf", 0},
                           {"SW-less", "radix16-swless", 1},
                           {"SW-less-2B", "radix16-swless", 2}};

  for (const auto& p : panels) {
    auto csv = env.csv(std::string(p.fig) + ".csv");
    std::printf("--- %s (%s) ---\n", p.fig, p.pattern);
    for (const auto& ser : series) {
      auto s = env.spec(ser.label, ser.topology, p.pattern);
      s.topo["g"] = "1";  // a single fully-connected (W-)group
      if (ser.mesh_width > 1)
        s.topo["mesh_width"] = std::to_string(ser.mesh_width);
      s.max_rate = p.max_rate;
      s.points = env.points(8);
      run_spec(csv, s);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig10_local", [&] { return bench_main(argc, argv); });
}
