// Fig 17 (multi-tenant serving, beyond the paper's single-job runs): the
// cost of placement policy under co-located jobs. The 3-tenant mix
// (ring-AllReduce training job + windowed all-to-all + trace-style
// request/reply inference) is placed with every tenant contiguous vs every
// tenant scattered, at increasing chips per tenant.
//
// Contiguous placement keeps each job's traffic inside few C-groups, so
// co-tenants mostly stay out of each other's channels; scattered placement
// spreads every job across the wafer and the jobs' flows share the global
// cables. The per-tenant `interference` column (shared-run TTC over
// isolated-run TTC on the same placement) quantifies the difference — the
// scattered rows degrade markedly more than the contiguous ones.
//
// All tenants use scope=system so a scattered placement still forms one
// collective group per job. Fixed seed => bit-identical results.
// Equivalent driver invocation: sldf --config configs/tenants.conf
#include "bench_common.hpp"
#include "trace/tenants.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

core::ScenarioSpec mix_spec(const BenchEnv& env, const std::string& topology,
                            const char* policy, int chips) {
  core::ScenarioSpec s;
  s.label = std::string(policy) + "-c" + std::to_string(chips);
  s.topology = topology;
  s.sim = env.base;
  s.set("tenants", "3");
  const std::string n = std::to_string(chips);
  s.set("tenant0.workload", "ring-allreduce");
  s.set("tenant0.chips", n);
  s.set("tenant0.scope", "system");
  s.set("tenant0.kib", env.quick ? "16" : "64");
  s.set("tenant1.workload", "all-to-all");
  s.set("tenant1.chips", n);
  s.set("tenant1.scope", "system");
  s.set("tenant1.kib", env.quick ? "4" : "16");
  s.set("tenant1.window", "2");
  s.set("tenant2.workload", "request-reply");
  s.set("tenant2.chips", n);
  s.set("tenant2.requests", env.quick ? "32" : "128");
  for (int i = 0; i < 3; ++i)
    s.set("tenant" + std::to_string(i) + ".placement", policy);
  return s;
}

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 17: tenant placement policy vs interference");

  const std::string topology =
      cli.get("topology", env.quick ? "tiny-swless" : "radix16-swless");
  const std::vector<int> sizes = env.quick ? std::vector<int>{4, 8}
                                           : std::vector<int>{4, 8, 16};

  CsvWriter csv(env.out_dir + "/fig17_tenants.csv",
                trace::tenants_csv_header());
  for (const char* policy : {"contiguous", "scattered"}) {
    for (const int chips : sizes) {
      const auto r = trace::run_tenant_scenario(mix_spec(env, topology,
                                                         policy, chips));
      trace::print_tenants(r);
      trace::append_tenants_csv(csv, r);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig17_tenants",
                              [&] { return bench_main(argc, argv); });
}
