// Ablation (ours, motivated by §IV-B): the three virtual-channel schemes.
//   Baseline     4 VCs minimal / 6 non-minimal (one class per C-group)
//   Reduced      3 / 4 (paper's claim; label-monotone destination W-group)
//   ReducedSafe  4 / 5 (provably acyclic split of the dest-W merge)
// Reports (1) the CDG audit verdict per scheme on a small instance and
// (2) latency/throughput on the radix-16 network — quantifying what the
// monotone path discipline costs in performance.
#include "bench_common.hpp"
#include "route/cdg.hpp"
#include "sim/network.hpp"

using namespace sldf;
using namespace sldf::bench;
using route::RouteMode;
using route::VcScheme;

namespace {

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Ablation: VC schemes (Baseline / Reduced / ReducedSafe)");

  // --- CDG audits on a small instance (exhaustive path enumeration) ---
  std::printf("CDG deadlock audits (a=1,b=3 C-groups of 2x2, g=5):\n");
  for (auto mode : {RouteMode::Minimal, RouteMode::Valiant}) {
    for (auto scheme :
         {VcScheme::Baseline, VcScheme::Reduced, VcScheme::ReducedSafe}) {
      auto spec = env.spec("audit", "tiny-swless", "uniform");
      spec.mode = mode;
      spec.scheme = scheme;
      sim::Network net;
      core::build_network(net, spec);
      const auto rep = route::audit_cdg(net);
      std::printf("  %-13s %-8s vcs=%d : %s\n", to_string(scheme),
                  to_string(mode), net.num_vcs(),
                  rep.to_string(net).c_str());
    }
  }
  std::printf("\n");

  // --- Performance on the radix-16 network, uniform traffic ---
  const int g = env.quick ? 9 : 15;
  auto csv = env.csv("ablation_vc_schemes.csv");
  for (auto scheme :
       {VcScheme::Baseline, VcScheme::Reduced, VcScheme::ReducedSafe}) {
    auto s = env.spec(std::string("swless-") + to_string(scheme),
                      "radix16-swless", "uniform");
    s.topo["g"] = std::to_string(g);
    s.scheme = scheme;
    s.max_rate = 0.8;
    s.points = env.points(5);
    run_spec(csv, s);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("ablation_vc_schemes", [&] { return bench_main(argc, argv); });
}
