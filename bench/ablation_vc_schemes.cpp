// Ablation (ours, motivated by §IV-B): the three virtual-channel schemes.
//   Baseline     4 VCs minimal / 6 non-minimal (one class per C-group)
//   Reduced      3 / 4 (paper's claim; label-monotone destination W-group)
//   ReducedSafe  4 / 5 (provably acyclic split of the dest-W merge)
// Reports (1) the CDG audit verdict per scheme on a small instance and
// (2) latency/throughput on the radix-16 network — quantifying what the
// monotone path discipline costs in performance.
#include "bench_common.hpp"
#include "core/params.hpp"
#include "route/cdg.hpp"
#include "topo/swless.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::bench;
using route::RouteMode;
using route::VcScheme;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Ablation: VC schemes (Baseline / Reduced / ReducedSafe)");

  // --- CDG audits on a small instance (exhaustive path enumeration) ---
  std::printf("CDG deadlock audits (a=1,b=3 C-groups of 2x2, g=5):\n");
  for (auto mode : {RouteMode::Minimal, RouteMode::Valiant}) {
    for (auto scheme :
         {VcScheme::Baseline, VcScheme::Reduced, VcScheme::ReducedSafe}) {
      topo::SwlessParams p;
      p.a = 1;
      p.b = 3;
      p.chip_gx = p.chip_gy = 2;
      p.noc_x = p.noc_y = 1;
      p.ports_per_chiplet = 4;
      p.local_ports = 2;
      p.global_ports = 2;
      p.g = 5;
      p.scheme = scheme;
      p.mode = mode;
      sim::Network net;
      topo::build_swless_dragonfly(net, p);
      const auto rep = route::audit_cdg(net);
      std::printf("  %-13s %-8s vcs=%d : %s\n", to_string(scheme),
                  to_string(mode), net.num_vcs(),
                  rep.to_string(net).c_str());
    }
  }
  std::printf("\n");

  // --- Performance on the radix-16 network, uniform traffic ---
  const int g = env.quick ? 9 : 15;
  auto csv = env.csv("ablation_vc_schemes.csv");
  const auto rates = core::linspace_rates(0.8, env.points(5));
  for (auto scheme :
       {VcScheme::Baseline, VcScheme::Reduced, VcScheme::ReducedSafe}) {
    run_series(env, csv, std::string("swless-") + to_string(scheme),
               [g, scheme](sim::Network& n) {
                 auto p = core::radix16_swless();
                 p.g = g;
                 p.scheme = scheme;
                 topo::build_swless_dragonfly(n, p);
               },
               [](const sim::Network& n) {
                 return traffic::make_pattern("uniform", n);
               },
               rates);
  }
  return 0;
}
