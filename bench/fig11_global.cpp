// Fig 11(a-b): global performance of the full radix-16 networks
// (g = 41 W-groups, 1312 chips) under uniform and bit-reverse traffic.
// Paper result: with equal link bandwidth the switch-less Dragonfly is
// slightly below the switch-based baseline (C-group mesh bisection is half
// a non-blocking switch); doubling the on-wafer bandwidth (2B) puts it
// clearly ahead.
//
// Default runs use a reduced measurement window (the full Table IV window
// is available via --paper); --quick additionally trims g.
// Equivalent driver invocation: sldf --config configs/fig11a.conf
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Fig 11(a-b): global latency vs injection rate (radix-16, 1312 chips)");

  const int g = env.quick ? 15 : static_cast<int>(cli.get_int("g", 0));

  struct Panel {
    const char* fig;
    const char* pattern;
    double max_rate;
  };
  const Panel panels[] = {{"fig11a", "uniform", 1.0},
                          {"fig11b", "bit-reverse", 0.6}};

  for (const auto& p : panels) {
    auto csv = env.csv(std::string(p.fig) + ".csv");
    std::printf("--- %s (%s) ---\n", p.fig, p.pattern);
    for (const char* label : {"SW-based", "SW-less", "SW-less-2B"}) {
      auto s = env.spec(label, std::string(label) == "SW-based"
                                   ? "radix16-swdf"
                                   : "radix16-swless",
                        p.pattern);
      s.topo["g"] = std::to_string(g);
      if (std::string(label) == "SW-less-2B") s.topo["mesh_width"] = "2";
      s.max_rate = p.max_rate;
      s.points = env.points(6);
      run_spec(csv, s);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig11_global", [&] { return bench_main(argc, argv); });
}
