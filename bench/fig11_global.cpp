// Fig 11(a-b): global performance of the full radix-16 networks
// (g = 41 W-groups, 1312 chips) under uniform and bit-reverse traffic.
// Paper result: with equal link bandwidth the switch-less Dragonfly is
// slightly below the switch-based baseline (C-group mesh bisection is half
// a non-blocking switch); doubling the on-wafer bandwidth (2B) puts it
// clearly ahead.
//
// Default runs use a reduced measurement window (the full Table IV window
// is available via --paper); --quick additionally trims g.
#include "bench_common.hpp"
#include "core/params.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Fig 11(a-b): global latency vs injection rate (radix-16, 1312 chips)");

  const int g = env.quick ? 15 : static_cast<int>(cli.get_int("g", 0));

  const auto swless = [g](int width) {
    return [g, width](sim::Network& n) {
      auto p = core::radix16_swless();
      p.g = g;
      p.mesh_width = width;
      topo::build_swless_dragonfly(n, p);
    };
  };
  const auto swbased = [g](sim::Network& n) {
    auto p = core::radix16_swdf();
    p.groups = g;
    topo::build_sw_dragonfly(n, p);
  };

  struct Panel {
    const char* fig;
    const char* pattern;
    double max_rate;
  };
  const Panel panels[] = {{"fig11a", "uniform", 1.0},
                          {"fig11b", "bit-reverse", 0.6}};

  for (const auto& p : panels) {
    auto csv = env.csv(std::string(p.fig) + ".csv");
    const auto rates = core::linspace_rates(p.max_rate, env.points(6));
    const auto traffic_factory = [&](const sim::Network& n) {
      return traffic::make_pattern(p.pattern, n);
    };
    std::printf("--- %s (%s) ---\n", p.fig, p.pattern);
    run_series(env, csv, "SW-based", swbased, traffic_factory, rates);
    run_series(env, csv, "SW-less", swless(1), traffic_factory, rates);
    run_series(env, csv, "SW-less-2B", swless(2), traffic_factory, rates);
  }
  return 0;
}
