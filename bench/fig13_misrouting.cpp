// Fig 13(a-b): minimal vs non-minimal (Valiant) routing under adversarial
// traffic on the radix-16 networks. (a) hotspot: all traffic confined to
// 4 of the 41 W-groups (only 3 of 40 global links per group usable by
// minimal routing); (b) worst-case: W_i -> W_{i+1} (1 of 40 links).
// Paper result: non-minimal routing sustains an order of magnitude more
// load; extra on-wafer bandwidth (2B) helps the hotspot case further.
//
// Throughput normalization: offered/accepted rates are per *active* chip
// for the hotspot pattern (idle W-groups do not inject).
// Equivalent driver invocation: sldf --config configs/fig13b.conf
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;
using route::RouteMode;

namespace {

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Fig 13(a-b): adversarial traffic, minimal vs non-minimal routing");

  const int g = env.quick ? 11 : static_cast<int>(cli.get_int("g", 0));

  struct Panel {
    const char* fig;
    const char* pattern;
    double max_rate;
  };
  const Panel panels[] = {{"fig13a", "hotspot", 0.8},
                          {"fig13b", "worst-case", 0.48}};

  struct Series {
    const char* label;
    const char* topology;
    RouteMode mode;
    int mesh_width;
  };
  const Series series[] = {
      {"SW-based-Min", "radix16-swdf", RouteMode::Minimal, 0},
      {"SW-less-Min", "radix16-swless", RouteMode::Minimal, 1},
      {"SW-based-Mis", "radix16-swdf", RouteMode::Valiant, 0},
      {"SW-less-Mis", "radix16-swless", RouteMode::Valiant, 1},
      {"SW-less-2B-Mis", "radix16-swless", RouteMode::Valiant, 2}};

  for (const auto& p : panels) {
    auto csv = env.csv(std::string(p.fig) + ".csv");
    std::printf("--- %s (%s) ---\n", p.fig, p.pattern);
    for (const auto& ser : series) {
      auto s = env.spec(ser.label, ser.topology, p.pattern);
      s.topo["g"] = std::to_string(g);
      s.mode = ser.mode;
      if (ser.mesh_width > 1)
        s.topo["mesh_width"] = std::to_string(ser.mesh_width);
      s.max_rate = p.max_rate;
      s.points = env.points(5);
      run_spec(csv, s);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig13_misrouting", [&] { return bench_main(argc, argv); });
}
