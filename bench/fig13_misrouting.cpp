// Fig 13(a-b): minimal vs non-minimal (Valiant) routing under adversarial
// traffic on the radix-16 networks. (a) hotspot: all traffic confined to
// 4 of the 41 W-groups (only 3 of 40 global links per group usable by
// minimal routing); (b) worst-case: W_i -> W_{i+1} (1 of 40 links).
// Paper result: non-minimal routing sustains an order of magnitude more
// load; extra on-wafer bandwidth (2B) helps the hotspot case further.
//
// Throughput normalization: offered/accepted rates are per *active* chip
// for the hotspot pattern (idle W-groups do not inject).
#include "bench_common.hpp"
#include "core/params.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::bench;
using route::RouteMode;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Fig 13(a-b): adversarial traffic, minimal vs non-minimal routing");

  const int g = env.quick ? 11 : static_cast<int>(cli.get_int("g", 0));

  const auto swless = [g](RouteMode mode, int width) {
    return [g, mode, width](sim::Network& n) {
      auto p = core::radix16_swless();
      p.g = g;
      p.mode = mode;
      p.mesh_width = width;
      topo::build_swless_dragonfly(n, p);
    };
  };
  const auto swbased = [g](RouteMode mode) {
    return [g, mode](sim::Network& n) {
      auto p = core::radix16_swdf();
      p.groups = g;
      p.mode = mode;
      topo::build_sw_dragonfly(n, p);
    };
  };

  struct Panel {
    const char* fig;
    const char* pattern;
    double max_rate;
  };
  const Panel panels[] = {{"fig13a", "hotspot", 0.8},
                          {"fig13b", "worst-case", 0.48}};

  for (const auto& p : panels) {
    auto csv = env.csv(std::string(p.fig) + ".csv");
    const auto rates = core::linspace_rates(p.max_rate, env.points(5));
    const auto traffic_factory = [&](const sim::Network& n) {
      return traffic::make_pattern(p.pattern, n);
    };
    std::printf("--- %s (%s) ---\n", p.fig, p.pattern);
    run_series(env, csv, "SW-based-Min", swbased(RouteMode::Minimal),
               traffic_factory, rates);
    run_series(env, csv, "SW-less-Min", swless(RouteMode::Minimal, 1),
               traffic_factory, rates);
    run_series(env, csv, "SW-based-Mis", swbased(RouteMode::Valiant),
               traffic_factory, rates);
    run_series(env, csv, "SW-less-Mis", swless(RouteMode::Valiant, 1),
               traffic_factory, rates);
    run_series(env, csv, "SW-less-2B-Mis", swless(RouteMode::Valiant, 2),
               traffic_factory, rates);
  }
  return 0;
}
