// Engine-throughput measurement harness behind the `sldf-bench` tool.
//
// Runs a declared table of presets (see preset_infos(): radix-16 / radix-32
// switch-less networks at low and near-saturation load, the same saturation
// points on the sharded engine, the closed-loop ring-AllReduce completion
// run, the degraded-fabric `resilience-f10` point, plus the full fig11a
// three-series sweep) and reports wall time, simulated cycles/sec,
// flit-hops/sec, and peak RSS per preset. For the workload preset
// (`allreduce-ttc`) `cycles` is the collective's completion time, recording
// the workload engine's trajectory too.
//
// Results serialize to BENCH_sim.json so the perf trajectory of the
// simulator is recorded run over run; the preset table itself renders to
// Markdown (render_preset_table()) and is embedded in docs/PERFORMANCE.md
// between GENERATED markers — CI fails when the two drift.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sldf::bench {

struct PerfResult {
  std::string preset;
  int points = 0;                 ///< Sweep points executed.
  std::uint64_t cycles = 0;       ///< Simulated cycles, summed over points.
  std::uint64_t flit_hops = 0;    ///< Channel traversals, summed over points.
  std::uint64_t delivered = 0;    ///< Packets delivered, summed over points.
  double wall_s = 0.0;
  double cycles_per_sec = 0.0;
  double flit_hops_per_sec = 0.0;
  /// Peak RSS of THIS preset alone (the kernel high-water mark is reset
  /// before the preset runs — see RssTracker in perf_engine.cpp). For a
  /// sweep preset this is the max over its points.
  double peak_rss_mb = 0.0;
  /// Per-point peak-RSS spread: the mark is reset around every sweep point,
  /// so multi-point rows (fig11a-sweep) are interpretable instead of
  /// reporting one contaminated aggregate. Equal to peak_rss_mb for
  /// single-point presets.
  double rss_min_mb = 0.0;
  double rss_max_mb = 0.0;
};

/// Documentation row of one preset — the single source the suite runner,
/// `sldf-bench --list`, and the docs/PERFORMANCE.md table all derive from.
struct PresetInfo {
  std::string name;
  std::string modes;  ///< "quick+full" or "full".
  std::string what;   ///< What the preset measures, one line.
};

/// The preset table, in execution order.
const std::vector<PresetInfo>& preset_infos();

/// The table as a Markdown block (docs/PERFORMANCE.md embeds it between
/// `GENERATED: sldf-bench --list` markers; the CI docs job diffs them).
std::string render_preset_table();

/// Runs the preset suite. `quick` restricts to the radix-16 point presets
/// with short windows (CI smoke); the full suite adds radix-32 and the
/// fig11a sweep. Deterministic for a fixed `seed`: the per-preset `cycles`,
/// `flit_hops`, and `delivered_packets` counters are bit-identical run
/// over run (and across `shards` — the sharded presets re-run a serial
/// preset's exact simulation, so any counter divergence is an engine bug).
std::vector<PerfResult> run_perf_suite(bool quick, std::uint64_t seed);

/// Writes BENCH_sim.json (schema documented in docs/PERFORMANCE.md).
void write_bench_json(const std::string& path,
                      const std::vector<PerfResult>& results, bool quick);

}  // namespace sldf::bench
