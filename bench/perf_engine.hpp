// Engine-throughput measurement harness behind the `sldf-bench` tool.
//
// Runs a fixed set of presets (radix-16 / radix-32 switch-less networks at
// low and near-saturation load, the closed-loop ring-AllReduce completion
// run, the degraded-fabric `resilience-f10` point — 10% failed global
// cables, fault-aware routing — plus the full fig11a three-series sweep)
// and reports wall time, simulated cycles/sec, flit-hops/sec, and peak RSS
// per preset. For the workload preset (`allreduce-ttc`) `cycles` is the
// collective's completion time, recording the workload engine's trajectory
// too.
// Results serialize to BENCH_sim.json so the perf trajectory of the
// simulator is recorded run over run (see README "Performance").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sldf::bench {

struct PerfResult {
  std::string preset;
  int points = 0;                 ///< Sweep points executed.
  std::uint64_t cycles = 0;       ///< Simulated cycles, summed over points.
  std::uint64_t flit_hops = 0;    ///< Channel traversals, summed over points.
  std::uint64_t delivered = 0;    ///< Packets delivered, summed over points.
  double wall_s = 0.0;
  double cycles_per_sec = 0.0;
  double flit_hops_per_sec = 0.0;
  double peak_rss_mb = 0.0;       ///< getrusage high-water mark after the run.
};

/// Runs the preset suite. `quick` restricts to the radix-16 point presets
/// with short windows (CI smoke); the full suite adds radix-32 and the
/// fig11a sweep. Deterministic for a fixed `seed`.
std::vector<PerfResult> run_perf_suite(bool quick, std::uint64_t seed);

/// Writes BENCH_sim.json (schema documented in the README).
void write_bench_json(const std::string& path,
                      const std::vector<PerfResult>& results, bool quick);

}  // namespace sldf::bench
