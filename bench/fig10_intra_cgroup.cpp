// Fig 10(a-b): intra-C-group (intra-switch) performance. A radix-16
// C-group (2x2 chiplets of 2x2 NoC routers, wafer mesh) versus the same
// four chips hanging off an ideal switch, under uniform and bit-reverse
// traffic. Paper result: the mesh saturates near 3 flits/cycle/chip
// (uniform) and 2 (bit-reverse), >2-3x the switch's single-link 1.0.
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 10(a-b): intra-C-group latency vs injection rate");

  struct Panel {
    const char* fig;
    const char* pattern;
    double max_rate;
  };
  const Panel panels[] = {{"fig10a", "uniform", 3.5},
                          {"fig10b", "bit-reverse", 2.4}};

  for (const auto& p : panels) {
    auto csv = env.csv(std::string(p.fig) + ".csv");
    std::printf("--- %s (%s) ---\n", p.fig, p.pattern);

    auto sw = env.spec("Switch", "crossbar", p.pattern);
    sw.topo["terminals"] = "4";
    sw.topo["term_latency"] = "1";
    sw.max_rate = p.max_rate;
    sw.points = env.points(8);
    run_spec(csv, sw);

    // cgroup-mesh defaults are the radix-16 shape: 2x2 chiplets of 2x2
    // NoC routers, n = 6.
    auto mesh = env.spec("2D-Mesh", "cgroup-mesh", p.pattern);
    mesh.max_rate = p.max_rate;
    mesh.points = env.points(8);
    run_spec(csv, mesh);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig10_intra_cgroup", [&] { return bench_main(argc, argv); });
}
