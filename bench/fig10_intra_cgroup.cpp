// Fig 10(a-b): intra-C-group (intra-switch) performance. A radix-16
// C-group (2x2 chiplets of 2x2 NoC routers, wafer mesh) versus the same
// four chips hanging off an ideal switch, under uniform and bit-reverse
// traffic. Paper result: the mesh saturates near 3 flits/cycle/chip
// (uniform) and 2 (bit-reverse), >2-3x the switch's single-link 1.0.
#include "bench_common.hpp"
#include "topo/cgroup.hpp"
#include "topo/dragonfly.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 10(a-b): intra-C-group latency vs injection rate");

  const auto mesh_factory = [](sim::Network& n) {
    topo::CGroupShape s;
    s.chip_gx = s.chip_gy = 2;
    s.noc_x = s.noc_y = 2;
    s.ports_per_chiplet = 6;
    topo::build_mesh_network(n, s, 1, 32);
  };
  const auto switch_factory = [](sim::Network& n) {
    topo::build_crossbar(n, 4, /*term_latency=*/1);
  };

  struct Panel {
    const char* fig;
    const char* pattern;
    double max_rate;
  };
  const Panel panels[] = {{"fig10a", "uniform", 3.5},
                          {"fig10b", "bit-reverse", 2.4}};

  for (const auto& p : panels) {
    auto csv = env.csv(std::string(p.fig) + ".csv");
    const auto rates = core::linspace_rates(p.max_rate, env.points(8));
    std::printf("--- %s (%s) ---\n", p.fig, p.pattern);
    run_series(env, csv, "Switch", switch_factory,
               [&](const sim::Network& n) {
                 return traffic::make_pattern(p.pattern, n);
               },
               rates);
    run_series(env, csv, "2D-Mesh", mesh_factory,
               [&](const sim::Network& n) {
                 return traffic::make_pattern(p.pattern, n);
               },
               rates);
  }
  return 0;
}
