// Shared scaffolding for the figure/table benchmark binaries. Every bench
// describes its experiment as core::ScenarioSpec values (topology preset +
// overrides, routing mode, traffic kind) and runs them through
// core::run_scenario().
//
// Every bench accepts:
//   --quick        shrink cycle counts and sweep points (CI smoke run)
//   --paper        full Table IV cycle counts (5000 warmup + 10000 measured)
//   --out DIR      CSV output directory (default ./results)
//   --seed N       base RNG seed
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "core/scenario.hpp"

namespace sldf::bench {

struct BenchEnv {
  sim::SimConfig base;
  std::string out_dir;
  bool quick = false;
  bool paper = false;

  explicit BenchEnv(const Cli& cli) {
    quick = cli.has("quick");
    paper = cli.has("paper");
    if (paper) {
      base.warmup = 5000;   // Table IV
      base.measure = 10000;
      base.drain = 5000;
    } else if (quick) {
      base.warmup = 400;
      base.measure = 1000;
      base.drain = 600;
    } else {
      base.warmup = 1000;
      base.measure = 2200;
      base.drain = 1200;
    }
    base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    out_dir = cli.get("out", "results");
    std::filesystem::create_directories(out_dir);
  }

  [[nodiscard]] int points(int full) const {
    return quick ? std::max(3, full / 2) : full;
  }

  /// A spec preloaded with this run's measurement window and seed.
  [[nodiscard]] core::ScenarioSpec spec(std::string label,
                                        std::string topology,
                                        std::string traffic) const {
    core::ScenarioSpec s;
    s.label = std::move(label);
    s.topology = std::move(topology);
    s.traffic = std::move(traffic);
    s.sim = base;
    return s;
  }

  [[nodiscard]] CsvWriter csv(const std::string& name) const {
    return CsvWriter(out_dir + "/" + name,
                     {"series", "offered", "avg_latency", "accepted", "p99",
                      "delivered", "drained"});
  }
};

inline void banner(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

/// Runs one scenario and reports it (table + CSV rows).
inline core::SweepSeries run_spec(CsvWriter& csv,
                                  const core::ScenarioSpec& spec) {
  auto series = core::run_scenario(spec);
  core::print_series(series);
  core::append_series_csv(csv, series);
  return series;
}

/// Wraps a bench main body: configuration errors (malformed flag values,
/// unknown registry names) print a clear message and exit 1 instead of
/// reaching std::terminate.
template <typename Body>
int guarded(const char* prog, Body&& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", prog, e.what());
    return 1;
  }
}

}  // namespace sldf::bench
