// Shared scaffolding for the figure/table benchmark binaries.
//
// Every bench accepts:
//   --quick        shrink cycle counts and sweep points (CI smoke run)
//   --paper        full Table IV cycle counts (5000 warmup + 10000 measured)
//   --out DIR      CSV output directory (default ./results)
//   --seed N       base RNG seed
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "core/experiment.hpp"

namespace sldf::bench {

struct BenchEnv {
  sim::SimConfig base;
  std::string out_dir;
  bool quick = false;
  bool paper = false;

  explicit BenchEnv(const Cli& cli) {
    quick = cli.has("quick");
    paper = cli.has("paper");
    if (paper) {
      base.warmup = 5000;   // Table IV
      base.measure = 10000;
      base.drain = 5000;
    } else if (quick) {
      base.warmup = 400;
      base.measure = 1000;
      base.drain = 600;
    } else {
      base.warmup = 1000;
      base.measure = 2200;
      base.drain = 1200;
    }
    base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    out_dir = cli.get("out", "results");
    std::filesystem::create_directories(out_dir);
  }

  [[nodiscard]] int points(int full) const {
    return quick ? std::max(3, full / 2) : full;
  }

  [[nodiscard]] CsvWriter csv(const std::string& name) const {
    return CsvWriter(out_dir + "/" + name,
                     {"series", "offered", "avg_latency", "accepted", "p99",
                      "delivered", "drained"});
  }
};

inline void banner(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

/// Runs and reports one sweep series.
inline core::SweepSeries run_series(const BenchEnv& env, CsvWriter& csv,
                                    const std::string& label,
                                    const core::NetFactory& net,
                                    const core::TrafficFactory& traffic,
                                    const std::vector<double>& rates) {
  core::SweepConfig cfg;
  cfg.rates = rates;
  cfg.base = env.base;
  auto series = core::run_sweep(label, net, traffic, cfg);
  core::print_series(series);
  core::append_series_csv(csv, series);
  return series;
}

}  // namespace sldf::bench
