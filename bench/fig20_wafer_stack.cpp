// Fig 20 (wafer-on-wafer scale-out, beyond the paper's single wafer): the
// tiny switch-less fabric stacked W = 2 deep with all-pairs vertical bond
// columns vs the single wafer, on the one-vertical-hop routing of
// route/wafer_route.hpp.
//
// (a) uniform-traffic throughput sweep: single wafer vs a 2-stack with
//     full-width bonds vs a 2-stack with quarter-width, slower bonds —
//     cross-wafer traffic saturates on the bond bandwidth, intra-wafer
//     traffic is untouched.
// (b) vertical resilience sweep: fail a growing fraction of the vertical
//     bonds (nested seeded sets) at a fixed offered load and track
//     delivery/drop per source wafer — live columns absorb the detoured
//     crossings until the stack severs.
// (c) online bond failure: a mid-run vertical fault wave, later repaired,
//     with packet rescue on vs off — every torn cross-wafer packet is
//     rescued or counted, never leaked.
//
// Equivalent driver invocations use wafer.count / wafer.latency /
// wafer.width (see the scenario-key reference in the README).
#include "bench_common.hpp"

using namespace sldf;
using namespace sldf::bench;

namespace {

constexpr std::uint64_t kFaultSeed = 7;

struct Series {
  const char* label;
  int wafers;       ///< 0 = classic single-fabric build path.
  bool narrow;      ///< Quarter-width, slower vertical bonds.
};

core::ScenarioSpec series_spec(const BenchEnv& env, const Series& ser) {
  auto s = env.spec(ser.label, "tiny-swless", "uniform");
  if (ser.wafers > 0) s.wafer_count = ser.wafers;
  if (ser.narrow) {
    s.wafer_width_num = 1;
    s.wafer_width_den = 4;
    s.wafer_latency = 4;
  }
  return s;
}

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const BenchEnv env(cli);
  banner("Fig 20(a-c): wafer-on-wafer stacks vs one wafer");

  const Series series[] = {{"single", 0, false},
                           {"stack-w2", 2, false},
                           {"stack-w2-narrow", 2, true}};

  // --- (a) uniform throughput sweep ---
  {
    CsvWriter csv = env.csv("fig20a_wafer_throughput.csv");
    std::printf("--- fig20a (uniform throughput, 2-stack vs 1 wafer) ---\n");
    for (const auto& ser : series) {
      auto s = series_spec(env, ser);
      s.max_rate = 1.0;
      s.points = env.points(6);
      run_spec(csv, s);
    }
  }

  // --- (b) vertical resilience sweep (nested static bond-fault sets) ---
  {
    CsvWriter csv(env.out_dir + "/fig20b_wafer_resilience.csv",
                  {"series", "bond_fail_rate", "delivered", "dropped",
                   "inflight", "wafer0_delivered", "wafer1_delivered",
                   "drained"});
    std::printf("--- fig20b (vertical bond faults, 2-stack) ---\n");
    for (const double rate : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      auto s = series_spec(env, series[1]);
      s.label = "stack-w2";
      s.rates = {0.05};  // below even one surviving column's bandwidth
      if (rate > 0.0) {
        s.fault.rate = rate;
        s.fault.kind = topo::FaultKind::Vertical;
        s.fault.seed = kFaultSeed;
      }
      const auto run = core::run_scenario(s);
      core::print_series(run);
      for (const auto& pt : run.points) {
        const auto& r = pt.res;
        const auto wd = [&](std::size_t w) {
          return w < r.wafer_delivered.size()
                     ? std::to_string(r.wafer_delivered[w])
                     : std::string("0");
        };
        csv.row(std::vector<std::string>{
            s.label, CsvWriter::format_num(rate),
            std::to_string(r.delivered_total),
            std::to_string(r.dropped_packets),
            std::to_string(r.inflight_packets), wd(0), wd(1),
            r.drained ? "1" : "0"});
      }
    }
  }

  // --- (c) online bond failure: rescue vs drop accounting ---
  {
    CsvWriter csv(env.out_dir + "/fig20c_bond_repair.csv",
                  {"series", "rescue", "delivered", "rescued", "dropped",
                   "drained"});
    std::printf("--- fig20c (online bond fail->repair, 2-stack) ---\n");
    for (const bool rescue : {true, false}) {
      auto s = series_spec(env, series[1]);
      s.label = rescue ? "stack-w2-rescue" : "stack-w2-drop";
      s.rates = {0.05};
      s.fault.seed = kFaultSeed;
      s.fault.rescue = rescue;
      const Cycle fail_at = s.sim.warmup;
      const Cycle repair_at = s.sim.warmup + s.sim.measure / 2;
      s.fault.events = "fail@" + std::to_string(fail_at) +
                       ":vertical=0.8;repair@" + std::to_string(repair_at) +
                       ":vertical=0";
      const auto run = core::run_scenario(s);
      core::print_series(run);
      for (const auto& pt : run.points) {
        const auto& r = pt.res;
        csv.row(std::vector<std::string>{
            s.label, rescue ? "1" : "0",
            std::to_string(r.delivered_total),
            std::to_string(r.rescued_packets),
            std::to_string(r.dropped_packets), r.drained ? "1" : "0"});
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("fig20_wafer_stack",
                              [&] { return bench_main(argc, argv); });
}
