// Ablation (ours, motivated by §IV-C Fig 8): how the software labeling
// method affects the reduced-VC schemes. Snake labeling guarantees a
// monotone path between every label-ordered pair; row-major and
// perimeter-arc ("polar-style") labelings leave gaps that force XY
// fallbacks (counted by the CDG audit) and change transit path lengths.
#include "bench_common.hpp"
#include "core/params.hpp"
#include "route/cdg.hpp"
#include "route/mesh_routing.hpp"
#include "topo/swless.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::bench;
using topo::Labeling;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Ablation: labeling methods for reduced-VC routing");

  // Monotone-coverage statistics per labeling on the radix-16 C-group
  // shape (4x4): fraction of ascending pairs with an up-only path.
  std::printf("Monotone up-path coverage on a 4x4 C-group mesh:\n");
  for (auto lab : {Labeling::Snake, Labeling::RowMajor,
                   Labeling::PerimeterArc}) {
    const auto labels = topo::make_labels(4, 4, lab);
    const route::MonotoneTables t(4, 4, labels);
    int pairs = 0, covered = 0;
    for (int s = 0; s < 16; ++s) {
      for (int d = 0; d < 16; ++d) {
        if (labels[static_cast<std::size_t>(s)] >=
            labels[static_cast<std::size_t>(d)])
          continue;
        ++pairs;
        covered += (t.up_dir(d, s) >= 0);
      }
    }
    std::printf("  %-14s %3d/%3d ascending pairs reachable up-only\n",
                to_string(lab), covered, pairs);
  }
  std::printf("\n");

  const int g = env.quick ? 7 : 11;
  auto csv = env.csv("ablation_labeling.csv");
  const auto rates = core::linspace_rates(0.8, env.points(4));
  for (auto lab : {Labeling::Snake, Labeling::RowMajor,
                   Labeling::PerimeterArc}) {
    run_series(env, csv, std::string("reduced-safe-") + to_string(lab),
               [g, lab](sim::Network& n) {
                 auto p = core::radix16_swless();
                 p.g = g;
                 p.scheme = route::VcScheme::ReducedSafe;
                 p.mode = route::RouteMode::Valiant;
                 p.labeling = lab;
                 topo::build_swless_dragonfly(n, p);
               },
               [](const sim::Network& n) {
                 return traffic::make_pattern("uniform", n);
               },
               rates);
  }
  return 0;
}
