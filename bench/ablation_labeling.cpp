// Ablation (ours, motivated by §IV-C Fig 8): how the software labeling
// method affects the reduced-VC schemes. Snake labeling guarantees a
// monotone path between every label-ordered pair; row-major and
// perimeter-arc ("polar-style") labelings leave gaps that force XY
// fallbacks (counted by the CDG audit) and change transit path lengths.
#include "bench_common.hpp"
#include "route/mesh_routing.hpp"
#include "topo/labeling.hpp"

using namespace sldf;
using namespace sldf::bench;
using topo::Labeling;

namespace {

int bench_main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env(cli);
  banner("Ablation: labeling methods for reduced-VC routing");

  // Monotone-coverage statistics per labeling on the radix-16 C-group
  // shape (4x4): fraction of ascending pairs with an up-only path.
  std::printf("Monotone up-path coverage on a 4x4 C-group mesh:\n");
  for (auto lab : {Labeling::Snake, Labeling::RowMajor,
                   Labeling::PerimeterArc}) {
    const auto labels = topo::make_labels(4, 4, lab);
    const route::MonotoneTables t(4, 4, labels);
    int pairs = 0, covered = 0;
    for (int s = 0; s < 16; ++s) {
      for (int d = 0; d < 16; ++d) {
        if (labels[static_cast<std::size_t>(s)] >=
            labels[static_cast<std::size_t>(d)])
          continue;
        ++pairs;
        covered += (t.up_dir(d, s) >= 0);
      }
    }
    std::printf("  %-14s %3d/%3d ascending pairs reachable up-only\n",
                to_string(lab), covered, pairs);
  }
  std::printf("\n");

  const int g = env.quick ? 7 : 11;
  auto csv = env.csv("ablation_labeling.csv");
  for (auto lab : {Labeling::Snake, Labeling::RowMajor,
                   Labeling::PerimeterArc}) {
    auto s = env.spec(std::string("reduced-safe-") + to_string(lab),
                      "radix16-swless", "uniform");
    s.topo["g"] = std::to_string(g);
    s.topo["labeling"] = to_string(lab);
    s.scheme = route::VcScheme::ReducedSafe;
    s.mode = route::RouteMode::Valiant;
    s.max_rate = 0.8;
    s.points = env.points(4);
    run_spec(csv, s);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return sldf::bench::guarded("ablation_labeling", [&] { return bench_main(argc, argv); });
}
