// Trace-format tests: parser error taxonomy (malformed lines, non-monotone
// timestamps, unknown chip ids, bad deps — all typed TraceError with
// file:line context), canonical write -> parse round-trips, capture of
// generated workloads (from_graph), and placement instantiation checks
// (to_graph).
#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.hpp"
#include "trace/trace.hpp"
#include "workload/collectives.hpp"

using namespace sldf;
using namespace sldf::trace;

namespace {

sim::Network tiny_net() {
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  sim::Network net;
  core::build_network(net, spec);
  return net;
}

Trace parse(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in, "test");
}

/// The parse must throw TraceError whose message contains `needle`
/// (typically "test:<line>:" plus the complaint).
void expect_error(const std::string& text, const std::string& needle) {
  try {
    parse(text);
    FAIL() << "expected TraceError containing '" << needle << "'";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

}  // namespace

// ---- parser: happy path --------------------------------------------------

TEST(TraceParse, MinimalTrace) {
  const auto t = parse(
      "# a comment\n"
      "sldf-trace 1\n"
      "chips 4\n"
      "\n"
      "m 0 0 1 128\n"
      "m 5 1 2 64 0\n"
      "m 5 2 3 64 0,1\n");
  EXPECT_EQ(t.chips, 4);
  ASSERT_EQ(t.msgs.size(), 3u);
  EXPECT_EQ(t.msgs[0].issue, 0u);
  EXPECT_EQ(t.msgs[0].flits, 128u);
  EXPECT_TRUE(t.msgs[0].deps.empty());
  EXPECT_EQ(t.msgs[1].deps, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(t.msgs[2].deps, (std::vector<std::uint32_t>{0, 1}));
}

TEST(TraceParse, InlineCommentsIgnored) {
  const auto t = parse(
      "sldf-trace 1\n"
      "chips 2  # two ranks\n"
      "m 0 0 1 8  # first\n");
  EXPECT_EQ(t.chips, 2);
  EXPECT_EQ(t.msgs.size(), 1u);
}

// ---- parser: error taxonomy ---------------------------------------------

TEST(TraceParse, RejectsMissingHeader) {
  expect_error("chips 4\n", "test:1: expected header");
  expect_error("", "empty trace");
}

TEST(TraceParse, RejectsUnsupportedVersion) {
  expect_error("sldf-trace 2\n", "unsupported trace version");
}

TEST(TraceParse, RejectsUnknownDirective) {
  expect_error("sldf-trace 1\nchips 4\nmsg 0 0 1 8\n",
               "test:3: unknown directive 'msg'");
}

TEST(TraceParse, RejectsMessageBeforeChips) {
  expect_error("sldf-trace 1\nm 0 0 1 8\n", "'m' before 'chips'");
}

TEST(TraceParse, RejectsMissingChips) {
  expect_error("sldf-trace 1\n", "missing 'chips'");
}

TEST(TraceParse, RejectsMalformedFields) {
  const std::string head = "sldf-trace 1\nchips 4\n";
  expect_error(head + "m 0 0 1\n", "test:3: 'm' expects");
  expect_error(head + "m x 0 1 8\n", "malformed issue timestamp");
  expect_error(head + "m -1 0 1 8\n", "malformed issue timestamp");
  expect_error(head + "m 0 0 1 0\n", "malformed flit count");
  expect_error(head + "m 0 0 1 8 0 extra\n", "trailing token");
  expect_error(head + "m 0 2 2 8\n", "src == dst");
  expect_error("sldf-trace 1\nchips 0\n", "positive chip count");
  expect_error("sldf-trace 1\nchips 4\nchips 4\n", "duplicate 'chips'");
}

TEST(TraceParse, RejectsUnknownChipIds) {
  const std::string head = "sldf-trace 1\nchips 4\n";
  expect_error(head + "m 0 4 1 8\n", "unknown chip id '4'");
  expect_error(head + "m 0 0 9 8\n", "unknown chip id '9'");
}

TEST(TraceParse, RejectsNonMonotoneTimestamps) {
  expect_error(
      "sldf-trace 1\nchips 4\nm 10 0 1 8\nm 9 1 2 8\n",
      "test:4: non-monotone issue timestamp 9 (previous was 10)");
}

TEST(TraceParse, RejectsForwardAndSelfDeps) {
  const std::string head = "sldf-trace 1\nchips 4\n";
  expect_error(head + "m 0 0 1 8 0\n", "does not name an earlier message");
  expect_error(head + "m 0 0 1 8\nm 0 1 2 8 5\n",
               "does not name an earlier message");
  expect_error(head + "m 0 0 1 8\nm 0 1 2 8 0,,1\n",
               "does not name an earlier message");
}

// ---- round-trips ---------------------------------------------------------

TEST(TraceRoundTrip, WriteParseIsIdentity) {
  const Trace t = request_reply_trace(8, 32, 4, 16, 100, 7);
  std::ostringstream out;
  write_trace(out, t);
  const Trace back = parse(out.str());
  ASSERT_EQ(back.chips, t.chips);
  ASSERT_EQ(back.msgs.size(), t.msgs.size());
  for (std::size_t i = 0; i < t.msgs.size(); ++i) {
    EXPECT_EQ(back.msgs[i].issue, t.msgs[i].issue);
    EXPECT_EQ(back.msgs[i].src, t.msgs[i].src);
    EXPECT_EQ(back.msgs[i].dst, t.msgs[i].dst);
    EXPECT_EQ(back.msgs[i].flits, t.msgs[i].flits);
    EXPECT_EQ(back.msgs[i].deps, t.msgs[i].deps);
  }
}

TEST(TraceRoundTrip, RequestReplyIsSeededDeterministic) {
  const Trace a = request_reply_trace(8, 32, 4, 16, 100, 7);
  const Trace b = request_reply_trace(8, 32, 4, 16, 100, 7);
  const Trace c = request_reply_trace(8, 32, 4, 16, 100, 8);
  ASSERT_EQ(a.msgs.size(), b.msgs.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.msgs.size(); ++i) {
    EXPECT_EQ(a.msgs[i].issue, b.msgs[i].issue);
    EXPECT_EQ(a.msgs[i].src, b.msgs[i].src);
    if (a.msgs[i].issue != c.msgs[i].issue || a.msgs[i].src != c.msgs[i].src)
      differs = true;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical traces";
}

TEST(TraceRoundTrip, FromGraphCapturesCollectives) {
  auto net = tiny_net();
  const auto g = workload::ring_allreduce(net, workload::Scope::CGroup, 64,
                                          1, 1);
  const Trace t = from_graph(g);
  EXPECT_EQ(t.chips, 60);
  EXPECT_EQ(t.msgs.size(), g.messages.size());
  // All-zero issue timestamps keep generator order; the emitted file must
  // satisfy the parser's monotonicity + dep-ordering invariants.
  std::ostringstream out;
  write_trace(out, t);
  EXPECT_NO_THROW(parse(out.str()));
}

TEST(TraceRoundTrip, FromGraphSortsByEffectiveIssue) {
  workload::WorkloadGraph g;
  g.name = "t";
  const auto a = g.add(0, 1, 8, 0);   // issues at 50
  const auto b = g.add(1, 2, 8, 0);   // issues at 10
  g.messages[a].issue = 50;
  g.messages[b].issue = 10;
  const auto c = g.add(2, 3, 8, 0);   // dep on a: effective issue 50
  g.messages[c].deps.push_back(a);
  const Trace t = from_graph(g);
  ASSERT_EQ(t.msgs.size(), 3u);
  EXPECT_EQ(t.msgs[0].issue, 10u);
  EXPECT_EQ(t.msgs[1].issue, 50u);
  EXPECT_EQ(t.msgs[2].issue, 50u);
  EXPECT_EQ(t.msgs[2].deps, (std::vector<std::uint32_t>{1}));
}

// ---- to_graph placement checks ------------------------------------------

TEST(TraceToGraph, RejectsWrongPlacementSize) {
  auto net = tiny_net();
  const Trace t = request_reply_trace(4, 4, 2, 2, 10, 1);
  try {
    to_graph(t, net, {0, 1, 2}, "ctx");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("spans 4 ranks"),
              std::string::npos);
  }
}

TEST(TraceToGraph, RejectsOutOfRangeAndDeadChips) {
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  spec.set("fault.chips", "2");
  sim::Network net;
  core::build_network(net, spec);
  const Trace t = request_reply_trace(4, 4, 2, 2, 10, 1);
  EXPECT_THROW(to_graph(t, net, {0, 1, 3, 999}, "ctx"), ScenarioError);
  try {
    to_graph(t, net, {0, 1, 2, 3}, "ctx");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("dead under the active fault mask"),
              std::string::npos);
  }
}

TEST(TraceToGraph, MapsRanksOntoPlacement) {
  auto net = tiny_net();
  Trace t;
  t.chips = 3;
  TraceMsg m;
  m.issue = 7;
  m.src = 0;
  m.dst = 2;
  m.flits = 16;
  t.msgs.push_back(m);
  const auto g = to_graph(t, net, {10, 20, 30}, "ctx");
  ASSERT_EQ(g.messages.size(), 1u);
  EXPECT_EQ(g.messages[0].src, 10);
  EXPECT_EQ(g.messages[0].dst, 30);
  EXPECT_EQ(g.messages[0].issue, 7u);
}
