// Switch-less Dragonfly topology construction tests: scale formulas,
// local/global wiring bijectivity, IO-converter plumbing, location tables,
// and the small-scale (no-converter) variant.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/params.hpp"
#include "test_fixtures.hpp"
#include "topo/swless.hpp"

using namespace sldf;
using namespace sldf::topo;

namespace {
SwlessParams tiny(int g = 0) {
  return sldf::testing::tiny_swless_params(route::VcScheme::Baseline,
                                           route::RouteMode::Minimal, g);
}
}  // namespace

TEST(SwlessTopo, ScaleFormulas) {
  const auto p = tiny();
  EXPECT_EQ(p.ab(), 3);
  EXPECT_EQ(p.max_wgroups(), 7);
  EXPECT_EQ(p.num_chips(), 7 * 3 * 4);
  EXPECT_EQ(p.k(), 4);
}

TEST(SwlessTopo, Radix16PresetMatchesPaper) {
  const auto p = core::radix16_swless();
  EXPECT_EQ(p.ab(), 8);
  EXPECT_EQ(p.max_wgroups(), 41);
  EXPECT_EQ(p.num_chips(), 1312);
  EXPECT_EQ(p.num_chips() * p.nodes_per_chip(), 5248);  // on-chip nodes

  const auto p32 = core::radix32_swless();
  EXPECT_EQ(p32.ab(), 16);
  EXPECT_EQ(p32.max_wgroups(), 145);
  EXPECT_EQ(p32.num_chips(), 18560);

  const auto cs = core::case_study_swless();
  EXPECT_EQ(cs.ab(), 32);
  EXPECT_EQ(cs.k(), 48);
  EXPECT_EQ(cs.max_wgroups(), 545);
  EXPECT_EQ(cs.num_chips(), 279040);  // Table III
}

TEST(SwlessTopo, BuildCensus) {
  sim::Network net;
  build_swless_dragonfly(net, tiny());
  const auto c = core::census(net);
  EXPECT_EQ(c.chips, 84u);
  EXPECT_EQ(c.cores, 84u);  // 1 router per chip here
  EXPECT_EQ(c.io_converters, 21u * 4u);  // 21 C-groups x 4 ports
  EXPECT_EQ(c.switches, 0u);
}

TEST(SwlessTopo, LocalWiringIsAllToAllWithinWGroup) {
  sim::Network net;
  build_swless_dragonfly(net, tiny());
  const auto& T = net.topo<SwlessTopo>();
  for (int wg = 0; wg < 7; ++wg) {
    for (int ca = 0; ca < 3; ++ca) {
      for (int cb = 0; cb < 3; ++cb) {
        if (ca == cb) continue;
        const auto& ep = T.cgroup(wg, ca).locals[static_cast<std::size_t>(
            SwlessTopo::local_index(ca, cb))];
        ASSERT_NE(ep.line_out, kInvalidChan);
        // Follow host -> io -> line: lands at the peer C-group's io.
        const auto peer_io = net.chan(ep.line_out).dst;
        const auto& loc = T.loc[static_cast<std::size_t>(peer_io)];
        EXPECT_EQ(loc.wg, wg);
        EXPECT_EQ(loc.cg, cb);
        EXPECT_EQ(net.chan(ep.line_out).type, LinkType::LongReachLocal);
      }
    }
  }
}

TEST(SwlessTopo, GlobalWiringConnectsAllWGroupPairs) {
  sim::Network net;
  build_swless_dragonfly(net, tiny());
  const auto& T = net.topo<SwlessTopo>();
  const int H = 2;
  for (int wa = 0; wa < 7; ++wa) {
    for (int wb = 0; wb < 7; ++wb) {
      if (wa == wb) continue;
      const int l = SwlessTopo::global_link(wa, wb);
      const auto& ep = T.cgroup(wa, l / H).globals[static_cast<std::size_t>(
          l % H)];
      ASSERT_NE(ep.line_out, kInvalidChan);
      const auto peer_io = net.chan(ep.line_out).dst;
      EXPECT_EQ(T.loc[static_cast<std::size_t>(peer_io)].wg, wb);
      EXPECT_EQ(net.chan(ep.line_out).type, LinkType::LongReachGlobal);
    }
  }
}

TEST(SwlessTopo, IoConverterPortLayout) {
  sim::Network net;
  build_swless_dragonfly(net, tiny());
  const auto& T = net.topo<SwlessTopo>();
  const auto& ep = T.cgroup(0, 0).locals[0];
  const auto& io = net.router(ep.io);
  ASSERT_EQ(io.in.size(), 2u);
  ASSERT_EQ(io.out.size(), 2u);
  // in0/out0 attach to the host; in1/out1 are the line.
  EXPECT_EQ(net.chan(io.in[0].in_chan).src, ep.host);
  EXPECT_EQ(net.chan(io.out[0].out_chan).dst, ep.host);
  EXPECT_EQ(net.chan(io.out[1].out_chan).src, ep.io);
  EXPECT_NE(net.chan(io.out[1].out_chan).dst, ep.host);
}

TEST(SwlessTopo, TrimmedG) {
  sim::Network net;
  build_swless_dragonfly(net, tiny(3));
  const auto& T = net.topo<SwlessTopo>();
  EXPECT_EQ(T.num_wgroups, 3);
  EXPECT_EQ(net.num_chips(), 3u * 3u * 4u);
}

TEST(SwlessTopo, SingleWGroupVariant) {
  // §III-D1: the system can be a single fully-connected W-group.
  auto p = tiny(1);
  sim::Network net;
  build_swless_dragonfly(net, p);
  EXPECT_EQ(net.num_chips(), 12u);
}

TEST(SwlessTopo, NoConverterVariantWiresHostsDirectly) {
  auto p = tiny();
  p.io_converters = false;
  sim::Network net;
  build_swless_dragonfly(net, p);
  const auto c = core::census(net);
  EXPECT_EQ(c.io_converters, 0u);
  const auto& T = net.topo<SwlessTopo>();
  const auto& ep = T.cgroup(0, 0).locals[0];
  EXPECT_EQ(net.chan(ep.exit_chan).src, ep.host);
  EXPECT_EQ(net.router(net.chan(ep.exit_chan).dst).kind, NodeKind::Core);
}

TEST(SwlessTopo, HierTablesConsistent) {
  sim::Network net;
  build_swless_dragonfly(net, tiny());
  const auto& T = net.topo<SwlessTopo>();
  EXPECT_EQ(T.num_wgroups, 7);
  EXPECT_EQ(T.num_cgroups, 21);
  EXPECT_EQ(T.nodes_per_chip, 1);
  for (ChipId ch = 0; ch < static_cast<ChipId>(net.num_chips()); ++ch) {
    EXPECT_EQ(T.chip_wgroup[static_cast<std::size_t>(ch)], ch / 12);
    EXPECT_EQ(T.chip_cgroup[static_cast<std::size_t>(ch)], ch / 4);
  }
}

TEST(SwlessTopo, ValidationRejectsBadLocalPorts) {
  auto p = tiny();
  p.local_ports = 1;  // must be ab-1 = 2
  sim::Network net;
  EXPECT_THROW(build_swless_dragonfly(net, p), std::invalid_argument);
}

TEST(SwlessTopo, ValidationRejectsOversizedG) {
  auto p = tiny();
  p.g = 99;
  sim::Network net;
  EXPECT_THROW(build_swless_dragonfly(net, p), std::invalid_argument);
}
