// Property tests for the labeling engine and label-monotone routing tables
// (paper §IV-B): label bijectivity, snake adjacency, up/down-path existence
// and monotonicity.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "route/mesh_routing.hpp"
#include "topo/labeling.hpp"

using namespace sldf;
using namespace sldf::topo;
using sldf::route::MonotoneTables;

class LabelingParam
    : public ::testing::TestWithParam<std::tuple<int, int, Labeling>> {};

TEST_P(LabelingParam, LabelsAreAPermutation) {
  const auto [mx, my, kind] = GetParam();
  const auto labels = make_labels(mx, my, kind);
  std::set<std::int32_t> uniq(labels.begin(), labels.end());
  EXPECT_EQ(uniq.size(), static_cast<std::size_t>(mx * my));
  EXPECT_EQ(*uniq.begin(), 0);
  EXPECT_EQ(*uniq.rbegin(), mx * my - 1);
}

TEST_P(LabelingParam, MonotonePathsExistWhereExpected) {
  const auto [mx, my, kind] = GetParam();
  const auto labels = make_labels(mx, my, kind);
  MonotoneTables t(mx, my, labels);
  const int P = mx * my;
  int missing_up = 0;
  for (int s = 0; s < P; ++s) {
    for (int d = 0; d < P; ++d) {
      if (s == d) continue;
      if (labels[static_cast<std::size_t>(s)] <
          labels[static_cast<std::size_t>(d)]) {
        if (t.up_dir(d, s) < 0) ++missing_up;
        EXPECT_LT(t.down_dir(d, s), 0) << "down path cannot ascend";
      }
    }
  }
  if (kind == Labeling::Snake) {
    // Snake guarantee: consecutive labels adjacent => up path for EVERY
    // ascending pair.
    EXPECT_EQ(missing_up, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LabelingParam,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(2, 4, 7),
                       ::testing::Values(Labeling::Snake, Labeling::RowMajor,
                                         Labeling::PerimeterArc)));

TEST(Labeling, SnakeConsecutiveLabelsAreAdjacent) {
  for (const auto [mx, my] : {std::pair{4, 4}, {8, 4}, {3, 5}}) {
    const auto labels = make_labels(mx, my, Labeling::Snake);
    std::vector<int> pos_of(static_cast<std::size_t>(mx * my));
    for (int p = 0; p < mx * my; ++p)
      pos_of[static_cast<std::size_t>(labels[static_cast<std::size_t>(p)])] =
          p;
    for (int l = 0; l + 1 < mx * my; ++l) {
      const int a = pos_of[static_cast<std::size_t>(l)];
      const int b = pos_of[static_cast<std::size_t>(l + 1)];
      const int dist = std::abs(a % mx - b % mx) + std::abs(a / mx - b / mx);
      EXPECT_EQ(dist, 1) << "labels " << l << "," << l + 1;
    }
  }
}

TEST(Labeling, PerimeterPositionsFormTheRim) {
  const auto rim = perimeter_positions(4, 4);
  EXPECT_EQ(rim.size(), 12u);
  for (auto p : rim) {
    const int x = p % 4, y = p / 4;
    EXPECT_TRUE(x == 0 || x == 3 || y == 0 || y == 3);
  }
  // Ring order: consecutive rim cells are mesh-adjacent (cyclically).
  for (std::size_t i = 0; i < rim.size(); ++i) {
    const int a = rim[i], b = rim[(i + 1) % rim.size()];
    const int dist = std::abs(a % 4 - b % 4) + std::abs(a / 4 - b / 4);
    EXPECT_EQ(dist, 1);
  }
}

TEST(Labeling, PerimeterDegenerateShapes) {
  EXPECT_EQ(perimeter_positions(1, 5).size(), 5u);
  EXPECT_EQ(perimeter_positions(5, 1).size(), 5u);
  EXPECT_EQ(perimeter_positions(2, 2).size(), 4u);
}

TEST(Labeling, PerimeterByLabelSorted) {
  const auto labels = make_labels(4, 4, Labeling::Snake);
  const auto rim = perimeter_by_label(4, 4, labels);
  for (std::size_t i = 0; i + 1 < rim.size(); ++i)
    EXPECT_LT(labels[static_cast<std::size_t>(rim[i])],
              labels[static_cast<std::size_t>(rim[i + 1])]);
}

TEST(Labeling, PerimeterArcPutsRimOnTop) {
  const auto labels = make_labels(4, 4, Labeling::PerimeterArc);
  const auto rim = perimeter_positions(4, 4);
  std::set<int> rimset(rim.begin(), rim.end());
  for (int p = 0; p < 16; ++p) {
    if (rimset.count(p))
      EXPECT_GE(labels[static_cast<std::size_t>(p)], 4);
    else
      EXPECT_LT(labels[static_cast<std::size_t>(p)], 4);
  }
}

TEST(MonotoneTables, PathsAreShortestMonotone) {
  // On a snake-labeled 4x4, walking up_dir from src must reach dst with
  // strictly increasing labels and never loop.
  const int mx = 4, my = 4;
  const auto labels = make_labels(mx, my, Labeling::Snake);
  MonotoneTables t(mx, my, labels);
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (labels[static_cast<std::size_t>(s)] >=
          labels[static_cast<std::size_t>(d)])
        continue;
      int cur = s;
      int prev_label = -1;
      int steps = 0;
      while (cur != d) {
        const int dir = t.up_dir(d, cur);
        ASSERT_GE(dir, 0);
        const int x = cur % mx, y = cur / mx;
        switch (dir) {
          case kEast: cur = y * mx + x + 1; break;
          case kWest: cur = y * mx + x - 1; break;
          case kSouth: cur = (y + 1) * mx + x; break;
          case kNorth: cur = (y - 1) * mx + x; break;
        }
        EXPECT_GT(labels[static_cast<std::size_t>(cur)], prev_label);
        prev_label = labels[static_cast<std::size_t>(cur)];
        ASSERT_LT(++steps, 16);
      }
    }
  }
}
