// Multi-plane conformance suite: plane.count = 1 must be bit-identical to
// the classic single-fabric build (the PlaneSet layer is pure plumbing
// until K >= 2), every plane-selection policy must be deterministic across
// repeat runs and engine shard counts, a plane-0 fault wave must never
// touch plane-1 traffic, the scenario keys must round-trip, and
// heterogeneous rails hand-wired through build_plane_set must satisfy the
// same conservation ledger as the presets.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "core/scenario.hpp"
#include "route/plane_select.hpp"
#include "test_fixtures.hpp"
#include "topo/plane_set.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::testing;

namespace {

/// Every field of two SimResults must match exactly, including the
/// order-sensitive floating-point latency statistics.
void expect_bit_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.generated_measured, b.generated_measured);
  EXPECT_EQ(a.delivered_measured, b.delivered_measured);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.generated_packets, b.generated_packets);
  EXPECT_EQ(a.generated_flits, b.generated_flits);
  EXPECT_EQ(a.ejected_flits, b.ejected_flits);
  EXPECT_EQ(a.lost_flits, b.lost_flits);
  EXPECT_EQ(a.inflight_packets, b.inflight_packets);
  EXPECT_EQ(a.inflight_flits, b.inflight_flits);
  EXPECT_EQ(a.suppressed, b.suppressed);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
  EXPECT_EQ(a.plane_generated, b.plane_generated);
  EXPECT_EQ(a.plane_delivered, b.plane_delivered);
  EXPECT_EQ(a.plane_dropped, b.plane_dropped);
  EXPECT_EQ(a.plane_inflight, b.plane_inflight);
}

/// A short tiny-swless open-loop spec; `planes` = 0 keeps the classic
/// (pre-plane) build path.
core::ScenarioSpec plane_spec(int planes,
                              route::PlanePolicy policy =
                                  route::PlanePolicy::Hash) {
  core::ScenarioSpec s;
  s.topology = "tiny-swless";
  s.traffic = "uniform";
  s.rates = {0.5};
  s.sim.warmup = 300;
  s.sim.measure = 700;
  s.sim.drain = 2000;
  s.sim.seed = 11;
  s.sim.shards = 1;
  s.plane_count = planes;
  s.plane_policy = policy;
  return s;
}

sim::SimResult run_one(const core::ScenarioSpec& s) {
  const auto series = core::run_scenario(s);
  EXPECT_EQ(series.points.size(), 1u);
  return series.points.at(0).res;
}

}  // namespace

// ---- K = 1 identity ------------------------------------------------------

TEST(PlaneIdentity, K1BitIdenticalSweepVsPrePlaneBuild) {
  // The fig11a-style tiny sweep: the single-rail PlaneSet build must
  // reproduce the classic build bit for bit at every offered load.
  auto classic = plane_spec(0);
  classic.rates = {0.2, 0.5, 0.8};
  auto k1 = classic;
  k1.plane_count = 1;
  const auto a = core::run_scenario(classic);
  const auto b = core::run_scenario(k1);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    expect_bit_identical(a.points[i].res, b.points[i].res);
    EXPECT_TRUE(audit_conservation(a.points[i].res));
    EXPECT_TRUE(audit_conservation(b.points[i].res));
    EXPECT_GT(a.points[i].res.delivered_total, 0u);
  }
}

TEST(PlaneIdentity, K1BitIdenticalClosedLoopWorkload) {
  auto s = plane_spec(0);
  s.rates.clear();
  s.workload = "ring-allreduce";
  s.workload_opts["scope"] = "wgroup";
  s.workload_opts["kib"] = "4";
  const auto classic = core::run_workload_scenario(s);
  s.plane_count = 1;
  const auto k1 = core::run_workload_scenario(s);
  EXPECT_TRUE(classic.result.completed);
  EXPECT_TRUE(k1.result.completed);
  EXPECT_EQ(classic.result.cycles, k1.result.cycles);
  EXPECT_EQ(classic.result.packets, k1.result.packets);
  EXPECT_EQ(classic.result.packets_delivered, k1.result.packets_delivered);
  EXPECT_EQ(classic.result.flit_hops, k1.result.flit_hops);
  EXPECT_EQ(classic.result.avg_msg_cycles, k1.result.avg_msg_cycles);
}

// ---- policy determinism --------------------------------------------------

TEST(PlanePolicies, DeterministicAcrossRepeatsAndShards) {
  for (const route::PlanePolicy pol :
       {route::PlanePolicy::Hash, route::PlanePolicy::RoundRobin,
        route::PlanePolicy::Adaptive, route::PlanePolicy::Collective}) {
    const auto s = plane_spec(2, pol);
    const auto serial = run_one(s);
    const auto repeat = run_one(s);
    auto sharded_spec = s;
    sharded_spec.sim.shards = 2;
    const auto sharded = run_one(sharded_spec);
    expect_bit_identical(serial, repeat);
    expect_bit_identical(serial, sharded);
    EXPECT_TRUE(audit_conservation(serial));
    ASSERT_EQ(serial.plane_delivered.size(), 2u);
    // Every policy spreads uniform traffic over both rails (collective
    // falls back to hash when packets carry no rail hint).
    EXPECT_GT(serial.plane_delivered[0], 0u)
        << route::to_string(pol);
    EXPECT_GT(serial.plane_delivered[1], 0u)
        << route::to_string(pol);
  }
}

TEST(PlanePolicies, ShardsEnvMatchesExplicit) {
  // SLDF_SHARDS=2 with shards=auto must equal the explicit shards=2 run
  // (and therefore the serial run).
  const auto s = plane_spec(2, route::PlanePolicy::Adaptive);
  const auto serial = run_one(s);
  auto env_spec = s;
  env_spec.sim.shards = 0;  // auto: defer to the environment
  setenv("SLDF_SHARDS", "2", 1);
  const auto via_env = run_one(env_spec);
  unsetenv("SLDF_SHARDS");
  expect_bit_identical(serial, via_env);
}

// ---- per-plane fault isolation -------------------------------------------

TEST(PlaneFaults, PlaneZeroFailureNeverTouchesPlaneOne) {
  auto s = plane_spec(2);
  s.topo["fault_tolerant"] = "1";
  s.fault.seed = 7;
  s.fault.rescue = false;
  s.fault.plane = 0;
  s.fault.events = "fail@300:global=0.4";
  const auto r = run_one(s);
  ASSERT_EQ(r.plane_dropped.size(), 2u);
  // The fault wave kills only rail-0 cables: every lost packet is a rail-0
  // packet, and rail 1 keeps delivering as if nothing happened.
  EXPECT_GT(r.plane_dropped[0], 0u);
  EXPECT_EQ(r.plane_dropped[1], 0u);
  EXPECT_GT(r.plane_delivered[1], 0u);
  EXPECT_EQ(r.dropped_packets, r.plane_dropped[0]);
  EXPECT_TRUE(audit_conservation(r));
}

// ---- scenario keys -------------------------------------------------------

TEST(PlaneScenarioKeys, RoundTripThroughKv) {
  core::ScenarioSpec s;
  s.set("plane.count", "2");
  s.set("plane.policy", "adaptive");
  s.set("plane.mix", "radix16-swless, radix16-swdf");
  s.set("fault.plane", "0");
  EXPECT_EQ(s.plane_count, 2);
  EXPECT_EQ(s.plane_policy, route::PlanePolicy::Adaptive);
  ASSERT_EQ(s.plane_mix.size(), 2u);
  EXPECT_EQ(s.plane_mix[0], "radix16-swless");
  EXPECT_EQ(s.plane_mix[1], "radix16-swdf");
  EXPECT_EQ(s.fault.plane, 0);

  const auto kv = s.to_kv();
  EXPECT_EQ(kv.at("plane.count"), "2");
  EXPECT_EQ(kv.at("plane.policy"), "adaptive");
  EXPECT_EQ(kv.at("plane.mix"), "radix16-swless,radix16-swdf");
  EXPECT_EQ(kv.at("fault.plane"), "0");
  const auto back = core::ScenarioSpec::from_kv(kv);
  EXPECT_EQ(back.plane_count, 2);
  EXPECT_EQ(back.plane_policy, route::PlanePolicy::Adaptive);
  EXPECT_EQ(back.plane_mix, s.plane_mix);
  EXPECT_EQ(back.fault.plane, 0);

  // Unset plane keys must not appear in the kv form at all.
  core::ScenarioSpec plain;
  const auto plain_kv = plain.to_kv();
  EXPECT_EQ(plain_kv.count("plane.count"), 0u);
  EXPECT_EQ(plain_kv.count("plane.policy"), 0u);
  EXPECT_EQ(plain_kv.count("plane.mix"), 0u);
  EXPECT_EQ(plain_kv.count("fault.plane"), 0u);
}

TEST(PlaneScenarioKeys, RejectsInvalidValues) {
  core::ScenarioSpec s;
  EXPECT_THROW(s.set("plane.count", "0"), std::invalid_argument);
  EXPECT_THROW(s.set("plane.count", "many"), std::invalid_argument);
  EXPECT_THROW(s.set("plane.policy", "bogus"), std::invalid_argument);
  EXPECT_THROW(s.set("plane.mix", ",,"), std::invalid_argument);
  EXPECT_THROW(s.set("fault.plane", "-2"), std::invalid_argument);
}

TEST(PlaneScenarioKeys, BuildValidatesMixAgainstCount) {
  // plane.mix length must equal plane.count ...
  auto s = plane_spec(2);
  s.plane_mix = {"tiny-swless"};
  sim::Network net;
  EXPECT_THROW(core::build_network(net, s), std::invalid_argument);
  // ... and every rail must span the same logical chips (tiny-swless is 60
  // chips at g = 5; radix16-swless is far larger).
  auto mism = plane_spec(2);
  mism.plane_mix = {"tiny-swless", "radix16-swless"};
  sim::Network net2;
  EXPECT_THROW(core::build_network(net2, mism), std::invalid_argument);
}

// ---- heterogeneous rails, hand-wired -------------------------------------

TEST(PlaneMix, HandWiredSwlessPlusSwdfRails) {
  // A switch-less rail and a switch-based rail over the same 60 logical
  // chips (tiny-swless at g = 5 vs a 3x4 Dragonfly with 5 groups) — the
  // shared-TopoConfig CLI path cannot express family-specific parameters,
  // but build_plane_set takes any wirer.
  sim::Network net;
  topo::build_plane_set(
      net, 2, static_cast<int>(route::PlanePolicy::RoundRobin),
      [](int plane, sim::Network& n) {
        if (plane == 0)
          return topo::wire_swless_dragonfly(
              n, tiny_swless_params(route::VcScheme::Baseline,
                                    route::RouteMode::Minimal, /*g=*/5));
        auto q = small_swdf_params(/*groups=*/5);
        q.terminals_per_switch = 4;  // 3 * 4 = 12 chips/group, 60 total
        return topo::wire_sw_dragonfly(n, q);
      });
  EXPECT_EQ(net.num_planes(), 2);
  EXPECT_EQ(net.num_chips(), 60u);
  EXPECT_EQ(static_cast<int>(net.plane_policy()),
            static_cast<int>(route::PlanePolicy::RoundRobin));
  // Twins: same chip, other plane.
  for (const NodeId t : net.logical_terminals()) {
    EXPECT_EQ(net.plane_of_node(t), 0);
    const NodeId twin = net.plane_twin(t, 1);
    EXPECT_EQ(net.plane_of_node(twin), 1);
    EXPECT_EQ(net.chip_of(twin), net.chip_of(t));
  }
  // The mixed pair carries traffic on both rails and closes the ledger.
  sim::SimConfig sc;
  sc.inj_rate_per_chip = 0.3;
  sc.warmup = 200;
  sc.measure = 500;
  sc.drain = 1500;
  sc.seed = 11;
  const auto traffic = traffic::make_pattern("uniform", net, {});
  const auto r = sim::run_sim(net, sc, *traffic);
  ASSERT_EQ(r.plane_delivered.size(), 2u);
  EXPECT_GT(r.plane_delivered[0], 0u);
  EXPECT_GT(r.plane_delivered[1], 0u);
  EXPECT_TRUE(audit_conservation(r));
}
