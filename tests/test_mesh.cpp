// Tests for the C-group builder and standalone mesh network: structure,
// link types/widths, chip assignment, port banding, and XY routing.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "sim/simulator.hpp"
#include "topo/cgroup.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::topo;

namespace {
CGroupShape radix16_shape(int locals = 0, int globals = 0) {
  CGroupShape s;
  s.chip_gx = s.chip_gy = 2;
  s.noc_x = s.noc_y = 2;
  s.ports_per_chiplet = 6;
  s.local_ports = locals;
  s.global_ports = globals;
  return s;
}
}  // namespace

TEST(CGroup, ShapeDerivedQuantities) {
  const auto s = radix16_shape();
  EXPECT_EQ(s.mx(), 4);
  EXPECT_EQ(s.my(), 4);
  EXPECT_EQ(s.routers(), 16);
  EXPECT_EQ(s.chips(), 4);
}

TEST(CGroup, BuildsCoresChipsAndMesh) {
  sim::Network net;
  const auto cg = build_cgroup(net, radix16_shape(), 0);
  EXPECT_EQ(cg.cores.size(), 16u);
  EXPECT_EQ(net.num_chips(), 4u);
  // Every core is a terminal of the right chip (2x2 blocks).
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x)
      EXPECT_EQ(net.chip_of(cg.core_at(4, x, y)),
                (y / 2) * 2 + (x / 2));
}

TEST(CGroup, BoundaryLinksAreFractionalShortReach) {
  sim::Network net;
  const auto cg = build_cgroup(net, radix16_shape(), 0);
  // Link from (1,0) to (2,0) crosses the chiplet boundary: short-reach,
  // width 3/4 (n=6 => 1.5 links per edge over 2 router pairs).
  const ChanId boundary =
      cg.mesh_out[0 * 4 + 1][kEast];
  ASSERT_NE(boundary, kInvalidChan);
  const auto& bc = net.chan(boundary);
  EXPECT_EQ(bc.type, LinkType::ShortReach);
  EXPECT_EQ(bc.width_num, 3);
  EXPECT_EQ(bc.width_den, 4);
  // Link from (0,0) to (1,0) is on-chip, full width.
  const auto& ic = net.chan(cg.mesh_out[0][kEast]);
  EXPECT_EQ(ic.type, LinkType::OnChip);
  EXPECT_EQ(ic.width_num, 1);
  EXPECT_EQ(ic.width_den, 1);
}

TEST(CGroup, MeshWidthMultiplierScalesLinks) {
  auto s = radix16_shape();
  s.mesh_width = 2;
  sim::Network net;
  const auto cg = build_cgroup(net, s, 0);
  EXPECT_EQ(net.chan(cg.mesh_out[0][kEast]).width_num, 2);
  const auto& bc = net.chan(cg.mesh_out[1][kEast]);
  EXPECT_EQ(bc.width_num, 3);  // 2 * 3/4 = 3/2
  EXPECT_EQ(bc.width_den, 2);
}

TEST(CGroup, PortBandsGlobalsLowLocalsHigh) {
  sim::Network net;
  const auto s = radix16_shape(7, 5);
  const auto cg = build_cgroup(net, s, 0);
  ASSERT_EQ(cg.locals.size(), 7u);
  ASSERT_EQ(cg.globals.size(), 5u);
  // Every global host label below every local host label.
  std::int32_t max_g = -1, min_l = 1 << 30;
  for (const auto& p : cg.globals)
    max_g = std::max(max_g, net.router(p.host).label);
  for (const auto& p : cg.locals)
    min_l = std::min(min_l, net.router(p.host).label);
  EXPECT_LT(max_g, min_l);
  // IO converters exist with attach channels.
  for (const auto& p : cg.globals) {
    EXPECT_EQ(net.router(p.io).kind, NodeKind::IoConverter);
    EXPECT_EQ(net.chan(p.exit_chan).src, p.host);
    EXPECT_EQ(net.chan(p.exit_chan).dst, p.io);
    EXPECT_EQ(net.chan(p.exit_chan).type, LinkType::ShortReach);
  }
}

TEST(CGroup, TooManyPortsThrows) {
  auto s = radix16_shape(20, 20);  // 40 ports > 2x 12 perimeter routers
  sim::Network net;
  EXPECT_THROW(build_cgroup(net, s, 0), std::invalid_argument);
}

TEST(MeshNetwork, XyDeliversAllPairs) {
  sim::Network net;
  build_mesh_network(net, radix16_shape(), 1, 32);
  // Walk the routing function for every pair.
  Rng rng(1);
  for (NodeId s : net.terminals()) {
    for (NodeId d : net.terminals()) {
      if (s == d) continue;
      sim::Packet pkt;
      pkt.src = s;
      pkt.dst = d;
      net.routing()->init_packet(net, pkt, rng);
      NodeId cur = s;
      int hops = 0;
      while (cur != d) {
        const auto dec = net.routing()->route(net, cur, 0, pkt);
        const ChanId c =
            net.router(cur).out[static_cast<std::size_t>(dec.out_port)]
                .out_chan;
        ASSERT_NE(c, kInvalidChan);
        cur = net.chan(c).dst;
        ASSERT_LE(++hops, 6) << "XY exceeded mesh diameter";
      }
    }
  }
}

TEST(MeshNetwork, UniformSaturatesNearPaperValue) {
  // Paper Fig 10(a): the 4x4-router C-group saturates near 3 flits/cycle/
  // chip under uniform traffic (chiplet-boundary bisection = 3 links).
  sim::Network net;
  build_mesh_network(net, radix16_shape(), 1, 32);
  sim::SimConfig cfg;
  cfg.inj_rate_per_chip = 4.0;  // beyond saturation
  cfg.warmup = 1000;
  cfg.measure = 4000;
  cfg.drain = 0;
  auto tr = traffic::make_pattern("uniform", net);
  const auto r = sim::run_sim(net, cfg, *tr);
  EXPECT_GT(r.accepted, 2.0);
  EXPECT_LT(r.accepted, 3.3);
}

TEST(MeshNetwork, ZeroLoadLatencySane) {
  sim::Network net;
  build_mesh_network(net, radix16_shape(), 1, 32);
  sim::SimConfig cfg;
  cfg.inj_rate_per_chip = 0.1;
  cfg.warmup = 500;
  cfg.measure = 2000;
  auto tr = traffic::make_pattern("uniform", net);
  const auto r = sim::run_sim(net, cfg, *tr);
  EXPECT_GT(r.avg_latency, 5.0);
  EXPECT_LT(r.avg_latency, 14.0);  // paper Fig 10(a) starts near 8
  EXPECT_TRUE(r.drained);
}

TEST(MeshNetwork, CensusMatchesShape) {
  sim::Network net;
  build_mesh_network(net, radix16_shape(), 1, 32);
  const auto c = core::census(net);
  EXPECT_EQ(c.cores, 16u);
  EXPECT_EQ(c.io_converters, 0u);
  EXPECT_EQ(c.chips, 4u);
  // 2 duplex links per inner pair: 24 directed mesh channels... 4x4 mesh has
  // 2*(3*4)*2 = 48 directed channels.
  EXPECT_EQ(c.channels_total, 48u);
}
