// Online fault-timeline suite: the fault.events / fault.schedule parsers
// (typed FaultError with origin:line), resolution against the seeded
// permutation (verb validation, static-prefix equivalence), engine
// application (fail -> repair -> fail bit-identity across repeat runs and
// shard counts, rescue-vs-drop accounting, closed-loop failure surfacing),
// checkpoint/resume mid-timeline, the transient-vs-permanent audit, and
// the placement allocator's fault-epoch guard.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/scenario.hpp"
#include "sim/simulator.hpp"
#include "test_fixtures.hpp"
#include "topo/faults.hpp"
#include "trace/placement.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using topo::FaultError;
using topo::FaultKind;

namespace {

/// Every field of two SimResults must match exactly, including the
/// order-sensitive latency statistics and the fault accounting.
void expect_bit_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.generated_measured, b.generated_measured);
  EXPECT_EQ(a.delivered_measured, b.delivered_measured);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.suppressed, b.suppressed);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.dropped_flits, b.dropped_flits);
  EXPECT_EQ(a.rescued_packets, b.rescued_packets);
}

/// Base open-loop spec on the tiny switch-less instance.
core::ScenarioSpec tiny_spec() {
  core::ScenarioSpec s;
  s.topology = "tiny-swless";
  s.traffic = "uniform";
  s.rates = {0.2};
  s.sim.warmup = 100;
  s.sim.measure = 300;
  s.sim.drain = 600;
  s.sim.seed = 11;
  return s;
}

std::set<ChanId> dead_channels(const sim::Network& net) {
  std::set<ChanId> dead;
  for (std::size_t i = 0; i < net.num_channels(); ++i)
    if (!net.chan_live(static_cast<ChanId>(i)))
      dead.insert(static_cast<ChanId>(i));
  return dead;
}

}  // namespace

// ---------------------------------------------------------------- parsing ---

TEST(TimelineParse, EventsGrammar) {
  const auto tl = topo::parse_fault_events(
      "fail@2000:global=0.05; repair@5000:global=0 ;fail@5000:chip3");
  ASSERT_EQ(tl.events.size(), 3u);
  EXPECT_TRUE(tl.events[0].fail);
  EXPECT_EQ(tl.events[0].at, 2000u);
  EXPECT_FALSE(tl.events[0].is_chip);
  EXPECT_EQ(tl.events[0].kind, FaultKind::Global);
  EXPECT_DOUBLE_EQ(tl.events[0].rate, 0.05);
  EXPECT_FALSE(tl.events[1].fail);
  EXPECT_DOUBLE_EQ(tl.events[1].rate, 0.0);
  EXPECT_TRUE(tl.events[2].is_chip);
  EXPECT_EQ(tl.events[2].chip, 3);
}

TEST(TimelineParse, EventsRejectsMalformed) {
  EXPECT_THROW(topo::parse_fault_events("fail2000:global=0.1"), FaultError);
  EXPECT_THROW(topo::parse_fault_events("die@3:global=0.1"), FaultError);
  EXPECT_THROW(topo::parse_fault_events("fail@3:global=1.5"), FaultError);
  EXPECT_THROW(topo::parse_fault_events("fail@3:bogus=0.1"), FaultError);
  EXPECT_THROW(topo::parse_fault_events("fail@3"), FaultError);
  EXPECT_THROW(topo::parse_fault_events("fail@x:chip2"), FaultError);
  EXPECT_THROW(topo::parse_fault_events("fail@3:chip-2"), FaultError);
  // Non-decreasing cycle order is part of the grammar.
  EXPECT_THROW(
      topo::parse_fault_events("fail@9:global=0.1;fail@5:local=0.1"),
      FaultError);
}

TEST(TimelineParse, ScheduleFormatAndOriginLine) {
  std::istringstream ok(
      "sldf-faults 1\n"
      "# comment\n"
      "fail 100 global 0.1\n"
      "\n"
      "repair 200 global 0   # trailing comment\n"
      "fail 200 chip 4\n");
  const auto tl = topo::parse_fault_schedule(ok, "ok.sched");
  ASSERT_EQ(tl.events.size(), 3u);
  EXPECT_EQ(tl.events[0].at, 100u);
  EXPECT_TRUE(tl.events[2].is_chip);

  std::istringstream bad(
      "sldf-faults 1\n"
      "fail 100 global 0.1\n"
      "fail 200 global nope\n");
  try {
    topo::parse_fault_schedule(bad, "bad.sched");
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("bad.sched:3"), std::string::npos)
        << e.what();
  }
}

TEST(TimelineParse, ScheduleHeaderAndFileErrors) {
  std::istringstream no_header("fail 100 global 0.1\n");
  EXPECT_THROW(topo::parse_fault_schedule(no_header, "x"), FaultError);
  std::istringstream empty("");
  EXPECT_THROW(topo::parse_fault_schedule(empty, "x"), FaultError);
  EXPECT_THROW(topo::load_fault_schedule("/nonexistent/faults.sched"),
               FaultError);
}

// ------------------------------------------------------------- resolution ---

TEST(TimelineResolve, VerbsMustMatchLevels) {
  // A repair that raises a level, a fail that lowers one, and a repair of
  // a live chip are all verb errors caught at build time.
  for (const char* events :
       {"repair@10:global=0.1", "fail@10:global=0.2;fail@20:global=0.1",
        "repair@10:chip0", "fail@10:chip2;fail@20:chip2"}) {
    auto s = tiny_spec();
    s.fault.events = events;
    sim::Network net;
    EXPECT_THROW(core::build_network(net, s), FaultError) << events;
  }
}

TEST(TimelineResolve, StepMatchesStaticInjectionPrefix) {
  // The cables a timeline fails at rate r are exactly the set a static
  // injection at rate r kills (same seed, shared permutation prefix).
  auto stat = tiny_spec();
  stat.fault.rate = 0.2;
  stat.fault.kind = FaultKind::Local;
  stat.fault.seed = 5;
  sim::Network net_static;
  core::build_network(net_static, stat);

  auto tl = tiny_spec();
  tl.fault.seed = 5;
  tl.fault.events = "fail@10:local=0.2";
  sim::Network net_tl;
  core::build_network(net_tl, tl);
  const sim::FaultSchedule* sched = net_tl.fault_schedule();
  ASSERT_NE(sched, nullptr);
  ASSERT_EQ(sched->steps.size(), 1u);
  EXPECT_EQ(sched->steps[0].at, 10u);
  const std::set<ChanId> from_step(sched->steps[0].fail_chans.begin(),
                                   sched->steps[0].fail_chans.end());
  EXPECT_EQ(from_step, dead_channels(net_static));
  EXPECT_TRUE(dead_channels(net_tl).empty());  // nothing dead at cycle 0
}

// ---------------------------------------------------------- scenario keys ---

TEST(TimelineScenario, KeysParseSerializeAndValidate) {
  core::ScenarioSpec s;
  s.set("fault.events", "fail@100:local=0.2;repair@300:local=0");
  s.set("fault.rescue", "0");
  EXPECT_TRUE(s.fault.has_timeline());
  EXPECT_FALSE(s.fault.rescue);
  const auto kv = s.to_kv();
  const auto round = core::ScenarioSpec::from_kv(kv);
  EXPECT_EQ(round.fault.events, s.fault.events);
  EXPECT_EQ(round.fault.rescue, s.fault.rescue);
  // Inline grammar is validated at set() time with the typed error.
  EXPECT_THROW(s.set("fault.events", "fail@oops"), FaultError);
  // A timeline alone forces the fault-tolerant build.
  core::ScenarioSpec t;
  t.set("fault.events", "fail@5:local=0.1");
  EXPECT_TRUE(t.topo_config().fault_tolerant);
}

TEST(TimelineScenario, EventsAndScheduleAreExclusive) {
  auto s = tiny_spec();
  s.fault.events = "fail@10:local=0.1";
  s.fault.schedule = "whatever.sched";
  sim::Network net;
  EXPECT_THROW(core::build_network(net, s), FaultError);
}

TEST(TimelineScenario, EmptyTimelineIsBitIdenticalToUnfaulted) {
  // rate = 0 plus a timeline that parses to zero events arms the mask and
  // attaches an empty schedule — and must change nothing.
  auto plain = tiny_spec();
  plain.topo["fault_tolerant"] = "1";  // same VC budget on both builds
  auto timeline = plain;
  timeline.fault.events = " ; ";  // parses to an empty event list
  timeline.fault.seed = 99;       // a seed alone must not change anything
  const auto a = core::run_scenario(plain);
  const auto b = core::run_scenario(timeline);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i)
    expect_bit_identical(a.points[i].res, b.points[i].res);
}

TEST(TimelineScenario, FutureEventsNeverFireAndChangeNothing) {
  auto plain = tiny_spec();
  plain.topo["fault_tolerant"] = "1";
  auto timeline = plain;
  timeline.fault.events = "fail@1000000:global=0.5";
  const auto a = core::run_scenario(plain);
  const auto b = core::run_scenario(timeline);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i)
    expect_bit_identical(a.points[i].res, b.points[i].res);
}

// ------------------------------------------------------------- the engine ---

TEST(TimelineRun, FailRepairFailBitIdenticalAcrossRunsAndShards) {
  auto s = tiny_spec();
  s.fault.seed = 5;
  // The final repair revives every cable so packets parked on dead exits
  // (no live detour existed) move again and the run drains completely.
  s.fault.events =
      "fail@150:local=0.2;repair@300:local=0.1;fail@450:local=0.25;"
      "repair@600:local=0";
  sim::Network net;
  core::build_network(net, s);
  const auto pattern = traffic::make_pattern("uniform", net, {});
  sim::SimConfig cfg = s.sim;
  // Well below the degraded fabric's saturation point, so the drain window
  // can actually land every measured packet once the last repair fires.
  cfg.inj_rate_per_chip = 0.1;
  cfg.shards = 1;
  const auto a = sim::run_sim(net, cfg, *pattern);
  const auto b = sim::run_sim(net, cfg, *pattern);  // repeat, same net
  cfg.shards = 2;
  const auto c = sim::run_sim(net, cfg, *pattern);  // sharded engine
  expect_bit_identical(a, b);
  expect_bit_identical(a, c);
  EXPECT_TRUE(a.drained);
  EXPECT_GT(a.delivered_total, 0u);
  EXPECT_TRUE(sldf::testing::audit_conservation(a));
}

TEST(TimelineRun, RescueAndDropAccountTheSameTornPackets) {
  // One fail event, identical engine trajectory up to it: the set of torn
  // packets is the same, so rescue-mode rescues exactly what drop-mode
  // drops. The late repair revives the cables so both runs drain: dropped
  // packets are terminal, rescued ones re-deliver once the fabric heals.
  auto s = tiny_spec();
  s.fault.seed = 5;
  s.fault.events = "fail@200:local=0.5;repair@650:local=0";
  auto sd = s;
  sd.fault.rescue = false;
  sim::SimConfig cfg = s.sim;
  cfg.inj_rate_per_chip = 0.1;  // below degraded saturation: both runs drain

  sim::Network net_r;
  core::build_network(net_r, s);
  const auto pat_r = traffic::make_pattern("uniform", net_r, {});
  const auto rescued = sim::run_sim(net_r, cfg, *pat_r);

  sim::Network net_d;
  core::build_network(net_d, sd);
  const auto pat_d = traffic::make_pattern("uniform", net_d, {});
  const auto dropped = sim::run_sim(net_d, cfg, *pat_d);

  EXPECT_GT(rescued.rescued_packets, 0u);
  EXPECT_EQ(rescued.dropped_packets, 0u);  // every endpoint stays alive
  EXPECT_EQ(dropped.rescued_packets, 0u);
  EXPECT_EQ(dropped.dropped_packets, rescued.rescued_packets);
  EXPECT_TRUE(rescued.drained);
  EXPECT_TRUE(dropped.drained);
  // The ledger closes in both accounting modes: rescue re-credits the
  // already-ejected prefix as regenerated work, drop writes it off as lost.
  EXPECT_TRUE(sldf::testing::audit_conservation(rescued));
  EXPECT_TRUE(sldf::testing::audit_conservation(dropped));
}

TEST(TimelineRun, ClosedLoopChipDeathSurfacesFailures) {
  // A chip dying mid-AllReduce must fail/orphan its messages and let the
  // run terminate with the loss reported, never hang waiting on them.
  auto s = tiny_spec();
  s.workload = "ring-allreduce";
  s.workload_opts["scope"] = "cgroup";
  s.workload_opts["kib"] = "8";
  s.workload_opts["max_cycles"] = "200000";
  s.fault.events = "fail@80:chip1";
  const auto run = core::run_workload_scenario(s);
  const auto& r = run.result;
  EXPECT_FALSE(r.completed);
  EXPECT_GT(r.failed_messages + r.orphaned_messages, 0u);
  // Only C-group 0's ring touches chip 1; the other rings complete, so
  // most messages still finish.
  EXPECT_GT(r.messages, r.failed_messages + r.orphaned_messages);
  EXPECT_LT(r.cycles, 200000u);
}

TEST(TimelineRun, ClosedLoopFailRepairFailBitIdenticalAcrossShards) {
  auto s = tiny_spec();
  s.workload = "ring-allreduce";
  s.workload_opts["scope"] = "cgroup";
  s.workload_opts["kib"] = "8";
  s.fault.seed = 5;
  s.fault.events =
      "fail@100:local=0.3;repair@250:local=0.1;fail@400:local=0.35";
  const auto a = core::run_workload_scenario(s);
  const auto b = core::run_workload_scenario(s);
  auto sh = s;
  sh.sim.shards = 2;
  const auto c = core::run_workload_scenario(sh);
  for (const auto* other : {&b.result, &c.result}) {
    EXPECT_EQ(a.result.completed, other->completed);
    EXPECT_EQ(a.result.cycles, other->cycles);
    EXPECT_EQ(a.result.packets, other->packets);
    EXPECT_EQ(a.result.packets_delivered, other->packets_delivered);
    EXPECT_EQ(a.result.flit_hops, other->flit_hops);
    EXPECT_EQ(a.result.failed_messages, other->failed_messages);
    EXPECT_EQ(a.result.orphaned_messages, other->orphaned_messages);
    EXPECT_EQ(a.result.dropped_packets, other->dropped_packets);
    EXPECT_EQ(a.result.rescued_packets, other->rescued_packets);
    EXPECT_EQ(a.result.avg_msg_cycles, other->avg_msg_cycles);
  }
}

// ----------------------------------------------------- checkpoint / resume ---

TEST(Checkpoint, MidTimelineResumeMatchesUninterruptedRun) {
  auto s = tiny_spec();
  s.fault.seed = 5;
  s.fault.events = "fail@150:local=0.3;repair@400:local=0";
  sim::SimConfig cfg = s.sim;
  cfg.inj_rate_per_chip = 0.2;

  const auto build = [&](sim::Network& net) { core::build_network(net, s); };

  // Golden: one uninterrupted run.
  sim::Network net_a;
  build(net_a);
  const auto pat_a = traffic::make_pattern("uniform", net_a, {});
  sim::Simulator a(net_a, cfg, *pat_a);
  const sim::SimResult golden = a.run();

  // Checkpoint at cycle 200 — after the fail, before the repair.
  sim::Network net_b;
  build(net_b);
  const auto pat_b = traffic::make_pattern("uniform", net_b, {});
  sim::Simulator b(net_b, cfg, *pat_b);
  while (b.now() < 200) b.step();
  std::stringstream ck;
  b.save_checkpoint(ck);

  // Resume in a fresh engine over a fresh build and finish the run.
  sim::Network net_c;
  build(net_c);
  const auto pat_c = traffic::make_pattern("uniform", net_c, {});
  sim::Simulator c(net_c, cfg, *pat_c);
  c.restore_checkpoint(ck);
  EXPECT_EQ(c.now(), 200u);
  const sim::SimResult resumed = c.run();
  expect_bit_identical(golden, resumed);
}

TEST(Checkpoint, RejectsShapeMismatchAndTruncation) {
  auto s = tiny_spec();
  sim::Network net;
  core::build_network(net, s);
  const auto pat = traffic::make_pattern("uniform", net, {});
  sim::SimConfig cfg = s.sim;
  sim::Simulator a(net, cfg, *pat);
  while (a.now() < 50) a.step();
  std::stringstream ck;
  a.save_checkpoint(ck);

  // Different seed = different config fingerprint.
  sim::Network net2;
  core::build_network(net2, s);
  const auto pat2 = traffic::make_pattern("uniform", net2, {});
  sim::SimConfig other = cfg;
  other.seed = cfg.seed + 1;
  sim::Simulator b(net2, other, *pat2);
  EXPECT_THROW(b.restore_checkpoint(ck), std::runtime_error);

  // Truncated stream.
  const std::string full = ck.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  sim::Simulator c(net2, cfg, *pat2);
  EXPECT_THROW(c.restore_checkpoint(cut), std::runtime_error);
}

// -------------------------------------------------------------- audit_at ---

TEST(AuditAt, SeparatesTransientFromPermanentPartitions) {
  auto s = tiny_spec();
  s.fault.events = "fail@100:global=1;repair@200:global=0";
  sim::Network net;
  core::build_network(net, s);
  const auto dead_before = dead_channels(net);

  const auto before = topo::audit_at(net, 50);
  EXPECT_TRUE(before.snapshot.all_reachable());
  EXPECT_FALSE(before.transiently_partitioned());

  const auto during = topo::audit_at(net, 150);
  EXPECT_GT(during.snapshot.unreachable, 0u);  // every global cable dead
  EXPECT_TRUE(during.transiently_partitioned());
  EXPECT_FALSE(during.permanently_partitioned());
  EXPECT_FALSE(during.to_string().empty());

  // The audit rewinds the mask: the network is unchanged.
  EXPECT_EQ(dead_channels(net), dead_before);

  // Without the repair the partition is permanent.
  auto p = tiny_spec();
  p.fault.events = "fail@100:global=1";
  sim::Network net2;
  core::build_network(net2, p);
  const auto perm = topo::audit_at(net2, 150);
  EXPECT_TRUE(perm.permanently_partitioned());
  EXPECT_FALSE(perm.transiently_partitioned());
}

TEST(AuditAt, RequiresAnAttachedSchedule) {
  auto s = tiny_spec();
  sim::Network net;
  core::build_network(net, s);
  EXPECT_THROW(topo::audit_at(net, 10), FaultError);
}

// ----------------------------------------------------- placement vs repair ---

TEST(PlacementEpoch, AllocatorRejectsStaleFreeListAfterFaultTransition) {
  auto s = tiny_spec();
  s.fault.events = "fail@100:local=0.2;repair@300:local=0";
  sim::Network net;
  core::build_network(net, s);

  trace::PlacementAllocator alloc(net);
  EXPECT_EQ(alloc.allocate(2, trace::PlacementPolicy::Contiguous, "t0").size(),
            2u);

  // Run the timeline: fault steps bump the network's fault epoch.
  const auto pattern = traffic::make_pattern("uniform", net, {});
  sim::SimConfig cfg = s.sim;
  cfg.inj_rate_per_chip = 0.1;
  (void)sim::run_sim(net, cfg, *pattern);

  EXPECT_THROW(alloc.allocate(1, trace::PlacementPolicy::Contiguous, "t1"),
               ScenarioError);
  EXPECT_THROW(alloc.reserve({5}, "t1"), ScenarioError);
  // A fresh allocator against the current mask works again.
  trace::PlacementAllocator fresh(net);
  EXPECT_EQ(
      fresh.allocate(2, trace::PlacementPolicy::Contiguous, "t0").size(), 2u);
}
