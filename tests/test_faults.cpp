// Fault-injection property tests: deterministic seeded fault sets (nested
// across rates), port-table rewriting, fault-aware routing detours around
// dead local/global cables on both fabrics, CDG acyclicity and all-pairs
// reachability after injection, chip faults, rate-0 bit-identity with the
// un-faulted engine, and repeat-run / threads=1-vs-auto determinism.
#include <gtest/gtest.h>

#include <set>

#include "core/scenario.hpp"
#include "route/cdg.hpp"
#include "test_fixtures.hpp"
#include "topo/faults.hpp"

using namespace sldf;
using namespace sldf::testing;
using route::RouteMode;
using route::VcScheme;
using topo::FaultKind;
using topo::FaultSpec;

namespace {

/// Dead channel ids of a network with an armed fault mask.
std::set<ChanId> dead_channels(const sim::Network& net) {
  std::set<ChanId> dead;
  for (std::size_t i = 0; i < net.num_channels(); ++i)
    if (!net.chan_live(static_cast<ChanId>(i)))
      dead.insert(static_cast<ChanId>(i));
  return dead;
}

/// Builds tiny-swless with the fault-detour VC budget reserved.
void build_ft_swless(VcScheme scheme, RouteMode mode, int g,
                     sim::Network& net) {
  auto p = tiny_swless_params(scheme, mode, g);
  p.fault_tolerant = true;
  topo::build_swless_dragonfly(net, p);
}

/// Kills both directions of the local cable cg `ca` <-> `cb` in W-group wg.
void kill_local_cable(sim::Network& net, int wg, int ca, int cb) {
  const auto& T = net.topo<topo::SwlessTopo>();
  const auto& ep = T.cgroup(wg, ca).locals[static_cast<std::size_t>(
      topo::SwlessTopo::local_index(ca, cb))];
  net.enable_fault_mask();
  net.disable_channel(ep.line_out);
  net.disable_channel(ep.line_in);
}

/// Kills both directions of the global cable W-group `wa` <-> `wb`.
void kill_global_cable(sim::Network& net, int wa, int wb) {
  const auto& T = net.topo<topo::SwlessTopo>();
  const int H = T.p.global_ports;
  const int link = topo::SwlessTopo::global_link(wa, wb);
  const auto& ep =
      T.cgroup(wa, link / H).globals[static_cast<std::size_t>(link % H)];
  net.enable_fault_mask();
  net.disable_channel(ep.line_out);
  net.disable_channel(ep.line_in);
}

core::ScenarioSpec tiny_fault_spec() {
  core::ScenarioSpec s;
  s.topology = "tiny-swless";
  s.traffic = "uniform";
  s.rates = {0.15};
  s.sim.warmup = 100;
  s.sim.measure = 300;
  s.sim.drain = 400;
  return s;
}

}  // namespace

// ------------------------------------------------------------- fault spec ---

TEST(FaultSpec, KindParsesAndRoundTrips) {
  for (const auto k : {FaultKind::Any, FaultKind::Intra, FaultKind::Local,
                       FaultKind::Global})
    EXPECT_EQ(topo::parse_fault_kind(topo::to_string(k)), k);
  EXPECT_THROW(topo::parse_fault_kind("cosmic"), std::invalid_argument);
}

TEST(FaultSpec, ActiveGate) {
  FaultSpec s;
  EXPECT_FALSE(s.active());
  s.seed = 99;  // a seed alone injects nothing
  EXPECT_FALSE(s.active());
  s.rate = 0.1;
  EXPECT_TRUE(s.active());
  s.rate = 0.0;
  s.chips = {3};
  EXPECT_TRUE(s.active());
}

TEST(FaultInject, RejectsInactiveAndBadSpecs) {
  sim::Network net;
  build_ft_swless(VcScheme::Baseline, RouteMode::Minimal, 0, net);
  EXPECT_THROW(topo::inject_faults(net, FaultSpec{}), std::invalid_argument);
  FaultSpec bad;
  bad.rate = 1.5;
  EXPECT_THROW(topo::inject_faults(net, bad), std::invalid_argument);
  FaultSpec chip;
  chip.chips = {9999};
  EXPECT_THROW(topo::inject_faults(net, chip), std::invalid_argument);
}

// -------------------------------------------------------------- injection ---

TEST(FaultInject, SameSeedSameSet_DifferentSeedDifferentSet) {
  const auto inject = [](double rate, std::uint64_t seed) {
    sim::Network net;
    build_ft_swless(VcScheme::Baseline, RouteMode::Minimal, 0, net);
    FaultSpec s;
    s.rate = rate;
    s.kind = FaultKind::Global;
    s.seed = seed;
    topo::inject_faults(net, s);
    return dead_channels(net);
  };
  EXPECT_EQ(inject(0.2, 7), inject(0.2, 7));
  EXPECT_NE(inject(0.2, 7), inject(0.2, 8));
}

TEST(FaultInject, HigherRateIsSupersetOfLowerRate) {
  // Same seed: the failure set is a prefix of one permutation, so sweeps
  // degrade monotonically instead of jumping between unrelated sets.
  const auto inject = [](double rate) {
    sim::Network net;
    build_ft_swless(VcScheme::Baseline, RouteMode::Minimal, 0, net);
    FaultSpec s;
    s.rate = rate;
    s.kind = FaultKind::Any;
    s.seed = 42;
    topo::inject_faults(net, s);
    return dead_channels(net);
  };
  const auto low = inject(0.1);
  const auto high = inject(0.25);
  EXPECT_GT(low.size(), 0u);
  EXPECT_GT(high.size(), low.size());
  EXPECT_TRUE(std::includes(high.begin(), high.end(), low.begin(),
                            low.end()));
}

TEST(FaultInject, RewritesPortTablesSoDeadLinksCannotSend) {
  sim::Network net;
  build_ft_swless(VcScheme::Baseline, RouteMode::Minimal, 3, net);
  kill_global_cable(net, 0, 1);
  const auto dead = dead_channels(net);
  ASSERT_EQ(dead.size(), 2u);
  for (const ChanId c : dead) {
    const auto& ch = net.chan(c);
    const std::uint32_t* rec =
        net.port_rec(net.out_port_index(ch.src, ch.src_port));
    EXPECT_EQ((rec[sim::Network::kLinkMeta] >> 16) & 0xff, 0u)
        << "token width not zeroed";
    EXPECT_EQ(rec[0] >> 16, 0u);  // token bucket (word 0 high half)
  }
  // The rewrite survives dynamic-state resets (sweeps reuse the network).
  net.reset_dynamic_state();
  for (const ChanId c : dead) {
    const auto& ch = net.chan(c);
    const std::uint32_t* rec =
        net.port_rec(net.out_port_index(ch.src, ch.src_port));
    EXPECT_EQ(rec[0] >> 16, 0u);
  }
}

TEST(FaultInject, ChipFaultKillsNodesAndLinks) {
  // g = 3: chip 0 hosts the wg0<->wg1 gateway, so its death must be routed
  // around through wg2 (with g = 2 the fabric would genuinely partition).
  sim::Network net;
  build_ft_swless(VcScheme::Baseline, RouteMode::Minimal, 3, net);
  FaultSpec s;
  s.chips = {0};
  const auto rep = topo::inject_faults(net, s);
  EXPECT_EQ(rep.failed_chips, 1u);
  EXPECT_EQ(rep.failed_cables, 0u);
  EXPECT_GT(rep.dead_channels, 0u);
  for (const NodeId n : net.chip_nodes(0)) {
    EXPECT_FALSE(net.node_live(n));
    for (std::size_t i = 0; i < net.num_channels(); ++i) {
      const auto& ch = net.chan(static_cast<ChanId>(i));
      if (ch.src == n || ch.dst == n)
        EXPECT_FALSE(net.chan_live(static_cast<ChanId>(i)));
    }
  }
  const auto audit = topo::audit_fault_routing(net);
  EXPECT_GT(audit.skipped_dead, 0u);
  EXPECT_EQ(audit.unreachable, 0u) << audit.to_string();
}

// ------------------------------------------------- fault-aware routing ------

class FaultSchemeParam
    : public ::testing::TestWithParam<std::tuple<VcScheme, RouteMode>> {};

TEST_P(FaultSchemeParam, DetoursAroundOneDeadLocalCable) {
  const auto [scheme, mode] = GetParam();
  sim::Network net;
  build_ft_swless(scheme, mode, 3, net);
  kill_local_cable(net, 0, 0, 1);
  for (const NodeId s : net.terminals()) {
    for (const NodeId d : net.terminals()) {
      if (s == d) continue;
      const auto w = walk_route(net, s, d, -2);
      EXPECT_TRUE(w.delivered) << s << "->" << d;
      EXPECT_FALSE(w.used_dead_link) << s << "->" << d;
      EXPECT_LT(w.max_vc, net.num_vcs());
    }
  }
  const auto audit = topo::audit_fault_routing(net);
  EXPECT_TRUE(audit.all_reachable()) << audit.to_string();
  const auto cdg = route::audit_cdg(net);
  EXPECT_TRUE(cdg.acyclic) << cdg.to_string(net);
  EXPECT_EQ(cdg.undeliverable, 0u);
}

TEST_P(FaultSchemeParam, DetoursAroundOneDeadGlobalCable) {
  const auto [scheme, mode] = GetParam();
  sim::Network net;
  build_ft_swless(scheme, mode, 4, net);
  kill_global_cable(net, 0, 1);
  const auto& T = net.topo<topo::SwlessTopo>();
  for (const NodeId s : net.terminals()) {
    for (const NodeId d : net.terminals()) {
      if (s == d) continue;
      const auto w = walk_route(net, s, d, -2);
      EXPECT_TRUE(w.delivered) << s << "->" << d;
      EXPECT_FALSE(w.used_dead_link) << s << "->" << d;
      const auto gs = T.loc[static_cast<std::size_t>(s)].wg;
      const auto gd = T.loc[static_cast<std::size_t>(d)].wg;
      if ((gs == 0 && gd == 1) || (gs == 1 && gd == 0))
        EXPECT_EQ(w.global_hops, 2)
            << "dead direct gateway must cost exactly one bounce";
    }
  }
  const auto audit = topo::audit_fault_routing(net);
  EXPECT_TRUE(audit.all_reachable()) << audit.to_string();
  const auto cdg = route::audit_cdg(net);
  EXPECT_TRUE(cdg.acyclic) << cdg.to_string(net);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, FaultSchemeParam,
    ::testing::Combine(::testing::Values(VcScheme::Baseline,
                                         VcScheme::ReducedSafe),
                       ::testing::Values(RouteMode::Minimal,
                                         RouteMode::Valiant,
                                         RouteMode::Adaptive)));

TEST(FaultRouting, SwdfDetoursAroundDeadGlobalAndLocalCables) {
  for (const auto mode : {RouteMode::Minimal, RouteMode::Valiant}) {
    sim::Network net;
    auto p = small_swdf_params(4, mode);
    p.fault_tolerant = true;
    topo::build_sw_dragonfly(net, p);
    const auto& T = net.topo<topo::SwDfTopo>();
    net.enable_fault_mask();
    // Kill the global cable between groups 0 and 1 and the local cable
    // between switches 0 and 1 of group 2.
    const int H = T.p.globals_per_switch;
    const int link = topo::SwDfTopo::global_link(0, 1);
    const ChanId g01 = T.global_chan[static_cast<std::size_t>(
        (0 * T.p.switches_per_group + link / H) * H + link % H)];
    net.disable_channel(g01);
    net.disable_channel(g01 % 2 == 0 ? g01 + 1 : g01 - 1);
    const ChanId l01 = T.local_chan[static_cast<std::size_t>(
        (2 * T.p.switches_per_group + 0) * (T.p.switches_per_group - 1) +
        topo::SwDfTopo::local_index(0, 1))];
    net.disable_channel(l01);
    net.disable_channel(l01 % 2 == 0 ? l01 + 1 : l01 - 1);

    for (const NodeId s : net.terminals()) {
      for (const NodeId d : net.terminals()) {
        if (s == d) continue;
        const auto w = walk_route(net, s, d, -2);
        EXPECT_TRUE(w.delivered) << s << "->" << d;
        EXPECT_FALSE(w.used_dead_link) << s << "->" << d;
        EXPECT_LT(w.max_vc, net.num_vcs());
      }
    }
    const auto audit = topo::audit_fault_routing(net);
    EXPECT_TRUE(audit.all_reachable()) << audit.to_string();
    const auto cdg = route::audit_cdg(net);
    EXPECT_TRUE(cdg.acyclic) << cdg.to_string(net);
  }
}

TEST(FaultRouting, RandomInjectionStaysAcyclicAndAuditsDeterministically) {
  for (const auto kind : {FaultKind::Local, FaultKind::Global}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      sim::Network net;
      build_ft_swless(VcScheme::Baseline, RouteMode::Minimal, 0, net);
      FaultSpec s;
      s.rate = 0.15;
      s.kind = kind;
      s.seed = seed;
      topo::inject_faults(net, s);
      // Degraded operation is a result, never a crash: the audit may find
      // unreachable pairs (a partitioned W-group), but it must be
      // deterministic and the dependency graph must stay acyclic.
      const auto a1 = topo::audit_fault_routing(net);
      const auto a2 = topo::audit_fault_routing(net);
      EXPECT_EQ(a1.unreachable, a2.unreachable);
      EXPECT_EQ(a1.pairs, a2.pairs);
      const auto cdg = route::audit_cdg(net);
      EXPECT_TRUE(cdg.acyclic)
          << "kind=" << topo::to_string(kind) << " seed=" << seed << ": "
          << cdg.to_string(net);
    }
  }
}

// ------------------------------------------------------- engine end to end ---

TEST(FaultScenario, RateZeroIsBitIdenticalToUnfaultedEngine) {
  auto base = tiny_fault_spec();
  auto zero = base;
  zero.fault.rate = 0.0;
  zero.fault.seed = 99;  // a seed alone must not change anything
  const auto a = core::run_scenario(base);
  const auto b = core::run_scenario(zero);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].res.accepted, b.points[i].res.accepted);
    EXPECT_EQ(a.points[i].res.avg_latency, b.points[i].res.avg_latency);
    EXPECT_EQ(a.points[i].res.delivered_total, b.points[i].res.delivered_total);
    EXPECT_EQ(a.points[i].res.flit_hops, b.points[i].res.flit_hops);
  }
}

TEST(FaultScenario, RepeatRunsAndThreadCountsAreBitIdentical) {
  auto spec = tiny_fault_spec();
  spec.rates = {0.1, 0.2};
  spec.fault.rate = 0.2;
  spec.fault.kind = FaultKind::Global;
  spec.fault.seed = 5;
  const auto serial1 = core::run_scenario(spec);
  const auto serial2 = core::run_scenario(spec);
  auto par = spec;
  par.threads = 0;  // auto
  const auto parallel = core::run_scenarios({par}, 1)[0];
  ASSERT_EQ(serial1.points.size(), serial2.points.size());
  ASSERT_EQ(serial1.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial1.points.size(); ++i) {
    for (const auto* other : {&serial2, &parallel}) {
      EXPECT_EQ(serial1.points[i].res.accepted,
                other->points[i].res.accepted);
      EXPECT_EQ(serial1.points[i].res.avg_latency,
                other->points[i].res.avg_latency);
      EXPECT_EQ(serial1.points[i].res.flit_hops,
                other->points[i].res.flit_hops);
    }
  }
}

TEST(FaultScenario, DegradedFabricStillDrainsAtLowLoad) {
  auto spec = tiny_fault_spec();
  spec.rates = {0.1};
  spec.fault.rate = 0.1;
  spec.fault.kind = FaultKind::Global;
  spec.fault.seed = 7;
  const auto series = core::run_scenario(spec);
  ASSERT_EQ(series.points.size(), 1u);
  EXPECT_TRUE(series.points[0].res.drained);
  EXPECT_GT(series.points[0].res.accepted, 0.0);
}

TEST(FaultScenario, ChipFaultSuppressesDeadTraffic) {
  auto spec = tiny_fault_spec();
  spec.rates = {0.1};
  spec.fault.chips = {0, 5};
  const auto series = core::run_scenario(spec);
  ASSERT_EQ(series.points.size(), 1u);
  EXPECT_TRUE(series.points[0].res.drained);
  EXPECT_GT(series.points[0].res.accepted, 0.0);
}

// ----------------------------------------------------------- scenario keys ---

TEST(FaultScenario, KeysParseSerializeAndValidate) {
  core::ScenarioSpec s;
  s.set("fault.rate", "0.25");
  s.set("fault.kind", "local");
  s.set("fault.seed", "17");
  s.set("fault.chips", "3, 7,11");
  EXPECT_DOUBLE_EQ(s.fault.rate, 0.25);
  EXPECT_EQ(s.fault.kind, FaultKind::Local);
  EXPECT_EQ(s.fault.seed, 17u);
  EXPECT_EQ(s.fault.chips, (std::vector<ChipId>{3, 7, 11}));
  EXPECT_TRUE(s.fault.active());

  const auto back = core::ScenarioSpec::from_kv(s.to_kv());
  EXPECT_EQ(back.to_kv(), s.to_kv());
  EXPECT_EQ(back.fault.kind, FaultKind::Local);
  EXPECT_EQ(back.fault.chips, s.fault.chips);

  // Fault-free specs round-trip without fault keys.
  EXPECT_EQ(core::ScenarioSpec{}.to_kv().count("fault.rate"), 0u);

  EXPECT_THROW(s.set("fault.rate", "1.5"), std::invalid_argument);
  EXPECT_THROW(s.set("fault.rate", "lots"), std::invalid_argument);
  EXPECT_THROW(s.set("fault.kind", "cosmic"), std::invalid_argument);
  EXPECT_THROW(s.set("fault.chips", "-1"), std::invalid_argument);
  EXPECT_THROW(s.set("fault.oops", "1"), std::invalid_argument);
}

TEST(FaultScenario, FaultObliviousTopologiesReject) {
  for (const char* name : {"cgroup-mesh", "crossbar"}) {
    core::ScenarioSpec s;
    s.topology = name;
    s.fault.rate = 0.1;
    sim::Network net;
    EXPECT_THROW(core::build_network(net, s), std::invalid_argument) << name;
  }
}

TEST(FaultScenario, FaultTolerantTopoKeyBuildsBudgetWithoutFaults) {
  // The resilience-baseline knob: same VC budget as the faulted points,
  // no mask, no injection.
  core::ScenarioSpec s;
  s.topology = "tiny-swless";
  s.topo["fault_tolerant"] = "1";
  sim::Network net;
  core::build_network(net, s);
  EXPECT_EQ(net.num_vcs(), route::swless_fault_num_vcs(
                               VcScheme::Baseline, RouteMode::Minimal));
  EXPECT_FALSE(net.has_fault_mask());
}

TEST(FaultScenario, ArmedButEmptyMaskIsBitIdenticalToSameBuild) {
  // A fault rate small enough to round to zero failures arms the mask but
  // kills nothing; routing must then make exactly the decisions of an
  // unfaulted fault-tolerant build (same rng stream, same results).
  auto plain = tiny_fault_spec();
  plain.mode = route::RouteMode::Valiant;
  plain.topo["g"] = "5";
  plain.topo["fault_tolerant"] = "1";
  auto armed = plain;
  armed.fault.rate = 0.04;  // 10 global cables at g=5: rounds to 0 failed
  armed.fault.kind = FaultKind::Global;
  {
    sim::Network net;
    core::build_network(net, armed);
    ASSERT_TRUE(net.has_fault_mask());
    ASSERT_FALSE(net.has_faults());
  }
  const auto a = core::run_scenario(plain);
  const auto b = core::run_scenario(armed);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].res.accepted, b.points[i].res.accepted);
    EXPECT_EQ(a.points[i].res.avg_latency, b.points[i].res.avg_latency);
    EXPECT_EQ(a.points[i].res.flit_hops, b.points[i].res.flit_hops);
  }
}

TEST(FaultScenario, FaultTolerantBuildReservesDetourVcBudget) {
  core::ScenarioSpec s;
  s.topology = "tiny-swless";
  s.fault.rate = 0.1;
  s.fault.kind = FaultKind::Global;
  sim::Network net;
  core::build_network(net, s);
  EXPECT_EQ(net.num_vcs(), route::swless_fault_num_vcs(
                               VcScheme::Baseline, RouteMode::Minimal));
  EXPECT_TRUE(net.has_fault_mask());
  EXPECT_GT(net.num_dead_channels(), 0u);
}
