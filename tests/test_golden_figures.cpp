// Golden-figure regression tier: tiny deterministic versions of the
// fig10/fig11/fig13/fig14 scenarios run through core::run_scenario /
// run_workload_scenario and diff against checked-in golden values with
// tolerance 0. The figure pipelines are thereby pinned by ctest — a routing
// or engine regression that would silently corrupt every fig1x CSV now
// fails here first. (Exact comparison is sound: the engine is bit-
// deterministic for fixed seeds, and the build uses strict ISO FP — no FMA
// contraction — so Debug and Release produce identical doubles.)
//
// To regenerate after an *intentional* behavior change:
//   SLDF_REGEN_GOLDEN=1 ./build/test_golden_figures
// and paste the printed table over kGolden / kGoldenWorkload below.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/scenario.hpp"

using namespace sldf;

namespace {

struct GoldenPoint {
  double offered = 0.0;
  double accepted = 0.0;
  double avg_latency = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t flit_hops = 0;
};

struct GoldenCase {
  const char* name;    ///< Figure the scenario is a miniature of.
  const char* config;  ///< Scenario-file text (parse_scenario_text input).
  std::vector<GoldenPoint> points;
};

// Shared measurement window: small but long enough that every case ejects
// thousands of flits (a regression cannot hide in noise — there is none).
constexpr const char* kWindow =
    "warmup = 200\nmeasure = 400\ndrain = 400\nseed = 1\n";

const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> cases = {
      {"fig10a-crossbar",
       "topology = crossbar\ntopo.terminals = 8\ntraffic = uniform\n"
       "rates = 0.3,0.6\n",
       {{0.29999999999999999, 0.30687500000000001, 6.2336065573770503, 244,
         2859},
        {0.59999999999999998, 0.59593750000000001, 10.039583333333344, 480,
         5916}}},
      {"fig10a-mesh",
       "topology = cgroup-mesh\ntraffic = uniform\nrates = 0.3,0.6\n",
       {{0.29999999999999999, 0.29062500000000002, 6.5304347826086966, 115,
         1877},
        {0.59999999999999998, 0.59437499999999999, 6.8818565400843834, 237,
         3995}}},
      {"fig11-swless",
       "topology = tiny-swless\ntraffic = uniform\nrates = 0.2,0.4\n",
       {{0.20000000000000001, 0.20091666666666666, 34.06820049301561, 1217,
         77471},
        {0.40000000000000002, 0.298875, 135.29150390624997, 2048, 176201}}},
      {"fig11-swdf",
       "topology = swdf\ntopo.switches_per_group = 3\n"
       "topo.terminals_per_switch = 2\ntopo.globals_per_switch = 2\n"
       "topo.g = 4\ntraffic = uniform\nrates = 0.2,0.4\n",
       {{0.20000000000000001, 0.19770833333333335, 37.101265822784825, 474,
         12067},
        {0.40000000000000002, 0.39552083333333332, 43.859039836567874, 979,
         25446}}},
      {"fig13-worst-minimal",
       "topology = tiny-swless\ntraffic = worst-case\nmode = minimal\n"
       "rates = 0.3\n",
       {{0.29999999999999999, 0.083541666666666667, 263.66206896551716, 580,
         55112}}},
      {"fig13-worst-valiant",
       "topology = tiny-swless\ntraffic = worst-case\nmode = valiant\n"
       "rates = 0.3\n",
       {{0.29999999999999999, 0.10379166666666667, 305.56489675516235, 678,
         119303}}},
      {"fig19-planes-k2",
       "topology = tiny-swless\nplane.count = 2\nplane.policy = hash\n"
       "traffic = uniform\nrates = 0.2,0.4\n",
       {{0.20000000000000001, 0.20208333333333334, 29.054231717337736, 1217,
         73081},
        {0.40000000000000002, 0.41170833333333334, 37.211577660008182, 2453,
         158501}}},
  };
  return cases;
}

struct GoldenWorkload {
  const char* name;
  const char* config;
  std::uint64_t cycles = 0;
  std::uint64_t messages = 0;
  std::uint64_t packets = 0;
  std::uint64_t flits = 0;
  double gbps_per_chip = 0.0;
};

const std::vector<GoldenWorkload>& golden_workloads() {
  static const std::vector<GoldenWorkload> cases = {
      {"fig14-ring-allreduce",
       "topology = tiny-swless\ntopo.g = 1\nworkload = ring-allreduce\n"
       "workload.scope = wgroup\nworkload.kib = 4\nworkload.chunks = 2\n"
       "pkt_len = 4\nseed = 1\n",
       978, 528, 1584, 5808, 7.9182004089979552},
  };
  return cases;
}

core::ScenarioSpec spec_of(const char* config) {
  const auto series =
      core::parse_scenario_text(std::string(kWindow) + config);
  EXPECT_EQ(series.size(), 1u);
  return series[0];
}

bool regen_mode() { return std::getenv("SLDF_REGEN_GOLDEN") != nullptr; }

}  // namespace

TEST(GoldenFigures, RateSweepsMatchGoldenValuesExactly) {
  for (const auto& c : golden_cases()) {
    const auto series = core::run_scenario(spec_of(c.config));
    if (regen_mode()) {
      std::printf("      {\"%s\", ...,\n       {", c.name);
      for (std::size_t i = 0; i < series.points.size(); ++i) {
        const auto& r = series.points[i].res;
        std::printf("%s{%.17g, %.17g, %.17g, %llu, %llu}",
                    i ? ",\n        " : "", series.points[i].rate, r.accepted,
                    r.avg_latency,
                    static_cast<unsigned long long>(r.delivered_measured),
                    static_cast<unsigned long long>(r.flit_hops));
      }
      std::printf("}},\n");
      continue;
    }
    ASSERT_EQ(series.points.size(), c.points.size()) << c.name;
    for (std::size_t i = 0; i < c.points.size(); ++i) {
      const auto& got = series.points[i].res;
      const auto& want = c.points[i];
      EXPECT_EQ(series.points[i].rate, want.offered) << c.name << " pt " << i;
      EXPECT_EQ(got.accepted, want.accepted) << c.name << " pt " << i;
      EXPECT_EQ(got.avg_latency, want.avg_latency) << c.name << " pt " << i;
      EXPECT_EQ(got.delivered_measured, want.delivered)
          << c.name << " pt " << i;
      EXPECT_EQ(got.flit_hops, want.flit_hops) << c.name << " pt " << i;
    }
  }
}

TEST(GoldenFigures, WorkloadCompletionMatchesGoldenValuesExactly) {
  for (const auto& c : golden_workloads()) {
    const auto run = core::run_workload_scenario(spec_of(c.config));
    const auto& r = run.result;
    if (regen_mode()) {
      std::printf("      {\"%s\", ...,\n       %llu, %llu, %llu, %llu, "
                  "%.17g},\n",
                  c.name, static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(r.messages),
                  static_cast<unsigned long long>(r.packets),
                  static_cast<unsigned long long>(r.flits), r.gbps_per_chip);
      continue;
    }
    EXPECT_TRUE(r.completed) << c.name;
    EXPECT_EQ(r.cycles, c.cycles) << c.name;
    EXPECT_EQ(r.messages, c.messages) << c.name;
    EXPECT_EQ(r.packets, c.packets) << c.name;
    EXPECT_EQ(r.flits, c.flits) << c.name;
    EXPECT_EQ(r.gbps_per_chip, c.gbps_per_chip) << c.name;
  }
}

TEST(GoldenFigures, GoldenScenariosAreRerunStable) {
  // The exact-compare premise: running the same spec twice is bit-identical.
  const auto& c = golden_cases().front();
  const auto a = core::run_scenario(spec_of(c.config));
  const auto b = core::run_scenario(spec_of(c.config));
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].res.accepted, b.points[i].res.accepted);
    EXPECT_EQ(a.points[i].res.avg_latency, b.points[i].res.avg_latency);
  }
}
