// Sharded-engine determinism suite: fixed-seed SimResults must be
// bit-identical across shards=1 (the serial engine), shards=N, and repeat
// runs — open loop in every routing mode, on both fabrics, with faults
// armed, and under the closed-loop workload runner — plus the partition
// invariants of Network::shard_bounds and the resolve_shards convention.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "core/scenario.hpp"
#include "test_fixtures.hpp"
#include "topo/faults.hpp"
#include "traffic/pattern.hpp"
#include "workload/collectives.hpp"
#include "workload/workload.hpp"

using namespace sldf;
using namespace sldf::testing;
using route::RouteMode;
using route::VcScheme;

namespace {

/// Every field of two SimResults must match exactly — including the
/// order-sensitive floating-point latency statistics, which is where a
/// commit-ordering bug in the sharded engine would surface first.
void expect_bit_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.generated_measured, b.generated_measured);
  EXPECT_EQ(a.delivered_measured, b.delivered_measured);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.suppressed, b.suppressed);
  EXPECT_EQ(a.drained, b.drained);
  for (int h = 0; h < kNumLinkTypes; ++h)
    EXPECT_EQ(a.avg_hops[h], b.avg_hops[h]);
  EXPECT_EQ(a.avg_hops_total, b.avg_hops_total);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
}

sim::SimConfig short_cfg(int shards) {
  sim::SimConfig sc;
  sc.inj_rate_per_chip = 0.4;
  sc.warmup = 300;
  sc.measure = 700;
  sc.drain = 400;
  sc.seed = 11;
  sc.shards = shards;
  return sc;
}

/// One fixed-seed uniform-traffic point on `net` with `shards` shards.
sim::SimResult run_point(sim::Network& net, int shards,
                         double rate = 0.4) {
  sim::SimConfig sc = short_cfg(shards);
  sc.inj_rate_per_chip = rate;
  auto traffic = traffic::make_pattern("uniform", net, {});
  return sim::run_sim(net, sc, *traffic);
}

sim::Network tiny_net(RouteMode mode = RouteMode::Minimal,
                      bool fault_tolerant = false) {
  sim::Network net;
  auto p = tiny_swless_params(VcScheme::Baseline, mode);
  p.fault_tolerant = fault_tolerant;
  topo::build_swless_dragonfly(net, p);
  return net;
}

}  // namespace

// ---- partition invariants ------------------------------------------------

TEST(ShardBounds, CoversAndMonotone) {
  auto net = tiny_net();
  for (const int s : {1, 2, 3, 5, 8}) {
    const auto b = net.shard_bounds(s);
    ASSERT_EQ(b.size(), static_cast<std::size_t>(s) + 1);
    EXPECT_EQ(b.front(), 0u);
    EXPECT_EQ(b.back(), static_cast<std::uint32_t>(net.num_routers()));
    for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LE(b[i - 1], b[i]);
  }
}

TEST(ShardBounds, NeverSplitsAChip) {
  auto net = tiny_net();
  for (const int s : {2, 3, 4, 7}) {
    const auto b = net.shard_bounds(s);
    // A chip's nodes all fall into the same shard range.
    for (std::size_t chip = 0; chip < net.num_chips(); ++chip) {
      std::set<std::size_t> shard_ids;
      for (const NodeId n : net.chip_nodes(static_cast<ChipId>(chip))) {
        std::size_t k = 0;
        while (static_cast<std::uint32_t>(n) >= b[k + 1]) ++k;
        shard_ids.insert(k);
      }
      EXPECT_EQ(shard_ids.size(), 1u) << "chip " << chip << " split";
    }
  }
}

TEST(ShardBounds, RoughlyBalancedByPorts) {
  auto net = tiny_net();
  const auto b = net.shard_bounds(3);
  // Chip snapping skews the port split; it must stay within a factor ~2
  // of the ideal third on this (uniform) topology.
  const auto ports_of = [&](std::size_t k) {
    std::uint32_t ports = 0;
    for (std::uint32_t r = b[k]; r < b[k + 1]; ++r)
      ports += net.num_out_ports_of(static_cast<NodeId>(r));
    return ports;
  };
  const std::uint32_t ideal = net.num_out_ports() / 3;
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_GT(ports_of(k), ideal / 2);
    EXPECT_LT(ports_of(k), ideal * 2);
  }
}

TEST(ShardBounds, RequiresFinalizeAndValidCount) {
  sim::Network net;
  EXPECT_THROW(net.shard_bounds(2), std::logic_error);
  auto built = tiny_net();
  EXPECT_THROW(built.shard_bounds(0), std::invalid_argument);
}

// ---- resolve_shards ------------------------------------------------------

TEST(ResolveShards, ExplicitAndEnvConvention) {
  EXPECT_EQ(sim::resolve_shards(1), 1);
  EXPECT_EQ(sim::resolve_shards(4), 4);
  unsetenv("SLDF_SHARDS");
  EXPECT_EQ(sim::resolve_shards(0), 1);
  setenv("SLDF_SHARDS", "3", 1);
  EXPECT_EQ(sim::resolve_shards(0), 3);
  EXPECT_EQ(sim::resolve_shards(2), 2);  // explicit beats env
  setenv("SLDF_SHARDS", "garbage", 1);
  EXPECT_EQ(sim::resolve_shards(0), 1);
  setenv("SLDF_SHARDS", "-2", 1);
  EXPECT_EQ(sim::resolve_shards(0), 1);
  unsetenv("SLDF_SHARDS");
}

TEST(ResolveShards, ClampedToChipCount) {
  auto net = tiny_net();
  sim::SimConfig sc = short_cfg(10000);
  auto traffic = traffic::make_pattern("uniform", net, {});
  net.reset_dynamic_state();
  sim::Simulator s(net, sc, *traffic);
  EXPECT_GE(s.shards(), 1);
  EXPECT_LE(s.shards(), static_cast<int>(net.num_chips()));
}

// ---- open-loop bit-identity ----------------------------------------------

TEST(ShardedEngine, BitIdenticalAllRouteModes) {
  for (const RouteMode mode :
       {RouteMode::Minimal, RouteMode::Valiant, RouteMode::Adaptive}) {
    auto net = tiny_net(mode);
    const auto serial = run_point(net, 1);
    const auto sh2 = run_point(net, 2);
    const auto sh3 = run_point(net, 3);
    expect_bit_identical(serial, sh2);
    expect_bit_identical(serial, sh3);
    EXPECT_GT(serial.delivered_total, 0u);
  }
}

TEST(ShardedEngine, BitIdenticalNearSaturation) {
  auto net = tiny_net();
  expect_bit_identical(run_point(net, 1, 0.9), run_point(net, 4, 0.9));
}

TEST(ShardedEngine, BitIdenticalSwdf) {
  sim::Network net;
  topo::build_sw_dragonfly(net, small_swdf_params());
  expect_bit_identical(run_point(net, 1), run_point(net, 2));
}

TEST(ShardedEngine, RepeatRunsBitIdentical) {
  auto net = tiny_net();
  expect_bit_identical(run_point(net, 3), run_point(net, 3));
}

TEST(ShardedEngine, ContextReuseAcrossShardCounts) {
  // One SimContext driven through serial and sharded runs in both orders:
  // recycled high-water storage must never leak state between engines.
  auto net = tiny_net();
  auto traffic = traffic::make_pattern("uniform", net, {});
  sim::SimContext ctx;
  const auto run_with = [&](int shards) {
    sim::SimConfig sc = short_cfg(shards);
    return sim::run_sim(ctx, net, sc, *traffic);
  };
  const auto s1 = run_with(1);
  const auto s2 = run_with(2);
  const auto s1_again = run_with(1);
  const auto s2_again = run_with(2);
  expect_bit_identical(s1, s2);
  expect_bit_identical(s1, s1_again);
  expect_bit_identical(s1, s2_again);
}

// ---- faults --------------------------------------------------------------

TEST(ShardedEngine, BitIdenticalWithFaultsArmed) {
  const auto faulted = [&](int shards) {
    auto net = tiny_net(RouteMode::Minimal, /*fault_tolerant=*/true);
    topo::FaultSpec fs;
    fs.rate = 0.15;
    fs.kind = topo::FaultKind::Any;
    fs.seed = 5;
    topo::inject_faults(net, fs);
    return run_point(net, shards);
  };
  const auto serial = faulted(1);
  expect_bit_identical(serial, faulted(2));
  expect_bit_identical(serial, faulted(3));
  EXPECT_GT(serial.delivered_total, 0u);
}

// ---- closed-loop workload runner -----------------------------------------

TEST(ShardedEngine, BitIdenticalClosedLoopWorkload) {
  // W-group scope crosses C-group boundaries (external narrowed messages,
  // listener-driven injection at commit time).
  auto net = tiny_net();
  const auto run_with = [&](int shards) {
    workload::WorkloadRunConfig rc;
    rc.sim.shards = shards;
    const auto g =
        workload::ring_allreduce(net, workload::Scope::WGroup, 512, 1, 2);
    return workload::run_workload(net, g, rc);
  };
  const auto a = run_with(1);
  const auto b = run_with(2);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
  EXPECT_EQ(a.avg_msg_cycles, b.avg_msg_cycles);
  EXPECT_EQ(a.gbps_per_chip, b.gbps_per_chip);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i)
    EXPECT_EQ(a.phases[i].completed, b.phases[i].completed);
}

// ---- scenario-layer plumbing ---------------------------------------------

TEST(ShardedEngine, ScenarioShardsKey) {
  core::ScenarioSpec s;
  s.set("shards", "4");
  EXPECT_EQ(s.sim.shards, 4);
  s.set("shards", "auto");
  EXPECT_EQ(s.sim.shards, 0);
  EXPECT_EQ(s.to_kv().at("shards"), "auto");
  EXPECT_EQ(core::ScenarioSpec::from_kv(s.to_kv()).sim.shards, 0);
  s.set("shards", "2");
  EXPECT_EQ(s.to_kv().at("shards"), "2");
  EXPECT_THROW(s.set("shards", "-1"), std::invalid_argument);
  EXPECT_THROW(s.set("shards", "many"), std::invalid_argument);
}

TEST(ShardedEngine, ScenarioRunBitIdentical) {
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  spec.traffic = "uniform";
  spec.rates = {0.5};
  spec.sim.warmup = 300;
  spec.sim.measure = 700;
  spec.sim.drain = 400;
  spec.sim.shards = 1;
  const auto serial = core::run_scenario(spec);
  spec.sim.shards = 2;
  const auto sharded = core::run_scenario(spec);
  ASSERT_EQ(serial.points.size(), sharded.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i)
    expect_bit_identical(serial.points[i].res, sharded.points[i].res);
}
