// Switch-based Dragonfly topology and routing tests: structure counts,
// consecutive global-link assignment, minimal/Valiant path walking, and
// VC-class discipline (Kim et al.: 2 VCs minimal, 3 Valiant).
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/params.hpp"
#include "route/dragonfly_routing.hpp"
#include "test_fixtures.hpp"
#include "topo/dragonfly.hpp"

using namespace sldf;
using namespace sldf::topo;
using sldf::testing::small_swdf_params;

namespace {
/// Walks a packet through the routing function; returns hop count and
/// verifies delivery with non-decreasing VC classes.
int walk(const sim::Network& net, NodeId s, NodeId d, std::int32_t mid) {
  const auto w = sldf::testing::walk_route(net, s, d, mid >= 0 ? mid : -1,
                                           /*rng_seed=*/5, /*max_hops=*/64);
  EXPECT_TRUE(w.delivered) << "not delivered " << s << "->" << d;
  EXPECT_TRUE(w.vc_monotone) << "VC class went backwards";
  return w.channel_hops;
}
}  // namespace

TEST(SwDragonfly, MaxScaleCounts) {
  const auto p = small_swdf_params();
  EXPECT_EQ(p.max_groups(), 7);
  EXPECT_EQ(p.num_chips(), 7 * 3 * 2);
  sim::Network net;
  build_sw_dragonfly(net, p);
  const auto c = core::census(net);
  EXPECT_EQ(c.switches, 21u);
  EXPECT_EQ(c.cores, 42u);
  EXPECT_EQ(c.chips, 42u);
}

TEST(SwDragonfly, Radix16PresetMatchesPaper) {
  const auto p = core::radix16_swdf();
  EXPECT_EQ(p.max_groups(), 41);
  EXPECT_EQ(p.num_chips(), 1312);
  const auto p32 = core::radix32_swdf();
  EXPECT_EQ(p32.max_groups(), 145);
  EXPECT_EQ(p32.num_chips(), 18560);
}

TEST(SwDragonfly, GlobalLinksBijective) {
  sim::Network net;
  build_sw_dragonfly(net, small_swdf_params());
  const auto& T = net.topo<SwDfTopo>();
  const int G = 7, S = 3, H = 2;
  // Every group pair has exactly one global link and the endpoints agree.
  for (int ga = 0; ga < G; ++ga) {
    for (int gb = 0; gb < G; ++gb) {
      if (ga == gb) continue;
      const int l = SwDfTopo::global_link(ga, gb);
      ASSERT_LT(l, S * H);
      const ChanId c = T.global_chan[static_cast<std::size_t>(
          (ga * S + l / H) * H + l % H)];
      ASSERT_NE(c, kInvalidChan);
      EXPECT_EQ(T.loc[static_cast<std::size_t>(net.chan(c).src)].group, ga);
      EXPECT_EQ(T.loc[static_cast<std::size_t>(net.chan(c).dst)].group, gb);
    }
  }
}

TEST(SwDragonfly, MinimalPathsDeliverWithinDiameter) {
  sim::Network net;
  build_sw_dragonfly(net, small_swdf_params());
  // Diameter: term + local + global + local + term = 5 channel hops.
  for (NodeId s : net.terminals())
    for (NodeId d : net.terminals())
      if (s != d) EXPECT_LE(walk(net, s, d, -1), 5);
}

TEST(SwDragonfly, ValiantPathsDeliverThroughMid) {
  sim::Network net;
  build_sw_dragonfly(net, small_swdf_params(0, route::RouteMode::Valiant));
  const auto& T = net.topo<SwDfTopo>();
  for (NodeId s : net.terminals()) {
    for (NodeId d : net.terminals()) {
      if (s == d) continue;
      const auto gs = T.loc[static_cast<std::size_t>(s)].group;
      const auto gd = T.loc[static_cast<std::size_t>(d)].group;
      if (gs == gd) continue;
      for (std::int32_t mid = 0; mid < 7; ++mid) {
        if (mid == gs || mid == gd) continue;
        EXPECT_LE(walk(net, s, d, mid), 8);  // +global+local via mid
      }
    }
  }
}

TEST(SwDragonfly, CrossbarDegenerateCase) {
  sim::Network net;
  build_crossbar(net, 4, 1);
  const auto c = core::census(net);
  EXPECT_EQ(c.switches, 1u);
  EXPECT_EQ(c.chips, 4u);
  for (NodeId s : net.terminals())
    for (NodeId d : net.terminals())
      if (s != d) EXPECT_EQ(walk(net, s, d, -1), 2);  // up + down
}

TEST(SwDragonfly, TrimmedGroupCount) {
  sim::Network net;
  build_sw_dragonfly(net, small_swdf_params(4));
  const auto& T = net.topo<SwDfTopo>();
  EXPECT_EQ(T.num_wgroups, 4);
  for (NodeId s : net.terminals())
    for (NodeId d : net.terminals())
      if (s != d) EXPECT_LE(walk(net, s, d, -1), 5);
}

TEST(SwDragonfly, InvalidParamsThrow) {
  auto p = small_swdf_params();
  p.groups = 100;  // exceeds S*h+1
  sim::Network net;
  EXPECT_THROW(build_sw_dragonfly(net, p), std::invalid_argument);
}
