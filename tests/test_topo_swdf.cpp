// Switch-based Dragonfly topology and routing tests: structure counts,
// consecutive global-link assignment, minimal/Valiant path walking, and
// VC-class discipline (Kim et al.: 2 VCs minimal, 3 Valiant).
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/params.hpp"
#include "route/dragonfly_routing.hpp"
#include "topo/dragonfly.hpp"

using namespace sldf;
using namespace sldf::topo;

namespace {
SwDragonflyParams small_df(int groups = 0, route::RouteMode mode =
                                               route::RouteMode::Minimal) {
  SwDragonflyParams p;
  p.switches_per_group = 3;
  p.terminals_per_switch = 2;
  p.globals_per_switch = 2;  // max groups = 7
  p.groups = groups;
  p.mode = mode;
  return p;
}

/// Walks a packet through the routing function; returns hop count and
/// verifies VC classes never decrease.
int walk(const sim::Network& net, NodeId s, NodeId d, std::int32_t mid) {
  sim::Packet pkt;
  pkt.src = s;
  pkt.dst = d;
  pkt.src_chip = net.chip_of(s);
  pkt.dst_chip = net.chip_of(d);
  Rng rng(5);
  net.routing()->init_packet(net, pkt, rng);
  if (mid >= 0) pkt.mid_wgroup = mid;
  NodeId cur = s;
  PortIx in_port = net.router(s).inj_port;
  int hops = 0;
  int last_vc = -1;
  for (;;) {
    const auto dec = net.routing()->route(net, cur, in_port, pkt);
    EXPECT_GE(dec.out_vc, last_vc) << "VC class went backwards";
    last_vc = dec.out_vc;
    const auto& r = net.router(cur);
    const ChanId c = r.out[static_cast<std::size_t>(dec.out_port)].out_chan;
    if (c == kInvalidChan) {
      EXPECT_EQ(cur, d) << "ejected at wrong node";
      return hops;
    }
    cur = net.chan(c).dst;
    in_port = net.chan(c).dst_port;
    if (++hops > 64) {
      ADD_FAILURE() << "routing loop";
      return hops;
    }
  }
}
}  // namespace

TEST(SwDragonfly, MaxScaleCounts) {
  const auto p = small_df();
  EXPECT_EQ(p.max_groups(), 7);
  EXPECT_EQ(p.num_chips(), 7 * 3 * 2);
  sim::Network net;
  build_sw_dragonfly(net, p);
  const auto c = core::census(net);
  EXPECT_EQ(c.switches, 21u);
  EXPECT_EQ(c.cores, 42u);
  EXPECT_EQ(c.chips, 42u);
}

TEST(SwDragonfly, Radix16PresetMatchesPaper) {
  const auto p = core::radix16_swdf();
  EXPECT_EQ(p.max_groups(), 41);
  EXPECT_EQ(p.num_chips(), 1312);
  const auto p32 = core::radix32_swdf();
  EXPECT_EQ(p32.max_groups(), 145);
  EXPECT_EQ(p32.num_chips(), 18560);
}

TEST(SwDragonfly, GlobalLinksBijective) {
  sim::Network net;
  build_sw_dragonfly(net, small_df());
  const auto& T = net.topo<SwDfTopo>();
  const int G = 7, S = 3, H = 2;
  // Every group pair has exactly one global link and the endpoints agree.
  for (int ga = 0; ga < G; ++ga) {
    for (int gb = 0; gb < G; ++gb) {
      if (ga == gb) continue;
      const int l = SwDfTopo::global_link(ga, gb);
      ASSERT_LT(l, S * H);
      const ChanId c = T.global_chan[static_cast<std::size_t>(
          (ga * S + l / H) * H + l % H)];
      ASSERT_NE(c, kInvalidChan);
      EXPECT_EQ(T.loc[static_cast<std::size_t>(net.chan(c).src)].group, ga);
      EXPECT_EQ(T.loc[static_cast<std::size_t>(net.chan(c).dst)].group, gb);
    }
  }
}

TEST(SwDragonfly, MinimalPathsDeliverWithinDiameter) {
  sim::Network net;
  build_sw_dragonfly(net, small_df());
  // Diameter: term + local + global + local + term = 5 channel hops.
  for (NodeId s : net.terminals())
    for (NodeId d : net.terminals())
      if (s != d) EXPECT_LE(walk(net, s, d, -1), 5);
}

TEST(SwDragonfly, ValiantPathsDeliverThroughMid) {
  sim::Network net;
  build_sw_dragonfly(net, small_df(0, route::RouteMode::Valiant));
  const auto& T = net.topo<SwDfTopo>();
  for (NodeId s : net.terminals()) {
    for (NodeId d : net.terminals()) {
      if (s == d) continue;
      const auto gs = T.loc[static_cast<std::size_t>(s)].group;
      const auto gd = T.loc[static_cast<std::size_t>(d)].group;
      if (gs == gd) continue;
      for (std::int32_t mid = 0; mid < 7; ++mid) {
        if (mid == gs || mid == gd) continue;
        EXPECT_LE(walk(net, s, d, mid), 8);  // +global+local via mid
      }
    }
  }
}

TEST(SwDragonfly, CrossbarDegenerateCase) {
  sim::Network net;
  build_crossbar(net, 4, 1);
  const auto c = core::census(net);
  EXPECT_EQ(c.switches, 1u);
  EXPECT_EQ(c.chips, 4u);
  for (NodeId s : net.terminals())
    for (NodeId d : net.terminals())
      if (s != d) EXPECT_EQ(walk(net, s, d, -1), 2);  // up + down
}

TEST(SwDragonfly, TrimmedGroupCount) {
  sim::Network net;
  build_sw_dragonfly(net, small_df(4));
  const auto& T = net.topo<SwDfTopo>();
  EXPECT_EQ(T.num_wgroups, 4);
  for (NodeId s : net.terminals())
    for (NodeId d : net.terminals())
      if (s != d) EXPECT_LE(walk(net, s, d, -1), 5);
}

TEST(SwDragonfly, InvalidParamsThrow) {
  auto p = small_df();
  p.groups = 100;  // exceeds S*h+1
  sim::Network net;
  EXPECT_THROW(build_sw_dragonfly(net, p), std::invalid_argument);
}
