// Multi-tenant serving tests: placement policies (contiguous vs scattered,
// disjointness, fault-dead chips skipped, exhaustion), tenant scenario-key
// parsing + round-trip, structured ScenarioError for fault-emptied chip
// groups, and bit-identity of the 3-tenant acceptance mix across repeat
// runs and SLDF-style shard counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/error.hpp"
#include "core/scenario.hpp"
#include "topo/hier.hpp"
#include "trace/placement.hpp"
#include "trace/tenants.hpp"
#include "workload/collectives.hpp"

using namespace sldf;
using namespace sldf::trace;

namespace {

sim::Network tiny_net() {
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  sim::Network net;
  core::build_network(net, spec);
  return net;
}

/// The acceptance-criteria mix: ring-AllReduce + windowed all-to-all +
/// seeded request/reply, on disjoint 8-chip groups of the tiny instance.
core::ScenarioSpec mix3_spec() {
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  spec.set("tenants", "3");
  spec.set("tenant0.workload", "ring-allreduce");
  spec.set("tenant0.chips", "8");
  spec.set("tenant0.scope", "system");
  spec.set("tenant0.kib", "16");
  spec.set("tenant1.workload", "all-to-all");
  spec.set("tenant1.chips", "8");
  spec.set("tenant1.scope", "system");
  spec.set("tenant1.kib", "4");
  spec.set("tenant1.window", "2");
  spec.set("tenant1.placement", "scattered");
  spec.set("tenant2.workload", "request-reply");
  spec.set("tenant2.chips", "8");
  spec.set("tenant2.requests", "32");
  return spec;
}

void expect_same(const MultiTenantResult& a, const MultiTenantResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    const auto& x = a.tenants[i];
    const auto& y = b.tenants[i];
    EXPECT_EQ(x.chips, y.chips);
    EXPECT_EQ(x.ttc, y.ttc);
    EXPECT_EQ(x.isolated_ttc, y.isolated_ttc);
    EXPECT_DOUBLE_EQ(x.avg_msg_cycles, y.avg_msg_cycles);
    EXPECT_DOUBLE_EQ(x.p50_msg_cycles, y.p50_msg_cycles);
    EXPECT_DOUBLE_EQ(x.p99_msg_cycles, y.p99_msg_cycles);
    EXPECT_DOUBLE_EQ(x.interference, y.interference);
  }
}

}  // namespace

// ---- placement allocator -------------------------------------------------

TEST(Placement, ContiguousFollowsRingOrderScatteredSpreads) {
  auto net = tiny_net();
  const auto& hier = net.topo<topo::HierTopo>();
  PlacementAllocator alloc(net);
  // Contiguous 8 on 4-chip C-groups: exactly the first two C-groups in
  // (cgroup, ring rank) order.
  const auto contig = alloc.allocate(8, PlacementPolicy::Contiguous, "t0");
  std::set<std::int32_t> contig_groups;
  for (const ChipId c : contig)
    contig_groups.insert(hier.chip_cgroup[static_cast<std::size_t>(c)]);
  EXPECT_EQ(contig.size(), 8u);
  EXPECT_EQ(contig_groups.size(), 2u);
  // Scattered 8: one chip from each of 8 further C-groups.
  const auto scat = alloc.allocate(8, PlacementPolicy::Scattered, "t1");
  std::set<std::int32_t> scat_groups;
  for (const ChipId c : scat)
    scat_groups.insert(hier.chip_cgroup[static_cast<std::size_t>(c)]);
  EXPECT_EQ(scat.size(), 8u);
  EXPECT_EQ(scat_groups.size(), 8u);
  // Disjoint from the contiguous tenant.
  for (const ChipId c : scat)
    EXPECT_EQ(std::find(contig.begin(), contig.end(), c), contig.end());
}

TEST(Placement, ScatteredWrapsAroundWhenGroupsExhaust) {
  auto net = tiny_net();  // 15 C-groups of 4
  PlacementAllocator alloc(net);
  const auto chips = alloc.allocate(20, PlacementPolicy::Scattered, "t0");
  EXPECT_EQ(chips.size(), 20u);
  const auto& hier = net.topo<topo::HierTopo>();
  std::map<std::int32_t, int> per_group;
  for (const ChipId c : chips)
    ++per_group[hier.chip_cgroup[static_cast<std::size_t>(c)]];
  // 20 chips over 15 groups: 5 groups contribute two, the rest one.
  EXPECT_EQ(per_group.size(), 15u);
  for (const auto& [g, n] : per_group) EXPECT_LE(n, 2) << "group " << g;
}

TEST(Placement, SkipsFaultDeadChipsAndExhausts) {
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  spec.set("fault.chips", "0,1");
  sim::Network net;
  core::build_network(net, spec);
  PlacementAllocator alloc(net);
  EXPECT_EQ(alloc.free_chips(), 58);
  const auto chips = alloc.allocate(58, PlacementPolicy::Contiguous, "t0");
  for (const ChipId c : chips) {
    EXPECT_NE(c, 0);
    EXPECT_NE(c, 1);
  }
  EXPECT_THROW(alloc.allocate(1, PlacementPolicy::Contiguous, "t1"),
               ScenarioError);
  // Explicit reservation of a dead or claimed chip is a structured error.
  PlacementAllocator fresh(net);
  EXPECT_THROW(fresh.reserve({0}, "t0"), ScenarioError);
  fresh.reserve({2, 3}, "t0");
  EXPECT_THROW(fresh.reserve({3}, "t1"), ScenarioError);
}

// ---- scenario keys -------------------------------------------------------

TEST(TenantKeys, ParseValidateRoundTrip) {
  const auto spec = mix3_spec();
  ASSERT_EQ(spec.tenants, 3);
  const auto tenants = tenant_specs(spec);
  ASSERT_EQ(tenants.size(), 3u);
  EXPECT_EQ(tenants[0].workload, "ring-allreduce");
  EXPECT_EQ(tenants[0].count, 8);
  EXPECT_EQ(tenants[1].placement, PlacementPolicy::Scattered);
  EXPECT_EQ(tenants[2].opts.at("requests"), "32");
  // Keys survive to_kv -> from_kv.
  const auto back = core::ScenarioSpec::from_kv(spec.to_kv());
  EXPECT_EQ(back.to_kv(), spec.to_kv());
}

TEST(TenantKeys, ExplicitChipListAndErrors) {
  core::ScenarioSpec spec;
  spec.set("tenants", "1");
  spec.set("tenant0.workload", "all-to-all");
  spec.set("tenant0.chips", "4, 5, 6");
  const auto tenants = tenant_specs(spec);
  EXPECT_EQ(tenants[0].explicit_chips, (std::vector<ChipId>{4, 5, 6}));

  core::ScenarioSpec missing;
  missing.set("tenants", "2");
  missing.set("tenant0.workload", "all-to-all");
  missing.set("tenant0.chips", "4");
  EXPECT_THROW(tenant_specs(missing), ScenarioError);  // tenant1 undeclared

  core::ScenarioSpec extra;
  extra.set("tenants", "1");
  extra.set("tenant0.workload", "all-to-all");
  extra.set("tenant0.chips", "4");
  extra.set("tenant1.workload", "all-to-all");
  EXPECT_THROW(tenant_specs(extra), ScenarioError);  // beyond tenants=1

  EXPECT_THROW(core::ScenarioSpec{}.set("tenant0", "x"),
               std::invalid_argument);
  EXPECT_THROW(core::ScenarioSpec{}.set("tenants.isolation", "2"),
               std::invalid_argument);
}

// ---- fault-emptied chip groups (structured error) ------------------------

TEST(TenantFaults, EmptiedScopeGroupIsScenarioError) {
  // Killing 3 of a C-group's 4 chips leaves < 2 live: the workload cannot
  // form that ring, and says so as a ScenarioError before simulating.
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  spec.workload = "ring-allreduce";
  spec.set("workload.scope", "cgroup");
  spec.set("fault.chips", "0,1,2");
  try {
    core::run_workload_scenario(spec);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("live chips under the active "
                                         "fault mask"),
              std::string::npos)
        << e.what();
  }
  // One dead chip: the ring reforms over the 3 survivors and runs.
  spec.fault.chips = {0};
  const auto run = core::run_workload_scenario(spec);
  EXPECT_TRUE(run.result.completed);
  EXPECT_EQ(run.result.chips, 59);
}

// ---- the 3-tenant acceptance mix ----------------------------------------

TEST(TenantMix3, DisjointPlacementsAndInterference) {
  const auto r = run_tenant_scenario(mix3_spec());
  ASSERT_EQ(r.tenants.size(), 3u);
  EXPECT_TRUE(r.completed);
  std::set<ChipId> all;
  for (const auto& t : r.tenants) {
    EXPECT_TRUE(t.completed);
    EXPECT_EQ(t.chips.size(), 8u);
    for (const ChipId c : t.chips) EXPECT_TRUE(all.insert(c).second);
    EXPECT_GT(t.ttc, 0u);
    EXPECT_GE(r.cycles, t.ttc);
    EXPECT_GT(t.p50_msg_cycles, 0.0);
    EXPECT_GE(t.p99_msg_cycles, t.p50_msg_cycles);
    EXPECT_GT(t.isolated_ttc, 0u);
    EXPECT_GT(t.interference, 0.0);
    EXPECT_GT(t.gbps_per_chip, 0.0);
  }
  // The makespan is some tenant's TTC.
  Cycle max_ttc = 0;
  for (const auto& t : r.tenants) max_ttc = std::max(max_ttc, t.ttc);
  EXPECT_EQ(r.cycles, max_ttc);
}

TEST(TenantMix3, RepeatRunsBitIdentical) {
  const auto a = run_tenant_scenario(mix3_spec());
  const auto b = run_tenant_scenario(mix3_spec());
  expect_same(a, b);
}

TEST(TenantMix3, ShardCountsBitIdentical) {
  auto spec1 = mix3_spec();
  spec1.sim.shards = 1;
  auto spec2 = mix3_spec();
  spec2.sim.shards = 2;
  expect_same(run_tenant_scenario(spec1), run_tenant_scenario(spec2));
}

TEST(TenantMix3, IsolationBaselinesCanBeDisabled) {
  auto spec = mix3_spec();
  spec.set("tenants.isolation", "0");
  const auto r = run_tenant_scenario(spec);
  for (const auto& t : r.tenants) {
    EXPECT_EQ(t.isolated_ttc, 0u);
    EXPECT_DOUBLE_EQ(t.interference, 0.0);
  }
}

TEST(TenantMix3, TopLevelWorkloadKeyConflicts) {
  auto spec = mix3_spec();
  spec.workload = "ring-allreduce";
  EXPECT_THROW(run_tenant_scenario(spec), ScenarioError);
  auto spec2 = mix3_spec();
  spec2.set("workload.kib", "64");
  EXPECT_THROW(run_tenant_scenario(spec2), ScenarioError);
}
