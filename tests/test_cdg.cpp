// Channel-dependency-graph audits (paper §IV deadlock-freedom claims).
// The Baseline scheme and ReducedSafe scheme must be acyclic; the paper's
// Reduced scheme is audited and its residual-cycle status is asserted to
// match the analysis documented in DESIGN.md §5.
#include <gtest/gtest.h>

#include "route/cdg.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"

using namespace sldf;
using namespace sldf::topo;
using route::RouteMode;
using route::VcScheme;

namespace {
SwlessParams audit_params(VcScheme scheme, RouteMode mode) {
  SwlessParams p;
  p.a = 1;
  p.b = 3;
  p.chip_gx = 2;
  p.chip_gy = 2;
  p.noc_x = 1;
  p.noc_y = 1;
  p.ports_per_chiplet = 4;
  p.local_ports = 2;
  p.global_ports = 2;
  p.g = 5;  // keep the audit quick but multi-W-group
  p.scheme = scheme;
  p.mode = mode;
  return p;
}
}  // namespace

TEST(Cdg, BaselineMinimalAcyclic) {
  sim::Network net;
  build_swless_dragonfly(net,
                         audit_params(VcScheme::Baseline, RouteMode::Minimal));
  const auto rep = route::audit_cdg(net);
  EXPECT_TRUE(rep.acyclic) << rep.to_string(net);
  EXPECT_GT(rep.paths_walked, 1000u);
}

TEST(Cdg, BaselineValiantAcyclic) {
  sim::Network net;
  build_swless_dragonfly(net,
                         audit_params(VcScheme::Baseline, RouteMode::Valiant));
  const auto rep = route::audit_cdg(net);
  EXPECT_TRUE(rep.acyclic) << rep.to_string(net);
}

TEST(Cdg, ReducedSafeMinimalAcyclic) {
  sim::Network net;
  build_swless_dragonfly(
      net, audit_params(VcScheme::ReducedSafe, RouteMode::Minimal));
  const auto rep = route::audit_cdg(net);
  EXPECT_TRUE(rep.acyclic) << rep.to_string(net);
}

TEST(Cdg, ReducedSafeValiantAcyclic) {
  sim::Network net;
  build_swless_dragonfly(
      net, audit_params(VcScheme::ReducedSafe, RouteMode::Valiant));
  const auto rep = route::audit_cdg(net);
  EXPECT_TRUE(rep.acyclic) << rep.to_string(net);
}

TEST(Cdg, ReducedSchemeReportsDocumentedStatus) {
  // DESIGN.md §5: the literal 3-VC merge of the destination W-group admits
  // dependency cycles through shared mesh channels when every mesh node is
  // an endpoint. The audit documents the status; we assert it completes
  // and print the verdict (either outcome is recorded in EXPERIMENTS.md).
  sim::Network net;
  build_swless_dragonfly(net,
                         audit_params(VcScheme::Reduced, RouteMode::Minimal));
  const auto rep = route::audit_cdg(net);
  EXPECT_GT(rep.paths_walked, 1000u);
  std::printf("[ INFO     ] Reduced minimal: %s\n",
              rep.to_string(net).c_str());
  if (!rep.acyclic) {
    EXPECT_FALSE(rep.cycle.empty());
  }
}

TEST(Cdg, AdaptiveModesAcyclic) {
  // Adaptive paths are a subset of minimal + Valiant paths; the audit
  // enumerates every intermediate group, so this certifies the whole
  // reachable path set.
  for (auto scheme : {VcScheme::Baseline, VcScheme::ReducedSafe}) {
    sim::Network net;
    build_swless_dragonfly(net, audit_params(scheme, RouteMode::Adaptive));
    const auto rep = route::audit_cdg(net);
    EXPECT_TRUE(rep.acyclic) << rep.to_string(net);
  }
}

TEST(Cdg, SwitchBasedDragonflyMinimalAcyclic) {
  SwDragonflyParams p;
  p.switches_per_group = 3;
  p.terminals_per_switch = 2;
  p.globals_per_switch = 2;
  p.mode = RouteMode::Minimal;
  sim::Network net;
  build_sw_dragonfly(net, p);
  const auto rep = route::audit_cdg(net);
  EXPECT_TRUE(rep.acyclic) << rep.to_string(net);
}

TEST(Cdg, SwitchBasedDragonflyValiantAcyclic) {
  SwDragonflyParams p;
  p.switches_per_group = 3;
  p.terminals_per_switch = 2;
  p.globals_per_switch = 2;
  p.mode = RouteMode::Valiant;
  sim::Network net;
  build_sw_dragonfly(net, p);
  const auto rep = route::audit_cdg(net);
  EXPECT_TRUE(rep.acyclic) << rep.to_string(net);
}

TEST(Cdg, NoConverterSmallScaleAcyclic) {
  auto p = audit_params(VcScheme::Baseline, RouteMode::Minimal);
  p.io_converters = false;
  sim::Network net;
  build_swless_dragonfly(net, p);
  const auto rep = route::audit_cdg(net);
  EXPECT_TRUE(rep.acyclic) << rep.to_string(net);
}

TEST(Cdg, SingleVcMeshWouldCycleOnRingDependencies) {
  // Sanity check that the auditor can actually find cycles: a 3-node ring
  // with one VC and "always forward" routing is the textbook deadlock.
  sim::Network net;
  const NodeId a = net.add_router(NodeKind::Core);
  const NodeId b = net.add_router(NodeKind::Core);
  const NodeId c = net.add_router(NodeKind::Core);
  net.add_channel(a, b, LinkType::OnChip, 1);
  net.add_channel(b, c, LinkType::OnChip, 1);
  net.add_channel(c, a, LinkType::OnChip, 1);
  net.make_terminal(a, 0);
  net.make_terminal(b, 1);
  net.make_terminal(c, 2);

  class RingFwd final : public sim::RoutingAlgorithm {
   public:
    void init_packet(const sim::Network&, sim::Packet& pkt, Rng&) override {
      pkt.vc_class = 0;
    }
    sim::RouteDecision route(const sim::Network& net2, NodeId router, PortIx,
                             sim::Packet& pkt) override {
      const auto& r = net2.router(router);
      if (router == pkt.dst) return {r.eject_port, 0};
      return {0, 0};  // the single forward channel
    }
    const char* name() const override { return "ring"; }
  };
  net.set_routing(std::make_unique<RingFwd>());
  net.finalize(1, 8);
  const auto rep = route::audit_cdg(net);
  EXPECT_FALSE(rep.acyclic);
  EXPECT_FALSE(rep.cycle.empty());
}
