// Workload-engine tests: generator graph structure, closed-loop execution
// determinism (repeat runs and threads=1 vs threads=auto bit-identical for
// fixed seeds), tiny-topology golden completion times per generator, and
// failure modes (dependency cycles, malformed graphs).
#include <gtest/gtest.h>

#include "core/docgen.hpp"
#include "core/scenario.hpp"
#include "topo/hier.hpp"
#include "traffic/pattern.hpp"
#include "workload/collectives.hpp"
#include "workload/registry.hpp"
#include "workload/workload.hpp"

using namespace sldf;
using namespace sldf::workload;

namespace {

/// tiny-swless: a=1, b=3, g=5 -> 15 C-groups of 4 chips, 60 chips total;
/// every chip has one terminal node (1x1 NoC).
sim::Network tiny_net() {
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  sim::Network net;
  core::build_network(net, spec);
  return net;
}

// ---- generator graph structure ------------------------------------------

TEST(WorkloadGraphs, ChipGroupsPartitionByScope) {
  auto net = tiny_net();
  const auto cg = chip_groups(net, Scope::CGroup);
  const auto wg = chip_groups(net, Scope::WGroup);
  const auto sys = chip_groups(net, Scope::System);
  EXPECT_EQ(cg.size(), 15u);
  for (const auto& g : cg) EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(wg.size(), 5u);
  for (const auto& g : wg) EXPECT_EQ(g.size(), 12u);
  ASSERT_EQ(sys.size(), 1u);
  EXPECT_EQ(sys[0].size(), 60u);
}

TEST(WorkloadGraphs, RingAllreduceShape) {
  auto net = tiny_net();
  // Rings of N=4: 2*(N-1) = 6 steps, one message per chip per step.
  const auto g = ring_allreduce(net, Scope::CGroup, 512, 1, 1);
  EXPECT_EQ(g.messages.size(), 15u * 4u * 6u);
  EXPECT_EQ(g.num_phases, 6);
  // Segment = ceil(512/4) = 128 flits on every message; step-0 messages
  // are roots, later steps depend on exactly the predecessor's previous
  // send.
  for (std::size_t m = 0; m < g.messages.size(); ++m) {
    const auto& spec = g.messages[m];
    EXPECT_EQ(spec.flits, 128u);
    EXPECT_EQ(spec.deps.size(), spec.phase == 0 ? 0u : 1u);
    if (!spec.deps.empty()) {
      const auto& dep = g.messages[spec.deps[0]];
      EXPECT_EQ(dep.phase, spec.phase - 1);
      EXPECT_EQ(dep.dst, spec.src);  // pred's send arrived at this chip
    }
  }
}

TEST(WorkloadGraphs, RingChunksSplitSegments) {
  auto net = tiny_net();
  const auto g = ring_allreduce(net, Scope::CGroup, 512, 2, 1);
  EXPECT_EQ(g.messages.size(), 2u * 15u * 4u * 6u);
  for (const auto& m : g.messages) EXPECT_EQ(m.flits, 64u);
}

TEST(WorkloadGraphs, HalvingDoublingShape) {
  auto net = tiny_net();
  // N=4 is a power of two: no pre/post fold, 2*log2(4) = 4 exchange steps
  // of 4 messages per ring; phase layout reserves pre/post slots.
  const auto g = halving_doubling_allreduce(net, Scope::CGroup, 512, 1);
  EXPECT_EQ(g.messages.size(), 15u * 4u * 4u);
  EXPECT_EQ(g.num_phases, 2 * 2 + 2);
  // Halving step 0 sends half the vector, step 1 a quarter; doubling
  // mirrors back up.
  std::uint64_t flits_by_phase[6] = {};
  for (const auto& m : g.messages) {
    if (flits_by_phase[m.phase] == 0) flits_by_phase[m.phase] = m.flits;
    EXPECT_EQ(flits_by_phase[m.phase], m.flits);
  }
  EXPECT_EQ(flits_by_phase[1], 256u);
  EXPECT_EQ(flits_by_phase[2], 128u);
  EXPECT_EQ(flits_by_phase[3], 128u);
  EXPECT_EQ(flits_by_phase[4], 256u);
}

TEST(WorkloadGraphs, HalvingDoublingFoldsNonPowerOfTwo) {
  auto net = tiny_net();
  // W-group rings have N=12: pow=8, 4 extras fold in (pre) and out (post).
  const auto g = halving_doubling_allreduce(net, Scope::WGroup, 512, 1);
  EXPECT_EQ(g.messages.size(), 5u * (4u + 8u * 3u + 8u * 3u + 4u));
  std::size_t pre = 0, post = 0;
  for (const auto& m : g.messages) {
    if (m.phase == 0) ++pre;
    if (m.phase == g.num_phases - 1) ++post;
  }
  EXPECT_EQ(pre, 5u * 4u);
  EXPECT_EQ(post, 5u * 4u);
}

TEST(WorkloadGraphs, TreeAllreduceShape) {
  auto net = tiny_net();
  // Binomial tree over N=4: 3 reduce + 3 broadcast full-vector messages.
  const auto g = tree_allreduce(net, Scope::CGroup, 512, 1);
  EXPECT_EQ(g.messages.size(), 15u * 6u);
  EXPECT_EQ(g.num_phases, 4);
  for (const auto& m : g.messages) EXPECT_EQ(m.flits, 512u);
}

TEST(WorkloadGraphs, AllToAllShape) {
  auto net = tiny_net();
  // N=4: 3 shifted rounds, every chip sends one message per round; the
  // sender window chains round r to round r-1.
  const auto g = all_to_all(net, Scope::CGroup, 64, 1, 1);
  EXPECT_EQ(g.messages.size(), 15u * 4u * 3u);
  EXPECT_EQ(g.num_phases, 3);
  for (const auto& m : g.messages) {
    EXPECT_NE(m.src, m.dst);
    EXPECT_EQ(m.deps.size(), m.phase == 0 ? 0u : 1u);
  }
}

TEST(WorkloadGraphs, Stencil3dShape) {
  auto net = tiny_net();
  // 4 chips -> 1x2x2 periodic grid: 2 deduplicated face neighbours per
  // cell, so 8 messages per C-group per iteration.
  const auto g = stencil3d(net, Scope::CGroup, 64, 2, true);
  EXPECT_EQ(g.messages.size(), 2u * 15u * 8u);
  EXPECT_EQ(g.num_phases, 2);
  for (const auto& m : g.messages)
    EXPECT_EQ(m.deps.size(), m.phase == 0 ? 0u : 2u);
}

TEST(WorkloadGraphs, ExternalMessagesAreNarrowed) {
  auto net = tiny_net();
  const auto& hier = net.topo<topo::HierTopo>();
  const auto g = ring_allreduce(net, Scope::WGroup, 512, 1, 1);
  for (const auto& m : g.messages) {
    const bool external =
        hier.chip_cgroup[static_cast<std::size_t>(m.src)] !=
        hier.chip_cgroup[static_cast<std::size_t>(m.dst)];
    EXPECT_EQ(m.stripe, external ? 1 : 0);
  }
}

// ---- closed-loop execution ----------------------------------------------

TEST(WorkloadRun, GoldenCompletionTimes) {
  auto net = tiny_net();
  WorkloadRunConfig rc;
  const auto cycles = [&](WorkloadGraph g) {
    return run_workload(net, g, rc).cycles;
  };
  // Golden values for the tiny-swless instance (fixed engine + schedule;
  // an intentional change to either updates these in one place).
  EXPECT_EQ(cycles(ring_allreduce(net, Scope::CGroup, 512, 1, 1)), 773u);
  EXPECT_EQ(cycles(ring_allreduce(net, Scope::CGroup, 512, 2, 2)), 1536u);
  EXPECT_EQ(cycles(halving_doubling_allreduce(net, Scope::CGroup, 512, 1)),
            773u);
  EXPECT_EQ(cycles(tree_allreduce(net, Scope::CGroup, 512, 1)), 2053u);
  EXPECT_EQ(cycles(all_to_all(net, Scope::CGroup, 64, 1, 1)), 195u);
  EXPECT_EQ(cycles(stencil3d(net, Scope::CGroup, 64, 2, true)), 259u);
  EXPECT_EQ(cycles(ring_allreduce(net, Scope::WGroup, 512, 1, 1)), 1903u);
  EXPECT_EQ(cycles(halving_doubling_allreduce(net, Scope::WGroup, 512, 1)),
            4584u);
}

TEST(WorkloadRun, RepeatRunsBitIdentical) {
  auto net = tiny_net();
  WorkloadRunConfig rc;
  const auto g = ring_allreduce(net, Scope::CGroup, 512, 2, 1);
  const auto a = run_workload(net, g, rc);
  const auto b = run_workload(net, g, rc);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
  EXPECT_EQ(a.avg_msg_cycles, b.avg_msg_cycles);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i)
    EXPECT_EQ(a.phases[i].completed, b.phases[i].completed);
}

TEST(WorkloadRun, IdleSkipBitIdenticalOnClosedLoopDrainTail) {
  // Closed-loop drain tails are where idle elision bites hardest: between
  // a phase's last ejection and the next timed release the fabric is
  // empty, and the runner lets the engine jump those stretches
  // (Simulator::try_skip_idle bounded by the next release). The skipping
  // run must match the stepping run on every ledger field, including the
  // per-phase completion times.
  auto net = tiny_net();
  for (const auto& g :
       {tree_allreduce(net, Scope::CGroup, 512, 1),
        ring_allreduce(net, Scope::WGroup, 512, 2, 1)}) {
    WorkloadRunConfig rc;
    rc.sim.idle_skip = false;
    const auto scan = run_workload(net, g, rc);
    rc.sim.idle_skip = true;
    const auto skip = run_workload(net, g, rc);
    EXPECT_EQ(scan.cycles, skip.cycles);
    EXPECT_EQ(scan.packets, skip.packets);
    EXPECT_EQ(scan.flit_hops, skip.flit_hops);
    EXPECT_EQ(scan.avg_msg_cycles, skip.avg_msg_cycles);
    ASSERT_EQ(scan.phases.size(), skip.phases.size());
    for (std::size_t i = 0; i < scan.phases.size(); ++i)
      EXPECT_EQ(scan.phases[i].completed, skip.phases[i].completed);
  }
}

TEST(WorkloadRun, ThreadsKeyDoesNotAffectResults) {
  // A workload series runs one closed-loop simulation regardless of the
  // sweep-parallelism key; threads=1 and threads=auto must be
  // bit-identical.
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  spec.workload = "ring-allreduce";
  spec.workload_opts["scope"] = "cgroup";
  spec.workload_opts["kib"] = "8";
  spec.threads = 1;
  const auto a = core::run_workload_scenario(spec);
  spec.threads = 0;  // auto
  const auto b = core::run_workload_scenario(spec);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_EQ(a.result.flit_hops, b.result.flit_hops);
  EXPECT_EQ(a.result.gbps_per_chip, b.result.gbps_per_chip);
}

TEST(WorkloadRun, ReportsPhasesAndBandwidth) {
  auto net = tiny_net();
  WorkloadRunConfig rc;
  rc.flit_bytes = 16.0;
  const auto r = run_workload(net, ring_allreduce(net, Scope::CGroup, 512,
                                                  1, 1),
                              rc);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.chips, 60);
  EXPECT_EQ(r.messages, 360u);
  EXPECT_EQ(r.flits, 360u * 128u);
  ASSERT_EQ(r.phases.size(), 6u);
  for (std::size_t i = 1; i < r.phases.size(); ++i)
    EXPECT_GT(r.phases[i].completed, r.phases[i - 1].completed);
  EXPECT_EQ(r.phases.back().completed, r.cycles);
  const double expect_gbps = static_cast<double>(r.flits) * rc.flit_bytes /
                             (static_cast<double>(r.cycles) * r.chips);
  EXPECT_DOUBLE_EQ(r.gbps_per_chip, expect_gbps);
}

TEST(WorkloadRun, DependencyCycleThrows) {
  auto net = tiny_net();
  WorkloadGraph g;
  g.name = "cycle";
  const MsgId a = g.add(0, 1, 4, 0);
  const MsgId b = g.add(1, 2, 4, 0);
  g.messages[a].deps.push_back(b);
  g.messages[b].deps.push_back(a);
  WorkloadRunConfig rc;
  EXPECT_THROW(run_workload(net, g, rc), std::runtime_error);
}

TEST(WorkloadRun, ValidatesGraphs) {
  auto net = tiny_net();
  WorkloadRunConfig rc;
  {
    WorkloadGraph g;  // empty
    g.name = "empty";
    EXPECT_THROW(run_workload(net, g, rc), std::invalid_argument);
  }
  {
    WorkloadGraph g;
    g.name = "self";
    g.add(3, 3, 4, 0);
    EXPECT_THROW(run_workload(net, g, rc), std::invalid_argument);
  }
  {
    WorkloadGraph g;
    g.name = "badchip";
    g.add(0, static_cast<ChipId>(net.num_chips()), 4, 0);
    EXPECT_THROW(run_workload(net, g, rc), std::invalid_argument);
  }
  {
    WorkloadGraph g;
    g.name = "baddep";
    const MsgId a = g.add(0, 1, 4, 0);
    g.messages[a].deps.push_back(42);
    EXPECT_THROW(run_workload(net, g, rc), std::invalid_argument);
  }
}

TEST(WorkloadRun, MaxCyclesAborts) {
  auto net = tiny_net();
  WorkloadRunConfig rc;
  rc.max_cycles = 10;  // far too short for a 512-flit vector
  const auto r = run_workload(net, ring_allreduce(net, Scope::CGroup, 512,
                                                  1, 1),
                              rc);
  EXPECT_FALSE(r.completed);
  EXPECT_LE(r.cycles, 10u);
}

// ---- registry + scenario integration ------------------------------------

TEST(WorkloadRegistry, BuiltinsRegistered) {
  auto& reg = WorkloadRegistry::instance();
  for (const char* name :
       {"ring-allreduce", "halving-doubling-allreduce", "tree-allreduce",
        "all-to-all", "stencil-3d"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_FALSE(reg.doc(name).summary.empty());
    EXPECT_FALSE(reg.doc(name).options.empty());
  }
}

TEST(WorkloadRegistry, KibTranslatesThroughFlitBytes) {
  auto net = tiny_net();
  WorkloadEnv env;
  env.flit_bytes = 32.0;
  const auto g = make_workload("ring-allreduce", net,
                               {{"kib", "8"}, {"scope", "cgroup"}}, env);
  // 8 KiB / 32 B = 256 flits per vector, segments of 64.
  EXPECT_EQ(g.messages.front().flits, 64u);
}

TEST(WorkloadRegistry, UnknownOptionThrows) {
  auto net = tiny_net();
  WorkloadEnv env;
  EXPECT_THROW(
      make_workload("ring-allreduce", net, {{"bogus", "1"}}, env),
      std::invalid_argument);
  EXPECT_THROW(make_workload("nope", net, {}, env), std::invalid_argument);
}

TEST(WorkloadScenario, KeysRoundTrip) {
  core::ScenarioSpec spec;
  spec.set("workload", "ring-allreduce");
  spec.set("workload.kib", "64");
  spec.set("workload.scope", "wgroup");
  const auto kv = spec.to_kv();
  EXPECT_EQ(kv.at("workload"), "ring-allreduce");
  EXPECT_EQ(kv.at("workload.kib"), "64");
  const auto back = core::ScenarioSpec::from_kv(kv);
  EXPECT_EQ(back.workload, "ring-allreduce");
  EXPECT_EQ(back.workload_opts.at("scope"), "wgroup");
}

TEST(WorkloadScenario, RateSweepRunnerRejectsWorkloadSpecs) {
  core::ScenarioSpec spec;
  spec.workload = "ring-allreduce";
  EXPECT_THROW(core::run_scenario(spec), std::invalid_argument);
  core::ScenarioSpec sweep;
  EXPECT_THROW(core::run_workload_scenario(sweep), std::invalid_argument);
}

TEST(WorkloadScenario, RunnerKeysConsumedBeforeGenerator) {
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  spec.workload = "ring-allreduce";
  spec.workload_opts["scope"] = "cgroup";
  spec.workload_opts["kib"] = "8";
  spec.workload_opts["flit_bytes"] = "32";
  spec.workload_opts["freq_ghz"] = "2";
  spec.workload_opts["max_cycles"] = "1000000";
  const auto run = core::run_workload_scenario(spec);
  EXPECT_TRUE(run.result.completed);
  // 8 KiB at 32 B/flit: 256-flit vectors, and GB/s doubles with the clock.
  EXPECT_EQ(run.result.flits,
            60u * 6u * 64u);  // 60 chips, 6 steps, 64-flit segments
}

TEST(Docgen, ReferenceCoversRegistries) {
  const std::string doc = core::render_scenario_reference();
  EXPECT_NE(doc.find("### Scenario key reference"), std::string::npos);
  EXPECT_NE(doc.find("`workload.<opt>`"), std::string::npos);
  for (const auto& name : core::TopologyRegistry::instance().names())
    EXPECT_NE(doc.find("**`" + name + "`**"), std::string::npos) << name;
  for (const auto& name : traffic::TrafficRegistry::instance().names())
    EXPECT_NE(doc.find("**`" + name + "`**"), std::string::npos) << name;
  for (const auto& name : WorkloadRegistry::instance().names())
    EXPECT_NE(doc.find("**`" + name + "`**"), std::string::npos) << name;
}

}  // namespace
