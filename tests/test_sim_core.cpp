// White-box tests of the simulation engine: hand-built micro-networks
// exercising credit flow control, wormhole ordering, bandwidth tokens,
// latency accounting, and backpressure.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "test_fixtures.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::sim;

namespace {

/// Two terminals joined by a duplex channel; trivial routing.
class PairRouting final : public RoutingAlgorithm {
 public:
  void init_packet(const Network&, Packet& pkt, Rng&) override {
    pkt.vc_class = 0;
  }
  RouteDecision route(const Network& net, NodeId router, PortIx,
                      Packet& pkt) override {
    const auto& r = net.router(router);
    if (router == pkt.dst) return {r.eject_port, 0};
    // The only non-eject output port is port 0 (the channel).
    return {0, 0};
  }
  const char* name() const override { return "pair"; }
};

/// Everyone at node 0 sends to node 1.
class FixedTraffic final : public TrafficSource {
 public:
  explicit FixedTraffic(NodeId dst) : dst_(dst) {}
  NodeId dest(const Network&, NodeId src, Rng&) override {
    return src == dst_ ? kInvalidNode : dst_;
  }
  const char* name() const override { return "fixed"; }

 private:
  NodeId dst_;
};

/// Builds the 2-node pair network with the given channel parameters.
void build_pair(Network& net, int latency, int wnum, int wden, int nvcs = 1,
                int buf = 32) {
  const NodeId a = net.add_router(NodeKind::Core);
  const NodeId b = net.add_router(NodeKind::Core);
  net.add_duplex(a, b, LinkType::OnChip, latency, wnum, wden);
  net.make_terminal(a, 0);
  net.make_terminal(b, 1);
  net.set_routing(std::make_unique<PairRouting>());
  net.finalize(nvcs, buf);
}

}  // namespace

TEST(SimCore, ZeroLoadLatencyIsDeterministic) {
  Network net;
  build_pair(net, /*latency=*/1, 1, 1);
  SimConfig cfg;
  cfg.inj_rate_per_chip = 0.01;
  cfg.pkt_len = 4;
  cfg.warmup = 200;
  cfg.measure = 2000;
  cfg.drain = 200;
  FixedTraffic tr(1);
  const auto r1 = run_sim(net, cfg, tr);
  const auto r2 = run_sim(net, cfg, tr);
  EXPECT_EQ(r1.avg_latency, r2.avg_latency);
  EXPECT_EQ(r1.delivered_measured, r2.delivered_measured);
  // Zero-load: inject 4 flits (4 cycles), 1 link cycle, 1 router cycle,
  // eject tail. Latency must be small and constant.
  EXPECT_GE(r1.avg_latency, 4.0);
  EXPECT_LT(r1.avg_latency, 12.0);
  EXPECT_TRUE(r1.drained);
}

TEST(SimCore, LatencyGrowsWithChannelLatency) {
  double lat[2];
  for (int i = 0; i < 2; ++i) {
    Network net;
    build_pair(net, i == 0 ? 1 : 8, 1, 1);
    SimConfig cfg;
    cfg.inj_rate_per_chip = 0.01;
    cfg.warmup = 100;
    cfg.measure = 1000;
    FixedTraffic tr(1);
    lat[i] = run_sim(net, cfg, tr).avg_latency;
  }
  EXPECT_NEAR(lat[1] - lat[0], 7.0, 0.5);  // +7 cycles of pipeline
}

TEST(SimCore, ThroughputCapsAtChannelWidth) {
  // Offered 1.0 flit/cycle/chip into a full-width channel: all accepted.
  // With a 1/2-width channel, accepted saturates near 0.5.
  for (const auto& [wnum, wden, expect] :
       {std::tuple{1, 1, 1.0}, std::tuple{1, 2, 0.5}, std::tuple{3, 4, 0.75}}) {
    Network net;
    build_pair(net, 1, wnum, wden);
    SimConfig cfg;
    cfg.inj_rate_per_chip = 1.0;
    cfg.warmup = 500;
    cfg.measure = 4000;
    cfg.drain = 0;
    FixedTraffic tr(1);
    const auto r = run_sim(net, cfg, tr);
    // Only chip 0 sends; accepted is normalized over 2 chips.
    EXPECT_NEAR(r.accepted * 2.0, expect, 0.05)
        << "width " << wnum << "/" << wden;
  }
}

TEST(SimCore, FractionalWidthAveragesExactly) {
  Network net;
  build_pair(net, 1, 2, 3);
  SimConfig cfg;
  cfg.inj_rate_per_chip = 1.0;
  cfg.warmup = 600;
  cfg.measure = 6000;
  cfg.drain = 0;
  FixedTraffic tr(1);
  const auto r = run_sim(net, cfg, tr);
  EXPECT_NEAR(r.accepted * 2.0, 2.0 / 3.0, 0.02);
}

TEST(SimCore, BackpressureNeverOverflowsBuffers) {
  // Tiny buffers + saturating load: the credit protocol must hold (the
  // delivery assert fires in debug builds when it does not) and all
  // measured packets eventually drain.
  Network net;
  build_pair(net, 4, 1, 1, /*nvcs=*/2, /*buf=*/6);
  SimConfig cfg;
  cfg.inj_rate_per_chip = 1.0;
  cfg.warmup = 200;
  cfg.measure = 1000;
  cfg.drain = 5000;
  FixedTraffic tr(1);
  const auto r = run_sim(net, cfg, tr);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.delivered_measured, r.generated_measured);
  EXPECT_TRUE(sldf::testing::audit_conservation(r));
}

TEST(SimCore, HopCountsRecordLinkType) {
  Network net;
  const NodeId a = net.add_router(NodeKind::Core);
  const NodeId m = net.add_router(NodeKind::Switch);
  const NodeId b = net.add_router(NodeKind::Core);
  net.add_duplex(a, m, LinkType::ShortReach, 1);
  net.add_duplex(m, b, LinkType::LongReachGlobal, 8);
  net.make_terminal(a, 0);
  net.make_terminal(b, 1);

  // Simple forwarding: switch forwards toward b, terminals eject/send.
  class Fwd final : public RoutingAlgorithm {
   public:
    void init_packet(const Network&, Packet& pkt, Rng&) override {
      pkt.vc_class = 0;
    }
    RouteDecision route(const Network& net, NodeId router, PortIx in_port,
                        Packet& pkt) override {
      const auto& r = net.router(router);
      if (router == pkt.dst) return {r.eject_port, 0};
      if (r.kind == NodeKind::Switch)
        return {in_port == 0 ? static_cast<PortIx>(1) : static_cast<PortIx>(0),
                0};
      return {0, 0};
    }
    const char* name() const override { return "fwd"; }
  };
  net.set_routing(std::make_unique<Fwd>());
  net.finalize(1, 32);

  SimConfig cfg;
  cfg.inj_rate_per_chip = 0.05;
  cfg.warmup = 100;
  cfg.measure = 1000;
  FixedTraffic tr(b);
  const auto r = run_sim(net, cfg, tr);
  ASSERT_GT(r.delivered_measured, 0u);
  EXPECT_DOUBLE_EQ(r.avg_hops[static_cast<int>(LinkType::ShortReach)], 1.0);
  EXPECT_DOUBLE_EQ(r.avg_hops[static_cast<int>(LinkType::LongReachGlobal)],
                   1.0);
  EXPECT_DOUBLE_EQ(r.avg_hops_total, 2.0);
}

TEST(SimCore, SourceQueueCapSuppresses) {
  Network net;
  build_pair(net, 1, 1, 4);  // narrow link, heavy offered load
  SimConfig cfg;
  cfg.inj_rate_per_chip = 2.0;
  cfg.warmup = 100;
  cfg.measure = 2000;
  cfg.drain = 0;
  cfg.max_src_queue = 8;
  FixedTraffic tr(1);
  const auto r = run_sim(net, cfg, tr);
  EXPECT_GT(r.suppressed, 0u);
}

TEST(SimCore, MeasurementWindowOnlyCountsMeasuredPackets) {
  Network net;
  build_pair(net, 1, 1, 1);
  SimConfig cfg;
  cfg.inj_rate_per_chip = 0.2;
  cfg.warmup = 500;
  cfg.measure = 1000;
  cfg.drain = 500;
  FixedTraffic tr(1);
  const auto r = run_sim(net, cfg, tr);
  // Measured generation: rate 0.2 flits/cycle/chip = 0.05 pkt/cycle from
  // the single sender over 1000 cycles => ~50 packets.
  EXPECT_NEAR(static_cast<double>(r.generated_measured), 50.0, 20.0);
  EXPECT_EQ(r.delivered_measured, r.generated_measured);
}

TEST(SimCore, NetworkValidationThrows) {
  Network net;
  build_pair(net, 1, 1, 1);
  SimConfig cfg;
  FixedTraffic tr(1);
  Network empty;
  EXPECT_THROW(Simulator(empty, cfg, tr), std::logic_error);
}

TEST(SimCore, ChannelTokenBucket) {
  Channel c;
  c.width_num = 3;
  c.width_den = 4;
  c.reset_tokens();
  int sent = 0;
  for (Cycle t = 0; t < 400; ++t) {
    c.refresh_tokens(t);
    while (c.flit_allowance() > 0) {
      c.consume_token();
      ++sent;
    }
  }
  EXPECT_NEAR(static_cast<double>(sent) / 400.0, 0.75, 0.02);
}

TEST(SimCore, FifoArenaRing) {
  FlitFifoArena a;
  a.init(/*num_fifos=*/3, /*capacity=*/4, /*meta_init=*/0);
  EXPECT_TRUE(a.empty(1));
  for (std::uint32_t i = 0; i < 4; ++i)
    a.push(1, Flit(i, i == 0, i == 3));
  EXPECT_TRUE(a.full(1));
  EXPECT_TRUE(a.empty(0));  // neighbours unaffected
  EXPECT_TRUE(a.empty(2));
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.front(1).pkt(), i);
    EXPECT_EQ(a.front(1).head(), i == 0);
    EXPECT_EQ(a.front(1).tail(), i == 3);
    a.pop(1);
  }
  EXPECT_TRUE(a.empty(1));
  // Wrap-around.
  for (std::uint32_t i = 0; i < 3; ++i) a.push(1, Flit(i, false, false));
  a.pop(1);
  a.push(1, Flit(3, false, false));
  EXPECT_EQ(a.size(1), 3u);
  EXPECT_EQ(a.pop(1).pkt(), 1u);
}

TEST(SimCore, FifoArenaNonPowerOfTwoCapacity) {
  // Logical capacity stays exactly as configured; only the storage stride
  // is rounded up to a power of two.
  FlitFifoArena a;
  a.init(2, 6, /*meta_init=*/0x1234u);
  EXPECT_EQ(a.meta(0), 0x1234u);
  EXPECT_EQ(a.capacity(), 6u);
  EXPECT_EQ(a.stride(), 8u);
  for (std::uint32_t i = 0; i < 6; ++i) a.push(0, Flit(i, false, false));
  EXPECT_TRUE(a.full(0));
  // Many push/pop rounds to exercise wrap at the (rounded) stride while
  // full() still triggers at the logical capacity.
  for (std::uint32_t i = 0; i < 40; ++i) {
    EXPECT_EQ(a.pop(0).pkt() % 6, i % 6);
    a.push(0, Flit((i + 6) % 6, false, false));
    EXPECT_TRUE(a.full(0));
  }
  // Metadata rides in the same control word but is independent of the ring.
  a.set_meta(0, 0xdeadbeefu);
  EXPECT_EQ(a.meta(0), 0xdeadbeefu);
  EXPECT_TRUE(a.full(0));
  a.reset(/*meta_init=*/0x1234u);
  EXPECT_TRUE(a.empty(0));
  EXPECT_EQ(a.meta(0), 0x1234u);
}

namespace {

/// Field-by-field exact comparison of two SimResults (doubles compared
/// bit-for-bit: the engine must be deterministic to the last bit).
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.generated_measured, b.generated_measured);
  EXPECT_EQ(a.delivered_measured, b.delivered_measured);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.suppressed, b.suppressed);
  EXPECT_EQ(a.drained, b.drained);
  for (int h = 0; h < kNumLinkTypes; ++h)
    EXPECT_EQ(a.avg_hops[h], b.avg_hops[h]);
  EXPECT_EQ(a.avg_hops_total, b.avg_hops_total);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
}

SimConfig determinism_cfg() {
  SimConfig cfg;
  cfg.inj_rate_per_chip = 0.6;  // busy enough for real contention
  cfg.warmup = 300;
  cfg.measure = 1500;
  cfg.drain = 800;
  cfg.seed = 42;
  return cfg;
}

}  // namespace

TEST(SimCore, SameSeedBitIdenticalAcrossRepeatedRuns) {
  Network net;
  build_pair(net, 4, 1, 1, /*nvcs=*/2, /*buf=*/6);
  const SimConfig cfg = determinism_cfg();
  FixedTraffic tr(1);
  const auto r1 = run_sim(net, cfg, tr);
  const auto r2 = run_sim(net, cfg, tr);
  ASSERT_GT(r1.delivered_measured, 0u);
  expect_identical(r1, r2);
}

TEST(SimCore, ReusedContextBitIdenticalToFreshContext) {
  Network net;
  build_pair(net, 4, 1, 1, /*nvcs=*/2, /*buf=*/6);
  const SimConfig cfg = determinism_cfg();
  FixedTraffic tr(1);
  SimContext ctx;
  // First run warms the context; the second reuses its arenas. Both must
  // match a one-shot-context run exactly, including after
  // reset_dynamic_state() cleared a dirty network.
  const auto warm = run_sim(ctx, net, cfg, tr);
  const auto reused = run_sim(ctx, net, cfg, tr);
  const auto fresh = run_sim(net, cfg, tr);
  expect_identical(warm, reused);
  expect_identical(warm, fresh);
}

TEST(SimCore, SerialAndParallelSweepsBitIdentical) {
  auto make_net = [](Network& net) {
    build_pair(net, 4, 1, 1, /*nvcs=*/2, /*buf=*/8);
  };
  auto make_traffic = [](const Network&) {
    return std::unique_ptr<TrafficSource>(new FixedTraffic(1));
  };
  core::SweepConfig cfg;
  cfg.rates = {0.1, 0.4, 0.8};
  cfg.base = determinism_cfg();
  cfg.stop_latency_factor = 0.0;  // keep every point in both runs
  cfg.threads = 1;
  const auto serial = core::run_sweep("s", make_net, make_traffic, cfg);
  cfg.threads = 4;
  const auto parallel = core::run_sweep("p", make_net, make_traffic, cfg);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].rate, parallel.points[i].rate);
    expect_identical(serial.points[i].res, parallel.points[i].res);
  }
}

// ------------------------------------------------- idle-skip fast path ---

TEST(IdleSkip, NextGenOverflowGuardAtExactBoundaries) {
  // advance_next_gen() must saturate to the "terminal dead" sentinel
  // (~0ULL) exactly when `when + 1 + skip` would reach or pass it, and
  // stay one conservative step short of producing the sentinel as a
  // legitimate arrival time. Pin the guard at the boundary values so a
  // refactor that swaps the comparison for the naive `when + 1 + skip`
  // (UB-prone and sentinel-colliding) fails loudly.
  constexpr Cycle kDead = ~0ULL;
  // Smallest overflowing skip: when + 1 + skip == kDead.
  EXPECT_EQ(advance_next_gen(0, kDead - 1), kDead);
  EXPECT_EQ(advance_next_gen(100, kDead - 101), kDead);
  // One below the boundary: largest representable legitimate arrival.
  EXPECT_EQ(advance_next_gen(0, kDead - 2), kDead - 1);
  EXPECT_EQ(advance_next_gen(100, kDead - 102), kDead - 1);
  // Far past the boundary (geometric_skip can return anything).
  EXPECT_EQ(advance_next_gen(0, kDead), kDead);
  EXPECT_EQ(advance_next_gen(kDead - 1, 0), kDead);
  EXPECT_EQ(advance_next_gen(kDead - 2, 0), kDead - 1);
  // Normal small values are untouched.
  EXPECT_EQ(advance_next_gen(10, 5), 16u);
  EXPECT_EQ(advance_next_gen(0, 0), 1u);
}

namespace {

/// Runs `cfg` twice — idle_skip on and off — and checks the SimResults
/// are field-for-field identical (including order-sensitive fp stats).
void expect_skip_transparent(Network& net, SimConfig cfg,
                             TrafficSource& tr) {
  cfg.idle_skip = false;
  const auto scan = run_sim(net, cfg, tr);
  cfg.idle_skip = true;
  const auto skip = run_sim(net, cfg, tr);
  // A vacuously-empty run (NaN latencies) can't certify anything.
  ASSERT_GT(scan.delivered_measured, 0u);
  expect_identical(scan, skip);
}

}  // namespace

TEST(IdleSkip, LowLoadSweepBitIdenticalToCycleByCycle) {
  // Low load is where the elided-cycle fraction is highest; every skipped
  // stretch must be a provable no-op.
  Network net;
  build_pair(net, 4, 1, 1, /*nvcs=*/2, /*buf=*/6);
  FixedTraffic tr(1);
  for (const double rate : {0.001, 0.01, 0.05}) {
    SimConfig cfg = determinism_cfg();
    cfg.inj_rate_per_chip = rate;
    expect_skip_transparent(net, cfg, tr);
  }
}

TEST(IdleSkip, DrainTailBitIdenticalWithLongQuietGaps) {
  // A long drain window after generation stops is almost entirely idle:
  // the drain loop must skip through it yet report the same drained
  // budget, `cycles_run`, and drain success as the stepping engine.
  Network net;
  build_pair(net, 8, 1, 2, /*nvcs=*/2, /*buf=*/4);
  FixedTraffic tr(1);
  SimConfig cfg = determinism_cfg();
  cfg.inj_rate_per_chip = 0.08;
  cfg.measure = 800;
  cfg.drain = 5000;  // far longer than the in-flight tail needs
  expect_skip_transparent(net, cfg, tr);
}

TEST(IdleSkip, FaultTimelineQuietGapBitIdenticalAndCheckpointEqual) {
  // Fault steps are engine events the skip must not jump over: a fail /
  // repair pair separated from the traffic by a long quiet gap has to
  // fire at its exact cycle (repair re-arms generation), and a
  // checkpoint taken inside the gap must serialize the identical bytes
  // whether the engine stepped or skipped to it — derived generation
  // state is rebuilt on restore, never stored.
  core::ScenarioSpec s;
  s.topology = "tiny-swless";
  s.traffic = "uniform";
  s.sim.warmup = 100;
  s.sim.measure = 600;
  s.sim.drain = 2000;
  s.sim.seed = 11;
  s.sim.inj_rate_per_chip = 0.01;
  s.fault.seed = 5;
  s.fault.events = "fail@150:local=0.3;repair@600:local=0";

  const auto run_one = [&](bool idle_skip) {
    Network net;
    core::build_network(net, s);
    const auto pat = traffic::make_pattern("uniform", net, {});
    SimConfig cfg = s.sim;
    cfg.idle_skip = idle_skip;
    Simulator sim(net, cfg, *pat);
    return sim.run();
  };
  const auto scan = run_one(false);
  const auto skip = run_one(true);
  expect_identical(scan, skip);

  // Checkpoint bytes at cycle 400 (inside the fail window, before the
  // repair): stepping engine vs skipping engine.
  const auto checkpoint_at = [&](bool idle_skip, Cycle at) {
    Network net;
    core::build_network(net, s);
    const auto pat = traffic::make_pattern("uniform", net, {});
    SimConfig cfg = s.sim;
    cfg.idle_skip = idle_skip;
    Simulator sim(net, cfg, *pat);
    while (sim.now() < at) {
      if (idle_skip) {
        sim.try_skip_idle(at);
        if (sim.now() >= at) break;
      }
      sim.step();
    }
    EXPECT_EQ(sim.now(), at);
    std::stringstream ck;
    sim.save_checkpoint(ck);
    return ck.str();
  };
  EXPECT_EQ(checkpoint_at(false, 400), checkpoint_at(true, 400));
}
