// Wafer-on-wafer conformance suite: wafer.count = 1 must be bit-identical
// to the classic single-fabric build, the stack structure (wafer-major chip
// partition, portal/bond tables) must be consistent, cross-wafer routes
// must cross exactly one vertical bond, vertical-cable faults must behave
// like every other fault kind (nested seeded sets, online fail -> repair
// with full in-flight accounting, a fully-severed stack reported by the
// audit instead of crashing), wafers x planes must be rejected, the
// scenario keys must round-trip, and the packed-width capacity guards must
// fail finalize with a typed ScenarioError.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>

#include "common/error.hpp"
#include "core/scenario.hpp"
#include "sim/simulator.hpp"
#include "test_fixtures.hpp"
#include "topo/faults.hpp"
#include "topo/swless.hpp"
#include "topo/wafer_stack.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::testing;
using topo::FaultKind;
using topo::FaultSpec;

namespace {

/// Every field of two SimResults must match exactly, including the
/// order-sensitive latency statistics and the per-wafer ledgers.
void expect_bit_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.generated_measured, b.generated_measured);
  EXPECT_EQ(a.delivered_measured, b.delivered_measured);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.generated_packets, b.generated_packets);
  EXPECT_EQ(a.generated_flits, b.generated_flits);
  EXPECT_EQ(a.ejected_flits, b.ejected_flits);
  EXPECT_EQ(a.lost_flits, b.lost_flits);
  EXPECT_EQ(a.inflight_packets, b.inflight_packets);
  EXPECT_EQ(a.inflight_flits, b.inflight_flits);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.rescued_packets, b.rescued_packets);
  EXPECT_EQ(a.suppressed, b.suppressed);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
  EXPECT_EQ(a.wafer_generated, b.wafer_generated);
  EXPECT_EQ(a.wafer_delivered, b.wafer_delivered);
  EXPECT_EQ(a.wafer_dropped, b.wafer_dropped);
  EXPECT_EQ(a.wafer_inflight, b.wafer_inflight);
}

/// A short tiny-swless open-loop spec; `wafers` = 0 keeps the classic
/// (pre-wafer) build path.
core::ScenarioSpec wafer_spec(int wafers) {
  core::ScenarioSpec s;
  s.topology = "tiny-swless";
  s.traffic = "uniform";
  s.rates = {0.3};
  s.sim.warmup = 200;
  s.sim.measure = 500;
  s.sim.drain = 3000;
  s.sim.seed = 11;
  s.wafer_count = wafers;
  return s;
}

sim::SimResult run_one(const core::ScenarioSpec& s) {
  const auto series = core::run_scenario(s);
  EXPECT_EQ(series.points.size(), 1u);
  return series.points.at(0).res;
}

std::set<ChanId> dead_channels(const sim::Network& net) {
  std::set<ChanId> dead;
  for (std::size_t i = 0; i < net.num_channels(); ++i)
    if (!net.chan_live(static_cast<ChanId>(i)))
      dead.insert(static_cast<ChanId>(i));
  return dead;
}

}  // namespace

// ---- stack structure -----------------------------------------------------

TEST(WaferStructure, WaferMajorPartitionAndBondTables) {
  auto s = wafer_spec(3);
  sim::Network net;
  core::build_network(net, s);
  ASSERT_TRUE(net.has_wafers());
  EXPECT_EQ(net.num_wafers(), 3);
  const auto cpw = net.chips_per_wafer();
  EXPECT_EQ(net.num_chips(), 3 * cpw);
  // Chips are wafer-major; every node of a chip lives on the chip's wafer.
  for (ChipId c = 0; c < static_cast<ChipId>(net.num_chips()); ++c) {
    const int w = net.wafer_of_chip(c);
    EXPECT_EQ(w, static_cast<int>(static_cast<std::size_t>(c) / cpw));
    for (const NodeId n : net.chip_nodes(c))
      EXPECT_EQ(net.wafer_of_node(n), w);
  }
  // The aggregate topo carries the portal and bond tables: each column is
  // bonded all-pairs with vertical duplex cables.
  const auto& t = net.topo<topo::WaferStackTopo>();
  EXPECT_EQ(t.count, 3);
  EXPECT_EQ(static_cast<std::size_t>(t.chips_per_wafer), cpw);
  for (std::int32_t col = 0; col < t.chips_per_wafer; ++col) {
    for (int wa = 0; wa < 3; ++wa) {
      EXPECT_EQ(net.chip_of(t.portal(wa, col)),
                static_cast<ChipId>(wa * t.chips_per_wafer + col));
      for (int wb = 0; wb < 3; ++wb) {
        const ChanId c = t.vertical(col, wa, wb);
        if (wa == wb) {
          EXPECT_EQ(c, kInvalidChan);
          continue;
        }
        ASSERT_NE(c, kInvalidChan);
        const auto& ch = net.chan(c);
        EXPECT_EQ(ch.type, LinkType::Vertical);
        EXPECT_EQ(ch.src, t.portal(wa, col));
        EXPECT_EQ(ch.dst, t.portal(wb, col));
      }
    }
  }
  // The stack carries the doubled VC space: source classes [0,V), dest
  // classes [V,2V), the vertical class 2V.
  EXPECT_EQ(net.num_vcs(), 2 * t.child_num_vcs + 1);
}

TEST(WaferStructure, CrossWaferWalksCrossExactlyOneBond) {
  auto s = wafer_spec(2);
  sim::Network net;
  core::build_network(net, s);
  std::vector<NodeId> w0, w1;
  for (const NodeId t : net.terminals())
    (net.wafer_of_node(t) == 0 ? w0 : w1).push_back(t);
  ASSERT_FALSE(w0.empty());
  ASSERT_EQ(w0.size(), w1.size());
  int cross_walks = 0;
  for (std::size_t i = 0; i < w0.size(); i += 7) {
    for (std::size_t j = 0; j < w1.size(); j += 7) {
      const auto w = walk_route(net, w0[i], w1[j], -2);
      EXPECT_TRUE(w.delivered) << w0[i] << "->" << w1[j];
      EXPECT_EQ(w.vertical_hops, 1) << w0[i] << "->" << w1[j];
      ++cross_walks;
      // And the reverse direction.
      const auto r = walk_route(net, w1[j], w0[i], -2);
      EXPECT_TRUE(r.delivered);
      EXPECT_EQ(r.vertical_hops, 1);
    }
  }
  EXPECT_GT(cross_walks, 0);
  // Intra-wafer pairs never touch a bond.
  const auto w = walk_route(net, w0.front(), w0.back(), -2);
  EXPECT_TRUE(w.delivered);
  EXPECT_EQ(w.vertical_hops, 0);
}

// ---- W = 1 identity ------------------------------------------------------

TEST(WaferIdentity, W1BitIdenticalSweepVsPreWaferBuild) {
  auto classic = wafer_spec(0);
  classic.rates = {0.2, 0.5, 0.8};
  auto w1 = classic;
  w1.wafer_count = 1;
  const auto a = core::run_scenario(classic);
  const auto b = core::run_scenario(w1);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    expect_bit_identical(a.points[i].res, b.points[i].res);
    EXPECT_TRUE(audit_conservation(b.points[i].res));
    EXPECT_GT(a.points[i].res.delivered_total, 0u);
  }
}

// ---- stacked runs --------------------------------------------------------

TEST(WaferRun, DeterministicAcrossRepeatsAndShardsWithTrafficOnEveryWafer) {
  const auto s = wafer_spec(2);
  const auto serial = run_one(s);
  const auto repeat = run_one(s);
  auto sharded_spec = s;
  sharded_spec.sim.shards = 2;
  const auto sharded = run_one(sharded_spec);
  expect_bit_identical(serial, repeat);
  expect_bit_identical(serial, sharded);
  EXPECT_TRUE(serial.drained);
  EXPECT_TRUE(audit_conservation(serial));
  ASSERT_EQ(serial.wafer_delivered.size(), 2u);
  EXPECT_GT(serial.wafer_delivered[0], 0u);
  EXPECT_GT(serial.wafer_delivered[1], 0u);
}

// ---- vertical-cable faults -----------------------------------------------

TEST(WaferFaults, VerticalKindFailsOnlyBondsAndNestsAcrossRates) {
  const auto inject = [](double rate) {
    auto s = wafer_spec(3);
    sim::Network net;
    core::build_network(net, s);
    FaultSpec f;
    f.rate = rate;
    f.kind = FaultKind::Vertical;
    f.seed = 42;
    const auto rep = topo::inject_faults(net, f);
    EXPECT_GT(rep.candidate_cables, 0u);
    const auto dead = dead_channels(net);
    for (const ChanId c : dead)
      EXPECT_EQ(net.chan(c).type, LinkType::Vertical);
    return dead;
  };
  const auto low = inject(0.2);
  const auto high = inject(0.5);
  EXPECT_GT(low.size(), 0u);
  EXPECT_GT(high.size(), low.size());
  EXPECT_TRUE(
      std::includes(high.begin(), high.end(), low.begin(), low.end()));
  // Same seed, same rate: the same set both times.
  EXPECT_EQ(inject(0.2), inject(0.2));
}

TEST(WaferFaults, PartialBondLossDetoursThroughAlternateColumns) {
  // Half the bonds dead: every cross-wafer pair must still deliver over a
  // live column, still with exactly one vertical hop.
  auto s = wafer_spec(2);
  s.rates = {0.05};  // below the halved cross-wafer bond bandwidth
  s.fault.rate = 0.5;
  s.fault.kind = FaultKind::Vertical;
  s.fault.seed = 7;
  sim::Network net;
  core::build_network(net, s);
  const auto audit = topo::audit_fault_routing(net);
  EXPECT_TRUE(audit.all_reachable()) << audit.to_string();
  const auto r = run_one(s);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(audit_conservation(r));
}

TEST(WaferFaults, OnlineVerticalFailRepairAccountsEveryTornPacket) {
  // A mid-run vertical fault wave, repaired later: rescue-mode rescues
  // exactly the packets drop-mode drops, both runs drain, and both close
  // the per-wafer ledger.
  auto s = wafer_spec(2);
  s.rates = {0.1};
  s.fault.seed = 5;
  s.fault.events = "fail@250:vertical=0.8;repair@700:vertical=0";
  auto sd = s;
  sd.fault.rescue = false;
  const auto rescued = run_one(s);
  const auto dropped = run_one(sd);
  EXPECT_TRUE(rescued.drained);
  EXPECT_TRUE(dropped.drained);
  EXPECT_EQ(rescued.dropped_packets, 0u);
  EXPECT_EQ(dropped.rescued_packets, 0u);
  EXPECT_EQ(dropped.dropped_packets, rescued.rescued_packets);
  EXPECT_TRUE(audit_conservation(rescued));
  EXPECT_TRUE(audit_conservation(dropped));
  // The online path stays deterministic under the sharded engine.
  auto sh = s;
  sh.sim.shards = 2;
  expect_bit_identical(rescued, run_one(sh));
}

TEST(WaferFaults, SeveredStackIsReportedNotCrashed) {
  // Every vertical bond dead: the stack partitions into W isolated wafers.
  // The audit reports the cross-wafer pairs as unreachable/dead-link walks
  // and the engine runs to its cycle budget with the ledger closed —
  // degraded operation is a result, not a crash.
  auto s = wafer_spec(2);
  s.fault.rate = 1.0;
  s.fault.kind = FaultKind::Vertical;
  s.fault.seed = 3;
  sim::Network net;
  core::build_network(net, s);
  const auto audit = topo::audit_fault_routing(net);
  EXPECT_FALSE(audit.all_reachable());
  EXPECT_GT(audit.unreachable, 0u);
  // Intra-wafer pairs are untouched: most pairs still deliver (a severed
  // cross-wafer walk can count as both unreachable and a dead-link use,
  // so only `unreachable` is compared against the pair count).
  EXPECT_LT(audit.unreachable, audit.pairs);
  EXPECT_EQ(audit.skipped_dead, 0u);  // no endpoint died, only bonds

  auto r = run_one(s);
  EXPECT_FALSE(r.drained);  // cross-wafer packets are pinned forever
  EXPECT_GT(r.inflight_packets, 0u);
  EXPECT_GT(r.delivered_total, 0u);  // intra-wafer traffic still flows
  EXPECT_TRUE(audit_conservation(r));
}

// ---- axis exclusivity ----------------------------------------------------

TEST(WaferExclusivity, PlanesAndWafersRejectedAtBothLayers) {
  auto s = wafer_spec(2);
  s.plane_count = 2;
  sim::Network net;
  EXPECT_THROW(core::build_network(net, s), std::invalid_argument);

  sim::Network n1;
  n1.begin_wafer();
  EXPECT_THROW(n1.begin_plane(), std::logic_error);
  sim::Network n2;
  n2.begin_plane();
  EXPECT_THROW(n2.begin_wafer(), std::logic_error);
}

// ---- scenario keys -------------------------------------------------------

TEST(WaferScenarioKeys, RoundTripThroughKv) {
  core::ScenarioSpec s;
  s.set("wafer.count", "2");
  s.set("wafer.latency", "3");
  s.set("wafer.width", "1/4");
  EXPECT_EQ(s.wafer_count, 2);
  EXPECT_EQ(s.wafer_latency, 3);
  EXPECT_EQ(s.wafer_width_num, 1);
  EXPECT_EQ(s.wafer_width_den, 4);

  const auto kv = s.to_kv();
  EXPECT_EQ(kv.at("wafer.count"), "2");
  EXPECT_EQ(kv.at("wafer.latency"), "3");
  EXPECT_EQ(kv.at("wafer.width"), "1/4");
  const auto back = core::ScenarioSpec::from_kv(kv);
  EXPECT_EQ(back.wafer_count, 2);
  EXPECT_EQ(back.wafer_latency, 3);
  EXPECT_EQ(back.wafer_width_num, 1);
  EXPECT_EQ(back.wafer_width_den, 4);

  // Unset wafer keys must not appear in the kv form at all.
  const auto plain_kv = core::ScenarioSpec{}.to_kv();
  EXPECT_EQ(plain_kv.count("wafer.count"), 0u);
  EXPECT_EQ(plain_kv.count("wafer.latency"), 0u);
  EXPECT_EQ(plain_kv.count("wafer.width"), 0u);
}

TEST(WaferScenarioKeys, RejectsInvalidValues) {
  core::ScenarioSpec s;
  EXPECT_THROW(s.set("wafer.count", "0"), std::invalid_argument);
  EXPECT_THROW(s.set("wafer.count", "many"), std::invalid_argument);
  EXPECT_THROW(s.set("wafer.latency", "0"), std::invalid_argument);
  EXPECT_THROW(s.set("wafer.width", "0/2"), std::invalid_argument);
  EXPECT_THROW(s.set("wafer.width", "1/0"), std::invalid_argument);
  EXPECT_THROW(s.set("wafer.width", "x"), std::invalid_argument);
}

// ---- packed-width capacity guards ----------------------------------------

namespace {

/// Trivial two-node routing for the capacity-guard builds.
class PairRouting final : public sim::RoutingAlgorithm {
 public:
  void init_packet(const sim::Network&, sim::Packet& pkt, Rng&) override {
    pkt.vc_class = 0;
  }
  sim::RouteDecision route(const sim::Network& net, NodeId router, PortIx,
                           sim::Packet& pkt) override {
    if (router == pkt.dst) return {net.router(router).eject_port, 0};
    return {0, 0};
  }
  const char* name() const override { return "pair"; }
};

/// Two terminals joined by a duplex channel, finalized with the given VC
/// geometry.
void finalize_pair(sim::Network& net, int nvcs, int buf) {
  const NodeId a = net.add_router(NodeKind::Core);
  const NodeId b = net.add_router(NodeKind::Core);
  net.add_duplex(a, b, LinkType::OnChip, 1);
  net.make_terminal(a, 0);
  net.make_terminal(b, 1);
  net.set_routing(std::make_unique<PairRouting>());
  net.finalize(nvcs, buf);
}

}  // namespace

TEST(PackedCapacity, FinalizeRejectsOversizedFieldsWithTypedError) {
  // The packed port record narrows vc_buf to 15 bits and num_vcs to 8: a
  // build that would silently truncate counters mid-run must instead fail
  // finalize with a ScenarioError naming the limit.
  {
    sim::Network net;
    try {
      finalize_pair(net, 1, 40000);
      FAIL() << "expected ScenarioError";
    } catch (const ScenarioError& e) {
      EXPECT_NE(std::string(e.what())
                    .find("exceeds the packed credit width (max 32767)"),
                std::string::npos)
          << e.what();
    }
  }
  {
    sim::Network net;
    try {
      finalize_pair(net, 300, 32);
      FAIL() << "expected ScenarioError";
    } catch (const ScenarioError& e) {
      EXPECT_NE(std::string(e.what())
                    .find("exceeds the packed VC width (max 255)"),
                std::string::npos)
          << e.what();
    }
  }
  // The limits themselves are fine.
  sim::Network ok;
  finalize_pair(ok, 255, 32767);
  EXPECT_EQ(ok.num_vcs(), 255);
  EXPECT_EQ(ok.vc_buf(), 32767);
}
